package core

import (
	"context"
	"fmt"
	"sync"

	"uicwelfare/internal/stats"
)

// Canonical algorithm names — the registry keys. The service DTOs, the
// CLI flags, and the experiment drivers all spell algorithm names
// through these constants so they cannot drift.
const (
	AlgoBundleGRD      = "bundleGRD"
	AlgoItemDisjoint   = "item-disj"
	AlgoBundleDisjoint = "bundle-disj"

	// DefaultAlgorithm is what an empty algorithm name resolves to.
	DefaultAlgorithm = AlgoBundleGRD
)

// Cascade support labels used in Meta.Cascades.
const (
	CascadeNameIC = "ic"
	CascadeNameLT = "lt"
)

// Meta describes a registered planner: its registry name and the
// capability flags GET /v1/algorithms reports.
type Meta struct {
	// Name is the registry key (set by Register).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// SketchFamily names the reusable RR-sketch kind the planner
	// consumes ("prima", "imm"); empty when the planner cannot separate
	// sketch construction from selection (and so cannot use a sketch
	// cache).
	SketchFamily string
	// Cascades lists the diffusion models the planner supports.
	Cascades []string
}

// SketchCacheable reports whether the planner's dominant cost is a
// reusable sketch a cache can amortize.
func (m Meta) SketchCacheable() bool { return m.SketchFamily != "" }

// Planner is one allocation algorithm behind the uniform context-aware
// call convention. Plan must honor ctx cancellation (returning ctx.Err()
// promptly) and report through opts.Progress when set.
type Planner interface {
	Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error)
}

// SketchPlanner is the optional capability of planners whose dominant
// cost is building one immutable RR sketch: the service's sketch cache
// splits Plan into BuildSketch (cached, shared read-only across
// goroutines) and PlanFromSketch (cheap, per request).
type SketchPlanner interface {
	Planner
	// SketchBudgets returns the canonical budget vector identifying the
	// sketch Plan would build for p — cache-key material alongside
	// Meta.SketchFamily.
	SketchBudgets(p *Problem) []int
	// BuildSketch builds the reusable sketch (a *prima.Sketch or
	// *imm.Sketch, typed as any to keep the registry family-agnostic).
	BuildSketch(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (any, error)
	// PlanFromSketch runs selection and assignment on a prebuilt sketch.
	// It only reads the sketch, so one cached sketch can serve many
	// concurrent calls.
	PlanFromSketch(p *Problem, sketch any) (Result, error)
}

// Factory builds a fresh planner instance. Lookup invokes it per
// resolution, so stateful planners get one instance per run; Register
// additionally probes it once at registration time to validate the
// SketchPlanner capability against the declared meta.
type Factory func() Planner

type registration struct {
	meta    Meta
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]registration{}
	regOrder []string
)

// Register adds a planner under name. The built-in algorithms
// self-register at package init; extensions (alternative objectives,
// fairness variants, test doubles) register the same way. It panics on
// an empty name, a duplicate, a nil factory, or a sketch-capable planner
// whose meta does not name its sketch family — registration bugs, not
// runtime conditions.
func Register(name string, meta Meta, factory Factory) {
	if name == "" {
		panic("core: Register with empty algorithm name")
	}
	if factory == nil {
		panic("core: Register " + name + " with nil factory")
	}
	if _, ok := factory().(SketchPlanner); ok && meta.SketchFamily == "" {
		panic("core: Register " + name + ": SketchPlanner without a SketchFamily")
	}
	meta.Name = name
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("core: duplicate algorithm registration " + name)
	}
	registry[name] = registration{meta: meta, factory: factory}
	regOrder = append(regOrder, name)
}

// Lookup resolves an algorithm name (empty resolves to
// DefaultAlgorithm) to a fresh planner instance and its metadata.
func Lookup(name string) (Planner, Meta, error) {
	if name == "" {
		name = DefaultAlgorithm
	}
	regMu.RLock()
	reg, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, Meta{}, fmt.Errorf("core: unknown algorithm %q (have %v)", name, Names())
	}
	return reg.factory(), reg.meta, nil
}

// Plan runs the named algorithm through the registry — the one dispatch
// seam shared by the service, the CLIs, and the experiment drivers.
func Plan(ctx context.Context, name string, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	planner, _, err := Lookup(name)
	if err != nil {
		return Result{}, err
	}
	return planner.Plan(ctx, p, opts, rng)
}

// Algorithms lists the registered planners' metadata in registration
// order (built-ins first, in the paper's order).
func Algorithms() []Meta {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Meta, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name].meta)
	}
	return out
}

// Names lists the registered algorithm names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}
