#!/usr/bin/env bash
# apidocs_check.sh — keep docs/API.md honest.
#
# Extracts every route registered in the service mux
# (internal/service/http.go) and the cluster router mux
# (internal/cluster/router.go) and checks it appears in docs/API.md;
# then checks the reverse — every "### `METHOD /path`" heading in the
# docs still corresponds to a registered route. Either direction
# failing means the docs drifted from the code; CI runs this so the
# drift cannot land silently.
set -euo pipefail
cd "$(dirname "$0")/.."

DOC=docs/API.md
SOURCES=(internal/service/http.go internal/cluster/router.go)

for f in "$DOC" "${SOURCES[@]}"; do
  [ -f "$f" ] || { echo "apidocs_check: missing $f" >&2; exit 1; }
done

# Route patterns look like: mux.HandleFunc("GET /v1/graphs/{id}", ...)
code_routes=$(grep -hoE 'HandleFunc\("[A-Z]+ [^"]+"' "${SOURCES[@]}" \
  | sed -E 's/HandleFunc\("([^"]+)"/\1/' | sort -u)

# Documented routes are level-3 headings: ### `GET /v1/graphs/{id}`
doc_routes=$(grep -oE '^### `[A-Z]+ [^`]+`' "$DOC" \
  | sed -E 's/^### `([^`]+)`/\1/' | sort -u)

fail=0
while IFS= read -r route; do
  [ -z "$route" ] && continue
  if ! printf '%s\n' "$doc_routes" | grep -qxF -- "$route"; then
    echo "apidocs_check: $DOC is missing a heading for registered route: $route" >&2
    fail=1
  fi
done <<<"$code_routes"

while IFS= read -r route; do
  [ -z "$route" ] && continue
  if ! printf '%s\n' "$code_routes" | grep -qxF -- "$route"; then
    echo "apidocs_check: $DOC documents a route no mux registers: $route" >&2
    fail=1
  fi
done <<<"$doc_routes"

if [ "$fail" -ne 0 ]; then
  echo "apidocs_check: FAILED — update docs/API.md to match the muxes" >&2
  exit 1
fi
echo "apidocs_check: ok ($(printf '%s\n' "$code_routes" | grep -c .) routes documented)"
