package service_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"uicwelfare/internal/service"
	"uicwelfare/internal/store"
)

func TestHealthzV1ReportsNode(t *testing.T) {
	e := newEnv(t, service.Options{NodeID: "b7"})
	var hz service.HealthzResponse
	e.doJSON("GET", "/v1/healthz", nil, &hz, http.StatusOK)
	if hz.Status != "ok" || hz.Node != "b7" {
		t.Errorf("healthz = %+v", hz)
	}

	// Job ids carry the node prefix so a router can route them back.
	id := e.registerGraph(t)
	job := e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}})
	if job != "b7-j1" {
		t.Errorf("job id = %q, want b7-j1", job)
	}
	var view allocJobView
	e.waitJob(t, job, &view)
	if view.State != service.JobDone {
		t.Fatalf("allocate failed: %s", view.Error)
	}
}

func TestJobsStateFilter(t *testing.T) {
	e := newEnv(t, service.Options{})
	info := registerInline(t, e)
	var done allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}), &done)
	// A second job that fails at run time cannot easily be forced, so the
	// filter test uses the states at hand: one done job, zero canceled.
	var list struct {
		Jobs []allocJobView `json:"jobs"`
	}
	e.doJSON("GET", "/v1/jobs?state=done", nil, &list, http.StatusOK)
	if len(list.Jobs) != 1 || list.Jobs[0].State != service.JobDone {
		t.Errorf("?state=done = %+v", list.Jobs)
	}
	e.doJSON("GET", "/v1/jobs?state=canceled", nil, &list, http.StatusOK)
	if len(list.Jobs) != 0 {
		t.Errorf("?state=canceled = %+v", list.Jobs)
	}
	if status, _ := e.do("GET", "/v1/jobs?state=bogus", nil); status != http.StatusBadRequest {
		t.Errorf("?state=bogus: status %d, want 400", status)
	}
}

func TestJobAuditTrailSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := newEnv(t, service.Options{DataDir: dir})
	info := registerInline(t, e1)
	var job allocJobView
	e1.waitJob(t, e1.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}), &job)
	if job.State != service.JobDone {
		t.Fatalf("allocate failed: %s", job.Error)
	}
	e1.srv.Close()
	e1.svc.Close()

	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	records := st.JobHistory()
	if len(records) != 1 {
		t.Fatalf("audit trail holds %d records, want 1", len(records))
	}
	var rec service.JobView
	if err := json.Unmarshal(records[0], &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != service.JobDone || rec.Kind != "allocate" || rec.Finished == "" {
		t.Errorf("audit record = %+v", rec)
	}

	// A restarted daemon appends to the same trail.
	e2 := newEnv(t, service.Options{DataDir: dir})
	var job2 allocJobView
	e2.waitJob(t, e2.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}), &job2)
	if n := len(st.JobHistory()); n != 2 {
		t.Errorf("audit trail holds %d records after restart, want 2", n)
	}
}

func TestSketchExportImport(t *testing.T) {
	e1 := newEnv(t, service.Options{})
	info := registerInline(t, e1)
	var warm warmJobView
	e1.waitJob(t, e1.submit(t, "/v1/graphs/"+info.ID+"/warm", service.WarmRequest{Budgets: []int{2, 2}}), &warm)
	if warm.State != service.JobDone {
		t.Fatalf("warm failed: %s", warm.Error)
	}

	status, stream := e1.do("GET", "/v1/graphs/"+info.ID+"/sketches", nil)
	if status != http.StatusOK || len(stream) == 0 {
		t.Fatalf("export: status %d, %d bytes", status, len(stream))
	}

	// Sketch import is a cluster endpoint: a daemon without -node must
	// refuse to let callers install authoritative sketch contents.
	if status, _ := e1.do("POST", "/v1/graphs/"+info.ID+"/sketches", stream); status != http.StatusForbidden {
		t.Errorf("import on nodeless daemon: status %d, want 403", status)
	}

	// A second backend with the same graph resident imports the stream
	// and answers the equivalent allocate warm.
	e2 := newEnv(t, service.Options{NodeID: "b9"})
	registerInline(t, e2)
	var imp struct {
		Imported int `json:"imported"`
		Skipped  int `json:"skipped"`
	}
	e2.doJSON("POST", "/v1/graphs/"+info.ID+"/sketches", stream, &imp, http.StatusOK)
	if imp.Imported != 1 || imp.Skipped != 0 {
		t.Fatalf("import = %+v", imp)
	}
	var job allocJobView
	e2.waitJob(t, e2.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}), &job)
	if job.State != service.JobDone {
		t.Fatalf("allocate failed: %s", job.Error)
	}
	if !job.Result.SketchCached {
		t.Error("allocate after import did not hit the shipped sketch")
	}

	// Importing the same stream again skips the resident entry.
	e2.doJSON("POST", "/v1/graphs/"+info.ID+"/sketches", stream, &imp, http.StatusOK)
	if imp.Imported != 0 || imp.Skipped != 1 {
		t.Errorf("second import = %+v", imp)
	}

	// Unknown graphs 404; garbage streams 400.
	if status, _ := e2.do("GET", "/v1/graphs/g000/sketches", nil); status != http.StatusNotFound {
		t.Errorf("export unknown graph: status %d", status)
	}
	if status, _ := e2.do("POST", "/v1/graphs/"+info.ID+"/sketches", []byte("not a stream")); status != http.StatusBadRequest {
		t.Errorf("import garbage: status %d", status)
	}

	// Per-family stats see the imported sketch (bundleGRD → prima).
	var stats service.StatsResponse
	e2.doJSON("GET", "/v1/stats", nil, &stats, http.StatusOK)
	if stats.SketchCache.EntriesByFamily["prima"] != 1 {
		t.Errorf("entries_by_family = %v", stats.SketchCache.EntriesByFamily)
	}
}

func TestGraphExportRoundTrip(t *testing.T) {
	e := newEnv(t, service.Options{})
	info := registerInline(t, e)
	status, wmg := e.do("GET", "/v1/graphs/"+info.ID+"/export", nil)
	if status != http.StatusOK {
		t.Fatalf("export: status %d", status)
	}
	name, g, err := store.DecodeGraph(bytes.NewReader(wmg))
	if err != nil {
		t.Fatal(err)
	}
	if name != "tri" || store.GraphID(g) != info.ID {
		t.Errorf("export decoded to name %q id %q, want tri %s", name, store.GraphID(g), info.ID)
	}

	// The exported bytes re-register over the wmg field with the same id.
	e2 := newEnv(t, service.Options{})
	var got service.GraphInfo
	e2.doJSON("POST", "/v1/graphs", service.GraphRequest{Wmg: wmg}, &got, http.StatusCreated)
	if got.ID != info.ID || got.Name != "tri" {
		t.Errorf("wmg registration = %+v, want id %s", got, info.ID)
	}
}

// TestImportGraphForgedLengthRejected sends /v1/graphs/import a 30-byte
// body whose frame header declares a multi-GiB payload — the remote-OOM
// shape. The daemon must answer 400 (truncated) instead of committing
// the declared allocation.
func TestImportGraphForgedLengthRejected(t *testing.T) {
	e := newEnv(t, service.Options{})
	var frame bytes.Buffer
	frame.WriteString(store.GraphMagic)
	var word [8]byte
	binary.LittleEndian.PutUint32(word[:4], store.Version)
	frame.Write(word[:4])
	binary.LittleEndian.PutUint64(word[:], uint64(3<<30))
	frame.Write(word[:])
	frame.WriteString("short body")
	status, raw := e.do("POST", "/v1/graphs/import", frame.Bytes())
	if status != http.StatusBadRequest {
		t.Errorf("forged import: status %d: %s", status, raw)
	}
}

// TestClusterTokenGatesInternalEndpoints starts a backend with a cluster
// token: the cluster-internal endpoints (raw graph import, sketch
// export/import) must refuse requests without the shared secret — -node
// is a deployment hint, not authentication — while requests carrying it
// pass, and the public API stays open.
func TestClusterTokenGatesInternalEndpoints(t *testing.T) {
	const token = "sesame"
	e := newEnv(t, service.Options{NodeID: "b0", ClusterToken: token})
	info := registerInline(t, e) // public registration needs no token

	var warm warmJobView
	e.waitJob(t, e.submit(t, "/v1/graphs/"+info.ID+"/warm", service.WarmRequest{Budgets: []int{2, 2}}), &warm)
	if warm.State != service.JobDone {
		t.Fatalf("warm failed: %s", warm.Error)
	}

	withToken := func(method, path string, body []byte, tok string) (int, []byte) {
		t.Helper()
		return withTokenOn(t, e, method, path, body, tok)
	}

	// Tokenless (and wrong-token) access to the internal endpoints: 403.
	for _, tok := range []string{"", "wrong"} {
		if status, _ := withToken("GET", "/v1/graphs/"+info.ID+"/sketches", nil, tok); status != http.StatusForbidden {
			t.Errorf("sketch export with token %q: status %d, want 403", tok, status)
		}
		if status, _ := withToken("POST", "/v1/graphs/"+info.ID+"/sketches", []byte("x"), tok); status != http.StatusForbidden {
			t.Errorf("sketch import with token %q: status %d, want 403", tok, status)
		}
		if status, _ := withToken("POST", "/v1/graphs/import", []byte("x"), tok); status != http.StatusForbidden {
			t.Errorf("graph import with token %q: status %d, want 403", tok, status)
		}
	}

	// With the token the same routes work end to end.
	status, stream := withToken("GET", "/v1/graphs/"+info.ID+"/sketches", nil, token)
	if status != http.StatusOK || len(stream) == 0 {
		t.Fatalf("export with token: status %d, %d bytes", status, len(stream))
	}
	e2 := newEnv(t, service.Options{NodeID: "b1", ClusterToken: token})
	registerInline(t, e2)
	if status, raw := withTokenOn(t, e2, "POST", "/v1/graphs/"+info.ID+"/sketches", stream, token); status != http.StatusOK {
		t.Fatalf("import with token: status %d: %s", status, raw)
	}
}

// withTokenOn issues one request against env e, attaching the cluster
// token when tok is non-empty.
func withTokenOn(t *testing.T, e *env, method, path string, body []byte, tok string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, e.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tok != "" {
		req.Header.Set(service.ClusterTokenHeader, tok)
	}
	resp, err := e.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}
