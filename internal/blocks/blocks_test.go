package blocks

import (
	"math"
	"testing"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// example2Instance builds the utility table of the paper's Example 2:
// three items (0=i1, 1=i2, 2=i3) with budgets b1 >= b2 >= b3.
func example2Instance() Instance {
	util := make([]float64, 8)
	util[itemset.New(0)] = -1
	util[itemset.New(1)] = -1
	util[itemset.New(2)] = -1
	util[itemset.New(0, 1)] = -1
	util[itemset.New(0, 2)] = 1
	util[itemset.New(1, 2)] = 1
	util[itemset.New(0, 1, 2)] = 4
	return Instance{Util: util, Budgets: []int{30, 20, 10}}
}

func TestExample1PrecedenceOrder(t *testing.T) {
	b, err := Generate(example2Instance())
	if err != nil {
		t.Fatal(err)
	}
	// the paper's Example 1 order:
	// {i1} ≺ {i2} ≺ {i1,i2} ≺ {i3} ≺ {i1,i3} ≺ {i2,i3} ≺ {i1,i2,i3}
	seq := []itemset.Set{
		itemset.New(0), itemset.New(1), itemset.New(0, 1), itemset.New(2),
		itemset.New(0, 2), itemset.New(1, 2), itemset.New(0, 1, 2),
	}
	for i := 0; i < len(seq); i++ {
		for j := i + 1; j < len(seq); j++ {
			if !b.Precedes(seq[i], seq[j]) {
				t.Errorf("%v should precede %v", seq[i], seq[j])
			}
			if b.Precedes(seq[j], seq[i]) {
				t.Errorf("%v should not precede %v", seq[j], seq[i])
			}
		}
	}
}

func TestProperty1SubsetPrecedes(t *testing.T) {
	b, _ := Generate(example2Instance())
	// (a) proper subsets precede
	full := itemset.New(0, 1, 2)
	for s := itemset.Set(1); s < 8; s++ {
		for sub := itemset.Set(1); sub < 8; sub++ {
			if sub.ProperSubsetOf(s) && !b.Precedes(sub, s) {
				t.Errorf("subset %v does not precede %v", sub, s)
			}
			_ = full
		}
	}
	// (b) lower highest-index precedes: {i1,i2} ≺ {i3}
	if !b.Precedes(itemset.New(0, 1), itemset.New(2)) {
		t.Error("rule (b) violated")
	}
}

func TestExample2BlockGeneration(t *testing.T) {
	b, err := Generate(example2Instance())
	if err != nil {
		t.Fatal(err)
	}
	if b.Star != itemset.New(0, 1, 2) {
		t.Fatalf("I* = %v", b.Star)
	}
	if b.T() != 2 {
		t.Fatalf("t = %d, want 2 blocks", b.T())
	}
	if b.Seq[0] != itemset.New(0, 2) {
		t.Errorf("B1 = %v, want {i1,i3}", b.Seq[0])
	}
	if b.Seq[1] != itemset.New(1) {
		t.Errorf("B2 = %v, want {i2}", b.Seq[1])
	}
	if b.Deltas[0] != 1 || b.Deltas[1] != 3 {
		t.Errorf("deltas = %v, want [1 3]", b.Deltas)
	}
}

func TestExample3EffectiveBudgets(t *testing.T) {
	b, _ := Generate(example2Instance())
	// e1 = min(b1, b3) = 10; e2 = min over all three = 10
	if b.EffBudget[0] != 10 || b.EffBudget[1] != 10 {
		t.Errorf("effective budgets %v, want [10 10]", b.EffBudget)
	}
}

func TestExample4Anchors(t *testing.T) {
	b, _ := Generate(example2Instance())
	// anchor block of both B1 and B2 is B1; anchor item is i3 (index 2)
	if b.AnchorBlock[0] != 0 || b.AnchorBlock[1] != 0 {
		t.Errorf("anchor blocks %v, want [0 0]", b.AnchorBlock)
	}
	if b.AnchorItem[0] != 2 || b.AnchorItem[1] != 2 {
		t.Errorf("anchor items %v, want [2 2]", b.AnchorItem)
	}
}

func TestBlocksPartitionStar(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 60; trial++ {
		m := utility.Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		budgets := make([]int, 5)
		for i := range budgets {
			budgets[i] = 1 + rng.Intn(50)
		}
		b, err := Generate(Instance{Util: util, Budgets: budgets})
		if err != nil {
			t.Fatal(err)
		}
		// blocks are disjoint and union to Star
		var union itemset.Set
		for _, blk := range b.Seq {
			if blk.Overlaps(union) {
				t.Fatalf("trial %d: overlapping blocks %v", trial, b.Seq)
			}
			if blk.IsEmpty() {
				t.Fatalf("trial %d: empty block", trial)
			}
			union = union.Union(blk)
		}
		if union != b.Star {
			t.Fatalf("trial %d: blocks union %v != I* %v", trial, union, b.Star)
		}
	}
}

func TestProperty2DeltasNonNegativeAndSum(t *testing.T) {
	rng := stats.NewRNG(2)
	for trial := 0; trial < 60; trial++ {
		m := utility.Config8(4, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		budgets := []int{40, 30, 20, 10}
		b, _ := Generate(Instance{Util: util, Budgets: budgets})
		sum := 0.0
		for _, d := range b.Deltas {
			if d < 0 {
				t.Fatalf("trial %d: negative delta %v", trial, d)
			}
			sum += d
		}
		if math.Abs(sum-util[b.Star]) > 1e-9 {
			t.Fatalf("trial %d: Σδ = %v, U(I*) = %v", trial, sum, util[b.Star])
		}
	}
}

func TestProperty3PartialBlockDeltas(t *testing.T) {
	// ∀A ⊆ I*: Δ^A_i <= Δ_i and Σ Δ^A_i = U(A)
	rng := stats.NewRNG(3)
	for trial := 0; trial < 40; trial++ {
		m := utility.Config8(4, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		budgets := []int{40, 30, 20, 10}
		b, _ := Generate(Instance{Util: util, Budgets: budgets})
		b.Star.Subsets(func(a itemset.Set) bool {
			deltas := b.PartitionDeltas(a)
			sum := 0.0
			for i, d := range deltas {
				if d > b.Deltas[i]+1e-9 {
					t.Fatalf("trial %d: Δ^A_%d = %v > Δ_%d = %v (A=%v)",
						trial, i, d, i, b.Deltas[i], a)
				}
				sum += d
			}
			if math.Abs(sum-util[a]) > 1e-9 {
				t.Fatalf("trial %d: ΣΔ^A = %v, U(A) = %v", trial, sum, util[a])
			}
			return true
		})
	}
}

func TestEffectiveBudgetsNonIncreasing(t *testing.T) {
	rng := stats.NewRNG(4)
	for trial := 0; trial < 40; trial++ {
		m := utility.Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		budgets := make([]int, 5)
		for i := range budgets {
			budgets[i] = 1 + rng.Intn(100)
		}
		b, _ := Generate(Instance{Util: util, Budgets: budgets})
		for i := 1; i < b.T(); i++ {
			if b.EffBudget[i] > b.EffBudget[i-1] {
				t.Fatalf("effective budgets increased: %v", b.EffBudget)
			}
		}
		// e_i equals the anchor item's budget
		for i := 0; i < b.T(); i++ {
			if budgets[b.AnchorItem[i]] != b.EffBudget[i] {
				t.Fatalf("e_%d = %d but anchor item %d has budget %d",
					i, b.EffBudget[i], b.AnchorItem[i], budgets[b.AnchorItem[i]])
			}
		}
	}
}

func TestAnchorBlockIsPrefixMinimum(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 40; trial++ {
		m := utility.Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		budgets := make([]int, 5)
		for i := range budgets {
			budgets[i] = 1 + rng.Intn(100)
		}
		b, _ := Generate(Instance{Util: util, Budgets: budgets})
		for i := 0; i < b.T(); i++ {
			ab := b.AnchorBlock[i]
			if ab > i {
				t.Fatalf("anchor block %d after block %d", ab, i)
			}
			abBudget := b.blockBudget(b.Seq[ab])
			for j := 0; j <= i; j++ {
				if bj := b.blockBudget(b.Seq[j]); bj < abBudget {
					t.Fatalf("block %d has budget %d < anchor's %d", j, bj, abBudget)
				}
			}
		}
	}
}

func TestUnionPrefix(t *testing.T) {
	b, _ := Generate(example2Instance())
	if b.UnionPrefix(0) != itemset.Empty {
		t.Error("prefix 0 not empty")
	}
	if b.UnionPrefix(1) != itemset.New(0, 2) {
		t.Errorf("prefix 1 = %v", b.UnionPrefix(1))
	}
	if b.UnionPrefix(2) != itemset.New(0, 1, 2) {
		t.Errorf("prefix 2 = %v", b.UnionPrefix(2))
	}
	if b.UnionPrefix(99) != b.Star {
		t.Errorf("oversized prefix != Star")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Instance{Util: []float64{0, 1}, Budgets: []int{1, 2}}); err == nil {
		t.Error("mismatched table size accepted")
	}
}

func TestSingleItemBlocks(t *testing.T) {
	util := []float64{0, 2}
	b, err := Generate(Instance{Util: util, Budgets: []int{5}})
	if err != nil {
		t.Fatal(err)
	}
	if b.T() != 1 || b.Seq[0] != itemset.New(0) || b.Deltas[0] != 2 {
		t.Errorf("single item blocks wrong: %+v", b)
	}
	if b.EffBudget[0] != 5 || b.AnchorItem[0] != 0 {
		t.Errorf("single item anchors wrong: %+v", b)
	}
}

func TestAllNegativeUtilitiesEmptyStar(t *testing.T) {
	util := []float64{0, -1, -1, -3}
	b, err := Generate(Instance{Util: util, Budgets: []int{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Star != itemset.Empty || b.T() != 0 {
		t.Errorf("Star = %v, blocks = %v; want empty", b.Star, b.Seq)
	}
}

func TestBlockBudgetOrderIndependentOfItemIndices(t *testing.T) {
	// permuting which original index has which budget must not change the
	// delta multiset
	utilA := example2Instance()
	bA, _ := Generate(utilA)

	// swap items 0 and 2 (and budgets accordingly)
	swap := func(s itemset.Set) itemset.Set {
		out := s
		h0, h2 := s.Has(0), s.Has(2)
		out = out.Remove(0).Remove(2)
		if h0 {
			out = out.Add(2)
		}
		if h2 {
			out = out.Add(0)
		}
		return out
	}
	utilB := make([]float64, 8)
	for s := itemset.Set(0); s < 8; s++ {
		utilB[swap(s)] = utilA.Util[s]
	}
	bB, _ := Generate(Instance{Util: utilB, Budgets: []int{10, 20, 30}})
	if bB.T() != bA.T() {
		t.Fatalf("block counts differ: %d vs %d", bA.T(), bB.T())
	}
	for i := range bA.Deltas {
		if math.Abs(bA.Deltas[i]-bB.Deltas[i]) > 1e-12 {
			t.Errorf("delta %d differs: %v vs %v", i, bA.Deltas[i], bB.Deltas[i])
		}
		if bB.Seq[i] != swap(bA.Seq[i]) {
			t.Errorf("block %d: %v vs swapped %v", i, bB.Seq[i], swap(bA.Seq[i]))
		}
	}
}
