package imm

import (
	"math"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
)

// RunTIM executes the TIM+ algorithm of Tang et al. (SIGMOD'14). TIM
// estimates KPT (a lower bound on OPT_k/n in expectation-of-width form)
// and then draws θ = λ/KPT RR sets, where
//
//	λ = (8 + 2ε)·n·(ℓ·log n + log C(n,k) + log 2)·ε^-2.
//
// TIM's bound is looser than IMM's, so it generates noticeably more RR
// sets — the property Fig. 6 of the paper measures. The Com-IC baselines
// (RR-SIM+, RR-CIM) are built on TIM, matching the original research code.
func RunTIM(g *graph.Graph, k int, opts Options, rng *stats.RNG) Result {
	opts = opts.withDefaults()
	n := g.N()
	if k <= 0 || n == 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	m := g.M()

	col := rrset.NewCollection(g)
	col.Sampler().NodeCoin = opts.NodeCoin
	col.Sampler().Cascade = opts.Cascade

	// KPT estimation (Algorithm 2 of TIM): probe with geometrically
	// growing sample counts until the width statistic certifies a level.
	kpt := 1.0
	logn := math.Log(float64(n))
	maxI := int(math.Log2(float64(n))) - 1
	if maxI < 1 {
		maxI = 1
	}
	prevWidthSum := 0.0
	prevCount := 0
	for i := 1; i <= maxI; i++ {
		ci := int64(math.Ceil((6*opts.Ell*logn + 6*math.Log(math.Log2(float64(n)))) * math.Pow(2, float64(i))))
		start := col.Len()
		col.Grow(int64(prevCount)+ci, rng)
		// κ(R) = 1 - (1 - w(R)/m)^k, averaged over the batch
		sum := prevWidthSum
		for j := start; j < col.Len(); j++ {
			w := widthOf(g, col.Set(j))
			sum += 1 - math.Pow(1-float64(w)/float64(m), float64(k))
		}
		prevWidthSum = sum
		prevCount = col.Len()
		kappa := sum / float64(col.Len())
		if kappa > 1/math.Pow(2, float64(i)) {
			kpt = kappa * float64(n) / 2
			break
		}
	}
	if kpt < 1 {
		kpt = 1
	}

	lambda := (8 + 2*opts.Eps) * float64(n) *
		(opts.Ell*logn + stats.LogNChooseK(n, k) + math.Ln2) / (opts.Eps * opts.Eps)
	theta := lambda / kpt
	probes := col.Len()

	col.Reset()
	col.Grow(int64(math.Ceil(theta)), rng)
	seeds, frac := col.NodeSelection(k)
	return Result{
		Seeds:       seeds,
		Coverage:    frac,
		SpreadEst:   float64(n) * frac,
		NumRRSets:   col.Len(),
		TotalRRSets: probes + col.Len(),
		LB:          kpt,
	}
}

// widthOf returns w(R): the number of edges in g pointing into members of
// the RR set.
func widthOf(g *graph.Graph, set []graph.NodeID) int64 {
	var w int64
	for _, v := range set {
		w += int64(g.InDegree(v))
	}
	return w
}
