package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzReadSegment feeds arbitrary bytes through the .wmj segment reader:
// any input must either decode (possibly to zero events — unparseable
// JSON lines are skipped by design) or fail with ErrBadSegment. Panics
// and unbounded allocations from forged length fields are the bugs this
// hunts.
func FuzzReadSegment(f *testing.F) {
	var payload bytes.Buffer
	enc := func(e Event) {
		b, err := json.Marshal(e)
		if err != nil {
			f.Fatal(err)
		}
		payload.Write(b)
		payload.WriteByte('\n')
	}
	enc(Event{Seq: 1, TS: time.Unix(1700000000, 0).UTC(), Type: "graph_registered", Graph: "g1"})
	enc(Event{Seq: 2, TS: time.Unix(1700000001, 0).UTC(), Type: "sketch_built", Key: "k"})
	var valid bytes.Buffer
	if err := writeSegmentFrame(&valid, payload.Bytes()); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:12])                   // truncated header
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated checksum
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[25] ^= 0x10 // payload bit flip -> checksum mismatch
	f.Add(flipped)
	forged := append([]byte(nil), valid.Bytes()...)
	forged[12], forged[13], forged[14] = 0xff, 0xff, 0xff // forged multi-MiB length
	f.Add(forged)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "seg"+SegmentExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSegment(path); err != nil && !errors.Is(err, ErrBadSegment) {
			t.Fatalf("untyped segment error: %v", err)
		}
	})
}
