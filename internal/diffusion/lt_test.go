package diffusion

import (
	"math"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

func TestValidateLT(t *testing.T) {
	ok := graph.FromEdges(3, [][3]float64{{0, 2, 0.5}, {1, 2, 0.5}})
	if err := ok.ValidateLT(); err != nil {
		t.Errorf("valid LT weights rejected: %v", err)
	}
	bad := graph.FromEdges(3, [][3]float64{{0, 2, 0.7}, {1, 2, 0.7}})
	if err := bad.ValidateLT(); err == nil {
		t.Error("in-weight sum 1.4 accepted")
	}
	// weighted cascade always satisfies LT (sums to exactly 1)
	rng := stats.NewRNG(1)
	wc := graph.ErdosRenyi(50, 200, rng).WeightedCascade()
	if err := wc.ValidateLT(); err != nil {
		t.Errorf("weighted cascade rejected: %v", err)
	}
}

func TestLTExactSpreadLine(t *testing.T) {
	// line 0 -> 1 -> 2 with p=0.5: same as IC for in-degree-1 nodes
	g := graph.Line(3, 0.5)
	got := ExactLTSpread(g, []graph.NodeID{0})
	if math.Abs(got-1.75) > 1e-6 {
		t.Errorf("exact LT spread %v, want 1.75", got)
	}
}

func TestLTSimMatchesExact(t *testing.T) {
	// diamond with in-degree-2 sink: LT differs from IC here
	g := graph.FromEdges(4, [][3]float64{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 3, 0.5}, {2, 3, 0.5},
	})
	exact := ExactLTSpread(g, []graph.NodeID{0})
	rng := stats.NewRNG(2)
	sim := NewLTSim(g)
	mc := sim.Spread([]graph.NodeID{0}, rng, 300000)
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("LT MC %v vs exact %v", mc, exact)
	}
	// sanity: under LT node 3 activates iff its single trigger is an
	// active parent, P = p(1,3)·P(1 active) + p(2,3)·P(2 active) = 0.5
	want := 1 + 0.5 + 0.5 + 0.5
	if math.Abs(exact-want) > 1e-6 {
		t.Errorf("exact %v, want %v", exact, want)
	}
}

func TestLTDiffersFromICOnDiamond(t *testing.T) {
	// The two models genuinely differ at the in-degree-2 sink: under IC
	// node 3 needs its own edge flips (P = 0.25·0.4375-ish ⇒ spread
	// 2.4375), under LT it inherits exactly one trigger (P = 0.5 ⇒
	// spread 2.5).
	g := graph.FromEdges(4, [][3]float64{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 3, 0.5}, {2, 3, 0.5},
	})
	ic := ExactSpread(g, []graph.NodeID{0})
	lt := ExactLTSpread(g, []graph.NodeID{0})
	if math.Abs(ic-2.4375) > 1e-6 {
		t.Errorf("IC exact %v, want 2.4375", ic)
	}
	if math.Abs(lt-2.5) > 1e-6 {
		t.Errorf("LT exact %v, want 2.5", lt)
	}
}

func TestSampleLTWorldOneTriggerPerNode(t *testing.T) {
	rng := stats.NewRNG(3)
	g := graph.ErdosRenyi(40, 200, rng).WeightedCascade()
	for trial := 0; trial < 20; trial++ {
		w := SampleLTWorld(g, rng)
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			live := 0
			for _, u := range w.LiveInNeighbors(v) {
				_ = u
				live++
			}
			if live > 1 {
				t.Fatalf("node %d has %d live in-edges under LT", v, live)
			}
		}
	}
}

func TestSampleLTWorldTriggerFrequency(t *testing.T) {
	// node 2 has two in-edges with p 0.3 and 0.5: trigger frequencies
	// must match
	g := graph.FromEdges(3, [][3]float64{{0, 2, 0.3}, {1, 2, 0.5}})
	rng := stats.NewRNG(4)
	const trials = 100000
	counts := map[graph.NodeID]int{}
	none := 0
	for i := 0; i < trials; i++ {
		w := SampleLTWorld(g, rng)
		ns := w.LiveInNeighbors(2)
		if len(ns) == 0 {
			none++
		} else {
			counts[ns[0]]++
		}
	}
	if math.Abs(float64(counts[0])/trials-0.3) > 0.01 {
		t.Errorf("trigger 0 frequency %v, want 0.3", float64(counts[0])/trials)
	}
	if math.Abs(float64(counts[1])/trials-0.5) > 0.01 {
		t.Errorf("trigger 1 frequency %v, want 0.5", float64(counts[1])/trials)
	}
	if math.Abs(float64(none)/trials-0.2) > 0.01 {
		t.Errorf("no-trigger frequency %v, want 0.2", float64(none)/trials)
	}
}

func TestLTSimEpochReuse(t *testing.T) {
	g := graph.Line(3, 1)
	sim := NewLTSim(g)
	rng := stats.NewRNG(5)
	for i := 0; i < 100; i++ {
		if got := sim.RunOnce([]graph.NodeID{0}, rng); got != 3 {
			t.Fatalf("run %d: spread %d, want 3 (p=1 line)", i, got)
		}
	}
}

func TestExactLTSpreadPanicsOnLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rng := stats.NewRNG(6)
	ExactLTSpread(graph.ErdosRenyi(100, 800, rng).WeightedCascade(), []graph.NodeID{0})
}
