package welfare

import (
	"uicwelfare/internal/expr"
	"uicwelfare/internal/graph"
)

// NetworkNames lists the built-in synthetic stand-ins for the paper's
// datasets (Table 2): flixster, douban-book, douban-movie, twitter,
// orkut.
func NetworkNames() []string {
	names := make([]string, len(expr.Networks))
	for i, ns := range expr.Networks {
		names[i] = ns.Name
	}
	return names
}

// GenerateNetwork synthesizes one of the built-in stand-in networks at
// the given scale (1.0 = default size) with weighted-cascade edge
// probabilities. It panics on an unknown name; see NetworkNames.
func GenerateNetwork(name string, scale float64, seed uint64) *Graph {
	spec, err := expr.NetworkByName(name)
	if err != nil {
		panic(err)
	}
	return spec.Generate(scale, seed)
}

// BuildGraph assembles a directed graph from explicit (u, v, p) triples.
func BuildGraph(n int, edges [][3]float64) *Graph { return graph.FromEdges(n, edges) }

// ErdosRenyi generates a directed G(n, m) random graph (probabilities
// unset; call WeightedCascade or UniformProb on the result).
func ErdosRenyi(n, m int, rng *RNG) *Graph { return graph.ErdosRenyi(n, m, rng) }

// BarabasiAlbert generates an undirected preferential-attachment graph.
func BarabasiAlbert(n, k int, rng *RNG) *Graph { return graph.BarabasiAlbert(n, k, rng) }

// PreferentialDirected generates a directed heavy-tailed graph with
// partial reciprocity, the stand-in shape for follower networks.
func PreferentialDirected(n, k int, rng *RNG) *Graph {
	return graph.PreferentialDirected(n, k, rng)
}
