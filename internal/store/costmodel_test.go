package store

import (
	"sync"
	"testing"
)

func TestCostModelUncalibratedPassesThrough(t *testing.T) {
	m := NewCostModel()
	if got := m.Predict(1000); got != 1000 {
		t.Fatalf("Predict = %d, want 1000", got)
	}
	if ratio, samples := m.Snapshot(); ratio != 1 || samples != 0 {
		t.Fatalf("Snapshot = (%g, %d), want (1, 0)", ratio, samples)
	}
}

func TestCostModelLearnsOvershootRatio(t *testing.T) {
	m := NewCostModel()
	// Estimator consistently overshoots 10x: actual = predicted/10.
	for i := 0; i < 20; i++ {
		m.Observe(10_000, 1_000)
	}
	got := m.Predict(50_000)
	if got < 4_000 || got > 6_000 {
		t.Fatalf("calibrated Predict(50k) = %d, want ~5000", got)
	}
	if _, samples := m.Snapshot(); samples != 20 {
		t.Fatalf("samples = %d, want 20", samples)
	}
}

func TestCostModelFirstSampleSeedsRatio(t *testing.T) {
	m := NewCostModel()
	m.Observe(1_000, 100)
	if ratio, _ := m.Snapshot(); ratio != 0.1 {
		t.Fatalf("ratio after first sample = %g, want 0.1 (no blend with the uncalibrated 1)", ratio)
	}
}

func TestCostModelClampsPathologicalSamples(t *testing.T) {
	m := NewCostModel()
	m.Observe(1, 1<<50) // absurd actual/predicted
	if ratio, _ := m.Snapshot(); ratio > costModelClamp {
		t.Fatalf("ratio = %g, want clamped to %g", ratio, costModelClamp)
	}
	m2 := NewCostModel()
	m2.Observe(1<<50, 1)
	if ratio, _ := m2.Snapshot(); ratio < 1/costModelClamp {
		t.Fatalf("ratio = %g, want clamped to %g", ratio, 1/costModelClamp)
	}
	// Degenerate observations carry no information.
	m3 := NewCostModel()
	m3.Observe(0, 100)
	m3.Observe(100, 0)
	if _, samples := m3.Snapshot(); samples != 0 {
		t.Fatalf("degenerate observations were counted: samples = %d", samples)
	}
}

func TestCostModelConcurrent(t *testing.T) {
	m := NewCostModel()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Observe(1000, 500)
				m.Predict(1000)
				m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if ratio, samples := m.Snapshot(); samples != 800 || ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("Snapshot = (%g, %d), want (~0.5, 800)", ratio, samples)
	}
}
