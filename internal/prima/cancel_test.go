package prima

import (
	"context"
	"errors"
	"testing"
	"time"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
)

func TestBuildSketchCtxPreCanceled(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, stats.NewRNG(1)).WeightedCascade()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sk, err := BuildSketchCtx(ctx, g, []int{10, 5}, Options{}, stats.NewRNG(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sk != nil {
		t.Fatalf("canceled build returned a sketch: %+v", sk)
	}
}

// TestBuildSketchCtxCancelMidBuild cancels a deliberately expensive
// build (tiny ε inflates θ by ~1/ε²) shortly after it starts and checks
// the builder returns promptly instead of sampling to completion.
func TestBuildSketchCtxCancelMidBuild(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 6, stats.NewRNG(1)).WeightedCascade()
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{})
	opts := Options{Eps: 0.05, Progress: func(progress.Event) {
		select {
		case <-started:
		default:
			close(started)
		}
	}}

	done := make(chan error, 1)
	go func() {
		_, err := BuildSketchCtx(ctx, g, []int{20, 10}, opts, stats.NewRNG(2))
		done <- err
	}()

	select {
	case <-started: // at least one sampling chunk completed
	case <-time.After(30 * time.Second):
		t.Fatal("build never reported progress")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled build did not return promptly")
	}
}
