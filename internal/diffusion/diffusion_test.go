package diffusion

import (
	"math"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

func TestRunOnceDeterministicEdges(t *testing.T) {
	// all probabilities 1: cascade covers everything reachable
	g := graph.Line(5, 1.0)
	sim := NewSim(g)
	rng := stats.NewRNG(1)
	if got := sim.RunOnce([]graph.NodeID{0}, rng); got != 5 {
		t.Errorf("spread from head of line = %d, want 5", got)
	}
	if got := sim.RunOnce([]graph.NodeID{3}, rng); got != 2 {
		t.Errorf("spread from node 3 = %d, want 2", got)
	}
}

func TestRunOnceZeroProb(t *testing.T) {
	g := graph.Line(5, 0.0)
	sim := NewSim(g)
	rng := stats.NewRNG(1)
	if got := sim.RunOnce([]graph.NodeID{0}, rng); got != 1 {
		t.Errorf("spread = %d, want 1 (only seed)", got)
	}
}

func TestRunOnceDuplicateSeeds(t *testing.T) {
	g := graph.Line(3, 1.0)
	sim := NewSim(g)
	rng := stats.NewRNG(1)
	if got := sim.RunOnce([]graph.NodeID{0, 0, 0}, rng); got != 3 {
		t.Errorf("duplicate seeds counted twice: %d", got)
	}
}

func TestSpreadMatchesExactOnLine(t *testing.T) {
	// line 0 -> 1 -> 2 with p = 0.5: sigma({0}) = 1 + 0.5 + 0.25 = 1.75
	g := graph.Line(3, 0.5)
	exact := ExactSpread(g, []graph.NodeID{0})
	if math.Abs(exact-1.75) > 1e-6 {
		t.Fatalf("exact = %v, want 1.75", exact)
	}
	rng := stats.NewRNG(7)
	mc := Spread(g, []graph.NodeID{0}, rng, 200000)
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("MC spread %v vs exact %v", mc, exact)
	}
}

func TestSpreadMatchesExactOnStar(t *testing.T) {
	// star hub -> 4 leaves with p = 0.3: sigma({hub}) = 1 + 4*0.3 = 2.2
	g := graph.Star(5, 0.3)
	exact := ExactSpread(g, []graph.NodeID{0})
	if math.Abs(exact-2.2) > 1e-6 {
		t.Fatalf("exact = %v, want 2.2", exact)
	}
	rng := stats.NewRNG(8)
	mc := Spread(g, []graph.NodeID{0}, rng, 200000)
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("MC %v vs exact %v", mc, exact)
	}
}

func TestSpreadMatchesExactOnDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, all p=0.5
	g := graph.FromEdges(4, [][3]float64{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 3, 0.5}, {2, 3, 0.5},
	})
	exact := ExactSpread(g, []graph.NodeID{0})
	// E = 1 + 0.5 + 0.5 + P(3 active)
	// P(3) = P(at least one live path) = by symmetry:
	// P(1 active and 1->3 live) or (2 active and 2->3 live)
	// = 1 - (1 - 0.25)^2 = 0.4375
	want := 1 + 0.5 + 0.5 + 0.4375
	if math.Abs(exact-want) > 1e-6 {
		t.Fatalf("exact = %v, want %v", exact, want)
	}
	rng := stats.NewRNG(9)
	mc := Spread(g, []graph.NodeID{0}, rng, 300000)
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("MC %v vs exact %v", mc, exact)
	}
}

func TestSpreadMonotoneInSeeds(t *testing.T) {
	rng := stats.NewRNG(10)
	g := graph.ErdosRenyi(60, 240, rng).WeightedCascade()
	sim := NewSim(g)
	s1 := sim.Spread([]graph.NodeID{0}, rng, 20000)
	s2 := sim.Spread([]graph.NodeID{0, 1, 2}, rng, 20000)
	if s2+0.05 < s1 {
		t.Errorf("spread not monotone: sigma({0})=%v sigma({0,1,2})=%v", s1, s2)
	}
}

func TestSpreadSummary(t *testing.T) {
	g := graph.Line(3, 0.5)
	rng := stats.NewRNG(11)
	sum := NewSim(g).SpreadSummary([]graph.NodeID{0}, rng, 50000)
	if sum.N() != 50000 {
		t.Fatalf("N=%d", sum.N())
	}
	if math.Abs(sum.Mean()-1.75) > 0.02 {
		t.Errorf("mean %v", sum.Mean())
	}
	if sum.StdErr() <= 0 {
		t.Errorf("stderr should be positive")
	}
}

func TestEpochWraparound(t *testing.T) {
	g := graph.Line(2, 1)
	sim := NewSim(g)
	sim.epoch = int32(math.MaxInt32) - 1
	rng := stats.NewRNG(1)
	for i := 0; i < 4; i++ {
		if got := sim.RunOnce([]graph.NodeID{0}, rng); got != 2 {
			t.Fatalf("run %d after wraparound: spread %d", i, got)
		}
	}
}

func TestLiveEdgeWorldReachability(t *testing.T) {
	g := graph.FromEdges(4, [][3]float64{{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}})
	w := NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool {
		return !(u == 1 && v == 2) // cut the middle edge
	})
	r := w.Reachable([]graph.NodeID{0})
	if !r[0] || !r[1] || r[2] || r[3] {
		t.Errorf("reachable = %v", r)
	}
	if w.CountReachable([]graph.NodeID{0}) != 2 {
		t.Errorf("count = %d", w.CountReachable([]graph.NodeID{0}))
	}
}

func TestLiveEdgeWorldAllLive(t *testing.T) {
	g := graph.Complete(5, 1)
	rng := stats.NewRNG(12)
	w := SampleLiveEdgeWorld(g, rng)
	if w.CountReachable([]graph.NodeID{2}) != 5 {
		t.Errorf("probability-1 world should reach all nodes")
	}
}

func TestLiveEdgeWorldMatchesSpread(t *testing.T) {
	// averaging reachability over sampled worlds approximates sigma
	g := graph.Line(3, 0.5)
	rng := stats.NewRNG(13)
	total := 0
	const worlds = 100000
	for i := 0; i < worlds; i++ {
		w := SampleLiveEdgeWorld(g, rng)
		total += w.CountReachable([]graph.NodeID{0})
	}
	got := float64(total) / worlds
	if math.Abs(got-1.75) > 0.02 {
		t.Errorf("live-edge estimate %v, want 1.75", got)
	}
}

func TestLiveInNeighbors(t *testing.T) {
	g := graph.FromEdges(3, [][3]float64{{0, 2, 1}, {1, 2, 1}})
	w := NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool { return u == 0 })
	ns := w.LiveInNeighbors(2)
	if len(ns) != 1 || ns[0] != 0 {
		t.Errorf("live in-neighbors = %v", ns)
	}
}

func TestEnumerateWorldsProbabilitySumsToOne(t *testing.T) {
	g := graph.FromEdges(3, [][3]float64{{0, 1, 0.3}, {1, 2, 0.6}})
	total := 0.0
	EnumerateWorlds(g, func(w *LiveEdgeWorld, p float64) { total += p })
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("world probabilities sum to %v", total)
	}
}

func TestExactSpreadPanicsOnLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for large graph")
		}
	}()
	rng := stats.NewRNG(1)
	ExactSpread(graph.ErdosRenyi(30, 100, rng), []graph.NodeID{0})
}

func TestGreedySpreadMCPicksHub(t *testing.T) {
	// star with strong edges: greedy must pick the hub first
	g := graph.Star(8, 0.9)
	rng := stats.NewRNG(14)
	seeds := GreedySpreadMC(g, 1, 2000, rng)
	if len(seeds) != 1 || seeds[0] != 0 {
		t.Errorf("greedy picked %v, want hub 0", seeds)
	}
}

func TestGreedySpreadMCBudgetClamp(t *testing.T) {
	g := graph.Line(3, 1)
	rng := stats.NewRNG(15)
	seeds := GreedySpreadMC(g, 10, 100, rng)
	if len(seeds) != 3 {
		t.Errorf("budget clamp: got %d seeds", len(seeds))
	}
}
