package welfare

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/oracle"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Extensions beyond the paper's core experiments, each called out in its
// §5 discussion: triggering models other than IC, submodular bundle
// prices, personalized noise, and an influence oracle.

// Cascade selects the diffusion model: CascadeIC (default) or CascadeLT.
type Cascade = graph.Cascade

// The two built-in triggering models. All of the paper's results carry
// over from IC to LT (§5); set Options.Cascade and Simulator.Cascade to
// switch.
const (
	CascadeIC = graph.CascadeIC
	CascadeLT = graph.CascadeLT
)

// PriceFunc is a set-valued bundle price (P(∅)=0, positive elsewhere).
type PriceFunc = utility.PriceFunc

// VolumeDiscount builds a submodular bundle price: additive base prices
// minus d per item pair, floored at minFrac of the additive price.
// Supermodular valuation minus submodular price stays supermodular, so
// bundleGRD's guarantee is preserved (§5).
func VolumeDiscount(base []float64, d, minFrac float64) PriceFunc {
	return utility.VolumeDiscount(base, d, minFrac)
}

// NewModelWithPrice assembles a model with a custom (e.g. submodular)
// bundle price. perItem must list the singleton prices P({i}).
func NewModelWithPrice(val Valuation, price PriceFunc, perItem []float64, noise []NoiseDist) (*Model, error) {
	return utility.NewModelWithPrice(val, price, perItem, noise)
}

// PersonalizedSimulator runs the §5 extension where every node draws its
// own noise world. The approximation guarantee of bundleGRD does not
// carry over (the tests demonstrate the reachability failure); the
// simulator supports empirical study of the model.
type PersonalizedSimulator = uic.PersonalizedSim

// NewPersonalizedSimulator builds a personalized-noise simulator.
func NewPersonalizedSimulator(g *Graph, m *Model) *PersonalizedSimulator {
	return uic.NewPersonalizedSim(g, m)
}

// Oracle answers budget queries (seed sets, spreads, bundleGRD
// allocations) from one prefix-preserving precomputation.
type Oracle = oracle.Oracle

// OracleOptions configures BuildOracle.
type OracleOptions = oracle.Options

// BuildOracle precomputes a prefix-preserving seed ordering up to
// maxBudget; queries then cost O(answer size).
func BuildOracle(g *Graph, maxBudget int, opts OracleOptions, rng *RNG) (*Oracle, error) {
	return oracle.Build(g, maxBudget, opts, rng)
}
