package graph

import "sort"

// Stats summarizes a network's structure; it backs Table 2 of the paper.
type Stats struct {
	Nodes     int
	Edges     int
	AvgDegree float64
	MaxOutDeg int
	MaxInDeg  int
	// Symmetric is true when every edge's reverse also exists, i.e. the
	// graph encodes an undirected network.
	Symmetric bool
}

// ComputeStats scans the graph once and returns its statistics.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.N(), Edges: g.M(), AvgDegree: g.AvgDegree(), Symmetric: true}
	for v := NodeID(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := g.InDegree(v); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	s.Symmetric = isSymmetric(g)
	return s
}

func isSymmetric(g *Graph) bool {
	for u := NodeID(0); int(u) < g.N(); u++ {
		ts, _ := g.OutEdges(u)
		for _, v := range ts {
			if !hasEdge(g, v, u) {
				return false
			}
		}
	}
	return true
}

func hasEdge(g *Graph, u, v NodeID) bool {
	ts, _ := g.OutEdges(u)
	// out-lists are sorted by target after Build
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	return i < len(ts) && ts[i] == v
}

// DegreeHistogram returns counts of out-degrees, indexed by degree.
func DegreeHistogram(g *Graph) []int {
	maxd := 0
	for v := NodeID(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d > maxd {
			maxd = d
		}
	}
	h := make([]int, maxd+1)
	for v := NodeID(0); int(v) < g.N(); v++ {
		h[g.OutDegree(v)]++
	}
	return h
}
