package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"uicwelfare/internal/graph"
)

// EncodeGraph writes g as a .wmg frame: the caller's name label, then
// the canonical out-CSR — per-node degree followed by delta-coded sorted
// targets with their probabilities. Delta coding keeps the varints short
// on the clustered targets real networks produce; the in-adjacency is
// not stored because DecodeGraph rebuilds it deterministically.
func EncodeGraph(w io.Writer, name string, g *graph.Graph) error {
	outIndex, outTo, outProb := g.CSR()
	var p payloadWriter
	p.string(name)
	p.uvarint(uint64(g.N()))
	p.uvarint(uint64(g.M()))
	for v := 0; v < g.N(); v++ {
		lo, hi := outIndex[v], outIndex[v+1]
		p.uvarint(uint64(hi - lo))
		prev := int64(-1)
		for j := lo; j < hi; j++ {
			t := int64(outTo[j])
			p.uvarint(uint64(t - prev)) // strictly sorted row: delta >= 1
			prev = t
		}
		for j := lo; j < hi; j++ {
			p.float32(outProb[j])
		}
	}
	return writeFrame(w, GraphMagic, p.buf.Bytes())
}

// DecodeGraph reads one .wmg frame and reconstructs the graph through
// graph.FromCSR, which re-validates the structure and rebuilds the
// in-adjacency — so DecodeGraph(EncodeGraph(g)) is structurally equal to
// g, and a corrupt file yields a typed error, never a broken graph.
func DecodeGraph(r io.Reader) (name string, g *graph.Graph, err error) {
	payload, err := readFrame(r, GraphMagic)
	if err != nil {
		return "", nil, err
	}
	p := payloadReader{rest: payload}
	if name, err = p.string(); err != nil {
		return "", nil, err
	}
	n64, err := p.uvarint()
	if err != nil {
		return "", nil, err
	}
	m64, err := p.uvarint()
	if err != nil {
		return "", nil, err
	}
	const maxNodes = 1 << 31 // NodeID is int32
	// Bound n against the remaining bytes too (every node contributes at
	// least a one-byte degree): a forged header declaring n=2^31 in a
	// 30-byte frame must not allocate a 17 GiB offset slice — this codec
	// reads unauthenticated request bodies (wmg / /v1/graphs/import).
	if n64 > maxNodes || n64 > uint64(len(p.rest)) || m64 > uint64(len(p.rest)) {
		return "", nil, fmt.Errorf("%w: implausible n=%d m=%d", ErrCorrupt, n64, m64)
	}
	n, m := int(n64), int(m64)
	outIndex := make([]int64, n+1)
	outTo := make([]graph.NodeID, 0, m)
	outProb := make([]float32, 0, m)
	for v := 0; v < n; v++ {
		deg, err := p.count()
		if err != nil {
			return "", nil, err
		}
		prev := int64(-1)
		for j := 0; j < deg; j++ {
			d, err := p.uvarint()
			if err != nil {
				return "", nil, err
			}
			t := prev + int64(d)
			if t >= maxNodes {
				return "", nil, fmt.Errorf("%w: edge target %d overflows", ErrCorrupt, t)
			}
			outTo = append(outTo, graph.NodeID(t))
			prev = t
		}
		for j := 0; j < deg; j++ {
			pr, err := p.float32()
			if err != nil {
				return "", nil, err
			}
			outProb = append(outProb, pr)
		}
		outIndex[v+1] = int64(len(outTo))
	}
	if err := p.done(); err != nil {
		return "", nil, err
	}
	if len(outTo) != m {
		return "", nil, fmt.Errorf("%w: degrees sum to %d edges, header says %d", ErrCorrupt, len(outTo), m)
	}
	g, err = graph.FromCSR(n, outIndex, outTo, outProb)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return name, g, nil
}

// GraphID content-addresses a graph: a SHA-256 over the node count and
// the canonical CSR edge list (targets and probabilities in sorted
// order), truncated to 16 hex digits and prefixed "g". Two structurally
// equal graphs — however they were loaded or generated — hash to the
// same id, so duplicate registrations dedupe and ids survive daemon
// restarts. The probability bits participate: the same topology under
// weighted-cascade vs. kept probabilities is a different diffusion
// instance and gets a different id.
func GraphID(g *graph.Graph) string {
	h := sha256.New()
	var word [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(word[:], x)
		h.Write(word[:])
	}
	writeU64(uint64(g.N()))
	writeU64(uint64(g.M()))
	outIndex, outTo, outProb := g.CSR()
	for v := 0; v < g.N(); v++ {
		writeU64(uint64(outIndex[v+1] - outIndex[v]))
	}
	var buf [8]byte
	for i, t := range outTo {
		binary.LittleEndian.PutUint32(buf[:4], uint32(t))
		binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(outProb[i]))
		h.Write(buf[:])
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("g%x", sum[:8])
}
