package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/journal"
	"uicwelfare/internal/service"
	"uicwelfare/internal/store"
	"uicwelfare/internal/sweep"
	"uicwelfare/internal/telemetry"
)

// The experiment-sweep subsystem, cluster half. The router accepts the
// same POST /v1/sweeps grid spec a single backend does, but executes it
// as a compute-plane scheduler: each cell is dispatched to the shard
// that owns its graph (HRW placement — the sketches a cell needs are
// where its graph is), with bounded in-flight cells per shard, retry
// with backoff on transient refusals (429 admission, 502 owner-down
// during a rebalance), and pre-admission at the edge — cells whose
// predicted sketch cost is obviously over the owner's admission budget
// fail at the router without burning a dispatch. A dead shard fails
// only its own unfinished cells; the sweep completes with those rows
// marked failed. The sweep is a job in the router's own JobStore, so
// SSE progress, cancellation, and retention work exactly as on a
// backend, and results land as the same .wsr artifact format.

// sweepRecord is one finished sweep's in-memory result (see the
// identically-shaped record in internal/service).
type sweepRecord struct {
	artifactID string
	res        *store.SweepResult
}

// maxSweepRecords bounds the router's in-memory result index; older
// sweeps fall back to their artifact under spillDir/sweeps.
const maxSweepRecords = 32

func (r *Router) rememberSweep(jobID, artifactID string, res *store.SweepResult) {
	r.sweepMu.Lock()
	defer r.sweepMu.Unlock()
	if _, exists := r.sweepResults[jobID]; !exists {
		r.sweepOrder = append(r.sweepOrder, jobID)
		if len(r.sweepOrder) > maxSweepRecords {
			delete(r.sweepResults, r.sweepOrder[0])
			r.sweepOrder = r.sweepOrder[1:]
		}
	}
	r.sweepResults[jobID] = &sweepRecord{artifactID: artifactID, res: res}
}

func (r *Router) lookupSweep(jobID string) (*sweepRecord, bool) {
	r.sweepMu.Lock()
	defer r.sweepMu.Unlock()
	rec, ok := r.sweepResults[jobID]
	return rec, ok
}

// sweepSpillDir is where router-run sweeps persist their .wsr
// artifacts (next to the graph catalog spill).
func (r *Router) sweepSpillDir() string {
	return filepath.Join(r.spillDir, "sweeps")
}

// --- pre-admission ------------------------------------------------------

// backendAdmission is one shard's admission posture, read off its
// /v1/metrics gauges: the configured budget, the global calibration
// ratio, and the per-graph ratios (welmax_graph_cost_ratio{graph_id}).
type backendAdmission struct {
	budgetBytes float64
	globalRatio float64
	graphRatio  map[string]float64
}

// refreshAdmission snapshots every live backend's admission gauges in
// one metrics fanout. Backends that fail the fetch are simply absent —
// pre-admission then waves their cells through and lets the shard's own
// admission control decide, which is always the safe direction.
func (r *Router) refreshAdmission(ctx context.Context) map[string]*backendAdmission {
	out := map[string]*backendAdmission{}
	for _, res := range r.fanout(ctx, http.MethodGet, "/v1/metrics?format=json") {
		if res.err != nil || res.status != http.StatusOK {
			continue
		}
		var export telemetry.Export
		if err := json.Unmarshal(res.body, &export); err != nil {
			continue
		}
		adm := &backendAdmission{graphRatio: map[string]float64{}}
		for _, g := range export.Gauges {
			switch g.Name {
			case "welmax_admission_max_bytes":
				adm.budgetBytes = g.Value
			case "welmax_cost_ratio_global":
				adm.globalRatio = g.Value
			case "welmax_graph_cost_ratio":
				for _, l := range g.Labels {
					if l.Name == "graph_id" {
						adm.graphRatio[l.Value] = g.Value
					}
				}
			}
		}
		out[res.backend] = adm
	}
	return out
}

// preAdmitSlack is how far over a shard's admission budget a cell's
// predicted cost must be before the router refuses to dispatch it.
// Deliberately loose (2×): the router's estimate is made from relayed
// gauges that may be a sweep old, and a borderline cell deserves the
// shard's own, fresher verdict — pre-admission exists to stop the
// obviously hopeless cells, not to replicate admission control.
const preAdmitSlack = 2.0

// preAdmit prices one cell against its owner's snapshot, mirroring the
// backend's EstimateCost: the planner's a-priori estimator scaled by
// the owner's learned calibration ratio. A nil error means "dispatch".
func (r *Router) preAdmit(adm map[string]*backendAdmission, owner string, nodes, edges int, c *sweep.Cell) error {
	a := adm[owner]
	if a == nil || a.budgetBytes <= 0 {
		return nil // no snapshot, or admission disabled on the owner
	}
	_, meta, err := core.Lookup(c.Algo)
	if err != nil || meta.CostEstimator == nil {
		return nil // unknown planner: the owner will answer; unpriceable: bypass
	}
	eps, ell := service.DefaultEpsEll(c.Eps, 0)
	raw := meta.CostEstimator(nodes, edges, eps, ell, c.Budgets)
	ratio := a.graphRatio[c.GraphID]
	if ratio <= 0 {
		ratio = a.globalRatio
	}
	if ratio <= 0 {
		ratio = 1
	}
	predicted := int64(float64(raw) * ratio)
	if limit := int64(a.budgetBytes * preAdmitSlack); predicted > limit {
		return fmt.Errorf("router pre-admission: predicted sketch cost %d bytes is over %.0fx backend %s's admission budget (%d bytes)",
			predicted, preAdmitSlack, owner, int64(a.budgetBytes))
	}
	return nil
}

// --- sweep execution ----------------------------------------------------

// handleCreateSweep implements the router's POST /v1/sweeps: expand the
// grid, require every referenced graph to be cataloged (a sweep over a
// graph the router cannot place is a spec error, answered 400 now
// rather than N failed cells later), and run the sweep as a router job.
func (r *Router) handleCreateSweep(w http.ResponseWriter, req *http.Request) {
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cells, err := sweep.Expand(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r.mu.Lock()
	for _, id := range spec.GraphIDs {
		if r.catalog[id] == nil {
			r.mu.Unlock()
			writeError(w, http.StatusBadRequest, fmt.Errorf("graph %s is not registered with the router (register it through POST /v1/graphs first)", id))
			return
		}
	}
	r.mu.Unlock()
	tr := telemetry.NewTrace(telemetry.SanitizeID(req.Header.Get(telemetry.TraceHeader)), true)
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	job := r.jobs.Create("sweep", tr.ID(), &spec)
	go r.runSweep(job.ID, tr, &spec, cells)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"sweep_id": job.ID,
		"state":    service.JobQueued,
		"cells":    len(cells),
		"trace_id": tr.ID(),
	})
}

func (r *Router) runSweep(jobID string, tr *telemetry.Trace, spec *sweep.Spec, cells []sweep.Cell) {
	ctx, ok := r.jobs.Start(jobID)
	if !ok {
		return // canceled while queued
	}
	ctx = telemetry.NewContext(ctx, tr)
	summary, err := r.executeSweep(ctx, jobID, spec, cells)
	r.jobs.SetStages(jobID, tr.Stages())
	r.jobs.Finish(jobID, summary, err)
}

// executeSweep dispatches the cells across the cluster with bounded
// per-shard concurrency and lands the .wsr artifact. The admission
// snapshot is taken once per sweep: cheap, and fresh enough for the
// deliberately-loose pre-admission threshold.
func (r *Router) executeSweep(ctx context.Context, jobID string, spec *sweep.Spec, cells []sweep.Cell) (*sweep.Summary, error) {
	started := time.Now()
	traceID := ""
	if tr := telemetry.FromContext(ctx); tr != nil {
		traceID = tr.ID()
	}
	adm := r.refreshAdmission(ctx)
	rows := make([]store.SweepCell, len(cells))
	var (
		semMu sync.Mutex
		sems  = map[string]chan struct{}{}
	)
	// semFor lazily creates one shard's in-flight bound. A cell holds the
	// slot from dispatch through its terminal poll: the bound is on cells
	// occupying the shard, not on concurrent HTTP calls.
	semFor := func(owner string) chan struct{} {
		semMu.Lock()
		defer semMu.Unlock()
		if sems[owner] == nil {
			sems[owner] = make(chan struct{}, r.shardConc)
		}
		return sems[owner]
	}
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i] = r.runRemoteCell(ctx, jobID, adm, semFor, spec, &cells[i])
			r.finishCell(jobID, &rows[i], int(completed.Add(1)), len(cells))
		}(i)
	}
	wg.Wait()

	res := &store.SweepResult{
		SweepID:  jobID,
		Name:     spec.Name,
		TraceID:  traceID,
		SpecJSON: spec.Marshal(),
		Cells:    rows,
	}
	artifactID := store.SweepResultID(res)
	persisted := false
	if id, err := store.SaveSweepFile(r.sweepSpillDir(), res); err == nil {
		artifactID, persisted = id, true
	}
	r.rememberSweep(jobID, artifactID, res)

	summary := &sweep.Summary{
		SweepID:    jobID,
		Name:       spec.Name,
		Cells:      len(rows),
		ArtifactID: artifactID,
		Persisted:  persisted,
		ElapsedMS:  time.Since(started).Milliseconds(),
	}
	for i := range rows {
		switch rows[i].State {
		case string(service.JobDone):
			summary.Done++
		case string(service.JobFailed):
			summary.Failed++
		case string(service.JobCanceled):
			summary.Canceled++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return summary, nil
}

// finishCell publishes a cell's terminal event and feeds the router's
// sweep counters (mirrors the backend-side finishCell).
func (r *Router) finishCell(sweepJobID string, row *store.SweepCell, completed, total int) {
	switch row.State {
	case string(service.JobDone):
		r.sweepCellsDone.Add(1)
	case string(service.JobCanceled):
		r.sweepCellsCanceled.Add(1)
	default:
		r.sweepCellsFailed.Add(1)
	}
	r.jobs.Publish(sweepJobID, service.JobEvent{
		Type:      service.EventProgress,
		Stage:     "cell",
		Cell:      row.CellID,
		CellState: row.State,
		CellJob:   row.JobID,
		Node:      row.Node,
		Done:      completed,
		Total:     total,
	})
}

// Remote-cell retry policy: transient refusals (owner down or mid-move,
// 429 admission, full job queue, transport errors) back off and retry;
// after the attempts are exhausted the cell fails — and only that cell.
const (
	maxCellAttempts   = 4
	cellRetryBackoff  = 100 * time.Millisecond
	cellPollInterval  = 100 * time.Millisecond
	cellCancelTimeout = 2 * time.Second
)

// runRemoteCell drives one cell to a terminal row: resolve the graph's
// owner, pre-admit, dispatch the allocate, and poll the owner's job to
// completion. Each retry re-resolves ownership, so a cell interrupted
// by a rebalance lands on the graph's new home.
func (r *Router) runRemoteCell(ctx context.Context, sweepJobID string, adm map[string]*backendAdmission, semFor func(string) chan struct{}, spec *sweep.Spec, c *sweep.Cell) store.SweepCell {
	row := store.SweepCell{
		Index:   c.Index,
		CellID:  c.ID,
		GraphID: c.GraphID,
		Algo:    c.Algo,
		Config:  c.Config,
		Cascade: c.Cascade,
		Eps:     c.Eps,
		Budgets: c.Budgets,
		Seed:    c.Seed,
	}
	r.mu.Lock()
	var nodes, edges int
	if rec := r.catalog[c.GraphID]; rec != nil {
		nodes, edges = rec.nodes, rec.edges
	}
	r.mu.Unlock()
	body, err := json.Marshal(service.CellAllocateRequest(spec, c))
	if err != nil {
		row.State = string(service.JobFailed)
		row.Error = err.Error()
		return row
	}
	started := time.Now()
	announced := false
	fail := func(msg string) store.SweepCell {
		row.State = string(service.JobFailed)
		row.Error = msg
		row.ElapsedMS = time.Since(started).Milliseconds()
		return row
	}
	cancelRow := func() store.SweepCell {
		row.State = string(service.JobCanceled)
		row.Error = ctx.Err().Error()
		row.ElapsedMS = time.Since(started).Milliseconds()
		return row
	}
	var lastErr error
	prevOwner := ""
	for attempt := 0; attempt < maxCellAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(cellRetryBackoff << (attempt - 1)):
			case <-ctx.Done():
				return cancelRow()
			}
		}
		owner, err := r.ownerOf(c.GraphID)
		if err != nil {
			lastErr = err // owner down; a rebalance may revive the cell
			r.flight.Record(journal.Event{
				Type: journal.SweepRetry, Sweep: sweepJobID, Cell: c.ID, Graph: c.GraphID,
				Count: int64(attempt + 1), TraceID: edgeTraceID(ctx), Error: err.Error(),
			})
			continue
		}
		// A retry that re-resolves to a different shard is the sweep
		// scheduler following a rebalance: journal the failover so the
		// cell's path across the cluster is reconstructable.
		if prevOwner != "" && owner != prevOwner {
			r.flight.Record(journal.Event{
				Type: journal.SweepShardFailover, Sweep: sweepJobID, Cell: c.ID, Graph: c.GraphID,
				From: prevOwner, To: owner, TraceID: edgeTraceID(ctx),
			})
		}
		prevOwner = owner
		if err := r.preAdmit(adm, owner, nodes, edges, c); err != nil {
			// Obviously over budget wherever it lands: failing now is the
			// point of pre-admission (no dispatch, no 429 round-trips).
			r.preAdmitRejects.Add(1)
			return fail(err.Error())
		}
		row.Node = owner
		sem := semFor(owner)
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return cancelRow()
		}
		if !announced {
			announced = true
			r.jobs.Publish(sweepJobID, service.JobEvent{
				Type: service.EventProgress, Stage: "cell", Cell: c.ID,
				CellState: string(service.JobRunning), Node: owner,
			})
		}
		r.flight.Record(journal.Event{
			Type: journal.SweepDispatch, Sweep: sweepJobID, Cell: c.ID, Graph: c.GraphID,
			To: owner, Count: int64(attempt + 1), TraceID: edgeTraceID(ctx),
		})
		outcome, retryable := r.dispatchCell(ctx, &row, owner, body)
		<-sem
		switch outcome {
		case cellDone:
			row.State = string(service.JobDone)
			row.ElapsedMS = time.Since(started).Milliseconds()
			return row
		case cellFailed:
			row.ElapsedMS = time.Since(started).Milliseconds()
			row.State = string(service.JobFailed)
			return row
		case cellCanceled:
			return cancelRow()
		case cellRetry:
			lastErr = retryable
			msg := ""
			if retryable != nil {
				msg = retryable.Error()
			}
			r.flight.Record(journal.Event{
				Type: journal.SweepRetry, Sweep: sweepJobID, Cell: c.ID, Graph: c.GraphID,
				Count: int64(attempt + 1), TraceID: edgeTraceID(ctx), Error: msg,
			})
		}
	}
	msg := fmt.Sprintf("gave up after %d attempts", maxCellAttempts)
	if lastErr != nil {
		msg = fmt.Sprintf("%s: %v", msg, lastErr)
	}
	return fail(msg)
}

// cellOutcome classifies one dispatch attempt.
type cellOutcome int

const (
	cellDone cellOutcome = iota
	cellFailed
	cellCanceled
	cellRetry
)

// dispatchCell performs one attempt: POST the cell's allocate to the
// owner, then poll the minted job to a terminal state. On cellFailed
// the row's Error is set; on cellRetry the returned error says why.
// The backend job id lands in row.JobID — its node prefix is the proof
// of where the cell ran.
func (r *Router) dispatchCell(ctx context.Context, row *store.SweepCell, owner string, body []byte) (cellOutcome, error) {
	dispatchStart := time.Now()
	status, raw, err := r.call(ctx, http.MethodPost, owner, "/v1/allocate", bytes.NewReader(body))
	r.observeOp("dispatch", dispatchStart)
	if err != nil {
		if ctx.Err() != nil {
			return cellCanceled, nil
		}
		return cellRetry, fmt.Errorf("backend %s: %w", owner, err)
	}
	switch {
	case status == http.StatusAccepted:
		// fall through to polling
	case status == http.StatusBadRequest || status == http.StatusNotFound:
		// Deterministic: the spec is wrong for this backend (or the graph
		// vanished under a racing DELETE). Retrying cannot help.
		row.Error = fmt.Sprintf("backend %s: status %d: %s", owner, status, bytes.TrimSpace(raw))
		return cellFailed, nil
	default:
		// 429 (admission), 503 (queue full), 5xx: transient by contract.
		return cellRetry, fmt.Errorf("backend %s: status %d: %s", owner, status, bytes.TrimSpace(raw))
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(raw, &accepted); err != nil || accepted.JobID == "" {
		return cellRetry, fmt.Errorf("backend %s: unparseable accept body: %s", owner, bytes.TrimSpace(raw))
	}
	row.JobID = accepted.JobID

	tick := time.NewTicker(cellPollInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			// Sweep canceled: best-effort cancel of the backend job on a
			// fresh context (ours is dead).
			cctx, cancel := context.WithTimeout(context.Background(), cellCancelTimeout)
			_, _, _ = r.call(cctx, http.MethodDelete, owner, "/v1/jobs/"+accepted.JobID, nil)
			cancel()
			return cellCanceled, nil
		case <-tick.C:
			status, raw, err := r.call(ctx, http.MethodGet, owner, "/v1/jobs/"+accepted.JobID, nil)
			if err != nil {
				if ctx.Err() != nil {
					return cellCanceled, nil
				}
				// The owner died mid-cell: the job is gone with it. Retry
				// re-resolves ownership; if the graph has no live home the
				// attempts run out and the cell fails in isolation.
				return cellRetry, fmt.Errorf("backend %s: poll: %w", owner, err)
			}
			if status != http.StatusOK {
				return cellRetry, fmt.Errorf("backend %s: poll status %d", owner, status)
			}
			var view struct {
				State  service.JobState        `json:"state"`
				Error  string                  `json:"error"`
				Result *service.AllocateResult `json:"result"`
			}
			if err := json.Unmarshal(raw, &view); err != nil {
				return cellRetry, fmt.Errorf("backend %s: poll: %w", owner, err)
			}
			switch view.State {
			case service.JobDone:
				if res := view.Result; res != nil {
					row.Algo = res.Algorithm
					row.SketchCached = res.SketchCached
					if res.Welfare != nil {
						row.HasWelfare = true
						row.WelfareMean = res.Welfare.Mean
						row.WelfareStdErr = res.Welfare.StdErr
						row.WelfareRuns = res.Welfare.Runs
					}
				}
				return cellDone, nil
			case service.JobFailed:
				row.Error = fmt.Sprintf("backend %s job %s: %s", owner, accepted.JobID, view.Error)
				return cellFailed, nil
			case service.JobCanceled:
				if ctx.Err() != nil {
					return cellCanceled, nil
				}
				// Canceled behind the router's back (an operator DELETE):
				// surface it as this cell's failure, not the sweep's.
				row.Error = fmt.Sprintf("backend %s job %s was canceled", owner, accepted.JobID)
				return cellFailed, nil
			}
		}
	}
}

// --- HTTP surface -------------------------------------------------------

func (r *Router) sweepView(id string) (service.JobView, bool) {
	view, ok := r.jobs.Snapshot(id)
	if !ok || view.Kind != "sweep" {
		return service.JobView{}, false
	}
	return view, true
}

// handleListSweeps mirrors the backend's paginated GET /v1/sweeps over
// the router's own sweep jobs.
func (r *Router) handleListSweeps(w http.ResponseWriter, req *http.Request) {
	page, next, err := service.PaginateSweeps(r.jobs.List(""), req.URL.Query().Get("limit"), req.URL.Query().Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := map[string]any{"sweeps": page}
	if next != "" {
		out["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleGetSweep(w http.ResponseWriter, req *http.Request) {
	view, ok := r.sweepView(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", req.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (r *Router) handleCancelSweep(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if _, ok := r.sweepView(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	view, requested, _ := r.jobs.Cancel(id)
	if requested {
		writeJSON(w, http.StatusAccepted, view)
		return
	}
	r.jobs.Remove(id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (r *Router) handleSweepEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if _, ok := r.sweepView(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	service.StreamJobEvents(w, req, r.jobs, id)
}

func (r *Router) handleSweepResults(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	view, ok := r.sweepView(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	rec, ok := r.lookupSweep(id)
	if !ok {
		if !view.State.Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s; results are served once it finishes", id, view.State))
			return
		}
		sum, okSum := view.Result.(*sweep.Summary)
		if !okSum {
			writeError(w, http.StatusGone, fmt.Errorf("sweep %s results are no longer retained", id))
			return
		}
		res, err := store.LoadSweepFile(r.sweepSpillDir(), sum.ArtifactID)
		if err != nil {
			writeError(w, http.StatusGone, fmt.Errorf("sweep %s artifact %s unreadable: %v", id, sum.ArtifactID, err))
			return
		}
		rec = &sweepRecord{artifactID: sum.ArtifactID, res: res}
	}
	resp, err := sweep.Query(rec.res, rec.artifactID, req.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
