package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/service"
)

// statsView decodes the /v1/stats fields the batching tests assert on,
// by their wire names — the counters the acceptance criteria are
// phrased in.
type statsView struct {
	SketchCache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"sketch_cache"`
	Batch struct {
		Enabled           bool    `json:"enabled"`
		Batched           int64   `json:"batched"`
		CoalescedRequests int64   `json:"coalesced_requests"`
		AdmissionRejects  int64   `json:"admission_rejects"`
		CostRatio         float64 `json:"cost_ratio"`
		CostSamples       int     `json:"cost_samples"`
	} `json:"batch"`
}

func (e *env) stats(t *testing.T) statsView {
	t.Helper()
	var st statsView
	e.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	return st
}

// TestBatchedAllocatesCoalesceToOneBuild is the acceptance scenario: N
// concurrent allocate requests that differ only in budgets, on a cold
// graph, must produce exactly one sketch build — one batch, N-1
// coalesced requests, one cache miss.
func TestBatchedAllocatesCoalesceToOneBuild(t *testing.T) {
	e := newEnv(t, service.Options{BatchWindow: 500 * time.Millisecond})
	id := e.registerGraph(t)

	const n = 8
	var (
		wg     sync.WaitGroup
		shared atomic.Int64
		maxB   atomic.Int64
	)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := e.svc.Allocate(&service.AllocateRequest{
				GraphID: id,
				Budgets: []int{i + 1, i + 2}, // all distinct
				Seed:    uint64(i + 1),
			})
			if err != nil {
				t.Errorf("allocate %d: %v", i, err)
				return
			}
			if res.SketchCached {
				shared.Add(1)
			}
			// Every request's allocation must respect its own budgets
			// even though the sketch was sized for the merged vector.
			if got := len(res.Allocation.Seeds[0]); got != i+1 {
				t.Errorf("allocate %d: item 0 got %d seeds, want %d", i, got, i+1)
			}
			if int64(len(res.SeedOrder)) > maxB.Load() {
				maxB.Store(int64(len(res.SeedOrder)))
			}
		}(i)
	}
	close(start)
	wg.Wait()

	st := e.stats(t)
	if !st.Batch.Enabled {
		t.Fatal("batch scheduler not enabled")
	}
	if st.Batch.Batched != 1 {
		t.Fatalf("batched = %d, want exactly 1 sketch build", st.Batch.Batched)
	}
	if st.Batch.CoalescedRequests != n-1 {
		t.Fatalf("coalesced_requests = %d, want %d", st.Batch.CoalescedRequests, n-1)
	}
	if st.SketchCache.Misses != 1 {
		t.Fatalf("sketch_cache.misses = %d, want 1 (one build for the merged key)", st.SketchCache.Misses)
	}
	if shared.Load() != n-1 {
		t.Fatalf("%d requests reported SketchCached, want %d (all but the batch leader)", shared.Load(), n-1)
	}
	// The one build calibrated the cost model.
	if st.Batch.CostSamples != 1 || st.Batch.CostRatio <= 0 {
		t.Fatalf("cost model not calibrated by the batch build: ratio %g, samples %d",
			st.Batch.CostRatio, st.Batch.CostSamples)
	}

	// A later lone repeat of a coalesced member's budgets is served
	// from the resident dominating sketch (the merged-key entry) — no
	// second build, no second gather window.
	res, err := e.svc.Allocate(&service.AllocateRequest{GraphID: id, Budgets: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SketchCached {
		t.Fatal("dominated repeat missed the resident merged sketch")
	}
	if got := len(res.Allocation.Seeds[0]); got != 3 {
		t.Fatalf("dominated repeat item 0 got %d seeds, want 3", got)
	}
	if st := e.stats(t); st.Batch.Batched != 1 {
		t.Fatalf("batched after dominated repeat = %d, want still 1 (served from the merged sketch)", st.Batch.Batched)
	}

	// A repeat EXCEEDING the merged vector still builds afresh.
	if _, err := e.svc.Allocate(&service.AllocateRequest{GraphID: id, Budgets: []int{20, 21}}); err != nil {
		t.Fatal(err)
	}
	if st := e.stats(t); st.Batch.Batched != 2 {
		t.Fatalf("batched after uncovered repeat = %d, want 2", st.Batch.Batched)
	}
}

// TestBatchedItemDisjCoalescesOnMaxTotal exercises the IMM-family merge:
// concurrent item-disj allocates with different totals coalesce onto
// one sketch sized for the largest total budget.
func TestBatchedItemDisjCoalescesOnMaxTotal(t *testing.T) {
	e := newEnv(t, service.Options{BatchWindow: 500 * time.Millisecond})
	id := e.registerGraph(t)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, err := e.svc.Allocate(&service.AllocateRequest{
				GraphID: id,
				Algo:    core.AlgoItemDisjoint,
				Budgets: []int{2 * (i + 1), 3},
			})
			if err != nil {
				t.Errorf("allocate %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	st := e.stats(t)
	if st.Batch.Batched != 1 || st.SketchCache.Misses != 1 {
		t.Fatalf("batched = %d, misses = %d; want one dominating IMM build",
			st.Batch.Batched, st.SketchCache.Misses)
	}
}

// TestCanceledWaiterKeepsSharedBuildAlive: with two requests gathered
// into one batch, canceling one must not cancel the shared build — the
// survivor still gets its sketch.
func TestCanceledWaiterKeepsSharedBuildAlive(t *testing.T) {
	e := newEnv(t, service.Options{BatchWindow: 400 * time.Millisecond})
	id := e.registerGraph(t)

	ctx, cancel := context.WithCancel(context.Background())
	canceledErr := make(chan error, 1)
	go func() {
		_, err := e.svc.AllocateCtx(ctx, &service.AllocateRequest{GraphID: id, Budgets: []int{5, 5}}, nil)
		canceledErr <- err
	}()
	survivor := make(chan error, 1)
	var res *service.AllocateResult
	go func() {
		r, err := e.svc.AllocateCtx(context.Background(), &service.AllocateRequest{GraphID: id, Budgets: []int{3, 4}}, nil)
		res = r
		survivor <- err
	}()

	// Let both enter the gather window, then abandon the first.
	time.Sleep(150 * time.Millisecond)
	cancel()
	if err := <-canceledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request: err = %v, want context.Canceled", err)
	}
	if err := <-survivor; err != nil {
		t.Fatalf("surviving request failed: %v (a canceled waiter must not cancel the shared build)", err)
	}
	if got := len(res.Allocation.Seeds[1]); got != 4 {
		t.Fatalf("survivor item 1 got %d seeds, want 4", got)
	}
	if st := e.stats(t); st.Batch.Batched != 1 {
		t.Fatalf("batched = %d, want 1", st.Batch.Batched)
	}
}

// TestDegenerateBudgetsDoNotPoisonBatch: a whole-graph-budget request
// hits the PRIMA/IMM degenerate shortcut (no sampling, identity
// ordering) and must therefore bypass the batcher — coalescing it with
// concurrent small-budget requests would silently hand them the
// unsampled all-nodes ordering instead of a real greedy selection.
func TestDegenerateBudgetsDoNotPoisonBatch(t *testing.T) {
	e := newEnv(t, service.Options{BatchWindow: 300 * time.Millisecond})
	var info service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Network: "flixster", Scale: 0.02}, &info, http.StatusCreated)

	whaleDone := make(chan error, 1)
	var whale *service.AllocateResult
	go func() {
		r, err := e.svc.Allocate(&service.AllocateRequest{GraphID: info.ID, Budgets: []int{info.Nodes, 2}})
		whale = r
		whaleDone <- err
	}()
	// Launched inside the whale's would-be gather window.
	small, err := e.svc.Allocate(&service.AllocateRequest{GraphID: info.ID, Budgets: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-whaleDone; err != nil {
		t.Fatal(err)
	}

	// The whale's sketch is the degenerate no-sampling one (0 RR sets,
	// every node seeded for item 0) — documented single-request behavior.
	if whale.NumRRSets != 0 || len(whale.Allocation.Seeds[0]) != info.Nodes {
		t.Fatalf("whale result not degenerate: rr=%d item0=%d", whale.NumRRSets, len(whale.Allocation.Seeds[0]))
	}
	// The small request must have a genuinely sampled sketch: nonzero RR
	// sets proves it did not inherit the whale's unsampled ordering.
	if small.NumRRSets == 0 {
		t.Fatal("small request inherited the degenerate unsampled sketch")
	}
	if got := len(small.Allocation.Seeds[1]); got != 4 {
		t.Fatalf("small request item 1 got %d seeds, want 4", got)
	}
}

// TestAdmissionControl drives the 429 path: a request whose predicted
// sketch cost exceeds -admission-mb is refused with a retryable body
// and counted, while a cheap request on the same daemon is admitted.
func TestAdmissionControl(t *testing.T) {
	e := newEnv(t, service.Options{AdmissionMB: 1, Workers: 1})
	id := e.registerGraph(t)

	// ε at the floor inflates the predicted RR-set count ~100× past any
	// 1MB budget.
	expensive := service.AllocateRequest{GraphID: id, Budgets: []int{10, 10}, Eps: 0.05}
	status, raw := e.do("POST", "/v1/allocate", expensive)
	if status != http.StatusTooManyRequests {
		t.Fatalf("expensive allocate: status %d, want 429: %s", status, raw)
	}
	var body struct {
		Error          string `json:"error"`
		Retryable      bool   `json:"retryable"`
		EstimatedCost  int64  `json:"estimated_cost"`
		AdmissionLimit int64  `json:"admission_limit"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Retryable || body.EstimatedCost <= body.AdmissionLimit || body.AdmissionLimit != 1<<20 {
		t.Fatalf("bad 429 body: %+v", body)
	}

	// The warm endpoint prices the identical sketch work.
	status, _ = e.do("POST", "/v1/graphs/"+id+"/warm", service.WarmRequest{Budgets: []int{10, 10}, Eps: 0.05})
	if status != http.StatusTooManyRequests {
		t.Fatalf("expensive warm: status %d, want 429", status)
	}

	if st := e.stats(t); st.Batch.AdmissionRejects != 2 {
		t.Fatalf("admission_rejects = %d, want 2", st.Batch.AdmissionRejects)
	}

	// Default ε on the same graph prices well under 1MB and is admitted.
	var alloc allocJobView
	jid := e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{5, 5}})
	e.waitJob(t, jid, &alloc)
	if alloc.State != service.JobDone {
		t.Fatalf("cheap allocate: state %s (%s)", alloc.State, alloc.Error)
	}

	// With its sketch now resident, even the pessimistic pricing is
	// bypassed: identical budgets re-admit for free at any ε... but the
	// ε changes the key, so assert with the same ε instead.
	jid = e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{5, 5}})
	e.waitJob(t, jid, &alloc)
	if alloc.State != service.JobDone || alloc.Result == nil || !alloc.Result.SketchCached {
		t.Fatalf("resident re-allocate: %+v", alloc)
	}
}

// TestStatsDuringConcurrentAllocates hammers GET /v1/stats while
// batched allocates run — the -race regression test for the stats
// counters (batch, admission, cache, disk tier) being read
// concurrently with their writers.
func TestStatsDuringConcurrentAllocates(t *testing.T) {
	e := newEnv(t, service.Options{
		BatchWindow: 20 * time.Millisecond,
		AdmissionMB: 64,
		DataDir:     t.TempDir(), // exercise the disk-tier stats block too
	})
	id := e.registerGraph(t)

	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.stats(t)
				e.svc.Stats()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := e.svc.Allocate(&service.AllocateRequest{
					GraphID: id,
					Budgets: []int{i + 2*j + 1, 3},
				}); err != nil {
					t.Errorf("allocate: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	statsWG.Wait()

	if st := e.stats(t); st.Batch.Batched == 0 {
		t.Fatalf("expected at least one batched build, got stats %+v", st.Batch)
	}
}
