package utility

import (
	"fmt"
	"math/bits"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

// Model bundles the three components of utility in the UIC model:
// U(S) = V(S) - P(S) + N(S), with V a (typically supermodular) valuation,
// P additive item prices, and N additive zero-mean per-item noise.
type Model struct {
	Val    Valuation
	Prices []float64
	Noise  []stats.Dist

	// priceFn, when non-nil, overrides additive pricing (§5's submodular
	// bundle-discount extension; see NewModelWithPrice).
	priceFn PriceFunc

	// detTable caches V(S) - P(S) for all S.
	detTable []float64
}

// NewModel validates and assembles a model. Prices must be positive and
// noise distributions zero-mean (both model assumptions from §3.1).
func NewModel(val Valuation, prices []float64, noise []stats.Dist) (*Model, error) {
	k := val.NumItems()
	if len(prices) != k {
		return nil, fmt.Errorf("utility: %d prices for %d items", len(prices), k)
	}
	if len(noise) != k {
		return nil, fmt.Errorf("utility: %d noise terms for %d items", len(noise), k)
	}
	for i, p := range prices {
		if p <= 0 {
			return nil, fmt.Errorf("utility: price of item %d is %v, want > 0", i, p)
		}
	}
	for i, d := range noise {
		if d == nil {
			return nil, fmt.Errorf("utility: nil noise for item %d", i)
		}
		if m := d.Mean(); m != 0 {
			return nil, fmt.Errorf("utility: noise of item %d has mean %v, want 0", i, m)
		}
	}
	m := &Model{Val: val, Prices: prices, Noise: noise}
	m.detTable = make([]float64, 1<<uint(k))
	priceSum := make([]float64, 1<<uint(k))
	for s := itemset.Set(1); s < 1<<uint(k); s++ {
		low := s.Min()
		priceSum[s] = priceSum[s.Remove(low)] + prices[low]
		m.detTable[s] = val.Value(s) - priceSum[s]
	}
	return m, nil
}

// MustModel is NewModel that panics on error, for fixed configurations.
func MustModel(val Valuation, prices []float64, noise []stats.Dist) *Model {
	m, err := NewModel(val, prices, noise)
	if err != nil {
		panic(err)
	}
	return m
}

// K returns the number of items.
func (m *Model) K() int { return m.Val.NumItems() }

// Price returns P(s): additive over Prices by default, or the custom
// bundle price when the model was built with NewModelWithPrice.
func (m *Model) Price(s itemset.Set) float64 {
	if m.priceFn != nil {
		return m.priceFn(s)
	}
	total := 0.0
	for _, i := range s.Items() {
		total += m.Prices[i]
	}
	return total
}

// DetUtility returns the deterministic utility V(s) - P(s), which equals
// E[U(s)] because the noise is zero-mean.
func (m *Model) DetUtility(s itemset.Set) float64 { return m.detTable[s] }

// ExpectedUtility is an alias for DetUtility, matching the paper's
// E[U(I)] = V(I) - P(I).
func (m *Model) ExpectedUtility(s itemset.Set) float64 { return m.detTable[s] }

// SampleNoise draws one noise world: a realization of every item's noise
// term (done once per diffusion in the UIC model, §3.2.3).
func (m *Model) SampleNoise(rng *stats.RNG) []float64 {
	w := make([]float64, m.K())
	for i, d := range m.Noise {
		w[i] = d.Sample(rng)
	}
	return w
}

// UtilityTable materializes U_W(S) = V(S) - P(S) + Σ_{i∈S} noise[i] for
// every S under the given noise world, in O(2^k) by dynamic programming
// on the lowest set bit. The optional dst is reused when large enough.
func (m *Model) UtilityTable(noise []float64, dst []float64) []float64 {
	size := 1 << uint(m.K())
	if cap(dst) < size {
		dst = make([]float64, size)
	}
	dst = dst[:size]
	dst[0] = 0
	// Fold the noise into the cached deterministic table incrementally:
	// noise(S) = noise(S minus lowest bit) + noise[lowest].
	// We compute the noise sum in-place in dst to avoid a second table.
	for s := 1; s < size; s++ {
		low := bits.TrailingZeros32(uint32(s))
		rest := s &^ (1 << uint(low))
		// dst[rest] currently holds U(rest) = det(rest) + noise(rest)
		noiseRest := dst[rest] - m.detTable[rest]
		dst[s] = m.detTable[s] + noiseRest + noise[low]
	}
	return dst
}

// UtilityIn evaluates U_W(s) for a single set under a noise world.
func (m *Model) UtilityIn(noise []float64, s itemset.Set) float64 {
	u := m.detTable[s]
	for _, i := range s.Items() {
		u += noise[i]
	}
	return u
}

// BestDetSet returns the itemset maximizing deterministic utility, with
// ties broken toward larger cardinality; this is I* of the zero-noise
// world.
func (m *Model) BestDetSet() itemset.Set {
	return BestSet(m.detTable)
}
