package graph

import (
	"testing"
	"testing/quick"

	"uicwelfare/internal/stats"
)

// Property: in-degree and out-degree totals both equal M on any built
// graph.
func TestQuickDegreeSumsEqualM(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 2
		m := int(mRaw % 1000)
		g := ErdosRenyi(n, m, stats.NewRNG(seed))
		outSum, inSum := 0, 0
		for v := NodeID(0); int(v) < g.N(); v++ {
			outSum += g.OutDegree(v)
			inSum += g.InDegree(v)
		}
		return outSum == g.M() && inSum == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: InEdgePositions always maps back to the same (source, target,
// probability) triple in the out-edge arrays.
func TestQuickInEdgePositionConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		g := ErdosRenyi(60, 300, rng).WeightedCascade()
		for v := NodeID(0); int(v) < g.N(); v++ {
			srcs, ps := g.InEdges(v)
			pos := g.InEdgePositions(v)
			for i := range srcs {
				u := srcs[i]
				off := pos[i] - g.OutEdgeBase(u)
				ts, ops := g.OutEdges(u)
				if off < 0 || int(off) >= len(ts) || ts[off] != v || ops[off] != ps[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: weighted cascade in-probabilities sum to 1 for every node
// with in-degree > 0, which is exactly the LT validity condition.
func TestQuickWeightedCascadeIsValidLT(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		g := BarabasiAlbert(150, 3, rng).WeightedCascade()
		return g.ValidateLT() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: SCC components partition the nodes, and every cycle edge
// stays within one component.
func TestQuickSCCPartition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		g := ErdosRenyi(80, 240, rng)
		comp, count := SCC(g)
		for _, c := range comp {
			if c < 0 || int(c) >= count {
				return false
			}
		}
		// mutual edges (u->v and v->u) imply same component
		for u := NodeID(0); int(u) < g.N(); u++ {
			ts, _ := g.OutEdges(u)
			for _, v := range ts {
				if hasEdge(g, v, u) && comp[u] != comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: BFSPrefix returns exactly min(want, n) nodes and its edges
// are a subset of the original graph's.
func TestQuickBFSPrefixSize(t *testing.T) {
	f := func(seed uint64, wantRaw uint8) bool {
		rng := stats.NewRNG(seed)
		g := PreferentialDirected(100, 3, rng)
		want := int(wantRaw%120) + 1
		sub, mapping := BFSPrefix(g, want)
		expect := want
		if expect > g.N() {
			expect = g.N()
		}
		if sub.N() != expect || len(mapping) != expect {
			return false
		}
		// spot-check edge preservation through the mapping
		for u := NodeID(0); int(u) < sub.N(); u++ {
			ts, _ := sub.OutEdges(u)
			for _, v := range ts {
				if !hasEdge(g, mapping[u], mapping[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: LargestSCC of any graph is strongly connected (every node
// reaches every other).
func TestQuickLargestSCCStronglyConnected(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		g := ErdosRenyi(50, 200, rng)
		sub, _ := LargestSCC(g)
		if sub.N() == 0 {
			return true
		}
		comp, count := SCC(sub)
		_ = comp
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
