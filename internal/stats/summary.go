package stats

import "math"

// Summary accumulates a running mean and variance (Welford's algorithm)
// for a stream of Monte-Carlo observations.
type Summary struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds another summary into s, as if all of other's observations
// had been Added to s.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.mean += d * n2 / tot
	s.m2 += other.m2 + d*d*n1*n2/tot
	s.n += other.n
}

// MeanOf returns the arithmetic mean of xs, or 0 for an empty slice.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// VarianceOf returns the unbiased sample variance of xs.
func VarianceOf(xs []float64) float64 {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return s.Variance()
}

// LogNChooseK returns log(n choose k) computed with log-gamma, as needed
// by the IMM and PRIMA sample-size bounds.
func LogNChooseK(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}
