package utility

import (
	"fmt"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

// GAP holds the Com-IC adoption probabilities for a two-item model,
// derived from UIC utilities via Eq. (12) of the paper. QiGivenJ is the
// probability that a user adopts item i given it has already adopted j;
// QiGivenNone the probability of adopting i from an empty adoption set.
type GAP struct {
	Q1GivenNone float64 // q_{i1|∅}
	Q1Given2    float64 // q_{i1|i2}
	Q2GivenNone float64 // q_{i2|∅}
	Q2Given1    float64 // q_{i2|i1}
}

// GAPFromModel computes Eq. (12) for a two-item model with Gaussian
// noise:
//
//	q_{i1|∅}  = Pr[N(i1) >= P(i1) - V(i1)]
//	q_{i1|i2} = Pr[N(i1) >= P(i1) - (V({i1,i2}) - V(i2))]
//
// and symmetrically for i2.
func GAPFromModel(m *Model) (GAP, error) {
	if m.K() != 2 {
		return GAP{}, fmt.Errorf("utility: GAP conversion needs exactly 2 items, have %d", m.K())
	}
	g1, ok1 := m.Noise[0].(stats.Gaussian)
	g2, ok2 := m.Noise[1].(stats.Gaussian)
	if !ok1 || !ok2 {
		return GAP{}, fmt.Errorf("utility: GAP conversion implemented for Gaussian noise")
	}
	i1 := itemset.New(0)
	i2 := itemset.New(1)
	both := itemset.New(0, 1)
	v := m.Val
	tail := func(g stats.Gaussian, threshold float64) float64 {
		return 1 - g.CDF(threshold)
	}
	return GAP{
		Q1GivenNone: tail(g1, m.Prices[0]-v.Value(i1)),
		Q1Given2:    tail(g1, m.Prices[0]-(v.Value(both)-v.Value(i2))),
		Q2GivenNone: tail(g2, m.Prices[1]-v.Value(i2)),
		Q2Given1:    tail(g2, m.Prices[1]-(v.Value(both)-v.Value(i1))),
	}, nil
}

// MutuallyComplementary reports whether the GAP parameters satisfy the
// complementary-items sanity conditions q_{i|j} >= q_{i|∅}, which is
// implied by a supermodular valuation. A tiny tolerance absorbs float
// rounding at exactly-modular boundaries.
func (g GAP) MutuallyComplementary() bool {
	const eps = 1e-12
	return g.Q1Given2 >= g.Q1GivenNone-eps && g.Q2Given1 >= g.Q2GivenNone-eps
}
