package imm

import (
	"math"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
)

// Options configures IMM. The defaults (Eps 0.5, Ell 1) are the ones the
// paper uses in all experiments.
type Options struct {
	Eps float64 // approximation slack ε > 0
	Ell float64 // confidence exponent: success probability 1 - 1/n^ℓ
	// Cascade selects the diffusion model (IC default, or LT).
	Cascade graph.Cascade
	// NodeCoin optionally injects a per-node pass probability into RR
	// sampling (used by the Com-IC baselines).
	NodeCoin func(graph.NodeID) float64
}

// withDefaults fills in unset fields.
func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	return o
}

// Result reports the selected seeds and the sampling effort spent.
type Result struct {
	Seeds     []graph.NodeID
	Coverage  float64 // F_R(Seeds) on the final collection
	SpreadEst float64 // n · F_R(Seeds)
	NumRRSets int     // RR sets in the final collection
	// TotalRRSets counts every RR set generated, including the phase-1
	// collection that the Chen'18 fix throws away before reselection.
	TotalRRSets int
	LB          float64 // lower bound on OPT_k used to size the collection
}

// Run executes IMM for a single budget k and returns the ordered seed set.
// The returned seeds satisfy sigma(S) >= (1-1/e-ε)·OPT_k with probability
// at least 1-1/n^ℓ.
func Run(g *graph.Graph, k int, opts Options, rng *stats.RNG) Result {
	opts = opts.withDefaults()
	n := g.N()
	if k <= 0 || n == 0 {
		return Result{}
	}
	if k >= n {
		// Every node is a seed; no sampling needed.
		seeds := make([]graph.NodeID, n)
		for i := range seeds {
			seeds[i] = graph.NodeID(i)
		}
		return Result{Seeds: seeds, Coverage: 1, SpreadEst: float64(n), LB: float64(n)}
	}
	ellPrime := EllPlusLog2(opts.Ell, n)
	epsp := EpsPrime(opts.Eps)

	col := rrset.NewCollection(g)
	col.Sampler().NodeCoin = opts.NodeCoin
	col.Sampler().Cascade = opts.Cascade

	lb := 1.0
	lambdaStar := LambdaStar(n, k, opts.Eps, ellPrime)
	theta := lambdaStar // resolved below; fallback uses LB = 1

	maxI := int(math.Log2(float64(n))) - 1
	for i := 1; i <= maxI; i++ {
		x := float64(n) / math.Pow(2, float64(i))
		thetaI := LambdaPrime(n, k, opts.Eps, ellPrime) / x
		col.Grow(int64(math.Ceil(thetaI)), rng)
		seeds, frac := col.NodeSelection(k)
		_ = seeds
		if float64(n)*frac >= (1+epsp)*x {
			lb = float64(n) * frac / (1 + epsp)
			theta = lambdaStar / lb
			break
		}
	}
	phase1 := col.Len()
	col.Grow(int64(math.Ceil(theta)), rng)
	grown := col.Len()

	// Chen'18 fix: the final seed set must be selected on RR sets that are
	// independent of the adaptive stopping rule, so regenerate from
	// scratch.
	col.Reset()
	col.Grow(int64(math.Ceil(theta)), rng)
	seeds, frac := col.NodeSelection(k)
	_ = phase1
	return Result{
		Seeds:       seeds,
		Coverage:    frac,
		SpreadEst:   float64(n) * frac,
		NumRRSets:   col.Len(),
		TotalRRSets: grown + col.Len(),
		LB:          lb,
	}
}
