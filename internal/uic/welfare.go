package uic

import (
	"sync"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// WelfareEstimate is a Monte-Carlo estimate of the expected social
// welfare ρ(𝒮).
type WelfareEstimate struct {
	Mean   float64
	StdErr float64
	Runs   int
}

// EstimateWelfare averages `runs` independent diffusions. Each run
// samples a fresh noise world and edge world, per the definition
// ρ(𝒮) = E_{W^E}[E_{W^N}[ρ_W(𝒮)]].
func (s *Simulator) EstimateWelfare(alloc *Allocation, rng *stats.RNG, runs int) WelfareEstimate {
	if runs <= 0 {
		runs = 1
	}
	var sum stats.Summary
	for i := 0; i < runs; i++ {
		sum.Add(s.RunOnce(alloc, rng))
	}
	return WelfareEstimate{Mean: sum.Mean(), StdErr: sum.StdErr(), Runs: sum.N()}
}

// WelfareGivenNoise estimates ρ_{W^N}(𝒮): the expected welfare under a
// fixed noise world, averaging over random edge worlds. The block
// accounting analysis (§4.2.2) reasons per noise world; the tests for
// Lemma 5 use this.
func (s *Simulator) WelfareGivenNoise(alloc *Allocation, noise []float64, rng *stats.RNG, runs int) float64 {
	if runs <= 0 {
		runs = 1
	}
	total := 0.0
	for i := 0; i < runs; i++ {
		total += s.RunOnceWithNoise(alloc, noise, rng)
	}
	return total / float64(runs)
}

// AdoptionCounts estimates, per item, the expected number of adopters —
// the multi-item analogue of influence spread, useful for diagnostics and
// for the Com-IC baselines whose objective is adoption count.
func (s *Simulator) AdoptionCounts(alloc *Allocation, rng *stats.RNG, runs int) []float64 {
	counts := make([]float64, s.M.K())
	if runs <= 0 {
		runs = 1
	}
	for r := 0; r < runs; r++ {
		s.RunOnce(alloc, rng)
		for _, v := range s.touched {
			for _, i := range s.adopted[v].Items() {
				counts[i]++
			}
		}
	}
	for i := range counts {
		counts[i] /= float64(runs)
	}
	return counts
}

// EstimateWelfareParallel shards the Monte-Carlo estimate across workers
// goroutines, each with its own Simulator and a Split RNG. With
// workers <= 1 it falls back to the sequential estimator.
func EstimateWelfareParallel(g *graph.Graph, m *utility.Model, alloc *Allocation, rng *stats.RNG, runs, workers int) WelfareEstimate {
	return EstimateWelfareParallelCascade(g, m, graph.CascadeIC, alloc, rng, runs, workers)
}

// EstimateWelfareParallelCascade is EstimateWelfareParallel under an
// explicit cascade model (welmaxd estimates LT instances through this).
func EstimateWelfareParallelCascade(g *graph.Graph, m *utility.Model, cascade graph.Cascade, alloc *Allocation, rng *stats.RNG, runs, workers int) WelfareEstimate {
	if workers <= 1 {
		sim := NewSimulator(g, m)
		sim.Cascade = cascade
		return sim.EstimateWelfare(alloc, rng, runs)
	}
	if runs < workers {
		workers = runs
	}
	per := runs / workers
	extra := runs % workers
	summaries := make([]stats.Summary, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		shardRNG := rng.Split()
		wg.Add(1)
		go func(w, n int, r *stats.RNG) {
			defer wg.Done()
			sim := NewSimulator(g, m)
			sim.Cascade = cascade
			var sum stats.Summary
			for i := 0; i < n; i++ {
				sum.Add(sim.RunOnce(alloc, r))
			}
			summaries[w] = sum
		}(w, n, shardRNG)
	}
	wg.Wait()
	var total stats.Summary
	for _, s := range summaries {
		total.Merge(s)
	}
	return WelfareEstimate{Mean: total.Mean(), StdErr: total.StdErr(), Runs: total.N()}
}
