// Package journal is welmaxd's control-plane flight recorder. The data
// plane got its observability in the telemetry package (traces,
// histograms, /v1/metrics); this package records the *decisions* around
// it — membership transitions, ownership flips, sketch ships,
// rebalances, cache evictions, admission verdicts, sweep dispatch — as
// typed, timestamped events an operator (or a test) can query after the
// fact instead of reconstructing incidents from stderr.
//
// Events land in a bounded in-memory ring guarded by a single mutex
// (Record is called from hot paths, some holding other locks, so it
// does O(1) work and never blocks), feed live subscribers for SSE
// tails, and are asynchronously spilled as JSONL payloads inside
// CRC-framed segment files under <data-dir>/journal/ with the same
// size-budgeted oldest-first rotation the store uses for spilled
// sketches. The spill is best-effort by design: a full channel drops
// the disk copy (counted, never blocking the caller) while the ring
// and subscribers still see the event.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event types recorded by the cluster and service tiers. The set is a
// contract: scripts/cluster_smoke.sh and the HA roadmap work assert
// against these strings.
const (
	MemberUp   = "member_up"
	MemberDown = "member_down"

	OwnershipFlip   = "ownership_flip"
	SketchShip      = "sketch_ship"
	RebalanceStart  = "rebalance_start"
	RebalanceDone   = "rebalance_done"
	RebalanceFailed = "rebalance_failed"

	CacheEvict  = "cache_evict"
	CacheExpire = "cache_expire"

	AdmissionQueue       = "admission_queue"
	AdmissionReject      = "admission_reject"
	AdmissionRecalibrate = "admission_recalibrate"

	SweepDispatch      = "sweep_dispatch"
	SweepRetry         = "sweep_retry"
	SweepShardFailover = "sweep_shard_failover"

	JobSpill  = "job_spill"
	JobReplay = "job_replay"

	BatchFire = "batch_fire"
)

// Event is one control-plane decision. Only Type is always set; the
// remaining fields are a fixed vocabulary shared by all event types so
// the journal stays queryable (filter by graph, node, trace) without a
// per-type schema. Zero-valued fields are omitted from the JSON.
type Event struct {
	// Seq is the recorder-local monotonically increasing sequence
	// number; it doubles as the pagination cursor for GET /v1/events.
	Seq uint64 `json:"seq"`
	// TS is the wall-clock record time (the cross-shard merge key).
	TS   time.Time `json:"ts"`
	Type string    `json:"type"`
	// Node is the recording node (stamped by the Recorder).
	Node    string `json:"node,omitempty"`
	Graph   string `json:"graph,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// Key is a sketch-cache key for cache and batch events.
	Key string `json:"key,omitempty"`
	// From/To carry node names for ownership flips and ships.
	From  string `json:"from,omitempty"`
	To    string `json:"to,omitempty"`
	Job   string `json:"job,omitempty"`
	Sweep string `json:"sweep,omitempty"`
	Cell  string `json:"cell,omitempty"`
	// Count and Bytes quantify the event (sketches shipped, entries
	// evicted, estimated admission cost, ...).
	Count  int64  `json:"count,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Segment file framing, mirroring the store codec: magic, version,
// payload length, JSONL payload, CRC-32C — every field verified on
// read, corrupt segments rejected with typed errors.
const (
	// SegmentMagic opens a .wmj journal segment.
	SegmentMagic = "WMJRNL\x00\x00"
	// SegmentVersion is the current segment format version.
	SegmentVersion = 1
	// SegmentExt is the journal segment file extension.
	SegmentExt = ".wmj"

	// maxSegmentPayload bounds a declared payload length so a corrupt
	// header cannot force an absurd allocation.
	maxSegmentPayload = 1 << 30
)

var (
	// ErrBadSegment reports an unreadable segment (wrong magic or
	// version, truncated, or failed checksum).
	ErrBadSegment = errors.New("journal: bad segment")

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Options configures a Recorder. The zero value is usable: an
// in-memory-only journal (no Dir, no spill) with default ring size.
type Options struct {
	// Node stamps every recorded event (e.g. "b0", "router").
	Node string
	// RingSize bounds the in-memory ring (default 4096 events).
	RingSize int
	// Dir enables async segment spill when non-empty; segments are
	// written directly into it (callers pass <data-dir>/journal).
	Dir string
	// SegmentBytes seals a segment once its JSONL payload reaches this
	// size (default 256 KiB).
	SegmentBytes int64
	// MaxBytes bounds the segment directory; oldest segments are
	// deleted past it (default 32 MiB, 0 keeps the default — the
	// journal must not grow without bound).
	MaxBytes int64
	// FlushInterval seals a non-empty pending segment even below
	// SegmentBytes, so a quiet journal still reaches disk (default 5s).
	FlushInterval time.Duration
}

// Stats is the recorder's self-accounting, exported as gauges.
type Stats struct {
	// Recorded counts all events accepted into the ring.
	Recorded int64 `json:"recorded"`
	// Dropped counts events whose disk spill was dropped because the
	// spill channel was full (the ring still saw them).
	Dropped int64 `json:"dropped"`
	// RingLen/RingCap describe current ring occupancy.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`
	// Segments counts segment files sealed; SpillErrors counts failed
	// segment writes.
	Segments    int64 `json:"segments"`
	SpillErrors int64 `json:"spill_errors"`
}

// Recorder is the flight recorder: a bounded ring of recent events,
// live subscribers, and an optional async disk spill.
type Recorder struct {
	node string

	mu   sync.Mutex
	buf  []Event // ring storage, len(buf) == capacity
	head int     // index of the oldest event
	n    int     // events currently in the ring
	next uint64  // next sequence number (first event gets 1)

	subMu sync.Mutex
	subs  map[chan Event]struct{}

	recorded    atomic.Int64
	dropped     atomic.Int64
	segments    atomic.Int64
	spillErrors atomic.Int64

	// Spill state (nil/zero when Dir is unset).
	spill      chan Event
	dir        string
	segBytes   int64
	maxBytes   int64
	flushEvery time.Duration
	stop       chan struct{}
	done       chan struct{}
}

// New creates a Recorder. When opts.Dir is set the directory is
// created and the background spill goroutine started; Close flushes
// and stops it.
func New(opts Options) (*Recorder, error) {
	size := opts.RingSize
	if size <= 0 {
		size = 4096
	}
	r := &Recorder{
		node: opts.Node,
		buf:  make([]Event, size),
		next: 1,
		subs: make(map[chan Event]struct{}),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		r.dir = opts.Dir
		r.segBytes = opts.SegmentBytes
		if r.segBytes <= 0 {
			r.segBytes = 256 << 10
		}
		r.maxBytes = opts.MaxBytes
		if r.maxBytes <= 0 {
			r.maxBytes = 32 << 20
		}
		r.flushEvery = opts.FlushInterval
		if r.flushEvery <= 0 {
			r.flushEvery = 5 * time.Second
		}
		r.spill = make(chan Event, 1024)
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		go r.spillLoop()
	}
	return r, nil
}

// Record stamps and stores one event. It is safe to call from any
// goroutine, including ones holding unrelated locks: the critical
// section is O(1), the spill send and subscriber notifies are
// non-blocking, and nothing here does I/O.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.TS.IsZero() {
		e.TS = time.Now().UTC()
	}
	if e.Node == "" {
		e.Node = r.node
	}
	r.mu.Lock()
	e.Seq = r.next
	r.next++
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
	}
	r.mu.Unlock()
	r.recorded.Add(1)

	if r.spill != nil {
		select {
		case r.spill <- e:
		default:
			r.dropped.Add(1)
		}
	}

	r.subMu.Lock()
	for ch := range r.subs {
		select {
		case ch <- e:
		default: // slow subscriber: skip, the ring has the event
		}
	}
	r.subMu.Unlock()
}

// Query selects events from the ring. The zero value returns the most
// recent DefaultLimit events.
type Query struct {
	// After is the pagination cursor: only events with Seq > After are
	// returned. 0 starts from the oldest retained event.
	After uint64
	// Type, Graph, Node, and Trace filter on the corresponding fields
	// when non-empty. Type may be a comma-separated list.
	Type  string
	Graph string
	Node  string
	Trace string
	// Since drops events recorded before it when non-zero.
	Since time.Time
	// Limit caps the result (default DefaultLimit, max MaxLimit).
	Limit int
}

// Query result bounds.
const (
	DefaultLimit = 100
	MaxLimit     = 1000
)

// Match reports whether the event passes the query's filters (the
// cursor and limit are handled by Events; Match is exported so the
// router can filter a merged cross-shard stream with the same rules).
func (q Query) Match(e Event) bool {
	if q.Type != "" {
		ok := false
		for _, t := range strings.Split(q.Type, ",") {
			if strings.TrimSpace(t) == e.Type {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.Graph != "" && e.Graph != q.Graph {
		return false
	}
	if q.Node != "" && e.Node != q.Node {
		return false
	}
	if q.Trace != "" && e.TraceID != q.Trace {
		return false
	}
	if !q.Since.IsZero() && e.TS.Before(q.Since) {
		return false
	}
	return true
}

// Events returns matching events in sequence order plus the cursor to
// pass as After on the next call (the last examined sequence number,
// regardless of filter matches, so pagination advances past filtered
// spans too). next equals q.After when nothing new was examined.
func (r *Recorder) Events(q Query) (events []Event, next uint64) {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if limit > MaxLimit {
		limit = MaxLimit
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next = q.After
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.head+i)%len(r.buf)]
		if e.Seq <= q.After {
			continue
		}
		next = e.Seq
		if q.Match(e) {
			events = append(events, e)
			if len(events) >= limit {
				break
			}
		}
	}
	return events, next
}

// LastSeq returns the most recently assigned sequence number (0 when
// nothing has been recorded). SSE tails start here.
func (r *Recorder) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - 1
}

// Subscribe registers a live event channel. Slow subscribers miss
// events rather than blocking recorders; the returned cancel must be
// called exactly once.
func (r *Recorder) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	r.subMu.Lock()
	r.subs[ch] = struct{}{}
	r.subMu.Unlock()
	cancel := func() {
		r.subMu.Lock()
		delete(r.subs, ch)
		r.subMu.Unlock()
	}
	return ch, cancel
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	n, size := r.n, len(r.buf)
	r.mu.Unlock()
	return Stats{
		Recorded:    r.recorded.Load(),
		Dropped:     r.dropped.Load(),
		RingLen:     n,
		RingCap:     size,
		Segments:    r.segments.Load(),
		SpillErrors: r.spillErrors.Load(),
	}
}

// Close stops the spill goroutine after flushing any pending segment.
// The ring remains queryable. Close is a no-op for in-memory journals
// and idempotent otherwise.
func (r *Recorder) Close() {
	if r == nil || r.stop == nil {
		return
	}
	select {
	case <-r.stop:
		return // already closed
	default:
	}
	close(r.stop)
	<-r.done
}

// spillLoop drains the spill channel into a pending JSONL buffer and
// seals it into a segment file when it reaches the size threshold, on
// the flush ticker, and at shutdown.
func (r *Recorder) spillLoop() {
	defer close(r.done)
	var pending bytes.Buffer
	var firstSeq uint64
	ticker := time.NewTicker(r.flushEvery)
	defer ticker.Stop()

	add := func(e Event) {
		line, err := json.Marshal(e)
		if err != nil {
			return
		}
		if pending.Len() == 0 {
			firstSeq = e.Seq
		}
		pending.Write(line)
		pending.WriteByte('\n')
		if int64(pending.Len()) >= r.segBytes {
			r.seal(&pending, firstSeq)
		}
	}

	for {
		select {
		case e := <-r.spill:
			add(e)
		case <-ticker.C:
			if pending.Len() > 0 {
				r.seal(&pending, firstSeq)
			}
		case <-r.stop:
			for {
				select {
				case e := <-r.spill:
					add(e)
					continue
				default:
				}
				break
			}
			if pending.Len() > 0 {
				r.seal(&pending, firstSeq)
			}
			return
		}
	}
}

// seal writes the pending JSONL buffer as one CRC-framed segment file
// (temp + rename, like every store artifact) and enforces the byte
// budget. The buffer is reset either way: a failed write is counted
// and dropped, never retried into an ever-growing buffer.
func (r *Recorder) seal(pending *bytes.Buffer, firstSeq uint64) {
	payload := pending.Bytes()
	path := filepath.Join(r.dir, fmt.Sprintf("journal-%016x%s", firstSeq, SegmentExt))
	err := func() error {
		tmp, err := os.CreateTemp(r.dir, ".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := writeSegmentFrame(tmp, payload); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), path)
	}()
	pending.Reset()
	if err != nil {
		r.spillErrors.Add(1)
		return
	}
	r.segments.Add(1)
	r.enforceBudget()
}

// enforceBudget deletes the oldest segment files until the journal
// directory fits the byte budget (the store's sketch-eviction idiom).
func (r *Recorder) enforceBudget() {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), SegmentExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{
			path:  filepath.Join(r.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= r.maxBytes {
			return
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}

// writeSegmentFrame writes one framed segment payload.
func writeSegmentFrame(w io.Writer, payload []byte) error {
	var hdr [20]byte
	copy(hdr[:8], SegmentMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SegmentVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(sum[:])
	return err
}

// ReadSegment decodes one segment file, verifying magic, version,
// length, and checksum, and returns its events in recorded order.
func ReadSegment(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [20]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSegment, err)
	}
	if string(hdr[:8]) != SegmentMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSegment, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != SegmentVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSegment, v)
	}
	size := binary.LittleEndian.Uint64(hdr[12:20])
	if size > maxSegmentPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes", ErrBadSegment, size)
	}
	payload, err := readSegmentPayload(f, size)
	if err != nil {
		return nil, err
	}
	var sum [4]byte
	if _, err := io.ReadFull(f, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrBadSegment, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.Checksum(payload, castagnoli) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSegment)
	}
	var out []Event
	sc := bufio.NewScanner(bytes.NewReader(payload))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var e Event
		if json.Unmarshal(sc.Bytes(), &e) == nil {
			out = append(out, e)
		}
	}
	return out, nil
}

// readSegmentPayload reads a declared-size payload growing the buffer
// geometrically as bytes actually arrive, so a forged multi-GiB length
// field in a tiny file is rejected after a short read instead of
// committing the declared allocation up front.
func readSegmentPayload(r io.Reader, size uint64) ([]byte, error) {
	const initialCap = 64 << 10
	payload := make([]byte, min(size, initialCap))
	read := 0
	for {
		n, err := io.ReadFull(r, payload[read:])
		read += n
		if err != nil {
			return nil, fmt.Errorf("%w: payload: read %d of %d bytes: %v", ErrBadSegment, read, size, err)
		}
		if uint64(len(payload)) == size {
			return payload, nil
		}
		grown := make([]byte, min(size, 2*uint64(len(payload))))
		copy(grown, payload)
		payload = grown
	}
}
