package cluster_test

import (
	"strings"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
)

// TestClusterEndToEnd drives a 3-backend cluster through the full
// sharding story: HRW placement spreads graphs across backends, the
// client-facing API (register, allocate, jobs, SSE) is the single-node
// API, aggregate warm-sketch capacity is the sum of the shards, a
// backend kill re-routes its graphs, and its recovery moves them back
// with their warm sketches shipped rather than discarded.
func TestClusterEndToEnd(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b2", "127.0.0.1:0", service.Options{}),
	}
	byName := func(name string) *backend {
		for _, b := range backends {
			if b.name == name {
				return b
			}
		}
		t.Fatalf("no backend %q", name)
		return nil
	}
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval: time.Hour, // tests drive Sync explicitly
		ProxyTimeout:  30 * time.Second,
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	// --- placement: distinct graphs land on distinct backends ----------
	var infos []service.GraphInfo
	for n := 3; n <= 8; n++ {
		infos = append(infos, c.registerLine(n))
	}
	ownerOf := map[string]string{}
	ownersSeen := map[string]bool{}
	for _, info := range infos {
		resident := ""
		for _, b := range backends {
			if _, ok := b.svc.Registry().Get(info.ID); !ok {
				continue
			}
			if resident != "" {
				t.Fatalf("graph %s resident on both %s and %s", info.ID, resident, b.name)
			}
			resident = b.name
		}
		if resident == "" {
			t.Fatalf("graph %s resident nowhere", info.ID)
		}
		want, _ := cluster.Owner([]string{"b0", "b1", "b2"}, info.ID)
		if resident != want {
			t.Errorf("graph %s on %s, HRW says %s", info.ID, resident, want)
		}
		ownerOf[info.ID] = resident
		ownersSeen[resident] = true
	}
	if len(ownersSeen) < 2 {
		t.Fatalf("all %d graphs landed on one backend: %v", len(infos), ownerOf)
	}

	// The merged listing shows every graph exactly once.
	var list struct {
		Graphs  []service.GraphInfo `json:"graphs"`
		Partial bool                `json:"partial"`
	}
	c.doJSON("GET", "/v1/graphs", nil, &list, 200)
	if len(list.Graphs) != len(infos) || list.Partial {
		t.Fatalf("merged listing: %d graphs (partial=%v), want %d", len(list.Graphs), list.Partial, len(infos))
	}

	// --- allocate through the router; jobs route by id prefix ----------
	req := func(id string) service.AllocateRequest {
		return service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}, Seed: 3}
	}
	for _, info := range infos {
		jobID := c.submit("/v1/allocate", req(info.ID))
		if !strings.HasPrefix(jobID, ownerOf[info.ID]+"-") {
			t.Fatalf("job %s for graph on %s", jobID, ownerOf[info.ID])
		}
		view := c.waitJob(jobID)
		if view.State != service.JobDone {
			t.Fatalf("allocate %s failed: %s", info.ID, view.Error)
		}
		if view.Result.SketchCached {
			t.Errorf("first allocate of %s claims a warm sketch", info.ID)
		}
	}

	// --- capacity: the warm set is partitioned, and in aggregate every
	// graph's sketch is resident — no single backend could hold what the
	// cluster holds if its cache were the only one.
	totalWarm := 0
	perBackend := map[string]int{}
	for _, b := range backends {
		n := b.svc.Stats().SketchCache.Entries
		perBackend[b.name] = n
		totalWarm += n
	}
	if totalWarm != len(infos) {
		t.Errorf("cluster holds %d warm sketches, want %d (one per graph): %v", totalWarm, len(infos), perBackend)
	}
	for name, n := range perBackend {
		if n == totalWarm {
			t.Errorf("backend %s holds the entire warm set (%d)", name, n)
		}
	}

	// Repeated allocates are warm, and SSE progress streams flow through
	// the proxy ending in the terminal event.
	warmJob := c.submit("/v1/allocate", req(infos[0].ID))
	events := c.streamEvents(warmJob)
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("proxied SSE events = %v, want terminal done", events)
	}
	if view := c.waitJob(warmJob); !view.Result.SketchCached {
		t.Error("repeated allocate missed the warm sketch")
	}

	// --- kill the owner of graph 0: its graphs re-route ----------------
	victim := ownerOf[infos[0].ID]
	byName(victim).kill()
	rt.Sync(syncCtx()) // probe sees the death, rebalance re-ships from the catalog

	view := c.waitJob(c.submit("/v1/allocate", req(infos[0].ID)))
	if view.State != service.JobDone {
		t.Fatalf("allocate after owner kill failed: %s", view.Error)
	}
	if view.Result.SketchCached {
		t.Error("allocate on the fail-over owner claims the dead backend's sketch")
	}
	interim := ""
	for _, b := range backends {
		if b.name == victim {
			continue
		}
		if _, ok := b.svc.Registry().Get(infos[0].ID); ok {
			interim = b.name
		}
	}
	if interim == "" {
		t.Fatal("graph 0 not re-routed to a survivor")
	}

	// --- recovery: ownership returns, warm sketches ship along ---------
	revived := byName(victim).restart(t)
	for i, b := range backends {
		if b.name == victim {
			backends[i] = revived
		}
	}
	rt.Sync(syncCtx())

	if _, ok := revived.svc.Registry().Get(infos[0].ID); !ok {
		t.Fatal("recovered backend did not take its graph back")
	}
	if _, ok := byName(interim).svc.Registry().Get(infos[0].ID); ok {
		t.Error("interim owner still holds the graph after hand-back")
	}
	stats := rt.Stats(syncCtx())
	if stats.Cluster.SketchShips == 0 {
		t.Error("no sketch stream was shipped during rebalancing")
	}
	if stats.Cluster.Rebalances == 0 {
		t.Error("no rebalances counted")
	}

	// The shipped sketch serves the recovered owner's first allocate warm
	// — the whole point of shipping rather than rebuilding.
	view = c.waitJob(c.submit("/v1/allocate", req(infos[0].ID)))
	if view.State != service.JobDone {
		t.Fatalf("allocate after recovery failed: %s", view.Error)
	}
	if !view.Result.SketchCached {
		t.Error("recovered owner built from scratch; the shipped warm sketch was lost")
	}
	if !strings.HasPrefix(view.ID, victim+"-") {
		t.Errorf("post-recovery job %s not on %s", view.ID, victim)
	}
}
