package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// syncCatalog runs one adopt + rebalance pass. Passes are serialized:
// the probe loop, Sync, and tests may all trigger one, and two
// concurrent passes could ship the same graph twice. Each pass runs
// under its own trace: every backend request it issues carries the
// pass's id, so one grep correlates a rebalance with the imports,
// exports, and deletes it caused across the shards.
func (r *Router) syncCatalog(ctx context.Context) {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	ctx = telemetry.NewContext(ctx, telemetry.NewTrace("", true))
	// Clear the drift flag before the pass, never after: a request that
	// flags new drift while the pass runs must survive into the next
	// round, and rebalance below only ever re-raises the flag.
	r.dirty.Store(false)
	r.adopt(ctx)
	r.rebalance(ctx)
}

// adopt discovers graphs the router does not know about — typically a
// backend's -data-dir re-index after a restart — by listing every live
// backend and fetching the .wmg export of each unknown graph. Eagerly
// fetching the bytes is the point: once the router holds them it can
// re-route the graph even if the backend that introduced it dies.
func (r *Router) adopt(ctx context.Context) {
	for _, res := range r.fanout(ctx, http.MethodGet, "/v1/graphs") {
		if res.err != nil || res.status != http.StatusOK {
			continue
		}
		var body struct {
			Graphs []service.GraphInfo `json:"graphs"`
		}
		if err := json.Unmarshal(res.body, &body); err != nil {
			continue
		}
		for _, gi := range body.Graphs {
			r.mu.Lock()
			known := r.catalog[gi.ID] != nil
			dead := r.tombs[gi.ID]
			r.mu.Unlock()
			if dead {
				// A client-deleted graph still resident somewhere (a move
				// raced the DELETE): sweep it instead of re-adopting it.
				if status, _, err := r.call(ctx, http.MethodDelete, res.backend, "/v1/graphs/"+gi.ID, nil); err != nil || status != http.StatusOK {
					log.Printf("cluster: sweep deleted %s on %s: status %d err %v", gi.ID, res.backend, status, err)
				}
				continue
			}
			if known {
				// A cataloged graph whose spill went missing (a failed
				// write at registration, external removal) is re-fetched
				// while a live backend still exports it, so the re-ship
				// guarantee holds if that backend later dies.
				if _, err := os.Stat(r.spillPath(gi.ID)); err != nil {
					status, wmg, err := r.call(ctx, http.MethodGet, res.backend, "/v1/graphs/"+gi.ID+"/export", nil)
					if err != nil || status != http.StatusOK {
						log.Printf("cluster: re-spill %s from %s: status %d err %v", gi.ID, res.backend, status, err)
						r.dirty.Store(true)
					} else {
						r.saveWMG(gi.ID, wmg)
					}
				}
				continue
			}
			status, wmg, err := r.call(ctx, http.MethodGet, res.backend, "/v1/graphs/"+gi.ID+"/export", nil)
			if err != nil || status != http.StatusOK {
				log.Printf("cluster: adopt %s from %s: status %d err %v", gi.ID, res.backend, status, err)
				continue
			}
			r.mu.Lock()
			adopted := r.catalog[gi.ID] == nil && !r.tombs[gi.ID]
			if adopted {
				r.catalog[gi.ID] = &graphRecord{id: gi.ID, name: gi.Name, owner: res.backend, nodes: gi.Nodes, edges: gi.Edges}
			}
			r.mu.Unlock()
			if !adopted {
				continue // a DELETE (or another pass) won the race; no spill
			}
			r.saveWMG(gi.ID, wmg)
			// Mirror the delete-race guard elsewhere: a DELETE that landed
			// between the insert and the spill write removed the file
			// before it existed — sweep it so no orphan .wmg outlives the
			// deletion.
			r.mu.Lock()
			gone := r.tombs[gi.ID]
			r.mu.Unlock()
			if gone {
				r.removeWMG(gi.ID)
			}
		}
	}
}

// rebalance re-routes every cataloged graph whose HRW owner (among live
// backends) differs from where it currently lives: the graph's .wmg
// bytes are registered on the new owner, the old owner's warm sketches
// are shipped along when it is still alive to export them, and the old
// copy is deleted so its registry slot and sketch memory are freed. A
// failed move leaves the record unchanged — the next membership change
// or probe round retries.
func (r *Router) rebalance(ctx context.Context) {
	alive := r.members.Alive()
	if len(alive) == 0 {
		r.mu.Lock()
		n := len(r.catalog)
		r.mu.Unlock()
		if n > 0 {
			r.dirty.Store(true) // nothing can be placed; keep retrying
		}
		return
	}
	r.mu.Lock()
	records := make([]*graphRecord, 0, len(r.catalog))
	for _, rec := range r.catalog {
		records = append(records, rec)
	}
	r.mu.Unlock()

	converged := true
	started := false
	moved := 0
	for _, rec := range records {
		r.mu.Lock()
		id, owner := rec.id, rec.owner
		deleted := r.catalog[id] != rec
		r.mu.Unlock()
		if deleted {
			continue
		}
		want, ok := Owner(alive, id)
		if !ok || want == owner {
			continue
		}
		if !started {
			started = true
			r.flight.Record(journal.Event{Type: journal.RebalanceStart, TraceID: edgeTraceID(ctx)})
		}
		if err := r.moveGraph(ctx, id, owner, want); err != nil {
			log.Printf("cluster: move %s %s -> %s: %v", id, owner, want, err)
			r.flight.Record(journal.Event{
				Type: journal.RebalanceFailed, Graph: id, From: owner, To: want,
				TraceID: edgeTraceID(ctx), Error: err.Error(),
			})
			converged = false // retried next probe round via the dirty flag
			continue
		}
		r.mu.Lock()
		// A DELETE may have removed the record mid-move: the fresh copy on
		// the new owner must not outlive the deletion.
		resurrected := r.catalog[id] != rec
		if !resurrected {
			rec.owner = want
		}
		r.mu.Unlock()
		if resurrected {
			if status, _, err := r.call(ctx, http.MethodDelete, want, "/v1/graphs/"+id, nil); err != nil || status != http.StatusOK {
				log.Printf("cluster: undo move of deleted %s on %s: status %d err %v", id, want, status, err)
			}
			r.removeWMG(id) // moveGraph may have re-spilled mid-delete
			continue
		}
		r.rebalances.Add(1)
		moved++
		r.flight.Record(journal.Event{
			Type: journal.OwnershipFlip, Graph: id, From: owner, To: want,
			TraceID: edgeTraceID(ctx),
		})
	}
	if started {
		// The pass-level terminal event; individual move failures above
		// carry their own rebalance_failed events with the reason.
		r.flight.Record(journal.Event{Type: journal.RebalanceDone, Count: int64(moved), TraceID: edgeTraceID(ctx)})
	}
	if !converged {
		r.dirty.Store(true)
	}
}

// moveGraph ships one graph to its new owner: register the graph bytes
// there (raw .wmg import, read back from the catalog spill or re-fetched
// from a live holder), stream the old owner's warm sketches across (when
// it is alive to export them), and delete the old copy.
func (r *Router) moveGraph(ctx context.Context, id, oldOwner, newOwner string) error {
	defer r.observeOp("rebalance", time.Now())
	oldAlive := oldOwner != "" && r.members.IsAlive(oldOwner)

	wmg, err := r.loadWMG(id)
	fromSpill := err == nil
	if err != nil {
		if wmg, err = r.fetchWMG(ctx, id, oldOwner); err != nil {
			return err
		}
		r.saveWMG(id, wmg)
	}

	// The graph must exist on the new owner before sketches can import.
	status, raw, err := r.call(ctx, http.MethodPost, newOwner, "/v1/graphs/import", bytes.NewReader(wmg))
	if err != nil {
		return err
	}
	if fromSpill && status == http.StatusBadRequest {
		// A readable spill the backend rejects is corrupt or stale (bit
		// rot, a foreign file in a user-supplied catalog dir). Drop it and
		// retry once from a live holder — otherwise the dirty-flag loop
		// would reload the same bad file every probe round forever.
		r.removeWMG(id)
		if wmg, err = r.fetchWMG(ctx, id, oldOwner); err != nil {
			return fmt.Errorf("spill for %s rejected by %s (status %d: %s); %w", id, newOwner, status, raw, err)
		}
		r.saveWMG(id, wmg)
		if status, raw, err = r.call(ctx, http.MethodPost, newOwner, "/v1/graphs/import", bytes.NewReader(wmg)); err != nil {
			return err
		}
	}
	if status != http.StatusCreated && status != http.StatusOK {
		return fmt.Errorf("register on %s: status %d: %s", newOwner, status, raw)
	}

	if oldAlive {
		// Best-effort: a failed transfer just means the new owner starts
		// cold, exactly as if the old owner had died.
		if shipped, sentBytes, err := r.streamSketches(ctx, id, oldOwner, newOwner); err != nil {
			log.Printf("cluster: ship sketches for %s %s -> %s: %v", id, oldOwner, newOwner, err)
		} else if shipped > 0 {
			r.ships.Add(1)
			telemetry.AddResource(ctx, telemetry.ResBytesShipped, sentBytes)
			r.flight.Record(journal.Event{
				Type: journal.SketchShip, Graph: id, From: oldOwner, To: newOwner,
				Count: int64(shipped), Bytes: sentBytes, TraceID: edgeTraceID(ctx),
			})
		}
	}

	if oldAlive && oldOwner != newOwner {
		if status, _, err := r.call(ctx, http.MethodDelete, oldOwner, "/v1/graphs/"+id, nil); err != nil || status != http.StatusOK {
			log.Printf("cluster: free %s on %s: status %d err %v", id, oldOwner, status, err)
		}
	}
	return nil
}

// fetchWMG recovers a graph's encoded bytes when the catalog spill is
// missing or unreadable: the graph's current holder is asked for its
// export first, then every other live backend (mid-rebalance a graph can
// be resident on a backend that is not its cataloged owner).
func (r *Router) fetchWMG(ctx context.Context, id, preferred string) ([]byte, error) {
	var order []string
	if preferred != "" && r.members.IsAlive(preferred) {
		order = append(order, preferred)
	}
	for _, b := range r.members.Alive() {
		if b != preferred {
			order = append(order, b)
		}
	}
	for _, b := range order {
		status, raw, err := r.call(ctx, http.MethodGet, b, "/v1/graphs/"+id+"/export", nil)
		if err == nil && status == http.StatusOK {
			return raw, nil
		}
	}
	return nil, fmt.Errorf("graph %s: no spilled copy and no live backend exports it", id)
}

// streamSketches pipes the old owner's sketch export straight into the
// new owner's import — the response body becomes the request body, so
// the router never buffers the warm set (which can approach the 1GB
// ship cap). It returns how many sketches the new owner imported and
// how many stream bytes crossed the router (the ship's cost for the
// flight recorder and the bytes_shipped resource).
func (r *Router) streamSketches(ctx context.Context, id, from, to string) (int, int64, error) {
	defer r.observeOp("ship", time.Now())
	fromBase, ok1 := r.members.URLOf(from)
	toBase, ok2 := r.members.URLOf(to)
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("unknown backend %q or %q", from, to)
	}
	// Both legs of the ship carry the sync pass's trace id, like every
	// other router-initiated request (call does this automatically; the
	// streaming legs here are hand-built).
	traceID := ""
	if tr := telemetry.FromContext(ctx); tr != nil {
		traceID = tr.ID()
	}
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	get, err := http.NewRequestWithContext(ctx, http.MethodGet, fromBase+"/v1/graphs/"+id+"/sketches", nil)
	if err != nil {
		return 0, 0, err
	}
	if r.token != "" {
		get.Header.Set(service.ClusterTokenHeader, r.token)
	}
	if traceID != "" {
		get.Header.Set(telemetry.TraceHeader, traceID)
	}
	exp, err := r.client.Do(get)
	if err != nil {
		return 0, 0, err
	}
	defer exp.Body.Close()
	if exp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("export: status %d", exp.StatusCode)
	}
	counted := &countingReader{r: io.LimitReader(exp.Body, maxShipBytes)}
	post, err := http.NewRequestWithContext(ctx, http.MethodPost, toBase+"/v1/graphs/"+id+"/sketches", counted)
	if err != nil {
		return 0, 0, err
	}
	if r.token != "" {
		post.Header.Set(service.ClusterTokenHeader, r.token)
	}
	if traceID != "" {
		post.Header.Set(telemetry.TraceHeader, traceID)
	}
	imp, err := r.client.Do(post)
	if err != nil {
		return 0, 0, err
	}
	defer imp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(imp.Body, 1<<20))
	if imp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("import: status %d: %s", imp.StatusCode, raw)
	}
	var body struct {
		Imported int `json:"imported"`
	}
	_ = json.Unmarshal(raw, &body)
	return body.Imported, counted.n, nil
}

// countingReader counts the bytes drawn through it — how a ship's
// stream cost is measured without buffering the stream.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
