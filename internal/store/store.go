package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/graph"
)

// File extensions of the two persisted artifact kinds.
const (
	// GraphExt is the binary graph format written under <dir>/graphs and
	// by gengraph -format binary.
	GraphExt = ".wmg"
	// SketchExt is the spilled-sketch format written under <dir>/sketches.
	SketchExt = ".wms"
)

// Store is the disk tier under welmaxd's in-memory state: graphs live as
// content-addressed .wmg files under <dir>/graphs, spilled sketches as
// .wms files under <dir>/sketches named <graphID>-<keyhash> so a graph's
// sketches can be swept when it is deleted. All operations are safe for
// concurrent use: writes go through a temp file plus rename (a crashed
// daemon never leaves a half-written artifact a restart would trust —
// the checksum catches any that slip through), and the counters are
// atomics exposed via Stats for GET /v1/stats.
type Store struct {
	dir string

	// maxSketchBytes bounds the sketch directory (0 = unbounded); the
	// oldest spilled files are evicted past it.
	maxSketchBytes int64

	// evictMu serializes the size-scan-and-evict pass so concurrent
	// spills don't double-delete.
	evictMu sync.Mutex
	// auditMu serializes appends to the job-history trail.
	auditMu sync.Mutex

	diskHits    atomic.Int64
	spills      atomic.Int64
	spillErrors atomic.Int64
	loadErrors  atomic.Int64
	evictions   atomic.Int64
	expired     atomic.Int64
}

// Open creates (if needed) and opens a data directory. maxSketchMB
// bounds the spilled-sketch tier in megabytes; 0 leaves it unbounded.
func Open(dir string, maxSketchMB int) (*Store, error) {
	for _, sub := range []string{graphsDir(dir), sketchesDir(dir), jobsDir(dir), sweepsDir(dir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir, maxSketchBytes: int64(maxSketchMB) << 20}, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

func graphsDir(dir string) string   { return filepath.Join(dir, "graphs") }
func sketchesDir(dir string) string { return filepath.Join(dir, "sketches") }

// Stats is the /v1/stats view of the disk tier.
type Stats struct {
	// Hits counts sketches served from disk instead of rebuilt.
	Hits int64 `json:"hits"`
	// Spills counts completed builds written to disk; SpillErrors counts
	// writes that failed (full disk, unwritable dir) — a nonzero value
	// means restarts will rebuild instead of loading.
	Spills      int64 `json:"spills"`
	SpillErrors int64 `json:"spill_errors"`
	// LoadErrors counts unreadable artifacts (truncated, bad checksum,
	// wrong version); each also removes the offending file so the next
	// rebuild overwrites it.
	LoadErrors int64 `json:"load_errors"`
	// Evictions counts spilled sketches deleted to honor the byte budget.
	Evictions int64 `json:"evictions"`
	// Expired counts spills rejected (and removed) for exceeding the
	// cache TTL at load time.
	Expired int64 `json:"expired"`
}

// Stats snapshots the disk-tier counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.diskHits.Load(),
		Spills:      s.spills.Load(),
		SpillErrors: s.spillErrors.Load(),
		LoadErrors:  s.loadErrors.Load(),
		Evictions:   s.evictions.Load(),
		Expired:     s.expired.Load(),
	}
}

// writeAtomic writes an artifact via a temp file in the same directory
// plus rename, so readers and boot-time scans only ever see complete
// files.
func writeAtomic(path string, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveGraph persists a graph under its content id, keeping the caller's
// name label in the file. Saving an id that already exists is a cheap
// no-op — content addressing makes the bytes identical.
func (s *Store) SaveGraph(id, name string, g *graph.Graph) error {
	path := filepath.Join(graphsDir(s.dir), id+GraphExt)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return writeAtomic(path, func(f *os.File) error {
		return EncodeGraph(f, name, g)
	})
}

// StoredGraph is one graph recovered by LoadGraphs.
type StoredGraph struct {
	ID    string
	Name  string
	Graph *graph.Graph
}

// LoadGraphs decodes every readable graph artifact in the data
// directory, sorted by id for deterministic boot order. Unreadable files
// count as load errors and are skipped — one corrupt artifact must not
// keep the daemon from starting. A file whose name does not match its
// content hash (hand-dropped into the directory, or surviving a hash
// scheme change) is renamed to the recomputed id on the spot: the hash
// is the identity, and DeleteGraph targets <id>.wmg, so leaving the old
// name would make the graph undeletable — removed from the registry but
// resurrected at every restart.
func (s *Store) LoadGraphs() []StoredGraph {
	entries, err := os.ReadDir(graphsDir(s.dir))
	if err != nil {
		s.loadErrors.Add(1)
		return nil
	}
	var out []StoredGraph
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), GraphExt) {
			continue
		}
		path := filepath.Join(graphsDir(s.dir), e.Name())
		f, err := os.Open(path)
		if err != nil {
			s.loadErrors.Add(1)
			continue
		}
		name, g, err := DecodeGraph(f)
		f.Close()
		if err != nil {
			s.loadErrors.Add(1)
			continue
		}
		id := GraphID(g)
		if e.Name() != id+GraphExt {
			canonical := filepath.Join(graphsDir(s.dir), id+GraphExt)
			if err := os.Rename(path, canonical); err != nil {
				s.loadErrors.Add(1)
				continue // an unrenameable alias would be undeletable; skip it
			}
		}
		out = append(out, StoredGraph{ID: id, Name: name, Graph: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeleteGraph removes a graph artifact and every sketch spilled for it.
func (s *Store) DeleteGraph(id string) {
	os.Remove(filepath.Join(graphsDir(s.dir), id+GraphExt))
	matches, _ := filepath.Glob(filepath.Join(sketchesDir(s.dir), id+"-*"+SketchExt))
	for _, m := range matches {
		os.Remove(m)
	}
}

// sketchPath maps a cache key to its spill file. Keys embed budgets and
// float parameters, so they are hashed rather than used as filenames;
// the graph id prefix keeps a graph's sketches sweepable as a group.
func (s *Store) sketchPath(graphID, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(sketchesDir(s.dir), fmt.Sprintf("%s-%x%s", graphID, sum[:12], SketchExt))
}

// SaveSketch spills a completed build to disk and enforces the byte
// budget. Spill failures are counted (Stats.SpillErrors — the operator's
// signal that persistence is broken) and returned, but are never fatal
// to the request that built the sketch — the memory tier already has it.
func (s *Store) SaveSketch(graphID, key string, sketch any) error {
	err := writeAtomic(s.sketchPath(graphID, key), func(f *os.File) error {
		return EncodeSketch(f, sketch)
	})
	if err != nil {
		s.spillErrors.Add(1)
		return fmt.Errorf("store: spill %s: %w", key, err)
	}
	s.spills.Add(1)
	s.enforceSketchBudget()
	return nil
}

// LoadSketch returns the spilled sketch for a cache key, or nil on a
// miss. An unreadable file counts as a load error, is removed so the
// rebuild's spill replaces it, and reads as a miss — the caller falls
// back to building from scratch. A positive maxAge additionally rejects
// (and removes) spills older than it: with a cache TTL configured, a
// spill left behind by cost eviction or a restart must not resurrect a
// sketch older than the TTL promises.
func (s *Store) LoadSketch(graphID, key string, g *graph.Graph, maxAge time.Duration) any {
	path := s.sketchPath(graphID, key)
	if maxAge > 0 {
		if info, err := os.Stat(path); err == nil && time.Since(info.ModTime()) > maxAge {
			os.Remove(path)
			s.expired.Add(1)
			return nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	sketch, err := DecodeSketch(f, g)
	f.Close()
	if err != nil {
		s.loadErrors.Add(1)
		os.Remove(path)
		return nil
	}
	s.diskHits.Add(1)
	return sketch
}

// DeleteSketch removes one spilled sketch. The cache's TTL expiry uses
// it: an expired in-memory entry must invalidate the disk copy too, or
// the "rebuild" would just reload the same stale spill.
func (s *Store) DeleteSketch(graphID, key string) {
	os.Remove(s.sketchPath(graphID, key))
}

// HasSketch reports whether a spill exists for the key without decoding
// it (used by stats-minded callers and tests).
func (s *Store) HasSketch(graphID, key string) bool {
	_, err := os.Stat(s.sketchPath(graphID, key))
	return err == nil
}

// enforceSketchBudget deletes the oldest spilled sketches until the
// sketch directory fits the byte budget.
func (s *Store) enforceSketchBudget() {
	if s.maxSketchBytes <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	entries, err := os.ReadDir(sketchesDir(s.dir))
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), SketchExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{
			path:  filepath.Join(sketchesDir(s.dir), e.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= s.maxSketchBytes {
			return
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			s.evictions.Add(1)
		}
	}
}

// SaveGraphFile writes a standalone .wmg file (gengraph's binary output
// mode) outside any data directory.
func SaveGraphFile(path, name string, g *graph.Graph) error {
	return writeAtomic(path, func(f *os.File) error {
		return EncodeGraph(f, name, g)
	})
}

// LoadGraphFile loads a graph from either format, sniffing the magic
// bytes: a .wmg binary file decodes directly (binary=true; its stored
// probabilities are authoritative, so callers skip their
// weighted-cascade reset), anything else parses as a text edge list with
// the usual undirected handling.
func LoadGraphFile(path string, undirected bool) (g *graph.Graph, binary bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	var magic [8]byte
	n, _ := f.Read(magic[:])
	if _, err := f.Seek(0, 0); err != nil {
		return nil, false, err
	}
	if n == len(magic) && string(magic[:]) == GraphMagic {
		_, g, err := DecodeGraph(f)
		return g, true, err
	}
	g, err = graph.ReadEdgeList(f, undirected)
	return g, false, err
}
