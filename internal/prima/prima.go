// Package prima implements PRIMA (PRefix-preserving Influence
// Maximization Algorithm), Algorithm 2 of the paper: a non-trivial
// extension of IMM that, given a vector of item budgets b1 >= b2 >= ...,
// returns a single ordered seed set S_b such that with probability at
// least 1-1/n^ℓ, *every* prefix of size b_i is a (1-1/e-ε)-approximation
// to the optimal spread with b_i seeds. bundleGRD assigns item i to the
// top-b_i prefix of this ordering.
package prima

import (
	"context"
	"math"
	"sort"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/telemetry"
)

// Options configures PRIMA. Zero values default to the paper's settings
// (Eps 0.5, Ell 1).
type Options struct {
	Eps float64
	Ell float64
	// Cascade selects the diffusion model (IC default, or LT).
	Cascade graph.Cascade
	// NodeCoin optionally injects a per-node pass probability into RR
	// sampling.
	NodeCoin func(graph.NodeID) float64
	// Progress, when non-nil, receives StageSketch events as the RR-set
	// collection grows (each adaptive round and the final regeneration).
	Progress progress.Func
	// Workers is the RR-set growth parallelism: each grow phase shards
	// sampling across this many goroutines with deterministic per-worker
	// RNG streams (rrset.GrowParallelCtx). 0 or 1 keeps the legacy
	// serial path — the library zero value changes nothing.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	return o
}

// Result reports the prefix-preserving ordering and sampling effort.
type Result struct {
	// Seeds is the ordered seed set of size max(budgets); the top-b_i
	// prefix serves item i.
	Seeds []graph.NodeID
	// Coverage is F_R(Seeds) on the final regenerated collection.
	Coverage  float64
	SpreadEst float64
	// NumRRSets is the size of the final collection (the memory figure
	// reported in Fig. 6 and Table 6).
	NumRRSets int
	// TotalRRSets additionally counts the phase-1 samples discarded by the
	// from-scratch regeneration.
	TotalRRSets int
}

// Sketch is the reusable product of PRIMA's sampling phases: the final
// from-scratch RR-set collection, sized by the adaptive lower-bound
// search for a specific (graph, budgets, ε, ℓ, cascade) tuple. Once
// BuildSketch returns, the sketch is immutable: Select only reads the
// collection, so a single Sketch may serve many goroutines concurrently
// (the seam the welmaxd sketch cache relies on).
type Sketch struct {
	// Col is the regenerated collection; nil in the degenerate cases
	// (empty instance, or max budget covering the whole graph).
	Col *rrset.Collection
	// MaxBudget is the clamped maximum budget the sketch was sized for.
	MaxBudget int
	// Phase1 counts the adaptive-phase samples discarded before the
	// final regeneration (for TotalRRSets accounting).
	Phase1 int
	// allNodesN, when positive, marks the degenerate instance whose
	// selection is every one of the n nodes in id order.
	allNodesN int
}

// CanonicalBudgets clamps budgets into [1, n], sorts them
// non-increasingly and drops duplicates — the normal form PRIMA sizes a
// sketch for. Two budget vectors with equal canonical forms produce
// statistically identical sketches, so cache keys should be derived from
// this form.
func CanonicalBudgets(budgets []int, n int) []int {
	bs := make([]int, 0, len(budgets))
	for _, b := range budgets {
		if b > n {
			b = n
		}
		if b > 0 {
			bs = append(bs, b)
		}
	}
	if len(bs) == 0 {
		return bs
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bs)))
	uniq := bs[:1]
	for _, b := range bs[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return uniq
}

// Select runs PRIMA for the given budget vector. Budgets need not be
// sorted or distinct; they are sorted non-increasingly internally, and
// only max(budgets) seeds are returned.
func Select(g *graph.Graph, budgets []int, opts Options, rng *stats.RNG) Result {
	return BuildSketch(g, budgets, opts, rng).Select()
}

// BuildSketch runs PRIMA's adaptive sampling (lines 1-21 of Algorithm 2)
// and the final from-scratch regeneration, returning the collection
// without performing the final NodeSelection. The result is read-only
// and safe to share across goroutines; call Select (repeatedly, even
// concurrently) to obtain orderings from it.
func BuildSketch(g *graph.Graph, budgets []int, opts Options, rng *stats.RNG) *Sketch {
	sk, _ := BuildSketchCtx(context.Background(), g, budgets, opts, rng) // background ctx: never canceled
	return sk
}

// BuildSketchCtx is BuildSketch with cooperative cancellation and
// progress reporting: RR-set growth checks ctx every few hundred samples
// and reports through opts.Progress, so a canceled context stops sketch
// construction promptly with ctx.Err() instead of running the sampling
// phases to completion.
func BuildSketchCtx(ctx context.Context, g *graph.Graph, budgets []int, opts Options, rng *stats.RNG) (*Sketch, error) {
	opts = opts.withDefaults()
	n := g.N()
	if n == 0 || len(budgets) == 0 {
		return &Sketch{}, nil
	}
	// Sort budgets non-increasing, clamp into [1, n], drop duplicates
	// (identical budgets share identical prefixes, so a single pass
	// suffices and the union bound over |b| budgets stays valid).
	bs := CanonicalBudgets(budgets, n)
	if len(bs) == 0 {
		return &Sketch{}, nil
	}
	maxBudget := bs[0]
	if maxBudget >= n {
		// Degenerate: the top budget seeds the whole graph; any ordering
		// of all nodes is trivially prefix-preserving only for b_i = n,
		// so fall back to a full greedy ordering over a fixed collection.
		return &Sketch{MaxBudget: maxBudget, allNodesN: n}, nil
	}

	// Line 2: ℓ = ℓ + log2/log n, then ℓ' = log_n(n^ℓ · |b|).
	logn := math.Log(float64(n))
	ell := opts.Ell + math.Ln2/logn
	ellPrime := ell + math.Log(float64(len(bs)))/logn

	epsp := imm.EpsPrime(opts.Eps)

	col := rrset.NewCollection(g)
	col.Sampler().NodeCoin = opts.NodeCoin
	col.Sampler().Cascade = opts.Cascade

	round := 0
	grow := func(target int64) error {
		round++
		return col.GrowParallelCtx(ctx, target, rng, opts.Workers, func(done, total int64) {
			if opts.Progress != nil {
				opts.Progress(progress.Event{Stage: progress.StageSketch, Round: round, Done: int(done), Total: int(total)})
			}
		})
	}

	// θ_final tracks the largest phase-2 requirement seen across budgets;
	// the final from-scratch regeneration uses it.
	thetaFinal := 0.0
	var prevSelection []graph.NodeID

	s := 0 // index into bs (paper's s-1)
	i := 1
	maxI := int(math.Log2(float64(n))) - 1
	budgetSwitch := false
	lbLast := 1.0
	for i <= maxI && s < len(bs) {
		k := bs[s]
		x := float64(n) / math.Pow(2, float64(i))
		thetaI := imm.LambdaPrime(n, k, opts.Eps, ellPrime) / x
		if err := grow(int64(math.Ceil(thetaI))); err != nil {
			return nil, err
		}

		var seeds []graph.NodeID
		var frac float64
		if budgetSwitch && len(prevSelection) >= k {
			// Reuse the prefix of the previous NodeSelection: the greedy
			// max-cover on the same collection with a smaller budget
			// returns exactly this prefix.
			seeds = prevSelection[:k]
			frac = col.FractionCovered(seeds)
		} else {
			endSel := telemetry.StartSpan(ctx, "greedy_select")
			seeds, frac = col.NodeSelection(k)
			endSel()
			prevSelection = seeds
		}

		if float64(n)*frac >= (1+epsp)*x {
			lb := float64(n) * frac / (1 + epsp)
			lbLast = lb
			theta := imm.LambdaStar(n, k, opts.Eps, ellPrime) / lb
			if theta > thetaFinal {
				thetaFinal = theta
			}
			if err := grow(int64(math.Ceil(theta))); err != nil {
				return nil, err
			}
			s++
			budgetSwitch = true
		} else {
			i++
			budgetSwitch = false
		}
	}
	// Line 20-21: budgets that ran out of i-iterations fall back to LB=1.
	if s < len(bs) {
		theta := imm.LambdaStar(n, bs[s], opts.Eps, ellPrime) / 1.0
		if theta > thetaFinal {
			thetaFinal = theta
		}
	}
	if thetaFinal == 0 {
		// Degenerate tiny graph: no i-iterations ran. Use LB = 1.
		thetaFinal = imm.LambdaStar(n, maxBudget, opts.Eps, ellPrime)
	}
	_ = lbLast

	phase1 := col.Len()

	// Lines 22-24: regenerate θ RR sets from scratch (Chen'18 fix). The
	// final NodeSelection (line 25) is left to Select so the regenerated
	// collection can be cached and shared.
	col.Reset()
	if err := grow(int64(math.Ceil(thetaFinal))); err != nil {
		return nil, err
	}
	return &Sketch{Col: col, MaxBudget: maxBudget, Phase1: phase1}, nil
}

// NumRRSets returns the size of the final collection (0 for degenerate
// sketches).
func (s *Sketch) NumRRSets() int {
	if s.Col == nil {
		return 0
	}
	return s.Col.Len()
}

// State exposes the sketch's serializable fields, including the
// unexported degenerate-instance marker; together with RestoreSketch it
// is the persistence seam the internal/store codec uses.
func (s *Sketch) State() (col *rrset.Collection, maxBudget, phase1, allNodesN int) {
	return s.Col, s.MaxBudget, s.Phase1, s.allNodesN
}

// RestoreSketch reassembles a sketch from the fields State returned. A
// restored sketch is indistinguishable from the freshly built one: Select
// on it yields the identical ordering (NodeSelection is deterministic
// given the collection).
func RestoreSketch(col *rrset.Collection, maxBudget, phase1, allNodesN int) *Sketch {
	return &Sketch{Col: col, MaxBudget: maxBudget, Phase1: phase1, allNodesN: allNodesN}
}

// Select runs the final greedy NodeSelection on the sketch and assembles
// the PRIMA result. It only reads the collection and is safe to call
// concurrently from multiple goroutines on one shared Sketch.
func (s *Sketch) Select() Result {
	return s.SelectReport(nil)
}

// SelectReport is Select with an incremental seed-prefix callback:
// report (when non-nil) receives the ordering committed so far, every
// few seeds and once with the final selection (degenerate sketches
// report their full selection once). The prefix slice aliases selection
// storage — copy before retaining. Like Select it only reads the
// collection, so concurrent calls on one shared Sketch remain safe.
func (s *Sketch) SelectReport(report func(prefix []graph.NodeID)) Result {
	if s.allNodesN > 0 {
		seeds := make([]graph.NodeID, s.allNodesN)
		for i := range seeds {
			seeds[i] = graph.NodeID(i)
		}
		if report != nil {
			report(seeds)
		}
		return Result{Seeds: seeds, Coverage: 1, SpreadEst: float64(s.allNodesN)}
	}
	if s.Col == nil {
		return Result{}
	}
	n := s.Col.N()
	seeds, frac := s.Col.NodeSelectionReport(s.MaxBudget, report)
	return Result{
		Seeds:       seeds,
		Coverage:    frac,
		SpreadEst:   float64(n) * frac,
		NumRRSets:   s.Col.Len(),
		TotalRRSets: s.Phase1 + s.Col.Len(),
	}
}
