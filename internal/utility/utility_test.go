package utility

import (
	"math"
	"testing"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

func TestTableValuationValidation(t *testing.T) {
	if _, err := NewTableValuation(2, []float64{0, 1, 2}); err == nil {
		t.Error("wrong table size accepted")
	}
	if _, err := NewTableValuation(2, []float64{1, 1, 2, 3}); err == nil {
		t.Error("V(∅) != 0 accepted")
	}
	v, err := NewTableValuation(2, []float64{0, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumItems() != 2 || v.Value(itemset.New(0, 1)) != 5 {
		t.Error("table valuation misreads")
	}
}

func TestTableValuationCopiesInput(t *testing.T) {
	vals := []float64{0, 1, 2, 5}
	v, _ := NewTableValuation(2, vals)
	vals[3] = 99
	if v.Value(itemset.New(0, 1)) != 5 {
		t.Error("valuation aliases caller slice")
	}
}

func TestTableFromFunc(t *testing.T) {
	v, err := TableFromFunc(3, func(s itemset.Set) float64 { return float64(s.Size() * s.Size()) })
	if err != nil {
		t.Fatal(err)
	}
	if v.Value(itemset.New(0, 2)) != 4 {
		t.Error("TableFromFunc wrong")
	}
	// |S|^2 is supermodular
	if !IsSupermodular(v) {
		t.Error("|S|^2 must be supermodular")
	}
}

func TestAdditiveValuationIsModular(t *testing.T) {
	v := AdditiveValuation{PerItem: []float64{1, 2, 3}}
	if v.Value(itemset.New(0, 2)) != 4 {
		t.Errorf("additive value wrong")
	}
	if !IsSupermodular(v) || !IsSubmodular(v) {
		t.Error("additive valuation must be modular")
	}
	if !IsMonotone(v) {
		t.Error("non-negative additive valuation must be monotone")
	}
}

func TestConeValuationProperties(t *testing.T) {
	v := ConeValuation{K: 4, Core: 1, CoreValue: 6, AddOnValue: 3}
	if v.Value(itemset.New(0, 2)) != 0 {
		t.Error("no-core sets must be worthless")
	}
	if v.Value(itemset.New(1)) != 6 {
		t.Error("core value wrong")
	}
	if v.Value(itemset.New(0, 1, 2)) != 12 {
		t.Error("add-on accumulation wrong")
	}
	if !IsSupermodular(v) {
		t.Error("cone valuation must be supermodular")
	}
	if !IsMonotone(v) {
		t.Error("cone valuation must be monotone")
	}
}

func TestIsSupermodularDetectsViolation(t *testing.T) {
	// strictly concave in size => submodular, not supermodular
	v, _ := TableFromFunc(3, func(s itemset.Set) float64 { return math.Sqrt(float64(s.Size())) })
	if IsSupermodular(v) {
		t.Error("sqrt(|S|) wrongly classified supermodular")
	}
	w := FindSupermodularityViolation(v)
	if w == nil {
		t.Fatal("no witness returned")
	}
	// verify the witness
	ax, ay := w.A.Add(w.X), w.A.Add(w.Y)
	if v.Value(ax.Add(w.Y))-v.Value(ay) >= v.Value(ax)-v.Value(w.A) {
		t.Error("witness does not violate supermodularity")
	}
}

func TestIsMonotoneDetectsViolation(t *testing.T) {
	v, _ := TableFromFunc(2, func(s itemset.Set) float64 {
		if s == itemset.New(0, 1) {
			return -1
		}
		return float64(s.Size())
	})
	if IsMonotone(v) {
		t.Error("non-monotone table accepted")
	}
}

func TestConfig1MatchesTable3(t *testing.T) {
	m := Config1()
	i1, i2, both := itemset.New(0), itemset.New(1), itemset.New(0, 1)
	if m.DetUtility(i1) != 0 || m.DetUtility(i2) != 0 {
		t.Errorf("config1 singleton utilities: %v %v", m.DetUtility(i1), m.DetUtility(i2))
	}
	if m.DetUtility(both) != 1 {
		t.Errorf("config1 bundle utility %v, want 1", m.DetUtility(both))
	}
	if !IsSupermodular(m.Val) || !IsMonotone(m.Val) {
		t.Error("config1 valuation must be supermodular and monotone")
	}
}

func TestConfig3MatchesTable3(t *testing.T) {
	m := Config3()
	i1, i2, both := itemset.New(0), itemset.New(1), itemset.New(0, 1)
	if m.DetUtility(i1) != 0 {
		t.Errorf("i1 utility %v", m.DetUtility(i1))
	}
	if m.DetUtility(i2) != -1 {
		t.Errorf("i2 utility %v, want -1", m.DetUtility(i2))
	}
	if m.DetUtility(both) != 1 {
		t.Errorf("bundle utility %v", m.DetUtility(both))
	}
	if !IsSupermodular(m.Val) {
		t.Error("config3 valuation must be supermodular")
	}
}

func TestConfig1GAPMatchesTable3(t *testing.T) {
	gap, err := GAPFromModel(Config1())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"q1|∅", gap.Q1GivenNone, 0.5},
		{"q2|∅", gap.Q2GivenNone, 0.5},
		{"q1|2", gap.Q1Given2, 0.84},
		{"q2|1", gap.Q2Given1, 0.84},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.01 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if !gap.MutuallyComplementary() {
		t.Error("config1 must be mutually complementary")
	}
}

func TestConfig3GAPMatchesTable3(t *testing.T) {
	gap, err := GAPFromModel(Config3())
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"q1|∅", gap.Q1GivenNone, 0.5},
		{"q2|∅", gap.Q2GivenNone, 0.16},
		{"q1|2", gap.Q1Given2, 0.98},
		{"q2|1", gap.Q2Given1, 0.84},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.01 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestGAPRequiresTwoItems(t *testing.T) {
	if _, err := GAPFromModel(Config5(3)); err == nil {
		t.Error("GAP conversion must reject k != 2")
	}
}

func TestGAPMatchesMonteCarloAdoption(t *testing.T) {
	// empirical check of Eq. 12: simulate the adoption coin directly
	m := Config3()
	gap, _ := GAPFromModel(m)
	rng := stats.NewRNG(1)
	const runs = 200000
	adopt1, adopt2given1 := 0, 0
	i1 := itemset.New(0)
	both := itemset.New(0, 1)
	var util []float64
	for r := 0; r < runs; r++ {
		noise := m.SampleNoise(rng)
		util = m.UtilityTable(noise, util)
		// q_{i1|∅}: does a node desiring only i1 adopt it?
		if util[i1] >= 0 {
			adopt1++
		}
		// q_{i2|i1}: given i1 adopted, does i2 join? i.e. U({i1,i2}) >= U({i1})
		if util[both] >= util[i1] {
			adopt2given1++
		}
	}
	if got := float64(adopt1) / runs; math.Abs(got-gap.Q1GivenNone) > 0.01 {
		t.Errorf("MC q1|∅ = %v vs analytic %v", got, gap.Q1GivenNone)
	}
	if got := float64(adopt2given1) / runs; math.Abs(got-gap.Q2Given1) > 0.01 {
		t.Errorf("MC q2|1 = %v vs analytic %v", got, gap.Q2Given1)
	}
}

func TestConfig5Utilities(t *testing.T) {
	m := Config5(4)
	for i := 0; i < 4; i++ {
		if m.DetUtility(itemset.Single(i)) != 1 {
			t.Errorf("item %d utility %v, want 1", i, m.DetUtility(itemset.Single(i)))
		}
	}
	if m.DetUtility(itemset.All(4)) != 4 {
		t.Errorf("additive utility of all = %v, want 4", m.DetUtility(itemset.All(4)))
	}
}

func TestConfigConeUtilities(t *testing.T) {
	m := ConfigCone(5, 0)
	if m.DetUtility(itemset.New(0)) != 5 {
		t.Errorf("core utility %v, want 5", m.DetUtility(itemset.New(0)))
	}
	if m.DetUtility(itemset.New(0, 1)) != 7 {
		t.Errorf("core+1 utility %v, want 7", m.DetUtility(itemset.New(0, 1)))
	}
	if m.DetUtility(itemset.New(1, 2)) >= 0 {
		t.Errorf("non-core set should have negative utility: %v", m.DetUtility(itemset.New(1, 2)))
	}
	if !IsSupermodular(m.Val) || !IsMonotone(m.Val) {
		t.Error("cone config must be supermodular and monotone")
	}
}

func TestConfig8SupermodularAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		m := Config8(5, stats.NewRNG(seed))
		if !IsSupermodular(m.Val) {
			t.Errorf("seed %d: config8 not supermodular (Lemma 10 violated)", seed)
		}
		if !IsMonotone(m.Val) {
			t.Errorf("seed %d: config8 not monotone", seed)
		}
	}
}

func TestConfig8HasRandomSingletonUtilities(t *testing.T) {
	// across seeds, both signs of singleton utility should occur
	pos, neg := false, false
	for seed := uint64(0); seed < 20; seed++ {
		m := Config8(4, stats.NewRNG(seed))
		for i := 0; i < 4; i++ {
			u := m.DetUtility(itemset.Single(i))
			if u > 0 {
				pos = true
			}
			if u < 0 {
				neg = true
			}
		}
	}
	if !pos || !neg {
		t.Errorf("config8 singleton utilities not diverse: pos=%v neg=%v", pos, neg)
	}
}

func TestRealParamsMatchesTable5(t *testing.T) {
	m := RealParams()
	ps := itemset.New(0)
	psc := itemset.New(0, 1)
	ps3g := itemset.New(0, 2, 3, 4)
	psc2g := itemset.New(0, 1, 2, 3)
	all := itemset.All(5)

	cases := []struct {
		name  string
		set   itemset.Set
		value float64
		price float64
	}{
		{"{ps}", ps, 213, 260},
		{"{ps,c}", psc, 220, 280},
		{"{ps,3g}", ps3g, 258, 275},
		{"{ps,c,2g}", psc2g, 292.5, 290},
		{"{ps,c,3g}", all, 302, 295},
	}
	for _, c := range cases {
		if got := m.Val.Value(c.set); got != c.value {
			t.Errorf("%s value %v, want %v", c.name, got, c.value)
		}
		if got := m.Price(c.set); got != c.price {
			t.Errorf("%s price %v, want %v", c.name, got, c.price)
		}
	}
	// only ps+c+>=2 games has positive deterministic utility
	for s := itemset.Set(1); s < 1<<5; s++ {
		positive := s.Has(0) && s.Has(1) && s.Intersect(itemset.New(2, 3, 4)).Size() >= 2
		if positive != (m.DetUtility(s) > 0) {
			t.Errorf("set %v det utility %v: positivity should be %v", s, m.DetUtility(s), positive)
		}
	}
}

func TestRealParamsIsNotSupermodular(t *testing.T) {
	// Documented fidelity point: the published Table 5 rows cannot form a
	// supermodular valuation (decreasing game marginals at {ps,c}).
	if IsSupermodular(RealParams().Val) {
		t.Error("RealParams unexpectedly supermodular; Table 5 data is not")
	}
	if !IsMonotone(RealParams().Val) {
		t.Error("RealParams must still be monotone")
	}
}

func TestRealParamsSmoothedProperties(t *testing.T) {
	m := RealParamsSmoothed()
	if !IsSupermodular(m.Val) {
		t.Error("smoothed real params must be supermodular")
	}
	if !IsMonotone(m.Val) {
		t.Error("smoothed real params must be monotone")
	}
	// same qualitative utility shape as the real table
	for s := itemset.Set(1); s < 1<<5; s++ {
		positive := s.Has(0) && s.Has(1) && s.Intersect(itemset.New(2, 3, 4)).Size() >= 2
		if positive != (m.DetUtility(s) > 0) {
			t.Errorf("set %v: positivity %v does not match real shape", s, m.DetUtility(s))
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	val, _ := NewTableValuation(2, []float64{0, 1, 1, 3})
	if _, err := NewModel(val, []float64{1}, []stats.Dist{stats.Noise(1), stats.Noise(1)}); err == nil {
		t.Error("price length mismatch accepted")
	}
	if _, err := NewModel(val, []float64{1, 1}, []stats.Dist{stats.Noise(1)}); err == nil {
		t.Error("noise length mismatch accepted")
	}
	if _, err := NewModel(val, []float64{0, 1}, []stats.Dist{stats.Noise(1), stats.Noise(1)}); err == nil {
		t.Error("zero price accepted (paper requires P(i) > 0)")
	}
	if _, err := NewModel(val, []float64{1, 1}, []stats.Dist{stats.Gaussian{Mu: 1, Sigma: 1}, stats.Noise(1)}); err == nil {
		t.Error("biased noise accepted")
	}
	if _, err := NewModel(val, []float64{1, 1}, []stats.Dist{nil, stats.Noise(1)}); err == nil {
		t.Error("nil noise accepted")
	}
}

func TestModelPriceAdditivity(t *testing.T) {
	m := Config1()
	if m.Price(itemset.New(0, 1)) != 7 {
		t.Errorf("P({i1,i2}) = %v, want 7", m.Price(itemset.New(0, 1)))
	}
	if m.Price(itemset.Empty) != 0 {
		t.Errorf("P(∅) != 0")
	}
}

func TestUtilityTableMatchesPointEvaluation(t *testing.T) {
	m := RealParams()
	rng := stats.NewRNG(2)
	var table []float64
	for trial := 0; trial < 20; trial++ {
		noise := m.SampleNoise(rng)
		table = m.UtilityTable(noise, table)
		for s := itemset.Set(0); s < 1<<5; s++ {
			want := m.UtilityIn(noise, s)
			if math.Abs(table[s]-want) > 1e-9 {
				t.Fatalf("trial %d set %v: table %v vs direct %v", trial, s, table[s], want)
			}
		}
	}
}

func TestUtilityTableZeroNoiseEqualsDet(t *testing.T) {
	m := Config1()
	table := m.UtilityTable([]float64{0, 0}, nil)
	for s := itemset.Set(0); s < 4; s++ {
		if table[s] != m.DetUtility(s) {
			t.Errorf("zero-noise utility %v != det %v", table[s], m.DetUtility(s))
		}
	}
}

func TestSampleNoiseZeroMean(t *testing.T) {
	m := Config1()
	rng := stats.NewRNG(3)
	var s0, s1 stats.Summary
	for i := 0; i < 100000; i++ {
		w := m.SampleNoise(rng)
		s0.Add(w[0])
		s1.Add(w[1])
	}
	if math.Abs(s0.Mean()) > 0.02 || math.Abs(s1.Mean()) > 0.02 {
		t.Errorf("noise means %v %v", s0.Mean(), s1.Mean())
	}
}

func TestAdoptEmptyDesire(t *testing.T) {
	m := Config1()
	util := m.UtilityTable([]float64{0, 0}, nil)
	if got := Adopt(util, itemset.Empty, itemset.Empty); got != itemset.Empty {
		t.Errorf("Adopt on empty desire = %v", got)
	}
}

func TestAdoptPositiveSingleton(t *testing.T) {
	// config1 zero noise: U(i1) = 0, adopting or not tie at 0 -> larger set
	m := Config1()
	util := m.UtilityTable([]float64{0, 0}, nil)
	if got := Adopt(util, itemset.New(0), itemset.Empty); got != itemset.New(0) {
		t.Errorf("tie at zero should prefer larger set, got %v", got)
	}
}

func TestAdoptRejectsNegative(t *testing.T) {
	m := Config3()
	util := m.UtilityTable([]float64{0, 0}, nil)
	// i2 alone has U = -1: a node desiring only i2 adopts nothing
	if got := Adopt(util, itemset.New(1), itemset.Empty); got != itemset.Empty {
		t.Errorf("negative-utility item adopted: %v", got)
	}
}

func TestAdoptBundleRescue(t *testing.T) {
	// config3: desiring both items, the bundle (U=1) beats i1 alone (U=0)
	m := Config3()
	util := m.UtilityTable([]float64{0, 0}, nil)
	if got := Adopt(util, itemset.New(0, 1), itemset.Empty); got != itemset.New(0, 1) {
		t.Errorf("bundle not adopted: %v", got)
	}
}

func TestAdoptRespectsCurrentConstraint(t *testing.T) {
	// even if dropping the current adoption would give higher utility, the
	// progressive model forbids it
	util := []float64{0, 5, -2, 1} // items {0}, {1}, {0,1}
	got := Adopt(util, itemset.New(0, 1), itemset.New(1))
	if !itemset.New(1).SubsetOf(got) {
		t.Errorf("adoption dropped current set: %v", got)
	}
	// among supersets of {1}: U({1}) = -2, U({0,1}) = 1 -> {0,1}
	if got != itemset.New(0, 1) {
		t.Errorf("got %v, want {0,1}", got)
	}
}

func TestAdoptUtilityNeverDecreasesFromCurrent(t *testing.T) {
	rng := stats.NewRNG(4)
	m := Config8(5, rng)
	var util []float64
	for trial := 0; trial < 200; trial++ {
		noise := m.SampleNoise(rng)
		util = m.UtilityTable(noise, util)
		desire := itemset.Set(rng.Intn(32))
		// current: random local-max-ish start from a sub-desire adoption
		current := Adopt(util, itemset.Set(rng.Intn(32)).Intersect(desire), itemset.Empty)
		got := Adopt(util, desire, current)
		if !current.SubsetOf(got) {
			t.Fatalf("constraint violated: %v not superset of %v", got, current)
		}
		if util[got] < util[current] {
			t.Fatalf("utility decreased: %v -> %v", util[current], util[got])
		}
	}
}

func TestLemma1UnionOfLocalMaxima(t *testing.T) {
	// Lemma 1: under supermodular utility, the union of two local maxima
	// is a local maximum.
	rng := stats.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		m := Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		// collect all local maxima
		var maxima []itemset.Set
		for s := itemset.Set(0); s < 1<<5; s++ {
			if IsLocalMaximum(util, s) {
				maxima = append(maxima, s)
			}
		}
		for _, a := range maxima {
			for _, b := range maxima {
				u := a.Union(b)
				if !IsLocalMaximum(util, u) {
					t.Fatalf("trial %d: union %v of local maxima %v, %v is not a local maximum",
						trial, u, a, b)
				}
			}
		}
	}
}

func TestLemma2AdoptedSetsAreLocalMaxima(t *testing.T) {
	rng := stats.NewRNG(6)
	for trial := 0; trial < 100; trial++ {
		m := Config8(4, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		desire := itemset.Set(rng.Intn(16))
		a1 := Adopt(util, desire, itemset.Empty)
		if !IsLocalMaximum(util, a1) {
			t.Fatalf("adopted set %v is not a local maximum", a1)
		}
		// grow desire and re-adopt: still a local maximum
		desire2 := desire.Union(itemset.Set(rng.Intn(16)))
		a2 := Adopt(util, desire2, a1)
		if !IsLocalMaximum(util, a2) {
			t.Fatalf("second-round adopted set %v is not a local maximum", a2)
		}
	}
}

func TestBestSetMarginalsNegativeOutside(t *testing.T) {
	// after fixing W^N, items outside I* can never be adopted: the
	// marginal utility of any subset of I \ I* given any subset of I* is
	// negative (§4.2.2 argument).
	rng := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		m := Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		best := BestSet(util)
		outside := itemset.All(5).Minus(best)
		outside.Subsets(func(d itemset.Set) bool {
			if d.IsEmpty() {
				return true
			}
			best.Subsets(func(b itemset.Set) bool {
				if util[b.Union(d)]-util[b] >= 0 {
					t.Fatalf("marginal of %v given %v is non-negative (I*=%v)", d, b, best)
				}
				return true
			})
			return true
		})
	}
}

func TestBestSetTieBreaksLarger(t *testing.T) {
	util := []float64{0, 1, 1, 1} // {0}, {1}, {0,1} all tie at 1
	if got := BestSet(util); got != itemset.New(0, 1) {
		t.Errorf("BestSet = %v, want the largest tied set", got)
	}
}

func TestIsLocalMaximum(t *testing.T) {
	util := []float64{0, 2, -1, 3}
	if !IsLocalMaximum(util, itemset.New(0)) {
		t.Error("{0} is a local max")
	}
	if IsLocalMaximum(util, itemset.New(1)) {
		t.Error("{1} has U=-1 < U(∅)")
	}
	if !IsLocalMaximum(util, itemset.New(0, 1)) {
		t.Error("{0,1} with U=3 dominates all subsets")
	}
}

func TestBestDetSet(t *testing.T) {
	m := Config3()
	if got := m.BestDetSet(); got != itemset.New(0, 1) {
		t.Errorf("best det set %v, want bundle", got)
	}
}

func TestExpectedUtilityEqualsDet(t *testing.T) {
	m := Config1()
	for s := itemset.Set(0); s < 4; s++ {
		if m.ExpectedUtility(s) != m.DetUtility(s) {
			t.Error("expected utility must equal deterministic utility (zero-mean noise)")
		}
	}
}
