// Package telemetry is welmaxd's observability substrate: request
// traces with per-stage span timing, and lock-free log-bucketed latency
// histograms exported in Prometheus text format. It sits below every
// other tier (no repo-internal imports), so the sketch builders
// (rrset, imm, prima), the service, the batch scheduler, and the
// cluster router can all record into one shared vocabulary:
//
//   - a Trace is minted per request (or adopted from the TraceHeader),
//     travels in the context, and records real spans — start timestamp,
//     duration, parent span id, per-span resource deltas — capped per
//     trace with counted drops, alongside the bounded per-stage
//     aggregate totals that job records keep;
//   - StartSpan(ctx, stage) times one stage occurrence and is a no-op
//     without a trace in ctx (library callers pay nothing); WithSpan
//     additionally threads the new span through the context so nested
//     spans parent under it, and SpanHeader carries the parent id
//     across the router→shard hop so both processes' spans assemble
//     into one tree;
//   - Metrics is a registry of labeled histograms whose bucket
//     increments are plain atomics, exportable as Prometheus text or as
//     a JSON Export the cluster router merges across shards.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace id. The
// cluster router mints one when the client did not send one, backends
// adopt an inbound id or mint their own, and every response echoes the
// id back so a client can correlate its request with job records, SSE
// events, and slow-request logs.
const TraceHeader = "X-Welmax-Trace-Id"

// SpanHeader is the HTTP header carrying the caller's current span id
// alongside TraceHeader. The cluster router sets it on the backend hop
// so the backend's spans parent under the router's proxy span and the
// two processes' fragments assemble into one tree.
const SpanHeader = "X-Welmax-Span-Id"

// MaxSpans bounds the span records retained per trace. A sketch build
// can legitimately record many spans; past the cap the aggregate
// per-stage totals keep accumulating and the trace counts the dropped
// span records instead of growing without bound.
const MaxSpans = 512

// maxTraceIDLen bounds adopted trace ids: the id is echoed into logs,
// job records, and SSE frames, so an unbounded client-chosen value
// would let one request bloat all three.
const maxTraceIDLen = 64

// NewTraceID mints a random 16-hex-digit trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant id only degrades correlation, so don't.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeID normalizes an externally supplied trace id: control
// characters (which would corrupt log lines and SSE frames) are
// stripped, overlong ids are truncated, and an empty result mints a
// fresh id.
func SanitizeID(id string) string {
	clean := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(clean) < maxTraceIDLen; i++ {
		if c := id[i]; c > 0x20 && c < 0x7f {
			clean = append(clean, c)
		}
	}
	if len(clean) == 0 {
		return NewTraceID()
	}
	return string(clean)
}

// spanPrefix is this process's span-id prefix: 4 random bytes minted
// at init. Span ids are prefix + a process-local counter, so minting
// one is an atomic add (cheap enough for the build hot path) while ids
// stay unique across the router and backend halves of one trace.
var spanPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "spanrand"
	}
	return hex.EncodeToString(b[:])
}()

var spanCounter atomic.Uint64

// newSpanID mints a process-unique span id in one allocation.
func newSpanID() string {
	buf := make([]byte, 0, len(spanPrefix)+14)
	buf = append(buf, spanPrefix...)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, spanCounter.Add(1), 36)
	return string(buf)
}

// Span is one recorded stage occurrence within a trace: when it
// started (wall clock; durations are measured on the monotonic clock),
// how long it ran, which span it ran under, and the resource deltas
// attributed to it while it was open. Parent is empty for spans rooted
// at the trace itself (or at the inbound SpanHeader parent on a
// backend).
type Span struct {
	ID          string           `json:"id"`
	Parent      string           `json:"parent,omitempty"`
	Stage       string           `json:"stage"`
	StartUnixNS int64            `json:"start_unix_ns"`
	DurationMS  float64          `json:"duration_ms"`
	Resources   map[string]int64 `json:"resources,omitempty"`
}

// StageStats is the accumulated timing of one named stage within a
// trace: how many spans ran and their total duration. It is the wire
// form stored on job records (JobView.Stages → history.jsonl).
type StageStats struct {
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Total returns the accumulated duration.
func (s StageStats) Total() time.Duration {
	return time.Duration(s.TotalMS * float64(time.Millisecond))
}

// Resource kinds accumulated per trace by the serving tiers. Like
// stage names they are an open vocabulary — these constants just keep
// the recorders and the readers (JobView.Resources, the slow-request
// log, welmax_resource_total) spelling them identically.
const (
	ResRRSetsGrown      = "rr_sets_grown"
	ResSketchBytesBuilt = "sketch_bytes_built"
	ResCacheHits        = "cache_hits"
	ResCacheMisses      = "cache_misses"
	ResQueueWaitMS      = "queue_wait_ms"
	ResBytesShipped     = "bytes_shipped"
)

// resourceTotals aggregates every AddResource across all traces in the
// process — the backing store of the welmax_resource_total{kind}
// counters. Bounded by the resource-kind vocabulary, not by traffic.
var (
	resTotalsMu sync.Mutex
	resTotals   = map[string]int64{}
)

// ResourceTotals snapshots the process-wide per-kind resource counters.
func ResourceTotals() map[string]int64 {
	resTotalsMu.Lock()
	defer resTotalsMu.Unlock()
	out := make(map[string]int64, len(resTotals))
	for k, v := range resTotals {
		out[k] = v
	}
	return out
}

// Trace accumulates the spans of one request. Two representations are
// kept: bounded per-stage aggregate totals (the wire form job records
// store, however many spans a build records) and the individual span
// records themselves — start timestamp, duration, parent id, per-span
// resource deltas — capped at MaxSpans with counted drops. A nil
// *Trace is valid everywhere and records nothing; a disabled trace
// keeps its id (cheap correlation stays on) but drops span timings.
type Trace struct {
	id      string
	enabled bool
	start   time.Time

	mu        sync.Mutex
	family    string
	parent    string // inbound SpanHeader parent; roots top-level spans
	stages    map[string]StageStats
	resources map[string]int64
	spans     []Span
	openRes   map[string]map[string]int64 // resource deltas of still-open spans
	dropped   int64                       // span records lost to the MaxSpans cap
}

// NewTrace returns a trace with the given id. enabled=false keeps the
// id for correlation but makes every span a no-op (-telemetry=off).
func NewTrace(id string, enabled bool) *Trace {
	return &Trace{id: id, enabled: enabled, start: time.Now()}
}

// Start returns the trace's creation time (zero on a nil trace).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetParent records the inbound parent span id (the caller's current
// span, from SpanHeader): top-level spans of this trace parent under
// it, which is what stitches a backend's spans under the router's.
func (t *Trace) SetParent(spanID string) {
	if t == nil || spanID == "" {
		return
	}
	t.mu.Lock()
	t.parent = spanID
	t.mu.Unlock()
}

// Parent returns the inbound parent span id ("" when none).
func (t *Trace) Parent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parent
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Enabled reports whether spans are recorded.
func (t *Trace) Enabled() bool { return t != nil && t.enabled }

// SetFamily labels the trace with the planner's sketch family
// ("prima", "imm"); the stage-duration histograms carry it.
func (t *Trace) SetFamily(family string) {
	if t == nil || family == "" {
		return
	}
	t.mu.Lock()
	t.family = family
	t.mu.Unlock()
}

// Family returns the sketch-family label ("" when unset or nil).
func (t *Trace) Family() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.family
}

// Record adds one completed span of the named stage.
func (t *Trace) Record(stage string, d time.Duration) {
	if !t.Enabled() {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	if t.stages == nil {
		t.stages = map[string]StageStats{}
	}
	st := t.stages[stage]
	st.Count++
	st.TotalMS += float64(d) / float64(time.Millisecond)
	t.stages[stage] = st
	t.mu.Unlock()
}

// StartSpan starts timing one occurrence of stage and returns the
// function ending it. The end function is idempotent and safe to call
// from a different goroutine than the starter — hot paths that may end
// a span early (e.g. a cache-lookup span ended when the build callback
// starts, or a batch-gather span ended from the scheduler's timer
// goroutine) can also defer it safely. On a nil or disabled trace both
// directions are no-ops. The span parents under the trace's inbound
// parent; use WithSpan (or startSpan) to nest under another span.
func (t *Trace) StartSpan(stage string) func() {
	_, end := t.startSpan(stage, t.Parent())
	return end
}

// startSpan starts one span under the given parent id, returning the
// new span's id and the idempotent end function. On a nil or disabled
// trace the id is "" and the end function a no-op.
func (t *Trace) startSpan(stage, parent string) (string, func()) {
	if !t.Enabled() {
		return "", func() {}
	}
	id := newSpanID()
	start := time.Now()
	var ended atomic.Bool
	return id, func() {
		if ended.Swap(true) {
			return
		}
		t.finishSpan(Span{ID: id, Parent: parent, Stage: stage, StartUnixNS: start.UnixNano()}, time.Since(start))
	}
}

// finishSpan records one completed span: the stage aggregate always
// accumulates; the span record itself is retained up to MaxSpans (past
// it only the drop counter advances) and picks up whatever resource
// deltas were attributed to the span while it was open.
func (t *Trace) finishSpan(sp Span, d time.Duration) {
	if d < 0 {
		d = 0
	}
	sp.DurationMS = float64(d) / float64(time.Millisecond)
	t.mu.Lock()
	if t.stages == nil {
		t.stages = map[string]StageStats{}
	}
	st := t.stages[sp.Stage]
	st.Count++
	st.TotalMS += sp.DurationMS
	t.stages[sp.Stage] = st
	if res := t.openRes[sp.ID]; res != nil {
		sp.Resources = res
		delete(t.openRes, sp.ID)
	}
	switch {
	case t.spans == nil:
		// Pre-size for a typical request (a handful of stages) so the
		// hot path never regrows the slice span by span.
		t.spans = make([]Span, 0, 8)
		t.spans = append(t.spans, sp)
	case len(t.spans) < MaxSpans:
		t.spans = append(t.spans, sp)
	default:
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans snapshots the retained span records (nil when none).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// DroppedSpans returns how many span records the MaxSpans cap dropped.
func (t *Trace) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// AddResource accumulates n units of a resource kind against the
// trace (rr_sets_grown, cache_hits, bytes_shipped, ...) and against
// the process-wide totals. Like span timings it is gated on Enabled,
// so -telemetry=off requests pay nothing.
func (t *Trace) AddResource(kind string, n int64) {
	t.addResource("", kind, n)
}

// addResource is AddResource with optional attribution to a still-open
// span: when spanID is non-empty the delta also lands on that span's
// record when it finishes (deltas for spans the cap later drops are
// discarded with the record).
func (t *Trace) addResource(spanID, kind string, n int64) {
	if !t.Enabled() || n == 0 {
		return
	}
	t.mu.Lock()
	if t.resources == nil {
		t.resources = map[string]int64{}
	}
	t.resources[kind] += n
	if spanID != "" {
		if t.openRes == nil {
			t.openRes = map[string]map[string]int64{}
		}
		res := t.openRes[spanID]
		if res == nil {
			res = map[string]int64{}
			t.openRes[spanID] = res
		}
		res[kind] += n
	}
	t.mu.Unlock()
	resTotalsMu.Lock()
	resTotals[kind] += n
	resTotalsMu.Unlock()
}

// Resources snapshots the trace's accumulated resource counters (nil
// when nothing was recorded) — the block that lands on JobView and the
// slow-request log.
func (t *Trace) Resources() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.resources) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.resources))
	for k, v := range t.resources {
		out[k] = v
	}
	return out
}

// Stages snapshots the accumulated per-stage timings.
func (t *Trace) Stages() map[string]StageStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stages) == 0 {
		return nil
	}
	out := make(map[string]StageStats, len(t.stages))
	for k, v := range t.stages {
		out[k] = v
	}
	return out
}

// ctxKey keys the span context in a context.
type ctxKey struct{}

// spanCtx is what actually travels in the context: the trace plus the
// id of the span currently open at this point of the call tree, so
// nested StartSpan calls parent correctly.
type spanCtx struct {
	t    *Trace
	span string // "" = parent is the trace's inbound parent
}

// NewContext returns ctx carrying t (with no current span — top-level
// spans parent under the trace's inbound parent). Attaching a nil
// trace returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, spanCtx{t: t})
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	return sc.t
}

// SpanIDFromContext returns the id of the span currently open in ctx,
// falling back to the trace's inbound parent and then to "". The
// router uses it to stamp SpanHeader on the backend hop.
func SpanIDFromContext(ctx context.Context) string {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if sc.span != "" {
		return sc.span
	}
	return sc.t.Parent()
}

// StartSpan times one occurrence of stage against the trace in ctx,
// parenting it under the span currently open in ctx; a context without
// a trace gets a no-op end function. This is the hook the library
// tiers (rrset, imm, prima, batch) call — they stay ignorant of
// whether anyone is tracing.
func StartSpan(ctx context.Context, stage string) func() {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	parent := sc.span
	if parent == "" {
		parent = sc.t.Parent()
	}
	_, end := sc.t.startSpan(stage, parent)
	return end
}

// WithSpan is StartSpan, but additionally returns a context carrying
// the new span as current, so spans started under the returned context
// nest beneath it. Without a trace (or disabled) it returns ctx
// unchanged and a no-op end.
func WithSpan(ctx context.Context, stage string) (context.Context, func()) {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if !sc.t.Enabled() {
		return ctx, func() {}
	}
	parent := sc.span
	if parent == "" {
		parent = sc.t.Parent()
	}
	id, end := sc.t.startSpan(stage, parent)
	return context.WithValue(ctx, ctxKey{}, spanCtx{t: sc.t, span: id}), end
}

// AddResource accumulates a resource count against the trace in ctx —
// and against the span currently open in ctx, so span records carry
// the resource deltas of the work done under them. A context without a
// trace records nothing. Same contract as StartSpan: the library tiers
// call it without knowing whether anyone is tracing.
func AddResource(ctx context.Context, kind string, n int64) {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if sc.t == nil {
		return
	}
	sc.t.addResource(sc.span, kind, n)
}
