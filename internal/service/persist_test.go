package service_test

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uicwelfare/internal/service"
)

// triangleEdges is a tiny deterministic graph for persistence tests.
const triangleEdges = "0 1 0.5\n1 2 0.5\n2 0 0.5\n0 2 0.5\n"

func registerInline(t *testing.T, e *env) service.GraphInfo {
	t.Helper()
	var info service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{
		Name: "tri", Edges: triangleEdges, KeepProbs: true,
	}, &info, http.StatusCreated)
	return info
}

func TestContentAddressedDedupe(t *testing.T) {
	e := newEnv(t, service.Options{})
	info := registerInline(t, e)
	if !strings.HasPrefix(info.ID, "g") || len(info.ID) != 17 {
		t.Fatalf("id %q is not a content address", info.ID)
	}

	// The same content again: 200 with the resident entry, no new graph.
	var dup service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{
		Name: "other-name", Edges: triangleEdges, KeepProbs: true,
	}, &dup, http.StatusOK)
	if dup.ID != info.ID || dup.Name != "tri" {
		t.Errorf("dedupe returned %+v, want the original entry", dup)
	}
	var list struct {
		Graphs []service.GraphInfo `json:"graphs"`
	}
	e.doJSON("GET", "/v1/graphs", nil, &list, http.StatusOK)
	if len(list.Graphs) != 1 {
		t.Errorf("registry holds %d graphs after dedupe, want 1", len(list.Graphs))
	}

	// Dedupe also wins over a full registry: re-registering resident
	// content never needs a free slot.
	full := newEnv(t, service.Options{MaxGraphs: 1})
	registerInline(t, full)
	var again service.GraphInfo
	full.doJSON("POST", "/v1/graphs", service.GraphRequest{
		Edges: triangleEdges, KeepProbs: true,
	}, &again, http.StatusOK)

	// Different probabilities are a different diffusion instance: the
	// weighted-cascade variant of the same topology gets its own id.
	var wc service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Edges: triangleEdges}, &wc, http.StatusCreated)
	if wc.ID == info.ID {
		t.Error("weighted-cascade variant collided with kept-probs graph")
	}
}

func TestRestartKeepsGraphsAndServesSketchesFromDisk(t *testing.T) {
	dir := t.TempDir()
	req := func(id string) service.AllocateRequest {
		return service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}, Seed: 3}
	}

	// First daemon lifetime: register, allocate cold.
	e1 := newEnv(t, service.Options{DataDir: dir})
	info := registerInline(t, e1)
	var job allocJobView
	e1.waitJob(t, e1.submit(t, "/v1/allocate", req(info.ID)), &job)
	if job.State != service.JobDone {
		t.Fatalf("first allocate failed: %s", job.Error)
	}
	if job.Result.SketchCached {
		t.Error("cold allocate claims a cache hit")
	}
	var st service.StatsResponse
	e1.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.DiskTier == nil || st.DiskTier.Spills != 1 {
		t.Fatalf("disk tier after build = %+v, want 1 spill", st.DiskTier)
	}
	e1.srv.Close()
	e1.svc.Close()

	// Second lifetime over the same data dir: the graph is back under
	// the same id, and the repeated allocate is served from the disk
	// tier — no rebuild.
	e2 := newEnv(t, service.Options{DataDir: dir})
	var got service.GraphInfo
	e2.doJSON("GET", "/v1/graphs/"+info.ID, nil, &got, http.StatusOK)
	if got.Nodes != info.Nodes || got.Edges != info.Edges || got.Name != "tri" {
		t.Fatalf("restored graph = %+v, want %+v", got, info)
	}

	var job2 allocJobView
	e2.waitJob(t, e2.submit(t, "/v1/allocate", req(info.ID)), &job2)
	if job2.State != service.JobDone {
		t.Fatalf("post-restart allocate failed: %s", job2.Error)
	}
	if !job2.Result.SketchCached {
		t.Error("post-restart allocate did not report a cache hit")
	}
	e2.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.DiskTier == nil || st.DiskTier.Hits != 1 {
		t.Errorf("disk tier after restart = %+v, want 1 hit", st.DiskTier)
	}
	// The allocation itself must match the pre-restart one: the restored
	// sketch is the same collection, and selection is deterministic.
	if gotAlloc, want := job2.Result.Allocation, job.Result.Allocation; len(gotAlloc.Seeds) != len(want.Seeds) {
		t.Errorf("allocation shape changed across restart: %+v vs %+v", gotAlloc, want)
	} else {
		for i := range want.Seeds {
			for j := range want.Seeds[i] {
				if gotAlloc.Seeds[i][j] != want.Seeds[i][j] {
					t.Fatalf("allocation changed across restart: %+v vs %+v", gotAlloc, want)
				}
			}
		}
	}

	// DELETE removes the persisted artifacts too: a third lifetime
	// starts empty.
	e2.doJSON("DELETE", "/v1/graphs/"+info.ID, nil, nil, http.StatusOK)
	e2.srv.Close()
	e2.svc.Close()
	e3 := newEnv(t, service.Options{DataDir: dir})
	var list struct {
		Graphs []service.GraphInfo `json:"graphs"`
	}
	e3.doJSON("GET", "/v1/graphs", nil, &list, http.StatusOK)
	if len(list.Graphs) != 0 {
		t.Errorf("deleted graph resurrected: %+v", list.Graphs)
	}
}

func TestCorruptSpillFallsBackToRebuild(t *testing.T) {
	dir := t.TempDir()
	e1 := newEnv(t, service.Options{DataDir: dir})
	info := registerInline(t, e1)
	req := service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}}
	var job allocJobView
	e1.waitJob(t, e1.submit(t, "/v1/allocate", req), &job)
	if job.State != service.JobDone {
		t.Fatalf("allocate failed: %s", job.Error)
	}
	e1.srv.Close()
	e1.svc.Close()

	// Flip a payload byte in every spilled sketch.
	matches, err := filepath.Glob(filepath.Join(dir, "sketches", "*.wms"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no spills found: %v", err)
	}
	for _, path := range matches {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-6] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The restarted daemon must rebuild cleanly: the corrupt file reads
	// as a miss (counted), the job still succeeds, and the rebuild's
	// spill replaces the bad artifact.
	e2 := newEnv(t, service.Options{DataDir: dir})
	var job2 allocJobView
	e2.waitJob(t, e2.submit(t, "/v1/allocate", req), &job2)
	if job2.State != service.JobDone {
		t.Fatalf("allocate after corruption failed: %s", job2.Error)
	}
	if job2.Result.SketchCached {
		t.Error("corrupt spill still counted as a cache hit")
	}
	var st service.StatsResponse
	e2.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.DiskTier == nil || st.DiskTier.LoadErrors != 1 || st.DiskTier.Spills != 1 {
		t.Errorf("disk tier = %+v, want 1 load error and 1 fresh spill", st.DiskTier)
	}
}

// warmJobView mirrors JobView with a typed warm result.
type warmJobView struct {
	State  service.JobState    `json:"state"`
	Error  string              `json:"error"`
	Result *service.WarmResult `json:"result"`
}

func TestWarmEndpoint(t *testing.T) {
	e := newEnv(t, service.Options{})
	id := e.registerGraph(t)

	// Warm, then allocate with the matching tuple: the allocation must
	// start from the prebuilt sketch.
	var warm warmJobView
	e.waitJob(t, e.submit(t, "/v1/graphs/"+id+"/warm", service.WarmRequest{Budgets: []int{5, 5}}), &warm)
	if warm.State != service.JobDone {
		t.Fatalf("warm failed: %s", warm.Error)
	}
	if warm.Result.AlreadyWarm || warm.Result.Algorithm != "bundleGRD" || warm.Result.NumRRSets <= 0 {
		t.Errorf("warm result = %+v", warm.Result)
	}
	var job allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{5, 5}}), &job)
	if !job.Result.SketchCached {
		t.Error("allocate after warm missed the cache")
	}

	// Warming again is a cheap no-op.
	var warm2 warmJobView
	e.waitJob(t, e.submit(t, "/v1/graphs/"+id+"/warm", service.WarmRequest{Budgets: []int{5, 5}}), &warm2)
	if warm2.State != service.JobDone || !warm2.Result.AlreadyWarm {
		t.Errorf("second warm = %+v (%s)", warm2.Result, warm2.Error)
	}

	// Validation: unknown graph 404s at the job layer? No — warm
	// validates synchronously like allocate: 400s.
	for path, body := range map[string]service.WarmRequest{
		"/v1/graphs/g999/warm":       {Budgets: []int{5, 5}}, // unknown graph
		"/v1/graphs/" + id + "/warm": {},                     // no budgets
		"/v1/graphs/" + id + "/wrm":  {Budgets: []int{5, 5}}, // bad route (404, checked below)
	} {
		status, _ := e.do("POST", path, body)
		want := http.StatusBadRequest
		if strings.HasSuffix(path, "/wrm") {
			want = http.StatusNotFound
		}
		if status != want {
			t.Errorf("POST %s: status %d, want %d", path, status, want)
		}
	}
	// A planner with no reusable sketch cannot be warmed.
	if status, raw := e.do("POST", "/v1/graphs/"+id+"/warm",
		service.WarmRequest{Budgets: []int{5, 5}, Algo: "bundle-disj"}); status != http.StatusBadRequest {
		t.Errorf("warm bundle-disj: status %d (%s), want 400", status, raw)
	}
}

func TestBinaryGraphPathLoading(t *testing.T) {
	// A .wmg written through the store loads over the path route and
	// keeps its probabilities (no weighted-cascade reset).
	e := newEnv(t, service.Options{AllowPathLoads: true})
	inline := registerInline(t, e)

	dir := t.TempDir()
	e2 := newEnv(t, service.Options{DataDir: dir, AllowPathLoads: true})
	registerInline(t, e2)
	matches, err := filepath.Glob(filepath.Join(dir, "graphs", "*.wmg"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("persisted graphs: %v %v", matches, err)
	}

	var fromFile service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Path: matches[0]}, &fromFile, http.StatusOK)
	if fromFile.ID != inline.ID {
		t.Errorf("binary path load produced id %q, inline produced %q — content address must match", fromFile.ID, inline.ID)
	}
}
