#!/usr/bin/env bash
# bench_snapshot.sh — one point on the perf trajectory.
#
# Runs the service-layer allocate benchmarks and writes BENCH_allocate.json
# with a stable schema (benchmark name -> ns/op and sketchbuilds/op, plus
# the commit and date), so successive CI runs are directly comparable.
# Also the telemetry overhead guard: the warm allocate path with tracing
# and histograms on must cost < 5% over the same path with -telemetry
# off. Each benchmark runs COUNT times and the minimum ns/op is compared
# — min-of-N is the standard way to strip scheduler noise from a
# threshold check.
#
# Env knobs: BENCH_TIME (default 50x), BENCH_COUNT (default 3),
# OUT (default BENCH_allocate.json).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-50x}"
BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="${OUT:-BENCH_allocate.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkServiceAllocate|BenchmarkBatchedAllocate' \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$raw"

commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Reduce the -count repetitions to min ns/op (and min sketchbuilds/op —
# it is deterministic per benchmark, so min == the value) per name, then
# emit the stable JSON shape.
awk -v commit="$commit" -v date="$date" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; builds = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "sketchbuilds/op") builds = $(i-1)
    }
    if (ns == "") next
    if (!(name in minNS) || ns + 0 < minNS[name] + 0) minNS[name] = ns
    if (builds != "" && (!(name in minB) || builds + 0 < minB[name] + 0)) minB[name] = builds
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"schema\": 1,\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", commit, date
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, minNS[name]
        if (name in minB) printf ", \"sketchbuilds_per_op\": %s", minB[name]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > "$OUT"
echo "wrote $OUT:"
cat "$OUT"

# --- telemetry overhead guard ------------------------------------------
on="$(awk -F'"' '/"name": "BenchmarkServiceAllocate\/warm"/ {print $0}' "$OUT" | grep -oE 'ns_per_op": [0-9.]+' | grep -oE '[0-9.]+')"
off="$(awk -F'"' '/"name": "BenchmarkServiceAllocate\/warm-notelemetry"/ {print $0}' "$OUT" | grep -oE 'ns_per_op": [0-9.]+' | grep -oE '[0-9.]+')"
if [ -z "$on" ] || [ -z "$off" ]; then
    echo "bench_snapshot: warm/warm-notelemetry results missing, cannot check overhead" >&2
    exit 1
fi
awk -v on="$on" -v off="$off" 'BEGIN {
    pct = (on - off) / off * 100
    printf "telemetry warm-path overhead: %.2f%% (on %.0f ns/op, off %.0f ns/op)\n", pct, on, off
    if (pct >= 5) {
        print "FAIL: telemetry overhead >= 5% on the warm allocate path" > "/dev/stderr"
        exit 1
    }
}'
