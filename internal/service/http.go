package service

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/store"
	"uicwelfare/internal/telemetry"
)

// Handler returns the daemon's HTTP API as an http.Handler. Every
// route is registered through timed, which closes over the literal
// pattern string — Go 1.22's mux offers no way to read the matched
// pattern back off the request, and the pattern is exactly the route
// label the latency histograms need.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.timed("POST /v1/graphs", s.handleCreateGraph))
	mux.HandleFunc("POST /v1/graphs/import", s.timed("POST /v1/graphs/import", s.handleImportGraph))
	mux.HandleFunc("GET /v1/graphs", s.timed("GET /v1/graphs", s.handleListGraphs))
	mux.HandleFunc("GET /v1/graphs/{id}", s.timed("GET /v1/graphs/{id}", s.handleGetGraph))
	mux.HandleFunc("DELETE /v1/graphs/{id}", s.timed("DELETE /v1/graphs/{id}", s.handleDeleteGraph))
	mux.HandleFunc("POST /v1/graphs/{id}/warm", s.timed("POST /v1/graphs/{id}/warm", s.handleWarmGraph))
	mux.HandleFunc("GET /v1/graphs/{id}/export", s.timed("GET /v1/graphs/{id}/export", s.handleExportGraph))
	mux.HandleFunc("GET /v1/graphs/{id}/sketches", s.timed("GET /v1/graphs/{id}/sketches", s.handleExportSketches))
	mux.HandleFunc("POST /v1/graphs/{id}/sketches", s.timed("POST /v1/graphs/{id}/sketches", s.handleImportSketches))
	mux.HandleFunc("GET /v1/algorithms", s.timed("GET /v1/algorithms", s.handleListAlgorithms))
	mux.HandleFunc("POST /v1/allocate", s.timed("POST /v1/allocate", s.handleAllocate))
	mux.HandleFunc("POST /v1/estimate", s.timed("POST /v1/estimate", s.handleEstimate))
	mux.HandleFunc("GET /v1/jobs", s.timed("GET /v1/jobs", s.handleListJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed("GET /v1/jobs/{id}", s.handleGetJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.timed("GET /v1/jobs/{id}/events", s.handleJobEvents))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.timed("DELETE /v1/jobs/{id}", s.handleCancelJob))
	mux.HandleFunc("POST /v1/sweeps", s.timed("POST /v1/sweeps", s.handleCreateSweep))
	mux.HandleFunc("GET /v1/sweeps", s.timed("GET /v1/sweeps", s.handleListSweeps))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.timed("GET /v1/sweeps/{id}", s.handleGetSweep))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.timed("GET /v1/sweeps/{id}/events", s.handleSweepEvents))
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.timed("GET /v1/sweeps/{id}/results", s.handleSweepResults))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.timed("DELETE /v1/sweeps/{id}", s.handleCancelSweep))
	mux.HandleFunc("GET /v1/events", s.timed("GET /v1/events", s.handleEvents))
	mux.HandleFunc("GET /v1/traces", s.timed("GET /v1/traces", s.handleTraces))
	mux.HandleFunc("GET /v1/traces/{id}", s.timed("GET /v1/traces/{id}", s.handleTraceGet))
	mux.HandleFunc("GET /v1/stats", s.timed("GET /v1/stats", s.handleStats))
	mux.HandleFunc("GET /v1/metrics", s.timed("GET /v1/metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.timed("GET /healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/healthz", s.timed("GET /v1/healthz", s.handleHealthzV1))
	return mux
}

// timed wraps a handler with per-route latency observation. SSE
// streams are observed too — their "latency" is the stream lifetime,
// which is the honest figure for a streaming route. The observation
// carries the request's trace id (echoed on the response by newTrace)
// as the bucket's exemplar, so a slow route points at a slow trace.
func (s *Service) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.telemetryOn {
			h(w, r)
			return
		}
		start := time.Now()
		h(w, r)
		s.metrics.ObserveEx("welmax_http_request_duration_seconds",
			[]telemetry.Label{{Name: "route", Value: route}}, time.Since(start),
			w.Header().Get(telemetry.TraceHeader))
	}
}

// newTrace mints (or adopts, when the client sent a sanitizable
// X-Welmax-Trace-Id) the request's trace and echoes the id on the
// response, so the caller can correlate the job it is about to receive.
// A sanitizable X-Welmax-Span-Id becomes the trace's parent span: the
// router sends its proxy span's id here, so every span this process
// records nests under the router's waterfall.
func (s *Service) newTrace(w http.ResponseWriter, r *http.Request) *telemetry.Trace {
	tr := telemetry.NewTrace(telemetry.SanitizeID(r.Header.Get(telemetry.TraceHeader)), s.telemetryOn)
	if parent := r.Header.Get(telemetry.SpanHeader); parent != "" {
		tr.SetParent(telemetry.SanitizeID(parent))
	}
	w.Header().Set(telemetry.TraceHeader, tr.ID())
	return tr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxBodyBytes bounds request bodies (inline edge lists are the largest
// legitimate payload); anything bigger is rejected instead of buffered.
const maxBodyBytes = 64 << 20

// maxImportBytes bounds a sketch-stream import. Shipped warm sets are
// larger than any request body (they scale with the sender's cache
// budget, not with one payload) and the stream is consumed one
// checksummed entry at a time, so the higher cap does not translate
// into one giant buffer.
const maxImportBytes = 1 << 30

// ClusterTokenHeader carries the shared cluster secret (-cluster-token)
// on router-to-backend requests; backends started with the token require
// it on the cluster-internal endpoints.
const ClusterTokenHeader = "X-Cluster-Token"

// authorizeCluster gates a cluster-internal endpoint (raw graph import,
// sketch export/import) behind the shared cluster token when one is
// configured. Without a token the check passes — the deployment is then
// trusting its network boundary instead (see Options.ClusterToken).
func (s *Service) authorizeCluster(w http.ResponseWriter, r *http.Request) bool {
	if s.clusterToken == "" {
		return true
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get(ClusterTokenHeader)), []byte(s.clusterToken)) == 1 {
		return true
	}
	writeError(w, http.StatusForbidden,
		fmt.Errorf("missing or wrong %s (this backend requires the cluster token)", ClusterTokenHeader))
	return false
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Service) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	var req GraphRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path != "" && !s.allowPaths {
		writeError(w, http.StatusForbidden,
			fmt.Errorf("server-side path loading is disabled (start welmaxd with -allow-paths)"))
		return
	}
	name, g, err := LoadGraph(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entry, existed, err := s.RegisterGraph(name, g)
	if err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	// Content addressing dedupes re-registrations of the same graph to
	// the existing entry: 200 with the resident info, not a second copy.
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, entry.Info())
}

// handleImportGraph implements POST /v1/graphs/import: register a graph
// from raw .wmg bytes. This is the cluster shipping path — embedding the
// graph as base64 in a JSON GraphRequest would cap it at ~48MB of
// encoded graph under maxBodyBytes, and shipped graphs legitimately
// exceed that. The embedded name label is kept, the content id is
// recomputed on this side, and duplicates dedupe exactly like
// handleCreateGraph (201 new, 200 resident).
func (s *Service) handleImportGraph(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeCluster(w, r) {
		return
	}
	name, g, err := store.DecodeGraph(http.MaxBytesReader(w, r.Body, maxImportBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entry, existed, err := s.RegisterGraph(name, g)
	if err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, entry.Info())
}

func (s *Service) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.DeleteGraph(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleWarmGraph implements POST /v1/graphs/{id}/warm: prebuild a
// sketch through the tiered cache as an ordinary cancelable job, so
// operators can pay the dominant sketch cost ahead of user traffic (and,
// with a data dir, ahead of the next restart).
func (s *Service) handleWarmGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req WarmRequest
	if !decodeBody(w, r, &req) {
		return
	}
	tr := s.newTrace(w, r)
	plan, _, err := s.validateWarm(id, &req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Warming is exactly the sketch work admission exists to price;
	// apply the same gate as POST /v1/allocate. The trace rides the
	// admission context so queue waits and journal events carry its id.
	endAdmit := tr.StartSpan("admission_check")
	aerr := s.admitOrWait(telemetry.NewContext(r.Context(), tr), id, plan)
	endAdmit()
	if aerr != nil {
		writeAdmissionReject(w, aerr, tr.ID())
		return
	}
	s.enqueue(w, "warm", id, tr, &req, func(ctx context.Context, report progress.Func) (any, error) {
		return s.WarmCtx(ctx, id, &req, report)
	})
}

func (s *Service) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.registry.List()
	out := make([]GraphInfo, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

func (s *Service) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", r.PathValue("id")))
		return
	}
	info := entry.Info()
	info.ResidentSketches = s.cache.CountPrefix(entry.ID + "|")
	writeJSON(w, http.StatusOK, info)
}

// enqueue creates a job under the request's trace and submits run to
// the pool; run must return the job's result and honor its context
// (DELETE /v1/jobs/{id} cancels it) while reporting progress through
// report. The trace travels in the job context so span timings land on
// it, and finishJob attaches them to the job record when the run ends.
// It answers 202 with the job id, or 503 when the queue is full.
// graphID labels the trace-store record so /v1/traces can filter by
// graph; it is advisory only and may be empty.
func (s *Service) enqueue(w http.ResponseWriter, kind, graphID string, tr *telemetry.Trace, req any, run func(ctx context.Context, report progress.Func) (any, error)) {
	job := s.jobs.Create(kind, tr.ID(), req)
	ok := s.pool.Submit(func() {
		ctx, ok := s.jobs.Start(job.ID)
		if !ok {
			return // canceled while queued; Start finalized the job
		}
		started := time.Now()
		ctx = telemetry.NewContext(ctx, tr)
		result, err := run(ctx, func(ev progress.Event) {
			s.jobs.Publish(job.ID, JobEvent{
				Type:       EventProgress,
				Stage:      string(ev.Stage),
				Round:      ev.Round,
				Done:       ev.Done,
				Total:      ev.Total,
				SeedPrefix: ev.SeedPrefix,
			})
		})
		s.finishJob(job.ID, kind, graphID, tr, started, result, err)
	})
	if !ok {
		s.jobs.Remove(job.ID)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("job queue full"))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"job_id": job.ID, "state": string(JobQueued), "trace_id": tr.ID()})
}

// writeAdmissionReject answers 429 Too Many Requests for a request
// refused by cost-based admission control. The body mirrors the cluster
// tier's transient-failure contract ("retryable": true) and carries the
// calibrated cost estimate so clients can see how far over budget they
// are, plus the trace id so the reject can be matched against the
// flight recorder's admission_reject event; the router relays the
// status and body verbatim, so the contract is identical through a
// cluster proxy.
func writeAdmissionReject(w http.ResponseWriter, aerr *AdmissionError, traceID string) {
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":           aerr.Error(),
		"retryable":       true,
		"estimated_cost":  aerr.EstimatedBytes,
		"admission_limit": aerr.BudgetBytes,
		"trace_id":        traceID,
	})
}

func (s *Service) handleAllocate(w http.ResponseWriter, r *http.Request) {
	var req AllocateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	tr := s.newTrace(w, r)
	// Fail malformed requests synchronously with 400; the job itself
	// revalidates when it runs.
	plan, err := s.validateAllocate(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Cost-based admission: refuse (retryably) work whose predicted
	// sketch cost would blow the cache budget before it ties up a
	// worker — queueing briefly (admitOrWait) when the overshoot is
	// small enough that imminent cache/batch churn may admit it. The
	// trace rides the admission context so queue waits and journal
	// events carry its id.
	endAdmit := tr.StartSpan("admission_check")
	aerr := s.admitOrWait(telemetry.NewContext(r.Context(), tr), req.GraphID, plan)
	endAdmit()
	if aerr != nil {
		writeAdmissionReject(w, aerr, tr.ID())
		return
	}
	s.enqueue(w, "allocate", req.GraphID, tr, &req, func(ctx context.Context, report progress.Func) (any, error) {
		return s.AllocateCtx(ctx, &req, report)
	})
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	tr := s.newTrace(w, r)
	if _, _, _, err := s.validateEstimate(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.enqueue(w, "estimate", req.GraphID, tr, &req, func(ctx context.Context, report progress.Func) (any, error) {
		return s.EstimateCtx(ctx, &req, report)
	})
}

func (s *Service) handleListAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithms": Algorithms(),
		"default":    core.DefaultAlgorithm,
	})
}

// handleCancelJob implements DELETE /v1/jobs/{id}: an active
// (queued/running) job gets a cancellation request — the worker stops
// at its next cancellation check and the job lands in the "canceled"
// state, still queryable — while an already-terminal job is removed
// from the store.
func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, requested, ok := s.jobs.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if requested {
		writeJSON(w, http.StatusAccepted, view)
		return
	}
	s.jobs.Remove(id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleJobEvents implements GET /v1/jobs/{id}/events: a server-sent
// event stream of the job's progress ("progress" events carrying sketch
// and estimation counters) ending with a terminal event named after the
// final state ("done", "failed" or "canceled"). Replays the retained
// history first, so subscribing to a finished job yields its events and
// closes.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	StreamJobEvents(w, r, s.jobs, r.PathValue("id"))
}

// StreamJobEvents serves one job's event stream over SSE from any
// JobStore: replayed history, live events, terminal frame, and the
// snapshot resync for subscribers that lost the terminal event.
// Exported because the cluster router streams its own sweep jobs (it
// runs a JobStore of its own) through exactly this code path.
func StreamJobEvents(w http.ResponseWriter, r *http.Request, jobs *JobStore, id string) {
	past, ch, unsub, ok := jobs.Subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	defer unsub()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// write emits one SSE frame; it reports whether the stream continues.
	// lastSeq tracks the highest sequence written so a synthesized resync
	// event keeps the strictly-increasing seq contract.
	lastSeq := 0
	write := func(ev JobEvent) bool {
		if ev.Seq == 0 {
			ev.Seq = lastSeq + 1
		}
		lastSeq = ev.Seq
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return !ev.Terminal()
	}
	for _, ev := range past {
		if !write(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Closed without a terminal event reaching this
				// subscriber (slow consumer or job removal): resync from
				// the job snapshot so the client still sees the outcome.
				if view, ok := jobs.Snapshot(id); ok && view.State.Terminal() {
					write(JobEvent{Type: string(view.State), TraceID: view.TraceID, Error: view.Error})
				}
				return
			}
			if !write(ev) {
				return
			}
		}
	}
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	var state JobState
	if raw := r.URL.Query().Get("state"); raw != "" {
		switch st := JobState(raw); st {
		case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
			state = st
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown job state %q", raw))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List(state)})
}

// handleExportGraph implements GET /v1/graphs/{id}/export: the resident
// graph as .wmg bytes — what the cluster router fetches so it can
// re-register the graph on a different backend during rebalancing (and a
// convenient backup endpoint besides).
func (s *Service) handleExportGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry, ok := s.registry.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+store.GraphExt))
	_ = store.EncodeGraph(w, entry.Name, entry.Graph)
}

// handleExportSketches implements GET /v1/graphs/{id}/sketches: the
// graph's completed in-memory sketches as a sketch-stream container (see
// Service.ExportSketches). An empty cache yields an empty 200 body —
// shipping zero sketches is a valid rebalance.
func (s *Service) handleExportSketches(w http.ResponseWriter, r *http.Request) {
	if !s.authorizeCluster(w, r) {
		return
	}
	id := r.PathValue("id")
	if _, ok := s.registry.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := s.ExportSketches(id, w); err != nil {
		return // headers are gone; the truncated stream fails the reader's checksum
	}
}

// handleImportSketches implements POST /v1/graphs/{id}/sketches: install
// shipped sketches into this backend's cache so it starts warm for a
// graph it just received (see Service.ImportSketches). Only cluster
// members accept it: an imported sketch becomes authoritative for
// allocation results, so a daemon not running behind a router (-node
// unset) must not let arbitrary callers install sketch contents — and a
// cluster member with -cluster-token set additionally requires the
// shared secret, because -node alone is a deployment hint, not
// authentication.
func (s *Service) handleImportSketches(w http.ResponseWriter, r *http.Request) {
	if s.nodeID == "" {
		writeError(w, http.StatusForbidden,
			fmt.Errorf("sketch import is a cluster endpoint (start welmaxd with -node)"))
		return
	}
	if !s.authorizeCluster(w, r) {
		return
	}
	id := r.PathValue("id")
	if _, ok := s.registry.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", id))
		return
	}
	imported, skipped, err := s.ImportSketches(id, http.MaxBytesReader(w, r.Body, maxImportBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"imported": imported, "skipped": skipped})
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Snapshot(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleHealthzV1 implements GET /v1/healthz: the structured liveness
// probe the cluster router polls (node id, graph count, uptime) —
// cheaper than /v1/stats, which walks every job.
func (s *Service) handleHealthzV1(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Healthz())
}
