package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/telemetry"
)

// JobState is the lifecycle of an asynchronous job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// EventProgress is the JobEvent type of non-terminal progress reports;
// terminal events use the finished job's state ("done", "failed",
// "canceled") as their type.
const EventProgress = "progress"

// JobEvent is one entry of a job's event stream, served over SSE by
// GET /v1/jobs/{id}/events (the event's Type is the SSE event name).
type JobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	// TraceID correlates the event with the request's trace (the id of
	// the X-Welmax-Trace-Id header); publishLocked stamps it from the
	// job when the publisher left it empty.
	TraceID string `json:"trace_id,omitempty"`
	// Stage/Round/Done/Total mirror progress.Event for Type "progress".
	Stage string `json:"stage,omitempty"`
	Round int    `json:"round,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	// SeedPrefix, on "select"-stage progress events, is the ordered
	// seed prefix the greedy selection has committed to so far.
	SeedPrefix []int64 `json:"seed_prefix,omitempty"`
	// Cell/CellState/CellJob/Node appear on a sweep job's per-cell
	// progress events: which grid cell changed state ("running", "done",
	// "failed", "canceled"), the cell's own job id, and the node it ran
	// on (cluster sweeps).
	Cell      string `json:"cell,omitempty"`
	CellState string `json:"cell_state,omitempty"`
	CellJob   string `json:"cell_job,omitempty"`
	Node      string `json:"node,omitempty"`
	// Error carries the failure message on a "failed"/"canceled" event.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the event closes the stream.
func (e JobEvent) Terminal() bool { return e.Type != EventProgress }

const (
	// maxJobEvents bounds the per-job event history kept for late
	// subscribers; older progress events are dropped, the terminal event
	// is always the last one retained.
	maxJobEvents = 256
	// subscriberBuffer is each SSE subscriber's channel capacity. A
	// subscriber that falls this far behind loses progress events (the
	// handler resynchronizes from the job snapshot on close).
	subscriberBuffer = 64
)

// Job is one asynchronous unit of work. Fields are guarded by the
// store's mutex; handlers read them through Snapshot.
type Job struct {
	ID       string
	Kind     string // "allocate" | "estimate"
	State    JobState
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Request  any
	Result   any
	Err      string
	// TraceID is the request trace that enqueued the job; Stages holds
	// the trace's accumulated per-stage span timings and Resources its
	// accumulated resource counters, attached when the job finishes.
	TraceID   string
	Stages    map[string]telemetry.StageStats
	Resources map[string]int64

	// ctx is canceled by Cancel; the worker threads it through sketch
	// construction and estimation.
	ctx             context.Context
	cancel          context.CancelFunc
	cancelRequested bool

	events   []JobEvent
	eventSeq int
	subs     map[chan JobEvent]struct{}
}

// JobView is the wire form of a job returned by GET /v1/jobs/{id}, and
// the record shape of the on-disk audit trail (<data-dir>/jobs).
type JobView struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"`
	State   JobState `json:"state"`
	Created string   `json:"created"`
	// Finished is the terminal timestamp (audit trails need it even
	// though the live API could derive it).
	Finished string `json:"finished,omitempty"`
	// ElapsedMS is running time so far (running) or total (terminal).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// CancelRequested is set once DELETE /v1/jobs/{id} has asked a
	// queued/running job to stop; the state flips to "canceled" when the
	// worker observes the cancellation.
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Request         any    `json:"request,omitempty"`
	Result          any    `json:"result,omitempty"`
	Error           string `json:"error,omitempty"`
	// TraceID is the request trace that enqueued the job (the value of
	// the X-Welmax-Trace-Id request/response header).
	TraceID string `json:"trace_id,omitempty"`
	// Stages is the trace's per-stage span timing, attached when the
	// job reaches a terminal state (and spilled to history.jsonl with
	// the rest of the view).
	Stages map[string]telemetry.StageStats `json:"stages,omitempty"`
	// Resources is the trace's per-kind resource accounting
	// (rr_sets_grown, cache_hits, queue_wait_ms, ...), attached with
	// Stages — the per-request answer to "what did this job cost".
	Resources map[string]int64 `json:"resources,omitempty"`
}

func (j *Job) view() JobView {
	v := JobView{
		ID:              j.ID,
		Kind:            j.Kind,
		State:           j.State,
		Created:         j.Created.UTC().Format(time.RFC3339Nano),
		CancelRequested: j.cancelRequested && !j.State.Terminal(),
		Request:         j.Request,
		Result:          j.Result,
		Error:           j.Err,
		TraceID:         j.TraceID,
		Stages:          j.Stages,
		Resources:       j.Resources,
	}
	switch {
	case j.State == JobRunning:
		v.ElapsedMS = time.Since(j.Started).Milliseconds()
	case j.State.Terminal() && !j.Started.IsZero():
		v.ElapsedMS = j.Finished.Sub(j.Started).Milliseconds()
	}
	if j.State.Terminal() && !j.Finished.IsZero() {
		v.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// JobStore tracks jobs by id and counts them by state. Finished jobs
// are retained up to a bound; beyond it the oldest done/failed jobs are
// dropped so a long-running daemon's memory stays flat. Queued and
// running jobs are never dropped.
type JobStore struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	ids    []string // insertion order, for listing
	seq    int
	retain int
	prefix string // node prefix baked into every minted id
	// onFinal, when set, receives the wire view of every job reaching a
	// terminal state (the audit-trail spill). Called synchronously under
	// the store lock — the sink must be fast and must not call back.
	onFinal func(JobView)
}

// NewJobStore returns an empty store keeping at most retain finished
// jobs (default 1024 if retain <= 0).
func NewJobStore(retain int) *JobStore {
	if retain <= 0 {
		retain = 1024
	}
	return &JobStore{jobs: map[string]*Job{}, retain: retain}
}

// SetNodeID makes subsequently minted job ids carry a node prefix
// ("b1-j7" instead of "j7"): in a cluster, the id itself tells the
// router which backend owns the job, so job routes need no lookup
// table. Empty keeps the single-node "j7" form.
func (s *JobStore) SetNodeID(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node == "" {
		s.prefix = ""
		return
	}
	s.prefix = node + "-"
}

// SetFinalSink registers the terminal-job callback (see onFinal).
func (s *JobStore) SetFinalSink(fn func(JobView)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onFinal = fn
}

// Create registers a queued job under the request's trace id (empty is
// fine for untraced callers) and returns it.
func (s *JobStore) Create(kind, traceID string, req any) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:      fmt.Sprintf("%sj%d", s.prefix, s.seq),
		Kind:    kind,
		State:   JobQueued,
		Created: time.Now(),
		Request: req,
		TraceID: traceID,
		ctx:     ctx,
		cancel:  cancel,
		subs:    map[chan JobEvent]struct{}{},
	}
	s.jobs[j.ID] = j
	s.ids = append(s.ids, j.ID)
	return j
}

// Remove drops a job that never ran (e.g. the queue was full) or a
// finished one the client deleted.
func (s *JobStore) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.cancel()
	s.closeSubsLocked(j)
	delete(s.jobs, id)
	for i, x := range s.ids {
		if x == id {
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			break
		}
	}
}

// Start marks the job running and returns its cancellation context. A
// job canceled while still queued is finalized as canceled here and
// reports ok = false: the worker must skip it.
func (s *JobStore) Start(id string) (ctx context.Context, ok bool) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return nil, false
	}
	now := time.Now()
	if j.cancelRequested {
		j.Started, j.Finished = now, now
		sink, view := s.finalizeLocked(j, JobCanceled, "canceled before start")
		s.mu.Unlock()
		if sink != nil {
			sink(view)
		}
		return nil, false
	}
	j.State = JobRunning
	j.Started = now
	s.mu.Unlock()
	return j.ctx, true
}

// Finish marks the job done (err == nil), canceled (the job's context
// was canceled), or failed.
func (s *JobStore) Finish(id string, result any, err error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return
	}
	j.Finished = time.Now()
	var (
		sink func(JobView)
		view JobView
	)
	switch {
	case err == nil:
		j.Result = result
		sink, view = s.finalizeLocked(j, JobDone, "")
	case errors.Is(err, context.Canceled) && j.cancelRequested:
		sink, view = s.finalizeLocked(j, JobCanceled, err.Error())
	default:
		sink, view = s.finalizeLocked(j, JobFailed, err.Error())
	}
	s.mu.Unlock()
	if sink != nil {
		sink(view)
	}
}

// finalizeLocked moves a job to a terminal state, publishes the terminal
// event, closes subscribers, and releases the job's context. Caller
// holds s.mu and has set Finished (and Started where applicable). The
// audit sink and terminal view are returned instead of invoked so the
// caller can run the sink's disk append after unlocking — a slow disk
// must not stall every other job-store operation.
func (s *JobStore) finalizeLocked(j *Job, state JobState, errMsg string) (func(JobView), JobView) {
	j.State = state
	j.Err = errMsg
	s.publishLocked(j, JobEvent{Type: string(state), Error: errMsg})
	s.closeSubsLocked(j)
	j.cancel()
	s.trimLocked()
	if s.onFinal == nil {
		return nil, JobView{}
	}
	return s.onFinal, j.view()
}

// Cancel requests cancellation of a queued or running job, reporting
// requested = false when the job is already terminal. The worker
// observes the canceled context and finalizes the job as canceled.
func (s *JobStore) Cancel(id string) (view JobView, requested, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobView{}, false, false
	}
	if j.State.Terminal() {
		return j.view(), false, true
	}
	j.cancelRequested = true
	j.cancel()
	return j.view(), true, true
}

// trimLocked drops the oldest finished jobs beyond the retention bound.
// Caller holds s.mu.
func (s *JobStore) trimLocked() {
	finished := 0
	for _, j := range s.jobs {
		if j.State.Terminal() {
			finished++
		}
	}
	drop := finished - s.retain
	if drop <= 0 {
		return
	}
	keep := s.ids[:0]
	for _, id := range s.ids {
		j := s.jobs[id]
		if drop > 0 && j.State.Terminal() {
			delete(s.jobs, id)
			drop--
			continue
		}
		keep = append(keep, id)
	}
	s.ids = keep
}

// Publish appends a progress event to the job's stream and broadcasts
// it to subscribers. Events for unknown or already-terminal jobs are
// dropped.
func (s *JobStore) Publish(id string, ev JobEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.State.Terminal() {
		return
	}
	s.publishLocked(j, ev)
}

// SetStages attaches a trace's accumulated span timings to the job
// (no-op for unknown jobs or empty stage maps). Workers call it just
// before Finish so the terminal view and the audit record carry it.
func (s *JobStore) SetStages(id string, stages map[string]telemetry.StageStats) {
	if len(stages) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		j.Stages = stages
	}
}

// SetResources attaches a trace's accumulated resource counters to the
// job (no-op for unknown jobs or empty maps). Like SetStages, workers
// call it just before Finish.
func (s *JobStore) SetResources(id string, resources map[string]int64) {
	if len(resources) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil {
		j.Resources = resources
	}
}

// publishLocked assigns the event's sequence number, stamps the job's
// trace id (when the publisher left it empty), appends the event to the
// bounded history, and offers it to every subscriber without blocking
// (a full subscriber just misses the event). Caller holds s.mu.
func (s *JobStore) publishLocked(j *Job, ev JobEvent) {
	j.eventSeq++
	ev.Seq = j.eventSeq
	if ev.TraceID == "" {
		ev.TraceID = j.TraceID
	}
	if len(j.events) >= maxJobEvents {
		copy(j.events, j.events[1:])
		j.events = j.events[:len(j.events)-1]
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubsLocked closes and forgets every subscriber channel. Caller
// holds s.mu.
func (s *JobStore) closeSubsLocked(j *Job) {
	for ch := range j.subs {
		close(ch)
	}
	j.subs = map[chan JobEvent]struct{}{}
}

// Subscribe returns the job's event history so far plus a channel
// delivering subsequent events. The channel is closed after the
// terminal event (or on job removal); call unsub to detach early.
// For an already-terminal job the history ends with the terminal event
// and the channel is returned closed.
func (s *JobStore) Subscribe(id string) (past []JobEvent, ch <-chan JobEvent, unsub func(), ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, nil, nil, false
	}
	past = append([]JobEvent(nil), j.events...)
	c := make(chan JobEvent, subscriberBuffer)
	if j.State.Terminal() {
		close(c)
		return past, c, func() {}, true
	}
	j.subs[c] = struct{}{}
	unsub = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, live := j.subs[c]; live {
			delete(j.subs, c)
			close(c)
		}
	}
	return past, c, unsub, true
}

// Snapshot returns the wire view of a job.
func (s *JobStore) Snapshot(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns the wire view of every job in insertion order. A
// non-empty state keeps only jobs currently in that lifecycle state
// (the ?state= filter of GET /v1/jobs).
func (s *JobStore) List(state JobState) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.ids))
	for _, id := range s.ids {
		if j := s.jobs[id]; state == "" || j.State == state {
			out = append(out, j.view())
		}
	}
	return out
}

// CountByState tallies jobs per lifecycle state.
func (s *JobStore) CountByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}

// Pool is a bounded worker pool: a fixed number of goroutines draining a
// bounded queue. Submission never blocks — a full queue is reported to
// the caller (the HTTP layer answers 503) instead of stalling the
// accept loop.
type Pool struct {
	mu     sync.Mutex
	queue  chan func()
	wg     sync.WaitGroup
	busy   atomic.Int32
	closed bool
	size   int
}

// NewPool starts `workers` goroutines with a queue of capacity queueCap.
func NewPool(workers, queueCap int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	p := &Pool{queue: make(chan func(), queueCap), size: workers}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.busy.Add(1)
				fn()
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// Submit enqueues fn; it reports false when the queue is full or the
// pool is closed.
func (p *Pool) Submit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- fn:
		return true
	default:
		return false
	}
}

// Close stops accepting work, drains the queue, and waits for the
// workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.size }

// Busy returns how many workers are executing a job right now.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// QueueDepth returns the number of queued-but-unstarted submissions.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// QueueCap returns the queue capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }
