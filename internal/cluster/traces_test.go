package cluster_test

import (
	"net/http"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// TestCrossTierSpanAssembly drives one allocate through a two-shard
// router and asserts GET /v1/traces/{id} on the router returns a single
// merged span tree: the router's edge spans are ancestors of the owning
// shard's execution spans, timestamps are monotone within each process,
// and the tree's resource totals match the flat accounting on the job
// view. This is the waterfall the whole trace pipeline exists to serve.
func TestCrossTierSpanAssembly(t *testing.T) {
	svcOpts := service.Options{TraceSampleAll: true}
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", svcOpts),
		startBackendAt(t, "b1", "127.0.0.1:0", svcOpts),
	}
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval: time.Hour, ProxyTimeout: 10 * time.Second,
		TraceSampleAll: true,
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(12)
	jobID := c.submit("/v1/allocate", service.AllocateRequest{
		GraphID: info.ID, Budgets: []int{3, 3}, Runs: 2000,
	})
	if view := c.waitJob(jobID); view.State != service.JobDone {
		t.Fatalf("allocate ended %q: %s", view.State, view.Error)
	}
	var view service.JobView
	c.doJSON("GET", "/v1/jobs/"+jobID, nil, &view, http.StatusOK)
	if view.TraceID == "" {
		t.Fatal("job carries no trace id")
	}

	var tree service.TraceTreeResponse
	c.doJSON("GET", "/v1/traces/"+view.TraceID, nil, &tree, http.StatusOK)
	if tree.TraceID != view.TraceID {
		t.Fatalf("tree trace_id = %q, want %q", tree.TraceID, view.TraceID)
	}
	if tree.Partial {
		t.Fatalf("assembly partial: %v", tree.Errors)
	}

	// Both tiers contributed spans, each stamped with its node.
	byNode := map[string][]service.TraceSpan{}
	byID := map[string]service.TraceSpan{}
	for _, sp := range tree.Spans {
		if sp.Node == "" {
			t.Fatalf("span %q has no node stamp", sp.Stage)
		}
		byNode[sp.Node] = append(byNode[sp.Node], sp)
		byID[sp.ID] = sp
	}
	routerSpans := byNode["router"]
	if len(routerSpans) == 0 {
		t.Fatalf("no router-side spans in tree: %+v", tree.Spans)
	}
	var shardNode string
	for node := range byNode {
		if node != "router" {
			shardNode = node
		}
	}
	if shardNode == "" {
		t.Fatalf("no shard-side spans in tree: %+v", tree.Spans)
	}
	if len(byNode) != 2 {
		t.Fatalf("spans from %d nodes, want router + one shard: %v", len(byNode), byNode)
	}
	stages := map[string]bool{}
	for _, sp := range tree.Spans {
		stages[sp.Node+"/"+sp.Stage] = true
	}
	for _, want := range []string{"router/dispatch", "router/proxy", shardNode + "/greedy_select"} {
		if !stages[want] {
			t.Errorf("tree missing span %s (have %v)", want, stages)
		}
	}

	// Every shard span's ancestry must pass through a router span: the
	// backend trace adopted the router's proxy span id as its parent.
	isRouterSpan := map[string]bool{}
	for _, sp := range routerSpans {
		isRouterSpan[sp.ID] = true
	}
	for _, sp := range byNode[shardNode] {
		seen := map[string]bool{}
		cur := sp
		for {
			if isRouterSpan[cur.Parent] {
				break
			}
			parent, ok := byID[cur.Parent]
			if !ok || seen[cur.Parent] {
				t.Fatalf("shard span %q ancestry never reaches a router span (stuck at parent %q)", sp.Stage, cur.Parent)
			}
			seen[cur.Parent] = true
			cur = parent
		}
	}

	// Timestamps are monotone within each process: a child never starts
	// before its same-node parent, and the whole list is start-sorted.
	for i := 1; i < len(tree.Spans); i++ {
		if tree.Spans[i].StartUnixNS < tree.Spans[i-1].StartUnixNS {
			t.Fatalf("spans not start-sorted at %d: %+v", i, tree.Spans)
		}
	}
	for _, sp := range tree.Spans {
		parent, ok := byID[sp.Parent]
		if !ok || parent.Node != sp.Node {
			continue
		}
		if sp.StartUnixNS < parent.StartUnixNS {
			t.Errorf("%s/%s starts before its parent %s", sp.Node, sp.Stage, parent.Stage)
		}
	}

	// The tree's merged resource totals equal the job view's flat ones.
	if len(view.Resources) == 0 {
		t.Fatal("job view carries no resource totals")
	}
	for kind, want := range view.Resources {
		if got := tree.Resources[kind]; got != want {
			t.Errorf("tree resources[%s] = %d, want job view's %d", kind, got, want)
		}
	}

	// The merged list view finds the same trace behind the composite
	// cursor, and the exemplar on the router's merged export names a
	// retrievable trace.
	var page cluster.ClusterTracesResponse
	c.doJSON("GET", "/v1/traces?route=allocate", nil, &page, http.StatusOK)
	// Both tiers retained a fragment under the id, so the merged list
	// shows the trace once per source store.
	fragNodes := map[string]bool{}
	for _, rec := range page.Traces {
		if rec.TraceID == view.TraceID {
			fragNodes[rec.Node] = true
			if len(rec.Spans) != 0 {
				t.Error("list view leaked span records")
			}
		}
	}
	if !fragNodes[shardNode] || !fragNodes["router"] {
		t.Fatalf("merged /v1/traces fragments from %v, want router and %s", fragNodes, shardNode)
	}
	if page.NextCursor == "" {
		t.Error("merged page has no composite cursor")
	}

	var export telemetry.Export
	c.doJSON("GET", "/v1/metrics?format=json", nil, &export, http.StatusOK)
	exemplar := ""
	for _, h := range export.Histograms {
		if h.Name != "welmax_job_duration_seconds" {
			continue
		}
		for _, ex := range h.Exemplars {
			exemplar = ex.TraceID
		}
	}
	if exemplar == "" {
		t.Fatal("merged export carries no job-duration exemplar")
	}
	var exTree service.TraceTreeResponse
	c.doJSON("GET", "/v1/traces/"+exemplar, nil, &exTree, http.StatusOK)
	if len(exTree.Spans) == 0 {
		t.Errorf("exemplar trace %s resolved to an empty tree", exemplar)
	}
}
