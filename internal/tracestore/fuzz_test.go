package tracestore

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzReadSegment feeds arbitrary bytes through the .wmt segment reader:
// any input must either decode (possibly to zero records — unparseable
// JSON lines are skipped by design) or fail with ErrBadSegment. Panics
// and unbounded allocations from forged length fields are the bugs this
// hunts.
func FuzzReadSegment(f *testing.F) {
	var payload bytes.Buffer
	enc := func(r Record) {
		b, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		payload.Write(b)
		payload.WriteByte('\n')
	}
	enc(Record{Seq: 1, TraceID: "t1", Route: "allocate", Start: time.Unix(1700000000, 0).UTC(), DurationMS: 12.5})
	enc(Record{Seq: 2, TraceID: "t2", Route: "warm", Start: time.Unix(1700000001, 0).UTC(), DurationMS: 3.25})
	var valid bytes.Buffer
	if err := writeSegmentFrame(&valid, payload.Bytes()); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:12])                   // truncated header
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated checksum
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[25] ^= 0x10 // payload bit flip -> checksum mismatch
	f.Add(flipped)
	forged := append([]byte(nil), valid.Bytes()...)
	forged[12], forged[13], forged[14] = 0xff, 0xff, 0xff // forged multi-MiB length
	f.Add(forged)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "seg"+SegmentExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSegment(path); err != nil && !errors.Is(err, ErrBadSegment) {
			t.Fatalf("untyped segment error: %v", err)
		}
	})
}
