// Package comic implements the Com-IC substrate of Lu et al. (VLDB'15)
// for two mutually complementary items, and the RR-SIM+ / RR-CIM seed
// selection baselines the paper compares against (§4.3.1.2). The node
// level automaton (NLA) is realized with threshold persistence: each node
// draws one uniform threshold per item per run and adopts item X whenever
// its threshold is below the GAP probability q_{X|state}, so later
// adoptions of the complement correctly trigger reconsideration.
//
// Design note (documented in DESIGN.md): the original research code is
// unavailable; these re-implementations preserve the properties the
// paper's comparison rests on — two items only, TIM-scale RR-set counts,
// a forward Monte-Carlo phase that dominates running time, and seed
// quality comparable to bundleGRD under complementary configurations.
package comic

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// ItemA and ItemB index the two items of the Com-IC model.
const (
	ItemA = 0
	ItemB = 1
)

// Sim runs forward Com-IC diffusions with the GAP parameters. Buffers are
// reused across runs; not safe for concurrent use.
type Sim struct {
	G   *graph.Graph
	GAP utility.GAP

	// per-run state, epoch-stamped
	stateGen []int32
	gen      int32
	alphaA   []float64
	alphaB   []float64
	desireA  []bool
	desireB  []bool
	adoptA   []bool
	adoptB   []bool
	edgeGen  []int32
	edgeLive []bool
	queue    []graph.NodeID
	inQueue  []bool
}

// NewSim returns a Com-IC simulator for g with the given GAP parameters.
func NewSim(g *graph.Graph, gap utility.GAP) *Sim {
	n := g.N()
	return &Sim{
		G:        g,
		GAP:      gap,
		stateGen: make([]int32, n),
		alphaA:   make([]float64, n),
		alphaB:   make([]float64, n),
		desireA:  make([]bool, n),
		desireB:  make([]bool, n),
		adoptA:   make([]bool, n),
		adoptB:   make([]bool, n),
		edgeGen:  make([]int32, g.M()),
		edgeLive: make([]bool, g.M()),
		inQueue:  make([]bool, n),
	}
}

// touch lazily initializes node v's per-run state.
func (s *Sim) touch(v graph.NodeID, rng *stats.RNG) {
	if s.stateGen[v] == s.gen {
		return
	}
	s.stateGen[v] = s.gen
	s.alphaA[v] = rng.Float64()
	s.alphaB[v] = rng.Float64()
	s.desireA[v] = false
	s.desireB[v] = false
	s.adoptA[v] = false
	s.adoptB[v] = false
}

// reconsider re-evaluates v's adoption state after its desire or
// complement state changed; returns true if v adopted something new.
func (s *Sim) reconsider(v graph.NodeID) bool {
	changed := false
	if s.desireA[v] && !s.adoptA[v] {
		q := s.GAP.Q1GivenNone
		if s.adoptB[v] {
			q = s.GAP.Q1Given2
		}
		if s.alphaA[v] < q {
			s.adoptA[v] = true
			changed = true
		}
	}
	if s.desireB[v] && !s.adoptB[v] {
		q := s.GAP.Q2GivenNone
		if s.adoptA[v] {
			q = s.GAP.Q2Given1
		}
		if s.alphaB[v] < q {
			s.adoptB[v] = true
			changed = true
		}
	}
	// adopting one item may immediately unlock the other
	if changed {
		s.reconsider(v)
		return true
	}
	return false
}

// RunOnce simulates one diffusion and returns the number of A- and
// B-adopters.
func (s *Sim) RunOnce(seedsA, seedsB []graph.NodeID, rng *stats.RNG) (nA, nB int) {
	s.gen++
	if s.gen == 0 {
		for i := range s.stateGen {
			s.stateGen[i] = -1
		}
		for i := range s.edgeGen {
			s.edgeGen[i] = -1
		}
		s.gen = 1
	}
	q := s.queue[:0]
	push := func(v graph.NodeID) {
		if !s.inQueue[v] {
			s.inQueue[v] = true
			q = append(q, v)
		}
	}
	for _, v := range seedsA {
		s.touch(v, rng)
		s.desireA[v] = true
	}
	for _, v := range seedsB {
		s.touch(v, rng)
		s.desireB[v] = true
	}
	for _, v := range seedsA {
		if s.reconsider(v) {
			push(v)
		}
	}
	for _, v := range seedsB {
		if s.reconsider(v) {
			push(v)
		}
	}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		s.inQueue[u] = false
		base := s.G.OutEdgeBase(u)
		ts, ps := s.G.OutEdges(u)
		for j, v := range ts {
			pos := base + int64(j)
			if s.edgeGen[pos] != s.gen {
				s.edgeGen[pos] = s.gen
				s.edgeLive[pos] = rng.Bool(float64(ps[j]))
			}
			if !s.edgeLive[pos] {
				continue
			}
			s.touch(v, rng)
			grew := false
			if s.adoptA[u] && !s.desireA[v] {
				s.desireA[v] = true
				grew = true
			}
			if s.adoptB[u] && !s.desireB[v] {
				s.desireB[v] = true
				grew = true
			}
			if grew && s.reconsider(v) {
				push(v)
			}
		}
	}
	s.queue = q[:0]
	for v := graph.NodeID(0); int(v) < s.G.N(); v++ {
		if s.stateGen[v] != s.gen {
			continue
		}
		if s.adoptA[v] {
			nA++
		}
		if s.adoptB[v] {
			nB++
		}
	}
	return nA, nB
}

// ExpectedAdoptions estimates the expected number of A- and B-adopters
// over `runs` Monte-Carlo diffusions.
func (s *Sim) ExpectedAdoptions(seedsA, seedsB []graph.NodeID, rng *stats.RNG, runs int) (float64, float64) {
	if runs <= 0 {
		runs = 1
	}
	ta, tb := 0, 0
	for i := 0; i < runs; i++ {
		a, b := s.RunOnce(seedsA, seedsB, rng)
		ta += a
		tb += b
	}
	return float64(ta) / float64(runs), float64(tb) / float64(runs)
}

// AdoptionProbabilities estimates, per node, the probability of adopting
// item B. RR-CIM's forward phase uses this to boost its reverse sampling.
func (s *Sim) AdoptionProbabilities(seedsA, seedsB []graph.NodeID, rng *stats.RNG, runs int) []float64 {
	out := make([]float64, s.G.N())
	if runs <= 0 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		s.RunOnce(seedsA, seedsB, rng)
		for v := graph.NodeID(0); int(v) < s.G.N(); v++ {
			if s.stateGen[v] == s.gen && s.adoptB[v] {
				out[v]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(runs)
	}
	return out
}
