package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// placeOnBothShards registers distinct graphs through the router until
// each backend owns at least one, returning one graph id per backend.
func placeOnBothShards(t *testing.T, c *client, backends []*backend) map[string]string {
	t.Helper()
	owned := map[string]string{}
	for n := 3; n <= 40 && len(owned) < len(backends); n++ {
		info := c.registerLine(n)
		for _, b := range backends {
			if _, ok := b.svc.Registry().Get(info.ID); ok {
				if _, dup := owned[b.name]; !dup {
					owned[b.name] = info.ID
				}
			}
		}
	}
	if len(owned) < len(backends) {
		t.Fatalf("placement never covered all backends: %v", owned)
	}
	return owned
}

// TestRouterMetricsMergeAndTracePropagation drives one allocate on each
// of two shards, then checks (a) the router's GET /v1/metrics serves
// the element-wise sum of both shards' histograms plus node-labeled
// gauges, and (b) a trace id minted at the router follows the job into
// the backend's job record and SSE stream, with stage spans attached.
func TestRouterMetricsMergeAndTracePropagation(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{}),
	}
	rt, c := newCluster(t, backends, cluster.Options{ProbeInterval: time.Hour, ProxyTimeout: 10 * time.Second})
	defer rt.Close()
	rt.Sync(syncCtx())

	owned := placeOnBothShards(t, c, backends)

	// One allocate per shard. The first goes through a raw request so the
	// response headers are visible: the router must mint a trace id (the
	// client sends none) and relay the backend's echo of it.
	first := true
	var traceID, tracedJob string
	for _, graphID := range owned {
		body, err := json.Marshal(service.AllocateRequest{GraphID: graphID, Budgets: []int{3, 3}, Runs: 1000})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(c.base+"/v1/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ack struct {
			JobID   string `json:"job_id"`
			TraceID string `json:"trace_id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("allocate: status %d, err %v", resp.StatusCode, err)
		}
		if first {
			first = false
			traceID, tracedJob = resp.Header.Get(telemetry.TraceHeader), ack.JobID
			if traceID == "" || ack.TraceID != traceID {
				t.Fatalf("router-minted trace: header %q, body %q", traceID, ack.TraceID)
			}
		}
		if view := c.waitJob(ack.JobID); view.State != service.JobDone {
			t.Fatalf("allocate on %s ended %q: %s", graphID, view.State, view.Error)
		}
	}

	// The traced job's record on the backend carries the router's id and
	// the stage spans.
	var view service.JobView
	c.doJSON("GET", "/v1/jobs/"+tracedJob, nil, &view, http.StatusOK)
	if view.TraceID != traceID {
		t.Errorf("job trace_id = %q, want router-minted %q", view.TraceID, traceID)
	}
	if len(view.Stages) < 4 {
		t.Errorf("job carries %d stage spans, want >= 4: %v", len(view.Stages), view.Stages)
	}

	// Its SSE stream (replayed through the router) names the trace on
	// every data frame.
	resp, err := http.Get(c.base + "/v1/jobs/" + tracedJob + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		frames++
		var ev service.JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", data, err)
		}
		if ev.TraceID != traceID {
			t.Errorf("SSE frame trace_id = %q, want %q", ev.TraceID, traceID)
		}
	}
	if frames == 0 {
		t.Fatal("no SSE frames through the router")
	}

	// The router's exposition: merged histograms (one allocate per shard
	// sums to 2) and per-node gauges from both backends.
	status, raw := c.do("GET", "/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("router metrics: status %d", status)
	}
	text := string(raw)
	for _, want := range []string{
		`welmax_job_duration_seconds_count{kind="allocate"} 2`,
		`welmax_http_request_duration_seconds_bucket{route="POST /v1/allocate",le="+Inf"}`,
		fmt.Sprintf(`welmax_backend_up{node=%q} 1`, backends[0].name),
		fmt.Sprintf(`welmax_backend_up{node=%q} 1`, backends[1].name),
		fmt.Sprintf(`welmax_graphs{node=%q}`, backends[0].name),
		fmt.Sprintf(`welmax_graphs{node=%q}`, backends[1].name),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router metrics missing %q", want)
		}
	}

	// A dead shard degrades the scrape, never fails it.
	backends[1].kill()
	status, raw = c.do("GET", "/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("router metrics with dead shard: status %d", status)
	}
	if !strings.Contains(string(raw), fmt.Sprintf(`welmax_backend_up{node=%q} 0`, backends[1].name)) {
		t.Errorf("dead shard not reported down:\n%s", raw)
	}
}
