package expr

import (
	"fmt"
	"math"
	"time"

	"uicwelfare/internal/auction"
	"uicwelfare/internal/core"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// RealSplit returns the Fig. 8(b,c) budget split of a total budget over
// the five real items: 30% console, 30% controller, 20%/10%/10% games.
func RealSplit(total int) []int {
	b := []int{total * 30 / 100, total * 30 / 100, total * 20 / 100, total * 10 / 100, total * 10 / 100}
	for i := range b {
		if b[i] < 1 {
			b[i] = 1
		}
	}
	return b
}

// SkewSplits returns the three Fig. 8(d) budget distributions for a total
// budget: uniform, large skew (82% on the console) and moderate skew
// ([150 150 100 50 50] at total 500).
func SkewSplits(total int) map[string][]int {
	uniform := make([]int, 5)
	for i := range uniform {
		uniform[i] = total / 5
		if uniform[i] < 1 {
			uniform[i] = 1
		}
	}
	large := []int{total * 82 / 100, 0, 0, 0, 0}
	rest := (total - large[0]) / 4
	if rest < 1 {
		rest = 1
	}
	for i := 1; i < 5; i++ {
		large[i] = rest
	}
	moderate := []int{total * 30 / 100, total * 30 / 100, total * 20 / 100, total * 10 / 100, total * 10 / 100}
	for i := range moderate {
		if moderate[i] < 1 {
			moderate[i] = 1
		}
	}
	return map[string][]int{"uniform": uniform, "large-skew": large, "moderate-skew": moderate}
}

// RealRow is one point of Fig. 8(b-d).
type RealRow struct {
	Split     string
	Total     int
	Algorithm string
	Welfare   float64
	WelfareSE float64
	Millis    float64
}

// Fig8bc reproduces the real-parameter welfare and running-time sweep:
// Table 5 utilities on the Twitter stand-in, total budget 100..500 in
// steps of 100 split 30/30/20/10/10. item-disj is omitted exactly as in
// the paper: every singleton has negative utility, so its welfare is 0.
func Fig8bc(p Params) ([]RealRow, error) {
	p = p.withDefaults()
	spec, _ := NetworkByName("twitter")
	g := spec.Generate(p.Scale, p.Seed)
	m := utility.RealParams()
	bscale := p.Scale
	if bscale > 1 {
		bscale = 1
	}
	var rows []RealRow
	for total := 100; total <= 500; total += 100 {
		scaled := int(float64(total) * bscale)
		if scaled < 5 {
			scaled = 5
		}
		budgets := RealSplit(scaled)
		prob := core.MustProblem(g, m, budgets)
		for _, algo := range []string{core.AlgoBundleGRD, core.AlgoBundleDisjoint} {
			start := time.Now()
			res := runMultiItemAlgo(algo, prob, p, stats.NewRNG(p.Seed+uint64(total)))
			ms := float64(time.Since(start).Microseconds()) / 1000.0
			est := uic.NewSimulator(g, m).EstimateWelfare(res.Alloc, stats.NewRNG(p.Seed+13), p.Runs)
			rows = append(rows, RealRow{
				Split: "30/30/20/10/10", Total: scaled, Algorithm: algo,
				Welfare: est.Mean, WelfareSE: est.StdErr, Millis: ms,
			})
		}
	}
	return rows, nil
}

// Fig8d reproduces the budget-skew study: total budget 500 (scaled) under
// the three Fig. 8(d) distributions, measuring bundleGRD's welfare and
// running time.
func Fig8d(p Params) ([]RealRow, error) {
	p = p.withDefaults()
	spec, _ := NetworkByName("twitter")
	g := spec.Generate(p.Scale, p.Seed)
	m := utility.RealParams()
	bscale := p.Scale
	if bscale > 1 {
		bscale = 1
	}
	total := int(500 * bscale)
	if total < 5 {
		total = 5
	}
	var rows []RealRow
	for _, name := range []string{"uniform", "large-skew", "moderate-skew"} {
		budgets := SkewSplits(total)[name]
		prob := core.MustProblem(g, m, budgets)
		start := time.Now()
		res := core.BundleGRD(prob, core.Options{Eps: p.Eps, Ell: p.Ell}, stats.NewRNG(p.Seed))
		ms := float64(time.Since(start).Microseconds()) / 1000.0
		est := uic.NewSimulator(g, m).EstimateWelfare(res.Alloc, stats.NewRNG(p.Seed+17), p.Runs)
		rows = append(rows, RealRow{
			Split: name, Total: total, Algorithm: core.AlgoBundleGRD,
			Welfare: est.Mean, WelfareSE: est.StdErr, Millis: ms,
		})
	}
	return rows, nil
}

// Table5Row compares the ground-truth auction parameters with what the
// hidden-bid learner recovers from simulated bidding histories.
type Table5Row struct {
	Itemset      string
	Price        float64
	TrueValue    float64
	TrueNoiseVar float64
	LearnedValue float64
	LearnedVar   float64
}

// table5GroundTruth lists the five observed rows of Table 5.
var table5GroundTruth = []struct {
	name     string
	price    float64
	value    float64
	noiseVar float64
}{
	{"{ps}", 260, 213, 4},
	{"{ps,c}", 280, 220, 6},
	{"{ps,g1,g2,g3}", 275, 258, 4},
	{"{ps,g1,g2,c}", 290, 292.5, 5},
	{"{ps,g1,g2,g3,c}", 295, 302, 7},
}

// Table5 simulates eBay-style auctions for each observed itemset and
// learns the value/noise parameters back, reproducing the §4.3.4.1
// pipeline (with simulated bidding standing in for the eBay data — see
// DESIGN.md).
func Table5(p Params) ([]Table5Row, error) {
	p = p.withDefaults()
	rng := stats.NewRNG(p.Seed)
	const bidders, auctions = 8, 2000
	rows := make([]Table5Row, 0, len(table5GroundTruth))
	for _, gt := range table5GroundTruth {
		learned, err := auction.LearnFromGroundTruth(gt.value, sqrtf(gt.noiseVar), bidders, auctions, rng)
		if err != nil {
			return nil, fmt.Errorf("expr: learning %s: %w", gt.name, err)
		}
		rows = append(rows, Table5Row{
			Itemset:      gt.name,
			Price:        gt.price,
			TrueValue:    gt.value,
			TrueNoiseVar: gt.noiseVar,
			LearnedValue: learned.Value,
			LearnedVar:   learned.NoiseStd * learned.NoiseStd,
		})
	}
	return rows, nil
}

func sqrtf(x float64) float64 { return math.Sqrt(x) }

// Table6Row compares RR-set counts of PRIMA against the two IMM variants
// of §4.3.4.6 for one budget distribution.
type Table6Row struct {
	Split     string
	BundleGRD int // PRIMA's final collection
	MaxIMM    int // max over per-budget IMM runs
	IMMMax    int // IMM run at the maximum budget
}

// Table6 reproduces the memory-usage comparison: the number of RR sets
// generated by bundleGRD (PRIMA) versus MAX_IMM and IMM_MAX under the
// three Fig. 8(d) budget distributions on the Twitter stand-in.
func Table6(p Params) ([]Table6Row, error) {
	p = p.withDefaults()
	spec, _ := NetworkByName("twitter")
	g := spec.Generate(p.Scale, p.Seed)
	bscale := p.Scale
	if bscale > 1 {
		bscale = 1
	}
	total := int(500 * bscale)
	if total < 5 {
		total = 5
	}
	var rows []Table6Row
	for _, name := range []string{"uniform", "large-skew", "moderate-skew"} {
		budgets := SkewSplits(total)[name]
		pres := prima.Select(g, budgets, prima.Options{Eps: p.Eps, Ell: p.Ell}, stats.NewRNG(p.Seed))
		maxIMM := 0
		for _, b := range dedupInts(budgets) {
			r := imm.Run(g, b, imm.Options{Eps: p.Eps, Ell: p.Ell}, stats.NewRNG(p.Seed))
			if r.NumRRSets > maxIMM {
				maxIMM = r.NumRRSets
			}
		}
		maxBudget := 0
		for _, b := range budgets {
			if b > maxBudget {
				maxBudget = b
			}
		}
		immMax := imm.Run(g, maxBudget, imm.Options{Eps: p.Eps, Ell: p.Ell}, stats.NewRNG(p.Seed))
		rows = append(rows, Table6Row{
			Split:     name,
			BundleGRD: pres.NumRRSets,
			MaxIMM:    maxIMM,
			IMMMax:    immMax.NumRRSets,
		})
	}
	return rows, nil
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
