package auction

import (
	"math"
	"sort"
	"testing"

	"uicwelfare/internal/stats"
)

func TestSimulateStructure(t *testing.T) {
	rng := stats.NewRNG(1)
	a := Simulate(100, 5, 8, rng)
	if a.Bidders != 8 {
		t.Errorf("bidders %d", a.Bidders)
	}
	if len(a.Bids) == 0 {
		t.Error("no observed bids")
	}
	if !sort.Float64sAreSorted(a.Bids) {
		t.Error("bids not ascending")
	}
	// final price is the largest observed losing bid
	if a.FinalPrice != a.Bids[len(a.Bids)-1] {
		t.Errorf("final price %v, top losing bid %v", a.FinalPrice, a.Bids[len(a.Bids)-1])
	}
}

func TestSimulateHidesLowBids(t *testing.T) {
	// values mostly below 0 are hidden
	rng := stats.NewRNG(2)
	a := Simulate(-10, 1, 5, rng)
	for _, b := range a.Bids {
		if b <= 0 {
			t.Errorf("observed non-positive bid %v", b)
		}
	}
}

func TestSimulateMinBidders(t *testing.T) {
	rng := stats.NewRNG(3)
	a := Simulate(10, 1, 0, rng)
	if a.Bidders != 2 {
		t.Errorf("bidder clamp failed: %d", a.Bidders)
	}
}

func TestFinalPriceIsSecondOrderStatistic(t *testing.T) {
	rng := stats.NewRNG(4)
	const n, runs = 6, 50000
	var sum stats.Summary
	for i := 0; i < runs; i++ {
		sum.Add(Simulate(0, 1, n, rng).FinalPrice)
	}
	e2, _ := orderStatMoments(n)
	if math.Abs(sum.Mean()-e2) > 0.02 {
		t.Errorf("mean final price %v, want E2(%d) = %v", sum.Mean(), n, e2)
	}
}

func TestLearnRecoversGroundTruth(t *testing.T) {
	rng := stats.NewRNG(5)
	cases := []struct{ mu, sigma float64 }{
		{213, 2},
		{292.5, 2.2},
		{50, 10},
	}
	for _, c := range cases {
		learned, err := LearnFromGroundTruth(c.mu, c.sigma, 8, 3000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(learned.Value-c.mu) > 0.05*c.mu+3*c.sigma/math.Sqrt(3000)+0.5 {
			t.Errorf("mu: learned %v, truth %v", learned.Value, c.mu)
		}
		if math.Abs(learned.NoiseStd-c.sigma) > 0.2*c.sigma+0.2 {
			t.Errorf("sigma: learned %v, truth %v", learned.NoiseStd, c.sigma)
		}
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Learn([]Auction{{Bidders: 3}}); err == nil {
		t.Error("single auction accepted")
	}
	mixed := []Auction{
		{Bidders: 3, FinalPrice: 10},
		{Bidders: 5, FinalPrice: 12},
	}
	if _, err := Learn(mixed); err == nil {
		t.Error("mixed bidder counts accepted")
	}
}

func TestOrderStatMomentsSanity(t *testing.T) {
	// second-highest of 2 = min: negative expectation; of many: positive
	e2small, sd2 := orderStatMoments(2)
	if e2small >= 0 {
		t.Errorf("E[min of 2 normals] = %v, want < 0", e2small)
	}
	e2big, _ := orderStatMoments(20)
	if e2big <= 1 {
		t.Errorf("E[2nd of 20 normals] = %v, want > 1", e2big)
	}
	if sd2 <= 0 {
		t.Error("order statistic SD must be positive")
	}
	// cache must return identical values
	a1, b1 := orderStatMoments(7)
	a2, b2 := orderStatMoments(7)
	if a1 != a2 || b1 != b2 {
		t.Error("cache not deterministic")
	}
}

func TestLearnBiasSmallSamples(t *testing.T) {
	// even with few auctions the estimator should be in the ballpark
	rng := stats.NewRNG(6)
	learned, err := LearnFromGroundTruth(100, 4, 6, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(learned.Value-100) > 5 {
		t.Errorf("small-sample mu %v too far from 100", learned.Value)
	}
}
