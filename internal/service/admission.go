package service

import (
	"context"
	"fmt"
	"time"

	"uicwelfare/internal/batch"
	"uicwelfare/internal/core"
	"uicwelfare/internal/journal"
	"uicwelfare/internal/telemetry"
)

// AdmissionError reports a request refused by cost-based admission
// control: its predicted sketch cost exceeds the configured admission
// budget. The HTTP layer maps it to 429 with a retryable body — the
// same request may be admitted later, once warmer caches or a
// recalibrated cost model change the prediction, so clients should back
// off and retry rather than treat it as a hard failure.
type AdmissionError struct {
	// EstimatedBytes is the calibrated predicted resident cost of the
	// sketch work the request would trigger.
	EstimatedBytes int64
	// BudgetBytes is the configured admission budget it exceeded.
	BudgetBytes int64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("predicted sketch cost %d bytes exceeds the admission budget of %d bytes (retry later, or shrink budgets / raise eps)",
		e.EstimatedBytes, e.BudgetBytes)
}

// EstimateCost prices a validated plan's sketch work: the planner's
// a-priori estimator (core.Meta.CostEstimator) scaled by the graph's
// learned observed/predicted ratio (falling back to the global model
// for graphs with no observed builds yet). Plans without an estimator
// price at zero (unpriceable planners bypass admission).
func (s *Service) EstimateCost(graphID string, plan *allocatePlan) int64 {
	if plan.meta.CostEstimator == nil {
		return 0
	}
	eps, ell := resolveEpsEll(plan.opts.Eps, plan.opts.Ell)
	raw := plan.meta.CostEstimator(plan.prob.G.N(), plan.prob.G.M(), eps, ell, plan.prob.Budgets)
	return s.costModels.Predict(graphID, raw)
}

// checkAdmission applies cost-based admission control to a validated
// allocate/warm plan, returning a non-nil *AdmissionError when the
// request would be refused right now. It is a pure check — callers that
// actually refuse (or give up waiting) count the reject themselves, so
// the queued path's periodic re-checks do not inflate the counter.
// Admission prices *new* sketch work only: with the exact-budget sketch
// already resident or in flight — or, under batching, a gathering or
// in-flight batch group whose current merged vector already covers the
// request — serving it costs nothing extra, so it is admitted
// regardless of the prediction.
func (s *Service) checkAdmission(graphID string, plan *allocatePlan) *AdmissionError {
	if s.admissionBytes <= 0 {
		return nil
	}
	if sp, ok := plan.planner.(core.SketchPlanner); ok {
		eps, ell := resolveEpsEll(plan.opts.Eps, plan.opts.Ell)
		family, cascade := plan.meta.SketchFamily, int(plan.opts.Cascade)
		budgets := sp.SketchBudgets(plan.prob)
		if s.cache.Resident(SketchKey(graphID, family, cascade, eps, ell, budgets)) {
			return nil
		}
		if bp, ok := sp.(core.BatchSketchPlanner); ok && s.batcher != nil {
			groupKey := SketchKey(graphID, family, cascade, eps, ell, nil)
			// A gathering/in-flight batch whose merged vector covers the
			// request, or a resident sketch from a previous batch that
			// dominates it, both serve the request with no new work.
			if s.batcher.Covered(groupKey, budgets, bp.MergeBudgets) {
				return nil
			}
			if rec, ok := s.lookupMerged(groupKey); ok &&
				batch.Dominates(bp.MergeBudgets, rec.budgets, budgets) && s.cache.Resident(rec.key) {
				return nil
			}
		}
	}
	// Otherwise — including planners with no reusable sketch — price the
	// request's sketch work directly.
	if est := s.EstimateCost(graphID, plan); est > s.admissionBytes {
		return &AdmissionError{EstimatedBytes: est, BudgetBytes: s.admissionBytes}
	}
	return nil
}

// admitPlan is the immediate form of admission: check once, count the
// reject, answer. The benchmarks and tests that exercise raw admission
// semantics go through it.
func (s *Service) admitPlan(graphID string, plan *allocatePlan) *AdmissionError {
	aerr := s.checkAdmission(graphID, plan)
	if aerr != nil {
		s.admissionRejects.Add(1)
		s.recordReject(context.Background(), graphID, aerr, 0)
	}
	return aerr
}

// recordReject journals one admission reject with the predicted cost
// and any time the request spent queued before losing.
func (s *Service) recordReject(ctx context.Context, graphID string, aerr *AdmissionError, waited time.Duration) {
	s.flight.Record(journal.Event{
		Type:    journal.AdmissionReject,
		Graph:   graphID,
		TraceID: telemetry.FromContext(ctx).ID(),
		Bytes:   aerr.EstimatedBytes,
		WaitMS:  waited.Milliseconds(),
	})
}

// admissionRecheck is how often a queued request re-prices itself while
// holding a queue slot.
const admissionRecheck = 25 * time.Millisecond

// admitOrWait is queue-with-deadline admission: a request refused by
// checkAdmission whose predicted overshoot is small (estimate within
// the configured slack factor of the budget) holds a slot in a bounded
// FIFO and re-checks periodically — a finishing build recalibrates the
// cost model, a completing warm makes the sketch resident, a batch
// group forms a covering merged vector — instead of bouncing 429 off
// every client in a sweep's reject-retry loop. The wait ends at the
// deadline (counted as a queue timeout plus a reject), on ctx
// cancellation, or on admission. Requests far over budget, and all
// requests when the queue is disabled or full, reject immediately as
// before.
func (s *Service) admitOrWait(ctx context.Context, graphID string, plan *allocatePlan) *AdmissionError {
	aerr := s.checkAdmission(graphID, plan)
	if aerr == nil {
		return nil
	}
	slack := int64(float64(s.admissionBytes) * s.admissionSlack)
	if s.admissionQueue == nil || aerr.EstimatedBytes > slack {
		s.admissionRejects.Add(1)
		s.recordReject(ctx, graphID, aerr, 0)
		return aerr
	}
	select {
	case s.admissionQueue <- struct{}{}:
	default: // queue full: shed immediately
		s.admissionRejects.Add(1)
		s.recordReject(ctx, graphID, aerr, 0)
		return aerr
	}
	defer func() { <-s.admissionQueue }()
	s.admissionQueued.Add(1)
	queuedAt := time.Now()
	s.flight.Record(journal.Event{
		Type:    journal.AdmissionQueue,
		Graph:   graphID,
		TraceID: telemetry.FromContext(ctx).ID(),
		Bytes:   aerr.EstimatedBytes,
	})
	// Whatever the outcome, the time spent holding the slot is the
	// request's queue-wait resource.
	defer func() {
		telemetry.AddResource(ctx, telemetry.ResQueueWaitMS, time.Since(queuedAt).Milliseconds())
	}()

	deadline := time.NewTimer(s.admissionWait)
	defer deadline.Stop()
	tick := time.NewTicker(admissionRecheck)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			s.admissionRejects.Add(1)
			s.recordReject(ctx, graphID, aerr, time.Since(queuedAt))
			return aerr
		case <-deadline.C:
			s.admissionQueueTimeouts.Add(1)
			s.admissionRejects.Add(1)
			s.recordReject(ctx, graphID, aerr, time.Since(queuedAt))
			return aerr
		case <-tick.C:
			if next := s.checkAdmission(graphID, plan); next == nil {
				s.admissionQueueAdmitted.Add(1)
				return nil
			} else {
				aerr = next // report the freshest estimate on timeout
			}
		}
	}
}
