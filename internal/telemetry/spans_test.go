package telemetry

import (
	"context"
	"testing"
	"time"
)

// findSpan returns the first recorded span with the given stage.
func findSpan(t *testing.T, spans []Span, stage string) Span {
	t.Helper()
	for _, sp := range spans {
		if sp.Stage == stage {
			return sp
		}
	}
	t.Fatalf("no %q span in %+v", stage, spans)
	return Span{}
}

func TestWithSpanParenting(t *testing.T) {
	tr := NewTrace("abc", true)
	ctx := NewContext(context.Background(), tr)

	dctx, endDispatch := WithSpan(ctx, "dispatch")
	pctx, endProxy := WithSpan(dctx, "proxy")
	if SpanIDFromContext(pctx) == SpanIDFromContext(dctx) {
		t.Fatal("nested WithSpan did not thread a new current span")
	}
	endProxy()
	endDispatch()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	dispatch := findSpan(t, spans, "dispatch")
	proxy := findSpan(t, spans, "proxy")
	if dispatch.Parent != "" {
		t.Errorf("root span parent = %q, want empty", dispatch.Parent)
	}
	if proxy.Parent != dispatch.ID {
		t.Errorf("proxy parent = %q, want dispatch id %q", proxy.Parent, dispatch.ID)
	}
	if proxy.StartUnixNS < dispatch.StartUnixNS {
		t.Errorf("child started before parent: %d < %d", proxy.StartUnixNS, dispatch.StartUnixNS)
	}
	if dispatch.DurationMS < proxy.DurationMS {
		t.Errorf("parent (%.3fms) shorter than child (%.3fms)", dispatch.DurationMS, proxy.DurationMS)
	}
	if dispatch.ID == proxy.ID {
		t.Error("span ids not unique")
	}
}

func TestTraceParentAdoptedByRootSpans(t *testing.T) {
	// A backend trace adopts the router's proxy span id as its parent
	// (X-Welmax-Span-Id); spans opened with no current span chain to it,
	// so the cross-process tree assembles without a shared clock.
	tr := NewTrace("abc", true)
	tr.SetParent("router-span-7")
	if tr.Parent() != "router-span-7" {
		t.Fatalf("Parent = %q", tr.Parent())
	}
	ctx := NewContext(context.Background(), tr)
	if got := SpanIDFromContext(ctx); got != "router-span-7" {
		t.Fatalf("SpanIDFromContext with no current span = %q, want the trace parent", got)
	}
	StartSpan(ctx, "admission_check")()
	sctx, end := WithSpan(ctx, "greedy_select")
	StartSpan(sctx, "rrset_grow")()
	end()

	spans := tr.Spans()
	if admission := findSpan(t, spans, "admission_check"); admission.Parent != "router-span-7" {
		t.Errorf("admission_check parent = %q, want trace parent", admission.Parent)
	}
	greedy := findSpan(t, spans, "greedy_select")
	if greedy.Parent != "router-span-7" {
		t.Errorf("greedy_select parent = %q, want trace parent", greedy.Parent)
	}
	if grow := findSpan(t, spans, "rrset_grow"); grow.Parent != greedy.ID {
		t.Errorf("rrset_grow parent = %q, want greedy id %q", grow.Parent, greedy.ID)
	}
}

func TestSpanResourceDeltas(t *testing.T) {
	tr := NewTrace("abc", true)
	ctx := NewContext(context.Background(), tr)
	sctx, end := WithSpan(ctx, "rrset_grow")
	AddResource(sctx, ResRRSetsGrown, 5)
	AddResource(sctx, ResRRSetsGrown, 2)
	end()
	AddResource(ctx, ResCacheHits, 1) // no current span: trace total only

	sp := findSpan(t, tr.Spans(), "rrset_grow")
	if sp.Resources[ResRRSetsGrown] != 7 {
		t.Errorf("span delta = %v, want rrsets_grown 7", sp.Resources)
	}
	if sp.Resources[ResCacheHits] != 0 {
		t.Errorf("span absorbed an out-of-span resource: %v", sp.Resources)
	}
	totals := tr.Resources()
	if totals[ResRRSetsGrown] != 7 || totals[ResCacheHits] != 1 {
		t.Errorf("trace totals = %v", totals)
	}
}

func TestSpanCapCountsDrops(t *testing.T) {
	tr := NewTrace("abc", true)
	ctx := NewContext(context.Background(), tr)
	const extra = 40
	for i := 0; i < MaxSpans+extra; i++ {
		StartSpan(ctx, "batch_gather")()
	}
	if got := len(tr.Spans()); got != MaxSpans {
		t.Fatalf("retained %d spans, want the %d cap", got, MaxSpans)
	}
	if got := tr.DroppedSpans(); got != extra {
		t.Fatalf("dropped = %d, want %d", got, extra)
	}
	// Aggregate stage stats still see every call.
	if got := tr.Stages()["batch_gather"].Count; got != MaxSpans+extra {
		t.Fatalf("stage count = %d, want %d", got, MaxSpans+extra)
	}
}

func TestDisabledAndNilTraceSpans(t *testing.T) {
	off := NewTrace("id", false)
	ctx := NewContext(context.Background(), off)
	sctx, end := WithSpan(ctx, "x")
	AddResource(sctx, ResCacheHits, 1)
	end()
	if off.Spans() != nil || off.Resources() != nil {
		t.Fatal("disabled trace recorded spans")
	}
	var nilTrace *Trace
	if nilTrace.Spans() != nil || nilTrace.DroppedSpans() != 0 || nilTrace.Parent() != "" {
		t.Fatal("nil trace must read as empty")
	}
	nilTrace.SetParent("p")
	nilTrace.AddResource(ResCacheHits, 1)
	sctx, end = WithSpan(context.Background(), "x") // no trace in context
	AddResource(sctx, ResCacheHits, 1)
	end()
}

func TestObserveExExemplars(t *testing.T) {
	m := NewMetrics()
	lbl := []Label{{Name: "route", Value: "POST /v1/allocate"}}
	m.ObserveEx("h", lbl, 3*time.Millisecond, "t-slow")
	m.ObserveEx("h", lbl, 2500*time.Microsecond, "t-faster") // same bucket, faster: incumbent stays
	m.ObserveEx("h", lbl, 100*time.Millisecond, "t-outlier")
	m.Observe("h", lbl, time.Second) // no trace id: never an exemplar

	snaps := m.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d series", len(snaps))
	}
	ex := snaps[0].Exemplars
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want one per occupied traced bucket", ex)
	}
	byBucket := map[int]Exemplar{}
	for _, e := range ex {
		byBucket[e.Bucket] = e
	}
	if got := byBucket[bucketIndex(3*time.Millisecond)]; got.TraceID != "t-slow" {
		t.Errorf("bucket exemplar = %+v, want the slower t-slow", got)
	}
	if got := byBucket[bucketIndex(100*time.Millisecond)]; got.TraceID != "t-outlier" || got.Seconds < 0.09 {
		t.Errorf("outlier exemplar = %+v", got)
	}
}

func TestMergeSnapshotsKeepsSlowerExemplar(t *testing.T) {
	a := NewMetrics()
	b := NewMetrics()
	lbl := []Label{{Name: "route", Value: "POST /v1/allocate"}}
	a.ObserveEx("h", lbl, 3*time.Millisecond, "t-a")
	b.ObserveEx("h", lbl, 3500*time.Microsecond, "t-b") // same bucket, slower
	b.ObserveEx("h", lbl, time.Second, "t-b-slow")
	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if len(merged) != 1 {
		t.Fatalf("got %d series", len(merged))
	}
	byBucket := map[int]Exemplar{}
	for _, e := range merged[0].Exemplars {
		byBucket[e.Bucket] = e
	}
	if got := byBucket[bucketIndex(3*time.Millisecond)]; got.TraceID != "t-b" {
		t.Errorf("merged bucket kept %+v, want the slower shard's t-b", got)
	}
	if got := byBucket[bucketIndex(time.Second)]; got.TraceID != "t-b-slow" {
		t.Errorf("merge lost the unshared bucket: %+v", merged[0].Exemplars)
	}
}
