package tracestore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"uicwelfare/internal/telemetry"
)

func memStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestTailSamplingKeepReasons(t *testing.T) {
	s := memStore(t, Options{Node: "b0", SampleRate: -1}) // keep nothing fast
	cases := []struct {
		rec  Record
		kept bool
		why  string
	}{
		{Record{TraceID: "t-err", Error: "boom"}, true, KeptError},
		{Record{TraceID: "t-slow", Slow: true}, true, KeptSlow},
		{Record{TraceID: "t-q", Queued: true}, true, KeptQueued},
		{Record{TraceID: "t-fast"}, false, ""},
	}
	for _, c := range cases {
		if got := s.Add(c.rec); got != c.kept {
			t.Errorf("Add(%s) kept = %v, want %v", c.rec.TraceID, got, c.kept)
		}
		if !c.kept {
			continue
		}
		rec, ok := s.Get(c.rec.TraceID)
		if !ok {
			t.Fatalf("kept trace %s not retrievable", c.rec.TraceID)
		}
		if rec.Kept != c.why {
			t.Errorf("%s: kept reason %q, want %q", c.rec.TraceID, rec.Kept, c.why)
		}
		if rec.Node != "b0" {
			t.Errorf("%s: node %q, want stamped b0", c.rec.TraceID, rec.Node)
		}
	}
	st := s.Stats()
	if st.Offered != 4 || st.Kept != 3 || st.SampledOut != 1 {
		t.Errorf("stats = %+v, want offered 4 kept 3 sampled_out 1", st)
	}
	// An error always wins the keep-reason precedence, even when slow.
	s.Add(Record{TraceID: "t-both", Error: "x", Slow: true})
	if rec, _ := s.Get("t-both"); rec.Kept != KeptError {
		t.Errorf("error+slow kept as %q, want %q", rec.Kept, KeptError)
	}
}

func TestSampleAllOverridesRate(t *testing.T) {
	s := memStore(t, Options{SampleAll: true}) // zero SampleRate would keep none
	for i := 0; i < 20; i++ {
		if !s.Add(Record{TraceID: fmt.Sprintf("t%d", i)}) {
			t.Fatal("SampleAll store dropped a fast trace")
		}
	}
	if got := s.Stats().SampledOut; got != 0 {
		t.Errorf("sampled_out = %d, want 0", got)
	}
}

func TestRingEvictionAndCursorPagination(t *testing.T) {
	s := memStore(t, Options{RingSize: 8, SampleAll: true})
	for i := 1; i <= 12; i++ {
		s.Add(Record{TraceID: fmt.Sprintf("t%d", i), Route: "allocate"})
	}
	// Ring keeps the newest 8: seqs 5..12.
	if _, ok := s.Get("t4"); ok {
		t.Error("evicted trace t4 still retrievable from a spill-less store")
	}
	page1, next := s.Traces(Query{Limit: 5})
	if len(page1) != 5 || page1[0].Seq != 5 || next != 9 {
		t.Fatalf("page1: %d records, first seq %d, next %d; want 5, 5, 9", len(page1), page1[0].Seq, next)
	}
	page2, next2 := s.Traces(Query{After: next, Limit: 5})
	if len(page2) != 3 || page2[0].Seq != 10 || next2 != 12 {
		t.Fatalf("page2: %d records, next %d; want 3 records ending the ring at 12", len(page2), next2)
	}
	if page3, next3 := s.Traces(Query{After: next2}); len(page3) != 0 || next3 != next2 {
		t.Errorf("exhausted cursor returned %d records, next %d", len(page3), next3)
	}
	// Summaries strip spans.
	s.Add(Record{TraceID: "sp", Spans: []telemetry.Span{{ID: "a", Stage: "greedy_select"}}})
	recs, _ := s.Traces(Query{After: 12})
	if len(recs) != 1 || recs[0].Spans != nil {
		t.Errorf("Traces leaked span records: %+v", recs)
	}
	if full, ok := s.Get("sp"); !ok || len(full.Spans) != 1 {
		t.Errorf("Get dropped span records: %+v", full)
	}
}

func TestQueryFilters(t *testing.T) {
	s := memStore(t, Options{SampleAll: true})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.Add(Record{TraceID: "a", Route: "allocate", Graph: "g1", Start: base, DurationMS: 5})
	s.Add(Record{TraceID: "b", Route: "warm", Graph: "g1", Start: base.Add(time.Minute), DurationMS: 80})
	s.Add(Record{TraceID: "c", Route: "allocate", Graph: "g2", Start: base.Add(2 * time.Minute), DurationMS: 200})
	check := func(q Query, want ...string) {
		t.Helper()
		recs, _ := s.Traces(q)
		var got []string
		for _, r := range recs {
			got = append(got, r.TraceID)
		}
		if len(got) != len(want) {
			t.Fatalf("query %+v returned %v, want %v", q, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %+v returned %v, want %v", q, got, want)
			}
		}
	}
	check(Query{Route: "allocate"}, "a", "c")
	check(Query{Graph: "g1"}, "a", "b")
	check(Query{MinMS: 50}, "b", "c")
	check(Query{Since: base.Add(90 * time.Second)}, "c")
	check(Query{Route: "allocate", MinMS: 50}, "c")
	// The cursor advances past filtered records too, so pagination never
	// re-examines the ring prefix.
	if _, next := s.Traces(Query{Route: "nope"}); next != 3 {
		t.Errorf("filtered-out query left cursor at %d, want 3", next)
	}
}

func TestSpillRoundtripAndDiskGet(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{
		Node: "b0", RingSize: 4, SampleAll: true,
		Dir: dir, FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		s.Add(Record{
			TraceID:    fmt.Sprintf("t%d", i),
			Route:      "allocate",
			DurationMS: float64(i),
			Spans:      []telemetry.Span{{ID: fmt.Sprintf("s%d", i), Stage: "greedy_select", DurationMS: 1}},
			Resources:  map[string]int64{"rrsets_grown": int64(i)},
		})
	}
	s.Close() // flushes the pending segment

	// t1 aged out of the 4-slot ring but must come back from disk, spans
	// and resources intact.
	rec, ok := s.Get("t1")
	if !ok {
		t.Fatal("spilled trace t1 not found on disk")
	}
	if rec.Seq != 1 || len(rec.Spans) != 1 || rec.Spans[0].ID != "s1" || rec.Resources["rrsets_grown"] != 1 {
		t.Errorf("disk record mangled: %+v", rec)
	}

	// The segment itself reads back whole and in order.
	names, err := filepath.Glob(filepath.Join(dir, "*"+SegmentExt))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments spilled: %v %v", names, err)
	}
	var total int
	for _, name := range names {
		recs, err := ReadSegment(name)
		if err != nil {
			t.Fatalf("ReadSegment(%s): %v", name, err)
		}
		total += len(recs)
	}
	if total != 10 {
		t.Errorf("segments hold %d records, want 10", total)
	}

	// Corruption is detected, not silently decoded.
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a checksum bit
	bad := filepath.Join(dir, "corrupt"+SegmentExt)
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(bad); err == nil {
		t.Error("corrupt segment decoded without error")
	}
}

func TestSegmentByteBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{
		SampleAll: true, Dir: dir,
		SegmentBytes: 512, MaxBytes: 2048,
		FlushInterval: time.Hour, // only size-triggered seals
	})
	if err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, 256)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < 64; i++ {
		s.Add(Record{TraceID: fmt.Sprintf("t%d", i), Route: string(pad)})
	}
	s.Close()
	var total int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		info, err := e.Info()
		if err == nil {
			total += info.Size()
		}
	}
	// Budget plus at most one segment of slack (enforcement runs after
	// each seal).
	if total > 2048+1024 {
		t.Errorf("trace dir holds %d bytes, budget 2048", total)
	}
	if s.Stats().Segments < 2 {
		t.Errorf("expected multiple sealed segments, got %d", s.Stats().Segments)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if s.Add(Record{TraceID: "x"}) {
		t.Error("nil store kept a record")
	}
	if recs, next := s.Traces(Query{After: 7}); recs != nil || next != 7 {
		t.Error("nil store returned records")
	}
	if _, ok := s.Get("x"); ok {
		t.Error("nil store resolved a trace")
	}
	if s.LastSeq() != 0 || s.Stats() != (Stats{}) {
		t.Error("nil store reported state")
	}
	s.Close()
}
