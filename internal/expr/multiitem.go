package expr

import (
	"context"
	"fmt"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// MultiItemAlgos lists the algorithms compared beyond two items (RR-SIM+
// and RR-CIM cannot go there, as the paper stresses), by their registry
// names.
var MultiItemAlgos = []string{core.AlgoBundleGRD, core.AlgoItemDisjoint, core.AlgoBundleDisjoint}

// MultiItemConfig builds the Table 4 model for configuration 5-8 with k
// items, plus the budget vector for a given total budget. Configurations
// 5 and 8 split the total uniformly; 6 and 7 give the max-budget item 20%
// and the min-budget item 2% (core item = max for 6, min for 7), with the
// rest split evenly.
func MultiItemConfig(cfg, k, totalBudget int, seed uint64) (*utility.Model, []int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("expr: need at least 1 item")
	}
	uniform := func() []int {
		per := totalBudget / k
		if per < 1 {
			per = 1
		}
		b := make([]int, k)
		for i := range b {
			b[i] = per
		}
		return b
	}
	skewed := func() []int {
		b := make([]int, k)
		if k == 1 {
			b[0] = totalBudget
			return b
		}
		b[0] = totalBudget * 20 / 100
		b[k-1] = totalBudget * 2 / 100
		if b[0] < 1 {
			b[0] = 1
		}
		if b[k-1] < 1 {
			b[k-1] = 1
		}
		rest := totalBudget - b[0] - b[k-1]
		if k > 2 {
			per := rest / (k - 2)
			if per < 1 {
				per = 1
			}
			for i := 1; i < k-1; i++ {
				b[i] = per
			}
		}
		return b
	}
	switch cfg {
	case 5:
		return utility.Config5(k), uniform(), nil
	case 6:
		// core item = maximum-budget item (index 0 after skew)
		return utility.ConfigCone(k, 0), skewed(), nil
	case 7:
		// core item = minimum-budget item (index k-1)
		return utility.ConfigCone(k, k-1), skewed(), nil
	case 8:
		return utility.Config8(k, stats.NewRNG(seed^0xc0f18)), uniform(), nil
	}
	return nil, nil, fmt.Errorf("expr: multi-item configuration %d out of range 5-8", cfg)
}

// MultiItemRow is one point of Fig. 7 or Fig. 8a.
type MultiItemRow struct {
	Config      int
	TotalBudget int
	Items       int
	Algorithm   string
	Welfare     float64
	WelfareSE   float64
	Millis      float64
}

// runMultiItemAlgo dispatches a named multi-item algorithm through the
// core planner registry.
func runMultiItemAlgo(name string, prob *core.Problem, p Params, rng *stats.RNG) core.Result {
	res, err := core.Plan(context.Background(), name, prob, core.Options{Eps: p.Eps, Ell: p.Ell}, rng)
	if err != nil {
		panic("expr: " + err.Error()) // unknown name or registry misuse; ctx never cancels
	}
	return res
}

// Fig7 reproduces the multi-item welfare comparison: configuration cfg
// (5-8) with `items` items on the Twitter stand-in, sweeping the total
// budget 100..500 in steps of 100 (scaled).
func Fig7(cfg, items int, p Params) ([]MultiItemRow, error) {
	p = p.withDefaults()
	spec, _ := NetworkByName("twitter")
	g := spec.Generate(p.Scale, p.Seed)
	bscale := p.Scale
	if bscale > 1 {
		bscale = 1
	}
	var rows []MultiItemRow
	for total := 100; total <= 500; total += 100 {
		scaled := int(float64(total) * bscale)
		if scaled < items {
			scaled = items
		}
		m, budgets, err := MultiItemConfig(cfg, items, scaled, p.Seed)
		if err != nil {
			return nil, err
		}
		prob := core.MustProblem(g, m, budgets)
		for _, algo := range MultiItemAlgos {
			res := runMultiItemAlgo(algo, prob, p, stats.NewRNG(p.Seed+uint64(total)))
			est := uic.NewSimulator(g, m).EstimateWelfare(res.Alloc, stats.NewRNG(p.Seed+7), p.Runs)
			rows = append(rows, MultiItemRow{
				Config: cfg, TotalBudget: scaled, Items: items, Algorithm: algo,
				Welfare: est.Mean, WelfareSE: est.StdErr,
			})
		}
	}
	return rows, nil
}

// Fig8a reproduces the items-vs-running-time study: configuration 5 with
// per-item budget 50 (scaled), varying the number of items 1..maxItems.
func Fig8a(maxItems int, p Params) ([]MultiItemRow, error) {
	p = p.withDefaults()
	if maxItems < 1 {
		maxItems = 10
	}
	spec, _ := NetworkByName("twitter")
	g := spec.Generate(p.Scale, p.Seed)
	bscale := p.Scale
	if bscale > 1 {
		bscale = 1
	}
	per := int(50 * bscale)
	if per < 1 {
		per = 1
	}
	var rows []MultiItemRow
	for items := 1; items <= maxItems; items++ {
		m := utility.Config5(items)
		budgets := make([]int, items)
		for i := range budgets {
			budgets[i] = per
		}
		prob := core.MustProblem(g, m, budgets)
		for _, algo := range MultiItemAlgos {
			start := time.Now()
			runMultiItemAlgo(algo, prob, p, stats.NewRNG(p.Seed+uint64(items)))
			rows = append(rows, MultiItemRow{
				Config: 5, Items: items, TotalBudget: per * items, Algorithm: algo,
				Millis: float64(time.Since(start).Microseconds()) / 1000.0,
			})
		}
	}
	return rows, nil
}
