package utility

import (
	"testing"
	"testing/quick"

	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

// Property: for supermodular utilities, Adopt is monotone in the desire
// set — more exposure never yields a smaller adoption (the engine behind
// Theorem 1's monotonicity).
func TestQuickAdoptMonotoneInDesire(t *testing.T) {
	f := func(seed uint64, dRaw, eRaw uint8) bool {
		rng := stats.NewRNG(seed)
		m := Config8(4, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		d := itemset.Set(dRaw % 16)
		e := d.Union(itemset.Set(eRaw % 16))
		a1 := Adopt(util, d, itemset.Empty)
		a2 := Adopt(util, e, itemset.Empty)
		return a1.SubsetOf(a2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: under supermodular utility, Adopt's result never depends on
// the adoption history — Adopt(R, A) equals Adopt(R, ∅) whenever A is a
// previously adopted (local-maximum) set inside R. This is the argument
// that makes the diffusion's fixed point schedule-independent.
func TestQuickAdoptHistoryFreeSupermodular(t *testing.T) {
	f := func(seed uint64, dRaw, sRaw uint8) bool {
		rng := stats.NewRNG(seed)
		m := Config8(4, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		desire := itemset.Set(dRaw % 16)
		sub := desire.Intersect(itemset.Set(sRaw % 16))
		prior := Adopt(util, sub, itemset.Empty)
		return Adopt(util, desire, prior) == Adopt(util, desire, itemset.Empty)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: BestSet is a local maximum and dominates every other set.
func TestQuickBestSetDominates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		best := BestSet(util)
		if !IsLocalMaximum(util, best) {
			return false
		}
		for s := range util {
			if util[s] > util[best] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the utility table DP agrees with direct evaluation for every
// set under random noise worlds.
func TestQuickUtilityTableDP(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := Config8(5, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		for s := itemset.Set(0); int(s) < len(util); s++ {
			want := m.UtilityIn(noise, s)
			diff := util[s] - want
			if diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: supermodularity survives adding modular terms (additive price
// and noise), the fact §4.1.1 uses to conclude U_W is supermodular.
func TestQuickSupermodularPlusModular(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		m := Config8(4, rng)
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		// wrap the utility table as a valuation shifted to U(∅)=0 (it is)
		tv := &TableValuation{k: 4, vals: util}
		return IsSupermodular(tv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the GAP parameters of any two-item supermodular model are
// mutually complementary (q_{i|j} >= q_{i|∅}).
func TestQuickGAPComplementary(t *testing.T) {
	f := func(p1Raw, p2Raw, boostRaw uint8) bool {
		p1 := 1 + float64(p1Raw%50)/10
		p2 := 1 + float64(p2Raw%50)/10
		v1, v2 := p1, p2 // neutral singletons
		v12 := v1 + v2 + 0.1 + float64(boostRaw%40)/10
		m := TwoItem(p1, p2, v1, v2, v12, 1, 1)
		gap, err := GAPFromModel(m)
		if err != nil {
			return false
		}
		return gap.MutuallyComplementary()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
