package core

import (
	"context"
	"fmt"
	"sync"

	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
)

// Canonical algorithm names — the registry keys. The service DTOs, the
// CLI flags, and the experiment drivers all spell algorithm names
// through these constants so they cannot drift.
const (
	AlgoBundleGRD      = "bundleGRD"
	AlgoItemDisjoint   = "item-disj"
	AlgoBundleDisjoint = "bundle-disj"

	// DefaultAlgorithm is what an empty algorithm name resolves to.
	DefaultAlgorithm = AlgoBundleGRD
)

// Cascade support labels used in Meta.Cascades.
const (
	CascadeNameIC = "ic"
	CascadeNameLT = "lt"
)

// CostEstimator predicts the approximate resident bytes of the sketch
// work a request would trigger — the same accounting store.SketchCost
// applies to a built sketch (8 bytes per RR membership plus 8 per RR
// set) evaluated on the sampling bounds instead of on a finished
// collection. It is the pricing seam of the service's admission control:
// the daemon calls it with the graph's node and edge counts, the
// resolved ε and ℓ (defaults already applied), and the request's raw
// budget vector, and compares the (calibrated) prediction against its
// admission budget before queueing the request. Estimates derive from
// the worst-case phase-2 bound λ*/k, so they overshoot real builds by a
// roughly constant factor — the service corrects the bias with
// store.CostModel, which tracks the observed predicted-to-actual ratio.
type CostEstimator func(nodes, edges int, eps, ell float64, budgets []int) int64

// Meta describes a registered planner: its registry name and the
// capability flags GET /v1/algorithms reports.
type Meta struct {
	// Name is the registry key (set by Register).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// SketchFamily names the reusable RR-sketch kind the planner
	// consumes ("prima", "imm"); empty when the planner cannot separate
	// sketch construction from selection (and so cannot use a sketch
	// cache).
	SketchFamily string
	// Cascades lists the diffusion models the planner supports.
	Cascades []string
	// CostEstimator, when non-nil, prices a request's sketch work for
	// admission control. Planners without one are unpriceable and bypass
	// admission.
	CostEstimator CostEstimator
}

// SketchCacheable reports whether the planner's dominant cost is a
// reusable sketch a cache can amortize.
func (m Meta) SketchCacheable() bool { return m.SketchFamily != "" }

// Planner is one allocation algorithm behind the uniform context-aware
// call convention. Plan must honor ctx cancellation (returning ctx.Err()
// promptly) and report through opts.Progress when set.
type Planner interface {
	Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error)
}

// SketchPlanner is the optional capability of planners whose dominant
// cost is building one immutable RR sketch: the service's sketch cache
// splits Plan into BuildSketch (cached, shared read-only across
// goroutines) and PlanFromSketch (cheap, per request).
type SketchPlanner interface {
	Planner
	// SketchBudgets returns the canonical budget vector identifying the
	// sketch Plan would build for p — cache-key material alongside
	// Meta.SketchFamily.
	SketchBudgets(p *Problem) []int
	// BuildSketch builds the reusable sketch (a *prima.Sketch or
	// *imm.Sketch, typed as any to keep the registry family-agnostic).
	BuildSketch(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (any, error)
	// PlanFromSketch runs selection and assignment on a prebuilt sketch.
	// It only reads the sketch, so one cached sketch can serve many
	// concurrent calls.
	PlanFromSketch(p *Problem, sketch any) (Result, error)
}

// ProgressiveSketchPlanner is the optional capability of sketch
// planners whose selection can report the incremental seed prefix as
// the greedy ordering grows: PlanFromSketchProgress is PlanFromSketch
// with a progress callback receiving StageSelect events whose
// SeedPrefix is the ordering committed so far. The welmaxd job stream
// forwards these to SSE subscribers so clients can render a partial
// allocation before the job finishes.
type ProgressiveSketchPlanner interface {
	SketchPlanner
	PlanFromSketchProgress(p *Problem, sketch any, report progress.Func) (Result, error)
}

// BatchSketchPlanner is the optional capability of sketch planners
// whose sketch, built for one budget vector, serves every request whose
// budgets that vector dominates — the property welmaxd's batch
// scheduler exploits to coalesce concurrent mixed-budget requests onto
// one build. Both RR-sketch families qualify: PRIMA's prefix-preserving
// guarantee covers every budget in the vector it was sized for, and an
// IMM greedy ordering selected for k is prefix-consistent for any
// k' ≤ k.
type BatchSketchPlanner interface {
	SketchPlanner
	// MergeBudgets merges two canonical sketch-budget vectors (the form
	// SketchBudgets returns) into the canonical vector whose sketch
	// serves any request served by either. It must be commutative,
	// associative, and idempotent; the batch scheduler folds a whole
	// gather window's budgets through it.
	MergeBudgets(a, b []int) []int
	// BuildSketchForBudgets builds the family sketch sized for an
	// explicit canonical budget vector on p's graph — p's own budgets
	// are ignored, which is what lets a batch build dominate several
	// requests at once.
	BuildSketchForBudgets(ctx context.Context, p *Problem, budgets []int, opts Options, rng *stats.RNG) (any, error)
}

// ExtendSketchPlanner is the optional capability of batch planners
// whose resident sketch can grow into a larger one instead of being
// rebuilt: both RR-sketch families append i.i.d. RR sets to a cloned
// collection and re-run selection, so a sketch built for budgets b
// becomes one serving MergeBudgets(b, b') at the marginal sampling
// cost. The service's batched path uses it as a delta-build when a
// near-dominating sketch is already resident.
type ExtendSketchPlanner interface {
	BatchSketchPlanner
	// ExtendSketch grows sketch — resident, built for oldBudgets under
	// the same (graph, family, cascade, ε, ℓ) group — into one serving
	// newBudgets. The input sketch is never mutated (growth happens on
	// a clone), so concurrent readers of the resident sketch are safe.
	// Sketches with no collection to append to (degenerate whole-graph
	// builds) return an error; callers fall back to a cold build.
	ExtendSketch(ctx context.Context, p *Problem, sketch any, oldBudgets, newBudgets []int, opts Options, rng *stats.RNG) (any, error)
}

// Factory builds a fresh planner instance. Lookup invokes it per
// resolution, so stateful planners get one instance per run; Register
// additionally probes it once at registration time to validate the
// SketchPlanner capability against the declared meta.
type Factory func() Planner

type registration struct {
	meta    Meta
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]registration{}
	regOrder []string
)

// Register adds a planner under name. The built-in algorithms
// self-register at package init; extensions (alternative objectives,
// fairness variants, test doubles) register the same way. It panics on
// an empty name, a duplicate, a nil factory, or a sketch-capable planner
// whose meta does not name its sketch family — registration bugs, not
// runtime conditions.
func Register(name string, meta Meta, factory Factory) {
	if name == "" {
		panic("core: Register with empty algorithm name")
	}
	if factory == nil {
		panic("core: Register " + name + " with nil factory")
	}
	if _, ok := factory().(SketchPlanner); ok && meta.SketchFamily == "" {
		panic("core: Register " + name + ": SketchPlanner without a SketchFamily")
	}
	meta.Name = name
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("core: duplicate algorithm registration " + name)
	}
	registry[name] = registration{meta: meta, factory: factory}
	regOrder = append(regOrder, name)
}

// Lookup resolves an algorithm name (empty resolves to
// DefaultAlgorithm) to a fresh planner instance and its metadata.
func Lookup(name string) (Planner, Meta, error) {
	if name == "" {
		name = DefaultAlgorithm
	}
	regMu.RLock()
	reg, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, Meta{}, fmt.Errorf("core: unknown algorithm %q (have %v)", name, Names())
	}
	return reg.factory(), reg.meta, nil
}

// Plan runs the named algorithm through the registry — the one dispatch
// seam shared by the service, the CLIs, and the experiment drivers.
func Plan(ctx context.Context, name string, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	planner, _, err := Lookup(name)
	if err != nil {
		return Result{}, err
	}
	return planner.Plan(ctx, p, opts, rng)
}

// Algorithms lists the registered planners' metadata in registration
// order (built-ins first, in the paper's order).
func Algorithms() []Meta {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Meta, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name].meta)
	}
	return out
}

// Names lists the registered algorithm names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}
