package service

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"uicwelfare/internal/expr"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/store"
)

// Registry keeps graphs resident in memory so queries skip the
// load-and-parse cost of the one-shot CLIs. Graphs are immutable once
// registered and are shared read-only by all jobs.
//
// Ids are content addresses: store.GraphID hashes the canonical edge
// list, so registering the same graph twice — in one process or across
// daemon restarts — resolves to the same id. Duplicate registrations
// dedupe to the existing entry instead of consuming a second residency
// slot, and clients can cache graph ids across restarts.
//
// Residency is bounded: past the limit, registration of a *new* graph
// fails until one is deleted (graphs are whole working sets, so silent
// LRU eviction under a client's feet would be worse than an explicit
// error). Deduped registrations always succeed.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*GraphEntry
	limit  int
}

// GraphEntry is one resident graph.
type GraphEntry struct {
	ID    string
	Name  string
	Graph *graph.Graph
}

// Info returns the wire description of the entry.
func (e *GraphEntry) Info() GraphInfo {
	return GraphInfo{ID: e.ID, Name: e.Name, Nodes: e.Graph.N(), Edges: e.Graph.M()}
}

// NewRegistry returns an empty registry holding at most limit graphs
// (default 64 if limit <= 0).
func NewRegistry(limit int) *Registry {
	if limit <= 0 {
		limit = 64
	}
	return &Registry{graphs: map[string]*GraphEntry{}, limit: limit}
}

// Add registers a graph under its content-addressed id. Registering a
// graph whose content is already resident returns the existing entry
// with existed = true (the first registration's name wins). It fails
// only when the graph is genuinely new and the registry is full.
func (r *Registry) Add(name string, g *graph.Graph) (entry *GraphEntry, existed bool, err error) {
	return r.AddWithID(store.GraphID(g), name, g)
}

// AddWithID is Add with the content address already computed — the boot
// re-index path uses it so each persisted graph is hashed once (by
// store.LoadGraphs), not twice. id must be store.GraphID(g); nothing
// else may mint ids.
func (r *Registry) AddWithID(id, name string, g *graph.Graph) (entry *GraphEntry, existed bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.graphs[id]; ok {
		return e, true, nil
	}
	if len(r.graphs) >= r.limit {
		return nil, false, fmt.Errorf("graph registry full (%d graphs); DELETE /v1/graphs/{id} to free one", r.limit)
	}
	e := &GraphEntry{ID: id, Name: name, Graph: g}
	r.graphs[e.ID] = e
	return e, false, nil
}

// Delete removes the entry with the given id, reporting whether it
// existed. Jobs already running against the graph keep their reference;
// the memory is reclaimed when they finish.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[id]; !ok {
		return false
	}
	delete(r.graphs, id)
	return true
}

// Get returns the entry with the given id.
func (r *Registry) Get(id string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[id]
	return e, ok
}

// List returns all entries ordered by id.
func (r *Registry) List() []*GraphEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*GraphEntry, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of resident graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.graphs)
}

// LoadGraph materializes the graph described by a GraphRequest.
func LoadGraph(req *GraphRequest) (name string, g *graph.Graph, err error) {
	sources := 0
	for _, set := range []bool{req.Network != "", req.Edges != "", req.Path != "", len(req.Wmg) > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return "", nil, fmt.Errorf("exactly one of network, edges, path, wmg required")
	}
	directed := true
	if req.Directed != nil {
		directed = *req.Directed
	}
	switch {
	case req.Network != "":
		// The spec lookup is only for the size precheck; generation goes
		// through the shared error-returning path (the one
		// welfare.GenerateNetworkE wraps) so an unknown name stays a
		// 400, never a panic.
		spec, err := expr.NetworkByName(req.Network)
		if err != nil {
			return "", nil, err
		}
		scale := req.Scale
		if scale <= 0 {
			scale = 1.0
		}
		if n := float64(spec.DefaultNodes) * scale; n > MaxGraphNodes {
			return "", nil, fmt.Errorf("scale %g yields %.0f nodes, over the limit of %d", scale, n, MaxGraphNodes)
		}
		name = req.Network
		g, err = expr.GenerateByName(req.Network, scale, req.Seed)
		if err != nil {
			return "", nil, err
		}
	case req.Edges != "":
		name = "inline"
		g, err = graph.ReadEdgeList(strings.NewReader(req.Edges), !directed)
		if err != nil {
			return "", nil, err
		}
		if !req.KeepProbs {
			g = g.WeightedCascade()
		}
	case len(req.Wmg) > 0:
		// Inline binary upload: probabilities are authoritative, exactly
		// like a .wmg path load, and the embedded name label is the
		// default.
		name, g, err = store.DecodeGraph(bytes.NewReader(req.Wmg))
		if err != nil {
			return "", nil, err
		}
	default:
		name = req.Path
		var binary bool
		g, binary, err = store.LoadGraphFile(req.Path, !directed)
		if err != nil {
			return "", nil, err
		}
		// Binary .wmg files carry authoritative probabilities; only text
		// edge lists get the weighted-cascade reset.
		if !binary && !req.KeepProbs {
			g = g.WeightedCascade()
		}
	}
	if req.Name != "" {
		name = req.Name
	}
	return name, g, nil
}
