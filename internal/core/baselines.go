package core

import (
	"context"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
)

// ItemDisjoint is the item-disj baseline of §4.3.1.2: select Σ_i b_i
// seeds with one IMM call, then walk items in non-increasing budget
// order, assigning each item the next b_i unused nodes. Every seed node
// carries exactly one item, so the baseline cannot exploit
// supermodularity at the seeds — it relies purely on propagation.
//
// Deprecated: use Plan(ctx, AlgoItemDisjoint, ...) or the registered
// planner, which add cancellation and progress reporting. This wrapper
// delegates with a background context.
func ItemDisjoint(p *Problem, opts Options, rng *stats.RNG) Result {
	res, _ := itemDisjointPlanner{}.Plan(context.Background(), p, opts, rng) // background ctx: never canceled
	return res
}

// ItemDisjointFromSketch runs the item-disj assignment on a prebuilt IMM
// sketch (built for this problem's graph with k = Σ_i b_i). The sketch
// is only read, so one cached sketch can serve many concurrent
// allocations.
func ItemDisjointFromSketch(p *Problem, sk *imm.Sketch) Result {
	return ItemDisjointFromSketchProgress(p, sk, nil)
}

// ItemDisjointFromSketchProgress is ItemDisjointFromSketch with
// incremental seed-prefix reporting: report (when non-nil) receives
// StageSelect events carrying the ordering committed so far as the
// greedy selection runs.
func ItemDisjointFromSketchProgress(p *Problem, sk *imm.Sketch, report progress.Func) Result {
	alloc := uic.NewAllocation(p.K())
	if p.TotalBudget() == 0 {
		return Result{Alloc: alloc}
	}
	res := sk.SelectReport(seedReporter(report, sk.K))
	pool := res.Seeds
	pos := 0
	for _, i := range p.BudgetOrder() {
		for n := 0; n < p.Budgets[i] && pos < len(pool); n++ {
			alloc.Assign(pool[pos], i)
			pos++
		}
	}
	return Result{
		Alloc:          alloc,
		NumRRSets:      res.NumRRSets,
		TotalRRSets:    res.TotalRRSets,
		IMMInvocations: 1,
	}
}

// bundleDisjBundle is one bundle found by BundleDisjoint: an itemset with
// non-negative deterministic utility and the fresh seed nodes assigned to
// it.
type bundleDisjBundle struct {
	items itemset.Set
	seeds []graph.NodeID
}

// BundleDisjoint is the bundle-disj baseline of §4.3.1.2: repeatedly find
// the minimum-sized itemset with non-negative deterministic utility among
// the remaining budgets, allocate it to a fresh set of min-budget seed
// nodes (a new IMM selection each time), deduct budgets, and finally
// recycle surplus budgets onto existing bundles (or fresh IMM seeds).
// It exploits supermodularity through bundling but pays for repeated IMM
// invocations and cannot interleave budgets the way the prefix ordering
// does.
//
// Deprecated: use Plan(ctx, AlgoBundleDisjoint, ...) or
// BundleDisjointCtx, which add cancellation and progress reporting.
// This wrapper delegates with a background context.
func BundleDisjoint(p *Problem, opts Options, rng *stats.RNG) Result {
	res, _ := BundleDisjointCtx(context.Background(), p, opts, rng) // background ctx: never canceled
	return res
}

// BundleDisjointCtx is BundleDisjoint with cooperative cancellation and
// progress reporting: each of the adaptive sequence of IMM selections
// checks ctx while sampling, so a canceled context stops the run
// promptly with ctx.Err().
func BundleDisjointCtx(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	k := p.K()
	alloc := uic.NewAllocation(k)
	remaining := make([]int, k)
	copy(remaining, p.Budgets)

	immOpts := immOptions(opts)
	var (
		bundles  []bundleDisjBundle
		used     = map[graph.NodeID]bool{}
		usedList []graph.NodeID
		rrSets   int
		rrTotal  int
		immCalls int
	)

	// freshSeeds returns `want` highest-ranked nodes not used by earlier
	// bundles, running IMM with an enlarged budget to skip used ones.
	freshSeeds := func(want int) ([]graph.NodeID, error) {
		if want <= 0 {
			return nil, nil
		}
		need := want + len(usedList)
		if need > p.G.N() {
			need = p.G.N()
		}
		res, err := imm.RunCtx(ctx, p.G, need, immOpts, rng)
		if err != nil {
			return nil, err
		}
		immCalls++
		rrSets += res.NumRRSets
		rrTotal += res.TotalRRSets
		var out []graph.NodeID
		for _, v := range res.Seeds {
			if used[v] {
				continue
			}
			out = append(out, v)
			if len(out) == want {
				break
			}
		}
		for _, v := range out {
			used[v] = true
			usedList = append(usedList, v)
		}
		return out, nil
	}

	// Phase 1: carve out bundles while a non-negative-utility itemset
	// exists among items with remaining budget.
	for {
		b := minimalNonNegativeBundle(p, remaining)
		if b.IsEmpty() {
			break
		}
		bb := -1
		for _, i := range b.Items() {
			if bb < 0 || remaining[i] < bb {
				bb = remaining[i]
			}
		}
		seeds, err := freshSeeds(bb)
		if err != nil {
			return Result{}, err
		}
		for _, i := range b.Items() {
			for _, v := range seeds {
				alloc.Assign(v, i)
			}
			remaining[i] -= len(seeds)
		}
		bundles = append(bundles, bundleDisjBundle{items: b, seeds: seeds})
		if len(seeds) == 0 {
			break // graph exhausted
		}
	}

	// Phase 2: recycle surplus budgets onto existing bundles that do not
	// contain the item, then fall back to fresh IMM seeds.
	for _, i := range p.BudgetOrder() {
		for _, b := range bundles {
			if remaining[i] == 0 {
				break
			}
			if b.items.Has(i) {
				continue
			}
			take := remaining[i]
			if take > len(b.seeds) {
				take = len(b.seeds)
			}
			for _, v := range b.seeds[:take] {
				alloc.Assign(v, i)
			}
			remaining[i] -= take
		}
		if remaining[i] > 0 {
			seeds, err := freshSeeds(remaining[i])
			if err != nil {
				return Result{}, err
			}
			for _, v := range seeds {
				alloc.Assign(v, i)
			}
			remaining[i] -= len(seeds)
		}
	}

	return Result{
		Alloc:          alloc,
		NumRRSets:      rrSets,
		TotalRRSets:    rrTotal,
		IMMInvocations: immCalls,
	}, nil
}

// minimalNonNegativeBundle returns the smallest itemset (ties broken by
// precedence order, i.e. numeric mask order with items pre-sorted by
// budget) with non-negative deterministic utility among items that still
// have budget. Returns the empty set if none exists.
func minimalNonNegativeBundle(p *Problem, remaining []int) itemset.Set {
	// candidate items in non-increasing budget order
	var avail []int
	for _, i := range p.BudgetOrder() {
		if remaining[i] > 0 {
			avail = append(avail, i)
		}
	}
	kk := len(avail)
	best := itemset.Empty
	bestSize := 0
	for mask := 1; mask < 1<<uint(kk); mask++ {
		var s itemset.Set
		for j := 0; j < kk; j++ {
			if mask&(1<<uint(j)) != 0 {
				s = s.Add(avail[j])
			}
		}
		if p.Model.DetUtility(s) >= 0 {
			if best.IsEmpty() || s.Size() < bestSize {
				best, bestSize = s, s.Size()
			}
		}
	}
	return best
}
