package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/expr"
	"uicwelfare/internal/service"
	"uicwelfare/internal/sweep"
)

// runRemote drives the paper's mini evaluation grid through a running
// welmaxd (or a cluster router — the API is identical) instead of
// in-process: register the stand-in networks, POST the grid as one
// /v1/sweeps request, follow per-cell progress over the sweep's SSE
// stream, and print the per-cell rows plus the grouped welfare
// aggregates from /v1/sweeps/{id}/results. Against a router, the job-id
// prefixes in the output show which shard ran each cell.
func runRemote(base string, p expr.Params, items int) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	networks := []string{"flixster", "douban-book"}
	graphIDs := make([]string, 0, len(networks))
	for _, net := range networks {
		body, _ := json.Marshal(service.GraphRequest{Network: net, Scale: p.Scale, Seed: p.Seed})
		resp, err := client.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("register %s: %w", net, err)
		}
		raw, _ := readBody(resp)
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("register %s: status %d: %s", net, resp.StatusCode, raw)
		}
		var info service.GraphInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return fmt.Errorf("register %s: %w", net, err)
		}
		fmt.Printf("registered %s as %s (%d nodes, %d edges)\n", net, info.ID, info.Nodes, info.Edges)
		graphIDs = append(graphIDs, info.ID)
	}

	spec := sweep.Spec{
		Name:     "experiments-mini",
		GraphIDs: graphIDs,
		Configs:  []string{"config1", "config3"},
		Budgets:  [][]int{{25, 25}, {50, 50}},
		Algos:    []string{core.AlgoBundleGRD, core.AlgoItemDisjoint},
		Runs:     p.Runs,
		Seed:     p.Seed,
	}
	body, _ := json.Marshal(spec)
	resp, err := client.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("create sweep: %w", err)
	}
	raw, _ := readBody(resp)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("create sweep: status %d: %s", resp.StatusCode, raw)
	}
	var accepted struct {
		SweepID string `json:"sweep_id"`
		Cells   int    `json:"cells"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(raw, &accepted); err != nil {
		return fmt.Errorf("create sweep: %w", err)
	}
	fmt.Printf("sweep %s accepted: %d cells (trace %s)\n", accepted.SweepID, accepted.Cells, accepted.TraceID)

	if err := followSweep(base, accepted.SweepID); err != nil {
		return err
	}
	return printSweepResults(client, base, accepted.SweepID)
}

// followSweep tails the sweep's SSE stream, printing one line per cell
// state change, until the terminal event closes the stream.
func followSweep(base, sweepID string) error {
	// No client timeout here: the stream lives until the sweep ends.
	resp, err := (&http.Client{}).Get(base + "/v1/sweeps/" + sweepID + "/events")
	if err != nil {
		return fmt.Errorf("sweep events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sweep events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	eventType := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev service.JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				continue
			}
			switch {
			case ev.Cell != "":
				line := fmt.Sprintf("  cell %-5s %-8s", ev.Cell, ev.CellState)
				if ev.Node != "" {
					line += " node=" + ev.Node
				}
				if ev.CellJob != "" {
					line += " job=" + ev.CellJob
				}
				if ev.Total > 0 && ev.CellState != string(service.JobRunning) {
					line += fmt.Sprintf(" (%d/%d)", ev.Done, ev.Total)
				}
				fmt.Println(line)
			case eventType != "progress":
				fmt.Printf("sweep %s: %s\n", sweepID, eventType)
				if ev.Error != "" {
					fmt.Printf("  error: %s\n", ev.Error)
				}
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sweep events: %w", err)
	}
	return nil
}

// printSweepResults fetches the finished sweep's rows and grouped
// aggregates and renders them as the usual experiment tables.
func printSweepResults(client *http.Client, base, sweepID string) error {
	resp, err := client.Get(base + "/v1/sweeps/" + sweepID + "/results?group_by=graph,config,algo")
	if err != nil {
		return fmt.Errorf("sweep results: %w", err)
	}
	raw, _ := readBody(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sweep results: status %d: %s", resp.StatusCode, raw)
	}
	var res sweep.ResultsResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		return fmt.Errorf("sweep results: %w", err)
	}

	fmt.Printf("== sweep %s: per-cell results (artifact %s) ==\n", sweepID, res.ArtifactID)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cell\tgraph\tconfig\tbudgets\talgorithm\tstate\tnode\tjob\twelfare\t±95%\tms")
	for _, c := range res.Cells {
		budgets := make([]string, len(c.Budgets))
		for i, b := range c.Budgets {
			budgets[i] = fmt.Sprint(b)
		}
		welfare, ci := "-", "-"
		if c.HasWelfare {
			welfare = fmt.Sprintf("%.1f", c.WelfareMean)
			ci = fmt.Sprintf("%.1f", 1.96*c.WelfareStdErr)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\n",
			c.CellID, c.GraphID, c.Config, strings.Join(budgets, ","), c.Algo,
			c.State, c.Node, c.JobID, welfare, ci, c.ElapsedMS)
	}
	w.Flush()

	fmt.Println("== grouped welfare (graph × config × algorithm) ==")
	fmt.Fprintln(w, "graph\tconfig\talgorithm\tcells\tmean\tmin\tmax")
	for _, g := range res.Groups {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.1f\n",
			g.Key["graph"], g.Key["config"], g.Key["algo"], g.Cells,
			g.WelfareMean, g.WelfareMin, g.WelfareMax)
	}
	w.Flush()

	states := make([]string, 0, len(res.Counts))
	for s := range res.Counts {
		states = append(states, s)
	}
	sort.Strings(states)
	parts := make([]string, 0, len(states))
	for _, s := range states {
		parts = append(parts, fmt.Sprintf("%s=%d", s, res.Counts[s]))
	}
	fmt.Printf("cells: %s\n", strings.Join(parts, " "))
	if res.Counts[string(service.JobFailed)] > 0 {
		return fmt.Errorf("%d cells failed", res.Counts[string(service.JobFailed)])
	}
	return nil
}

func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
