package cluster_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
	"uicwelfare/internal/store"
	"uicwelfare/internal/sweep"
)

// sweepView is the router's sweep job snapshot with a typed summary.
type sweepView struct {
	ID     string           `json:"id"`
	Kind   string           `json:"kind"`
	State  service.JobState `json:"state"`
	Error  string           `json:"error"`
	Result *sweep.Summary   `json:"result"`
}

func (c *client) createSweep(spec sweep.Spec) string {
	c.t.Helper()
	var out struct {
		SweepID string `json:"sweep_id"`
		Cells   int    `json:"cells"`
	}
	c.doJSON("POST", "/v1/sweeps", spec, &out, http.StatusAccepted)
	if out.SweepID == "" {
		c.t.Fatal("no sweep id")
	}
	return out.SweepID
}

func (c *client) waitSweep(id string, timeout time.Duration) sweepView {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var view sweepView
		c.doJSON("GET", "/v1/sweeps/"+id, nil, &view, http.StatusOK)
		if view.State.Terminal() {
			return view
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("sweep %s did not finish", id)
	return sweepView{}
}

// eventLog accumulates a sweep's SSE events from a live subscriber.
type eventLog struct {
	mu     sync.Mutex
	events []service.JobEvent
	closed bool
}

func (l *eventLog) snapshot() []service.JobEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]service.JobEvent(nil), l.events...)
}

func (l *eventLog) done() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// followSweep subscribes to the sweep's SSE stream on a background
// goroutine, accumulating events until the terminal frame.
func (c *client) followSweep(id string) *eventLog {
	c.t.Helper()
	resp, err := http.Get(c.base + "/v1/sweeps/" + id + "/events")
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		c.t.Fatalf("sweep events: status %d", resp.StatusCode)
	}
	log := &eventLog{}
	go func() {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var ev service.JobEvent
			if json.Unmarshal([]byte(line), &ev) != nil {
				continue
			}
			log.mu.Lock()
			log.events = append(log.events, ev)
			if ev.Terminal() {
				log.closed = true
			}
			log.mu.Unlock()
		}
		log.mu.Lock()
		log.closed = true
		log.mu.Unlock()
	}()
	return log
}

// twoOwnerGraphs registers path graphs through the router until both
// backends own at least one, returning one graph per owner.
func twoOwnerGraphs(t *testing.T, c *client, names []string) map[string]service.GraphInfo {
	t.Helper()
	byOwner := map[string]service.GraphInfo{}
	for n := 12; n < 12+64 && len(byOwner) < 2; n++ {
		info := c.registerLine(n)
		owner, ok := cluster.Owner(names, info.ID)
		if !ok {
			t.Fatal("no owner")
		}
		if _, seen := byOwner[owner]; !seen {
			byOwner[owner] = info
		}
	}
	if len(byOwner) != 2 {
		t.Fatalf("could not find graphs for both owners: %v", byOwner)
	}
	return byOwner
}

// TestClusterSweepSurvivesShardDeath is the partial-failure acceptance
// scenario: a sweep spanning two shards loses one shard mid-flight. The
// dead shard's unfinished cells fail — and only those — while the
// survivor's cells complete, the SSE stream stays intact to the
// terminal event, and the partial result lands as a verifiable
// checksummed artifact.
func TestClusterSweepSurvivesShardDeath(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{Workers: 2}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{Workers: 2}),
	}
	spill := t.TempDir()
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval:         time.Hour, // no re-probe: the victim stays "alive" and unreachable
		ProxyTimeout:          10 * time.Second,
		SpillDir:              spill,
		SweepShardConcurrency: 1,
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	names := []string{"b0", "b1"}
	byOwner := twoOwnerGraphs(t, c, names)
	victim, survivor := "b0", "b1"

	spec := sweep.Spec{
		Name:     "shard-death",
		GraphIDs: []string{byOwner[victim].ID, byOwner[survivor].ID},
		// Six cells per graph; SweepShardConcurrency 1 serializes each
		// shard's cells, so the sweep is mid-flight for a while.
		Budgets: [][]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {1, 3}},
		Runs:    500,
		Seed:    1,
	}
	sweepID := c.createSweep(spec)
	if !strings.HasPrefix(sweepID, "router-") {
		t.Fatalf("sweep job %s not minted by the router's own store", sweepID)
	}
	log := c.followSweep(sweepID)

	// Kill the victim once the sweep is demonstrably running (first cell
	// done); its remaining cells are then unfinished by construction.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no cell finished before the kill window")
		}
		finished := false
		for _, ev := range log.snapshot() {
			if ev.Cell != "" && ev.CellState == string(service.JobDone) {
				finished = true
			}
		}
		if finished {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, b := range backends {
		if b.name == victim {
			b.kill()
		}
	}

	view := c.waitSweep(sweepID, 60*time.Second)
	if view.State != service.JobDone {
		t.Fatalf("sweep finished %s (%s) — a dead shard must not fail the sweep", view.State, view.Error)
	}
	sum := view.Result
	if sum == nil || sum.Done+sum.Failed != 12 || sum.Canceled != 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Failed == 0 {
		t.Fatal("no cells failed; the victim finished everything before the kill")
	}

	// Failure is isolated: every failed cell belongs to the victim's
	// graph, every survivor cell is done, and the job-id prefixes prove
	// each done cell ran on its graph's HRW owner.
	var res sweep.ResultsResponse
	c.doJSON("GET", "/v1/sweeps/"+sweepID+"/results", nil, &res, http.StatusOK)
	if len(res.Cells) != 12 {
		t.Fatalf("results: %d cells", len(res.Cells))
	}
	for _, cell := range res.Cells {
		switch cell.State {
		case string(service.JobDone):
			owner, _ := cluster.Owner(names, cell.GraphID)
			if !strings.HasPrefix(cell.JobID, owner+"-") {
				t.Errorf("done cell %s ran as %s, want owner %s", cell.CellID, cell.JobID, owner)
			}
			if !cell.HasWelfare || cell.WelfareRuns != 500 {
				t.Errorf("done cell %s has no welfare: %+v", cell.CellID, cell)
			}
		case string(service.JobFailed):
			if cell.GraphID != byOwner[victim].ID {
				t.Errorf("cell %s on surviving graph %s failed: %s", cell.CellID, cell.GraphID, cell.Error)
			}
		default:
			t.Errorf("cell %s in state %s", cell.CellID, cell.State)
		}
	}

	// The SSE stream survived the shard death: every cell produced at
	// least one event and the stream closed with the sweep's terminal
	// frame.
	waitLog := time.Now().Add(10 * time.Second)
	for !log.done() && time.Now().Before(waitLog) {
		time.Sleep(10 * time.Millisecond)
	}
	events := log.snapshot()
	if len(events) == 0 || !events[len(events)-1].Terminal() {
		t.Fatalf("SSE stream did not end in a terminal frame (%d events)", len(events))
	}
	seen := map[string]bool{}
	for _, ev := range events {
		if ev.Cell != "" {
			seen[ev.Cell] = true
		}
	}
	if len(seen) != 12 {
		t.Errorf("SSE covered %d cells, want 12", len(seen))
	}

	// The artifact is on disk, re-derives its content id, and its codec
	// detects corruption.
	art, err := store.LoadSweepFile(filepath.Join(spill, "sweeps"), sum.ArtifactID)
	if err != nil {
		t.Fatalf("load artifact: %v", err)
	}
	if store.SweepResultID(art) != sum.ArtifactID {
		t.Error("artifact does not re-derive its content id")
	}
	path := filepath.Join(spill, "sweeps", sum.ArtifactID+store.SweepExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.LoadSweepFile(filepath.Join(spill, "sweeps"), sum.ArtifactID); !errors.Is(err, store.ErrChecksum) {
		t.Errorf("corrupted artifact load: %v, want ErrChecksum", err)
	}
}

// TestRouterSweepPreAdmission: a cell whose predicted sketch cost is
// far over its owner's admission budget (read off the relayed
// /v1/metrics gauges) fails at the router without a dispatch.
func TestRouterSweepPreAdmission(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{Workers: 1, AdmissionMB: 1}),
	}
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval: time.Hour,
		ProxyTimeout:  10 * time.Second,
		SpillDir:      t.TempDir(),
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(2000)
	spec := sweep.Spec{
		GraphIDs: []string{info.ID},
		Budgets:  [][]int{{10, 10}},
		Eps:      []float64{0.05}, // ε at the floor prices ~100× past any 1MB budget
	}
	sweepID := c.createSweep(spec)
	view := c.waitSweep(sweepID, 30*time.Second)
	if view.State != service.JobDone || view.Result == nil || view.Result.Failed != 1 {
		t.Fatalf("sweep: %s %+v", view.State, view.Result)
	}
	var res sweep.ResultsResponse
	c.doJSON("GET", "/v1/sweeps/"+sweepID+"/results", nil, &res, http.StatusOK)
	cell := res.Cells[0]
	if cell.State != string(service.JobFailed) || !strings.Contains(cell.Error, "pre-admission") {
		t.Fatalf("cell: %+v", cell)
	}
	if cell.JobID != "" {
		t.Errorf("pre-admission reject still dispatched job %s", cell.JobID)
	}
	if stats := rt.Stats(syncCtx()); stats.Cluster.PreAdmissionRejects == 0 {
		t.Error("pre_admission_rejects counter not incremented")
	}

	// A small graph at default ε dispatches and completes —
	// pre-admission only stops the obviously refusable cells.
	small := c.registerLine(16)
	okID := c.createSweep(sweep.Spec{GraphIDs: []string{small.ID}, Budgets: [][]int{{2, 2}}, Runs: 200})
	okView := c.waitSweep(okID, 30*time.Second)
	if okView.State != service.JobDone || okView.Result.Done != 1 {
		t.Fatalf("cheap sweep: %s %+v", okView.State, okView.Result)
	}
}

// TestRouterSweepValidation: specs over unregistered graphs reject with
// 400 before any job exists, and sweep routes 404 for non-sweep ids.
func TestRouterSweepValidation(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{Workers: 1}),
	}
	rt, c := newCluster(t, backends, cluster.Options{
		ProbeInterval: time.Hour,
		ProxyTimeout:  10 * time.Second,
		SpillDir:      t.TempDir(),
	})
	defer rt.Close()
	rt.Sync(syncCtx())
	if status, raw := c.do("POST", "/v1/sweeps", sweep.Spec{GraphIDs: []string{"gdeadbeef"}, Budgets: [][]int{{2}}}); status != http.StatusBadRequest {
		t.Fatalf("unknown graph: status %d: %s", status, raw)
	}
	if status, _ := c.do("GET", "/v1/sweeps/router-j99", nil); status != http.StatusNotFound {
		t.Error("unknown sweep did not 404")
	}
}
