package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSketchCacheSingleflight(t *testing.T) {
	c := NewSketchCache(8, 0, 0, nil)
	var builds atomic.Int32
	gate := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]any, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.GetOrBuild("k", func() (any, error) {
				builds.Add(1)
				<-gate // hold every concurrent requester on one build
				return "sketch", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the requesters pile up
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("built %d times, want 1", n)
	}
	misses := 0
	for i := range results {
		if results[i] != "sketch" {
			t.Fatalf("result %d = %v", i, results[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d misses, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSketchCacheEviction(t *testing.T) {
	c := NewSketchCache(2, 0, 0, nil)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, hit, _ := c.GetOrBuild(key, func() (any, error) { return i, nil }); hit {
			t.Errorf("key %s: unexpected hit", key)
		}
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
	// The most recent keys survive.
	if _, hit, _ := c.GetOrBuild("k4", func() (any, error) { return nil, nil }); !hit {
		t.Error("k4 was evicted")
	}
	if _, hit, _ := c.GetOrBuild("k0", func() (any, error) { return 0, nil }); hit {
		t.Error("k0 survived eviction")
	}
}

func TestSketchCacheCostEviction(t *testing.T) {
	// Entry bound is generous; the byte budget is the binding constraint:
	// each entry costs 60, the budget is 100, so at most one completed
	// entry fits at a time.
	c := NewSketchCache(10, 100, 0, func(any) int64 { return 60 })
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrBuild(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 1 || st.CostBytes != 60 {
		t.Errorf("entries=%d cost=%d, want 1 entry at cost 60", st.Entries, st.CostBytes)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.MaxCostBytes != 100 {
		t.Errorf("max cost = %d", st.MaxCostBytes)
	}
	// The newest entry is the survivor.
	if _, hit, _ := c.GetOrBuild("k2", func() (any, error) { return nil, nil }); !hit {
		t.Error("most recent entry was evicted")
	}
	// Eviction on graph invalidation returns its cost to the pool.
	c.InvalidateGraph("k2") // no "|" prefix match: nothing happens
	if c.Stats().Entries != 1 {
		t.Error("prefix-less invalidation dropped an entry")
	}
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.CostBytes != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestSketchCacheErrorNotCached(t *testing.T) {
	c := NewSketchCache(8, 0, 0, nil)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.GetOrBuild("k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Errorf("retry after error: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestSketchKeyCanonicalization(t *testing.T) {
	a := SketchKey("g1", "prima", 0, 0.5, 1, []int{50, 30})
	b := SketchKey("g1", "prima", 0, 0.5, 1, []int{50, 30})
	if a != b {
		t.Errorf("identical inputs differ: %q vs %q", a, b)
	}
	for _, other := range []string{
		SketchKey("g2", "prima", 0, 0.5, 1, []int{50, 30}),
		SketchKey("g1", "imm", 0, 0.5, 1, []int{50, 30}),
		SketchKey("g1", "prima", 1, 0.5, 1, []int{50, 30}),
		SketchKey("g1", "prima", 0, 0.1, 1, []int{50, 30}),
		SketchKey("g1", "prima", 0, 0.5, 2, []int{50, 30}),
		SketchKey("g1", "prima", 0, 0.5, 1, []int{50}),
	} {
		if other == a {
			t.Errorf("distinct tuple collides: %q", other)
		}
	}
}

func TestPoolBoundedQueue(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if !p.Submit(func() { close(started); <-block }) {
		t.Fatal("first submit rejected")
	}
	<-started // worker busy; queue empty
	if !p.Submit(func() {}) {
		t.Fatal("second submit rejected with empty queue")
	}
	// Worker occupied and queue full: reject instead of blocking.
	if p.Submit(func() {}) {
		t.Error("third submit accepted beyond capacity")
	}
	if p.Busy() != 1 || p.QueueDepth() != 1 || p.QueueCap() != 1 || p.Workers() != 1 {
		t.Errorf("pool state: busy=%d depth=%d cap=%d workers=%d",
			p.Busy(), p.QueueDepth(), p.QueueCap(), p.Workers())
	}
	close(block)
	p.Close()
	if p.Submit(func() {}) {
		t.Error("submit accepted after Close")
	}
}

func TestJobStoreLifecycle(t *testing.T) {
	s := NewJobStore(0)
	j := s.Create("allocate", "trace-1", "req")
	if view, ok := s.Snapshot(j.ID); !ok || view.State != JobQueued {
		t.Fatalf("snapshot = %+v, %v", view, ok)
	}
	s.Start(j.ID)
	s.Finish(j.ID, "result", nil)
	view, _ := s.Snapshot(j.ID)
	if view.State != JobDone || view.Result != "result" {
		t.Errorf("done view = %+v", view)
	}

	f := s.Create("estimate", "", nil)
	s.Start(f.ID)
	s.Finish(f.ID, nil, errors.New("nope"))
	if view, _ := s.Snapshot(f.ID); view.State != JobFailed || view.Error != "nope" {
		t.Errorf("failed view = %+v", view)
	}

	counts := s.CountByState()
	if counts[JobDone] != 1 || counts[JobFailed] != 1 {
		t.Errorf("counts = %v", counts)
	}

	r := s.Create("allocate", "", nil)
	s.Remove(r.ID)
	if _, ok := s.Snapshot(r.ID); ok {
		t.Error("removed job still present")
	}
	if len(s.List("")) != 2 {
		t.Errorf("list = %+v", s.List(""))
	}
}

func TestJobStoreRetention(t *testing.T) {
	s := NewJobStore(2)
	running := s.Create("allocate", "", nil)
	s.Start(running.ID)
	var finished []string
	for i := 0; i < 5; i++ {
		j := s.Create("allocate", "", nil)
		s.Start(j.ID)
		s.Finish(j.ID, i, nil)
		finished = append(finished, j.ID)
	}
	counts := s.CountByState()
	if counts[JobDone] != 2 {
		t.Errorf("retained %d finished jobs, want 2", counts[JobDone])
	}
	// Oldest finished jobs are gone; the newest two and the running job
	// survive.
	if _, ok := s.Snapshot(finished[0]); ok {
		t.Error("oldest finished job survived retention")
	}
	for _, id := range finished[3:] {
		if _, ok := s.Snapshot(id); !ok {
			t.Errorf("recent job %s was dropped", id)
		}
	}
	if view, ok := s.Snapshot(running.ID); !ok || view.State != JobRunning {
		t.Error("running job was dropped by retention")
	}
}
