package service_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// tracedAllocate runs one allocate with an explicit trace id and waits
// for the job, returning its terminal view.
func tracedAllocate(t *testing.T, e *env, graphID, traceID string) service.JobView {
	t.Helper()
	body, err := json.Marshal(service.AllocateRequest{GraphID: graphID, Budgets: []int{4, 4}, Runs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", e.srv.URL+"/v1/allocate", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, traceID)
	resp, err := e.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		JobID string `json:"job_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("allocate: status %d, err %v", resp.StatusCode, err)
	}
	var view service.JobView
	e.waitJob(t, ack.JobID, &view)
	if view.State != service.JobDone {
		t.Fatalf("job ended %q: %s", view.State, view.Error)
	}
	return view
}

// TestTracesEndpoint covers the backend tier's trace surface: a
// completed allocate lands in GET /v1/traces (summary form, filters,
// cursor), its full span tree comes back from GET /v1/traces/{id} with
// resource totals matching the job view, and the journal events its
// request triggered are retrievable via GET /v1/events?trace=.
func TestTracesEndpoint(t *testing.T) {
	e := newEnv(t, service.Options{
		Workers: 2, TraceSampleAll: true, BatchWindow: 5 * time.Millisecond,
	})
	id := e.registerGraph(t)
	const traceID = "trace-store-e2e-1"
	view := tracedAllocate(t, e, id, traceID)

	var page service.TracesResponse
	e.doJSON("GET", "/v1/traces?route=allocate", nil, &page, http.StatusOK)
	found := false
	for _, r := range page.Traces {
		if r.TraceID == traceID {
			found = true
			if r.Route != "allocate" || r.Graph != id {
				t.Errorf("record route/graph = %q/%q, want allocate/%s", r.Route, r.Graph, id)
			}
			if r.Kept == "" {
				t.Error("record carries no keep reason")
			}
			if r.Spans != nil {
				t.Error("list view leaked span records")
			}
			if r.DurationMS <= 0 {
				t.Errorf("record duration %.3fms", r.DurationMS)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in /v1/traces page: %+v", traceID, page.Traces)
	}
	if page.NextCursor == 0 {
		t.Error("page has no resume cursor")
	}

	// Filters exclude it; bad parameters are rejected.
	var filtered service.TracesResponse
	e.doJSON("GET", "/v1/traces?route=warm", nil, &filtered, http.StatusOK)
	for _, r := range filtered.Traces {
		if r.TraceID == traceID {
			t.Error("route filter leaked the allocate trace")
		}
	}
	e.doJSON("GET", "/v1/traces?min_ms=9000000", nil, &filtered, http.StatusOK)
	if len(filtered.Traces) != 0 {
		t.Errorf("min_ms filter kept %d traces", len(filtered.Traces))
	}
	if status, _ := e.do("GET", "/v1/traces?cursor=banana", nil); status != http.StatusBadRequest {
		t.Errorf("bad cursor: status %d, want 400", status)
	}

	// The full tree: named spans, start-sorted, totals matching the job.
	var tree service.TraceTreeResponse
	e.doJSON("GET", "/v1/traces/"+traceID, nil, &tree, http.StatusOK)
	if len(tree.Spans) < 4 {
		t.Fatalf("tree has %d spans, want >= 4: %+v", len(tree.Spans), tree.Spans)
	}
	stages := map[string]bool{}
	for i, sp := range tree.Spans {
		stages[sp.Stage] = true
		if sp.ID == "" || sp.DurationMS < 0 {
			t.Errorf("span %d malformed: %+v", i, sp)
		}
		if i > 0 && sp.StartUnixNS < tree.Spans[i-1].StartUnixNS {
			t.Errorf("spans not start-sorted at %d", i)
		}
	}
	for _, want := range []string{"cache_lookup", "greedy_select"} {
		if !stages[want] {
			t.Errorf("tree missing %q span (have %v)", want, stages)
		}
	}
	// Serial builds emit rrset_grow, parallel builds (GOMAXPROCS > 1)
	// emit rrset_grow_parallel; the tree must carry one of the two.
	if !stages["rrset_grow"] && !stages["rrset_grow_parallel"] {
		t.Errorf("tree missing the rrset_grow / rrset_grow_parallel span (have %v)", stages)
	}
	for kind, want := range view.Resources {
		if got := tree.Resources[kind]; got != want {
			t.Errorf("tree resources[%s] = %d, want job view's %d", kind, got, want)
		}
	}

	if status, _ := e.do("GET", "/v1/traces/no-such-trace", nil); status != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", status)
	}

	// The request's journal fallout is greppable by trace id: the cold
	// allocate's sketch build went through the batcher, and the fired
	// window carries the opening request's trace.
	var events struct {
		Events []journal.Event `json:"events"`
	}
	e.doJSON("GET", "/v1/events?trace="+traceID, nil, &events, http.StatusOK)
	if len(events.Events) == 0 {
		t.Fatal("no journal events filtered by trace id")
	}
	sawBatch := false
	for _, ev := range events.Events {
		if ev.TraceID != traceID {
			t.Errorf("trace filter leaked event %+v", ev)
		}
		if ev.Type == journal.BatchFire {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Errorf("no batch_fire among traced events: %+v", events.Events)
	}
}

// TestTracesTelemetryOff checks the trace surface degrades cleanly with
// telemetry off: the list is empty, lookups 404, nothing panics.
func TestTracesTelemetryOff(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 2, TelemetryOff: true})
	id := e.registerGraph(t)
	view := tracedAllocate(t, e, id, "trace-off-1")

	var page service.TracesResponse
	e.doJSON("GET", "/v1/traces", nil, &page, http.StatusOK)
	if len(page.Traces) != 0 {
		t.Errorf("telemetry off but %d traces retained", len(page.Traces))
	}
	if status, _ := e.do("GET", "/v1/traces/trace-off-1", nil); status != http.StatusNotFound {
		t.Errorf("telemetry-off lookup: status %d, want 404", status)
	}
	if len(view.Resources) != 0 {
		t.Errorf("telemetry off but job carries resources: %v", view.Resources)
	}
}
