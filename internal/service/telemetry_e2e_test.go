package service_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// TestTraceIDEndToEnd follows one client-sent trace id through the
// whole observable surface: the 202 response (header and body), the job
// record, every SSE event, and the persisted history.jsonl audit line —
// with at least four named stage spans attached to the job.
func TestTraceIDEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, service.Options{Workers: 2, DataDir: dir})
	id := e.registerGraph(t)

	const traceID = "trace-e2e-42"
	body, err := json.Marshal(service.AllocateRequest{GraphID: id, Budgets: []int{4, 4}, Runs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", e.srv.URL+"/v1/allocate", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceHeader, traceID)
	resp, err := e.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("allocate: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); got != traceID {
		t.Errorf("response trace header = %q, want %q", got, traceID)
	}
	var ack struct {
		JobID   string `json:"job_id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.TraceID != traceID {
		t.Errorf("202 body trace_id = %q, want %q", ack.TraceID, traceID)
	}

	var view service.JobView
	e.waitJob(t, ack.JobID, &view)
	if view.State != service.JobDone {
		t.Fatalf("job ended %q: %s", view.State, view.Error)
	}
	if view.TraceID != traceID {
		t.Errorf("job view trace_id = %q, want %q", view.TraceID, traceID)
	}
	if len(view.Stages) < 4 {
		t.Errorf("job carries %d stage spans, want >= 4: %v", len(view.Stages), view.Stages)
	}
	for _, stage := range []string{"cache_lookup", "rrset_grow", "greedy_select", "estimate"} {
		st, ok := view.Stages[stage]
		if stage == "rrset_grow" && !ok {
			// RR-set growth runs serial or parallel depending on
			// GOMAXPROCS; either span name satisfies the check.
			st, ok = view.Stages["rrset_grow_parallel"]
		}
		if !ok || st.Count < 1 {
			t.Errorf("stage %q missing from job stages %v", stage, view.Stages)
		}
	}

	// Every SSE frame (replayed history included) names the trace.
	for i, ev := range readSSE(t, e, ack.JobID) {
		if ev.Data.TraceID != traceID {
			t.Errorf("SSE event %d trace_id = %q, want %q", i, ev.Data.TraceID, traceID)
		}
	}

	// The terminal JobView lands in history.jsonl with the trace id (the
	// audit append runs on the worker as the job finishes; poll briefly).
	histPath := filepath.Join(dir, "jobs", "history.jsonl")
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := os.ReadFile(histPath)
		if err == nil && strings.Contains(string(raw), traceID) {
			if !strings.Contains(string(raw), `"stages"`) {
				t.Errorf("history.jsonl record has no stages: %s", raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never appeared in %s (err %v)", traceID, histPath, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsUnderConcurrentAllocates hammers GET /v1/metrics while
// allocate jobs run — the race detector owns the interesting assertion —
// then checks the exposition contains the expected route, job, and
// stage series in both Prometheus text and JSON form.
func TestMetricsUnderConcurrentAllocates(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 4})
	id := e.registerGraph(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if status, _ := e.do("GET", "/v1/metrics", nil); status != http.StatusOK {
				t.Errorf("metrics during load: status %d", status)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var jobs []string
	for i := 0; i < 6; i++ {
		jobs = append(jobs, e.submit(t, "/v1/allocate", service.AllocateRequest{
			GraphID: id, Budgets: []int{3 + i%2, 3}, Runs: 1000,
		}))
	}
	for _, jobID := range jobs {
		var job allocJobView
		e.waitJob(t, jobID, &job)
		if job.State != service.JobDone {
			t.Fatalf("job %s ended %q: %s", jobID, job.State, job.Error)
		}
	}
	close(stop)
	wg.Wait()

	status, raw := e.do("GET", "/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	text := string(raw)
	for _, want := range []string{
		`welmax_http_request_duration_seconds_bucket{route="POST /v1/allocate",le="+Inf"}`,
		`welmax_job_duration_seconds_count{kind="allocate"} 6`,
		`welmax_stage_duration_seconds_count{stage="greedy_select",family="prima"}`,
		"# TYPE welmax_job_duration_seconds histogram",
		"welmax_graphs 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}
	// Growth is serial or parallel depending on GOMAXPROCS; the stage
	// histogram must carry whichever span the build actually emitted.
	if !strings.Contains(text, `welmax_stage_duration_seconds_count{stage="rrset_grow",family="prima"}`) &&
		!strings.Contains(text, `welmax_stage_duration_seconds_count{stage="rrset_grow_parallel",family="prima"}`) {
		t.Errorf("metrics text missing the rrset_grow / rrset_grow_parallel stage histogram")
	}

	var export telemetry.Export
	e.doJSON("GET", "/v1/metrics?format=json", nil, &export, http.StatusOK)
	if len(export.Histograms) == 0 || len(export.Gauges) == 0 {
		t.Fatalf("JSON export empty: %d histograms, %d gauges", len(export.Histograms), len(export.Gauges))
	}
	for _, h := range export.Histograms {
		if h.Name == "welmax_job_duration_seconds" && h.Count != 6 {
			t.Errorf("job histogram count = %d, want 6", h.Count)
		}
	}
}

// TestSeedPrefixProgressEvents checks select-stage SSE events carry the
// incremental seed prefix and that successive prefixes are consistent —
// each extends the one before (lazy-greedy order is prefix-stable).
func TestSeedPrefixProgressEvents(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 2})
	id := e.registerGraph(t)

	// The max budget exceeds the 16-selection report chunk so at least
	// one intermediate prefix event fires before the final one.
	jobID := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Budgets: []int{20, 20}, Runs: 1000,
	})
	events := readSSE(t, e, jobID)
	var prefixes [][]int64
	for _, ev := range events {
		if ev.Data.Type == service.EventProgress && ev.Data.Stage == "select" && len(ev.Data.SeedPrefix) > 0 {
			prefixes = append(prefixes, ev.Data.SeedPrefix)
		}
	}
	if len(prefixes) < 2 {
		t.Fatalf("saw %d select-stage prefix events, want >= 2 (chunk + final): %+v", len(prefixes), events)
	}
	for i := 1; i < len(prefixes); i++ {
		prev, cur := prefixes[i-1], prefixes[i]
		if len(cur) < len(prev) {
			t.Fatalf("prefix %d shrank: %v -> %v", i, prev, cur)
		}
		for j := range prev {
			if cur[j] != prev[j] {
				t.Fatalf("prefix %d not an extension: %v -> %v", i, prev, cur)
			}
		}
	}
	var job allocJobView
	e.waitJob(t, jobID, &job)
	if job.State != service.JobDone {
		t.Fatalf("job ended %q: %s", job.State, job.Error)
	}
}

// TestTelemetryOff checks the kill switch: jobs run, /v1/metrics still
// answers, but no histograms accumulate and no trace ids are minted
// into responses' bodies beyond the (still present) header echo.
func TestTelemetryOff(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 2, TelemetryOff: true})
	id := e.registerGraph(t)

	jobID := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Budgets: []int{3, 3}, Runs: 1000,
	})
	var job allocJobView
	e.waitJob(t, jobID, &job)
	if job.State != service.JobDone {
		t.Fatalf("job ended %q: %s", job.State, job.Error)
	}

	var export telemetry.Export
	e.doJSON("GET", "/v1/metrics?format=json", nil, &export, http.StatusOK)
	if len(export.Histograms) != 0 {
		t.Errorf("telemetry off but %d histogram series accumulated: %+v", len(export.Histograms), export.Histograms)
	}
	var view service.JobView
	e.doJSON("GET", "/v1/jobs/"+jobID, nil, &view, http.StatusOK)
	if len(view.Stages) != 0 {
		t.Errorf("telemetry off but job carries stages: %v", view.Stages)
	}
}
