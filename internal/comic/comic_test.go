package comic

import (
	"math"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

func perfectGAP() utility.GAP {
	return utility.GAP{Q1GivenNone: 1, Q1Given2: 1, Q2GivenNone: 1, Q2Given1: 1}
}

func TestSimAllCertainAdoption(t *testing.T) {
	g := graph.Line(4, 1)
	sim := NewSim(g, perfectGAP())
	rng := stats.NewRNG(1)
	nA, nB := sim.RunOnce([]graph.NodeID{0}, nil, rng)
	if nA != 4 || nB != 0 {
		t.Errorf("adoptions %d/%d, want 4/0", nA, nB)
	}
}

func TestSimZeroGAP(t *testing.T) {
	g := graph.Line(4, 1)
	sim := NewSim(g, utility.GAP{})
	rng := stats.NewRNG(2)
	nA, nB := sim.RunOnce([]graph.NodeID{0}, []graph.NodeID{1}, rng)
	if nA != 0 || nB != 0 {
		t.Errorf("adoptions %d/%d with zero GAP", nA, nB)
	}
}

func TestSimAdoptionFrequencyMatchesGAP(t *testing.T) {
	// a single isolated seed adopts A with probability exactly q_{A|∅}
	g := graph.Line(1, 1)
	gap := utility.GAP{Q1GivenNone: 0.3, Q1Given2: 0.9, Q2GivenNone: 0.2, Q2Given1: 0.8}
	sim := NewSim(g, gap)
	rng := stats.NewRNG(3)
	const runs = 100000
	count := 0
	for i := 0; i < runs; i++ {
		a, _ := sim.RunOnce([]graph.NodeID{0}, nil, rng)
		count += a
	}
	got := float64(count) / runs
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("adoption frequency %v, want 0.3", got)
	}
}

func TestSimComplementReconsideration(t *testing.T) {
	// a node seeded with both items where q_{B|∅}=0 but q_{B|A}=1: B is
	// adopted exactly when A is (threshold persistence reconsideration)
	g := graph.Line(1, 1)
	gap := utility.GAP{Q1GivenNone: 0.5, Q1Given2: 0.5, Q2GivenNone: 0, Q2Given1: 1}
	sim := NewSim(g, gap)
	rng := stats.NewRNG(4)
	const runs = 100000
	nA, nB := 0, 0
	for i := 0; i < runs; i++ {
		a, b := sim.RunOnce([]graph.NodeID{0}, []graph.NodeID{0}, rng)
		nA += a
		nB += b
		if b > a {
			t.Fatal("B adopted without A")
		}
	}
	fa, fb := float64(nA)/runs, float64(nB)/runs
	if math.Abs(fa-0.5) > 0.01 {
		t.Errorf("A frequency %v, want 0.5", fa)
	}
	if math.Abs(fb-fa) > 0.005 {
		t.Errorf("B should follow A exactly: %v vs %v", fb, fa)
	}
}

func TestSimMatchesUICOnEquivalentInstance(t *testing.T) {
	// Com-IC with GAP from Eq. 12 and UIC with the generating utilities
	// must produce statistically similar adoption counts on a seed-only
	// instance (single node, no propagation).
	m := utility.Config3()
	gap, err := utility.GAPFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Line(1, 1)
	rng := stats.NewRNG(5)

	comicSim := NewSim(g, gap)
	a, _ := comicSim.ExpectedAdoptions([]graph.NodeID{0}, nil, rng, 100000)

	uicSim := uic.NewSimulator(g, m)
	alloc := uic.NewAllocation(2)
	alloc.Assign(0, 0)
	counts := uicSim.AdoptionCounts(alloc, rng, 100000)

	if math.Abs(a-counts[0]) > 0.01 {
		t.Errorf("Com-IC adoption %v vs UIC %v", a, counts[0])
	}
}

func TestAdoptionProbabilities(t *testing.T) {
	g := graph.Line(3, 1)
	sim := NewSim(g, utility.GAP{Q1GivenNone: 1, Q1Given2: 1, Q2GivenNone: 1, Q2Given1: 1})
	rng := stats.NewRNG(6)
	beta := sim.AdoptionProbabilities(nil, []graph.NodeID{0}, rng, 200)
	for v, b := range beta {
		if math.Abs(b-1) > 1e-12 {
			t.Errorf("node %d: beta %v, want 1", v, b)
		}
	}
}

func TestAllocateRRSIMPlusStructure(t *testing.T) {
	rng := stats.NewRNG(7)
	g := graph.ErdosRenyi(80, 400, rng).WeightedCascade()
	m := utility.Config1()
	res, err := AllocateRRSIMPlus(g, m, []int{5, 5}, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alloc.Seeds[ItemA]) != 5 || len(res.Alloc.Seeds[ItemB]) != 5 {
		t.Fatalf("seed counts %d/%d", len(res.Alloc.Seeds[ItemA]), len(res.Alloc.Seeds[ItemB]))
	}
	if res.NumRRSets == 0 || res.ForwardRuns == 0 {
		t.Error("effort statistics missing")
	}
}

func TestAllocateRRCIMStructure(t *testing.T) {
	rng := stats.NewRNG(8)
	g := graph.ErdosRenyi(80, 400, rng).WeightedCascade()
	m := utility.Config1()
	res, err := AllocateRRCIM(g, m, []int{4, 6}, Options{ForwardRuns: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alloc.Seeds[ItemA]) != 4 || len(res.Alloc.Seeds[ItemB]) != 6 {
		t.Fatalf("seed counts wrong")
	}
	if res.ExpectedA <= 0 {
		t.Errorf("expected adoptions %v should be positive", res.ExpectedA)
	}
}

func TestComICBaselinesRejectBadInput(t *testing.T) {
	rng := stats.NewRNG(9)
	g := graph.Line(5, 0.5)
	if _, err := AllocateRRSIMPlus(g, utility.Config5(3), []int{1, 1, 1}, Options{}, rng); err == nil {
		t.Error("3-item model accepted (Com-IC handles exactly 2 items)")
	}
	if _, err := AllocateRRSIMPlus(g, utility.Config1(), []int{1}, Options{}, rng); err == nil {
		t.Error("single budget accepted")
	}
}

func TestComICUsesMoreRRSetsThanBundleGRDWould(t *testing.T) {
	// the Fig. 6 effect: TIM-based baselines sample far more RR sets
	rng := stats.NewRNG(10)
	g := graph.ErdosRenyi(150, 900, rng).WeightedCascade()
	m := utility.Config1()
	res, err := AllocateRRSIMPlus(g, m, []int{10, 10}, Options{ForwardRuns: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// compare against a single-budget IMM run (bundleGRD's cost driver)
	immOnly := 0
	{
		r2 := importIMMRun(g, 10, rng)
		immOnly = r2
	}
	if res.NumRRSets <= immOnly {
		t.Errorf("Com-IC RR sets %d should exceed IMM's %d", res.NumRRSets, immOnly)
	}
}
