package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Parallel
// edges are collapsed keeping the maximum probability; self-loops are
// dropped (they carry no influence in the IC model).
type Builder struct {
	n     int
	edges []builderEdge
}

type builderEdge struct {
	u, v NodeID
	p    float32
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the directed edge (u, v) with influence probability p.
// It panics on out-of-range endpoints or probabilities outside [0, 1].
func (b *Builder) AddEdge(u, v NodeID, p float64) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: probability %v out of [0,1]", p))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, builderEdge{u, v, float32(p)})
}

// AddUndirected records the edge in both directions with probability p.
func (b *Builder) AddUndirected(u, v NodeID, p float64) {
	b.AddEdge(u, v, p)
	b.AddEdge(v, u, p)
}

// NumEdges returns the number of edges recorded so far (before
// deduplication).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the CSR graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	// Sort by (u, v) and deduplicate.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	dedup := b.edges[:0:len(b.edges)]
	for _, e := range b.edges {
		if k := len(dedup) - 1; k >= 0 && dedup[k].u == e.u && dedup[k].v == e.v {
			if e.p > dedup[k].p {
				dedup[k].p = e.p
			}
			continue
		}
		dedup = append(dedup, e)
	}

	m := len(dedup)
	g := &Graph{
		n:         b.n,
		m:         m,
		outIndex:  make([]int64, b.n+1),
		outTo:     make([]NodeID, m),
		outProb:   make([]float32, m),
		inIndex:   make([]int64, b.n+1),
		inFrom:    make([]NodeID, m),
		inProb:    make([]float32, m),
		inEdgePos: make([]int64, m),
	}

	// Out-CSR: edges are already sorted by u.
	for _, e := range dedup {
		g.outIndex[e.u+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outIndex[i+1] += g.outIndex[i]
	}
	for i, e := range dedup {
		g.outTo[i] = e.v
		g.outProb[i] = e.p
		_ = i
	}

	// In-CSR via counting sort on v.
	for _, e := range dedup {
		g.inIndex[e.v+1]++
	}
	for i := 0; i < b.n; i++ {
		g.inIndex[i+1] += g.inIndex[i]
	}
	cursor := make([]int64, b.n)
	copy(cursor, g.inIndex[:b.n])
	for pos, e := range dedup {
		j := cursor[e.v]
		cursor[e.v]++
		g.inFrom[j] = e.u
		g.inProb[j] = e.p
		g.inEdgePos[j] = int64(pos)
	}
	return g
}

// FromEdges builds a directed graph from explicit (u, v, p) triples.
func FromEdges(n int, edges [][3]float64) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(NodeID(e[0]), NodeID(e[1]), e[2])
	}
	return b.Build()
}
