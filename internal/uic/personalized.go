package uic

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// PersonalizedSim runs the §5 extension of UIC in which every node draws
// its own noise world: U_v(S) = V(S) - P(S) + Σ_{i∈S} N_v(i), modeling
// individual rather than population-level valuation uncertainty. The
// paper notes bundleGRD's approximation guarantee does NOT survive this
// extension (and the tests demonstrate a reachability violation); the
// simulator exists to study the model empirically.
type PersonalizedSim struct {
	G *graph.Graph
	M *utility.Model
	// Cascade selects the edge semantics (IC default or LT).
	Cascade graph.Cascade

	desire  []itemset.Set
	adopted []itemset.Set
	touched []graph.NodeID
	// util[v] is node v's lazily built utility table for the current run.
	util    [][]float64
	hasUtil []bool

	edge       []uint8
	edgeGen    []int32
	triggerGen []int32
	trigger    []int64
	gen        int32
	inNext     []bool
}

// NewPersonalizedSim builds a personalized-noise simulator.
func NewPersonalizedSim(g *graph.Graph, m *utility.Model) *PersonalizedSim {
	return &PersonalizedSim{
		G:          g,
		M:          m,
		desire:     make([]itemset.Set, g.N()),
		adopted:    make([]itemset.Set, g.N()),
		util:       make([][]float64, g.N()),
		hasUtil:    make([]bool, g.N()),
		edge:       make([]uint8, g.M()),
		edgeGen:    make([]int32, g.M()),
		triggerGen: make([]int32, g.N()),
		trigger:    make([]int64, g.N()),
		inNext:     make([]bool, g.N()),
	}
}

// utilOf lazily samples node v's personal noise world and materializes
// its utility table for this run.
func (s *PersonalizedSim) utilOf(v graph.NodeID, rng *stats.RNG) []float64 {
	if !s.hasUtil[v] {
		s.hasUtil[v] = true
		noise := s.M.SampleNoise(rng)
		s.util[v] = s.M.UtilityTable(noise, s.util[v])
	}
	return s.util[v]
}

// Adopted returns v's adoption set after the last run.
func (s *PersonalizedSim) Adopted(v graph.NodeID) itemset.Set { return s.adopted[v] }

// RunOnce simulates one diffusion with per-node noise and returns the
// realized social welfare Σ_v U_v(A(v)).
func (s *PersonalizedSim) RunOnce(alloc *Allocation, rng *stats.RNG) float64 {
	for _, v := range s.touched {
		s.desire[v] = 0
		s.adopted[v] = 0
		s.hasUtil[v] = false
	}
	s.touched = s.touched[:0]
	s.gen++
	if s.gen == 0 {
		for i := range s.edgeGen {
			s.edgeGen[i] = -1
		}
		for i := range s.triggerGen {
			s.triggerGen[i] = -1
		}
		s.gen = 1
	}

	var frontier []graph.NodeID
	for i, seeds := range alloc.Seeds {
		for _, v := range seeds {
			if s.desire[v] == 0 && s.adopted[v] == 0 {
				s.touched = append(s.touched, v)
			}
			s.desire[v] = s.desire[v].Add(i)
		}
	}
	for _, v := range s.touched {
		a := utility.Adopt(s.utilOf(v, rng), s.desire[v], 0)
		if !a.IsEmpty() {
			s.adopted[v] = a
			frontier = append(frontier, v)
		}
	}

	var next []graph.NodeID
	for len(frontier) > 0 {
		next = next[:0]
		for _, u := range frontier {
			au := s.adopted[u]
			base := s.G.OutEdgeBase(u)
			ts, ps := s.G.OutEdges(u)
			for j, v := range ts {
				pos := base + int64(j)
				var live bool
				if s.Cascade == graph.CascadeLT {
					live = s.triggerOf(v, rng) == pos
				} else {
					if s.edgeGen[pos] != s.gen {
						s.edgeGen[pos] = s.gen
						if rng.Bool(float64(ps[j])) {
							s.edge[pos] = edgeLive
						} else {
							s.edge[pos] = edgeBlocked
						}
					}
					live = s.edge[pos] == edgeLive
				}
				if !live || s.desire[v]|au == s.desire[v] {
					continue
				}
				if s.desire[v] == 0 && s.adopted[v] == 0 {
					s.touched = append(s.touched, v)
				}
				s.desire[v] = s.desire[v].Union(au)
				if !s.inNext[v] {
					s.inNext[v] = true
					next = append(next, v)
				}
			}
		}
		adopters := next[:0]
		for _, v := range next {
			s.inNext[v] = false
			newAdopt := utility.Adopt(s.utilOf(v, rng), s.desire[v], s.adopted[v])
			if newAdopt != s.adopted[v] {
				s.adopted[v] = newAdopt
				adopters = append(adopters, v)
			}
		}
		frontier, next = adopters, frontier
	}

	welfare := 0.0
	for _, v := range s.touched {
		welfare += s.util[v][s.adopted[v]]
	}
	return welfare
}

func (s *PersonalizedSim) triggerOf(v graph.NodeID, rng *stats.RNG) int64 {
	if s.triggerGen[v] != s.gen {
		s.triggerGen[v] = s.gen
		s.trigger[v] = -1
		_, ps := s.G.InEdges(v)
		if len(ps) > 0 {
			r := rng.Float64()
			cum := 0.0
			positions := s.G.InEdgePositions(v)
			for i, p := range ps {
				cum += float64(p)
				if r < cum {
					s.trigger[v] = positions[i]
					break
				}
			}
		}
	}
	return s.trigger[v]
}

// EstimateWelfare averages runs of the personalized-noise diffusion.
func (s *PersonalizedSim) EstimateWelfare(alloc *Allocation, rng *stats.RNG, runs int) WelfareEstimate {
	if runs <= 0 {
		runs = 1
	}
	var sum stats.Summary
	for i := 0; i < runs; i++ {
		sum.Add(s.RunOnce(alloc, rng))
	}
	return WelfareEstimate{Mean: sum.Mean(), StdErr: sum.StdErr(), Runs: sum.N()}
}
