package service

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/telemetry"
)

// logCapture swaps the slow-log seam for an in-memory sink.
func logCapture(s *Service) func() []string {
	var mu sync.Mutex
	var lines []string
	s.slowLogf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
}

// TestSlowJobLog drives finishJob past the slow threshold and checks
// the structured line: JSON, with trace id, kind, elapsed, and the
// per-stage breakdown.
func TestSlowJobLog(t *testing.T) {
	s, err := New(Options{SlowThreshold: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := logCapture(s)

	tr := telemetry.NewTrace("trace-slow-1", true)
	end := tr.StartSpan("rrset_grow")
	time.Sleep(2 * time.Millisecond)
	end()
	job := s.jobs.Create("allocate", tr.ID(), nil)
	s.jobs.Start(job.ID)
	s.finishJob(job.ID, "allocate", "", tr, time.Now().Add(-2*time.Second), "done", nil)

	lines := got()
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want 1: %q", len(lines), lines)
	}
	var entry struct {
		Msg       string                          `json:"msg"`
		JobID     string                          `json:"job_id"`
		Kind      string                          `json:"kind"`
		TraceID   string                          `json:"trace_id"`
		ElapsedMS float64                         `json:"elapsed_ms"`
		Stages    map[string]telemetry.StageStats `json:"stages"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %q: %v", lines[0], err)
	}
	if entry.Msg != "slow_request" || entry.Kind != "allocate" || entry.TraceID != "trace-slow-1" {
		t.Errorf("slow log entry = %+v", entry)
	}
	if entry.JobID != job.ID {
		t.Errorf("slow log job_id = %q, want %q", entry.JobID, job.ID)
	}
	if entry.ElapsedMS < 1900 {
		t.Errorf("elapsed_ms = %v, want >= 1900", entry.ElapsedMS)
	}
	if st := entry.Stages["rrset_grow"]; st.Count != 1 || st.TotalMS <= 0 {
		t.Errorf("stages = %+v, want rrset_grow with count 1", entry.Stages)
	}

	// The job view carries the same trace and stages.
	view, ok := s.jobs.Snapshot(job.ID)
	if !ok || view.TraceID != "trace-slow-1" || view.Stages["rrset_grow"].Count != 1 {
		t.Errorf("job view = %+v", view)
	}
}

// TestSlowJobLogDisabled checks the two off switches: a negative
// threshold, and telemetry off entirely.
func TestSlowJobLogDisabled(t *testing.T) {
	for name, opts := range map[string]Options{
		"negative_threshold": {SlowThreshold: -1},
		"telemetry_off":      {TelemetryOff: true, SlowThreshold: time.Millisecond},
	} {
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		got := logCapture(s)
		tr := telemetry.NewTrace("trace-quiet", true)
		job := s.jobs.Create("allocate", tr.ID(), nil)
		s.jobs.Start(job.ID)
		s.finishJob(job.ID, "allocate", "", tr, time.Now().Add(-2*time.Second), nil, nil)
		if lines := got(); len(lines) != 0 {
			t.Errorf("%s: slow log fired: %q", name, lines)
		}
		s.Close()
	}
}
