// Package prima implements PRIMA (PRefix-preserving Influence
// Maximization Algorithm), Algorithm 2 of the paper: a non-trivial
// extension of IMM that, given a vector of item budgets b1 >= b2 >= ...,
// returns a single ordered seed set S_b such that with probability at
// least 1-1/n^ℓ, *every* prefix of size b_i is a (1-1/e-ε)-approximation
// to the optimal spread with b_i seeds. bundleGRD assigns item i to the
// top-b_i prefix of this ordering.
package prima

import (
	"math"
	"sort"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
)

// Options configures PRIMA. Zero values default to the paper's settings
// (Eps 0.5, Ell 1).
type Options struct {
	Eps float64
	Ell float64
	// Cascade selects the diffusion model (IC default, or LT).
	Cascade graph.Cascade
	// NodeCoin optionally injects a per-node pass probability into RR
	// sampling.
	NodeCoin func(graph.NodeID) float64
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	return o
}

// Result reports the prefix-preserving ordering and sampling effort.
type Result struct {
	// Seeds is the ordered seed set of size max(budgets); the top-b_i
	// prefix serves item i.
	Seeds []graph.NodeID
	// Coverage is F_R(Seeds) on the final regenerated collection.
	Coverage  float64
	SpreadEst float64
	// NumRRSets is the size of the final collection (the memory figure
	// reported in Fig. 6 and Table 6).
	NumRRSets int
	// TotalRRSets additionally counts the phase-1 samples discarded by the
	// from-scratch regeneration.
	TotalRRSets int
}

// Select runs PRIMA for the given budget vector. Budgets need not be
// sorted or distinct; they are sorted non-increasingly internally, and
// only max(budgets) seeds are returned.
func Select(g *graph.Graph, budgets []int, opts Options, rng *stats.RNG) Result {
	opts = opts.withDefaults()
	n := g.N()
	if n == 0 || len(budgets) == 0 {
		return Result{}
	}
	// Sort budgets non-increasing, clamp into [1, n], drop duplicates
	// (identical budgets share identical prefixes, so a single pass
	// suffices and the union bound over |b| budgets stays valid).
	bs := make([]int, 0, len(budgets))
	for _, b := range budgets {
		if b > n {
			b = n
		}
		if b > 0 {
			bs = append(bs, b)
		}
	}
	if len(bs) == 0 {
		return Result{}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bs)))
	uniq := bs[:1]
	for _, b := range bs[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	bs = uniq
	maxBudget := bs[0]
	if maxBudget >= n {
		// Degenerate: the top budget seeds the whole graph; any ordering
		// of all nodes is trivially prefix-preserving only for b_i = n,
		// so fall back to a full greedy ordering over a fixed collection.
		seeds := make([]graph.NodeID, n)
		for i := range seeds {
			seeds[i] = graph.NodeID(i)
		}
		return Result{Seeds: seeds, Coverage: 1, SpreadEst: float64(n)}
	}

	// Line 2: ℓ = ℓ + log2/log n, then ℓ' = log_n(n^ℓ · |b|).
	logn := math.Log(float64(n))
	ell := opts.Ell + math.Ln2/logn
	ellPrime := ell + math.Log(float64(len(bs)))/logn

	epsp := imm.EpsPrime(opts.Eps)

	col := rrset.NewCollection(g)
	col.Sampler().NodeCoin = opts.NodeCoin
	col.Sampler().Cascade = opts.Cascade

	// θ_final tracks the largest phase-2 requirement seen across budgets;
	// the final from-scratch regeneration uses it.
	thetaFinal := 0.0
	var prevSelection []graph.NodeID

	s := 0 // index into bs (paper's s-1)
	i := 1
	maxI := int(math.Log2(float64(n))) - 1
	budgetSwitch := false
	lbLast := 1.0
	for i <= maxI && s < len(bs) {
		k := bs[s]
		x := float64(n) / math.Pow(2, float64(i))
		thetaI := imm.LambdaPrime(n, k, opts.Eps, ellPrime) / x
		col.Grow(int64(math.Ceil(thetaI)), rng)

		var seeds []graph.NodeID
		var frac float64
		if budgetSwitch && len(prevSelection) >= k {
			// Reuse the prefix of the previous NodeSelection: the greedy
			// max-cover on the same collection with a smaller budget
			// returns exactly this prefix.
			seeds = prevSelection[:k]
			frac = col.FractionCovered(seeds)
		} else {
			seeds, frac = col.NodeSelection(k)
			prevSelection = seeds
		}

		if float64(n)*frac >= (1+epsp)*x {
			lb := float64(n) * frac / (1 + epsp)
			lbLast = lb
			theta := imm.LambdaStar(n, k, opts.Eps, ellPrime) / lb
			if theta > thetaFinal {
				thetaFinal = theta
			}
			col.Grow(int64(math.Ceil(theta)), rng)
			s++
			budgetSwitch = true
		} else {
			i++
			budgetSwitch = false
		}
	}
	// Line 20-21: budgets that ran out of i-iterations fall back to LB=1.
	if s < len(bs) {
		theta := imm.LambdaStar(n, bs[s], opts.Eps, ellPrime) / 1.0
		if theta > thetaFinal {
			thetaFinal = theta
		}
	}
	if thetaFinal == 0 {
		// Degenerate tiny graph: no i-iterations ran. Use LB = 1.
		thetaFinal = imm.LambdaStar(n, maxBudget, opts.Eps, ellPrime)
	}
	_ = lbLast

	phase1 := col.Len()

	// Lines 22-25: regenerate θ RR sets from scratch (Chen'18 fix) and
	// run the final NodeSelection with the maximum budget.
	col.Reset()
	col.Grow(int64(math.Ceil(thetaFinal)), rng)
	seeds, frac := col.NodeSelection(maxBudget)
	return Result{
		Seeds:       seeds,
		Coverage:    frac,
		SpreadEst:   float64(n) * frac,
		NumRRSets:   col.Len(),
		TotalRRSets: phase1 + col.Len(),
	}
}
