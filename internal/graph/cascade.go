package graph

import "fmt"

// Cascade selects how edge probabilities are interpreted by the diffusion
// and sampling layers. The paper's §5 notes that all results carry over
// from IC to any triggering model; the library implements the two classic
// members of that family.
type Cascade uint8

const (
	// CascadeIC is the independent cascade model: each edge (u,v) fires
	// independently with probability p(u,v).
	CascadeIC Cascade = iota
	// CascadeLT is the linear threshold model in its triggering-set
	// (live-edge) form: each node v selects at most one in-neighbor u
	// with probability p(u,v) (requiring Σ_u p(u,v) <= 1); only the
	// selected edge is live.
	CascadeLT
)

// String names the cascade model.
func (c Cascade) String() string {
	switch c {
	case CascadeIC:
		return "IC"
	case CascadeLT:
		return "LT"
	}
	return fmt.Sprintf("Cascade(%d)", uint8(c))
}

// ValidateLT checks the LT weight constraint Σ_u p(u,v) <= 1 for every
// node v, returning a descriptive error on the first violation. A small
// epsilon absorbs float32 accumulation error.
func (g *Graph) ValidateLT() error {
	const eps = 1e-4
	for v := NodeID(0); int(v) < g.N(); v++ {
		_, ps := g.InEdges(v)
		sum := 0.0
		for _, p := range ps {
			sum += float64(p)
		}
		if sum > 1+eps {
			return fmt.Errorf("graph: node %d has in-weight sum %.4f > 1 (LT requires <= 1)", v, sum)
		}
	}
	return nil
}
