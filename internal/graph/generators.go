package graph

import (
	"uicwelfare/internal/stats"
)

// ErdosRenyi generates a directed G(n, m) graph with m edges chosen
// uniformly at random (without self-loops; parallel picks collapse, so the
// final edge count can be slightly below m).
func ErdosRenyi(n, m int, rng *stats.RNG) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddEdge(u, v, 0)
	}
	return b.Build()
}

// BarabasiAlbert generates an undirected preferential-attachment graph:
// each new node attaches to k existing nodes chosen proportionally to
// degree. The result has heavy-tailed degrees like real social networks.
// Edges are stored in both directions.
func BarabasiAlbert(n, k int, rng *stats.RNG) *Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	b := NewBuilder(n)
	// repeated-nodes list for preferential attachment
	targets := make([]NodeID, 0, 2*n*k)
	// seed clique over the first k+1 nodes
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddUndirected(NodeID(i), NodeID(j), 0)
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	// picked keeps the draw order: appending to targets in map-iteration
	// order would feed nondeterminism back into the preferential
	// sampling, making two runs with the same seed produce different
	// graphs — which content-addressed graph ids would then expose.
	chosen := make(map[NodeID]bool, k)
	picked := make([]NodeID, 0, k)
	for v := k + 1; v < n; v++ {
		for _, id := range picked {
			delete(chosen, id)
		}
		picked = picked[:0]
		for len(picked) < k {
			t := targets[rng.Intn(len(targets))]
			if t == NodeID(v) || chosen[t] {
				continue
			}
			chosen[t] = true
			picked = append(picked, t)
		}
		for _, t := range picked {
			b.AddUndirected(NodeID(v), t, 0)
			targets = append(targets, NodeID(v), t)
		}
	}
	return b.Build()
}

// PreferentialDirected generates a directed heavy-tailed graph: node v
// (for v >= k+1) receives k out-edges whose targets are sampled
// preferentially by in-degree, and additionally emits `extra` uniformly
// random edges per node to mimic the reciprocity and density of follower
// networks. It is the stand-in generator for directed datasets
// (Douban-Book, Douban-Movie, Twitter).
func PreferentialDirected(n, k int, rng *stats.RNG) *Graph {
	if k < 1 {
		k = 1
	}
	if n < k+2 {
		n = k + 2
	}
	b := NewBuilder(n)
	targets := make([]NodeID, 0, n*k)
	for i := 0; i <= k; i++ {
		j := (i + 1) % (k + 1)
		b.AddEdge(NodeID(i), NodeID(j), 0)
		targets = append(targets, NodeID(j))
	}
	for v := k + 1; v < n; v++ {
		for e := 0; e < k; e++ {
			var t NodeID
			if rng.Float64() < 0.15 {
				t = NodeID(rng.Intn(v)) // uniform exploration
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t == NodeID(v) {
				continue
			}
			b.AddEdge(NodeID(v), t, 0)
			targets = append(targets, t)
			// occasional reciprocal follow-back
			if rng.Float64() < 0.3 {
				b.AddEdge(t, NodeID(v), 0)
				targets = append(targets, NodeID(v))
			}
		}
	}
	return b.Build()
}

// WattsStrogatz generates an undirected small-world ring lattice with
// rewiring probability beta. k must be even; each node starts connected
// to its k nearest ring neighbors.
func WattsStrogatz(n, k int, beta float64, rng *stats.RNG) *Graph {
	if k%2 == 1 {
		k++
	}
	if k >= n {
		k = n - 1 - (n-1)%2
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			t := (v + d) % n
			if rng.Float64() < beta {
				for {
					cand := rng.Intn(n)
					if cand != v {
						t = cand
						break
					}
				}
			}
			b.AddUndirected(NodeID(v), NodeID(t), 0)
		}
	}
	return b.Build()
}

// Line returns the directed path 0 -> 1 -> ... -> n-1 with probability p
// on every edge, useful in tests.
func Line(n int, p float64) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), p)
	}
	return b.Build()
}

// Star returns a directed star with edges hub -> leaf for leaves 1..n-1,
// each with probability p.
func Star(n int, p float64) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, NodeID(i), p)
	}
	return b.Build()
}

// Complete returns the complete directed graph on n nodes with uniform
// probability p (no self loops), for tiny exact tests.
func Complete(n int, p float64) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(NodeID(i), NodeID(j), p)
			}
		}
	}
	return b.Build()
}
