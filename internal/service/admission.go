package service

import (
	"fmt"

	"uicwelfare/internal/batch"
	"uicwelfare/internal/core"
)

// AdmissionError reports a request refused by cost-based admission
// control: its predicted sketch cost exceeds the configured admission
// budget. The HTTP layer maps it to 429 with a retryable body — the
// same request may be admitted later, once warmer caches or a
// recalibrated cost model change the prediction, so clients should back
// off and retry rather than treat it as a hard failure.
type AdmissionError struct {
	// EstimatedBytes is the calibrated predicted resident cost of the
	// sketch work the request would trigger.
	EstimatedBytes int64
	// BudgetBytes is the configured admission budget it exceeded.
	BudgetBytes int64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("predicted sketch cost %d bytes exceeds the admission budget of %d bytes (retry later, or shrink budgets / raise eps)",
		e.EstimatedBytes, e.BudgetBytes)
}

// EstimateCost prices a validated plan's sketch work: the planner's
// a-priori estimator (core.Meta.CostEstimator) scaled by the graph's
// learned observed/predicted ratio (falling back to the global model
// for graphs with no observed builds yet). Plans without an estimator
// price at zero (unpriceable planners bypass admission).
func (s *Service) EstimateCost(graphID string, plan *allocatePlan) int64 {
	if plan.meta.CostEstimator == nil {
		return 0
	}
	eps, ell := resolveEpsEll(plan.opts.Eps, plan.opts.Ell)
	raw := plan.meta.CostEstimator(plan.prob.G.N(), plan.prob.G.M(), eps, ell, plan.prob.Budgets)
	return s.costModels.Predict(graphID, raw)
}

// admitPlan applies cost-based admission control to a validated
// allocate/warm plan, returning a non-nil *AdmissionError (counted in
// /v1/stats) when the request must be refused. Admission prices *new*
// sketch work only: with the exact-budget sketch already resident or in
// flight — or, under batching, a gathering/in-flight batch group whose
// current merged vector already covers the request — serving it costs
// nothing extra, so it is admitted regardless of the prediction.
func (s *Service) admitPlan(graphID string, plan *allocatePlan) *AdmissionError {
	if s.admissionBytes <= 0 {
		return nil
	}
	if sp, ok := plan.planner.(core.SketchPlanner); ok {
		eps, ell := resolveEpsEll(plan.opts.Eps, plan.opts.Ell)
		family, cascade := plan.meta.SketchFamily, int(plan.opts.Cascade)
		budgets := sp.SketchBudgets(plan.prob)
		if s.cache.Resident(SketchKey(graphID, family, cascade, eps, ell, budgets)) {
			return nil
		}
		if bp, ok := sp.(core.BatchSketchPlanner); ok && s.batcher != nil {
			groupKey := SketchKey(graphID, family, cascade, eps, ell, nil)
			// A gathering/in-flight batch whose merged vector covers the
			// request, or a resident sketch from a previous batch that
			// dominates it, both serve the request with no new work.
			if s.batcher.Covered(groupKey, budgets, bp.MergeBudgets) {
				return nil
			}
			if rec, ok := s.lookupMerged(groupKey); ok &&
				batch.Dominates(bp.MergeBudgets, rec.budgets, budgets) && s.cache.Resident(rec.key) {
				return nil
			}
		}
	}
	// Otherwise — including planners with no reusable sketch — price the
	// request's sketch work directly.
	if est := s.EstimateCost(graphID, plan); est > s.admissionBytes {
		s.admissionRejects.Add(1)
		return &AdmissionError{EstimatedBytes: est, BudgetBytes: s.admissionBytes}
	}
	return nil
}
