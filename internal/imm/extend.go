package imm

import (
	"context"
	"errors"
	"fmt"
	"math"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
)

// ErrNotExtendable marks a sketch that cannot grow in place (degenerate
// or empty — no collection to append to). Callers fall back to a cold
// build.
var ErrNotExtendable = errors.New("imm: sketch not extendable")

// ExtendSketchCtx grows a resident sketch into one serving budget k
// under opts (whose ε must not be looser than the build's), by
// appending RR sets instead of rebuilding. The sketch's stored lower
// bound LB on OPT_K sizes the extension: OPT is monotone in the budget,
// so LB also lower-bounds OPT_{k'} for any k' >= K, and θ = λ*(n, k',
// ε, ℓ')/LB RR sets carry the IMM guarantee for k'. Appended sets are
// i.i.d. draws from the same RR distribution, so the extended
// collection is distributionally identical to a cold final-phase
// collection of its size.
//
// The original sketch is never mutated: growth happens on a clone, so
// concurrent readers of the resident sketch are undisturbed. When no
// growth is needed the returned sketch shares the original's collection
// read-only.
func ExtendSketchCtx(ctx context.Context, g *graph.Graph, sk *Sketch, k int, opts Options, rng *stats.RNG) (*Sketch, error) {
	opts = opts.withDefaults()
	if sk == nil || sk.Col == nil || sk.Col.Len() == 0 {
		return nil, ErrNotExtendable
	}
	n := g.N()
	if sk.Col.N() != n {
		return nil, fmt.Errorf("imm: sketch built on a %d-node graph, extending on %d nodes", sk.Col.N(), n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: budget %d", ErrNotExtendable, k)
	}
	if k >= n {
		return nil, fmt.Errorf("%w: budget %d covers the whole graph", ErrNotExtendable, k)
	}
	newK := k
	if sk.K > newK {
		newK = sk.K
	}
	lb := sk.LB
	if lb < 1 {
		lb = 1
	}
	ellPrime := EllPlusLog2(opts.Ell, n)
	thetaNew := int64(math.Ceil(LambdaStar(n, newK, opts.Eps, ellPrime) / lb))
	if thetaNew <= int64(sk.Col.Len()) {
		// Already large enough: share the collection read-only under the
		// new budget ceiling (NodeSelection only reads).
		return &Sketch{Col: sk.Col, K: newK, Phase1: sk.Phase1, LB: sk.LB}, nil
	}

	col := sk.Col.Clone()
	smp := col.Sampler()
	smp.Cascade = opts.Cascade
	smp.NodeCoin = opts.NodeCoin
	err := col.GrowParallelCtx(ctx, thetaNew, rng, opts.Workers, func(done, total int64) {
		if opts.Progress != nil {
			opts.Progress(progress.Event{Stage: progress.StageSketch, Round: 1, Done: int(done), Total: int(total)})
		}
	})
	if err != nil {
		return nil, err
	}
	return &Sketch{Col: col, K: newK, Phase1: sk.Phase1, LB: sk.LB}, nil
}
