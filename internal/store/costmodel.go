package store

import "sync"

// CostModel calibrates a planner's a-priori sketch-cost prediction
// (core.Meta.CostEstimator) against what builds actually cost
// (SketchCost on the finished sketch). The estimators derive from the
// worst-case phase-2 sampling bound λ*/k, which overshoots real
// adaptive builds by a roughly constant, deployment-dependent factor —
// a graph's degree distribution and the lower bound the adaptive phase
// finds move the ratio, but they move it consistently. The model tracks
// that ratio as an exponentially weighted moving average: every
// completed build Observes (predicted, actual), and admission control
// Predicts by scaling the raw estimate with the learned ratio. A fresh
// daemon starts with ratio 1 (raw worst-case pricing — admission errs
// strict until the first build calibrates it), and the ratio is clamped
// to [1/64, 64] so one pathological sample cannot flip admission wide
// open or shut.
type CostModel struct {
	mu      sync.Mutex
	ratio   float64 // EWMA of actual/predicted
	samples int
}

// costModelAlpha is the EWMA weight of each new observation.
const costModelAlpha = 0.3

// costModelClamp bounds the learned ratio (and its reciprocal).
const costModelClamp = 64.0

// NewCostModel returns an uncalibrated model (ratio 1: predictions pass
// through unscaled).
func NewCostModel() *CostModel {
	return &CostModel{ratio: 1}
}

// Observe feeds one completed build's predicted and actual resident
// bytes into the calibration. Non-positive inputs are ignored — a
// degenerate sketch (floor-priced) carries no ratio information.
func (m *CostModel) Observe(predicted, actual int64) {
	if predicted <= 0 || actual <= 0 {
		return
	}
	r := float64(actual) / float64(predicted)
	if r > costModelClamp {
		r = costModelClamp
	}
	if r < 1/costModelClamp {
		r = 1 / costModelClamp
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.samples == 0 {
		m.ratio = r
	} else {
		m.ratio = (1-costModelAlpha)*m.ratio + costModelAlpha*r
	}
	m.samples++
}

// Predict scales a raw estimate by the learned ratio. With no
// observations yet the estimate passes through unchanged.
func (m *CostModel) Predict(predicted int64) int64 {
	if predicted <= 0 {
		return predicted
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := float64(predicted) * m.ratio
	if out < 1 {
		return 1
	}
	return int64(out)
}

// Snapshot returns the learned ratio and how many builds informed it
// (for /v1/stats).
func (m *CostModel) Snapshot() (ratio float64, samples int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ratio, m.samples
}
