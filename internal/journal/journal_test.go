package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingWraparound(t *testing.T) {
	r, err := New(Options{Node: "b0", RingSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r.Record(Event{Type: CacheEvict, Key: fmt.Sprintf("k%d", i)})
	}
	events, next := r.Events(Query{Limit: MaxLimit})
	if len(events) != 8 {
		t.Fatalf("ring of 8 after 20 records holds %d events", len(events))
	}
	// The oldest 12 were overwritten: the survivors are k12..k19 with
	// strictly increasing, contiguous sequence numbers.
	for i, e := range events {
		if want := fmt.Sprintf("k%d", 12+i); e.Key != want {
			t.Fatalf("event %d: key %q, want %q", i, e.Key, want)
		}
		if e.Seq != uint64(13+i) {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, 13+i)
		}
		if e.Node != "b0" {
			t.Fatalf("event %d: node %q not stamped", i, e.Node)
		}
	}
	if next != 20 {
		t.Fatalf("next cursor %d, want 20", next)
	}
	// The cursor resumes cleanly: nothing after seq 20 yet.
	more, next2 := r.Events(Query{After: next})
	if len(more) != 0 || next2 != next {
		t.Fatalf("resume after %d returned %d events, next %d", next, len(more), next2)
	}
	r.Record(Event{Type: CacheExpire, Key: "fresh"})
	more, _ = r.Events(Query{After: next})
	if len(more) != 1 || more[0].Key != "fresh" {
		t.Fatalf("resume missed the fresh event: %+v", more)
	}
}

func TestQueryFilters(t *testing.T) {
	r, err := New(Options{Node: "b0", RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().UTC()
	r.Record(Event{Type: OwnershipFlip, Graph: "g1", TS: base})
	r.Record(Event{Type: SketchShip, Graph: "g1", TS: base.Add(time.Second)})
	r.Record(Event{Type: OwnershipFlip, Graph: "g2", Node: "b1", TS: base.Add(2 * time.Second)})

	if got, _ := r.Events(Query{Graph: "g1"}); len(got) != 2 {
		t.Fatalf("graph filter: %d events, want 2", len(got))
	}
	if got, _ := r.Events(Query{Type: OwnershipFlip}); len(got) != 2 {
		t.Fatalf("type filter: %d events, want 2", len(got))
	}
	if got, _ := r.Events(Query{Type: "ownership_flip,sketch_ship", Graph: "g1"}); len(got) != 2 {
		t.Fatalf("type list + graph filter: %d events, want 2", len(got))
	}
	if got, _ := r.Events(Query{Node: "b1"}); len(got) != 1 {
		t.Fatalf("node filter: %d events, want 1", len(got))
	}
	if got, _ := r.Events(Query{Since: base.Add(1500 * time.Millisecond)}); len(got) != 1 {
		t.Fatalf("since filter: %d events, want 1", len(got))
	}
	// The cursor advances past filtered-out events, so pagination
	// terminates even when every remaining event is filtered away.
	got, next := r.Events(Query{Graph: "nope"})
	if len(got) != 0 || next != 3 {
		t.Fatalf("all-filtered query: %d events, next %d (want 0, 3)", len(got), next)
	}
	r.Record(Event{Type: AdmissionReject, Graph: "g1", TraceID: "t-42", TS: base.Add(3 * time.Second)})
	if got, _ := r.Events(Query{Trace: "t-42"}); len(got) != 1 || got[0].Type != AdmissionReject {
		t.Fatalf("trace filter: %+v, want the one t-42 event", got)
	}
	if got, _ := r.Events(Query{Trace: "t-nope"}); len(got) != 0 {
		t.Fatalf("trace filter matched %d events for an unknown id", len(got))
	}
}

func TestSegmentSpillAndRotation(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{
		Node:          "b0",
		RingSize:      32,
		Dir:           dir,
		SegmentBytes:  2 << 10, // tiny segments so one test rotates several
		MaxBytes:      6 << 10,
		FlushInterval: time.Hour, // force size-based sealing only
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~100 events * ~150 JSON bytes ≈ 15 KiB: several segments sealed,
	// the oldest rotated away to honor the 6 KiB budget.
	for i := 0; i < 100; i++ {
		r.Record(Event{Type: SweepDispatch, Graph: "g", Cell: fmt.Sprintf("cell-%04d", i), Reason: strings.Repeat("x", 80)})
	}
	r.Close()

	matches, _ := filepath.Glob(filepath.Join(dir, "*"+SegmentExt))
	if len(matches) == 0 {
		t.Fatal("no segments written")
	}
	var total int64
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 8<<10 { // budget + one freshly sealed segment of slack
		t.Fatalf("journal dir holds %d bytes after rotation (budget 6 KiB)", total)
	}
	st := r.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected several sealed segments, got %d", st.Segments)
	}
	if int64(len(matches)) >= st.Segments {
		t.Fatalf("rotation deleted nothing: %d files on disk, %d sealed", len(matches), st.Segments)
	}

	// Surviving segments decode cleanly and in order.
	var lastSeq uint64
	for _, m := range matches {
		events, err := ReadSegment(m)
		if err != nil {
			t.Fatalf("ReadSegment(%s): %v", m, err)
		}
		for _, e := range events {
			if e.Seq <= lastSeq {
				t.Fatalf("segment events out of order: seq %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}
	}
	if lastSeq != 100 {
		t.Fatalf("newest spilled seq %d, want 100", lastSeq)
	}
}

func TestReadSegmentRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	r.Record(Event{Type: MemberDown, Node: "b1"})
	r.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "*"+SegmentExt))
	if len(matches) != 1 {
		t.Fatalf("want 1 segment, got %d", len(matches))
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff // flip a payload bit
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(matches[0]); err == nil {
		t.Fatal("corrupt segment decoded without error")
	}
}

// TestConcurrentRecord exercises the ring, subscribers, and spill under
// the race detector: many writers, a querier, and a subscriber at once.
func TestConcurrentRecord(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Node: "b0", RingSize: 128, Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch, cancel := r.Subscribe(16)
	defer cancel()
	go func() {
		for range ch {
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Event{Type: AdmissionQueue, Graph: fmt.Sprintf("g%d", w), WaitMS: int64(i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cursor uint64
		for i := 0; i < 50; i++ {
			_, cursor = r.Events(Query{After: cursor, Limit: MaxLimit})
		}
	}()
	wg.Wait()
	<-done

	if got := r.Stats().Recorded; got != 1600 {
		t.Fatalf("recorded %d events, want 1600", got)
	}
	events, _ := r.Events(Query{Limit: MaxLimit})
	if len(events) != 128 {
		t.Fatalf("ring holds %d, want 128", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("ring not contiguous at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}
