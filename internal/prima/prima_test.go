package prima

import (
	"math"
	"testing"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/stats"
)

func TestSelectReturnsMaxBudgetSeeds(t *testing.T) {
	rng := stats.NewRNG(1)
	g := graph.ErdosRenyi(100, 500, rng).WeightedCascade()
	res := Select(g, []int{5, 15, 10}, Options{}, rng)
	if len(res.Seeds) != 15 {
		t.Errorf("got %d seeds, want max budget 15", len(res.Seeds))
	}
}

func TestSelectSeedsDistinct(t *testing.T) {
	rng := stats.NewRNG(2)
	g := graph.ErdosRenyi(100, 500, rng).WeightedCascade()
	res := Select(g, []int{20}, Options{}, rng)
	seen := map[graph.NodeID]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
}

func TestPrefixPreservingProperty(t *testing.T) {
	// For every budget in the vector, the top-b_i prefix must achieve
	// spread within (1-1/e-eps) of a strong reference (greedy MC).
	rng := stats.NewRNG(3)
	g := graph.ErdosRenyi(80, 400, rng).WeightedCascade()
	budgets := []int{8, 4, 2}
	res := Select(g, budgets, Options{Eps: 0.3, Ell: 1}, rng)
	if len(res.Seeds) != 8 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	for _, b := range budgets {
		prefix := res.Seeds[:b]
		got := diffusion.Spread(g, prefix, rng, 30000)
		ref := diffusion.GreedySpreadMC(g, b, 600, rng)
		refSpread := diffusion.Spread(g, ref, rng, 30000)
		if got < (1-1/math.E-0.3)*refSpread {
			t.Errorf("budget %d: prefix spread %v below floor of reference %v", b, got, refSpread)
		}
	}
}

func TestSelectSingleBudgetMatchesIMMQuality(t *testing.T) {
	rng := stats.NewRNG(4)
	g := graph.ErdosRenyi(100, 600, rng).WeightedCascade()
	pres := Select(g, []int{6}, Options{}, stats.NewRNG(5))
	ires := imm.Run(g, 6, imm.Options{}, stats.NewRNG(6))
	ps := diffusion.Spread(g, pres.Seeds, rng, 30000)
	is := diffusion.Spread(g, ires.Seeds, rng, 30000)
	if math.Abs(ps-is) > 0.2*math.Max(ps, is) {
		t.Errorf("PRIMA single-budget spread %v far from IMM %v", ps, is)
	}
}

func TestSelectRRSetCountComparableToIMM(t *testing.T) {
	// Table 6: PRIMA's final collection is the same order of magnitude as
	// the largest per-budget IMM run (ell' differs by log|b|/log n).
	rng := stats.NewRNG(7)
	g := graph.ErdosRenyi(150, 900, rng).WeightedCascade()
	budgets := []int{10, 5, 2}
	pres := Select(g, budgets, Options{}, stats.NewRNG(8))
	maxIMM := 0
	for _, b := range budgets {
		r := imm.Run(g, b, imm.Options{}, stats.NewRNG(9))
		if r.NumRRSets > maxIMM {
			maxIMM = r.NumRRSets
		}
	}
	if pres.NumRRSets < maxIMM/3 || pres.NumRRSets > maxIMM*3 {
		t.Errorf("PRIMA RR sets %d not comparable to max IMM %d", pres.NumRRSets, maxIMM)
	}
}

func TestSelectDeterministic(t *testing.T) {
	g := graph.Star(60, 0.5)
	a := Select(g, []int{3, 1}, Options{}, stats.NewRNG(42))
	b := Select(g, []int{3, 1}, Options{}, stats.NewRNG(42))
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("nondeterministic: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}

func TestSelectUniformBudgets(t *testing.T) {
	rng := stats.NewRNG(10)
	g := graph.ErdosRenyi(80, 400, rng).WeightedCascade()
	res := Select(g, []int{5, 5, 5}, Options{}, rng)
	if len(res.Seeds) != 5 {
		t.Errorf("uniform budgets: got %d seeds", len(res.Seeds))
	}
}

func TestSelectBudgetLargerThanGraph(t *testing.T) {
	g := graph.Line(4, 0.5)
	rng := stats.NewRNG(11)
	res := Select(g, []int{100}, Options{}, rng)
	if len(res.Seeds) != 4 {
		t.Errorf("clamped budget: %d seeds", len(res.Seeds))
	}
}

func TestSelectEmptyAndZeroBudgets(t *testing.T) {
	g := graph.Line(4, 0.5)
	rng := stats.NewRNG(12)
	if res := Select(g, nil, Options{}, rng); len(res.Seeds) != 0 {
		t.Errorf("nil budgets returned seeds")
	}
	if res := Select(g, []int{0, 0}, Options{}, rng); len(res.Seeds) != 0 {
		t.Errorf("zero budgets returned seeds")
	}
}

func TestSelectHubFirstOnStar(t *testing.T) {
	g := graph.Star(50, 0.9)
	rng := stats.NewRNG(13)
	res := Select(g, []int{3, 1}, Options{}, rng)
	if res.Seeds[0] != 0 {
		t.Errorf("hub not first in ordering: %v", res.Seeds)
	}
}
