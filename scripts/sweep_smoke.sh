#!/usr/bin/env bash
# Sweep smoke test: boots a router in front of two welmaxd backends and
# drives the mini evaluation grid through POST /v1/sweeps via
# `experiments -remote`, then checks the sweep's cells all finished,
# landed on both shards' HRW owners (node job-id prefixes), and that the
# results route serves the grouped welfare table from a persisted
# artifact. The in-process equivalents live in
# internal/cluster/sweeps_test.go and internal/service/sweeps_test.go.
set -euo pipefail

ROUTER="127.0.0.1:18095"
B0="127.0.0.1:18096"
B1="127.0.0.1:18097"
BASE="http://$ROUTER"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "sweep_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() { # $1 = base url
  for _ in $(seq 1 100); do
    if curl -fsS "$1/v1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon at $1 did not become healthy"
}

go build -o "$WORK/welmaxd" ./cmd/welmaxd
go build -o "$WORK/experiments" ./cmd/experiments

"$WORK/welmaxd" -addr "$B0" -node b0 & PIDS+=($!)
"$WORK/welmaxd" -addr "$B1" -node b1 & PIDS+=($!)
wait_healthy "http://$B0"
wait_healthy "http://$B1"

"$WORK/welmaxd" -addr "$ROUTER" -route "b0=http://$B0,b1=http://$B1" \
  -probe-interval 300ms -data-dir "$WORK/spill" & PIDS+=($!)
wait_healthy "$BASE"

for _ in $(seq 1 100); do
  ALIVE="$(curl -fsS "$BASE/healthz" | jq -r .alive)"
  [ "$ALIVE" = 2 ] && break
  sleep 0.1
done
[ "$ALIVE" = 2 ] || fail "router sees $ALIVE/2 backends alive"

# The remote client registers both mini-grid networks, posts the sweep,
# tails its SSE stream, and fails non-zero if any cell failed.
"$WORK/experiments" -remote "$BASE" -scale 0.05 -runs 200 \
  | tee "$WORK/experiments.out" || fail "experiments -remote"

# The sweep the client ran is the router's latest sweep job.
SWEEP="$(curl -fsS "$BASE/v1/sweeps" | jq -r '.sweeps[-1]')"
SWEEP_ID="$(jq -r .id <<<"$SWEEP")"
STATE="$(jq -r .state <<<"$SWEEP")"
[ "$STATE" = done ] || fail "sweep $SWEEP_ID ended $STATE"
CELLS="$(jq -r .result.cells <<<"$SWEEP")"
DONE="$(jq -r .result.done <<<"$SWEEP")"
[ "$CELLS" = 16 ] && [ "$DONE" = 16 ] || fail "sweep $SWEEP_ID: $DONE/$CELLS cells done"

RESULTS="$(curl -fsS "$BASE/v1/sweeps/$SWEEP_ID/results?group_by=graph,config,algo")"
ART="$(jq -r .artifact_id <<<"$RESULTS")"
case "$ART" in s*) ;; *) fail "artifact id $ART" ;; esac
[ -f "$WORK/spill/catalog/sweeps/$ART.wsr" ] || fail "artifact $ART not persisted under the spill dir"

# Cells must have executed on their graphs' HRW owners: with two graphs
# spread across two backends (the mini grid picks flixster and
# douban-book, which hash to distinct owners), both node prefixes appear.
for node in b0 b1; do
  N="$(jq -r --arg n "$node" '[.cells[] | select(.job_id | startswith($n + "-"))] | length' <<<"$RESULTS")"
  [ "$N" -ge 1 ] || fail "no cells ran on $node"
done

NGROUPS="$(jq -r '.groups | length' <<<"$RESULTS")"
[ "$NGROUPS" -ge 4 ] || fail "grouped results have $NGROUPS groups, want >= 4"
WELFARE_OK="$(jq -r '[.cells[] | select(.has_welfare and .welfare_mean > 0)] | length' <<<"$RESULTS")"
[ "$WELFARE_OK" = 16 ] || fail "only $WELFARE_OK/16 cells carry a positive welfare estimate"

echo "sweep_smoke: OK (sweep $SWEEP_ID, artifact $ART, $NGROUPS groups)"
