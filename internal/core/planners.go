package core

import (
	"context"
	"fmt"
	"math"

	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
)

// The built-in planners self-register so every dispatcher (service,
// CLIs, experiment drivers) sees one consistent algorithm list.
func init() {
	bothCascades := []string{CascadeNameIC, CascadeNameLT}
	Register(AlgoBundleGRD, Meta{
		Description:   "Algorithm 1: (1-1/e-ε)-approximate greedy allocation on the prefix-preserving PRIMA ordering",
		SketchFamily:  "prima",
		Cascades:      bothCascades,
		CostEstimator: primaCostEstimate,
	}, func() Planner { return bundleGRDPlanner{} })
	Register(AlgoItemDisjoint, Meta{
		Description:   "item-disj baseline (§4.3.1.2): one IMM call, disjoint seeds, one item per seed node",
		SketchFamily:  "imm",
		Cascades:      bothCascades,
		CostEstimator: immCostEstimate,
	}, func() Planner { return itemDisjointPlanner{} })
	Register(AlgoBundleDisjoint, Meta{
		Description:   "bundle-disj baseline (§4.3.1.2): greedy bundling with fresh IMM seeds per bundle",
		Cascades:      bothCascades,
		CostEstimator: immCostEstimate,
	}, func() Planner { return bundleDisjointPlanner{} })
}

// primaOptions translates allocator options for the PRIMA sketch builder.
func primaOptions(opts Options) prima.Options {
	return prima.Options{Eps: opts.Eps, Ell: opts.Ell, Cascade: opts.Cascade, Progress: opts.Progress, Workers: opts.SketchWorkers}
}

// immOptions translates allocator options for the IMM sketch builder.
func immOptions(opts Options) imm.Options {
	return imm.Options{Eps: opts.Eps, Ell: opts.Ell, Cascade: opts.Cascade, Progress: opts.Progress, Workers: opts.SketchWorkers}
}

// bundleGRDPlanner adapts BundleGRD to the registry. The sketch seam is
// PRIMA: one prefix-preserving sketch serves every budget prefix.
type bundleGRDPlanner struct{}

func (bundleGRDPlanner) Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	sk, err := prima.BuildSketchCtx(ctx, p.G, p.Budgets, primaOptions(opts), rng)
	if err != nil {
		return Result{}, err
	}
	return BundleGRDFromSketch(p, sk), nil
}

func (bundleGRDPlanner) SketchBudgets(p *Problem) []int {
	return prima.CanonicalBudgets(p.Budgets, p.G.N())
}

func (bundleGRDPlanner) BuildSketch(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (any, error) {
	return prima.BuildSketchCtx(ctx, p.G, p.Budgets, primaOptions(opts), rng)
}

func (bundleGRDPlanner) PlanFromSketch(p *Problem, sketch any) (Result, error) {
	sk, ok := sketch.(*prima.Sketch)
	if !ok {
		return Result{}, fmt.Errorf("core: %s expects a *prima.Sketch, got %T", AlgoBundleGRD, sketch)
	}
	return BundleGRDFromSketch(p, sk), nil
}

func (bundleGRDPlanner) PlanFromSketchProgress(p *Problem, sketch any, report progress.Func) (Result, error) {
	sk, ok := sketch.(*prima.Sketch)
	if !ok {
		return Result{}, fmt.Errorf("core: %s expects a *prima.Sketch, got %T", AlgoBundleGRD, sketch)
	}
	return BundleGRDFromSketchProgress(p, sk, report), nil
}

// MergeBudgets unions two canonical PRIMA budget vectors: a sketch
// sized for the union carries the prefix-preserving guarantee for every
// budget in either input (the union bound over |b| budgets only grows
// by log|b|/log n in ℓ'). Inputs are already clamped to [1, n], so no
// further clamping is needed.
func (bundleGRDPlanner) MergeBudgets(a, b []int) []int {
	return prima.CanonicalBudgets(append(append([]int(nil), a...), b...), math.MaxInt)
}

// BuildSketchForBudgets builds the PRIMA sketch for an explicit merged
// budget vector (the batch scheduler's dominating build).
func (bundleGRDPlanner) BuildSketchForBudgets(ctx context.Context, p *Problem, budgets []int, opts Options, rng *stats.RNG) (any, error) {
	return prima.BuildSketchCtx(ctx, p.G, budgets, primaOptions(opts), rng)
}

// ExtendSketch grows a resident PRIMA sketch built for oldBudgets into
// one serving newBudgets (the service's delta-build seam).
func (bundleGRDPlanner) ExtendSketch(ctx context.Context, p *Problem, sketch any, oldBudgets, newBudgets []int, opts Options, rng *stats.RNG) (any, error) {
	sk, ok := sketch.(*prima.Sketch)
	if !ok {
		return nil, fmt.Errorf("core: %s expects a *prima.Sketch, got %T", AlgoBundleGRD, sketch)
	}
	po := primaOptions(opts)
	return prima.ExtendSketchCtx(ctx, p.G, sk, oldBudgets, po, newBudgets, po, rng)
}

// itemDisjointPlanner adapts ItemDisjoint to the registry. The sketch
// seam is IMM sized for the total budget.
type itemDisjointPlanner struct{}

func (itemDisjointPlanner) Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	sk, err := imm.BuildSketchCtx(ctx, p.G, p.TotalBudget(), immOptions(opts), rng)
	if err != nil {
		return Result{}, err
	}
	return ItemDisjointFromSketch(p, sk), nil
}

func (itemDisjointPlanner) SketchBudgets(p *Problem) []int {
	return []int{p.TotalBudget()}
}

func (itemDisjointPlanner) BuildSketch(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (any, error) {
	return imm.BuildSketchCtx(ctx, p.G, p.TotalBudget(), immOptions(opts), rng)
}

func (itemDisjointPlanner) PlanFromSketch(p *Problem, sketch any) (Result, error) {
	sk, ok := sketch.(*imm.Sketch)
	if !ok {
		return Result{}, fmt.Errorf("core: %s expects an *imm.Sketch, got %T", AlgoItemDisjoint, sketch)
	}
	return ItemDisjointFromSketch(p, sk), nil
}

func (itemDisjointPlanner) PlanFromSketchProgress(p *Problem, sketch any, report progress.Func) (Result, error) {
	sk, ok := sketch.(*imm.Sketch)
	if !ok {
		return Result{}, fmt.Errorf("core: %s expects an *imm.Sketch, got %T", AlgoItemDisjoint, sketch)
	}
	return ItemDisjointFromSketchProgress(p, sk, report), nil
}

// MergeBudgets takes the larger of two IMM total budgets: the greedy
// ordering selected for max(k_a, k_b) is prefix-consistent, so its
// first k' nodes are exactly what a k'-sized selection on the same
// collection would return.
func (itemDisjointPlanner) MergeBudgets(a, b []int) []int {
	ka, kb := 0, 0
	if len(a) > 0 {
		ka = a[0]
	}
	if len(b) > 0 {
		kb = b[0]
	}
	return []int{max(ka, kb)}
}

// BuildSketchForBudgets builds the IMM sketch for an explicit merged
// total budget (the batch scheduler's dominating build).
func (itemDisjointPlanner) BuildSketchForBudgets(ctx context.Context, p *Problem, budgets []int, opts Options, rng *stats.RNG) (any, error) {
	k := 0
	if len(budgets) > 0 {
		k = budgets[0]
	}
	return imm.BuildSketchCtx(ctx, p.G, k, immOptions(opts), rng)
}

// ExtendSketch grows a resident IMM sketch to serve the merged total
// budget (the service's delta-build seam). oldBudgets is unused: the
// IMM sketch carries its own K and lower bound.
func (itemDisjointPlanner) ExtendSketch(ctx context.Context, p *Problem, sketch any, _, newBudgets []int, opts Options, rng *stats.RNG) (any, error) {
	sk, ok := sketch.(*imm.Sketch)
	if !ok {
		return nil, fmt.Errorf("core: %s expects an *imm.Sketch, got %T", AlgoItemDisjoint, sketch)
	}
	k := 0
	if len(newBudgets) > 0 {
		k = newBudgets[0]
	}
	return imm.ExtendSketchCtx(ctx, p.G, sk, k, immOptions(opts), rng)
}

// bundleDisjointPlanner adapts BundleDisjoint. Its adaptive sequence of
// IMM calls depends on intermediate results, so there is no reusable
// sketch — it is a plain Planner.
type bundleDisjointPlanner struct{}

func (bundleDisjointPlanner) Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	return BundleDisjointCtx(ctx, p, opts, rng)
}
