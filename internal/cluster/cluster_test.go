package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
)

// backend is one in-process welmaxd shard listening on a real TCP port,
// so tests can kill it and bring a fresh instance back up on the same
// address — the lifecycle the router's membership tracking is about.
type backend struct {
	name   string
	addr   string
	opts   service.Options
	svc    *service.Service
	srv    *http.Server
	closed bool
}

// startBackendAt boots a backend named name on addr ("127.0.0.1:0" picks
// a free port; a previous backend's addr reuses it for restarts).
func startBackendAt(t testing.TB, name, addr string, opts service.Options) *backend {
	t.Helper()
	opts.NodeID = name
	svc, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	b := &backend{name: name, addr: ln.Addr().String(), opts: opts, svc: svc, srv: srv}
	t.Cleanup(b.kill)
	return b
}

func (b *backend) url() string { return "http://" + b.addr }

// kill stops the backend abruptly (in-flight requests are dropped).
func (b *backend) kill() {
	if b.closed {
		return
	}
	b.closed = true
	_ = b.srv.Close()
	b.svc.Close()
}

// restart brings a fresh daemon up on the same address (same node name,
// same options — a process restart).
func (b *backend) restart(t testing.TB) *backend {
	t.Helper()
	if !b.closed {
		t.Fatal("restarting a live backend")
	}
	return startBackendAt(t, b.name, b.addr, b.opts)
}

// newCluster assembles a router (not Started — tests drive Sync
// explicitly for determinism) and its client-facing test server.
func newCluster(t testing.TB, backends []*backend, opts cluster.Options) (*cluster.Router, *client) {
	t.Helper()
	for _, b := range backends {
		opts.Backends = append(opts.Backends, cluster.Backend{Name: b.name, URL: b.url()})
	}
	rt, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, &client{t: t, base: front.URL}
}

// client is a minimal JSON client against the router front end.
type client struct {
	t    testing.TB
	base string
}

func (c *client) do(method, path string, body any) (int, []byte) {
	c.t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func (c *client) doJSON(method, path string, body, out any, wantStatus int) {
	c.t.Helper()
	status, raw := c.do(method, path, body)
	if status != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d: %s", method, path, status, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: bad response %q: %v", method, path, raw, err)
		}
	}
}

// lineEdges builds a distinct tiny path graph of n nodes.
func lineEdges(n int) string {
	var b strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "%d %d 0.5\n", i, i+1)
	}
	return b.String()
}

// registerLine registers a path graph of n nodes through the router.
func (c *client) registerLine(n int) service.GraphInfo {
	c.t.Helper()
	var info service.GraphInfo
	c.doJSON("POST", "/v1/graphs", service.GraphRequest{
		Name: fmt.Sprintf("line%d", n), Edges: lineEdges(n), KeepProbs: true,
	}, &info, http.StatusCreated)
	return info
}

// submit posts an async request and returns the (node-prefixed) job id.
func (c *client) submit(path string, req any) string {
	c.t.Helper()
	var out struct {
		JobID string `json:"job_id"`
	}
	c.doJSON("POST", path, req, &out, http.StatusAccepted)
	if out.JobID == "" {
		c.t.Fatal("no job id")
	}
	return out.JobID
}

// jobView mirrors the backend job view with a typed allocate result.
type jobView struct {
	ID     string                  `json:"id"`
	State  service.JobState        `json:"state"`
	Error  string                  `json:"error"`
	Result *service.AllocateResult `json:"result"`
}

// waitJob polls the job through the router until it is terminal.
func (c *client) waitJob(id string) jobView {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var view jobView
		c.doJSON("GET", "/v1/jobs/"+id, nil, &view, http.StatusOK)
		if view.State.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("job %s did not finish", id)
	return jobView{}
}

// streamEvents reads the job's SSE stream through the router until the
// terminal event, returning the SSE event names in order.
func (c *client) streamEvents(id string) []string {
	c.t.Helper()
	resp, err := http.Get(c.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		c.t.Fatalf("events: content type %q", ct)
	}
	var names []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			names = append(names, name)
		}
	}
	return names
}

// syncCtx is a short helper context for explicit Sync calls.
func syncCtx() context.Context { return context.Background() }
