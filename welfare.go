// Package welfare is the public API of the UIC welfare-maximization
// library — a from-scratch Go reproduction of Banerjee, Chen &
// Lakshmanan, "Maximizing Welfare in Social Networks under a Utility
// Driven Influence Diffusion Model" (SIGMOD 2019).
//
// The library models viral marketing of mutually complementary products:
// items propagate through a social network under the UIC diffusion model,
// users adopt the utility-maximizing bundle from what they have been
// exposed to, and the network host allocates limited seed budgets per
// item to maximize expected social welfare. The flagship algorithm,
// BundleGRD, achieves a (1-1/e-ε)-approximation despite the objective
// being neither submodular nor supermodular, and never needs to know the
// item utilities.
//
// Quick start:
//
//	g, _ := welfare.GenerateNetworkE("flixster", 1.0, 1)
//	m := welfare.Config1() // two complementary items (Table 3)
//	p, _ := welfare.NewProblem(g, m, []int{50, 50})
//	res, _ := welfare.Run(context.Background(), p,
//	    welfare.WithAlgorithm(welfare.AlgoBundleGRD),
//	    welfare.WithRuns(10000))
//	fmt.Printf("expected social welfare: %.1f ± %.1f\n",
//	    res.Welfare.Mean, res.Welfare.StdErr)
//
// Run dispatches through a pluggable planner registry (see Algorithms,
// core.Register) and accepts a context for cancellation plus a progress
// callback (WithProgress) for long sketch builds and estimates.
//
// Subpackages under internal/ hold the substrates (graph, IC diffusion,
// RR sets, IMM/TIM, PRIMA, Com-IC, BDHS, auctions); this package
// re-exports the surface a downstream user needs.
package welfare

import (
	"uicwelfare/internal/core"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// Graph is a compact directed social network with per-edge influence
	// probabilities.
	Graph = graph.Graph
	// NodeID identifies a node (0..N-1).
	NodeID = graph.NodeID
	// ItemSet is a bitmask set over the item universe.
	ItemSet = itemset.Set
	// Model bundles valuation, prices and noise: U(S) = V(S)-P(S)+N(S).
	Model = utility.Model
	// Valuation is a set-valued item valuation function.
	Valuation = utility.Valuation
	// Allocation maps items to their seed nodes.
	Allocation = uic.Allocation
	// Problem is a WelMax instance (graph, model, per-item budgets).
	Problem = core.Problem
	// Options carries the approximation parameters ε and ℓ.
	Options = core.Options
	// Result is an allocation plus effort statistics.
	Result = core.Result
	// RNG is the deterministic random generator used everywhere.
	RNG = stats.RNG
	// WelfareEstimate is a Monte-Carlo estimate of expected welfare.
	WelfareEstimate = uic.WelfareEstimate
	// Simulator runs UIC diffusions directly for advanced use.
	Simulator = uic.Simulator
	// GAP holds Com-IC adoption probabilities derived via Eq. 12.
	GAP = utility.GAP
)

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// NewItemSet builds an ItemSet from item indices.
func NewItemSet(items ...int) ItemSet { return itemset.New(items...) }

// LoadGraph reads a whitespace edge list ("u v [p]" lines) from disk. Set
// undirected to insert each edge in both directions. Call
// WeightedCascade on the result if the file carries no probabilities.
func LoadGraph(path string, undirected bool) (*Graph, error) {
	return graph.LoadEdgeList(path, undirected)
}

// NewProblem assembles a WelMax instance after validating budgets.
func NewProblem(g *Graph, m *Model, budgets []int) (*Problem, error) {
	return core.NewProblem(g, m, budgets)
}

// NewModel assembles a utility model from a valuation, additive prices
// and zero-mean per-item noise.
func NewModel(val Valuation, prices []float64, noise []NoiseDist) (*Model, error) {
	return utility.NewModel(val, prices, noise)
}

// NoiseDist is a probability distribution usable as an item's noise term.
type NoiseDist = stats.Dist

// GaussianNoise returns the zero-mean Gaussian noise N(0, sigma^2) the
// paper uses throughout its experiments.
func GaussianNoise(sigma float64) NoiseDist { return stats.Noise(sigma) }

// TableValuation wraps an explicit 2^k-entry value table.
func TableValuation(k int, vals []float64) (Valuation, error) {
	return utility.NewTableValuation(k, vals)
}

// BundleGRD runs Algorithm 1: the (1-1/e-ε)-approximate greedy
// allocation built on the prefix-preserving PRIMA seed selection.
//
// Deprecated: use Run with WithAlgorithm(AlgoBundleGRD), which adds
// context cancellation and progress reporting.
func BundleGRD(p *Problem, opts Options, rng *RNG) Result {
	return core.BundleGRD(p, opts, rng)
}

// ItemDisjoint runs the item-disj baseline (one item per seed node).
//
// Deprecated: use Run with WithAlgorithm(AlgoItemDisjoint).
func ItemDisjoint(p *Problem, opts Options, rng *RNG) Result {
	return core.ItemDisjoint(p, opts, rng)
}

// BundleDisjoint runs the bundle-disj baseline (greedy bundling with
// fresh seeds per bundle).
//
// Deprecated: use Run with WithAlgorithm(AlgoBundleDisjoint).
func BundleDisjoint(p *Problem, opts Options, rng *RNG) Result {
	return core.BundleDisjoint(p, opts, rng)
}

// NewSimulator builds a UIC diffusion simulator for direct use.
func NewSimulator(g *Graph, m *Model) *Simulator { return uic.NewSimulator(g, m) }

// EstimateWelfare Monte-Carlo-estimates the expected social welfare of an
// allocation under the problem's model.
func EstimateWelfare(p *Problem, alloc *Allocation, rng *RNG, runs int) WelfareEstimate {
	return uic.NewSimulator(p.G, p.Model).EstimateWelfare(alloc, rng, runs)
}

// EstimateWelfareParallel shards the estimate across worker goroutines.
func EstimateWelfareParallel(p *Problem, alloc *Allocation, rng *RNG, runs, workers int) WelfareEstimate {
	return uic.EstimateWelfareParallel(p.G, p.Model, alloc, rng, runs, workers)
}

// Ready-made experimental configurations from the paper.

// Config1 is Table 3's configuration 1/2 (two items, both with
// non-negative deterministic utility).
func Config1() *Model { return utility.Config1() }

// Config3 is Table 3's configuration 3/4 (one item with negative
// deterministic utility).
func Config3() *Model { return utility.Config3() }

// ConfigAdditive is Table 4's configuration 5: k independent items with
// unit utility each.
func ConfigAdditive(k int) *Model { return utility.Config5(k) }

// ConfigCone is Table 4's configurations 6-7: a core item is required
// for positive utility.
func ConfigCone(k, core int) *Model { return utility.ConfigCone(k, core) }

// ConfigLevelwise is Table 4's configuration 8: a random supermodular
// valuation built level-by-level (Eq. 13).
func ConfigLevelwise(k int, rng *RNG) *Model { return utility.Config8(k, rng) }

// RealParams is the 5-item PlayStation-bundle model of Table 5, learned
// from real bidding data in the paper.
func RealParams() *Model { return utility.RealParams() }

// RealParamsSmoothed is the nearest supermodular variant of RealParams.
func RealParamsSmoothed() *Model { return utility.RealParamsSmoothed() }

// GAPFromModel converts a two-item model to Com-IC adoption
// probabilities via Eq. 12.
func GAPFromModel(m *Model) (GAP, error) { return utility.GAPFromModel(m) }

// IsSupermodular exhaustively verifies supermodularity of a valuation
// (feasible for small item universes).
func IsSupermodular(v Valuation) bool { return utility.IsSupermodular(v) }

// IsMonotone exhaustively verifies monotonicity of a valuation.
func IsMonotone(v Valuation) bool { return utility.IsMonotone(v) }
