package service

import (
	"context"
	"testing"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/expr"
)

// queueEnv builds a daemon with queue-with-deadline admission enabled
// and one registered graph, returning an over-budget allocate plan: ε at
// the floor prices far past the 1MB admission budget, so the plan only
// admits once something makes its sketch work free.
func queueEnv(t *testing.T, opts Options) (*Service, string, *allocatePlan) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	g, err := expr.GenerateByName("flixster", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	entry, _, err := s.RegisterGraph("t", g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.validateAllocate(&AllocateRequest{GraphID: entry.ID, Budgets: []int{10, 10}, Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if aerr := s.checkAdmission(entry.ID, plan); aerr == nil {
		t.Fatal("fixture plan was admitted outright; it must be over budget")
	}
	return s, entry.ID, plan
}

// planKey derives the plan's sketch-cache key, the residency admission
// checks against.
func planKey(graphID string, plan *allocatePlan) string {
	sp := plan.planner.(core.SketchPlanner)
	eps, ell := resolveEpsEll(plan.opts.Eps, plan.opts.Ell)
	return SketchKey(graphID, plan.meta.SketchFamily, int(plan.opts.Cascade), eps, ell, sp.SketchBudgets(plan.prob))
}

// TestAdmitOrWaitAdmitsWhenSketchLands is the queue's reason to exist: a
// request over budget by a small factor holds a queue slot, and when its
// sketch becomes resident mid-wait (here an injected Put, standing in
// for a finishing warm or a shipped import) it admits instead of 429ing.
func TestAdmitOrWaitAdmitsWhenSketchLands(t *testing.T) {
	s, id, plan := queueEnv(t, Options{
		AdmissionMB:    1,
		AdmissionQueue: 2,
		AdmissionWait:  10 * time.Second,
		AdmissionSlack: 1 << 30, // anything queues
		Workers:        1,
	})
	done := make(chan *AdmissionError, 1)
	go func() { done <- s.admitOrWait(context.Background(), id, plan) }()

	// The request must actually be waiting, not rejected, before the
	// sketch lands.
	deadline := time.Now().Add(5 * time.Second)
	for s.admissionQueued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case aerr := <-done:
		t.Fatalf("queued request resolved early: %v", aerr)
	default:
	}
	s.cache.Put(planKey(id, plan), struct{}{})

	select {
	case aerr := <-done:
		if aerr != nil {
			t.Fatalf("request not admitted after its sketch landed: %v", aerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted")
	}
	if got := s.admissionQueueAdmitted.Load(); got != 1 {
		t.Errorf("admission_queue_admitted = %d, want 1", got)
	}
	if got := s.admissionRejects.Load(); got != 0 {
		t.Errorf("admission_rejects = %d, want 0", got)
	}
}

// TestAdmitOrWaitDeadline: a queued request whose prediction never
// improves rejects at the deadline, counted as both a timeout and a
// reject.
func TestAdmitOrWaitDeadline(t *testing.T) {
	s, id, plan := queueEnv(t, Options{
		AdmissionMB:    1,
		AdmissionQueue: 1,
		AdmissionWait:  60 * time.Millisecond,
		AdmissionSlack: 1 << 30,
		Workers:        1,
	})
	aerr := s.admitOrWait(context.Background(), id, plan)
	if aerr == nil {
		t.Fatal("over-budget request admitted with nothing resident")
	}
	if s.admissionQueueTimeouts.Load() != 1 || s.admissionRejects.Load() != 1 {
		t.Errorf("timeouts=%d rejects=%d, want 1/1",
			s.admissionQueueTimeouts.Load(), s.admissionRejects.Load())
	}
}

// TestAdmitOrWaitSlackGate: a prediction beyond the slack factor is a
// hopeless wait — it sheds immediately without consuming a queue slot.
func TestAdmitOrWaitSlackGate(t *testing.T) {
	s, id, plan := queueEnv(t, Options{
		AdmissionMB:    1,
		AdmissionQueue: 1,
		AdmissionWait:  10 * time.Second,
		AdmissionSlack: 1.01, // the ε-floor plan is far more than 1% over
		Workers:        1,
	})
	start := time.Now()
	if aerr := s.admitOrWait(context.Background(), id, plan); aerr == nil {
		t.Fatal("far-over-budget request admitted")
	}
	if time.Since(start) > time.Second {
		t.Error("far-over-budget request waited instead of shedding")
	}
	if s.admissionQueued.Load() != 0 || s.admissionRejects.Load() != 1 {
		t.Errorf("queued=%d rejects=%d, want 0/1", s.admissionQueued.Load(), s.admissionRejects.Load())
	}
}

// TestAdmitOrWaitContextCancel: a caller abandoning its queued request
// (client disconnect, sweep cancel) unblocks promptly with the refusal.
func TestAdmitOrWaitContextCancel(t *testing.T) {
	s, id, plan := queueEnv(t, Options{
		AdmissionMB:    1,
		AdmissionQueue: 1,
		AdmissionWait:  10 * time.Second,
		AdmissionSlack: 1 << 30,
		Workers:        1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *AdmissionError, 1)
	go func() { done <- s.admitOrWait(ctx, id, plan) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.admissionQueued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case aerr := <-done:
		if aerr == nil {
			t.Fatal("canceled wait reported admission")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled wait never returned")
	}
}
