package uic

import (
	"math"
	"testing"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// TestLTWelfareMatchesLTSpread checks Proposition 1's reduction under the
// LT cascade: one free item with unit value makes UIC-LT welfare equal
// the LT spread.
func TestLTWelfareMatchesLTSpread(t *testing.T) {
	val, _ := utility.NewTableValuation(1, []float64{0, 1})
	m := utility.MustModel(val, []float64{1e-9}, []stats.Dist{stats.PointMass{}})
	rng := stats.NewRNG(1)
	g := graph.ErdosRenyi(40, 160, rng).WeightedCascade()

	sim := NewSimulator(g, m)
	sim.Cascade = graph.CascadeLT
	alloc := NewAllocation(1)
	alloc.Assign(2, 0)
	alloc.Assign(9, 0)
	welfare := sim.EstimateWelfare(alloc, rng, 60000).Mean

	lt := diffusion.NewLTSim(g)
	spread := lt.Spread([]graph.NodeID{2, 9}, rng, 60000)
	if math.Abs(welfare-spread) > 0.05*spread+0.05 {
		t.Errorf("UIC-LT welfare %v vs LT spread %v", welfare, spread)
	}
}

func TestLTWelfareDiffersFromIC(t *testing.T) {
	// on a dense graph the LT welfare (one trigger per node) is lower
	// than IC welfare for the same weights
	val, _ := utility.NewTableValuation(1, []float64{0, 1})
	m := utility.MustModel(val, []float64{1e-9}, []stats.Dist{stats.PointMass{}})
	rng := stats.NewRNG(2)
	g := graph.ErdosRenyi(60, 600, rng).UniformProb(0.2)

	alloc := NewAllocation(1)
	alloc.Assign(0, 0)

	icSim := NewSimulator(g, m)
	icW := icSim.EstimateWelfare(alloc, stats.NewRNG(3), 20000).Mean

	ltSim := NewSimulator(g, m)
	ltSim.Cascade = graph.CascadeLT
	ltW := ltSim.EstimateWelfare(alloc, stats.NewRNG(3), 20000).Mean
	if icW <= ltW {
		t.Errorf("IC welfare %v should exceed LT %v at p=0.2 dense", icW, ltW)
	}
}

func TestLTReachabilityLemma(t *testing.T) {
	// Lemma 3 holds for any triggering model: run UIC in fixed LT worlds
	rng := stats.NewRNG(4)
	for trial := 0; trial < 20; trial++ {
		g := graph.ErdosRenyi(25, 100, rng).WeightedCascade()
		m := utility.Config8(3, rng)
		sim := NewSimulator(g, m)
		world := diffusion.SampleLTWorld(g, rng)
		noise := m.SampleNoise(rng)
		alloc := NewAllocation(3)
		for i := 0; i < 3; i++ {
			alloc.Assign(graph.NodeID(rng.Intn(25)), i)
		}
		sim.RunInWorld(alloc, world, noise)
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			av := sim.Adopted(v)
			if av.IsEmpty() {
				continue
			}
			reach := world.Reachable([]graph.NodeID{v})
			for w := graph.NodeID(0); int(w) < g.N(); w++ {
				if reach[w] && !av.SubsetOf(sim.Adopted(w)) {
					t.Fatalf("trial %d: LT reachability broken at %d -> %d", trial, v, w)
				}
			}
		}
	}
}

func TestLTComplementBundlingStillWins(t *testing.T) {
	// the qualitative bundleGRD result survives the cascade swap:
	// co-located seeds beat separated seeds under config3 on LT
	m := utility.Config3()
	rng := stats.NewRNG(5)
	g := graph.ErdosRenyi(100, 500, rng).WeightedCascade()

	co := NewAllocation(2)
	sep := NewAllocation(2)
	for s := 0; s < 8; s++ {
		co.Assign(graph.NodeID(s), 0)
		co.Assign(graph.NodeID(s), 1)
		sep.Assign(graph.NodeID(s), 0)
		sep.Assign(graph.NodeID(20+s), 1)
	}
	sim := NewSimulator(g, m)
	sim.Cascade = graph.CascadeLT
	wCo := sim.EstimateWelfare(co, stats.NewRNG(6), 20000).Mean
	wSep := sim.EstimateWelfare(sep, stats.NewRNG(6), 20000).Mean
	if wCo <= wSep {
		t.Errorf("bundled seeds %v should beat separated %v under LT", wCo, wSep)
	}
}
