package core

import (
	"context"
	"fmt"

	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/stats"
)

// The built-in planners self-register so every dispatcher (service,
// CLIs, experiment drivers) sees one consistent algorithm list.
func init() {
	bothCascades := []string{CascadeNameIC, CascadeNameLT}
	Register(AlgoBundleGRD, Meta{
		Description:  "Algorithm 1: (1-1/e-ε)-approximate greedy allocation on the prefix-preserving PRIMA ordering",
		SketchFamily: "prima",
		Cascades:     bothCascades,
	}, func() Planner { return bundleGRDPlanner{} })
	Register(AlgoItemDisjoint, Meta{
		Description:  "item-disj baseline (§4.3.1.2): one IMM call, disjoint seeds, one item per seed node",
		SketchFamily: "imm",
		Cascades:     bothCascades,
	}, func() Planner { return itemDisjointPlanner{} })
	Register(AlgoBundleDisjoint, Meta{
		Description: "bundle-disj baseline (§4.3.1.2): greedy bundling with fresh IMM seeds per bundle",
		Cascades:    bothCascades,
	}, func() Planner { return bundleDisjointPlanner{} })
}

// primaOptions translates allocator options for the PRIMA sketch builder.
func primaOptions(opts Options) prima.Options {
	return prima.Options{Eps: opts.Eps, Ell: opts.Ell, Cascade: opts.Cascade, Progress: opts.Progress}
}

// immOptions translates allocator options for the IMM sketch builder.
func immOptions(opts Options) imm.Options {
	return imm.Options{Eps: opts.Eps, Ell: opts.Ell, Cascade: opts.Cascade, Progress: opts.Progress}
}

// bundleGRDPlanner adapts BundleGRD to the registry. The sketch seam is
// PRIMA: one prefix-preserving sketch serves every budget prefix.
type bundleGRDPlanner struct{}

func (bundleGRDPlanner) Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	sk, err := prima.BuildSketchCtx(ctx, p.G, p.Budgets, primaOptions(opts), rng)
	if err != nil {
		return Result{}, err
	}
	return BundleGRDFromSketch(p, sk), nil
}

func (bundleGRDPlanner) SketchBudgets(p *Problem) []int {
	return prima.CanonicalBudgets(p.Budgets, p.G.N())
}

func (bundleGRDPlanner) BuildSketch(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (any, error) {
	return prima.BuildSketchCtx(ctx, p.G, p.Budgets, primaOptions(opts), rng)
}

func (bundleGRDPlanner) PlanFromSketch(p *Problem, sketch any) (Result, error) {
	sk, ok := sketch.(*prima.Sketch)
	if !ok {
		return Result{}, fmt.Errorf("core: %s expects a *prima.Sketch, got %T", AlgoBundleGRD, sketch)
	}
	return BundleGRDFromSketch(p, sk), nil
}

// itemDisjointPlanner adapts ItemDisjoint to the registry. The sketch
// seam is IMM sized for the total budget.
type itemDisjointPlanner struct{}

func (itemDisjointPlanner) Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	sk, err := imm.BuildSketchCtx(ctx, p.G, p.TotalBudget(), immOptions(opts), rng)
	if err != nil {
		return Result{}, err
	}
	return ItemDisjointFromSketch(p, sk), nil
}

func (itemDisjointPlanner) SketchBudgets(p *Problem) []int {
	return []int{p.TotalBudget()}
}

func (itemDisjointPlanner) BuildSketch(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (any, error) {
	return imm.BuildSketchCtx(ctx, p.G, p.TotalBudget(), immOptions(opts), rng)
}

func (itemDisjointPlanner) PlanFromSketch(p *Problem, sketch any) (Result, error) {
	sk, ok := sketch.(*imm.Sketch)
	if !ok {
		return Result{}, fmt.Errorf("core: %s expects an *imm.Sketch, got %T", AlgoItemDisjoint, sketch)
	}
	return ItemDisjointFromSketch(p, sk), nil
}

// bundleDisjointPlanner adapts BundleDisjoint. Its adaptive sequence of
// IMM calls depends on intermediate results, so there is no reusable
// sketch — it is a plain Planner.
type bundleDisjointPlanner struct{}

func (bundleDisjointPlanner) Plan(ctx context.Context, p *Problem, opts Options, rng *stats.RNG) (Result, error) {
	return BundleDisjointCtx(ctx, p, opts, rng)
}
