#!/usr/bin/env bash
# bench_snapshot.sh — one point on the perf trajectory, and the perf
# regression gate.
#
# Runs the service-layer allocate benchmarks and writes BENCH_allocate.json
# with a stable schema (benchmark name -> ns/op and sketchbuilds/op, plus
# the commit, date, and the sketch-growth parallelism in effect), so
# successive CI runs are directly comparable. Then two guards:
#
#   1. Telemetry overhead: the warm allocate path with tracing and
#      histograms on must cost < 5% over the same path with -telemetry
#      off. Each benchmark runs COUNT times and the minimum ns/op is
#      compared — min-of-N is the standard way to strip scheduler noise
#      from a threshold check.
#   2. Regression gate against the committed baseline snapshot: the warm
#      path must not regress more than MAX_REGRESS_PCT in ns/op, and no
#      benchmark's sketchbuilds/op may grow — a build-count increase
#      means a caching or batching seam silently broke, which wall time
#      alone can hide.
#
# Env knobs: BENCH_TIME (default 50x), BENCH_COUNT (default 3),
# OUT (default BENCH_allocate.json), BASELINE (default: the committed
# OUT read before overwriting), MAX_REGRESS_PCT (default 10),
# BENCH_GATE=off to skip the baseline comparison (e.g. when refreshing
# the baseline on different hardware).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-50x}"
BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="${OUT:-BENCH_allocate.json}"
BASELINE="${BASELINE:-$OUT}"
MAX_REGRESS_PCT="${MAX_REGRESS_PCT:-10}"
BENCH_GATE="${BENCH_GATE:-on}"

# The service defaults RR-set growth parallelism inside each sketch
# build to GOMAXPROCS (-sketch-workers 0); record the effective value so
# snapshots from differently-sized machines stay interpretable.
SKETCH_WORKERS="${SKETCH_WORKERS:-$(nproc 2>/dev/null || echo 1)}"

raw="$(mktemp)"
baseline_copy="$(mktemp)"
trap 'rm -f "$raw" "$baseline_copy"' EXIT

# Snapshot the committed baseline before OUT is overwritten.
have_baseline=0
if [ "$BENCH_GATE" = "on" ] && [ -f "$BASELINE" ]; then
    cp "$BASELINE" "$baseline_copy"
    have_baseline=1
fi

go test -run '^$' -bench 'BenchmarkServiceAllocate|BenchmarkBatchedAllocate' \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$raw"

commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Reduce the -count repetitions to min ns/op (and min sketchbuilds/op —
# it is deterministic per benchmark, so min == the value) per name, then
# emit the stable JSON shape.
awk -v commit="$commit" -v date="$date" -v workers="$SKETCH_WORKERS" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; builds = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "sketchbuilds/op") builds = $(i-1)
    }
    if (ns == "") next
    if (!(name in minNS) || ns + 0 < minNS[name] + 0) minNS[name] = ns
    if (builds != "" && (!(name in minB) || builds + 0 < minB[name] + 0)) minB[name] = builds
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"schema\": 2,\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"sketch_workers\": %d,\n  \"benchmarks\": [\n", commit, date, workers
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, minNS[name]
        if (name in minB) printf ", \"sketchbuilds_per_op\": %s", minB[name]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > "$OUT"
echo "wrote $OUT:"
cat "$OUT"

# extract <file> <benchmark-name> <field> -> value (empty when absent)
extract() {
    awk -F'"' -v want="$2" -v field="$3" '
        $2 == "name" && $4 == want {
            if (match($0, "\"" field "\": [0-9.]+")) {
                v = substr($0, RSTART, RLENGTH)
                sub(/.*: /, "", v)
                print v
            }
        }' "$1"
}

# --- telemetry overhead guard ------------------------------------------
on="$(extract "$OUT" "BenchmarkServiceAllocate/warm" ns_per_op)"
off="$(extract "$OUT" "BenchmarkServiceAllocate/warm-notelemetry" ns_per_op)"
if [ -z "$on" ] || [ -z "$off" ]; then
    echo "bench_snapshot: warm/warm-notelemetry results missing, cannot check overhead" >&2
    exit 1
fi
awk -v on="$on" -v off="$off" 'BEGIN {
    pct = (on - off) / off * 100
    printf "telemetry warm-path overhead: %.2f%% (on %.0f ns/op, off %.0f ns/op)\n", pct, on, off
    if (pct >= 5) {
        print "FAIL: telemetry overhead >= 5% on the warm allocate path" > "/dev/stderr"
        exit 1
    }
}'

# --- regression gate vs the committed baseline -------------------------
if [ "$have_baseline" != 1 ]; then
    echo "bench_snapshot: no baseline snapshot (BENCH_GATE=$BENCH_GATE), skipping regression gate"
    exit 0
fi

fail=0

base_warm="$(extract "$baseline_copy" "BenchmarkServiceAllocate/warm" ns_per_op)"
if [ -n "$base_warm" ]; then
    if ! awk -v now="$on" -v base="$base_warm" -v lim="$MAX_REGRESS_PCT" 'BEGIN {
        pct = (now - base) / base * 100
        printf "warm-path vs baseline: %+.2f%% (now %.0f ns/op, baseline %.0f ns/op, limit +%s%%)\n", pct, now, base, lim
        exit (pct > lim + 0) ? 1 : 0
    }'; then
        echo "FAIL: warm allocate path regressed more than ${MAX_REGRESS_PCT}% vs $BASELINE" >&2
        fail=1
    fi
fi

# sketchbuilds/op must not grow for any benchmark present in both
# snapshots.
for name in $(awk -F'"' '$2 == "name" {print $4}' "$baseline_copy"); do
    base_b="$(extract "$baseline_copy" "$name" sketchbuilds_per_op)"
    now_b="$(extract "$OUT" "$name" sketchbuilds_per_op)"
    [ -n "$base_b" ] && [ -n "$now_b" ] || continue
    if ! awk -v now="$now_b" -v base="$base_b" 'BEGIN { exit (now > base) ? 1 : 0 }'; then
        echo "FAIL: $name sketchbuilds/op grew: $base_b -> $now_b" >&2
        fail=1
    else
        echo "$name sketchbuilds/op: $base_b -> $now_b (ok)"
    fi
done

exit "$fail"
