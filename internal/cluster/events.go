package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// The router half of the flight recorder's query surface. GET /v1/events
// on the router merges the router's own journal (membership transitions,
// ownership flips, sketch ships, sweep scheduling) with every live
// shard's journal (cache churn, admission decisions, job spill/replay)
// into one time-ordered stream, so a failover reads as a single
// narrative: member_down, ownership_flip, sketch_ship, then the new
// owner's cache imports — one query, no per-shard stitching.

// ClusterEventsResponse is the router's GET /v1/events body. Cursors
// are recorder-local sequence numbers, so the merged stream's cursor is
// composite: "router:4,b0:12,b1:9". Passing it back as ?cursor= resumes
// every journal exactly where the page ended.
type ClusterEventsResponse struct {
	Events     []journal.Event   `json:"events"`
	NextCursor string            `json:"next_cursor"`
	Partial    bool              `json:"partial,omitempty"`
	Errors     map[string]string `json:"errors,omitempty"`
}

// routerNode is the source name of the router's own journal in composite
// cursors and merged events.
const routerNode = "router"

// parseMergedCursor decodes a composite "node:seq,node:seq" cursor. A
// bare integer is accepted too (applied to every source) so a client
// can naively resume from zero.
func parseMergedCursor(raw string) (map[string]uint64, uint64, error) {
	out := map[string]uint64{}
	if raw == "" {
		return out, 0, nil
	}
	if n, err := strconv.ParseUint(raw, 10, 64); err == nil {
		return out, n, nil
	}
	for _, part := range strings.Split(raw, ",") {
		node, seqRaw, ok := strings.Cut(part, ":")
		if !ok {
			return nil, 0, fmt.Errorf("bad cursor part %q (want node:seq)", part)
		}
		seq, err := strconv.ParseUint(seqRaw, 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad cursor part %q (want node:seq)", part)
		}
		out[node] = seq
	}
	return out, 0, nil
}

// eventValues re-encodes a journal query (plus a per-source cursor) as
// the backend endpoint's query parameters.
func eventValues(q journal.Query, cursor uint64, limit int) url.Values {
	vals := url.Values{}
	if cursor > 0 {
		vals.Set("cursor", strconv.FormatUint(cursor, 10))
	}
	if limit > 0 {
		vals.Set("limit", strconv.Itoa(limit))
	}
	if q.Type != "" {
		vals.Set("type", q.Type)
	}
	if q.Graph != "" {
		vals.Set("graph", q.Graph)
	}
	if q.Node != "" {
		vals.Set("node", q.Node)
	}
	if !q.Since.IsZero() {
		vals.Set("since", q.Since.Format(timeRFC3339Nano))
	}
	return vals
}

const timeRFC3339Nano = "2006-01-02T15:04:05.999999999Z07:00"

// taggedEvent remembers which journal an event came from — the event's
// own Node field is not enough (the router journals member_up/down under
// the member's name).
type taggedEvent struct {
	src string
	e   journal.Event
}

// handleEvents implements the router's GET /v1/events: the merged,
// time-ordered, cursor-paginated view over the router's and every live
// shard's journal, with the same type/graph/node/since filters as the
// backend form. ?stream=1 (or Accept: text/event-stream) switches to a
// live SSE tail fanned in from every journal. A dead shard contributes
// nothing but an entry in "errors" with "partial": true — the cluster's
// history stays readable while a shard is down, which is exactly when
// it is needed.
func (r *Router) handleEvents(w http.ResponseWriter, req *http.Request) {
	values := req.URL.Query()
	cursors, baseCursor, err := parseMergedCursor(values.Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	values.Del("cursor")
	q, err := service.ParseEventQuery(values)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cursorFor := func(node string) uint64 {
		if c, ok := cursors[node]; ok {
			return c
		}
		return baseCursor
	}
	if values.Get("stream") == "1" || values.Get("stream") == "true" || values.Get("stream") == "sse" ||
		strings.Contains(req.Header.Get("Accept"), "text/event-stream") {
		r.streamMergedEvents(w, req, q, cursorFor)
		return
	}

	limit := q.Limit
	if limit <= 0 {
		limit = journal.DefaultLimit
	}
	if limit > journal.MaxLimit {
		limit = journal.MaxLimit
	}

	// One page per source, merged by time below. Each source also reports
	// its own next cursor, usable when the merge keeps its whole page.
	type sourcePage struct {
		src    string
		events []journal.Event
		next   uint64
	}
	ownQ := q
	ownQ.After = cursorFor(routerNode)
	ownQ.Limit = limit
	ownEvents, ownNext := r.flight.Events(ownQ)
	pages := []sourcePage{{src: routerNode, events: ownEvents, next: ownNext}}

	members := r.members.Snapshot()
	alive := make([]string, 0, len(members))
	errs := map[string]string{}
	for _, m := range members {
		if m.Healthy {
			alive = append(alive, m.Name)
		} else {
			// A shard the prober has marked down is reported, not silently
			// omitted: the merged history is partial and the reader should
			// know which journal is missing from it.
			errs[m.Name] = "backend down"
		}
	}
	shardPages := make([]sourcePage, len(alive))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i, name := range alive {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			path := "/v1/events?" + eventValues(q, cursorFor(name), limit).Encode()
			status, body, err := r.call(req.Context(), http.MethodGet, name, path, nil)
			if err != nil || status != http.StatusOK {
				mu.Lock()
				if err != nil {
					errs[name] = err.Error()
				} else {
					errs[name] = fmt.Sprintf("status %d", status)
				}
				mu.Unlock()
				return
			}
			var resp service.EventsResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				mu.Lock()
				errs[name] = err.Error()
				mu.Unlock()
				return
			}
			shardPages[i] = sourcePage{src: name, events: resp.Events, next: resp.NextCursor}
		}(i, name)
	}
	wg.Wait()
	for _, p := range shardPages {
		if p.src != "" {
			pages = append(pages, p)
		}
	}

	var merged []taggedEvent
	for _, p := range pages {
		for _, e := range p.events {
			merged = append(merged, taggedEvent{src: p.src, e: e})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].e.TS.Equal(merged[j].e.TS) {
			return merged[i].e.TS.Before(merged[j].e.TS)
		}
		if merged[i].src != merged[j].src {
			return merged[i].src < merged[j].src
		}
		return merged[i].e.Seq < merged[j].e.Seq
	})
	page := merged
	if len(page) > limit {
		page = page[:limit]
	}

	// Per-source resume point: a source whose page was fully consumed
	// advances to its own reported next cursor (which also skips events
	// its journal filtered out); a source cut by the merge resumes at the
	// last of its events actually returned.
	included := map[string]int{}
	next := map[string]uint64{}
	for _, p := range pages {
		next[p.src] = cursorFor(p.src)
	}
	for _, te := range page {
		included[te.src]++
		if te.e.Seq > next[te.src] {
			next[te.src] = te.e.Seq
		}
	}
	for _, p := range pages {
		if included[p.src] == len(p.events) && p.next > next[p.src] {
			next[p.src] = p.next
		}
	}
	srcs := make([]string, 0, len(next))
	for s := range next {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	parts := make([]string, 0, len(srcs))
	for _, s := range srcs {
		parts = append(parts, fmt.Sprintf("%s:%d", s, next[s]))
	}

	events := make([]journal.Event, 0, len(page))
	for _, te := range page {
		events = append(events, te.e)
	}
	out := ClusterEventsResponse{Events: events, NextCursor: strings.Join(parts, ",")}
	if len(errs) > 0 {
		out.Partial = true
		out.Errors = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// streamMergedEvents serves the router's SSE live tail: the router's own
// retained events first (after the client's cursor), then a fan-in of
// live events from its own journal and every live shard's SSE tail.
// Cross-source ordering is arrival order — exact ordering is the query
// form's job; the tail's job is latency.
func (r *Router) streamMergedEvents(w http.ResponseWriter, req *http.Request, q journal.Query, cursorFor func(string) uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()

	// Own journal: subscribe before replaying so no event falls between.
	sub, unsub := r.flight.Subscribe(256)
	defer unsub()
	ownQ := q
	ownQ.After = cursorFor(routerNode)
	ownQ.Limit = journal.MaxLimit
	past, lastOwn := r.flight.Events(ownQ)

	ch := make(chan journal.Event, 256)
	for _, name := range r.members.Alive() {
		vals := eventValues(q, cursorFor(name), 0)
		vals.Set("stream", "1")
		go r.tailBackendEvents(ctx, name, vals, ch)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(e journal.Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, e := range past {
		if !write(e) {
			return
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case e := <-sub:
			if e.Seq <= lastOwn || !q.Match(e) {
				continue
			}
			if !write(e) {
				return
			}
		case e := <-ch:
			if !write(e) {
				return
			}
		}
	}
}

// tailBackendEvents opens one shard's SSE event tail and forwards every
// decoded event into ch until ctx ends or the stream breaks (a dead
// shard simply stops contributing; the client reconnects with its cursor
// to pick up whatever the shard's ring retained).
func (r *Router) tailBackendEvents(ctx context.Context, name string, vals url.Values, ch chan<- journal.Event) {
	base, ok := r.members.URLOf(name)
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events?"+vals.Encode(), nil)
	if err != nil {
		return
	}
	if r.token != "" {
		req.Header.Set(service.ClusterTokenHeader, r.token)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var e journal.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			continue
		}
		select {
		case ch <- e:
		case <-ctx.Done():
			return
		}
	}
}

// --- placement introspection -------------------------------------------

// PlacementNode is one backend's standing for a graph in the placement
// view: its HRW preference rank (0 = first choice), liveness, whether it
// is the cataloged owner, and what it actually holds right now.
type PlacementNode struct {
	Node  string `json:"node"`
	Rank  int    `json:"rank"`
	Alive bool   `json:"alive"`
	Owner bool   `json:"owner"`
	// Resident reports whether the graph is registered on the node at
	// this moment (mid-rebalance a graph can be resident on two nodes, or
	// on none that is alive); ResidentSketches is the node's cached
	// sketch count for it.
	Resident         bool `json:"resident"`
	ResidentSketches int  `json:"resident_sketches,omitempty"`
}

// PlacementResponse is GET /v1/cluster/placement/{graph_id}: why a graph
// lives where it lives — the full HRW rank order over the topology, the
// cataloged owner, per-node residency, and the graph's ownership history
// (flips, ships, failed rebalances) from the router's journal.
type PlacementResponse struct {
	GraphID   string `json:"graph_id"`
	Name      string `json:"name,omitempty"`
	Cataloged bool   `json:"cataloged"`
	// Owner is the cataloged owner; HRWOwner is where HRW places the
	// graph among the currently-live backends. They differ only while a
	// rebalance is pending.
	Owner    string            `json:"owner,omitempty"`
	HRWOwner string            `json:"hrw_owner,omitempty"`
	Nodes    []PlacementNode   `json:"nodes"`
	History  []journal.Event   `json:"history"`
	Partial  bool              `json:"partial,omitempty"`
	Errors   map[string]string `json:"errors,omitempty"`
}

// handlePlacement implements GET /v1/cluster/placement/{graph_id}.
func (r *Router) handlePlacement(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("graph_id")
	r.mu.Lock()
	rec := r.catalog[id]
	var name, owner string
	if rec != nil {
		name, owner = rec.name, rec.owner
	}
	r.mu.Unlock()

	all := make([]string, 0, len(r.members.Snapshot()))
	aliveSet := map[string]bool{}
	for _, st := range r.members.Snapshot() {
		all = append(all, st.Name)
		aliveSet[st.Name] = st.Healthy
	}
	ranked := Rank(all, id)
	hrwOwner, _ := Owner(r.members.Alive(), id)

	// Residency is asked of every live backend directly — the catalog
	// says where the graph should be, the shards say where it is.
	type residency struct {
		resident bool
		sketches int
	}
	res := map[string]residency{}
	errs := map[string]string{}
	for _, fr := range r.fanout(req.Context(), http.MethodGet, "/v1/graphs/"+id) {
		if fr.err != nil {
			errs[fr.backend] = fr.err.Error()
			continue
		}
		if fr.status == http.StatusNotFound {
			continue
		}
		if fr.status != http.StatusOK {
			errs[fr.backend] = fmt.Sprintf("status %d", fr.status)
			continue
		}
		var gi service.GraphInfo
		if err := json.Unmarshal(fr.body, &gi); err != nil {
			errs[fr.backend] = err.Error()
			continue
		}
		res[fr.backend] = residency{resident: true, sketches: gi.ResidentSketches}
	}

	nodes := make([]PlacementNode, 0, len(ranked))
	for i, n := range ranked {
		nodes = append(nodes, PlacementNode{
			Node:             n,
			Rank:             i,
			Alive:            aliveSet[n],
			Owner:            n == owner,
			Resident:         res[n].resident,
			ResidentSketches: res[n].sketches,
		})
	}
	history, _ := r.flight.Events(journal.Query{Graph: id, Limit: journal.MaxLimit})
	if history == nil {
		history = []journal.Event{}
	}
	out := PlacementResponse{
		GraphID:   id,
		Name:      name,
		Cataloged: rec != nil,
		Owner:     owner,
		HRWOwner:  hrwOwner,
		Nodes:     nodes,
		History:   history,
	}
	if len(errs) > 0 {
		out.Partial = true
		out.Errors = errs
	}
	writeJSON(w, http.StatusOK, out)
}

// edgeTraceID resolves the trace id a router-minted journal event should
// carry: the context's trace when one is attached, else empty.
func edgeTraceID(ctx context.Context) string {
	if tr := telemetry.FromContext(ctx); tr != nil {
		return tr.ID()
	}
	return ""
}
