// Package expr is the experiment harness: one driver per table and
// figure of the paper's evaluation (§4.3), each returning printable rows.
// The cmd/experiments binary and the root bench suite wrap these drivers
// at different scales. Networks are synthetic stand-ins for the paper's
// five datasets (see DESIGN.md §2 for the substitution rationale);
// influence probabilities default to the weighted cascade 1/indeg(v)
// exactly as in the paper.
package expr

import (
	"fmt"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// NetworkSpec describes one of the paper's datasets (Table 2) and how its
// synthetic stand-in is generated.
type NetworkSpec struct {
	Name       string
	PaperNodes int
	PaperEdges int
	Directed   bool
	// DefaultNodes is the stand-in size used by the CLI at scale 1. The
	// two giant networks (Twitter, Orkut) are scaled down to laptop size;
	// the three smaller ones are generated at full size.
	DefaultNodes int
	// AttachK controls generator density (edges per new node).
	AttachK int
}

// Networks lists the five datasets of Table 2 in paper order.
var Networks = []NetworkSpec{
	{Name: "flixster", PaperNodes: 7600, PaperEdges: 71700, Directed: false, DefaultNodes: 7600, AttachK: 5},
	{Name: "douban-book", PaperNodes: 23300, PaperEdges: 141000, Directed: true, DefaultNodes: 23300, AttachK: 5},
	{Name: "douban-movie", PaperNodes: 34900, PaperEdges: 274000, Directed: true, DefaultNodes: 34900, AttachK: 6},
	{Name: "twitter", PaperNodes: 41700000, PaperEdges: 1470000000, Directed: true, DefaultNodes: 20000, AttachK: 12},
	{Name: "orkut", PaperNodes: 3070000, PaperEdges: 234000000, Directed: false, DefaultNodes: 20000, AttachK: 14},
}

// NetworkByName returns the spec with the given name.
func NetworkByName(name string) (NetworkSpec, error) {
	for _, ns := range Networks {
		if ns.Name == name {
			return ns, nil
		}
	}
	return NetworkSpec{}, fmt.Errorf("expr: unknown network %q", name)
}

// GenerateByName synthesizes the named stand-in network (non-positive
// scale defaults to 1.0, seed 0 defaults to 1), returning an error for
// an unknown name — the single generation path behind
// welfare.GenerateNetworkE, the service, and the CLI, so bad input is a
// 400/usage error everywhere instead of a panic.
func GenerateByName(name string, scale float64, seed uint64) (*graph.Graph, error) {
	spec, err := NetworkByName(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1.0
	}
	if seed == 0 {
		seed = 1
	}
	return spec.Generate(scale, seed), nil
}

// Generate synthesizes the stand-in network at the given scale (1.0 =
// DefaultNodes) with weighted-cascade probabilities. The same (spec,
// scale, seed) always yields the same graph.
func (ns NetworkSpec) Generate(scale float64, seed uint64) *graph.Graph {
	n := int(float64(ns.DefaultNodes) * scale)
	if n < 100 {
		n = 100
	}
	rng := stats.NewRNG(seed ^ hashName(ns.Name))
	var g *graph.Graph
	if ns.Directed {
		g = graph.PreferentialDirected(n, ns.AttachK, rng)
	} else {
		g = graph.BarabasiAlbert(n, ns.AttachK, rng)
	}
	return g.WeightedCascade()
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Table2Row reports one network's statistics next to the paper's values.
type Table2Row struct {
	Name       string
	PaperNodes int
	PaperEdges int
	Nodes      int
	Edges      int
	AvgDegree  float64
	Type       string
}

// Table2 generates every stand-in network and tabulates its statistics —
// the reproduction of Table 2.
func Table2(scale float64, seed uint64) []Table2Row {
	rows := make([]Table2Row, 0, len(Networks))
	for _, ns := range Networks {
		g := ns.Generate(scale, seed)
		st := graph.ComputeStats(g)
		typ := "directed"
		if !ns.Directed {
			typ = "undirected"
		}
		rows = append(rows, Table2Row{
			Name:       ns.Name,
			PaperNodes: ns.PaperNodes,
			PaperEdges: ns.PaperEdges,
			Nodes:      st.Nodes,
			Edges:      st.Edges,
			AvgDegree:  st.AvgDegree,
			Type:       typ,
		})
	}
	return rows
}
