// Command gengraph synthesizes social networks — either the built-in
// stand-ins for the paper's datasets or parametric random graphs — and
// writes them as edge-list files usable by welmax -graph, or, with
// -format binary, as checksummed .wmg files that load without the text
// round-trip (the format welmaxd persists graphs in).
//
// Examples:
//
//	gengraph -network douban-movie -o douban-movie.txt
//	gengraph -model ba -n 10000 -k 5 -o ba.txt
//	gengraph -network orkut -format binary -o orkut.wmg
package main

import (
	"flag"
	"fmt"
	"os"

	"uicwelfare/internal/expr"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/store"
)

func main() {
	var (
		network = flag.String("network", "", "built-in stand-in to generate (flixster|douban-book|douban-movie|twitter|orkut)")
		scale   = flag.Float64("scale", 1.0, "network scale factor")
		model   = flag.String("model", "ba", "parametric model when -network is empty (ba|er|ws|pd)")
		n       = flag.Int("n", 1000, "node count for parametric models")
		m       = flag.Int("m", 5000, "edge count (er model)")
		k       = flag.Int("k", 4, "attachment degree (ba/pd) or ring degree (ws)")
		beta    = flag.Float64("beta", 0.1, "rewiring probability (ws)")
		wc      = flag.Bool("wc", true, "assign weighted-cascade probabilities 1/indeg(v)")
		seed    = flag.Uint64("seed", 1, "random seed")
		format  = flag.String("format", "text", "output format: text edge list, or binary .wmg (needs -o)")
		out     = flag.String("o", "", "output file (default stdout; required for -format binary)")
	)
	flag.Parse()

	g, err := generate(*network, *scale, *model, *n, *m, *k, *beta, *seed)
	if err != nil {
		fatal(err)
	}
	if *wc {
		g = g.WeightedCascade()
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", g)

	label := *network
	if label == "" {
		label = *model
	}
	switch *format {
	case "text":
		if *out == "" {
			if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
				fatal(err)
			}
			return
		}
		if err := graph.SaveEdgeList(*out, g); err != nil {
			fatal(err)
		}
	case "binary":
		if *out == "" {
			fatal(fmt.Errorf("-format binary needs -o (the frame is not terminal-safe)"))
		}
		if err := store.SaveGraphFile(*out, label, g); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", *out, store.GraphID(g))
	default:
		fatal(fmt.Errorf("unknown format %q (text|binary)", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}

func generate(network string, scale float64, model string, n, m, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if network != "" {
		spec, err := expr.NetworkByName(network)
		if err != nil {
			return nil, err
		}
		return spec.Generate(scale, seed), nil
	}
	rng := stats.NewRNG(seed)
	switch model {
	case "ba":
		return graph.BarabasiAlbert(n, k, rng), nil
	case "er":
		return graph.ErdosRenyi(n, m, rng), nil
	case "ws":
		return graph.WattsStrogatz(n, k, beta, rng), nil
	case "pd":
		return graph.PreferentialDirected(n, k, rng), nil
	}
	return nil, fmt.Errorf("unknown model %q", model)
}
