package service

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives the cache's TTL deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestSketchCacheTTLExpiry(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c := NewSketchCache(8, 0, time.Minute, nil)
	c.now = clock.now

	builds := 0
	build := func() (any, error) { builds++; return "sketch", nil }

	if _, hit, _ := c.GetOrBuild("k", build); hit {
		t.Fatal("first lookup hit an empty cache")
	}
	// Within the TTL the entry serves hits.
	clock.advance(30 * time.Second)
	if _, hit, _ := c.GetOrBuild("k", build); !hit {
		t.Fatal("lookup inside TTL missed")
	}
	// A hit does not extend the deadline: past the original TTL the entry
	// reads as a miss and this caller rebuilds.
	clock.advance(31 * time.Second)
	if _, hit, _ := c.GetOrBuild("k", build); hit {
		t.Fatal("lookup past TTL still hit")
	}
	if builds != 2 {
		t.Fatalf("built %d times, want 2", builds)
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want the rebuilt entry", st.Entries)
	}

	// Stats sweeps expired entries even with no traffic touching them,
	// and the expire hook fires so the disk tier can drop its spill too.
	var expired []string
	c.SetExpireHook(func(key string) { expired = append(expired, key) })
	clock.advance(2 * time.Minute)
	st = c.Stats()
	if st.Entries != 0 || st.Expirations != 2 {
		t.Errorf("after idle sweep: entries=%d expirations=%d, want 0 and 2", st.Entries, st.Expirations)
	}
	if len(expired) != 1 || expired[0] != "k" {
		t.Errorf("expire hook saw %v, want [k]", expired)
	}
}

func TestSketchCachePutAndExport(t *testing.T) {
	c := NewSketchCache(8, 0, 0, nil)
	keyA := SketchKey("gA", "prima", 0, 0.5, 1, []int{2, 2})
	keyB := SketchKey("gB", "imm", 0, 0.5, 1, []int{3})

	if !c.Put(keyA, "sketchA") {
		t.Fatal("Put into empty cache rejected")
	}
	if c.Put(keyA, "other") {
		t.Fatal("Put displaced a resident entry")
	}
	if v, hit, _ := c.GetOrBuild(keyA, func() (any, error) { return nil, nil }); !hit || v != "sketchA" {
		t.Fatalf("imported entry not served: v=%v hit=%v", v, hit)
	}
	c.Put(keyB, "sketchB")

	got := c.CompletedForGraph("gA")
	if len(got) != 1 || got[0].Key != keyA || got[0].Sketch != "sketchA" {
		t.Fatalf("CompletedForGraph(gA) = %+v", got)
	}
	if got := c.CompletedForGraph("gC"); len(got) != 0 {
		t.Fatalf("CompletedForGraph(gC) = %+v", got)
	}

	st := c.Stats()
	if st.EntriesByFamily["prima"] != 1 || st.EntriesByFamily["imm"] != 1 {
		t.Errorf("entries_by_family = %v", st.EntriesByFamily)
	}
}
