package cluster

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) hashing places each graph on one
// backend: every (backend, graph) pair gets a pseudo-random score and
// the live backend with the highest score owns the graph. Unlike
// mod-N hashing, removing or adding one backend only moves the graphs
// that backend wins or loses — every other placement is untouched, which
// is exactly what keeps warm sketch caches stable across membership
// changes.

// hrwScore hashes one (backend, key) pair: FNV-1a over "backend\x00key"
// followed by a 64-bit avalanche finalizer (MurmurHash3's fmix64). The
// finalizer is essential, not decoration — raw FNV's high bits are
// dominated by the prefix, so without it one backend outscores the
// others on every key and "placement" degenerates to a single shard.
func hrwScore(backend, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(backend))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is MurmurHash3's fmix64 finalizer: every input bit flips each
// output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the backend that owns key under HRW placement, or
// ok = false when backends is empty. Ties (vanishingly unlikely with a
// 64-bit score) break toward the lexicographically smaller name so every
// router instance agrees.
func Owner(backends []string, key string) (owner string, ok bool) {
	var best uint64
	for _, b := range backends {
		s := hrwScore(b, key)
		if owner == "" || s > best || (s == best && b < owner) {
			owner, best = b, s
		}
	}
	return owner, owner != ""
}

// Rank orders backends by descending HRW score for key: Rank(...)[0] is
// the owner, the rest are the failover order a router can probe when the
// owner is down.
func Rank(backends []string, key string) []string {
	out := append([]string(nil), backends...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := hrwScore(out[i], key), hrwScore(out[j], key)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}
