package service_test

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/service"
	"uicwelfare/internal/store"
	"uicwelfare/internal/sweep"
)

// sweepJobView is a sweep job snapshot with the typed summary result.
type sweepJobView struct {
	ID     string           `json:"id"`
	Kind   string           `json:"kind"`
	State  service.JobState `json:"state"`
	Error  string           `json:"error"`
	Result *sweep.Summary   `json:"result"`
}

// createSweep posts a spec and returns the accepted sweep id and cell
// count.
func (e *env) createSweep(t *testing.T, spec sweep.Spec) (string, int) {
	t.Helper()
	var out struct {
		SweepID string `json:"sweep_id"`
		State   string `json:"state"`
		Cells   int    `json:"cells"`
		TraceID string `json:"trace_id"`
	}
	e.doJSON("POST", "/v1/sweeps", spec, &out, http.StatusAccepted)
	if out.SweepID == "" || out.State != string(service.JobQueued) || out.Cells == 0 {
		t.Fatalf("bad sweep submission: %+v", out)
	}
	return out.SweepID, out.Cells
}

// waitSweep polls the sweep until it reaches a terminal state.
func (e *env) waitSweep(t *testing.T, id string) sweepJobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var view sweepJobView
		e.doJSON("GET", "/v1/sweeps/"+id, nil, &view, http.StatusOK)
		if view.State.Terminal() {
			return view
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return sweepJobView{}
}

// sweepEvents replays the sweep's SSE stream (the past-event replay a
// late subscriber gets) and returns the decoded progress events.
func (e *env) sweepEvents(t *testing.T, id string) []service.JobEvent {
	t.Helper()
	resp, err := http.Get(e.srv.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var events []service.JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev service.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Terminal() {
			break
		}
	}
	return events
}

// TestSweepEndToEnd drives the full single-node sweep lifecycle: a
// 2-config × 2-budget grid expands to 4 cells, every cell runs through
// the ordinary allocate path, per-cell progress streams over SSE, the
// result persists as a checksummed content-addressed artifact, and the
// results endpoint serves filters and grouped welfare aggregates.
func TestSweepEndToEnd(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, service.Options{Workers: 2, SweepCellWorkers: 2, DataDir: dir, NodeID: "n0"})
	id := e.registerGraph(t)

	spec := sweep.Spec{
		Name:     "e2e",
		GraphIDs: []string{id},
		Configs:  []string{"config1", "config3"},
		Budgets:  [][]int{{3, 3}, {5, 5}},
		Runs:     400,
		Seed:     1,
	}
	sweepID, cells := e.createSweep(t, spec)
	if cells != 4 {
		t.Fatalf("expanded to %d cells, want 4", cells)
	}
	view := e.waitSweep(t, sweepID)
	if view.State != service.JobDone || view.Kind != "sweep" {
		t.Fatalf("sweep finished %s (%s)", view.State, view.Error)
	}
	sum := view.Result
	if sum == nil || sum.Done != 4 || sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("bad summary: %+v", sum)
	}
	if sum.ArtifactID == "" || !sum.Persisted {
		t.Fatalf("artifact not persisted: %+v", sum)
	}

	// The sweep appears in the listing.
	var list struct {
		Sweeps []sweepJobView `json:"sweeps"`
	}
	e.doJSON("GET", "/v1/sweeps", nil, &list, http.StatusOK)
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != sweepID {
		t.Fatalf("sweep listing: %+v", list.Sweeps)
	}

	// Every cell produced at least one SSE event, and each reached a
	// terminal cell state on the stream.
	events := e.sweepEvents(t, sweepID)
	terminalByCell := map[string]string{}
	for _, ev := range events {
		if ev.Cell != "" && ev.CellState != string(service.JobRunning) {
			terminalByCell[ev.Cell] = ev.CellState
		}
	}
	for _, cell := range []string{"c0", "c1", "c2", "c3"} {
		if terminalByCell[cell] != string(service.JobDone) {
			t.Errorf("cell %s terminal event %q, want done (events: %d)", cell, terminalByCell[cell], len(events))
		}
	}
	if last := events[len(events)-1]; last.Type != string(service.JobDone) {
		t.Errorf("stream ended with %q, want the sweep's done event", last.Type)
	}

	// Full results: all four rows done, welfare present, node identity
	// and per-cell job ids recorded.
	var res sweep.ResultsResponse
	e.doJSON("GET", "/v1/sweeps/"+sweepID+"/results", nil, &res, http.StatusOK)
	if res.ArtifactID != sum.ArtifactID || len(res.Cells) != 4 || res.Counts["done"] != 4 {
		t.Fatalf("results: artifact %s cells %d counts %v", res.ArtifactID, len(res.Cells), res.Counts)
	}
	for _, c := range res.Cells {
		if !c.HasWelfare || c.WelfareRuns != 400 || c.JobID == "" || c.Node == "" {
			t.Errorf("cell %s incomplete: %+v", c.CellID, c)
		}
	}

	// Filters and group_by aggregate.
	var filtered sweep.ResultsResponse
	e.doJSON("GET", "/v1/sweeps/"+sweepID+"/results?config=config3", nil, &filtered, http.StatusOK)
	if len(filtered.Cells) != 2 {
		t.Errorf("config3 filter: %d cells, want 2", len(filtered.Cells))
	}
	var grouped sweep.ResultsResponse
	e.doJSON("GET", "/v1/sweeps/"+sweepID+"/results?group_by=config&cells=false", nil, &grouped, http.StatusOK)
	if len(grouped.Groups) != 2 || grouped.Cells != nil {
		t.Errorf("group_by=config: %+v", grouped)
	}
	if status, _ := e.do("GET", "/v1/sweeps/"+sweepID+"/results?group_by=bogus", nil); status != http.StatusBadRequest {
		t.Errorf("bogus group_by: status %d, want 400", status)
	}

	// The artifact on disk round-trips and re-derives its content id —
	// the checksum guarantee clients rely on.
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := st.LoadSweep(sum.ArtifactID)
	if err != nil {
		t.Fatalf("load artifact: %v", err)
	}
	if store.SweepResultID(artifact) != sum.ArtifactID {
		t.Error("artifact does not re-derive its content id")
	}
	if len(artifact.Cells) != 4 {
		t.Errorf("artifact has %d cells", len(artifact.Cells))
	}

	// A sweep cell's welfare must agree with the same request made
	// directly — the sweep is a batch of ordinary requests, nothing more.
	c0 := res.Cells[0]
	var direct allocJobView
	jid := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Config: c0.Config, Budgets: c0.Budgets, Seed: c0.Seed, Runs: 400,
	})
	e.waitJob(t, jid, &direct)
	if direct.State != service.JobDone || direct.Result.Welfare == nil {
		t.Fatalf("direct allocate: %+v", direct)
	}
	tol := 6 * (c0.WelfareStdErr + direct.Result.Welfare.StdErr)
	if diff := math.Abs(c0.WelfareMean - direct.Result.Welfare.Mean); diff > tol {
		t.Errorf("cell welfare %.2f vs direct %.2f: differ by %.2f (tolerance %.2f)",
			c0.WelfareMean, direct.Result.Welfare.Mean, diff, tol)
	}

	// Cell counters surfaced in /v1/stats.
	var stats struct {
		Sweeps service.SweepStats `json:"sweeps"`
	}
	e.doJSON("GET", "/v1/stats", nil, &stats, http.StatusOK)
	if stats.Sweeps.CellsDone < 4 {
		t.Errorf("stats cells_done = %d, want >= 4", stats.Sweeps.CellsDone)
	}
}

// TestSweepValidation: structurally or semantically bad specs reject
// synchronously with 400, before any job exists.
func TestSweepValidation(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 1})
	id := e.registerGraph(t)
	cases := []struct {
		name string
		spec sweep.Spec
	}{
		{"no budgets", sweep.Spec{GraphIDs: []string{id}}},
		{"unknown graph", sweep.Spec{GraphIDs: []string{"nope"}, Budgets: [][]int{{2}}}},
		{"unknown algo", sweep.Spec{GraphIDs: []string{id}, Budgets: [][]int{{2}}, Algos: []string{"nope"}}},
		{"unknown config", sweep.Spec{GraphIDs: []string{id}, Budgets: [][]int{{2}}, Configs: []string{"nope"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if status, raw := e.do("POST", "/v1/sweeps", tc.spec); status != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", status, raw)
			}
		})
	}
	if status, _ := e.do("GET", "/v1/sweeps/unknown", nil); status != http.StatusNotFound {
		t.Error("unknown sweep id did not 404")
	}
	// A non-sweep job id is not addressable through the sweep routes.
	jid := e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}})
	var direct allocJobView
	e.waitJob(t, jid, &direct)
	if status, _ := e.do("GET", "/v1/sweeps/"+jid, nil); status != http.StatusNotFound {
		t.Error("allocate job id resolved as a sweep")
	}
}

// TestSweepCancel: canceling a running sweep cancels its remaining
// cells, the job finishes canceled, and the partial artifact is still
// queryable (finished cells' work is kept).
func TestSweepCancel(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 1, SweepCellWorkers: 1})
	id := e.registerGraph(t)
	spec := sweep.Spec{
		GraphIDs: []string{id},
		// One slow-ish cell at a time: large estimate keeps the sweep
		// running long enough to cancel mid-flight.
		Budgets: [][]int{{3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}, {8, 8}},
		Runs:    5000,
		Seed:    1,
	}
	sweepID, cells := e.createSweep(t, spec)
	var del sweepJobView
	e.doJSON("DELETE", "/v1/sweeps/"+sweepID, nil, &del, http.StatusAccepted)
	view := e.waitSweep(t, sweepID)
	if view.State != service.JobCanceled {
		t.Fatalf("canceled sweep finished %s", view.State)
	}
	// The partial result is retained in memory and served terminal.
	var res sweep.ResultsResponse
	e.doJSON("GET", "/v1/sweeps/"+sweepID+"/results", nil, &res, http.StatusOK)
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != cells {
		t.Errorf("partial results cover %d cells, want %d (%v)", total, cells, res.Counts)
	}
	if res.Counts["canceled"] == 0 {
		t.Errorf("no cells recorded canceled: %v", res.Counts)
	}
}

// TestEstimatesCoalesce: byte-identical concurrent estimate requests
// share one Monte-Carlo run (the estimate flight group), observable as
// the estimates_coalesced counter.
func TestEstimatesCoalesce(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 4})
	id := e.registerGraph(t)

	// An allocation to estimate against.
	var alloc allocJobView
	jid := e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{5, 5}})
	e.waitJob(t, jid, &alloc)
	if alloc.State != service.JobDone {
		t.Fatalf("allocate: %s (%s)", alloc.State, alloc.Error)
	}

	req := service.EstimateRequest{
		GraphID:    id,
		Allocation: alloc.Result.Allocation,
		Seed:       7,
		Runs:       30000, // long enough for the duplicates to overlap the leader
	}
	const n = 4
	ids := make([]string, n)
	for i := range ids {
		ids[i] = e.submit(t, "/v1/estimate", req)
	}
	results := make([]estJobView, n)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.waitJob(t, ids[i], &results[i])
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.State != service.JobDone || r.Result == nil {
			t.Fatalf("estimate %d: %s (%s)", i, r.State, r.Error)
		}
		// Shared or not, the deterministic seeded estimate must agree.
		if r.Result.Welfare.Mean != results[0].Result.Welfare.Mean {
			t.Errorf("estimate %d mean %f differs from leader %f", i, r.Result.Welfare.Mean, results[0].Result.Welfare.Mean)
		}
	}
	var stats struct {
		Batch struct {
			EstimatesCoalesced int64 `json:"estimates_coalesced"`
		} `json:"batch"`
	}
	e.doJSON("GET", "/v1/stats", nil, &stats, http.StatusOK)
	if stats.Batch.EstimatesCoalesced == 0 {
		t.Error("no estimates coalesced across 4 identical concurrent requests")
	}
}
