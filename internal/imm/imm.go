package imm

import (
	"context"
	"math"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/telemetry"
)

// Options configures IMM. The defaults (Eps 0.5, Ell 1) are the ones the
// paper uses in all experiments.
type Options struct {
	Eps float64 // approximation slack ε > 0
	Ell float64 // confidence exponent: success probability 1 - 1/n^ℓ
	// Cascade selects the diffusion model (IC default, or LT).
	Cascade graph.Cascade
	// NodeCoin optionally injects a per-node pass probability into RR
	// sampling (used by the Com-IC baselines).
	NodeCoin func(graph.NodeID) float64
	// Progress, when non-nil, receives StageSketch events as the RR-set
	// collection grows (each adaptive round and the final regeneration).
	Progress progress.Func
	// Workers is the RR-set growth parallelism: each grow phase shards
	// sampling across this many goroutines with deterministic per-worker
	// RNG streams (rrset.GrowParallelCtx). 0 or 1 keeps the legacy
	// serial path — the library zero value changes nothing.
	Workers int
}

// withDefaults fills in unset fields.
func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	return o
}

// Result reports the selected seeds and the sampling effort spent.
type Result struct {
	Seeds     []graph.NodeID
	Coverage  float64 // F_R(Seeds) on the final collection
	SpreadEst float64 // n · F_R(Seeds)
	NumRRSets int     // RR sets in the final collection
	// TotalRRSets counts every RR set generated, including the phase-1
	// collection that the Chen'18 fix throws away before reselection.
	TotalRRSets int
	LB          float64 // lower bound on OPT_k used to size the collection
}

// Sketch is the reusable product of IMM's sampling phases: the final
// from-scratch RR-set collection for a specific (graph, k, ε, ℓ,
// cascade) tuple. A built Sketch is immutable — Select only reads the
// collection — so one Sketch may serve many goroutines concurrently (the
// seam the welmaxd sketch cache relies on).
type Sketch struct {
	// Col is the regenerated collection; nil in the degenerate cases
	// (empty instance, or k covering the whole graph).
	Col *rrset.Collection
	// K is the budget the sketch was sized for.
	K int
	// Phase1 counts the adaptive-phase samples discarded before the
	// final regeneration.
	Phase1 int
	// LB is the lower bound on OPT_k the adaptive phase established.
	LB float64
	// allNodesN, when positive, marks the degenerate instance whose
	// selection is every one of the n nodes in id order.
	allNodesN int
}

// Run executes IMM for a single budget k and returns the ordered seed set.
// The returned seeds satisfy sigma(S) >= (1-1/e-ε)·OPT_k with probability
// at least 1-1/n^ℓ.
func Run(g *graph.Graph, k int, opts Options, rng *stats.RNG) Result {
	return BuildSketch(g, k, opts, rng).Select()
}

// RunCtx is Run with cooperative cancellation: it returns ctx.Err() as
// soon as the sketch build observes the canceled context.
func RunCtx(ctx context.Context, g *graph.Graph, k int, opts Options, rng *stats.RNG) (Result, error) {
	sk, err := BuildSketchCtx(ctx, g, k, opts, rng)
	if err != nil {
		return Result{}, err
	}
	return sk.Select(), nil
}

// BuildSketch runs IMM's adaptive sampling and the final from-scratch
// regeneration, returning the collection without performing the final
// NodeSelection. The result is read-only and safe to share across
// goroutines; call Select (repeatedly, even concurrently) to obtain seed
// sets from it.
func BuildSketch(g *graph.Graph, k int, opts Options, rng *stats.RNG) *Sketch {
	sk, _ := BuildSketchCtx(context.Background(), g, k, opts, rng) // background ctx: never canceled
	return sk
}

// BuildSketchCtx is BuildSketch with cooperative cancellation and
// progress reporting: RR-set growth checks ctx every few hundred samples
// and reports through opts.Progress, so a canceled context stops sketch
// construction promptly with ctx.Err() instead of running the sampling
// phases to completion.
func BuildSketchCtx(ctx context.Context, g *graph.Graph, k int, opts Options, rng *stats.RNG) (*Sketch, error) {
	opts = opts.withDefaults()
	n := g.N()
	if k <= 0 || n == 0 {
		return &Sketch{}, nil
	}
	if k >= n {
		// Every node is a seed; no sampling needed.
		return &Sketch{K: k, LB: float64(n), allNodesN: n}, nil
	}
	ellPrime := EllPlusLog2(opts.Ell, n)
	epsp := EpsPrime(opts.Eps)

	col := rrset.NewCollection(g)
	col.Sampler().NodeCoin = opts.NodeCoin
	col.Sampler().Cascade = opts.Cascade

	round := 0
	grow := func(target int64) error {
		round++
		return col.GrowParallelCtx(ctx, target, rng, opts.Workers, func(done, total int64) {
			if opts.Progress != nil {
				opts.Progress(progress.Event{Stage: progress.StageSketch, Round: round, Done: int(done), Total: int(total)})
			}
		})
	}

	lb := 1.0
	lambdaStar := LambdaStar(n, k, opts.Eps, ellPrime)
	theta := lambdaStar // resolved below; fallback uses LB = 1

	maxI := int(math.Log2(float64(n))) - 1
	for i := 1; i <= maxI; i++ {
		x := float64(n) / math.Pow(2, float64(i))
		thetaI := LambdaPrime(n, k, opts.Eps, ellPrime) / x
		if err := grow(int64(math.Ceil(thetaI))); err != nil {
			return nil, err
		}
		endSel := telemetry.StartSpan(ctx, "greedy_select")
		_, frac := col.NodeSelection(k)
		endSel()
		if float64(n)*frac >= (1+epsp)*x {
			lb = float64(n) * frac / (1 + epsp)
			theta = lambdaStar / lb
			break
		}
	}
	if err := grow(int64(math.Ceil(theta))); err != nil {
		return nil, err
	}
	grown := col.Len()

	// Chen'18 fix: the final seed set must be selected on RR sets that are
	// independent of the adaptive stopping rule, so regenerate from
	// scratch. The final NodeSelection is left to Select so the
	// regenerated collection can be cached and shared.
	col.Reset()
	if err := grow(int64(math.Ceil(theta))); err != nil {
		return nil, err
	}
	return &Sketch{Col: col, K: k, Phase1: grown, LB: lb}, nil
}

// NumRRSets returns the size of the final collection (0 for degenerate
// sketches).
func (s *Sketch) NumRRSets() int {
	if s.Col == nil {
		return 0
	}
	return s.Col.Len()
}

// State exposes the sketch's serializable fields, including the
// unexported degenerate-instance marker; together with RestoreSketch it
// is the persistence seam the internal/store codec uses.
func (s *Sketch) State() (col *rrset.Collection, k, phase1 int, lb float64, allNodesN int) {
	return s.Col, s.K, s.Phase1, s.LB, s.allNodesN
}

// RestoreSketch reassembles a sketch from the fields State returned. A
// restored sketch is indistinguishable from the freshly built one: Select
// on it yields the identical seed set (NodeSelection is deterministic
// given the collection).
func RestoreSketch(col *rrset.Collection, k, phase1 int, lb float64, allNodesN int) *Sketch {
	return &Sketch{Col: col, K: k, Phase1: phase1, LB: lb, allNodesN: allNodesN}
}

// Select runs the final greedy NodeSelection on the sketch and assembles
// the IMM result. It only reads the collection and is safe to call
// concurrently from multiple goroutines on one shared Sketch.
func (s *Sketch) Select() Result {
	return s.SelectReport(nil)
}

// SelectReport is Select with an incremental seed-prefix callback:
// report (when non-nil) receives the ordering committed so far, every
// few seeds and once with the final selection (degenerate sketches
// report their full selection once). The prefix slice aliases selection
// storage — copy before retaining. Like Select it only reads the
// collection, so concurrent calls on one shared Sketch remain safe.
func (s *Sketch) SelectReport(report func(prefix []graph.NodeID)) Result {
	if s.allNodesN > 0 {
		seeds := make([]graph.NodeID, s.allNodesN)
		for i := range seeds {
			seeds[i] = graph.NodeID(i)
		}
		if report != nil {
			report(seeds)
		}
		return Result{Seeds: seeds, Coverage: 1, SpreadEst: float64(s.allNodesN), LB: s.LB}
	}
	if s.Col == nil {
		return Result{}
	}
	n := s.Col.N()
	seeds, frac := s.Col.NodeSelectionReport(s.K, report)
	return Result{
		Seeds:       seeds,
		Coverage:    frac,
		SpreadEst:   float64(n) * frac,
		NumRRSets:   s.Col.Len(),
		TotalRRSets: s.Phase1 + s.Col.Len(),
		LB:          s.LB,
	}
}
