// Budget planner: given a fixed total seed budget, how should a network
// host split it across complementary items? This reproduces the question
// behind Fig. 8(d): uniform splits exploit supermodular bundling best,
// while skewed splits strand budget on items that cannot be co-adopted.
//
// Run with: go run ./examples/budgetplanner
package main

import (
	"fmt"
	"sort"

	welfare "uicwelfare"
)

func main() {
	rng := welfare.NewRNG(11)
	g := welfare.GenerateNetwork("douban-movie", 0.5, 11)
	m := welfare.RealParams()
	fmt.Printf("network: %v\n", g)
	fmt.Println("items: PlayStation, controller, game1, game2, game3 (Table 5 utilities)")

	const total = 250
	splits := map[string][]int{
		"uniform":       {total / 5, total / 5, total / 5, total / 5, total / 5},
		"large-skew":    {total * 82 / 100, total * 45 / 1000, total * 45 / 1000, total * 45 / 1000, total * 45 / 1000},
		"moderate-skew": {total * 30 / 100, total * 30 / 100, total * 20 / 100, total * 10 / 100, total * 10 / 100},
		"games-heavy":   {total * 10 / 100, total * 10 / 100, total * 27 / 100, total * 27 / 100, total * 26 / 100},
	}

	type outcome struct {
		name    string
		welfare float64
		ci      float64
	}
	var results []outcome
	for name, budgets := range splits {
		p, err := welfare.NewProblem(g, m, budgets)
		if err != nil {
			panic(err)
		}
		res := welfare.BundleGRD(p, welfare.Options{}, rng)
		est := welfare.EstimateWelfare(p, res.Alloc, welfare.NewRNG(5), 10000)
		results = append(results, outcome{name, est.Mean, 1.96 * est.StdErr})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].welfare > results[j].welfare })

	fmt.Printf("\n%-15s %12s\n", "split", "welfare")
	for _, r := range results {
		fmt.Printf("%-15s %9.1f ± %.1f\n", r.name, r.welfare, r.ci)
	}
	fmt.Printf("\nrecommendation: split the budget \"%s\"\n", results[0].name)
	fmt.Println("skewed splits waste budget: a seed holding only the over-funded item")
	fmt.Println("cannot adopt it alone, and the prefix allocation cannot bundle it.")
}
