package cluster_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
)

// TestAdmissionRejectRelaysThroughRouter drives the admission-control
// 429 path through the cluster tier: a backend refusing a request whose
// predicted sketch cost blows its -admission-mb budget must surface to
// the client through the router with the same status and retryable
// body, and the router's stats must aggregate the per-shard
// admission_rejects counters.
func TestAdmissionRejectRelaysThroughRouter(t *testing.T) {
	backends := []*backend{
		startBackendAt(t, "b0", "127.0.0.1:0", service.Options{AdmissionMB: 1, BatchWindow: 5 * time.Millisecond}),
		startBackendAt(t, "b1", "127.0.0.1:0", service.Options{AdmissionMB: 1, BatchWindow: 5 * time.Millisecond}),
	}
	rt, c := newCluster(t, backends, cluster.Options{ProbeInterval: time.Hour, ProxyTimeout: 10 * time.Second})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(200)

	// ε at the floor prices the sketch two orders of magnitude past the
	// backends' 1MB admission budget.
	status, raw := c.do("POST", "/v1/allocate",
		service.AllocateRequest{GraphID: info.ID, Budgets: []int{10, 10}, Eps: 0.05})
	if status != http.StatusTooManyRequests {
		t.Fatalf("expensive allocate through router: status %d, want 429: %s", status, raw)
	}
	var body struct {
		Error         string `json:"error"`
		Retryable     bool   `json:"retryable"`
		EstimatedCost int64  `json:"estimated_cost"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Retryable || body.EstimatedCost <= 1<<20 {
		t.Fatalf("429 body through router lost the retryable contract: %s", raw)
	}

	// A sanely-priced request on the same graph clears admission and
	// completes end to end.
	view := c.waitJob(c.submit("/v1/allocate",
		service.AllocateRequest{GraphID: info.ID, Budgets: []int{3, 3}}))
	if view.State != service.JobDone {
		t.Fatalf("cheap allocate: %s (%s)", view.State, view.Error)
	}

	// The router's cluster summary aggregates the shards' admission and
	// batching counters.
	var stats struct {
		Cluster struct {
			AdmissionRejects int64 `json:"admission_rejects"`
			Batched          int64 `json:"batched"`
		} `json:"cluster"`
		Backends map[string]service.StatsResponse `json:"backends"`
	}
	c.doJSON("GET", "/v1/stats", nil, &stats, http.StatusOK)
	if stats.Cluster.AdmissionRejects != 1 {
		t.Fatalf("cluster admission_rejects = %d, want 1", stats.Cluster.AdmissionRejects)
	}
	if stats.Cluster.Batched < 1 {
		t.Fatalf("cluster batched = %d, want >= 1 (the cheap allocate's build)", stats.Cluster.Batched)
	}
	perShard := int64(0)
	for _, st := range stats.Backends {
		perShard += st.Batch.AdmissionRejects
	}
	if perShard != stats.Cluster.AdmissionRejects {
		t.Fatalf("per-shard admission sum %d != cluster aggregate %d", perShard, stats.Cluster.AdmissionRejects)
	}
}
