package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/progress"
	"uicwelfare/internal/store"
	"uicwelfare/internal/sweep"
	"uicwelfare/internal/telemetry"
)

// The experiment-sweep subsystem, single-node half. POST /v1/sweeps
// accepts a declarative grid spec (sweep.Spec), expands it into cells,
// and runs each cell as an ordinary pool job — through the same
// validation, admission control, sketch cache, and batcher as a client
// allocate, which is the point: a sweep is the paper's evaluation grid
// expressed as traffic, and the serving stack's coalescing tiers are
// what make the grid tractable (cells sharing a (graph, ε) group
// coalesce onto one dominating sketch build; identical estimates
// coalesce onto one Monte-Carlo run). The sweep itself is a job of kind
// "sweep" in the same store, so SSE streaming, cancellation,
// retention, and the audit spill all apply unchanged.

// SweepStats is the /v1/stats view of the sweep subsystem's lifetime
// cell counters (also exported as welmax_sweep_cells_total{state}).
type SweepStats struct {
	CellsDone     int64 `json:"cells_done"`
	CellsFailed   int64 `json:"cells_failed"`
	CellsCanceled int64 `json:"cells_canceled"`
}

// sweepRecord is one finished sweep's in-memory result: the full
// per-cell rows GET /v1/sweeps/{id}/results serves without a disk
// round-trip, plus the artifact id they were persisted under.
type sweepRecord struct {
	artifactID string
	res        *store.SweepResult
}

// maxSweepRecords bounds the in-memory result index; older sweeps fall
// back to their disk artifact (or 410 without a data dir).
const maxSweepRecords = 32

func (s *Service) rememberSweep(jobID, artifactID string, res *store.SweepResult) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if _, exists := s.sweepResults[jobID]; !exists {
		s.sweepOrder = append(s.sweepOrder, jobID)
		if len(s.sweepOrder) > maxSweepRecords {
			delete(s.sweepResults, s.sweepOrder[0])
			s.sweepOrder = s.sweepOrder[1:]
		}
	}
	s.sweepResults[jobID] = &sweepRecord{artifactID: artifactID, res: res}
}

func (s *Service) lookupSweep(jobID string) (*sweepRecord, bool) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	rec, ok := s.sweepResults[jobID]
	return rec, ok
}

// CellAllocateRequest maps one expanded grid cell onto the ordinary
// allocate request that executes it. Exported because the cluster
// router dispatches cells as allocate bodies to shard owners and must
// produce exactly the request the backend's own sweep path would.
func CellAllocateRequest(spec *sweep.Spec, c *sweep.Cell) *AllocateRequest {
	return &AllocateRequest{
		GraphID: c.GraphID,
		Algo:    c.Algo,
		Config:  c.Config,
		Items:   spec.Items,
		Budgets: c.Budgets,
		Eps:     c.Eps,
		Cascade: c.Cascade,
		Seed:    c.Seed,
		Runs:    spec.Runs,
		Workers: spec.Workers,
	}
}

// handleCreateSweep implements POST /v1/sweeps: expand the grid, reject
// structurally or semantically invalid specs synchronously with 400
// (every cell is validated against the registry before anything runs),
// and launch the sweep as a job of kind "sweep". Answers 202 with the
// sweep id — the same contract as the other async routes.
func (s *Service) handleCreateSweep(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if !decodeBody(w, r, &spec) {
		return
	}
	tr := s.newTrace(w, r)
	cells, err := sweep.Expand(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for i := range cells {
		if _, err := s.validateAllocate(CellAllocateRequest(&spec, &cells[i])); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %s: %w", cells[i].ID, err))
			return
		}
	}
	job := s.jobs.Create("sweep", tr.ID(), &spec)
	// The orchestrator runs on its own goroutine, not the worker pool:
	// cells occupy the pool, and a sweep occupying a worker while its
	// cells wait for one would deadlock a fully-subscribed pool.
	go s.runSweep(job.ID, tr, &spec, cells)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"sweep_id": job.ID,
		"state":    JobQueued,
		"cells":    len(cells),
		"trace_id": tr.ID(),
	})
}

// runSweep is the sweep job's lifecycle wrapper (Start → execute →
// finishJob), mirroring what enqueue does for pool jobs.
func (s *Service) runSweep(jobID string, tr *telemetry.Trace, spec *sweep.Spec, cells []sweep.Cell) {
	ctx, ok := s.jobs.Start(jobID)
	if !ok {
		return // canceled while queued
	}
	started := time.Now()
	ctx = telemetry.NewContext(ctx, tr)
	summary, err := s.executeSweep(ctx, jobID, spec, cells)
	// A sweep spans multiple graphs; its trace record carries no single
	// graph label.
	s.finishJob(jobID, "sweep", "", tr, started, summary, err)
}

// executeSweep fans the cells out over the worker pool with bounded
// concurrency, gathers the rows, persists the result artifact, and
// returns the summary. A canceled sweep still lands its artifact — the
// finished cells' work is real and the partial result is often the
// point of canceling — but the job itself finishes canceled.
func (s *Service) executeSweep(ctx context.Context, jobID string, spec *sweep.Spec, cells []sweep.Cell) (*sweep.Summary, error) {
	started := time.Now()
	traceID := ""
	if tr := telemetry.FromContext(ctx); tr != nil {
		traceID = tr.ID()
	}
	rows := make([]store.SweepCell, len(cells))
	sem := make(chan struct{}, s.sweepCellWorkers)
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &cells[i]
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				rows[i] = s.cellSkeleton(c)
				rows[i].State = string(JobCanceled)
				rows[i].Error = "sweep canceled"
				s.finishCell(jobID, &rows[i], int(completed.Add(1)), len(cells))
				return
			}
			rows[i] = s.runCell(ctx, jobID, traceID, spec, c)
			s.finishCell(jobID, &rows[i], int(completed.Add(1)), len(cells))
		}(i)
	}
	wg.Wait()

	res := &store.SweepResult{
		SweepID:  jobID,
		Name:     spec.Name,
		TraceID:  traceID,
		SpecJSON: spec.Marshal(),
		Cells:    rows,
	}
	endArt := telemetry.StartSpan(ctx, "sweep_artifact")
	artifactID := store.SweepResultID(res)
	persisted := false
	if s.disk != nil {
		if id, err := s.disk.SaveSweep(res); err == nil {
			artifactID, persisted = id, true
		}
	}
	endArt()
	s.rememberSweep(jobID, artifactID, res)

	summary := &sweep.Summary{
		SweepID:    jobID,
		Name:       spec.Name,
		Cells:      len(rows),
		ArtifactID: artifactID,
		Persisted:  persisted,
		ElapsedMS:  time.Since(started).Milliseconds(),
	}
	for i := range rows {
		switch rows[i].State {
		case string(JobDone):
			summary.Done++
		case string(JobFailed):
			summary.Failed++
		case string(JobCanceled):
			summary.Canceled++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return summary, nil
}

// cellSkeleton fills a row's grid coordinates (everything except the
// outcome).
func (s *Service) cellSkeleton(c *sweep.Cell) store.SweepCell {
	return store.SweepCell{
		Index:   c.Index,
		CellID:  c.ID,
		GraphID: c.GraphID,
		Algo:    c.Algo,
		Config:  c.Config,
		Cascade: c.Cascade,
		Eps:     c.Eps,
		Budgets: c.Budgets,
		Seed:    c.Seed,
		Node:    s.nodeID,
	}
}

// finishCell publishes a cell's terminal event on the sweep's SSE
// stream (Done/Total carry overall sweep progress) and feeds the
// lifetime counters behind welmax_sweep_cells_total{state}.
func (s *Service) finishCell(sweepJobID string, row *store.SweepCell, completed, total int) {
	switch row.State {
	case string(JobDone):
		s.sweepCellsDone.Add(1)
	case string(JobCanceled):
		s.sweepCellsCanceled.Add(1)
	default:
		s.sweepCellsFailed.Add(1)
	}
	s.jobs.Publish(sweepJobID, JobEvent{
		Type:      EventProgress,
		Stage:     "cell",
		Cell:      row.CellID,
		CellState: row.State,
		CellJob:   row.JobID,
		Node:      row.Node,
		Done:      completed,
		Total:     total,
	})
}

// Cell retry policy: transient refusals (full job queue, admission
// rejects that queue-with-deadline could not absorb) back off and
// retry a few times before the cell fails; deterministic failures
// (validation, a failed build) fail immediately.
const (
	maxCellAttempts  = 4
	cellRetryBackoff = 50 * time.Millisecond
)

// runCell executes one grid cell to a terminal row. The cell announces
// itself on the sweep stream ("running"), then goes through exactly the
// client path: validate → queue-with-deadline admission → pool job →
// AllocateCtx (tiered cache, batcher, estimate flight).
func (s *Service) runCell(ctx context.Context, sweepJobID, traceID string, spec *sweep.Spec, c *sweep.Cell) store.SweepCell {
	row := s.cellSkeleton(c)
	req := CellAllocateRequest(spec, c)
	s.jobs.Publish(sweepJobID, JobEvent{
		Type: EventProgress, Stage: "cell", Cell: c.ID, CellState: string(JobRunning), Node: s.nodeID,
	})
	started := time.Now()
	var lastErr error
	for attempt := 0; attempt < maxCellAttempts; attempt++ {
		if attempt > 0 {
			backoff := cellRetryBackoff << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				row.State = string(JobCanceled)
				row.Error = ctx.Err().Error()
				return row
			}
		}
		plan, err := s.validateAllocate(req)
		if err != nil {
			// Deterministic: the graph vanished mid-sweep or the spec is
			// stale. Retrying cannot help.
			row.State = string(JobFailed)
			row.Error = err.Error()
			row.ElapsedMS = time.Since(started).Milliseconds()
			return row
		}
		if aerr := s.admitOrWait(ctx, req.GraphID, plan); aerr != nil {
			lastErr = aerr
			continue
		}
		jobID, outcome, ok := s.submitCell(traceID, req)
		if !ok {
			lastErr = errors.New("job queue full")
			continue
		}
		row.JobID = jobID
		select {
		case out := <-outcome:
			row.ElapsedMS = time.Since(started).Milliseconds()
			if out.err != nil {
				if ctx.Err() != nil && errors.Is(out.err, context.Canceled) {
					row.State = string(JobCanceled)
				} else {
					row.State = string(JobFailed)
				}
				row.Error = out.err.Error()
				return row
			}
			row.State = string(JobDone)
			row.Algo = out.res.Algorithm
			row.SketchCached = out.res.SketchCached
			if out.res.Welfare != nil {
				row.HasWelfare = true
				row.WelfareMean = out.res.Welfare.Mean
				row.WelfareStdErr = out.res.Welfare.StdErr
				row.WelfareRuns = out.res.Welfare.Runs
			}
			return row
		case <-ctx.Done():
			// Sweep canceled while the cell ran: propagate to the cell job
			// and record the cell canceled without waiting for the worker.
			s.jobs.Cancel(jobID)
			row.State = string(JobCanceled)
			row.Error = ctx.Err().Error()
			row.ElapsedMS = time.Since(started).Milliseconds()
			return row
		}
	}
	row.State = string(JobFailed)
	if lastErr != nil {
		row.Error = fmt.Sprintf("gave up after %d attempts: %v", maxCellAttempts, lastErr)
	}
	row.ElapsedMS = time.Since(started).Milliseconds()
	return row
}

// cellOutcome is a finished cell job's result, delivered off the worker.
type cellOutcome struct {
	res *AllocateResult
	err error
}

// submitCell runs one cell as a pool job of kind "cell" under the
// sweep's trace id (so the whole grid greps by one id), with its own
// per-cell job record — in a cluster the job id's node prefix is how
// results prove which shard ran the cell. Reports ok = false when the
// pool queue is full.
func (s *Service) submitCell(traceID string, req *AllocateRequest) (string, <-chan cellOutcome, bool) {
	tr := telemetry.NewTrace(traceID, s.telemetryOn)
	job := s.jobs.Create("cell", tr.ID(), req)
	out := make(chan cellOutcome, 1)
	ok := s.pool.Submit(func() {
		ctx, ok := s.jobs.Start(job.ID)
		if !ok {
			out <- cellOutcome{err: context.Canceled}
			return
		}
		started := time.Now()
		ctx = telemetry.NewContext(ctx, tr)
		res, err := s.AllocateCtx(ctx, req, func(ev progress.Event) {
			s.jobs.Publish(job.ID, JobEvent{
				Type:       EventProgress,
				Stage:      string(ev.Stage),
				Round:      ev.Round,
				Done:       ev.Done,
				Total:      ev.Total,
				SeedPrefix: ev.SeedPrefix,
			})
		})
		s.finishJob(job.ID, "cell", req.GraphID, tr, started, res, err)
		out <- cellOutcome{res: res, err: err}
	})
	if !ok {
		s.jobs.Remove(job.ID)
		return "", nil, false
	}
	return job.ID, out, true
}

// sweepView resolves a sweep id to its job view, distinguishing
// "unknown job" from "that job is not a sweep" (both 404 to clients).
func (s *Service) sweepView(id string) (JobView, bool) {
	view, ok := s.jobs.Snapshot(id)
	if !ok || view.Kind != "sweep" {
		return JobView{}, false
	}
	return view, true
}

// sweepPageLimit / sweepPageMax bound GET /v1/sweeps pages.
const (
	sweepPageLimit = 50
	sweepPageMax   = 500
)

// PaginateSweeps filters a JobStore listing down to sweep jobs and
// pages it newest-first: limitRaw is the raw ?limit= value (default 50,
// capped at 500) and cursor is the id of the last sweep on the previous
// page. It returns the page and the cursor for the next one ("" when
// the listing is exhausted). Exported because the cluster router pages
// its own sweep listing through exactly this logic.
func PaginateSweeps(all []JobView, limitRaw, cursor string) ([]JobView, string, error) {
	limit := sweepPageLimit
	if limitRaw != "" {
		n, err := strconv.Atoi(limitRaw)
		if err != nil || n <= 0 {
			return nil, "", fmt.Errorf("bad limit %q", limitRaw)
		}
		limit = min(n, sweepPageMax)
	}
	// JobStore.List is creation order; newest-first is its reverse.
	sweeps := make([]JobView, 0, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].Kind == "sweep" {
			sweeps = append(sweeps, all[i])
		}
	}
	start := 0
	if cursor != "" {
		found := false
		for i := range sweeps {
			if sweeps[i].ID == cursor {
				start, found = i+1, true
				break
			}
		}
		if !found {
			// The cursor's sweep aged out of retention (or never existed):
			// an explicit error beats silently restarting from the top.
			return nil, "", fmt.Errorf("unknown cursor %q", cursor)
		}
	}
	end := min(start+limit, len(sweeps))
	page := sweeps[start:end]
	next := ""
	if end < len(sweeps) && len(page) > 0 {
		next = page[len(page)-1].ID
	}
	return page, next, nil
}

// handleListSweeps implements GET /v1/sweeps: retained sweep jobs,
// newest-first, paginated by ?limit= and ?cursor= (the id of the last
// sweep on the previous page; the response's next_cursor when another
// page remains).
func (s *Service) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	page, next, err := PaginateSweeps(s.jobs.List(""), r.URL.Query().Get("limit"), r.URL.Query().Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := map[string]any{"sweeps": page}
	if next != "" {
		out["next_cursor"] = next
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetSweep implements GET /v1/sweeps/{id}.
func (s *Service) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	view, ok := s.sweepView(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleCancelSweep implements DELETE /v1/sweeps/{id}: cancel a running
// sweep (in-flight cells are canceled, the partial artifact still
// lands) or delete a finished one's job record.
func (s *Service) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.sweepView(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	view, requested, _ := s.jobs.Cancel(id)
	if requested {
		writeJSON(w, http.StatusAccepted, view)
		return
	}
	s.jobs.Remove(id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleSweepEvents implements GET /v1/sweeps/{id}/events: the sweep
// job's SSE stream — per-cell state transitions with overall progress,
// over exactly the job-events plumbing (same frames, same resync
// semantics, same trace-id stamping).
func (s *Service) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.sweepView(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	StreamJobEvents(w, r, s.jobs, id)
}

// handleSweepResults implements GET /v1/sweeps/{id}/results: the
// finished sweep's per-cell rows with ?<dim>= filters and ?group_by=
// welfare aggregation (see sweep.Query). Served from the in-memory
// record when retained, else re-read from the content-addressed disk
// artifact.
func (s *Service) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.sweepView(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	rec, ok := s.lookupSweep(id)
	if !ok {
		if !view.State.Terminal() {
			writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s; results are served once it finishes", id, view.State))
			return
		}
		sum, okSum := view.Result.(*sweep.Summary)
		if !okSum || s.disk == nil {
			writeError(w, http.StatusGone, fmt.Errorf("sweep %s results are no longer retained", id))
			return
		}
		res, err := s.disk.LoadSweep(sum.ArtifactID)
		if err != nil {
			writeError(w, http.StatusGone, fmt.Errorf("sweep %s artifact %s unreadable: %v", id, sum.ArtifactID, err))
			return
		}
		rec = &sweepRecord{artifactID: sum.ArtifactID, res: res}
	}
	resp, err := sweep.Query(rec.res, rec.artifactID, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
