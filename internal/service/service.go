package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/batch"
	"uicwelfare/internal/core"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/journal"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/store"
	"uicwelfare/internal/telemetry"
	"uicwelfare/internal/tracestore"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Options configures a Service.
type Options struct {
	// Workers is the allocation/estimation worker-pool size (default 2).
	Workers int
	// SketchWorkers is the RR-set growth parallelism inside each sketch
	// build (welmaxd -sketch-workers): sampling shards across this many
	// goroutines with deterministic per-worker RNG streams. 0 (the
	// default) resolves to GOMAXPROCS; 1 keeps the legacy serial path.
	SketchWorkers int
	// QueueCap bounds the job queue (default 64).
	QueueCap int
	// CacheEntries bounds the sketch cache (default 64).
	CacheEntries int
	// CacheMB bounds the in-memory sketch cache by approximate resident
	// cost in megabytes (0 = entry bound only).
	CacheMB int
	// JobRetention bounds how many finished jobs stay queryable
	// (default 1024).
	JobRetention int
	// MaxGraphs bounds the graph registry (default 64).
	MaxGraphs int
	// AllowPathLoads permits POST /v1/graphs requests naming
	// server-side files. Off by default: an unauthenticated daemon
	// must not let remote callers open arbitrary local paths.
	AllowPathLoads bool
	// DataDir enables the persistence tier: graphs are stored
	// content-addressed under <DataDir>/graphs, completed sketch builds
	// are spilled under <DataDir>/sketches, and New re-indexes both so a
	// restarted daemon keeps its graph ids and answers its first repeated
	// allocate from a warm path. Empty keeps today's purely in-memory
	// behavior.
	DataDir string
	// DiskMB bounds the spilled-sketch tier in megabytes (0 = unbounded);
	// only meaningful with DataDir set.
	DiskMB int
	// CacheTTL bounds how long a completed in-memory sketch stays
	// servable (0 = forever); expired entries read as misses and are
	// counted in /v1/stats.
	CacheTTL time.Duration
	// NodeID names this backend inside a cluster. When set, job ids are
	// minted as "<NodeID>-j<seq>" so the routing tier can map a job id
	// back to its backend, and GET /v1/healthz reports it so the router
	// can verify it is probing the backend it thinks it is. Empty (the
	// single-node default) keeps plain "j<seq>" ids.
	NodeID string
	// BatchWindow enables the budget-coalescing batch scheduler: a
	// sketch-cache miss holds the request for this gather window, merges
	// it with concurrent requests that differ only in budgets (same
	// graph, sketch family, cascade, ε, ℓ), and runs one sketch build
	// sized for a budget vector dominating them all. Zero (the default)
	// disables batching; every miss builds its exact-budget sketch
	// immediately, as before.
	BatchWindow time.Duration
	// AdmissionMB enables cost-based admission control: allocate and
	// warm requests whose predicted sketch cost (the planner's
	// core.Meta.CostEstimator, calibrated by observed builds) exceeds
	// this many megabytes are rejected with 429 and a retryable body
	// instead of queueing work that would blow the cache budget. Zero
	// disables admission (every request is queued).
	AdmissionMB int
	// AdmissionQueue enables queue-with-deadline admission: a request
	// refused by cost-based admission whose predicted overshoot is small
	// (estimate ≤ AdmissionSlack × the budget) holds one of this many
	// FIFO slots and re-checks until AdmissionWait elapses, instead of
	// answering 429 immediately — sweeps otherwise turn every near-miss
	// into a client-side reject-retry loop. Zero (the default) keeps the
	// immediate-429 behavior.
	AdmissionQueue int
	// AdmissionWait is how long a queued request may wait for admission
	// (default 2s).
	AdmissionWait time.Duration
	// AdmissionSlack is the queue-eligibility factor: only requests whose
	// estimate is within this multiple of the admission budget queue;
	// anything further over rejects immediately (default 1.5).
	AdmissionSlack float64
	// SweepCellWorkers bounds how many of a sweep's cells run
	// concurrently (default: the worker-pool size). Cells are ordinary
	// pool jobs; this cap keeps one sweep from monopolizing the queue.
	SweepCellWorkers int
	// ClusterToken, when set, is the shared secret the cluster-internal
	// endpoints (POST /v1/graphs/import and the sketch export/import
	// routes) require in the ClusterTokenHeader. Imported sketches become
	// authoritative for allocation results, so a backend reachable
	// beyond its private network should set this (the router attaches
	// the token to its own backend traffic and relays a client's token on
	// proxied requests). Empty skips the check — appropriate only when
	// backends listen on a private network.
	ClusterToken string
	// TelemetryOff disables span recording and histogram observation
	// (-telemetry=off). Trace ids are still minted and propagated — they
	// are too cheap and too useful for correlation to turn off — but
	// every StartSpan and metric observe becomes a no-op, which is what
	// the warm-path overhead benchmark measures against.
	TelemetryOff bool
	// SlowThreshold is the job duration at or above which a structured
	// slow-request log line is emitted (default 1s; < 0 disables).
	SlowThreshold time.Duration
	// JournalRing bounds the control-plane flight recorder's in-memory
	// event ring (default 4096). The journal itself is always on — its
	// ring append is O(1) — but only daemons with a DataDir also spill
	// segments to <DataDir>/journal.
	JournalRing int
	// JournalMB bounds the spilled journal segments in megabytes
	// (default 32); only meaningful with DataDir set.
	JournalMB int
	// TraceRing bounds the trace store's in-memory ring of completed
	// traces (default 512). The store follows the telemetry switch:
	// TelemetryOff disables it entirely (GET /v1/traces serves empty).
	TraceRing int
	// TraceMB bounds the spilled trace segments in megabytes (default
	// 32); only meaningful with DataDir set.
	TraceMB int
	// TraceSample is the probability of keeping a completed trace that
	// was neither slow nor errored nor admission-queued (those are
	// always kept — tail sampling). Zero keeps only the always-kept
	// classes; 1 keeps everything.
	TraceSample float64
	// TraceSampleAll forces TraceSample to 1 (tests and single-node
	// debugging; the zero-value Options otherwise samples out every
	// fast success).
	TraceSampleAll bool
}

// Service owns the daemon's state: the graph registry, the RR-sketch
// cache (in-memory tier plus optional disk tier), the job store, and the
// worker pool. Handler exposes it over HTTP.
type Service struct {
	registry     *Registry
	cache        *SketchCache
	disk         *store.Store // nil without a data dir
	jobs         *JobStore
	pool         *Pool
	start        time.Time
	allowPaths   bool
	nodeID       string
	clusterToken string
	cacheTTL     time.Duration

	// sketchWorkers is the resolved RR-set growth parallelism handed to
	// every sketch build (Options.SketchWorkers, with 0 resolved to
	// GOMAXPROCS at construction).
	sketchWorkers int

	// batcher coalesces concurrent mixed-budget sketch builds; nil when
	// batching is disabled (BatchWindow 0).
	batcher     *batch.Scheduler
	batchWindow time.Duration
	// sketchExtends counts batched builds served by extending a resident
	// near-dominating sketch instead of cold-building; rrSetsAppended
	// counts the RR sets those extensions appended (the delta the cold
	// build would have resampled from zero).
	sketchExtends  atomic.Int64
	rrSetsAppended atomic.Int64
	// mergedIdx remembers, per batch group key, the budget vector and
	// cache key of the most recent batch-built sketch, so a later
	// request dominated by it is served from (and admitted against) the
	// resident dominating sketch instead of cold-building its
	// exact-budget one — without it, a repeat of any coalesced
	// request's budgets would rebuild while the dominating sketch sits
	// in the cache.
	mergedMu  sync.Mutex
	mergedIdx map[string]mergedSketch
	// admissionBytes is the cost-based admission budget (0 = off);
	// costModels calibrates the planners' a-priori cost estimates
	// against observed builds, per graph with a global fallback;
	// admissionRejects counts 429s for /v1/stats.
	admissionBytes   int64
	costModels       *store.CostModels
	admissionRejects atomic.Int64
	// Queue-with-deadline admission (see Options.AdmissionQueue): the
	// buffered channel is the bounded FIFO's slot semaphore, nil when
	// disabled.
	admissionQueue         chan struct{}
	admissionWait          time.Duration
	admissionSlack         float64
	admissionQueued        atomic.Int64
	admissionQueueAdmitted atomic.Int64
	admissionQueueTimeouts atomic.Int64

	// estFlight coalesces identical concurrent estimate requests onto
	// one Monte-Carlo run (sweep cells issue estimate storms);
	// estimatesCoalesced counts the waiters served from a leader's run.
	estFlight          estimateFlight
	estimatesCoalesced atomic.Int64

	// Sweep subsystem state: sweepCellWorkers bounds per-sweep cell
	// concurrency; sweepResults retains the last few finished sweeps'
	// full per-cell rows in memory (the artifact on disk is the durable
	// copy); the cell counters feed welmax_sweep_cells_total{state}.
	sweepCellWorkers   int
	sweepMu            sync.Mutex
	sweepResults       map[string]*sweepRecord
	sweepOrder         []string
	sweepCellsDone     atomic.Int64
	sweepCellsFailed   atomic.Int64
	sweepCellsCanceled atomic.Int64

	// telemetryOn gates span recording and histogram observation;
	// metrics is the latency-histogram registry /v1/metrics serves
	// (always non-nil, so observe sites need no nil checks);
	// slowThreshold is the slow-request log cutoff and slowLogf the log
	// sink (a test seam; defaults to log.Printf).
	telemetryOn   bool
	metrics       *telemetry.Metrics
	slowThreshold time.Duration
	slowLogf      func(format string, args ...any)

	// flight is the control-plane flight recorder: admission verdicts,
	// cache evictions/expiries, job spills land here and are served by
	// GET /v1/events. Always non-nil.
	flight *journal.Recorder

	// traces retains completed request traces (span trees) for GET
	// /v1/traces, tail-sampled; nil when telemetry is off (a nil store
	// keeps nothing, so record sites need no gate of their own).
	traces *tracestore.Store
}

// New assembles a Service and starts its worker pool. With a data
// directory configured it also opens the disk tier and re-indexes it:
// every readable stored graph is registered under its content id (up to
// the registry bound), so clients' graph ids — and the sketch-cache keys
// derived from them — survive restarts.
func New(opts Options) (*Service, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.SketchWorkers <= 0 {
		opts.SketchWorkers = runtime.GOMAXPROCS(0)
	}
	// Open the disk tier before starting the worker pool: a failed Open
	// must not leave the pool's goroutines running behind the error.
	var disk *store.Store
	if opts.DataDir != "" {
		var err error
		if disk, err = store.Open(opts.DataDir, opts.DiskMB); err != nil {
			return nil, err
		}
	}
	s := &Service{
		registry:       NewRegistry(opts.MaxGraphs),
		cache:          NewSketchCache(opts.CacheEntries, int64(opts.CacheMB)<<20, opts.CacheTTL, store.SketchCost),
		disk:           disk,
		jobs:           NewJobStore(opts.JobRetention),
		pool:           NewPool(opts.Workers, opts.QueueCap),
		start:          time.Now(),
		allowPaths:     opts.AllowPathLoads,
		nodeID:         opts.NodeID,
		clusterToken:   opts.ClusterToken,
		cacheTTL:       opts.CacheTTL,
		batchWindow:    opts.BatchWindow,
		sketchWorkers:  opts.SketchWorkers,
		admissionBytes: int64(opts.AdmissionMB) << 20,
		costModels:     store.NewCostModels(),
		telemetryOn:    !opts.TelemetryOff,
		metrics:        telemetry.NewMetrics(),
		slowThreshold:  opts.SlowThreshold,
		slowLogf:       log.Printf,
	}
	if s.slowThreshold == 0 {
		s.slowThreshold = time.Second
	}
	// The flight recorder journals control-plane decisions. The ring is
	// in-memory and always on; a data dir additionally spills segments.
	var journalDir string
	if opts.DataDir != "" {
		journalDir = filepath.Join(opts.DataDir, "journal")
	}
	flight, err := journal.New(journal.Options{
		Node:     opts.NodeID,
		RingSize: opts.JournalRing,
		Dir:      journalDir,
		MaxBytes: int64(opts.JournalMB) << 20,
	})
	if err != nil {
		return nil, err
	}
	s.flight = flight
	// The trace store follows the telemetry switch: without spans there
	// is nothing worth retaining. A data dir additionally spills
	// CRC-framed segments under <DataDir>/traces.
	if s.telemetryOn {
		var traceDir string
		if opts.DataDir != "" {
			traceDir = filepath.Join(opts.DataDir, "traces")
		}
		s.traces, err = tracestore.New(tracestore.Options{
			Node:       opts.NodeID,
			RingSize:   opts.TraceRing,
			SampleRate: opts.TraceSample,
			SampleAll:  opts.TraceSampleAll,
			Dir:        traceDir,
			MaxBytes:   int64(opts.TraceMB) << 20,
		})
		if err != nil {
			flight.Close()
			return nil, err
		}
	}
	// Evictions and expiries are cache-lock-held callbacks; the journal
	// ring append is O(1) and non-blocking, which is why it is safe
	// here. The trace id is the evicting request's — the eviction is a
	// side effect of that request's insert, and carrying its id makes
	// the trace's control-plane fallout greppable (?trace=).
	s.cache.SetEvictHook(func(key string, cost int64, traceID string) {
		gid, _, _ := strings.Cut(key, "|")
		s.flight.Record(journal.Event{Type: journal.CacheEvict, Graph: gid, Key: key, Bytes: cost, TraceID: traceID})
	})
	if opts.BatchWindow > 0 {
		s.batcher = batch.New(opts.BatchWindow)
		s.mergedIdx = map[string]mergedSketch{}
		// Journal every gather window that reaches its build: which
		// group fired and how many requests share the one sketch. The
		// hook runs on the window timer's goroutine; the ring append is
		// O(1) and non-blocking. The trace id is the group's first
		// submitter's — the request whose miss opened the window.
		s.batcher.SetFireHook(func(key string, budgets []int, waiters int, traceID string) {
			gid, _, _ := strings.Cut(key, "|")
			s.flight.Record(journal.Event{
				Type:    journal.BatchFire,
				Graph:   gid,
				Key:     key,
				Count:   int64(waiters),
				TraceID: traceID,
			})
		})
	}
	if opts.AdmissionQueue > 0 {
		s.admissionQueue = make(chan struct{}, opts.AdmissionQueue)
	}
	if s.admissionWait = opts.AdmissionWait; s.admissionWait <= 0 {
		s.admissionWait = 2 * time.Second
	}
	if s.admissionSlack = opts.AdmissionSlack; s.admissionSlack <= 0 {
		s.admissionSlack = 1.5
	}
	if s.sweepCellWorkers = opts.SweepCellWorkers; s.sweepCellWorkers <= 0 {
		s.sweepCellWorkers = opts.Workers
	}
	s.sweepResults = map[string]*sweepRecord{}
	s.jobs.SetNodeID(opts.NodeID)
	// A TTL expiry must invalidate the disk spill too — otherwise the
	// "rebuild" reloads the identical stale sketch from disk and the
	// TTL never refreshes anything on a persistent daemon.
	s.cache.SetExpireHook(func(key string) {
		gid, _, _ := strings.Cut(key, "|")
		if disk != nil && gid != "" {
			disk.DeleteSketch(gid, key)
		}
		s.flight.Record(journal.Event{Type: journal.CacheExpire, Graph: gid, Key: key})
	})
	if disk != nil {
		// Terminal jobs spill to the audit trail; append failures are
		// counted in the disk tier's spill errors, never fail the job.
		s.jobs.SetFinalSink(func(v JobView) {
			err := disk.AppendJobRecord(v)
			ev := journal.Event{Type: journal.JobSpill, Job: v.ID, TraceID: v.TraceID}
			if err != nil {
				ev.Error = err.Error()
			}
			s.flight.Record(ev)
		})
		for _, sg := range disk.LoadGraphs() {
			if _, _, err := s.registry.AddWithID(sg.ID, sg.Name, sg.Graph); err != nil {
				break // registry full: keep what fit
			}
		}
		// The boot-time re-index is itself a control-plane event: record
		// how many terminal job records the resurrected audit trail
		// carries, so an operator can see a restart (and its recovered
		// history) in the same stream as everything else.
		if n := len(disk.JobHistory()); n > 0 {
			s.flight.Record(journal.Event{Type: journal.JobReplay, Count: int64(n)})
		}
	}
	return s, nil
}

// Close drains the worker pool and flushes the flight recorder and the
// trace store.
func (s *Service) Close() {
	s.pool.Close()
	s.flight.Close()
	s.traces.Close()
}

// Traces exposes the trace store (nil with telemetry off; handlers go
// through GET /v1/traces).
func (s *Service) Traces() *tracestore.Store { return s.traces }

// Journal exposes the control-plane flight recorder (the events
// endpoint, gauges, and tests read it; emitters hold the Service).
func (s *Service) Journal() *journal.Recorder { return s.flight }

// ResetSketchCache drops all cached in-memory sketches (used by the
// cold-path benchmark). Safe to call while requests are in flight.
func (s *Service) ResetSketchCache() { s.cache.Reset() }

// Registry exposes the graph registry (used by tests; registration that
// should persist goes through RegisterGraph).
func (s *Service) Registry() *Registry { return s.registry }

// RegisterGraph adds a graph to the registry under its content id and,
// when the disk tier is enabled, persists it so a restart re-registers
// it under the same id. A duplicate of a resident graph dedupes to the
// existing entry (existed = true) without touching disk.
func (s *Service) RegisterGraph(name string, g *graph.Graph) (entry *GraphEntry, existed bool, err error) {
	entry, existed, err = s.registry.Add(name, g)
	if err != nil || existed {
		return entry, existed, err
	}
	if s.disk != nil {
		// Persistence is best-effort: on a write error the graph is still
		// resident and usable, a restart simply won't have it. After the
		// write, re-check for a concurrent DELETE — its disk sweep may
		// have run before our SaveGraph, and an orphaned graph file would
		// resurrect the deleted graph at every restart.
		_ = s.disk.SaveGraph(entry.ID, entry.Name, entry.Graph)
		if _, ok := s.registry.Get(entry.ID); !ok {
			s.disk.DeleteGraph(entry.ID)
		}
	}
	return entry, false, nil
}

// DeleteGraph removes a graph from the registry, drops its cached
// sketches, and deletes its persisted artifacts (graph file and spilled
// sketches). It reports whether the graph existed.
func (s *Service) DeleteGraph(id string) bool {
	if !s.registry.Delete(id) {
		return false
	}
	s.cache.InvalidateGraph(id)
	s.dropMergedForGraph(id)
	s.costModels.Forget(id)
	if s.disk != nil {
		s.disk.DeleteGraph(id)
	}
	return true
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Node is the backend's cluster node id; empty on a single-node
	// daemon.
	Node        string     `json:"node,omitempty"`
	Graphs      int        `json:"graphs"`
	SketchCache CacheStats `json:"sketch_cache"`
	// DiskTier reports the persistence tier's counters; nil when the
	// daemon runs without -data-dir.
	DiskTier *store.Stats `json:"disk_tier,omitempty"`
	// Batch reports the budget-coalescing scheduler and the cost-based
	// admission control (zeros when both are disabled).
	Batch BatchStats `json:"batch"`
	// Sweeps reports the experiment-sweep subsystem's cell counters.
	Sweeps      SweepStats       `json:"sweeps"`
	Jobs        map[JobState]int `json:"jobs"`
	Workers     int              `json:"workers"`
	BusyWorkers int              `json:"busy_workers"`
	QueueDepth  int              `json:"queue_depth"`
	QueueCap    int              `json:"queue_cap"`
	UptimeMS    int64            `json:"uptime_ms"`
}

// BatchStats is the /v1/stats view of the batch scheduler and the
// cost-based admission control. All sources are atomics or
// mutex-guarded snapshots — /v1/stats is served concurrently with
// allocates, so every counter read here must be synchronized with its
// writer.
type BatchStats struct {
	// Enabled reports whether a batch window is configured.
	Enabled bool `json:"enabled"`
	// WindowMS is the configured gather window in milliseconds.
	WindowMS float64 `json:"window_ms,omitempty"`
	// Batched counts coalesced sketch builds: gather windows that
	// reached their single dominating build.
	Batched int64 `json:"batched"`
	// CoalescedRequests counts requests beyond each batch's first that
	// were answered from a shared build instead of building their own
	// sketch.
	CoalescedRequests int64 `json:"coalesced_requests"`
	// SketchExtends counts batched builds served by extending a resident
	// near-dominating sketch (a delta-build) instead of cold-building;
	// RRSetsAppended counts the RR sets those extensions appended.
	SketchExtends  int64 `json:"sketch_extends"`
	RRSetsAppended int64 `json:"rr_sets_appended"`
	// AdmissionRejects counts requests refused with 429 because their
	// predicted sketch cost exceeded the admission budget.
	AdmissionRejects int64 `json:"admission_rejects"`
	// AdmissionMaxBytes is the configured admission budget (0 = off).
	AdmissionMaxBytes int64 `json:"admission_max_bytes,omitempty"`
	// Queue-with-deadline admission counters: requests that took a queue
	// slot instead of an immediate 429, how many of those were admitted
	// by a later re-check, and how many timed out into the 429 they were
	// originally spared.
	AdmissionQueued        int64 `json:"admission_queued"`
	AdmissionQueueAdmitted int64 `json:"admission_queue_admitted"`
	AdmissionQueueTimeouts int64 `json:"admission_queue_timeouts"`
	// EstimatesCoalesced counts estimate requests served from another
	// identical in-flight request's Monte-Carlo run.
	EstimatesCoalesced int64 `json:"estimates_coalesced"`
	// CostRatio and CostSamples describe the cost-model calibration:
	// the learned observed/predicted ratio and how many completed
	// builds informed it.
	CostRatio   float64 `json:"cost_ratio"`
	CostSamples int     `json:"cost_samples"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() StatsResponse {
	out := StatsResponse{
		Node:        s.nodeID,
		Graphs:      s.registry.Len(),
		SketchCache: s.cache.Stats(),
		Jobs:        s.jobs.CountByState(),
		Workers:     s.pool.Workers(),
		BusyWorkers: s.pool.Busy(),
		QueueDepth:  s.pool.QueueDepth(),
		QueueCap:    s.pool.QueueCap(),
		UptimeMS:    time.Since(s.start).Milliseconds(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		out.DiskTier = &ds
	}
	out.Batch = BatchStats{
		Enabled:                s.batcher != nil,
		SketchExtends:          s.sketchExtends.Load(),
		RRSetsAppended:         s.rrSetsAppended.Load(),
		AdmissionRejects:       s.admissionRejects.Load(),
		AdmissionMaxBytes:      s.admissionBytes,
		AdmissionQueued:        s.admissionQueued.Load(),
		AdmissionQueueAdmitted: s.admissionQueueAdmitted.Load(),
		AdmissionQueueTimeouts: s.admissionQueueTimeouts.Load(),
		EstimatesCoalesced:     s.estimatesCoalesced.Load(),
	}
	out.Sweeps = SweepStats{
		CellsDone:     s.sweepCellsDone.Load(),
		CellsFailed:   s.sweepCellsFailed.Load(),
		CellsCanceled: s.sweepCellsCanceled.Load(),
	}
	if s.batcher != nil {
		bs := s.batcher.Stats()
		out.Batch.WindowMS = float64(s.batchWindow) / float64(time.Millisecond)
		out.Batch.Batched = bs.Batches
		out.Batch.CoalescedRequests = bs.Coalesced
	}
	out.Batch.CostRatio, out.Batch.CostSamples = s.costModels.Snapshot()
	return out
}

// HealthzResponse is the body of GET /v1/healthz: the lightweight
// liveness probe the cluster router polls. Node echoes the backend's
// -node id so the router can detect a miswired topology (probing b1 at
// b0's address) instead of silently routing jobs to the wrong shard.
type HealthzResponse struct {
	Status   string `json:"status"`
	Node     string `json:"node,omitempty"`
	Graphs   int    `json:"graphs"`
	UptimeMS int64  `json:"uptime_ms"`
}

// Healthz snapshots the liveness view.
func (s *Service) Healthz() HealthzResponse {
	return HealthzResponse{
		Status:   "ok",
		Node:     s.nodeID,
		Graphs:   s.registry.Len(),
		UptimeMS: time.Since(s.start).Milliseconds(),
	}
}

// ExportSketches streams the graph's completed in-memory sketches as a
// sketch-stream container (store.WriteSketchStreamEntry frames) — the
// payload one backend ships another so rebalancing a graph does not
// discard its warm-sketch work. Disk-tier spills are not exported: their
// cache keys are stored hashed, and anything recently used is resident
// in memory anyway. It returns how many sketches were written.
func (s *Service) ExportSketches(graphID string, w io.Writer) (int, error) {
	if _, ok := s.registry.Get(graphID); !ok {
		return 0, fmt.Errorf("unknown graph %q", graphID)
	}
	entries := s.cache.CompletedForGraph(graphID)
	for i, e := range entries {
		if err := store.WriteSketchStreamEntry(w, e.Key, e.Sketch); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}

// ImportSketches reads a sketch-stream container into the graph's cache
// (and, with a data dir, the disk tier), so this backend starts warm for
// a graph it just received. Entries keyed for a different graph are
// rejected — a misrouted stream must not poison the cache — and entries
// whose key is already resident are skipped, not replaced.
func (s *Service) ImportSketches(graphID string, r io.Reader) (imported, skipped int, err error) {
	entry, ok := s.registry.Get(graphID)
	if !ok {
		return 0, 0, fmt.Errorf("unknown graph %q", graphID)
	}
	prefix := graphID + "|"
	_, err = store.ReadSketchStream(r, entry.Graph, func(key string, sketch any) error {
		if !strings.HasPrefix(key, prefix) {
			return fmt.Errorf("sketch key %q does not belong to graph %q", key, graphID)
		}
		if !s.cache.Put(key, sketch) {
			skipped++
			return nil
		}
		if s.disk != nil {
			_ = s.disk.SaveSketch(graphID, key, sketch) // best-effort, like local builds
		}
		imported++
		return nil
	})
	if err != nil {
		return imported, skipped, err
	}
	// Mirror sketchForPlan's delete race guard: if the graph vanished
	// while the stream was importing, sweep what we just inserted.
	if _, ok := s.registry.Get(graphID); !ok {
		s.cache.InvalidateGraph(graphID)
		if s.disk != nil {
			s.disk.DeleteGraph(graphID)
		}
	}
	return imported, skipped, nil
}

// allocatePlan is a validated AllocateRequest resolved to its problem
// instance, registry planner, and options.
type allocatePlan struct {
	prob    *core.Problem
	planner core.Planner
	meta    core.Meta
	opts    core.Options
}

// validateAllocate resolves the parts of an AllocateRequest that can be
// rejected synchronously (unknown graph/algo/config/cascade, budget
// mismatch), so bad requests fail with 400 instead of a failed job. The
// algorithm name resolves through the core planner registry — the same
// dispatch the job itself uses, so the two cannot disagree.
func (s *Service) validateAllocate(req *AllocateRequest) (*allocatePlan, error) {
	entry, ok := s.registry.Get(req.GraphID)
	if !ok {
		return nil, fmt.Errorf("unknown graph %q", req.GraphID)
	}
	if len(req.Budgets) == 0 {
		return nil, fmt.Errorf("budgets required")
	}
	planner, meta, err := core.Lookup(req.Algo)
	if err != nil {
		return nil, err
	}
	cascade, err := ParseCascade(req.Cascade)
	if err != nil {
		return nil, err
	}
	if err := checkWorkload(len(req.Budgets), req.Items, req.Runs, req.Workers); err != nil {
		return nil, err
	}
	if req.Eps != 0 && req.Eps < MinEps {
		return nil, fmt.Errorf("eps %g below the minimum of %g (omit or 0 for the default)", req.Eps, MinEps)
	}
	if req.Ell < 0 || req.Ell > MaxEll {
		return nil, fmt.Errorf("ell %g outside (0, %g] (omit or 0 for the default)", req.Ell, MaxEll)
	}
	model, err := BuildModel(req.Config, req.Items, len(req.Budgets), seedOf(req.Seed))
	if err != nil {
		return nil, err
	}
	prob, err := core.NewProblem(entry.Graph, model, req.Budgets)
	if err != nil {
		return nil, err
	}
	if req.Runs > 0 {
		// The inline welfare estimate walks every (seed, item) pair per
		// run; cap the pair count like the estimate endpoint does.
		pairs := 0
		for _, b := range req.Budgets {
			pairs += min(b, entry.Graph.N())
			if pairs > MaxSeedPairs {
				return nil, fmt.Errorf("budgets yield over %d seed pairs; set runs=0 or shrink budgets", MaxSeedPairs)
			}
		}
	}
	return &allocatePlan{
		prob:    prob,
		planner: planner,
		meta:    meta,
		opts:    core.Options{Eps: req.Eps, Ell: req.Ell, Cascade: cascade, SketchWorkers: s.sketchWorkers},
	}, nil
}

// checkWorkload rejects parameters that could exhaust the host: item
// counts blow up the 2^k utility table, and runs/workers directly size
// the Monte-Carlo estimator's work and goroutine count.
func checkWorkload(items, explicitItems, runs, workers int) error {
	if explicitItems > items {
		items = explicitItems
	}
	if items > MaxItems {
		return fmt.Errorf("%d items exceeds the limit of %d", items, MaxItems)
	}
	if runs > MaxRuns {
		return fmt.Errorf("%d runs exceeds the limit of %d", runs, MaxRuns)
	}
	if workers > MaxEstimateWorkers {
		return fmt.Errorf("%d estimate workers exceeds the limit of %d", workers, MaxEstimateWorkers)
	}
	return nil
}

func seedOf(s uint64) uint64 {
	if s == 0 {
		return 1
	}
	return s
}

// resolveEpsEll applies the paper's approximation-parameter defaults
// (ε = 0.5, ℓ = 1) to unset request values. This is the single place
// the service-wide defaults live — the allocate/warm paths and
// admission pricing all resolve through it, so admission cannot price
// one sketch while the build keys another.
func resolveEpsEll(eps, ell float64) (float64, float64) {
	if eps <= 0 {
		eps = 0.5
	}
	if ell <= 0 {
		ell = 1
	}
	return eps, ell
}

// DefaultEpsEll exposes the service-wide approximation-parameter
// defaults to other tiers — the cluster router's pre-admission pricing
// must resolve ε/ℓ exactly the way backend admission will, or the two
// would price different sketches.
func DefaultEpsEll(eps, ell float64) (float64, float64) { return resolveEpsEll(eps, ell) }

// Allocate synchronously solves one allocation request with no
// cancellation or progress reporting (the warm-path benchmarks and the
// tests use this).
func (s *Service) Allocate(req *AllocateRequest) (*AllocateResult, error) {
	return s.AllocateCtx(context.Background(), req, nil)
}

// mergedSketch is one mergedIdx record: the canonical budget vector a
// batch build was sized for and the cache key it lives under.
type mergedSketch struct {
	budgets []int
	key     string
}

// maxMergedRecords bounds mergedIdx: group keys are request-controlled
// (ε, ℓ, cascade sweeps mint fresh ones), and unlike the sketch cache
// nothing else evicts these records, so without a cap the index would
// grow for the life of a graph.
const maxMergedRecords = 512

// recordMerged notes the group's latest batch-built sketch. Past the
// bound an arbitrary record is dropped — records are an advisory fast
// path, so losing one only costs a rebuild the cache may still absorb.
func (s *Service) recordMerged(groupKey string, budgets []int, key string) {
	s.mergedMu.Lock()
	if _, exists := s.mergedIdx[groupKey]; !exists && len(s.mergedIdx) >= maxMergedRecords {
		for k := range s.mergedIdx {
			delete(s.mergedIdx, k)
			break
		}
	}
	s.mergedIdx[groupKey] = mergedSketch{budgets: budgets, key: key}
	s.mergedMu.Unlock()
}

// lookupMerged returns the group's latest batch-built sketch record.
func (s *Service) lookupMerged(groupKey string) (mergedSketch, bool) {
	s.mergedMu.Lock()
	defer s.mergedMu.Unlock()
	rec, ok := s.mergedIdx[groupKey]
	return rec, ok
}

// dropMergedForGraph forgets a deleted graph's merged-sketch records
// (group keys start with "<graphID>|", like cache keys) so the index
// does not grow with long-dead graphs.
func (s *Service) dropMergedForGraph(graphID string) {
	if s.mergedIdx == nil {
		return
	}
	prefix := graphID + "|"
	s.mergedMu.Lock()
	for k := range s.mergedIdx {
		if strings.HasPrefix(k, prefix) {
			delete(s.mergedIdx, k)
		}
	}
	s.mergedMu.Unlock()
}

// degenerateBudgets reports whether canonical sketch budgets hit the
// PRIMA/IMM builders' whole-graph shortcut (top budget >= n). Such a
// "build" samples nothing and returns the all-nodes identity ordering,
// which is only prefix-preserving for the full budget — so a degenerate
// request must never coalesce with sampled builds: merging would drag
// every group member's result onto the unsampled ordering. The batched
// path routes these requests directly instead; they cost nothing to
// build, so there is nothing to coalesce anyway.
func degenerateBudgets(budgets []int, n int) bool {
	for _, b := range budgets {
		if b >= n {
			return true
		}
	}
	return false
}

// sweepIfDeleted re-checks a graph's residency after sketch work
// completed: the graph may have been deleted while the sketch was
// building — after the delete's sweeps already ran, so the memory entry
// and a just-written spill would otherwise outlive the deletion (the
// spill permanently: nothing else sweeps a deleted graph's sketch
// files). Sweeps both tiers when the graph is gone.
func (s *Service) sweepIfDeleted(graphID string) {
	if _, ok := s.registry.Get(graphID); !ok {
		s.cache.InvalidateGraph(graphID)
		s.dropMergedForGraph(graphID)
		if s.disk != nil {
			s.disk.DeleteGraph(graphID)
		}
	}
}

// lookupResident resolves key through the in-memory tier without
// triggering a build on a miss, retrying when an in-flight builder's
// own cancellation (not ctx's) poisoned the wait. found reports a
// successful hit; a miss is (nil, false, nil) and a real error —
// including ctx's own cancellation — is (nil, false, err).
func (s *Service) lookupResident(ctx context.Context, graphID, key string) (sketch any, found bool, err error) {
	defer telemetry.StartSpan(ctx, "cache_lookup")()
	for {
		sk, ok, err := s.cache.LookupCtx(ctx, key)
		if !ok {
			return nil, false, nil
		}
		if err == nil {
			s.sweepIfDeleted(graphID)
			return sk, true, nil
		}
		if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue // the in-flight builder died, not us: re-resolve
		}
		return nil, false, err
	}
}

// buildThroughTiers resolves key through the tiered cache: the
// in-memory tier first (with singleflight semantics), then — inside the
// build callback, so concurrent requesters share one disk read exactly
// like they share one build — the disk tier, and only then build, whose
// result is spilled back to disk. hit reports whether any tier avoided
// a rebuild.
func (s *Service) buildThroughTiers(ctx context.Context, graphID, key string, g *graph.Graph, build func(ctx context.Context) (any, error)) (sketch any, hit bool, err error) {
	var diskHit bool
	for {
		var memHit bool
		// The lookup span covers the in-memory tier only: it is ended
		// (idempotently) the moment the build callback starts, so a miss
		// that turns into a disk load or a fresh build does not inflate
		// the cache-lookup timing with build work.
		endLookup := telemetry.StartSpan(ctx, "cache_lookup")
		sketch, memHit, err = s.cache.GetOrBuildCtx(ctx, key, func() (any, error) {
			endLookup()
			if s.disk != nil {
				// The TTL bounds spill age too: a spill left by cost
				// eviction or a restart must not resurrect a sketch older
				// than the TTL promises.
				endLoad := telemetry.StartSpan(ctx, "disk_load")
				sk := s.disk.LoadSketch(graphID, key, g, s.cacheTTL)
				endLoad()
				if sk != nil {
					diskHit = true
					return sk, nil
				}
			}
			sk, err := build(ctx)
			if err == nil && s.disk != nil {
				endSpill := telemetry.StartSpan(ctx, "sketch_spill")
				_ = s.disk.SaveSketch(graphID, key, sk) // best-effort; failure only costs warmth
				endSpill()
			}
			return sk, err
		})
		endLookup()
		if err == nil {
			s.sweepIfDeleted(graphID)
			return sketch, memHit || diskHit, nil
		}
		// A waiter inherits the *builder's* cancellation (or deadline
		// expiry) through the shared singleflight entry. If this
		// request's own context is still live, the dead entry has
		// already been evicted — retry, becoming the new builder,
		// instead of failing a job nobody canceled.
		if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return nil, false, err
	}
}

// observeBuildCost feeds a completed fresh build into the cost-model
// calibration: predicted bytes (the planner's a-priori estimator on the
// budgets actually built) against the finished sketch's real resident
// cost, keyed by the graph it built on (plus the global fallback). Disk
// loads and cache hits are not observed — they carry no new information
// about the estimator's bias. The build's resident bytes also land on
// the request's resource accounting, and the recalibration itself is
// journaled — admission verdicts change when the model moves, and the
// journal is where an operator reconstructs why.
func (s *Service) observeBuildCost(ctx context.Context, graphID string, plan *allocatePlan, eps, ell float64, budgets []int, sketch any) {
	cost := store.SketchCost(sketch)
	telemetry.AddResource(ctx, telemetry.ResSketchBytesBuilt, cost)
	if plan.meta.CostEstimator == nil {
		return
	}
	raw := plan.meta.CostEstimator(plan.prob.G.N(), plan.prob.G.M(), eps, ell, budgets)
	s.costModels.Observe(graphID, raw, cost)
	s.flight.Record(journal.Event{
		Type:    journal.AdmissionRecalibrate,
		Graph:   graphID,
		TraceID: telemetry.FromContext(ctx).ID(),
		Bytes:   cost,
		Count:   raw,
	})
}

// sketchForPlan resolves a sketch-capable plan's sketch. The exact
// budget key is consulted first (memory tier, cancelable in-flight
// waits); on a miss the request either builds its own sketch through
// the tiered cache (batching disabled) or enters the batch scheduler,
// which holds it for the gather window, merges concurrent requests'
// budgets into one dominating vector, and answers everyone from a
// single build — sized for the merged budgets and cached under the
// merged key, so the disk tier and singleflight semantics apply to it
// unchanged. hit reports whether any tier or a shared batch build
// avoided fresh sketch work for this caller; it is what AllocateResult
// exposes as SketchCached and what the restart-warm smoke asserts on.
func (s *Service) sketchForPlan(ctx context.Context, graphID string, sp core.SketchPlanner, plan *allocatePlan, eps, ell float64, seed uint64) (sketch any, hit bool, err error) {
	family, cascade := plan.meta.SketchFamily, int(plan.opts.Cascade)
	key := SketchKey(graphID, family, cascade, eps, ell, sp.SketchBudgets(plan.prob))
	buildOpts := plan.opts
	buildOpts.Eps, buildOpts.Ell = eps, ell

	bp, batchable := sp.(core.BatchSketchPlanner)
	if s.batcher == nil || !batchable || degenerateBudgets(sp.SketchBudgets(plan.prob), plan.prob.G.N()) {
		return s.buildThroughTiers(ctx, graphID, key, plan.prob.G, func(bctx context.Context) (any, error) {
			sk, err := sp.BuildSketch(bctx, plan.prob, buildOpts, stats.NewRNG(seed))
			if err == nil {
				s.observeBuildCost(bctx, graphID, plan, eps, ell, plan.prob.Budgets, sk)
			}
			return sk, err
		})
	}

	// Batched path. Fast path first: an exact-budget sketch already
	// resident (or in flight) skips the gather window entirely.
	if sk, found, err := s.lookupResident(ctx, graphID, key); found || err != nil {
		return sk, found, err
	}

	// Group by everything that pins the sketch distribution except the
	// budgets; the scheduler merges those. The build callback depends
	// only on group-key material plus the merged budgets it is handed,
	// so it is safe for the scheduler to run the first member's closure
	// on behalf of the whole group.
	groupKey := SketchKey(graphID, family, cascade, eps, ell, nil)

	// Second fast path: a previous batch's sketch dominating this
	// request may still be resident under its merged key — serve from
	// it instead of cold-building the exact-budget sketch the merged
	// one already subsumes. An evicted or expired record falls through
	// to the scheduler.
	if rec, ok := s.lookupMerged(groupKey); ok && batch.Dominates(bp.MergeBudgets, rec.budgets, sp.SketchBudgets(plan.prob)) {
		if sk, found, err := s.lookupResident(ctx, graphID, rec.key); found || err != nil {
			return sk, found, err
		}
	}

	for {
		// The gather span covers the batch wait: it is ended
		// (idempotently) when the group's build actually starts, so the
		// submitting request's trace separates "waited for the window"
		// from the build stages recorded inside.
		endGather := telemetry.StartSpan(ctx, "batch_gather")
		sk, cacheHit, shared, err := s.batcher.Submit(ctx, groupKey, sp.SketchBudgets(plan.prob), bp.MergeBudgets,
			func(bctx context.Context, merged []int) (any, bool, error) {
				endGather()
				// The scheduler runs the group build on its window timer's
				// goroutine with a detached context; re-attach the
				// submitting request's trace so build-stage spans land on
				// it rather than vanishing.
				bctx = telemetry.NewContext(bctx, telemetry.FromContext(ctx))
				// Delta-build seam: when the group's previous batch-built
				// sketch is still resident but does not dominate the new
				// merged vector (a *near*-dominating sketch — a full
				// dominance hit was already served before Submit), extend
				// it to the union of the two vectors instead of
				// cold-building. Peek never waits: blocking here on the
				// old key's entry could deadlock the build callback.
				target := merged
				var baseSketch any
				var baseBudgets []int
				ep, canExtend := bp.(core.ExtendSketchPlanner)
				if canExtend {
					if rec, ok := s.lookupMerged(groupKey); ok {
						if base, resident := s.cache.Peek(rec.key); resident && numRRSets(base) > 0 {
							baseSketch, baseBudgets = base, rec.budgets
							target = bp.MergeBudgets(rec.budgets, merged)
						}
					}
				}
				mergedKey := SketchKey(graphID, family, cascade, eps, ell, target)
				sk, hit, err := s.buildThroughTiers(bctx, graphID, mergedKey, plan.prob.G, func(bctx context.Context) (any, error) {
					if baseSketch != nil {
						esk, eerr := ep.ExtendSketch(bctx, plan.prob, baseSketch, baseBudgets, target, buildOpts, stats.NewRNG(seed))
						if eerr == nil {
							s.sketchExtends.Add(1)
							s.rrSetsAppended.Add(int64(numRRSets(esk) - numRRSets(baseSketch)))
							s.observeBuildCost(bctx, graphID, plan, eps, ell, target, esk)
							return esk, nil
						}
						if bctx.Err() != nil {
							return nil, eerr
						}
						// Not extendable (degenerate family state, shape
						// mismatch): fall through to the cold build.
					}
					sk, err := bp.BuildSketchForBudgets(bctx, plan.prob, target, buildOpts, stats.NewRNG(seed))
					if err == nil {
						s.observeBuildCost(bctx, graphID, plan, eps, ell, target, sk)
					}
					return sk, err
				})
				if err == nil {
					s.recordMerged(groupKey, target, mergedKey)
				}
				return sk, hit, err
			})
		endGather()
		if err == nil {
			s.sweepIfDeleted(graphID)
			return sk, cacheHit || shared, nil
		}
		// Like buildThroughTiers' waiters, a batch member can inherit a
		// cancellation that was never its own — e.g. it joined a group
		// whose other waiters all detached mid-build. If this request's
		// context is still live, re-enter the scheduler (leading a fresh
		// group if need be) instead of failing a job nobody canceled.
		if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return nil, false, err
	}
}

// AllocateCtx solves one allocation request under ctx, reporting
// progress through report (which may be nil). Dispatch goes through the
// core planner registry; for planners with the SketchPlanner capability
// sketch resolution goes through the tiered cache (memory, then disk,
// then build — see sketchForPlan), the rest run their Plan directly.
// Cancellation: ctx is threaded through sketch construction, cache
// waits, and the inline welfare estimate, so a canceled context aborts
// the request promptly with ctx.Err(). A canceled cache build caches
// nothing — concurrent waiters for the same sketch receive the error and
// the next request rebuilds.
func (s *Service) AllocateCtx(ctx context.Context, req *AllocateRequest, report progress.Func) (*AllocateResult, error) {
	startT := time.Now()
	// A direct call (no HTTP layer, e.g. the benchmarks) carries no
	// trace; mint an owned one so span timings and histograms cover
	// this path too. The owner observes its own histograms at return —
	// HTTP-minted traces are observed by finishJob instead.
	tr := telemetry.FromContext(ctx)
	ownedTrace := tr == nil && s.telemetryOn
	if ownedTrace {
		tr = telemetry.NewTrace(telemetry.NewTraceID(), true)
		ctx = telemetry.NewContext(ctx, tr)
	}
	plan, err := s.validateAllocate(req)
	if err != nil {
		return nil, err
	}
	tr.SetFamily(planFamily(plan.meta))
	plan.opts.Progress = report
	prob, opts := plan.prob, plan.opts
	seed := seedOf(req.Seed)
	eps, ell := resolveEpsEll(opts.Eps, opts.Ell)

	var (
		res core.Result
		hit bool
	)
	if sp, ok := plan.planner.(core.SketchPlanner); ok {
		v, h, err := s.sketchForPlan(ctx, req.GraphID, sp, plan, eps, ell, seed)
		if err != nil {
			return nil, err
		}
		hit = h
		countSketchOutcome(ctx, h)
		endSel := telemetry.StartSpan(ctx, "greedy_select")
		if pp, ok := sp.(core.ProgressiveSketchPlanner); ok && report != nil {
			res, err = pp.PlanFromSketchProgress(prob, v, report)
		} else {
			res, err = sp.PlanFromSketch(prob, v)
		}
		endSel()
		if err != nil {
			return nil, err
		}
	} else {
		res, err = plan.planner.Plan(ctx, prob, opts, stats.NewRNG(seed))
		if err != nil {
			return nil, err
		}
	}

	out := NewAllocateResult(plan.meta.Name, res)
	out.SketchCached = hit
	if req.Runs > 0 {
		endEst := telemetry.StartSpan(ctx, "estimate")
		est, err := uic.EstimateWelfareParallelCascadeCtx(ctx, prob.G, prob.Model, opts.Cascade, res.Alloc,
			stats.NewRNG(seed+1), req.Runs, req.Workers, report)
		endEst()
		if err != nil {
			return nil, err
		}
		out.Welfare = &WelfareDTO{Mean: est.Mean, StdErr: est.StdErr, Runs: est.Runs}
	}
	out.ElapsedMS = time.Since(startT).Milliseconds()
	if ownedTrace {
		s.observeTrace("allocate", tr, time.Since(startT))
	}
	return out, nil
}

// numRRSets reads a sketch's final-collection size through the shared
// NumRRSets seam (0 for degenerate sketches or foreign types).
func numRRSets(sketch any) int {
	if sized, ok := sketch.(interface{ NumRRSets() int }); ok {
		return sized.NumRRSets()
	}
	return 0
}

// countSketchOutcome lands a request's sketch resolution on its
// resource accounting: one cache hit when any tier (or a shared batch
// build) avoided fresh sketch work, one miss otherwise. The acceptance
// check for warm failover reads exactly this pair next to
// rr_sets_grown: a warm serve is hits=1, misses=0, rr_sets_grown=0.
func countSketchOutcome(ctx context.Context, hit bool) {
	if hit {
		telemetry.AddResource(ctx, telemetry.ResCacheHits, 1)
	} else {
		telemetry.AddResource(ctx, telemetry.ResCacheMisses, 1)
	}
}

// planFamily labels a plan's traces and stage histograms: the sketch
// family when the planner has one, the algorithm name otherwise.
func planFamily(meta core.Meta) string {
	if meta.SketchFamily != "" {
		return meta.SketchFamily
	}
	return meta.Name
}

// validateWarm resolves a warm request against the same checks as an
// allocation, additionally requiring a sketch-capable algorithm —
// warming a planner with no reusable sketch would build nothing a later
// request could reuse.
func (s *Service) validateWarm(graphID string, req *WarmRequest) (*allocatePlan, core.SketchPlanner, error) {
	plan, err := s.validateAllocate(&AllocateRequest{
		GraphID: graphID,
		Algo:    req.Algo,
		Config:  req.Config,
		Items:   req.Items,
		Budgets: req.Budgets,
		Eps:     req.Eps,
		Ell:     req.Ell,
		Cascade: req.Cascade,
		Seed:    req.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	sp, ok := plan.planner.(core.SketchPlanner)
	if !ok {
		return nil, nil, fmt.Errorf("algorithm %q has no cacheable sketch to warm", plan.meta.Name)
	}
	return plan, sp, nil
}

// WarmCtx prebuilds the sketch an equivalent allocate request would
// need, through the same tiered cache path, so a later allocation — or a
// daemon restart followed by one, since completed builds spill to the
// disk tier — starts warm. It runs as an ordinary cancelable job.
func (s *Service) WarmCtx(ctx context.Context, graphID string, req *WarmRequest, report progress.Func) (*WarmResult, error) {
	startT := time.Now()
	plan, sp, err := s.validateWarm(graphID, req)
	if err != nil {
		return nil, err
	}
	telemetry.FromContext(ctx).SetFamily(planFamily(plan.meta))
	plan.opts.Progress = report
	eps, ell := resolveEpsEll(plan.opts.Eps, plan.opts.Ell)
	sketch, hit, err := s.sketchForPlan(ctx, graphID, sp, plan, eps, ell, seedOf(req.Seed))
	if err != nil {
		return nil, err
	}
	countSketchOutcome(ctx, hit)
	out := &WarmResult{
		Algorithm:    plan.meta.Name,
		SketchFamily: plan.meta.SketchFamily,
		AlreadyWarm:  hit,
		ElapsedMS:    time.Since(startT).Milliseconds(),
	}
	if sized, ok := sketch.(interface{ NumRRSets() int }); ok {
		out.NumRRSets = sized.NumRRSets()
	}
	return out, nil
}

// validateEstimate resolves the parts of an EstimateRequest that can be
// rejected synchronously.
func (s *Service) validateEstimate(req *EstimateRequest) (*GraphEntry, *uic.Allocation, *utility.Model, error) {
	entry, ok := s.registry.Get(req.GraphID)
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown graph %q", req.GraphID)
	}
	if len(req.Allocation.Seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("allocation required")
	}
	if _, err := ParseCascade(req.Cascade); err != nil {
		return nil, nil, nil, err
	}
	if err := checkWorkload(len(req.Allocation.Seeds), req.Items, req.Runs, req.Workers); err != nil {
		return nil, nil, nil, err
	}
	// Range-check the raw wire values: converting first would let ids
	// beyond int32 silently truncate into valid node ids. Also bound the
	// total pair count — every Monte-Carlo run walks every pair.
	pairs := 0
	for _, seeds := range req.Allocation.Seeds {
		pairs += len(seeds)
		if pairs > MaxSeedPairs {
			return nil, nil, nil, fmt.Errorf("allocation exceeds %d seed pairs", MaxSeedPairs)
		}
		for _, v := range seeds {
			if v < 0 || v >= int64(entry.Graph.N()) {
				return nil, nil, nil, fmt.Errorf("seed node %d out of range [0, %d)", v, entry.Graph.N())
			}
		}
	}
	alloc := req.Allocation.Allocation()
	model, err := BuildModel(req.Config, req.Items, alloc.K(), seedOf(req.Seed))
	if err != nil {
		return nil, nil, nil, err
	}
	if model.K() != alloc.K() {
		return nil, nil, nil, fmt.Errorf("allocation has %d items, configuration %q has %d",
			alloc.K(), req.Config, model.K())
	}
	return entry, alloc, model, nil
}

// Estimate synchronously runs one estimation request with no
// cancellation or progress reporting.
func (s *Service) Estimate(req *EstimateRequest) (*EstimateResult, error) {
	return s.EstimateCtx(context.Background(), req, nil)
}

// EstimateCtx runs one estimation request under ctx, reporting progress
// through report (which may be nil); a canceled context aborts the
// Monte-Carlo loop promptly with ctx.Err(). Identical concurrent
// requests are coalesced onto one run (see estimateFlight) — sweep
// cells issue estimate storms, and the seeded estimator makes sharing
// invisible apart from the saved work.
func (s *Service) EstimateCtx(ctx context.Context, req *EstimateRequest, report progress.Func) (*EstimateResult, error) {
	return s.estimateCoalesced(ctx, req, report)
}

// estimateDirect is the uncoalesced estimate path (the flight group's
// leader runs here).
func (s *Service) estimateDirect(ctx context.Context, req *EstimateRequest, report progress.Func) (*EstimateResult, error) {
	startT := time.Now()
	entry, alloc, model, err := s.validateEstimate(req)
	if err != nil {
		return nil, err
	}
	cascade, _ := ParseCascade(req.Cascade)
	runs := req.Runs
	if runs <= 0 {
		runs = 10000
	}
	endEst := telemetry.StartSpan(ctx, "estimate")
	est, err := uic.EstimateWelfareParallelCascadeCtx(ctx, entry.Graph, model, cascade, alloc,
		stats.NewRNG(seedOf(req.Seed)), runs, req.Workers, report)
	endEst()
	if err != nil {
		return nil, err
	}
	return &EstimateResult{
		Welfare:   WelfareDTO{Mean: est.Mean, StdErr: est.StdErr, Runs: est.Runs},
		ElapsedMS: time.Since(startT).Milliseconds(),
	}, nil
}
