package prima

import (
	"context"
	"math"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/stats"
)

// testFamilies spans three structurally distinct graph families — the
// equivalence properties must hold on all of them, not just ER graphs.
func testFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"barabasi-albert": graph.BarabasiAlbert(300, 3, stats.NewRNG(101)).WeightedCascade(),
		"watts-strogatz":  graph.WattsStrogatz(300, 6, 0.2, stats.NewRNG(102)).WeightedCascade(),
		"power-law":       graph.PowerLawGraph(300, 2.2, 5, stats.NewRNG(103)).WeightedCascade(),
	}
}

// evalSpread estimates n·F(S) for a seed set on an independent
// evaluation collection — one yardstick for comparing selections built
// from different sketches.
func evalSpread(g *graph.Graph, seeds []graph.NodeID, seed uint64) float64 {
	eval := rrset.NewCollection(g)
	eval.Grow(20000, stats.NewRNG(seed))
	return float64(g.N()) * eval.FractionCovered(seeds)
}

// TestParallelBuildWelfareMatchesSerial: a sketch built with parallel
// RR-set growth must yield a selection whose estimated spread is within
// the sampling tolerance of the serial build's, on every graph family.
func TestParallelBuildWelfareMatchesSerial(t *testing.T) {
	budgets := []int{10, 6, 3}
	opts := Options{Eps: 0.4, Ell: 1}
	for name, g := range testFamilies(t) {
		serial, err := BuildSketchCtx(context.Background(), g, budgets, opts, stats.NewRNG(7))
		if err != nil {
			t.Fatalf("%s: serial build: %v", name, err)
		}
		popts := opts
		popts.Workers = 4
		par, err := BuildSketchCtx(context.Background(), g, budgets, popts, stats.NewRNG(8))
		if err != nil {
			t.Fatalf("%s: parallel build: %v", name, err)
		}
		sres, pres := serial.Select(), par.Select()
		if len(sres.Seeds) != len(pres.Seeds) {
			t.Fatalf("%s: selection sizes differ: %d vs %d", name, len(sres.Seeds), len(pres.Seeds))
		}
		ss := evalSpread(g, sres.Seeds, 901)
		ps := evalSpread(g, pres.Seeds, 901)
		if math.Abs(ss-ps) > 0.15*math.Max(ss, ps)+1 {
			t.Errorf("%s: serial spread %.2f vs parallel %.2f beyond tolerance", name, ss, ps)
		}
	}
}

// TestParallelBuildDeterministic: the whole PRIMA build is reproducible
// for a fixed (seed, workers) pair — identical final selection.
func TestParallelBuildDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(250, 3, stats.NewRNG(104)).WeightedCascade()
	opts := Options{Workers: 4}
	a, err := BuildSketchCtx(context.Background(), g, []int{8, 4}, opts, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSketchCtx(context.Background(), g, []int{8, 4}, opts, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Select(), b.Select()
	if a.NumRRSets() != b.NumRRSets() {
		t.Fatalf("RR-set counts differ: %d vs %d", a.NumRRSets(), b.NumRRSets())
	}
	for i := range ra.Seeds {
		if ra.Seeds[i] != rb.Seeds[i] {
			t.Fatalf("nondeterministic parallel build: %v vs %v", ra.Seeds, rb.Seeds)
		}
	}
}

// TestExtendSketchMatchesColdBuild is satellite (d): extending a
// resident sketch to a larger budget vector must behave like a cold
// build at the extended parameters — same selection length, at least
// the cold build's RR-set count (the λ*-ratio sizing is conservative),
// and spread within the sampling tolerance.
func TestExtendSketchMatchesColdBuild(t *testing.T) {
	oldBudgets := []int{6, 3}
	newBudgets := []int{12, 6, 3}
	opts := Options{Eps: 0.4, Ell: 1, Workers: 2}
	for name, g := range testFamilies(t) {
		base, err := BuildSketchCtx(context.Background(), g, oldBudgets, opts, stats.NewRNG(11))
		if err != nil {
			t.Fatalf("%s: base build: %v", name, err)
		}
		baseLen := base.NumRRSets()

		ext, err := ExtendSketchCtx(context.Background(), g, base, oldBudgets, opts, newBudgets, opts, stats.NewRNG(12))
		if err != nil {
			t.Fatalf("%s: extend: %v", name, err)
		}
		cold, err := BuildSketchCtx(context.Background(), g, newBudgets, opts, stats.NewRNG(13))
		if err != nil {
			t.Fatalf("%s: cold build: %v", name, err)
		}

		// The original sketch must be untouched by the extension.
		if base.NumRRSets() != baseLen {
			t.Fatalf("%s: extension mutated the base sketch: %d sets, had %d", name, base.NumRRSets(), baseLen)
		}
		if ext.NumRRSets() < baseLen {
			t.Fatalf("%s: extended sketch shrank: %d < base %d", name, ext.NumRRSets(), baseLen)
		}
		if ext.MaxBudget != 12 {
			t.Fatalf("%s: extended MaxBudget = %d, want 12", name, ext.MaxBudget)
		}

		eres, cres := ext.Select(), cold.Select()
		if len(eres.Seeds) != len(cres.Seeds) {
			t.Fatalf("%s: selection sizes differ: extended %d vs cold %d", name, len(eres.Seeds), len(cres.Seeds))
		}
		es := evalSpread(g, eres.Seeds, 902)
		cs := evalSpread(g, cres.Seeds, 902)
		if math.Abs(es-cs) > 0.15*math.Max(es, cs)+1 {
			t.Errorf("%s: extended spread %.2f vs cold %.2f beyond tolerance", name, es, cs)
		}
	}
}

// TestExtendSketchAppendsFewerThanCold: the whole point of extension —
// the sets appended must be fewer than a cold build would sample.
func TestExtendSketchAppendsFewerThanCold(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, stats.NewRNG(105)).WeightedCascade()
	opts := Options{Workers: 2}
	base, err := BuildSketchCtx(context.Background(), g, []int{8, 4}, opts, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendSketchCtx(context.Background(), g, base, []int{8, 4}, opts, []int{14, 8, 4}, opts, stats.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	appended := ext.NumRRSets() - base.NumRRSets()
	if appended <= 0 {
		t.Fatalf("extension appended %d sets, want > 0", appended)
	}
	if appended >= ext.NumRRSets() {
		t.Fatalf("extension appended %d of %d sets — no cheaper than a cold build", appended, ext.NumRRSets())
	}
}

// TestExtendSketchNoGrowthShares: extending to an already-dominated
// budget vector must not sample at all — the returned sketch shares the
// original collection read-only.
func TestExtendSketchNoGrowthShares(t *testing.T) {
	g := graph.BarabasiAlbert(250, 3, stats.NewRNG(106)).WeightedCascade()
	opts := Options{}
	base, err := BuildSketchCtx(context.Background(), g, []int{10, 5}, opts, stats.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendSketchCtx(context.Background(), g, base, []int{10, 5}, opts, []int{5}, opts, stats.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Col != base.Col {
		t.Fatal("dominated extension should share the base collection")
	}
	if ext.MaxBudget != base.MaxBudget {
		t.Fatalf("MaxBudget = %d, want retained %d", ext.MaxBudget, base.MaxBudget)
	}
}

// TestExtendSketchRejections: degenerate sketches and loosened ε must
// refuse extension with ErrNotExtendable so callers fall back to a cold
// build.
func TestExtendSketchRejections(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, stats.NewRNG(107)).WeightedCascade()
	opts := Options{}
	rng := stats.NewRNG(41)

	if _, err := ExtendSketchCtx(context.Background(), g, nil, []int{3}, opts, []int{5}, opts, rng); err == nil {
		t.Fatal("nil sketch extended")
	}
	degen, err := BuildSketchCtx(context.Background(), g, []int{100}, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendSketchCtx(context.Background(), g, degen, []int{100}, opts, []int{100}, opts, rng); err == nil {
		t.Fatal("degenerate all-nodes sketch extended")
	}

	base, err := BuildSketchCtx(context.Background(), g, []int{5}, Options{Eps: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendSketchCtx(context.Background(), g, base, []int{5}, Options{Eps: 0.3}, []int{8}, Options{Eps: 0.5}, rng); err == nil {
		t.Fatal("loosened eps accepted")
	}
	// Tightening ε is growth, not rejection.
	tight, err := ExtendSketchCtx(context.Background(), g, base, []int{5}, Options{Eps: 0.3}, []int{5}, Options{Eps: 0.2}, rng)
	if err != nil {
		t.Fatalf("tightened eps rejected: %v", err)
	}
	if tight.NumRRSets() < base.NumRRSets() {
		t.Fatalf("tightened sketch smaller than base: %d < %d", tight.NumRRSets(), base.NumRRSets())
	}
}

// TestExtendSketchCancellation: a canceled extension must return the
// context error and leave the base sketch intact.
func TestExtendSketchCancellation(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, stats.NewRNG(108)).WeightedCascade()
	opts := Options{Workers: 4}
	base, err := BuildSketchCtx(context.Background(), g, []int{5}, opts, stats.NewRNG(51))
	if err != nil {
		t.Fatal(err)
	}
	baseLen := base.NumRRSets()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtendSketchCtx(ctx, g, base, []int{5}, opts, []int{40, 5}, opts, stats.NewRNG(52)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if base.NumRRSets() != baseLen {
		t.Fatalf("canceled extension mutated the base sketch: %d sets, had %d", base.NumRRSets(), baseLen)
	}
}
