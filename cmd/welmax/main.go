// Command welmax solves a WelMax instance: it loads or generates a social
// network, picks a utility configuration, runs one of the registered
// allocation algorithms, and reports the allocation and its estimated
// expected social welfare. Ctrl-C cancels a run cleanly mid-sketch.
//
// Examples:
//
//	welmax -network flixster -config config1 -budgets 50,50
//	welmax -graph edges.txt -directed -config real -budgets 30,30,20,10,10 -algo bundle-disj
//	welmax -network twitter -budgets 50,50 -eps 0.1 -progress
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	welfare "uicwelfare"
	"uicwelfare/internal/service"
	"uicwelfare/internal/store"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (\"u v [p]\" lines); overrides -network")
		directed   = flag.Bool("directed", true, "treat the edge-list file as directed")
		network    = flag.String("network", "flixster", "built-in network stand-in (flixster|douban-book|douban-movie|twitter|orkut)")
		scale      = flag.Float64("scale", 1.0, "network scale factor")
		configName = flag.String("config", "config1", "utility configuration (config1|config3|additive|cone|levelwise|real|real-smoothed)")
		items      = flag.Int("items", 5, "item count for additive/cone/levelwise configurations")
		budgetsStr = flag.String("budgets", "50,50", "comma-separated per-item seed budgets")
		algo       = flag.String("algo", welfare.DefaultAlgorithm,
			fmt.Sprintf("allocation algorithm (%s)", strings.Join(welfare.AlgorithmNames(), "|")))
		eps      = flag.Float64("eps", 0.5, "approximation parameter ε")
		ell      = flag.Float64("ell", 1.0, "confidence exponent ℓ")
		runs     = flag.Int("runs", 10000, "Monte-Carlo runs for the welfare estimate")
		seed     = flag.Uint64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print the full allocation")
		progress = flag.Bool("progress", false, "report sketch/estimation progress on stderr")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON (the welmaxd AllocateResult payload)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the context threaded through sketch
	// construction and estimation, so long runs stop promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	budgets, err := parseBudgets(*budgetsStr)
	if err != nil {
		fatal(err)
	}

	g, err := loadOrGenerate(*graphPath, *directed, *network, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("network: %v\n", g)
	}

	m, err := service.BuildModel(*configName, *items, len(budgets), *seed)
	if err != nil {
		fatal(err)
	}
	if len(budgets) != m.K() {
		fatal(fmt.Errorf("%d budgets for %d items", len(budgets), m.K()))
	}

	prob, err := welfare.NewProblem(g, m, budgets)
	if err != nil {
		fatal(err)
	}

	// Progress can fire every few hundred RR sets / Monte-Carlo runs;
	// throttle to phase completions plus a heartbeat so -progress stays
	// readable on large graphs.
	var progressFn func(welfare.Progress)
	if *progress {
		var last time.Time
		progressFn = func(p welfare.Progress) {
			if p.Done != p.Total && time.Since(last) < 500*time.Millisecond {
				return
			}
			last = time.Now()
			if p.Round > 0 {
				fmt.Fprintf(os.Stderr, "welmax: %s round %d: %d/%d\n", p.Stage, p.Round, p.Done, p.Total)
			} else {
				fmt.Fprintf(os.Stderr, "welmax: %s: %d/%d\n", p.Stage, p.Done, p.Total)
			}
		}
	}

	runOpts := []welfare.RunOption{
		welfare.WithAlgorithm(*algo),
		welfare.WithEps(*eps),
		welfare.WithEll(*ell),
		welfare.WithSeed(*seed),
	}
	if progressFn != nil {
		runOpts = append(runOpts, welfare.WithProgress(progressFn))
	}

	started := time.Now()
	res, err := welfare.Run(ctx, prob, runOpts...)
	if err != nil {
		fatal(err)
	}

	// Text mode reports the allocation as soon as it exists; the
	// Monte-Carlo estimate below can take a while on large graphs.
	if !*jsonOut {
		fmt.Printf("algorithm: %s (RR sets: %d, IMM invocations: %d)\n",
			res.Algorithm, res.NumRRSets, res.IMMInvocations)
		if *verbose {
			for i, seeds := range res.Alloc.Seeds {
				fmt.Printf("  item %d (budget %d): %v\n", i, budgets[i], seeds)
			}
		}
	}

	est, err := welfare.EstimateWelfareCtx(ctx, prob, res.Alloc, welfare.CascadeIC, welfare.NewRNG(*seed+1), *runs, 1, progressFn)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		// The same DTO welmaxd returns from an allocation job, so CLI and
		// daemon outputs are interchangeable.
		out := service.NewAllocateResult(res.Algorithm, res.Result)
		out.Welfare = &service.WelfareDTO{Mean: est.Mean, StdErr: est.StdErr, Runs: est.Runs}
		out.ElapsedMS = time.Since(started).Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("expected social welfare: %.2f ± %.2f (%d runs)\n", est.Mean, 1.96*est.StdErr, est.Runs)
}

func parseBudgets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 0 {
			return nil, fmt.Errorf("bad budget %q", p)
		}
		out = append(out, b)
	}
	return out, nil
}

func loadOrGenerate(path string, directed bool, network string, scale float64, seed uint64) (*welfare.Graph, error) {
	if path != "" {
		// Both formats load here: binary .wmg files (gengraph -format
		// binary, or a welmaxd data dir) keep their stored probabilities,
		// text edge lists get the weighted-cascade reset.
		g, binary, err := store.LoadGraphFile(path, !directed)
		if err != nil {
			return nil, err
		}
		if binary {
			return g, nil
		}
		return g.WeightedCascade(), nil
	}
	return welfare.GenerateNetworkE(network, scale, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "welmax:", err)
	os.Exit(1)
}
