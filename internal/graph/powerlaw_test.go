package graph

import (
	"math"
	"testing"

	"uicwelfare/internal/stats"
)

func TestPowerLawSequenceBounds(t *testing.T) {
	rng := stats.NewRNG(1)
	seq := PowerLawSequence(5000, 2.5, 2, 100, rng)
	if len(seq) != 5000 {
		t.Fatalf("len %d", len(seq))
	}
	for _, d := range seq {
		if d < 2 || d > 100 {
			t.Fatalf("degree %d out of [2,100]", d)
		}
	}
}

func TestPowerLawSequenceIsHeavyTailed(t *testing.T) {
	rng := stats.NewRNG(2)
	seq := PowerLawSequence(20000, 2.2, 2, 500, rng)
	small, large := 0, 0
	for _, d := range seq {
		if d <= 4 {
			small++
		}
		if d >= 50 {
			large++
		}
	}
	if small < len(seq)/2 {
		t.Errorf("only %d/%d small degrees; power law should be bottom-heavy", small, len(seq))
	}
	if large == 0 {
		t.Error("no large degrees; tail missing")
	}
}

func TestPowerLawSequenceDegenerateParams(t *testing.T) {
	rng := stats.NewRNG(3)
	seq := PowerLawSequence(100, 0.5, 0, -5, rng) // all invalid; clamped
	for _, d := range seq {
		if d != 1 {
			t.Fatalf("clamped sequence should be all ones, got %d", d)
		}
	}
}

func TestConfigurationModelDegrees(t *testing.T) {
	rng := stats.NewRNG(4)
	degrees := []int{3, 3, 2, 2, 2}
	g := ConfigurationModel(degrees, rng)
	if g.N() != 5 {
		t.Fatalf("n=%d", g.N())
	}
	// realized degree can only fall below the request (drops), never above
	for v := NodeID(0); int(v) < g.N(); v++ {
		if g.OutDegree(v) > degrees[v] {
			t.Errorf("node %d degree %d exceeds requested %d", v, g.OutDegree(v), degrees[v])
		}
	}
	if !isSymmetric(g) {
		t.Error("configuration model must be undirected")
	}
}

func TestConfigurationModelOddStubs(t *testing.T) {
	rng := stats.NewRNG(5)
	g := ConfigurationModel([]int{3, 2, 2}, rng) // 7 stubs, odd
	if g.N() != 3 {
		t.Fatalf("n=%d", g.N())
	}
	// must not panic and must keep degrees bounded
	for v := NodeID(0); int(v) < 3; v++ {
		if g.OutDegree(v) > 3 {
			t.Errorf("degree overflow at %d", v)
		}
	}
}

func TestPowerLawGraphAverageDegree(t *testing.T) {
	rng := stats.NewRNG(6)
	g := PowerLawGraph(4000, 2.3, 12, rng)
	if g.N() != 4000 {
		t.Fatalf("n=%d", g.N())
	}
	// directed average degree counts both directions: target ~12
	if g.AvgDegree() < 6 || g.AvgDegree() > 24 {
		t.Errorf("avg degree %v, want ~12", g.AvgDegree())
	}
	st := ComputeStats(g)
	if float64(st.MaxOutDeg) < 3*g.AvgDegree() {
		t.Errorf("max degree %d not heavy-tailed for avg %v", st.MaxOutDeg, g.AvgDegree())
	}
}

func TestDegreeExponentEstimate(t *testing.T) {
	rng := stats.NewRNG(7)
	seq := PowerLawSequence(30000, 2.5, 3, 300, rng)
	g := ConfigurationModel(seq, rng)
	alpha := DegreeExponentEstimate(g, 3)
	if math.Abs(alpha-2.5) > 0.5 {
		t.Errorf("estimated exponent %v, want ~2.5", alpha)
	}
}

func TestDegreeExponentEstimateDegenerate(t *testing.T) {
	if got := DegreeExponentEstimate(NewBuilder(3).Build(), 1); got != 0 {
		t.Errorf("empty graph exponent %v, want 0", got)
	}
}
