package expr

import (
	"context"
	"fmt"
	"time"

	"uicwelfare/internal/comic"
	"uicwelfare/internal/core"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Params controls experiment scale. Zero values take the defaults noted
// per field.
type Params struct {
	Scale float64 // network scale factor (default 1.0 in CLI, small in benches)
	Seed  uint64  // RNG seed (default 1)
	Runs  int     // Monte-Carlo runs per welfare estimate (default 2000)
	Eps   float64 // IMM/PRIMA epsilon (default 0.5, as in the paper)
	Ell   float64 // confidence exponent (default 1)
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Runs <= 0 {
		p.Runs = 2000
	}
	if p.Eps <= 0 {
		p.Eps = 0.5
	}
	if p.Ell <= 0 {
		p.Ell = 1
	}
	return p
}

// TwoItemAlgos lists the five algorithms of the two-item comparison
// (Figs. 4-6) in the paper's legend order: the registered core planners
// by their registry names, plus the Com-IC baselines (which live outside
// the registry — they require a two-item GAP model).
var TwoItemAlgos = []string{core.AlgoBundleGRD, "RR-SIM+", "RR-CIM", core.AlgoItemDisjoint, core.AlgoBundleDisjoint}

// TwoItemConfig returns the Table 3 model for configuration 1-4 and the
// budget vectors swept on the x axis: uniform k in {10..50} for odd
// configurations, b1=70 with b2 in {30..110} for even ones. Budgets are
// scaled down alongside the networks.
func TwoItemConfig(cfg int, scale float64) (*utility.Model, [][]int, []string, error) {
	var m *utility.Model
	switch cfg {
	case 1, 2:
		m = utility.Config1()
	case 3, 4:
		m = utility.Config3()
	default:
		return nil, nil, nil, fmt.Errorf("expr: two-item configuration %d out of range 1-4", cfg)
	}
	bscale := scale
	if bscale > 1 {
		bscale = 1
	}
	sc := func(b int) int {
		s := int(float64(b) * bscale)
		if s < 1 {
			s = 1
		}
		return s
	}
	var budgets [][]int
	var labels []string
	if cfg%2 == 1 { // uniform
		for k := 10; k <= 50; k += 10 {
			budgets = append(budgets, []int{sc(k), sc(k)})
			labels = append(labels, fmt.Sprintf("k=%d", sc(k)))
		}
	} else { // non-uniform
		for b2 := 30; b2 <= 110; b2 += 20 {
			budgets = append(budgets, []int{sc(70), sc(b2)})
			labels = append(labels, fmt.Sprintf("b2=%d", sc(b2)))
		}
	}
	return m, budgets, labels, nil
}

// TwoItemRow is one point of Figs. 4, 5 or 6.
type TwoItemRow struct {
	Config    int
	Network   string
	Budget    string
	Algorithm string
	Welfare   float64
	WelfareSE float64
	Millis    float64
	RRSets    int
}

// runTwoItemAlgo executes one named algorithm and returns its allocation
// plus effort numbers. Core planners dispatch by name through the
// registry; the Com-IC baselines are handled here directly.
func runTwoItemAlgo(name string, g *graph.Graph, m *utility.Model, budgets []int, p Params, rng *stats.RNG) (*uic.Allocation, int, error) {
	switch name {
	case "RR-SIM+":
		r, err := comic.AllocateRRSIMPlus(g, m, budgets, comic.Options{Eps: p.Eps, Ell: p.Ell}, rng)
		if err != nil {
			return nil, 0, err
		}
		return r.Alloc, r.NumRRSets, nil
	case "RR-CIM":
		r, err := comic.AllocateRRCIM(g, m, budgets, comic.Options{Eps: p.Eps, Ell: p.Ell}, rng)
		if err != nil {
			return nil, 0, err
		}
		return r.Alloc, r.NumRRSets, nil
	}
	prob := core.MustProblem(g, m, budgets)
	r, err := core.Plan(context.Background(), name, prob, core.Options{Eps: p.Eps, Ell: p.Ell}, rng)
	if err != nil {
		return nil, 0, fmt.Errorf("expr: %w", err)
	}
	return r.Alloc, r.NumRRSets, nil
}

// Fig4 reproduces the expected-social-welfare comparison of Fig. 4 for
// one configuration (1-4) on the Douban-Movie stand-in.
func Fig4(cfg int, p Params) ([]TwoItemRow, error) {
	p = p.withDefaults()
	m, budgetSweep, labels, err := TwoItemConfig(cfg, p.Scale)
	if err != nil {
		return nil, err
	}
	spec, _ := NetworkByName("douban-movie")
	g := spec.Generate(p.Scale, p.Seed)
	var rows []TwoItemRow
	for bi, budgets := range budgetSweep {
		for _, algo := range TwoItemAlgos {
			rng := stats.NewRNG(p.Seed + uint64(bi)*31)
			alloc, rr, err := runTwoItemAlgo(algo, g, m, budgets, p, rng)
			if err != nil {
				return nil, err
			}
			est := uic.NewSimulator(g, m).EstimateWelfare(alloc, stats.NewRNG(p.Seed+999), p.Runs)
			rows = append(rows, TwoItemRow{
				Config: cfg, Network: spec.Name, Budget: labels[bi], Algorithm: algo,
				Welfare: est.Mean, WelfareSE: est.StdErr, RRSets: rr,
			})
		}
	}
	return rows, nil
}

// Fig5And6 reproduces the running-time (Fig. 5) and RR-set-count (Fig. 6)
// measurements: configuration 1, uniform budgets, on the given network.
func Fig5And6(network string, p Params) ([]TwoItemRow, error) {
	p = p.withDefaults()
	m, budgetSweep, labels, err := TwoItemConfig(1, p.Scale)
	if err != nil {
		return nil, err
	}
	spec, err := NetworkByName(network)
	if err != nil {
		return nil, err
	}
	g := spec.Generate(p.Scale, p.Seed)
	var rows []TwoItemRow
	for bi, budgets := range budgetSweep {
		for _, algo := range TwoItemAlgos {
			rng := stats.NewRNG(p.Seed + uint64(bi)*31)
			start := time.Now()
			_, rr, err := runTwoItemAlgo(algo, g, m, budgets, p, rng)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TwoItemRow{
				Config: 1, Network: spec.Name, Budget: labels[bi], Algorithm: algo,
				Millis: float64(time.Since(start).Microseconds()) / 1000.0,
				RRSets: rr,
			})
		}
	}
	return rows, nil
}
