package cluster

import (
	"encoding/json"
	"net/http"
	"time"

	"uicwelfare/internal/service"
	"uicwelfare/internal/telemetry"
)

// observeOp records one router-initiated cluster operation (placement,
// rebalance, ship, dispatch) into the
// welmax_cluster_op_duration_seconds{op} histogram.
func (r *Router) observeOp(op string, start time.Time) {
	r.metrics.Observe("welmax_cluster_op_duration_seconds",
		[]telemetry.Label{{Name: "op", Value: op}}, time.Since(start))
}

// routerGauges are the router's own point-in-time series, exported
// alongside the relayed per-backend gauges (no node label: they belong
// to the routing tier itself).
func (r *Router) routerGauges() []telemetry.Gauge {
	stateGauge := func(state string, v int64) telemetry.Gauge {
		return telemetry.Gauge{
			Name:   "welmax_cluster_sweep_cells_total",
			Labels: []telemetry.Label{{Name: "state", Value: state}},
			Value:  float64(v),
		}
	}
	out := []telemetry.Gauge{
		{Name: "welmax_cluster_rebalances", Value: float64(r.rebalances.Load())},
		{Name: "welmax_cluster_sketch_ships", Value: float64(r.ships.Load())},
		{Name: "welmax_cluster_pre_admission_rejects", Value: float64(r.preAdmitRejects.Load())},
		stateGauge("done", r.sweepCellsDone.Load()),
		stateGauge("failed", r.sweepCellsFailed.Load()),
		stateGauge("canceled", r.sweepCellsCanceled.Load()),
	}
	out = append(out, telemetry.BuildInfoGauge())
	out = append(out, service.JournalGauges(r.flight)...)
	out = append(out, service.TraceStoreGauges(r.traces)...)
	out = append(out, service.ResourceTotalGauges()...)
	return out
}

// handleMetrics implements the router's GET /v1/metrics: the cluster's
// merged latency histograms plus every backend's gauges. Histograms are
// fetched from each live shard in JSON form and element-wise summed
// with the router's own (all histograms share the fixed bucket bounds),
// so `welmax_http_request_duration_seconds{route="POST /v1/allocate"}`
// is one series covering the whole cluster. Gauges are point-in-time
// per shard and cannot be meaningfully summed, so each is relayed with
// a node label identifying the backend it came from. Unreachable
// backends contribute a welmax_backend_up{node} of 0 and nothing else —
// a scrape never fails because a shard is down.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	groups := [][]telemetry.HistSnapshot{r.metrics.Snapshot()}
	gauges := r.routerGauges()
	errs := map[string]string{}
	for _, res := range r.fanout(req.Context(), http.MethodGet, "/v1/metrics?format=json") {
		if res.err != nil {
			errs[res.backend] = res.err.Error()
			gauges = append(gauges, backendUp(res.backend, 0))
			continue
		}
		var export telemetry.Export
		if err := json.Unmarshal(res.body, &export); err != nil {
			errs[res.backend] = err.Error()
			gauges = append(gauges, backendUp(res.backend, 0))
			continue
		}
		groups = append(groups, export.Histograms)
		gauges = append(gauges, backendUp(res.backend, 1))
		for _, g := range export.Gauges {
			g.Labels = append([]telemetry.Label{{Name: "node", Value: res.backend}}, g.Labels...)
			gauges = append(gauges, g)
		}
	}
	merged := telemetry.MergeSnapshots(groups...)
	if req.URL.Query().Get("format") == "json" {
		out := map[string]any{"histograms": merged, "gauges": gauges}
		if len(errs) > 0 {
			out["partial"] = true
			out["errors"] = errs
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, merged, gauges)
}

func backendUp(node string, v float64) telemetry.Gauge {
	return telemetry.Gauge{
		Name:   "welmax_backend_up",
		Labels: []telemetry.Label{{Name: "node", Value: node}},
		Value:  v,
	}
}
