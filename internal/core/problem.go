// Package core implements the paper's allocation algorithms: bundleGRD
// (Algorithm 1, the (1-1/e-ε)-approximate greedy allocator built on
// PRIMA), the item-disjoint and bundle-disjoint baselines of §4.3.1.2,
// and a brute-force optimal allocator for tiny instances used to verify
// the approximation ratio empirically.
package core

import (
	"fmt"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Problem is a WelMax instance: graph, utility model, and per-item seed
// budgets (Problem 1 in the paper).
type Problem struct {
	G       *graph.Graph
	Model   *utility.Model
	Budgets []int
}

// NewProblem validates and assembles a WelMax instance.
func NewProblem(g *graph.Graph, m *utility.Model, budgets []int) (*Problem, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("core: nil graph or model")
	}
	if len(budgets) != m.K() {
		return nil, fmt.Errorf("core: %d budgets for %d items", len(budgets), m.K())
	}
	for i, b := range budgets {
		if b < 0 {
			return nil, fmt.Errorf("core: negative budget %d for item %d", b, i)
		}
	}
	return &Problem{G: g, Model: m, Budgets: budgets}, nil
}

// MustProblem is NewProblem that panics on error.
func MustProblem(g *graph.Graph, m *utility.Model, budgets []int) *Problem {
	p, err := NewProblem(g, m, budgets)
	if err != nil {
		panic(err)
	}
	return p
}

// K returns the number of items.
func (p *Problem) K() int { return len(p.Budgets) }

// MaxBudget returns b = max_i b_i.
func (p *Problem) MaxBudget() int {
	b := 0
	for _, x := range p.Budgets {
		if x > b {
			b = x
		}
	}
	return b
}

// TotalBudget returns Σ_i b_i.
func (p *Problem) TotalBudget() int {
	t := 0
	for _, x := range p.Budgets {
		t += x
	}
	return t
}

// CheckAllocation verifies the budget constraint |S_i| <= b_i and that
// every seed is a valid node.
func (p *Problem) CheckAllocation(a *uic.Allocation) error {
	if a.K() != p.K() {
		return fmt.Errorf("core: allocation has %d items, problem has %d", a.K(), p.K())
	}
	for i, seeds := range a.Seeds {
		if len(seeds) > p.Budgets[i] {
			return fmt.Errorf("core: item %d has %d seeds, budget %d", i, len(seeds), p.Budgets[i])
		}
		seen := map[graph.NodeID]bool{}
		for _, v := range seeds {
			if v < 0 || int(v) >= p.G.N() {
				return fmt.Errorf("core: item %d seeded at invalid node %d", i, v)
			}
			if seen[v] {
				return fmt.Errorf("core: item %d seeded twice at node %d", i, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// BudgetOrder returns item indices sorted by non-increasing budget (ties
// toward the smaller index), the order in which the baselines visit
// items.
func (p *Problem) BudgetOrder() []int {
	order := make([]int, p.K())
	for i := range order {
		order[i] = i
	}
	// insertion sort: k is tiny
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && p.Budgets[order[j]] > p.Budgets[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
