package diffusion

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// LiveEdgeWorld is a deterministic possible world W^E of the IC model: a
// subgraph where each edge of the base graph was kept independently with
// its influence probability. Reachability in the world equals activation
// in the corresponding cascade (the live-edge representation of Kempe et
// al.).
type LiveEdgeWorld struct {
	g    *graph.Graph
	live []bool // indexed by global out-edge position
}

// SampleLiveEdgeWorld flips every edge of g once and returns the world.
func SampleLiveEdgeWorld(g *graph.Graph, rng *stats.RNG) *LiveEdgeWorld {
	w := &LiveEdgeWorld{g: g, live: make([]bool, g.M())}
	pos := 0
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		_, ps := g.OutEdges(u)
		for i := range ps {
			w.live[pos] = rng.Bool(float64(ps[i]))
			pos++
			_ = i
		}
	}
	return w
}

// NewLiveEdgeWorld builds a world with an explicit predicate deciding
// which edges are live; keep receives (u, v). Intended for tests.
func NewLiveEdgeWorld(g *graph.Graph, keep func(u, v graph.NodeID) bool) *LiveEdgeWorld {
	w := &LiveEdgeWorld{g: g, live: make([]bool, g.M())}
	pos := 0
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		ts, _ := g.OutEdges(u)
		for _, v := range ts {
			w.live[pos] = keep(u, v)
			pos++
		}
	}
	return w
}

// Live reports whether the out-edge at global position pos is live.
func (w *LiveEdgeWorld) Live(pos int64) bool { return w.live[pos] }

// Graph returns the base graph.
func (w *LiveEdgeWorld) Graph() *graph.Graph { return w.g }

// Reachable marks every node reachable from the seeds through live edges.
// The returned slice is freshly allocated.
func (w *LiveEdgeWorld) Reachable(seeds []graph.NodeID) []bool {
	out := make([]bool, w.g.N())
	var q []graph.NodeID
	for _, v := range seeds {
		if !out[v] {
			out[v] = true
			q = append(q, v)
		}
	}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		base := w.g.OutEdgeBase(u)
		ts, _ := w.g.OutEdges(u)
		for i, v := range ts {
			if out[v] || !w.live[base+int64(i)] {
				continue
			}
			out[v] = true
			q = append(q, v)
		}
	}
	return out
}

// CountReachable returns |Γ(seeds, W)|, the number of nodes reachable from
// the seeds in this world.
func (w *LiveEdgeWorld) CountReachable(seeds []graph.NodeID) int {
	r := w.Reachable(seeds)
	c := 0
	for _, b := range r {
		if b {
			c++
		}
	}
	return c
}

// LiveInNeighbors returns the in-neighbors of v whose edge to v is live.
func (w *LiveEdgeWorld) LiveInNeighbors(v graph.NodeID) []graph.NodeID {
	srcs, _ := w.g.InEdges(v)
	pos := w.g.InEdgePositions(v)
	var out []graph.NodeID
	for i, u := range srcs {
		if w.live[pos[i]] {
			out = append(out, u)
		}
	}
	return out
}
