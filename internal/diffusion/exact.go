package diffusion

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// ExactSpread computes sigma(seeds) exactly by enumerating all 2^m
// live-edge worlds. It is exponential in the number of edges and intended
// only for tests on tiny graphs (m <= ~20).
func ExactSpread(g *graph.Graph, seeds []graph.NodeID) float64 {
	m := g.M()
	if m > 24 {
		panic("diffusion: ExactSpread limited to graphs with at most 24 edges")
	}
	// collect per-edge probabilities in out-edge position order
	probs := make([]float64, 0, m)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		_, ps := g.OutEdges(u)
		for _, p := range ps {
			probs = append(probs, float64(p))
		}
	}
	total := 0.0
	for mask := 0; mask < 1<<uint(m); mask++ {
		pw := 1.0
		for e := 0; e < m; e++ {
			if mask&(1<<uint(e)) != 0 {
				pw *= probs[e]
			} else {
				pw *= 1 - probs[e]
			}
		}
		if pw == 0 {
			continue
		}
		w := worldFromMask(g, mask)
		total += pw * float64(w.CountReachable(seeds))
	}
	return total
}

func worldFromMask(g *graph.Graph, mask int) *LiveEdgeWorld {
	w := &LiveEdgeWorld{g: g, live: make([]bool, g.M())}
	for e := 0; e < g.M(); e++ {
		w.live[e] = mask&(1<<uint(e)) != 0
	}
	return w
}

// EnumerateWorlds calls fn with every live-edge world of g and its
// probability. Exponential; tests only.
func EnumerateWorlds(g *graph.Graph, fn func(w *LiveEdgeWorld, prob float64)) {
	m := g.M()
	if m > 24 {
		panic("diffusion: EnumerateWorlds limited to graphs with at most 24 edges")
	}
	probs := make([]float64, 0, m)
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		_, ps := g.OutEdges(u)
		for _, p := range ps {
			probs = append(probs, float64(p))
		}
	}
	for mask := 0; mask < 1<<uint(m); mask++ {
		pw := 1.0
		for e := 0; e < m; e++ {
			if mask&(1<<uint(e)) != 0 {
				pw *= probs[e]
			} else {
				pw *= 1 - probs[e]
			}
		}
		if pw == 0 {
			continue
		}
		fn(worldFromMask(g, mask), pw)
	}
}

// GreedySpreadMC is the classic greedy seed selection of Kempe et al.,
// evaluating marginal gains with Monte-Carlo spread estimates over `runs`
// cascades per candidate. It is O(n·k·runs·cascade) and serves as the slow
// reference implementation that the IMM stack is validated against in
// tests on small graphs.
func GreedySpreadMC(g *graph.Graph, k, runs int, rng *stats.RNG) []graph.NodeID {
	if k < 0 {
		panic("diffusion: negative budget")
	}
	if k > g.N() {
		k = g.N()
	}
	sim := NewSim(g)
	seeds := make([]graph.NodeID, 0, k)
	inSeeds := make([]bool, g.N())
	for len(seeds) < k {
		best, bestSpread := graph.NodeID(-1), -1.0
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if inSeeds[v] {
				continue
			}
			cand := append(seeds, v)
			s := sim.Spread(cand, rng, runs)
			if s > bestSpread {
				best, bestSpread = v, s
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		inSeeds[best] = true
	}
	return seeds
}
