package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

func testProblem(t *testing.T) *Problem {
	t.Helper()
	rng := stats.NewRNG(7)
	g := graph.BarabasiAlbert(200, 3, rng).WeightedCascade()
	return MustProblem(g, utility.Config1(), []int{5, 3})
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	want := []string{AlgoBundleGRD, AlgoItemDisjoint, AlgoBundleDisjoint}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q not registered (have %v)", w, names)
		}
	}
	if len(Algorithms()) != len(names) {
		t.Errorf("Algorithms() has %d entries, Names() %d", len(Algorithms()), len(names))
	}
	for _, m := range Algorithms() {
		if m.Name == "" || m.Description == "" || len(m.Cascades) == 0 {
			t.Errorf("incomplete meta: %+v", m)
		}
	}

	// The sketch-reusing planners advertise their family and implement
	// the capability; bundle-disj does neither.
	for name, family := range map[string]string{AlgoBundleGRD: "prima", AlgoItemDisjoint: "imm", AlgoBundleDisjoint: ""} {
		p, meta, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if meta.SketchFamily != family {
			t.Errorf("%s: SketchFamily = %q, want %q", name, meta.SketchFamily, family)
		}
		_, isSketch := p.(SketchPlanner)
		if isSketch != meta.SketchCacheable() {
			t.Errorf("%s: SketchPlanner = %v but SketchCacheable = %v", name, isSketch, meta.SketchCacheable())
		}
	}
}

func TestLookupDefaultAndUnknown(t *testing.T) {
	_, meta, err := Lookup("")
	if err != nil || meta.Name != DefaultAlgorithm {
		t.Fatalf("Lookup(\"\") = %v, %v; want default %s", meta.Name, err, DefaultAlgorithm)
	}
	if _, _, err := Lookup("no-such-algo"); err == nil || !strings.Contains(err.Error(), "no-such-algo") {
		t.Fatalf("unknown algorithm: err = %v", err)
	}
	if _, err := Plan(context.Background(), "no-such-algo", testProblem(t), Options{}, stats.NewRNG(1)); err == nil {
		t.Fatal("Plan with unknown algorithm succeeded")
	}
}

// TestPlannersMatchLegacyFunctions pins the wrappers to the registry:
// the deprecated free functions and registry dispatch must produce
// identical allocations for identical seeds.
func TestPlannersMatchLegacyFunctions(t *testing.T) {
	p := testProblem(t)
	opts := Options{Eps: 0.5, Ell: 1}
	legacy := map[string]func() Result{
		AlgoBundleGRD:      func() Result { return BundleGRD(p, opts, stats.NewRNG(3)) },
		AlgoItemDisjoint:   func() Result { return ItemDisjoint(p, opts, stats.NewRNG(3)) },
		AlgoBundleDisjoint: func() Result { return BundleDisjoint(p, opts, stats.NewRNG(3)) },
	}
	for name, run := range legacy {
		got, err := Plan(context.Background(), name, p, opts, stats.NewRNG(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := run()
		if fmt.Sprint(got.Alloc.Seeds) != fmt.Sprint(want.Alloc.Seeds) {
			t.Errorf("%s: registry and legacy allocations differ:\n  registry %v\n  legacy   %v",
				name, got.Alloc.Seeds, want.Alloc.Seeds)
		}
	}
}

func TestPlanCanceledContext(t *testing.T) {
	p := testProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{AlgoBundleGRD, AlgoItemDisjoint, AlgoBundleDisjoint} {
		_, err := Plan(ctx, name, p, Options{}, stats.NewRNG(1))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s with canceled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestPlanProgressEvents(t *testing.T) {
	p := testProblem(t)
	var sketchEvents int
	opts := Options{Progress: func(ev progress.Event) {
		if ev.Stage == progress.StageSketch {
			sketchEvents++
			if ev.Done <= 0 || ev.Total <= 0 || ev.Done > ev.Total || ev.Round <= 0 {
				t.Errorf("malformed sketch event: %+v", ev)
			}
		}
	}}
	if _, err := Plan(context.Background(), AlgoBundleGRD, p, opts, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if sketchEvents == 0 {
		t.Error("no sketch progress events reported")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", Meta{}, func() Planner { return bundleDisjointPlanner{} }) })
	mustPanic("nil factory", func() { Register("x-nil", Meta{}, nil) })
	mustPanic("duplicate", func() {
		Register(AlgoBundleGRD, Meta{}, func() Planner { return bundleGRDPlanner{} })
	})
	mustPanic("sketch planner without family", func() {
		Register("x-sketchless", Meta{}, func() Planner { return bundleGRDPlanner{} })
	})
}
