package uic

import (
	"math"
	"testing"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// figure2Model builds the utility setting of the paper's Fig. 2 example:
// U(i1) > 0, U(i2) < 0, U({i1,i2}) > U(i1), zero noise.
func figure2Model() *utility.Model {
	// V(i1)=3,P(i1)=1 -> U=2; V(i2)=1,P(i2)=2 -> U=-1; V both=6,P=3 -> U=3
	val, err := utility.NewTableValuation(2, []float64{0, 3, 1, 6})
	if err != nil {
		panic(err)
	}
	return utility.MustModel(val,
		[]float64{1, 2},
		[]stats.Dist{stats.PointMass{}, stats.PointMass{}})
}

// figure2Graph: v1 -> v2, v1 -> v3, v2 -> v3 (ids 0, 1, 2).
func figure2Graph() *graph.Graph {
	return graph.FromEdges(3, [][3]float64{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 2, 0.5},
	})
}

func TestFigure2Walkthrough(t *testing.T) {
	g := figure2Graph()
	m := figure2Model()
	sim := NewSimulator(g, m)

	// the example's edge world: (v1,v2) live, (v1,v3) blocked, (v2,v3) live
	world := diffusion.NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool {
		return !(u == 0 && v == 2)
	})
	alloc := NewAllocation(2)
	alloc.Assign(0, 0) // v1 seeded with i1
	alloc.Assign(2, 1) // v3 seeded with i2

	welfare := sim.RunInWorld(alloc, world, []float64{0, 0})

	if got := sim.Adopted(0); got != itemset.New(0) {
		t.Errorf("v1 adopted %v, want {i1}", got)
	}
	if got := sim.Adopted(1); got != itemset.New(0) {
		t.Errorf("v2 adopted %v, want {i1}", got)
	}
	if got := sim.Adopted(2); got != itemset.New(0, 1) {
		t.Errorf("v3 adopted %v, want {i1,i2}", got)
	}
	// welfare = U(i1) + U(i1) + U({i1,i2}) = 2 + 2 + 3
	if math.Abs(welfare-7) > 1e-12 {
		t.Errorf("welfare = %v, want 7", welfare)
	}
}

func TestFigure2BlockedEverything(t *testing.T) {
	g := figure2Graph()
	m := figure2Model()
	sim := NewSimulator(g, m)
	world := diffusion.NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool { return false })
	alloc := NewAllocation(2)
	alloc.Assign(0, 0)
	alloc.Assign(2, 1)
	welfare := sim.RunInWorld(alloc, world, []float64{0, 0})
	// only v1 adopts i1; v3 desires i2 but rejects it
	if math.Abs(welfare-2) > 1e-12 {
		t.Errorf("welfare = %v, want 2", welfare)
	}
	if got := sim.Adopted(2); !got.IsEmpty() {
		t.Errorf("v3 adopted %v with all edges blocked", got)
	}
}

func TestSeedsAreRationalUsers(t *testing.T) {
	// a seed allocated only a negative-utility item adopts nothing
	m := utility.Config3() // U(i2) = -1 deterministic
	g := graph.Line(2, 1)
	sim := NewSimulator(g, m)
	alloc := NewAllocation(2)
	alloc.Assign(0, 1) // seed node 0 with item i2
	world := diffusion.NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool { return true })
	welfare := sim.RunInWorld(alloc, world, []float64{0, 0})
	if welfare != 0 {
		t.Errorf("welfare = %v, want 0", welfare)
	}
	if !sim.Adopted(0).IsEmpty() {
		t.Errorf("seed adopted negative-utility item: %v", sim.Adopted(0))
	}
}

func TestSeedAdoptsSubsetOfAllocation(t *testing.T) {
	// seed gets both items of config3; zero noise: adopts the bundle
	m := utility.Config3()
	g := graph.Line(1, 1)
	sim := NewSimulator(g, m)
	alloc := NewAllocation(2)
	alloc.Assign(0, 0)
	alloc.Assign(0, 1)
	world := diffusion.NewLiveEdgeWorld(g, func(u, v graph.NodeID) bool { return true })
	welfare := sim.RunInWorld(alloc, world, []float64{0, 0})
	if got := sim.Adopted(0); got != itemset.New(0, 1) {
		t.Errorf("adopted %v, want bundle", got)
	}
	if math.Abs(welfare-1) > 1e-12 {
		t.Errorf("welfare %v, want 1", welfare)
	}
}

func TestLemma3Reachability(t *testing.T) {
	// in any fixed world, every node reachable from an adopter of item i
	// adopts i as well (supermodular valuations)
	rng := stats.NewRNG(1)
	for trial := 0; trial < 30; trial++ {
		g := graph.ErdosRenyi(25, 80, rng)
		m := utility.Config8(3, rng)
		sim := NewSimulator(g, m)
		world := diffusion.SampleLiveEdgeWorld(g.UniformProb(0.5), rng)
		noise := m.SampleNoise(rng)
		alloc := NewAllocation(3)
		for i := 0; i < 3; i++ {
			for s := 0; s < 3; s++ {
				alloc.Assign(graph.NodeID(rng.Intn(25)), i)
			}
		}
		sim.RunInWorld(alloc, world, noise)
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			av := sim.Adopted(v)
			if av.IsEmpty() {
				continue
			}
			reach := world.Reachable([]graph.NodeID{v})
			for w := graph.NodeID(0); int(w) < g.N(); w++ {
				if !reach[w] {
					continue
				}
				if !av.SubsetOf(sim.Adopted(w)) {
					t.Fatalf("trial %d: node %d adopted %v but reachable node %d adopted %v",
						trial, v, av, w, sim.Adopted(w))
				}
			}
		}
	}
}

func TestTheorem1MonotonicityPerWorld(t *testing.T) {
	// ρ_W(𝒮) <= ρ_W(𝒮') for 𝒮 ⊆ 𝒮', in every possible world
	rng := stats.NewRNG(2)
	for trial := 0; trial < 30; trial++ {
		g := graph.ErdosRenyi(20, 60, rng)
		m := utility.Config8(3, rng)
		sim := NewSimulator(g, m)
		world := diffusion.SampleLiveEdgeWorld(g.UniformProb(0.6), rng)
		noise := m.SampleNoise(rng)

		small := NewAllocation(3)
		for i := 0; i < 3; i++ {
			small.Assign(graph.NodeID(rng.Intn(20)), i)
		}
		big := small.Clone()
		for i := 0; i < 3; i++ {
			big.Assign(graph.NodeID(rng.Intn(20)), i)
		}
		ws := sim.RunInWorld(small, world, noise)
		wb := sim.RunInWorld(big, world, noise)
		if wb < ws-1e-9 {
			t.Fatalf("trial %d: welfare not monotone: %v -> %v", trial, ws, wb)
		}
	}
}

func TestTheorem1NotSubmodular(t *testing.T) {
	// the paper's counterexample: one node, two items, each with negative
	// deterministic utility, positive together; bounded noise.
	val, err := utility.NewTableValuation(2, []float64{0, 1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	// P = 2 each: U(i1) = U(i2) = -1; U(both) = +1.
	// noise bounded by |V - P| = 1
	m := utility.MustModel(val, []float64{2, 2}, []stats.Dist{
		stats.TruncatedGaussian{Mu: 0, Sigma: 0.5, Lo: -1, Hi: 1},
		stats.TruncatedGaussian{Mu: 0, Sigma: 0.5, Lo: -1, Hi: 1},
	})
	g := graph.Line(1, 1)
	rng := stats.NewRNG(3)
	sim := NewSimulator(g, m)

	empty := NewAllocation(2)
	s1 := NewAllocation(2)
	s1.Assign(0, 0) // (u, i1)
	s1i2 := NewAllocation(2)
	s1i2.Assign(0, 1) // (u, i2)
	both := NewAllocation(2)
	both.Assign(0, 0)
	both.Assign(0, 1)

	const runs = 60000
	rhoEmpty := sim.EstimateWelfare(empty, rng, runs).Mean
	rhoI2 := sim.EstimateWelfare(s1i2, rng, runs).Mean
	rhoI1 := sim.EstimateWelfare(s1, rng, runs).Mean
	rhoBoth := sim.EstimateWelfare(both, rng, runs).Mean

	gainAtEmpty := rhoI2 - rhoEmpty // must be ~0
	gainAtS1 := rhoBoth - rhoI1     // must be clearly positive
	if math.Abs(gainAtEmpty) > 0.02 {
		t.Errorf("marginal of (u,i2) at ∅ = %v, want 0", gainAtEmpty)
	}
	if gainAtS1 < 0.5 {
		t.Errorf("marginal of (u,i2) at {(u,i1)} = %v, want ~1", gainAtS1)
	}
	if gainAtS1 <= gainAtEmpty {
		t.Errorf("submodularity not violated: %v <= %v", gainAtS1, gainAtEmpty)
	}
}

func TestTheorem1NotSupermodular(t *testing.T) {
	// two nodes v1 -> v2 with p=1, one item with positive deterministic
	// utility: the second seed placement adds nothing.
	val, err := utility.NewTableValuation(1, []float64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	m := utility.MustModel(val, []float64{1}, []stats.Dist{
		stats.TruncatedGaussian{Mu: 0, Sigma: 1, Lo: -2, Hi: 2},
	})
	g := graph.Line(2, 1)
	rng := stats.NewRNG(4)
	sim := NewSimulator(g, m)

	empty := NewAllocation(1)
	sPrime := NewAllocation(1)
	sPrime.Assign(0, 0)
	v2only := NewAllocation(1)
	v2only.Assign(1, 0)
	sPrimePlus := sPrime.Clone()
	sPrimePlus.Assign(1, 0)

	const runs = 60000
	gainAtEmpty := sim.EstimateWelfare(v2only, rng, runs).Mean -
		sim.EstimateWelfare(empty, rng, runs).Mean
	gainAtSPrime := sim.EstimateWelfare(sPrimePlus, rng, runs).Mean -
		sim.EstimateWelfare(sPrime, rng, runs).Mean

	if gainAtEmpty < 1.5 { // E[U(i)] = 2
		t.Errorf("marginal at ∅ = %v, want ~2", gainAtEmpty)
	}
	if math.Abs(gainAtSPrime) > 0.05 {
		t.Errorf("marginal at 𝒮' = %v, want 0", gainAtSPrime)
	}
	if gainAtSPrime >= gainAtEmpty {
		t.Errorf("supermodularity not violated: %v >= %v", gainAtSPrime, gainAtEmpty)
	}
}

func TestWelfareDeterministicLineFullAdoption(t *testing.T) {
	// one item with U=1 deterministic, line of 5 nodes with p=1, seed at
	// head: welfare = 5
	val, _ := utility.NewTableValuation(1, []float64{0, 2})
	m := utility.MustModel(val, []float64{1}, []stats.Dist{stats.PointMass{}})
	g := graph.Line(5, 1)
	sim := NewSimulator(g, m)
	alloc := NewAllocation(1)
	alloc.Assign(0, 0)
	rng := stats.NewRNG(5)
	got := sim.EstimateWelfare(alloc, rng, 10).Mean
	if math.Abs(got-5) > 1e-12 {
		t.Errorf("welfare = %v, want 5", got)
	}
}

func TestWelfareEmptyAllocation(t *testing.T) {
	m := utility.Config1()
	g := graph.Line(3, 1)
	sim := NewSimulator(g, m)
	rng := stats.NewRNG(6)
	if w := sim.EstimateWelfare(NewAllocation(2), rng, 100).Mean; w != 0 {
		t.Errorf("empty allocation welfare %v", w)
	}
}

func TestWelfareMatchesICSpecialCase(t *testing.T) {
	// Proposition 1's reduction: one item, V=1, P -> 0+ (use tiny price),
	// zero noise: welfare = expected spread.
	val, _ := utility.NewTableValuation(1, []float64{0, 1})
	m := utility.MustModel(val, []float64{1e-9}, []stats.Dist{stats.PointMass{}})
	rng := stats.NewRNG(7)
	g := graph.ErdosRenyi(40, 160, rng).WeightedCascade()
	sim := NewSimulator(g, m)
	alloc := NewAllocation(1)
	alloc.Assign(3, 0)
	alloc.Assign(11, 0)

	welfare := sim.EstimateWelfare(alloc, rng, 60000).Mean
	spread := diffusion.Spread(g, []graph.NodeID{3, 11}, rng, 60000)
	if math.Abs(welfare-spread) > 0.05*spread+0.05 {
		t.Errorf("UIC welfare %v vs IC spread %v", welfare, spread)
	}
}

func TestComplementBoostIncreasesAdoption(t *testing.T) {
	// seeding the complement raises adoption of a negative-utility item
	m := utility.Config3()
	rng := stats.NewRNG(8)
	g := graph.ErdosRenyi(50, 200, rng).WeightedCascade()
	sim := NewSimulator(g, m)

	only2 := NewAllocation(2)
	both := NewAllocation(2)
	for s := 0; s < 5; s++ {
		v := graph.NodeID(rng.Intn(50))
		only2.Assign(v, 1)
		both.Assign(v, 1)
		both.Assign(v, 0)
	}
	c2 := sim.AdoptionCounts(only2, rng, 20000)[1]
	cBoth := sim.AdoptionCounts(both, rng, 20000)[1]
	if cBoth <= c2 {
		t.Errorf("bundling did not boost i2 adoption: %v vs %v", cBoth, c2)
	}
}

func TestAllocationHelpers(t *testing.T) {
	a := NewAllocation(2)
	a.Assign(1, 0)
	a.Assign(2, 0)
	a.Assign(1, 1)
	if a.K() != 2 || a.Pairs() != 3 {
		t.Errorf("K=%d Pairs=%d", a.K(), a.Pairs())
	}
	nodes := a.SeedNodes()
	if len(nodes) != 2 {
		t.Errorf("seed nodes %v", nodes)
	}
	items := a.ItemsOf()
	if items[1] != itemset.New(0, 1) || items[2] != itemset.New(0) {
		t.Errorf("ItemsOf = %v", items)
	}
	c := a.Clone()
	c.Assign(3, 1)
	if a.Pairs() != 3 {
		t.Error("clone aliases original")
	}
}

func TestAllocationUnion(t *testing.T) {
	a := NewAllocation(2)
	a.Assign(1, 0)
	b := NewAllocation(2)
	b.Assign(1, 0) // duplicate pair
	b.Assign(2, 1)
	u := Union(a, b)
	if u.Pairs() != 2 {
		t.Errorf("union pairs = %d, want 2 (dedup)", u.Pairs())
	}
}

func TestUnionPanicsOnMismatchedK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched item counts")
		}
	}()
	Union(NewAllocation(1), NewAllocation(2))
}

func TestEstimateWelfareParallelMatchesSequential(t *testing.T) {
	m := utility.Config1()
	rng := stats.NewRNG(9)
	g := graph.ErdosRenyi(60, 240, rng).WeightedCascade()
	alloc := NewAllocation(2)
	for s := 0; s < 5; s++ {
		alloc.Assign(graph.NodeID(s), 0)
		alloc.Assign(graph.NodeID(s), 1)
	}
	seq := NewSimulator(g, m).EstimateWelfare(alloc, stats.NewRNG(10), 20000)
	par := EstimateWelfareParallel(g, m, alloc, stats.NewRNG(11), 20000, 4)
	if par.Runs != 20000 {
		t.Errorf("parallel ran %d", par.Runs)
	}
	if math.Abs(seq.Mean-par.Mean) > 4*(seq.StdErr+par.StdErr)+1e-9 {
		t.Errorf("parallel %v vs sequential %v (stderr %v/%v)",
			par.Mean, seq.Mean, par.StdErr, seq.StdErr)
	}
}

func TestSimulatorReuseIsClean(t *testing.T) {
	// state from a previous run must not leak into the next
	m := figure2Model()
	g := figure2Graph()
	sim := NewSimulator(g, m)
	rng := stats.NewRNG(12)
	alloc := NewAllocation(2)
	alloc.Assign(0, 0)
	w1 := sim.EstimateWelfare(alloc, rng, 500).Mean
	// now run an empty allocation; welfare must be exactly 0
	if w := sim.EstimateWelfare(NewAllocation(2), rng, 500).Mean; w != 0 {
		t.Errorf("leaked state: empty allocation welfare %v after %v", w, w1)
	}
}

func TestRunOnceDeterministicGivenSeed(t *testing.T) {
	m := utility.Config1()
	rng1 := stats.NewRNG(13)
	g := graph.ErdosRenyi(30, 120, rng1).WeightedCascade()
	alloc := NewAllocation(2)
	alloc.Assign(0, 0)
	alloc.Assign(1, 1)
	a := NewSimulator(g, m).EstimateWelfare(alloc, stats.NewRNG(99), 100).Mean
	b := NewSimulator(g, m).EstimateWelfare(alloc, stats.NewRNG(99), 100).Mean
	if a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestWelfareGivenNoiseSeparatesWorlds(t *testing.T) {
	// with strongly positive noise on i2, config3's i2 becomes adoptable
	m := utility.Config3()
	g := graph.Line(1, 1)
	sim := NewSimulator(g, m)
	alloc := NewAllocation(2)
	alloc.Assign(0, 1)
	rng := stats.NewRNG(14)
	low := sim.WelfareGivenNoise(alloc, []float64{0, -0.5}, rng, 100)
	high := sim.WelfareGivenNoise(alloc, []float64{0, 2}, rng, 100)
	if low != 0 {
		t.Errorf("negative-noise world welfare %v, want 0", low)
	}
	if math.Abs(high-1) > 1e-12 { // U(i2) = -1 + 2 = 1
		t.Errorf("positive-noise world welfare %v, want 1", high)
	}
}
