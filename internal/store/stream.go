package store

import (
	"bufio"
	"fmt"
	"io"

	"uicwelfare/internal/graph"
)

// SketchStreamMagic opens each entry of a sketch-stream container: the
// wire format of GET/POST /v1/graphs/{id}/sketches, which is how one
// backend ships its warm sketches to another during cluster rebalancing.
// A stream is a plain concatenation of entry frames — each one carries
// the sketch's cache key plus the same payload a .wms file holds — so a
// writer can emit entries as it walks the cache without knowing the
// count up front, and a reader imports them one at a time without
// buffering the whole transfer.
const SketchStreamMagic = "WMSSTRM\x00"

// WriteSketchStreamEntry appends one (key, sketch) entry to a sketch
// stream. The key is the service's cache key (which embeds the graph's
// content id), so the importing side can insert the sketch under the
// identical key and have later identical requests hit it.
func WriteSketchStreamEntry(w io.Writer, key string, sketch any) error {
	var p payloadWriter
	p.string(key)
	if err := encodeSketchPayload(&p, sketch); err != nil {
		return err
	}
	return writeFrame(w, SketchStreamMagic, p.buf.Bytes())
}

// ReadSketchStream decodes entries from a sketch stream until EOF,
// calling fn for each restored sketch (validated against g exactly like
// a .wms load). It returns the number of entries successfully delivered
// to fn; a corrupt entry or an fn error stops the stream with that
// error, so a truncated transfer imports a prefix and reports why.
func ReadSketchStream(r io.Reader, g *graph.Graph, fn func(key string, sketch any) error) (int, error) {
	br := bufio.NewReader(r)
	n := 0
	for {
		if _, err := br.Peek(1); err == io.EOF {
			return n, nil // clean end between frames
		} else if err != nil {
			return n, err
		}
		payload, err := readFrame(br, SketchStreamMagic)
		if err != nil {
			return n, err
		}
		p := payloadReader{rest: payload}
		key, err := p.string()
		if err != nil {
			return n, err
		}
		sketch, err := decodeSketchPayload(&p, g)
		if err != nil {
			return n, fmt.Errorf("entry %q: %w", key, err)
		}
		if err := p.done(); err != nil {
			return n, err
		}
		if err := fn(key, sketch); err != nil {
			return n, err
		}
		n++
	}
}
