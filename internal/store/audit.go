package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// jobsDir holds the job audit trail under the data directory.
func jobsDir(dir string) string { return filepath.Join(dir, "jobs") }

// jobHistoryPath is the JSON-lines file terminal jobs are appended to.
func (s *Store) jobHistoryPath() string {
	return filepath.Join(jobsDir(s.dir), "history.jsonl")
}

// AppendJobRecord appends one terminal job (its wire JobView) to the
// audit trail as a JSON line. The file is opened with O_APPEND per call
// — single-line appends are atomic at the sizes jobs marshal to, and a
// restarted daemon simply keeps appending to the same trail, which is
// the point of spilling it. Failures are counted as spill errors and
// returned; they never fail the job itself.
func (s *Store) AppendJobRecord(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		s.spillErrors.Add(1)
		return fmt.Errorf("store: job record: %w", err)
	}
	s.auditMu.Lock()
	defer s.auditMu.Unlock()
	f, err := os.OpenFile(s.jobHistoryPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.spillErrors.Add(1)
		return fmt.Errorf("store: job record: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		s.spillErrors.Add(1)
		return fmt.Errorf("store: job record: %w", err)
	}
	return nil
}

// JobHistory decodes every line of the audit trail into raw JSON
// messages, oldest first (used by tests and offline tooling; the daemon
// itself only appends). A missing file is an empty history. Unparsable
// lines are skipped — the trail is an append-only log that may end with
// a torn line after a crash.
func (s *Store) JobHistory() []json.RawMessage {
	f, err := os.Open(s.jobHistoryPath())
	if err != nil {
		return nil
	}
	defer f.Close()
	var out []json.RawMessage
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if !json.Valid(line) {
			continue
		}
		out = append(out, json.RawMessage(append([]byte(nil), line...)))
	}
	return out
}
