package welfare

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	rng := NewRNG(1)
	g := GenerateNetwork("flixster", 0.05, 1)
	m := Config1()
	p, err := NewProblem(g, m, []int{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	res := BundleGRD(p, Options{}, rng)
	if res.Alloc.Pairs() != 8 {
		t.Errorf("pairs = %d", res.Alloc.Pairs())
	}
	est := EstimateWelfare(p, res.Alloc, rng, 2000)
	if est.Mean <= 0 {
		t.Errorf("welfare %v", est.Mean)
	}
	par := EstimateWelfareParallel(p, res.Alloc, NewRNG(2), 2000, 2)
	if math.Abs(par.Mean-est.Mean) > 5*(par.StdErr+est.StdErr)+1 {
		t.Errorf("parallel %v vs sequential %v", par.Mean, est.Mean)
	}
}

func TestFacadeBaselines(t *testing.T) {
	rng := NewRNG(3)
	g := GenerateNetwork("douban-book", 0.05, 3)
	m := Config3()
	p, err := NewProblem(g, m, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []Result{
		ItemDisjoint(p, Options{}, rng),
		BundleDisjoint(p, Options{}, rng),
	} {
		if len(res.Alloc.Seeds[0]) != 4 {
			t.Errorf("baseline allocated %d seeds", len(res.Alloc.Seeds[0]))
		}
	}
}

func TestFacadeModels(t *testing.T) {
	if !IsSupermodular(Config1().Val) {
		t.Error("config1 not supermodular")
	}
	if !IsSupermodular(RealParamsSmoothed().Val) {
		t.Error("smoothed real params not supermodular")
	}
	if IsSupermodular(RealParams().Val) {
		t.Error("raw real params should not be supermodular")
	}
	if !IsMonotone(RealParams().Val) {
		t.Error("real params not monotone")
	}
	if ConfigAdditive(4).K() != 4 {
		t.Error("additive config wrong size")
	}
	if ConfigCone(5, 2).DetUtility(NewItemSet(2)) != 5 {
		t.Error("cone config core utility wrong")
	}
	if ConfigLevelwise(4, NewRNG(1)).K() != 4 {
		t.Error("levelwise config wrong size")
	}
}

func TestFacadeGAP(t *testing.T) {
	gap, err := GAPFromModel(Config1())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap.Q1GivenNone-0.5) > 0.01 {
		t.Errorf("q1|∅ = %v", gap.Q1GivenNone)
	}
}

func TestFacadeCustomModel(t *testing.T) {
	val, err := TableValuation(2, []float64{0, 2, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(val, []float64{1, 1}, []NoiseDist{GaussianNoise(0.5), GaussianNoise(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if m.DetUtility(NewItemSet(0, 1)) != 4 {
		t.Errorf("custom model utility %v", m.DetUtility(NewItemSet(0, 1)))
	}
}

func TestFacadeGraphIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1 0.5\n1 2 0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("loaded %v", g)
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.txt"), false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFacadeBuildGraph(t *testing.T) {
	g := BuildGraph(3, [][3]float64{{0, 1, 1}, {1, 2, 1}})
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("BuildGraph wrong: %v", g)
	}
}

func TestFacadeNetworkNames(t *testing.T) {
	names := NetworkNames()
	if len(names) != 5 || names[0] != "flixster" {
		t.Errorf("names %v", names)
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := NewRNG(4)
	if g := ErdosRenyi(100, 300, rng); g.N() != 100 {
		t.Error("ER wrong")
	}
	if g := BarabasiAlbert(100, 3, rng); g.N() != 100 {
		t.Error("BA wrong")
	}
	if g := PreferentialDirected(100, 3, rng); g.N() != 100 {
		t.Error("PD wrong")
	}
}
