// Package blocks implements the block accounting machinery of §4.2.2 —
// the paper's main analytical device for proving bundleGRD's
// (1-1/e-ε)-approximation despite the welfare function being neither
// submodular nor supermodular. Given a noise world it computes I* (the
// globally best itemset), partitions it into a sequence of atomic blocks
// with non-negative marginal utility (Fig. 3), and derives each block's
// anchor item and effective budget. The library uses it for validation
// tests (Properties 1-3, Lemmas 4-7) and welfare decomposition
// diagnostics; it is not needed by the bundleGRD algorithm itself, which
// is parameter-free.
package blocks

import (
	"fmt"
	"sort"

	"uicwelfare/internal/itemset"
)

// Instance describes one noise world's analysis inputs: the utility table
// U_{W^N} and the per-item budgets.
type Instance struct {
	Util    []float64 // indexed by itemset mask over the full universe
	Budgets []int     // per original item index
}

// Blocks is the result of the block generation process.
type Blocks struct {
	// Star is I*: the best itemset of the noise world (largest utility,
	// ties toward larger cardinality).
	Star itemset.Set
	// Order lists the items of Star in non-increasing budget order; the
	// paper's item index j (1-based) corresponds to Order[j-1].
	Order []int
	// Seq is the block partition B1..Bt of Star, as original-item sets.
	Seq []itemset.Set
	// Deltas[i] is Δ_{i+1} = U(B_{i+1} | B_1 ∪ ... ∪ B_i) (Eq. 4).
	Deltas []float64
	// AnchorBlock[i] is the index (into Seq) of block i's anchor block.
	AnchorBlock []int
	// AnchorItem[i] is the anchor item a_{i+1} (original item index).
	AnchorItem []int
	// EffBudget[i] is e_{i+1} = min budget over B_1 ∪ ... ∪ B_{i+1}.
	EffBudget []int

	inst Instance
}

// Generate runs the full §4.2.2 pipeline for one noise world.
func Generate(inst Instance) (*Blocks, error) {
	k := len(inst.Budgets)
	if len(inst.Util) != 1<<uint(k) {
		return nil, fmt.Errorf("blocks: utility table has %d entries for %d items", len(inst.Util), k)
	}
	b := &Blocks{inst: inst}
	b.Star = bestSet(inst.Util)
	b.Order = budgetOrder(b.Star, inst.Budgets)
	b.generateSeq()
	b.computeAnchors()
	return b, nil
}

// bestSet mirrors utility.BestSet (duplicated to keep this package
// dependent only on itemset).
func bestSet(util []float64) itemset.Set {
	best := itemset.Set(0)
	for s := 1; s < len(util); s++ {
		set := itemset.Set(s)
		if util[s] > util[best] || (util[s] == util[best] && set.Size() > best.Size()) {
			best = set
		}
	}
	return best
}

// budgetOrder returns the items of star sorted by non-increasing budget;
// ties break toward the smaller original index (any fixed rule works for
// the analysis).
func budgetOrder(star itemset.Set, budgets []int) []int {
	items := star.Items()
	sort.SliceStable(items, func(a, b int) bool {
		return budgets[items[a]] > budgets[items[b]]
	})
	return items
}

// toLocal maps a set over original items into the local index space where
// item Order[j] has index j; only items inside Star are representable.
func (b *Blocks) toLocal(s itemset.Set) itemset.Set {
	var out itemset.Set
	for j, it := range b.Order {
		if s.Has(it) {
			out = out.Add(j)
		}
	}
	return out
}

// fromLocal maps back to original item indices.
func (b *Blocks) fromLocal(s itemset.Set) itemset.Set {
	var out itemset.Set
	for j, it := range b.Order {
		if s.Has(j) {
			out = out.Add(it)
		}
	}
	return out
}

// utilLocal evaluates the utility of a local-index set.
func (b *Blocks) utilLocal(s itemset.Set) float64 {
	return b.inst.Util[b.fromLocal(s)]
}

// generateSeq runs the Fig. 3 process. With items indexed in
// non-increasing budget order, the paper's precedence order ≺ over
// subsets is exactly numeric order of the local bitmask (rules 1 and 2
// both reduce to comparing the masks as integers), so the scan is a plain
// ascending loop over masks, restarted after every selection.
func (b *Blocks) generateSeq() {
	kk := len(b.Order)
	full := itemset.All(kk)
	var chosen itemset.Set // union of selected blocks (local indices)
	for chosen != full {
		selected := false
		for mask := itemset.Set(1); mask <= full; mask++ {
			if !mask.SubsetOf(full) || mask.Overlaps(chosen) {
				continue
			}
			marginal := b.utilLocal(chosen.Union(mask)) - b.utilLocal(chosen)
			if marginal >= 0 {
				b.Seq = append(b.Seq, b.fromLocal(mask))
				b.Deltas = append(b.Deltas, marginal)
				chosen = chosen.Union(mask)
				selected = true
				break
			}
		}
		if !selected {
			// Cannot happen when Star is a local maximum (the remainder
			// always has non-negative marginal as a whole); guard against
			// malformed utility tables.
			rest := full.Minus(chosen)
			b.Seq = append(b.Seq, b.fromLocal(rest))
			b.Deltas = append(b.Deltas, b.utilLocal(full)-b.utilLocal(chosen))
			chosen = full
		}
	}
}

// blockBudget returns the minimum budget of any item in the block.
func (b *Blocks) blockBudget(blk itemset.Set) int {
	min := -1
	for _, it := range blk.Items() {
		if min < 0 || b.inst.Budgets[it] < min {
			min = b.inst.Budgets[it]
		}
	}
	return min
}

// computeAnchors derives anchor blocks, anchor items and effective
// budgets per the definitions before Lemma 6: the anchor block of B_i is
// the minimum-budget block among B_1..B_i (ties toward the highest
// index), and the anchor item is its highest-indexed (minimum-budget)
// item.
func (b *Blocks) computeAnchors() {
	t := len(b.Seq)
	b.AnchorBlock = make([]int, t)
	b.AnchorItem = make([]int, t)
	b.EffBudget = make([]int, t)
	bestIdx := -1
	bestBudget := 0
	for i := 0; i < t; i++ {
		bb := b.blockBudget(b.Seq[i])
		if bestIdx < 0 || bb <= bestBudget {
			bestIdx, bestBudget = i, bb
		}
		b.AnchorBlock[i] = bestIdx
		b.AnchorItem[i] = b.highestIndexedItem(b.Seq[bestIdx])
		b.EffBudget[i] = bestBudget
	}
}

// highestIndexedItem returns the item of blk with the highest local index
// (= minimum budget under the ordering), as an original item index.
func (b *Blocks) highestIndexedItem(blk itemset.Set) int {
	local := b.toLocal(blk)
	return b.Order[local.Max()]
}

// T returns the number of blocks.
func (b *Blocks) T() int { return len(b.Seq) }

// UnionPrefix returns B_1 ∪ ... ∪ B_i (1-based i; i=0 gives ∅).
func (b *Blocks) UnionPrefix(i int) itemset.Set {
	var u itemset.Set
	for j := 0; j < i && j < len(b.Seq); j++ {
		u = u.Union(b.Seq[j])
	}
	return u
}

// PartitionDeltas computes the Property-3 decomposition of an arbitrary
// A ⊆ I*: Δ^A_i = U(A_i | A_1 ∪ ... ∪ A_{i-1}) with A_i = A ∩ B_i.
// The returned slice sums to U(A).
func (b *Blocks) PartitionDeltas(a itemset.Set) []float64 {
	out := make([]float64, len(b.Seq))
	var prefix itemset.Set
	for i, blk := range b.Seq {
		ai := a.Intersect(blk)
		out[i] = b.inst.Util[prefix.Union(ai)] - b.inst.Util[prefix]
		prefix = prefix.Union(ai)
	}
	return out
}

// Precedes reports whether S ≺ S' under the paper's precedence order,
// exposed for tests. Both sets are over original item indices and must be
// subsets of Star.
func (b *Blocks) Precedes(s, sp itemset.Set) bool {
	return b.toLocal(s) < b.toLocal(sp)
}
