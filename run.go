package welfare

import (
	"context"

	"uicwelfare/internal/core"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
)

// Canonical algorithm names, re-exported from the core planner registry
// so callers, CLI flags, and service payloads share one spelling.
const (
	AlgoBundleGRD      = core.AlgoBundleGRD
	AlgoItemDisjoint   = core.AlgoItemDisjoint
	AlgoBundleDisjoint = core.AlgoBundleDisjoint
	// DefaultAlgorithm is what Run uses when WithAlgorithm is omitted.
	DefaultAlgorithm = core.DefaultAlgorithm
)

// AlgorithmInfo describes one registered planner (name, description,
// capability flags).
type AlgorithmInfo = core.Meta

// Algorithms lists the registered planners. Anything registered through
// core.Register — including third-party planners — shows up here and is
// runnable by name through Run.
func Algorithms() []AlgorithmInfo { return core.Algorithms() }

// AlgorithmNames lists the registered algorithm names in registration
// order.
func AlgorithmNames() []string { return core.Names() }

// Progress is one progress report from a running allocation: sketch
// construction rounds (Stage "sketch", Done/Total in RR sets) and
// Monte-Carlo estimation (Stage "estimate", Done/Total in runs).
type Progress = progress.Event

// RunOption configures Run via the functional-options convention.
type RunOption func(*runConfig)

type runConfig struct {
	algo       string
	opts       core.Options
	seed       uint64
	runs       int
	estWorkers int
}

// WithAlgorithm selects the planner by registry name (see
// AlgorithmNames); the default is DefaultAlgorithm (bundleGRD).
func WithAlgorithm(name string) RunOption { return func(c *runConfig) { c.algo = name } }

// WithEps sets the approximation slack ε (default: the paper's 0.5).
func WithEps(eps float64) RunOption { return func(c *runConfig) { c.opts.Eps = eps } }

// WithEll sets the confidence exponent ℓ (default: the paper's 1).
func WithEll(ell float64) RunOption { return func(c *runConfig) { c.opts.Ell = ell } }

// WithCascade selects the diffusion model (CascadeIC default, or
// CascadeLT).
func WithCascade(c Cascade) RunOption { return func(rc *runConfig) { rc.opts.Cascade = c } }

// WithSeed seeds the deterministic RNGs: seed for seed selection,
// seed+1 for the welfare estimate (default 1).
func WithSeed(seed uint64) RunOption { return func(c *runConfig) { c.seed = seed } }

// WithProgress registers a callback receiving Progress events as the
// run proceeds. The callback must be fast; when the run estimates with
// parallel workers (WithEstimateWorkers), it must also be safe for
// concurrent calls.
func WithProgress(fn func(Progress)) RunOption {
	return func(c *runConfig) { c.opts.Progress = progress.Func(fn) }
}

// WithRuns appends a Monte-Carlo welfare estimate of the allocation
// with the given number of runs (default: no estimate).
func WithRuns(runs int) RunOption { return func(c *runConfig) { c.runs = runs } }

// WithEstimateWorkers shards the welfare estimate across n goroutines
// (default: sequential).
func WithEstimateWorkers(n int) RunOption { return func(c *runConfig) { c.estWorkers = n } }

// RunResult is an allocation run's outcome: the core Result plus the
// resolved algorithm name and, when WithRuns was given, the welfare
// estimate.
type RunResult struct {
	Result
	// Algorithm is the resolved registry name of the planner that ran.
	Algorithm string
	// Welfare is the Monte-Carlo estimate; nil unless WithRuns was set.
	Welfare *WelfareEstimate
}

// Run solves a WelMax instance through the planner registry — the
// context-aware entrypoint superseding the positional BundleGRD /
// ItemDisjoint / BundleDisjoint free functions:
//
//	res, err := welfare.Run(ctx, p,
//	    welfare.WithAlgorithm(welfare.AlgoBundleGRD),
//	    welfare.WithEps(0.3),
//	    welfare.WithSeed(1),
//	    welfare.WithRuns(10000),
//	    welfare.WithProgress(func(ev welfare.Progress) { ... }))
//
// Canceling ctx stops sketch construction and estimation promptly; Run
// then returns ctx.Err() (context.Canceled or context.DeadlineExceeded).
func Run(ctx context.Context, p *Problem, options ...RunOption) (*RunResult, error) {
	cfg := runConfig{seed: 1}
	for _, o := range options {
		o(&cfg)
	}
	planner, meta, err := core.Lookup(cfg.algo)
	if err != nil {
		return nil, err
	}
	res, err := planner.Plan(ctx, p, cfg.opts, stats.NewRNG(cfg.seed))
	if err != nil {
		return nil, err
	}
	out := &RunResult{Result: res, Algorithm: meta.Name}
	if cfg.runs > 0 {
		est, err := uic.EstimateWelfareParallelCascadeCtx(ctx, p.G, p.Model, cfg.opts.Cascade,
			res.Alloc, stats.NewRNG(cfg.seed+1), cfg.runs, cfg.estWorkers, cfg.opts.Progress)
		if err != nil {
			return nil, err
		}
		out.Welfare = &est
	}
	return out, nil
}

// EstimateWelfareCtx is EstimateWelfare with cooperative cancellation,
// an explicit cascade model, optional parallel workers, and progress
// reporting — the estimator companion to Run for callers that allocate
// and estimate in separate steps. Pass the cascade the allocation was
// planned under (CascadeIC unless WithCascade said otherwise).
func EstimateWelfareCtx(ctx context.Context, p *Problem, alloc *Allocation, cascade Cascade, rng *RNG, runs, workers int, fn func(Progress)) (WelfareEstimate, error) {
	return uic.EstimateWelfareParallelCascadeCtx(ctx, p.G, p.Model, cascade, alloc, rng, runs, workers, progress.Func(fn))
}
