// Package sweep is the experiment-sweep subsystem's shared core: the
// declarative grid spec POST /v1/sweeps accepts, its deterministic
// expansion into cells, and the filter/aggregate queries GET
// /v1/sweeps/{id}/results serves. The paper's entire evaluation is a
// parameter sweep (utility distributions × ε × budgets × algorithms
// over each network); this package turns that shape into a first-class
// wire object that both the single-node service and the cluster router
// execute — the service runs cells through its own job pool, the router
// partitions them by graph owner and dispatches across shards.
package sweep

import (
	"encoding/json"
	"fmt"
)

// Grid caps. Each axis is bounded, and the expanded product is bounded
// again by MaxCells — a sweep is a batch of ordinary requests, and every
// cell passes the service's own validation and admission on top.
const (
	// MaxCells bounds the expanded grid.
	MaxCells = 512
	// MaxAxis bounds each spec axis (graphs, configs, eps, budget
	// vectors, algos).
	MaxAxis = 32
	// MaxRepeats bounds per-cell repetitions.
	MaxRepeats = 16
)

// Spec is the declarative grid POST /v1/sweeps accepts: the cross
// product of graphs × utility configs × ε × budget vectors × planners ×
// cascades, each combination repeated Repeats times under distinct
// seeds. Zero-valued axes default (one config1 / default-planner / IC /
// default-ε cell per graph × budgets combination).
type Spec struct {
	// Name is an optional label carried into the result artifact.
	Name string `json:"name,omitempty"`
	// GraphIDs are resident graph ids (content-addressed, as returned by
	// POST /v1/graphs).
	GraphIDs []string `json:"graph_ids"`
	// Configs are utility-model configurations ("config1", "config3",
	// "additive", ... — the paper's utility distributions). Default:
	// ["config1"].
	Configs []string `json:"configs,omitempty"`
	// Eps are RR-sketch approximation parameters; 0 means the service
	// default. Default: [0].
	Eps []float64 `json:"eps,omitempty"`
	// Budgets are budget vectors (one inner vector per cell axis value).
	Budgets [][]int `json:"budgets"`
	// Algos are planner registry names; "" means the default planner.
	// Default: [""].
	Algos []string `json:"algos,omitempty"`
	// Cascades are diffusion models ("ic", "lt"); "" means "ic".
	// Default: ["ic"].
	Cascades []string `json:"cascades,omitempty"`
	// Repeats runs each grid point this many times under distinct seeds
	// (default 1).
	Repeats int `json:"repeats,omitempty"`
	// Runs is the per-cell Monte-Carlo welfare-estimate count (0 = no
	// estimate; the cell result then carries the allocation only).
	Runs int `json:"runs,omitempty"`
	// Workers bounds each cell's estimate parallelism (0 = service
	// default).
	Workers int `json:"workers,omitempty"`
	// Items is the per-cell item-count hint forwarded to the utility
	// model (0 = derived from the budget vector).
	Items int `json:"items,omitempty"`
	// Seed is the base RNG seed; repeat r of any grid point uses Seed+r.
	Seed uint64 `json:"seed,omitempty"`
}

// Cell is one expanded grid point.
type Cell struct {
	Index   int     `json:"index"`
	ID      string  `json:"id"`
	GraphID string  `json:"graph_id"`
	Config  string  `json:"config"`
	Eps     float64 `json:"eps,omitempty"`
	Budgets []int   `json:"budgets"`
	Algo    string  `json:"algo,omitempty"`
	Cascade string  `json:"cascade"`
	Rep     int     `json:"rep"`
	Seed    uint64  `json:"seed"`
}

// normalize applies the spec's axis defaults in place.
func (s *Spec) normalize() {
	if len(s.Configs) == 0 {
		s.Configs = []string{"config1"}
	}
	if len(s.Eps) == 0 {
		s.Eps = []float64{0}
	}
	if len(s.Algos) == 0 {
		s.Algos = []string{""}
	}
	if len(s.Cascades) == 0 {
		s.Cascades = []string{"ic"}
	}
	for i, c := range s.Cascades {
		if c == "" {
			s.Cascades[i] = "ic"
		}
	}
	if s.Repeats <= 0 {
		s.Repeats = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

// Expand validates the spec's structure and expands it into the
// deterministic cell list (graphs × configs × eps × budgets × algos ×
// cascades × repeats, in that nesting order). Semantic validation of
// each cell — unknown graph/algo/config, workload caps — is the
// executing service's job; Expand only enforces the grid's shape.
func Expand(s *Spec) ([]Cell, error) {
	s.normalize()
	if len(s.GraphIDs) == 0 {
		return nil, fmt.Errorf("graph_ids required")
	}
	if len(s.Budgets) == 0 {
		return nil, fmt.Errorf("budgets required (a list of budget vectors)")
	}
	for name, n := range map[string]int{
		"graph_ids": len(s.GraphIDs), "configs": len(s.Configs), "eps": len(s.Eps),
		"budgets": len(s.Budgets), "algos": len(s.Algos), "cascades": len(s.Cascades),
	} {
		if n > MaxAxis {
			return nil, fmt.Errorf("%s axis has %d values, limit %d", name, n, MaxAxis)
		}
	}
	if s.Repeats > MaxRepeats {
		return nil, fmt.Errorf("repeats %d exceeds the limit of %d", s.Repeats, MaxRepeats)
	}
	for i, b := range s.Budgets {
		if len(b) == 0 {
			return nil, fmt.Errorf("budgets[%d] is empty", i)
		}
	}
	total := len(s.GraphIDs) * len(s.Configs) * len(s.Eps) * len(s.Budgets) *
		len(s.Algos) * len(s.Cascades) * s.Repeats
	if total > MaxCells {
		return nil, fmt.Errorf("grid expands to %d cells, limit %d (shrink an axis or split the sweep)", total, MaxCells)
	}
	cells := make([]Cell, 0, total)
	for _, g := range s.GraphIDs {
		for _, cfg := range s.Configs {
			for _, eps := range s.Eps {
				for _, budgets := range s.Budgets {
					for _, algo := range s.Algos {
						for _, cascade := range s.Cascades {
							for rep := 0; rep < s.Repeats; rep++ {
								i := len(cells)
								cells = append(cells, Cell{
									Index:   i,
									ID:      fmt.Sprintf("c%d", i),
									GraphID: g,
									Config:  cfg,
									Eps:     eps,
									Budgets: budgets,
									Algo:    algo,
									Cascade: cascade,
									Rep:     rep,
									Seed:    s.Seed + uint64(rep),
								})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// Marshal returns the spec's canonical JSON (the form the result
// artifact embeds).
func (s *Spec) Marshal() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	return b
}

// Summary is the compact terminal result of a sweep job (JobView.Result
// for kind "sweep"): state counts plus the content id of the persisted
// artifact. The full per-cell rows live in the artifact and behind GET
// /v1/sweeps/{id}/results, not in the job record — job records spill to
// the audit trail, and a 512-cell result does not belong there.
type Summary struct {
	SweepID string `json:"sweep_id"`
	Name    string `json:"name,omitempty"`
	Cells   int    `json:"cells"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	// Canceled counts cells abandoned because the sweep itself was
	// canceled mid-flight.
	Canceled int `json:"canceled"`
	// ArtifactID is the content-addressed id of the .wsr result artifact
	// (doubling as its checksum); Persisted reports whether it was
	// written to the store tier (false without a data/spill dir — the
	// result is then served from memory only).
	ArtifactID string `json:"artifact_id"`
	Persisted  bool   `json:"persisted"`
	ElapsedMS  int64  `json:"elapsed_ms"`
}
