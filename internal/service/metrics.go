package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/telemetry"
	"uicwelfare/internal/tracestore"
)

// handleMetrics implements GET /v1/metrics: the backend's latency
// histograms and operational gauges. The default rendering is
// Prometheus text exposition; ?format=json serves the same data as a
// telemetry.Export — the machine-mergeable form the cluster router
// fetches from every shard and sums into its own exposition.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	export := telemetry.Export{Histograms: s.metrics.Snapshot(), Gauges: s.gauges()}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, export)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, export.Histograms, export.Gauges)
}

// gauges assembles the point-in-time metrics from the same sources
// /v1/stats reads, plus the per-graph cost-model calibration. Names are
// stable: the router relays them per backend (adding a node label), so
// renaming one breaks merged dashboards.
func (s *Service) gauges() []telemetry.Gauge {
	st := s.Stats()
	out := []telemetry.Gauge{
		{Name: "welmax_graphs", Value: float64(st.Graphs)},
		{Name: "welmax_sketch_cache_entries", Value: float64(st.SketchCache.Entries)},
		{Name: "welmax_sketch_cache_hits", Value: float64(st.SketchCache.Hits)},
		{Name: "welmax_sketch_cache_misses", Value: float64(st.SketchCache.Misses)},
		{Name: "welmax_sketch_cache_evictions", Value: float64(st.SketchCache.Evictions)},
		{Name: "welmax_sketch_cache_expirations", Value: float64(st.SketchCache.Expirations)},
		{Name: "welmax_sketch_cache_cost_bytes", Value: float64(st.SketchCache.CostBytes)},
		{Name: "welmax_batch_builds", Value: float64(st.Batch.Batched)},
		{Name: "welmax_batch_coalesced_requests", Value: float64(st.Batch.CoalescedRequests)},
		{Name: "welmax_admission_rejects", Value: float64(st.Batch.AdmissionRejects)},
		// welmax_admission_max_bytes is the configured admission budget
		// (0 = admission disabled). The router's sweep pre-admission
		// reads it per backend to price cells at the edge.
		{Name: "welmax_admission_max_bytes", Value: float64(s.admissionBytes)},
		{Name: "welmax_jobs_queue_depth", Value: float64(st.QueueDepth)},
		{Name: "welmax_workers_busy", Value: float64(st.BusyWorkers)},
		{Name: "welmax_cost_ratio_global", Value: st.Batch.CostRatio},
		{Name: "welmax_sweep_cells_total",
			Labels: []telemetry.Label{{Name: "state", Value: "done"}},
			Value:  float64(st.Sweeps.CellsDone)},
		{Name: "welmax_sweep_cells_total",
			Labels: []telemetry.Label{{Name: "state", Value: "failed"}},
			Value:  float64(st.Sweeps.CellsFailed)},
		{Name: "welmax_sweep_cells_total",
			Labels: []telemetry.Label{{Name: "state", Value: "canceled"}},
			Value:  float64(st.Sweeps.CellsCanceled)},
	}
	perGraph := s.costModels.PerGraph()
	sort.Slice(perGraph, func(i, j int) bool { return perGraph[i].GraphID < perGraph[j].GraphID })
	for _, g := range perGraph {
		out = append(out, telemetry.Gauge{
			Name:   "welmax_graph_cost_ratio",
			Labels: []telemetry.Label{{Name: "graph_id", Value: g.GraphID}},
			Value:  g.Ratio,
		})
	}
	out = append(out, telemetry.BuildInfoGauge())
	out = append(out, JournalGauges(s.flight)...)
	out = append(out, TraceStoreGauges(s.traces)...)
	out = append(out, ResourceTotalGauges()...)
	return out
}

// TraceStoreGauges exposes a trace store's tail-sampling health: how
// many completed traces were offered, how many the sampler kept versus
// discarded, and whether the spill path is losing segments. Exported
// because the cluster router renders its own store through the same
// series. A nil store (telemetry off) contributes nothing.
func TraceStoreGauges(ts *tracestore.Store) []telemetry.Gauge {
	if ts == nil {
		return nil
	}
	st := ts.Stats()
	return []telemetry.Gauge{
		{Name: "welmax_trace_offered_total", Value: float64(st.Offered)},
		{Name: "welmax_trace_kept_total", Value: float64(st.Kept)},
		{Name: "welmax_trace_sampled_out_total", Value: float64(st.SampledOut)},
		{Name: "welmax_trace_ring_depth", Value: float64(st.RingLen)},
		{Name: "welmax_trace_ring_capacity", Value: float64(st.RingCap)},
		{Name: "welmax_trace_segments_total", Value: float64(st.Segments)},
		{Name: "welmax_trace_spill_errors_total", Value: float64(st.SpillErrors)},
	}
}

// JournalGauges exposes a flight recorder's health: how much it has
// seen, how full the ring is, and whether the spill path is losing or
// failing to persist events. Exported because the cluster router
// renders its own recorder through the same series.
func JournalGauges(rec *journal.Recorder) []telemetry.Gauge {
	js := rec.Stats()
	return []telemetry.Gauge{
		{Name: "welmax_journal_events_total", Value: float64(js.Recorded)},
		{Name: "welmax_journal_dropped_total", Value: float64(js.Dropped)},
		{Name: "welmax_journal_ring_depth", Value: float64(js.RingLen)},
		{Name: "welmax_journal_ring_capacity", Value: float64(js.RingCap)},
		{Name: "welmax_journal_segments_total", Value: float64(js.Segments)},
		{Name: "welmax_journal_spill_errors_total", Value: float64(js.SpillErrors)},
	}
}

// ResourceTotalGauges renders the process-wide per-trace resource
// accumulators as welmax_resource_total{kind}, sorted for a stable
// exposition order. Exported for the cluster router's exposition.
func ResourceTotalGauges() []telemetry.Gauge {
	totals := telemetry.ResourceTotals()
	kinds := make([]string, 0, len(totals))
	for k := range totals {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]telemetry.Gauge, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, telemetry.Gauge{
			Name:   "welmax_resource_total",
			Labels: []telemetry.Label{{Name: "kind", Value: k}},
			Value:  float64(totals[k]),
		})
	}
	return out
}

// observeTrace records a finished unit of work into the histograms: its
// total duration under welmax_job_duration_seconds{kind} and each of
// its trace's stages under welmax_stage_duration_seconds{stage,family}.
// The trace id rides along as the bucket exemplar, so the histogram can
// answer "which trace was that slow one" (GET /v1/traces/{id}).
func (s *Service) observeTrace(kind string, tr *telemetry.Trace, elapsed time.Duration) {
	s.metrics.ObserveEx("welmax_job_duration_seconds",
		[]telemetry.Label{{Name: "kind", Value: kind}}, elapsed, tr.ID())
	stages := tr.Stages()
	if len(stages) == 0 {
		return
	}
	family := tr.Family()
	if family == "" {
		family = "none"
	}
	// Stage histograms carry no exemplars: the drill-down runs from the
	// route- and kind-level series, and skipping the per-stage exemplar
	// bookkeeping keeps the warm path inside the telemetry overhead
	// budget (scripts/bench_snapshot.sh guards it).
	for stage, st := range stages {
		s.metrics.Observe("welmax_stage_duration_seconds",
			[]telemetry.Label{{Name: "stage", Value: stage}, {Name: "family", Value: family}}, st.Total())
	}
}

// finishJob is the worker-side epilogue of every HTTP-enqueued job: it
// attaches the trace's span timings to the job record, feeds the
// histograms, offers the completed trace to the trace store's
// tail-sampler, emits the structured slow-request log line when the run
// crossed the threshold, and finalizes the job. It runs whether the job
// succeeded, failed, or was canceled — slow failures are exactly the
// requests worth finding in the log.
func (s *Service) finishJob(id, kind, graphID string, tr *telemetry.Trace, started time.Time, result any, err error) {
	elapsed := time.Since(started)
	s.jobs.SetStages(id, tr.Stages())
	s.jobs.SetResources(id, tr.Resources())
	if s.telemetryOn {
		s.observeTrace(kind, tr, elapsed)
		rec := tracestore.Record{
			TraceID:      tr.ID(),
			Route:        kind,
			Graph:        graphID,
			Start:        tr.Start(),
			DurationMS:   float64(elapsed) / float64(time.Millisecond),
			Slow:         s.slowThreshold > 0 && elapsed >= s.slowThreshold,
			Queued:       tr.Resources()[telemetry.ResQueueWaitMS] > 0,
			Spans:        tr.Spans(),
			SpansDropped: tr.DroppedSpans(),
			Resources:    tr.Resources(),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		s.traces.Add(rec)
		if rec.Slow {
			s.logSlowJob(id, kind, tr, elapsed, err)
		}
	}
	s.jobs.Finish(id, result, err)
}

// logSlowJob emits one structured (JSON) log line for a job that ran at
// or beyond the slow threshold, carrying the trace id and the stage
// breakdown so a slow request can be diagnosed from the log alone.
func (s *Service) logSlowJob(id, kind string, tr *telemetry.Trace, elapsed time.Duration, err error) {
	entry := map[string]any{
		"msg":        "slow_request",
		"job_id":     id,
		"kind":       kind,
		"trace_id":   tr.ID(),
		"elapsed_ms": float64(elapsed) / float64(time.Millisecond),
	}
	if stages := tr.Stages(); len(stages) > 0 {
		entry["stages"] = stages
	}
	if resources := tr.Resources(); len(resources) > 0 {
		entry["resources"] = resources
	}
	if err != nil {
		entry["error"] = err.Error()
	}
	line, jerr := json.Marshal(entry)
	if jerr != nil {
		s.slowLogf("slow_request job=%s kind=%s trace=%s elapsed=%v", id, kind, tr.ID(), elapsed)
		return
	}
	s.slowLogf("%s", line)
}

// Metrics exposes the histogram registry (the cluster router's merge
// path and tests read it; handlers go through /v1/metrics).
func (s *Service) Metrics() *telemetry.Metrics { return s.metrics }
