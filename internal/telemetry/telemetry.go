// Package telemetry is welmaxd's observability substrate: request
// traces with per-stage span timing, and lock-free log-bucketed latency
// histograms exported in Prometheus text format. It sits below every
// other tier (no repo-internal imports), so the sketch builders
// (rrset, imm, prima), the service, the batch scheduler, and the
// cluster router can all record into one shared vocabulary:
//
//   - a Trace is minted per request (or adopted from the TraceHeader),
//     travels in the context, and accumulates how often each named
//     stage ran and how long it took in total — bounded state, however
//     many spans a build records;
//   - StartSpan(ctx, stage) times one stage occurrence and is a no-op
//     without a trace in ctx (library callers pay nothing);
//   - Metrics is a registry of labeled histograms whose bucket
//     increments are plain atomics, exportable as Prometheus text or as
//     a JSON Export the cluster router merges across shards.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace id. The
// cluster router mints one when the client did not send one, backends
// adopt an inbound id or mint their own, and every response echoes the
// id back so a client can correlate its request with job records, SSE
// events, and slow-request logs.
const TraceHeader = "X-Welmax-Trace-Id"

// maxTraceIDLen bounds adopted trace ids: the id is echoed into logs,
// job records, and SSE frames, so an unbounded client-chosen value
// would let one request bloat all three.
const maxTraceIDLen = 64

// NewTraceID mints a random 16-hex-digit trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant id only degrades correlation, so don't.
		return "trace-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeID normalizes an externally supplied trace id: control
// characters (which would corrupt log lines and SSE frames) are
// stripped, overlong ids are truncated, and an empty result mints a
// fresh id.
func SanitizeID(id string) string {
	clean := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(clean) < maxTraceIDLen; i++ {
		if c := id[i]; c > 0x20 && c < 0x7f {
			clean = append(clean, c)
		}
	}
	if len(clean) == 0 {
		return NewTraceID()
	}
	return string(clean)
}

// StageStats is the accumulated timing of one named stage within a
// trace: how many spans ran and their total duration. It is the wire
// form stored on job records (JobView.Stages → history.jsonl).
type StageStats struct {
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Total returns the accumulated duration.
func (s StageStats) Total() time.Duration {
	return time.Duration(s.TotalMS * float64(time.Millisecond))
}

// Resource kinds accumulated per trace by the serving tiers. Like
// stage names they are an open vocabulary — these constants just keep
// the recorders and the readers (JobView.Resources, the slow-request
// log, welmax_resource_total) spelling them identically.
const (
	ResRRSetsGrown      = "rr_sets_grown"
	ResSketchBytesBuilt = "sketch_bytes_built"
	ResCacheHits        = "cache_hits"
	ResCacheMisses      = "cache_misses"
	ResQueueWaitMS      = "queue_wait_ms"
	ResBytesShipped     = "bytes_shipped"
)

// resourceTotals aggregates every AddResource across all traces in the
// process — the backing store of the welmax_resource_total{kind}
// counters. Bounded by the resource-kind vocabulary, not by traffic.
var (
	resTotalsMu sync.Mutex
	resTotals   = map[string]int64{}
)

// ResourceTotals snapshots the process-wide per-kind resource counters.
func ResourceTotals() map[string]int64 {
	resTotalsMu.Lock()
	defer resTotalsMu.Unlock()
	out := make(map[string]int64, len(resTotals))
	for k, v := range resTotals {
		out[k] = v
	}
	return out
}

// Trace accumulates per-stage span timings for one request. It stores
// totals per stage name, not individual span events, so a sketch build
// recording thousands of rrset_grow spans costs one map entry. A nil
// *Trace is valid everywhere and records nothing; a disabled trace
// keeps its id (cheap correlation stays on) but drops span timings.
type Trace struct {
	id      string
	enabled bool

	mu        sync.Mutex
	family    string
	stages    map[string]StageStats
	resources map[string]int64
}

// NewTrace returns a trace with the given id. enabled=false keeps the
// id for correlation but makes every span a no-op (-telemetry=off).
func NewTrace(id string, enabled bool) *Trace {
	return &Trace{id: id, enabled: enabled}
}

// ID returns the trace id ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Enabled reports whether spans are recorded.
func (t *Trace) Enabled() bool { return t != nil && t.enabled }

// SetFamily labels the trace with the planner's sketch family
// ("prima", "imm"); the stage-duration histograms carry it.
func (t *Trace) SetFamily(family string) {
	if t == nil || family == "" {
		return
	}
	t.mu.Lock()
	t.family = family
	t.mu.Unlock()
}

// Family returns the sketch-family label ("" when unset or nil).
func (t *Trace) Family() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.family
}

// Record adds one completed span of the named stage.
func (t *Trace) Record(stage string, d time.Duration) {
	if !t.Enabled() {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	if t.stages == nil {
		t.stages = map[string]StageStats{}
	}
	st := t.stages[stage]
	st.Count++
	st.TotalMS += float64(d) / float64(time.Millisecond)
	t.stages[stage] = st
	t.mu.Unlock()
}

// StartSpan starts timing one occurrence of stage and returns the
// function ending it. The end function is idempotent and safe to call
// from a different goroutine than the starter — hot paths that may end
// a span early (e.g. a cache-lookup span ended when the build callback
// starts, or a batch-gather span ended from the scheduler's timer
// goroutine) can also defer it safely. On a nil or disabled trace both
// directions are no-ops.
func (t *Trace) StartSpan(stage string) func() {
	if !t.Enabled() {
		return func() {}
	}
	start := time.Now()
	var ended atomic.Bool
	return func() {
		if ended.Swap(true) {
			return
		}
		t.Record(stage, time.Since(start))
	}
}

// AddResource accumulates n units of a resource kind against the
// trace (rr_sets_grown, cache_hits, bytes_shipped, ...) and against
// the process-wide totals. Like span timings it is gated on Enabled,
// so -telemetry=off requests pay nothing.
func (t *Trace) AddResource(kind string, n int64) {
	if !t.Enabled() || n == 0 {
		return
	}
	t.mu.Lock()
	if t.resources == nil {
		t.resources = map[string]int64{}
	}
	t.resources[kind] += n
	t.mu.Unlock()
	resTotalsMu.Lock()
	resTotals[kind] += n
	resTotalsMu.Unlock()
}

// Resources snapshots the trace's accumulated resource counters (nil
// when nothing was recorded) — the block that lands on JobView and the
// slow-request log.
func (t *Trace) Resources() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.resources) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.resources))
	for k, v := range t.resources {
		out[k] = v
	}
	return out
}

// Stages snapshots the accumulated per-stage timings.
func (t *Trace) Stages() map[string]StageStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stages) == 0 {
		return nil
	}
	out := make(map[string]StageStats, len(t.stages))
	for k, v := range t.stages {
		out[k] = v
	}
	return out
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying t. Attaching a nil trace returns ctx
// unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StartSpan times one occurrence of stage against the trace in ctx; a
// context without a trace gets a no-op end function. This is the hook
// the library tiers (rrset, imm, prima, batch) call — they stay
// ignorant of whether anyone is tracing.
func StartSpan(ctx context.Context, stage string) func() {
	return FromContext(ctx).StartSpan(stage)
}

// AddResource accumulates a resource count against the trace in ctx; a
// context without a trace records nothing. Same contract as StartSpan:
// the library tiers call it without knowing whether anyone is tracing.
func AddResource(ctx context.Context, kind string, n int64) {
	FromContext(ctx).AddResource(kind, n)
}
