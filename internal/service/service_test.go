package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/service"
)

// env is one running daemon under test.
type env struct {
	t   *testing.T
	svc *service.Service
	srv *httptest.Server
}

func newEnv(t *testing.T, opts service.Options) *env {
	t.Helper()
	svc, err := service.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return &env{t: t, svc: svc, srv: srv}
}

func (e *env) do(method, path string, body any) (int, []byte) {
	e.t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte: // pre-encoded (possibly malformed) payload
		rd = bytes.NewReader(b)
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, e.srv.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := e.srv.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func (e *env) doJSON(method, path string, body, out any, wantStatus int) {
	e.t.Helper()
	status, raw := e.do(method, path, body)
	if status != wantStatus {
		e.t.Fatalf("%s %s: status %d, want %d: %s", method, path, status, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			e.t.Fatalf("%s %s: bad response %q: %v", method, path, raw, err)
		}
	}
}

// registerGraph loads a small built-in network and returns its id.
func (e *env) registerGraph(t *testing.T) string {
	t.Helper()
	var info service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Network: "flixster", Scale: 0.02}, &info, http.StatusCreated)
	if info.ID == "" || info.Nodes < 100 || info.Edges == 0 {
		t.Fatalf("bad graph info: %+v", info)
	}
	return info.ID
}

// jobView mirrors JobView with a typed allocate result.
type allocJobView struct {
	ID     string                  `json:"id"`
	Kind   string                  `json:"kind"`
	State  service.JobState        `json:"state"`
	Error  string                  `json:"error"`
	Result *service.AllocateResult `json:"result"`
}

type estJobView struct {
	ID     string                  `json:"id"`
	State  service.JobState        `json:"state"`
	Error  string                  `json:"error"`
	Result *service.EstimateResult `json:"result"`
}

// submit posts an async request and returns the job id.
func (e *env) submit(t *testing.T, path string, req any) string {
	t.Helper()
	var out struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}
	e.doJSON("POST", path, req, &out, http.StatusAccepted)
	if out.JobID == "" || out.State != string(service.JobQueued) {
		t.Fatalf("bad submission response: %+v", out)
	}
	return out.JobID
}

// waitJob polls until the job leaves the queued/running states.
func (e *env) waitJob(t *testing.T, id string, out any) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var probe struct {
			State service.JobState `json:"state"`
		}
		status, raw := e.do("GET", "/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, status, raw)
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatal(err)
		}
		if probe.State.Terminal() {
			if err := json.Unmarshal(raw, out); err != nil {
				t.Fatal(err)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}

func TestHealthz(t *testing.T) {
	e := newEnv(t, service.Options{})
	var out map[string]string
	e.doJSON("GET", "/healthz", nil, &out, http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz: %v", out)
	}
}

func TestGraphRegistration(t *testing.T) {
	e := newEnv(t, service.Options{})
	id := e.registerGraph(t)

	// Inline edge list, kept probabilities.
	var inline service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{
		Name:      "triangle",
		Edges:     "0 1 0.5\n1 2 0.5\n2 0 0.5\n",
		KeepProbs: true,
	}, &inline, http.StatusCreated)
	if inline.Nodes != 3 || inline.Edges != 3 || inline.Name != "triangle" {
		t.Fatalf("inline graph info: %+v", inline)
	}

	var list struct {
		Graphs []service.GraphInfo `json:"graphs"`
	}
	e.doJSON("GET", "/v1/graphs", nil, &list, http.StatusOK)
	if len(list.Graphs) != 2 {
		t.Fatalf("want 2 graphs, got %+v", list.Graphs)
	}

	var got service.GraphInfo
	e.doJSON("GET", "/v1/graphs/"+id, nil, &got, http.StatusOK)
	if got.ID != id {
		t.Fatalf("get graph: %+v", got)
	}

	// Errors.
	for _, req := range []service.GraphRequest{
		{},                                  // no source
		{Network: "flixster", Edges: "0 1"}, // two sources
		{Network: "nope"},                   // unknown builtin
		{Edges: "not an edge list"},         // parse failure
	} {
		if status, _ := e.do("POST", "/v1/graphs", req); status != http.StatusBadRequest {
			t.Errorf("graph request %+v: status %d, want 400", req, status)
		}
	}
	if status, _ := e.do("GET", "/v1/graphs/g999", nil); status != http.StatusNotFound {
		t.Errorf("unknown graph: want 404")
	}
	// Server-side path loading is forbidden unless opted in.
	if status, _ := e.do("POST", "/v1/graphs", service.GraphRequest{Path: "/etc/passwd"}); status != http.StatusForbidden {
		t.Errorf("path load without opt-in: status %d, want 403", status)
	}
}

func TestGraphDeleteAndRegistryBound(t *testing.T) {
	e := newEnv(t, service.Options{MaxGraphs: 2})
	id := e.registerGraph(t)
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Edges: "0 1\n1 2\n"}, nil, http.StatusCreated)

	// Registry full: explicit error, not silent eviction.
	if status, raw := e.do("POST", "/v1/graphs", service.GraphRequest{Edges: "0 1\n"}); status != http.StatusTooManyRequests {
		t.Fatalf("over-limit registration: status %d (%s), want 429", status, raw)
	}

	// Warm the sketch cache against the first graph, then delete it:
	// its cache entries must go too.
	var job allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}}), &job)
	var st service.StatsResponse
	e.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.SketchCache.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.SketchCache.Entries)
	}
	e.doJSON("DELETE", "/v1/graphs/"+id, nil, nil, http.StatusOK)
	e.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.SketchCache.Entries != 0 {
		t.Errorf("deleted graph's sketches survived: %d entries", st.SketchCache.Entries)
	}
	if st.Graphs != 1 {
		t.Errorf("graphs = %d, want 1", st.Graphs)
	}

	// Freed slot is usable again; deleting twice is 404.
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Edges: "0 1\n"}, nil, http.StatusCreated)
	if status, _ := e.do("DELETE", "/v1/graphs/"+id, nil); status != http.StatusNotFound {
		t.Error("double delete: want 404")
	}
	// A generated network over the node cap is rejected outright.
	if status, _ := e.do("POST", "/v1/graphs", service.GraphRequest{Network: "twitter", Scale: 1e9}); status != http.StatusBadRequest {
		t.Error("oversized scale: want 400")
	}
}

func TestGraphPathLoadingOptIn(t *testing.T) {
	e := newEnv(t, service.Options{AllowPathLoads: true})
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var info service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Path: path}, &info, http.StatusCreated)
	if info.Nodes != 3 || info.Name != path {
		t.Fatalf("path-loaded graph: %+v", info)
	}
	if status, _ := e.do("POST", "/v1/graphs", service.GraphRequest{Path: path + ".missing"}); status != http.StatusBadRequest {
		t.Error("missing file with opt-in: want 400")
	}
}

func TestAllocateJobLifecycleAndSketchCache(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 2})
	id := e.registerGraph(t)

	req := service.AllocateRequest{
		GraphID: id,
		Budgets: []int{5, 5},
		Runs:    500,
		Seed:    7,
	}
	jobID := e.submit(t, "/v1/allocate", req)

	var job allocJobView
	e.waitJob(t, jobID, &job)
	if job.State != service.JobDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	res := job.Result
	if res == nil {
		t.Fatal("done job has no result")
	}
	if res.Algorithm != "bundleGRD" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	if res.SketchCached {
		t.Error("first allocation claims a cache hit")
	}
	if res.NumRRSets <= 0 {
		t.Errorf("NumRRSets = %d", res.NumRRSets)
	}
	if len(res.Allocation.Seeds) != 2 {
		t.Fatalf("allocation has %d items", len(res.Allocation.Seeds))
	}
	for i, seeds := range res.Allocation.Seeds {
		if len(seeds) != 5 {
			t.Errorf("item %d has %d seeds, want 5", i, len(seeds))
		}
	}
	if res.Welfare == nil || res.Welfare.Mean <= 0 || res.Welfare.Runs != 500 {
		t.Errorf("welfare = %+v", res.Welfare)
	}

	// An identical second request must reuse the cached sketch and
	// reproduce the same allocation (selection is deterministic given
	// the shared collection).
	jobID2 := e.submit(t, "/v1/allocate", req)
	var job2 allocJobView
	e.waitJob(t, jobID2, &job2)
	if job2.State != service.JobDone {
		t.Fatalf("second job failed: %s", job2.Error)
	}
	if !job2.Result.SketchCached {
		t.Error("second identical allocation did not hit the sketch cache")
	}
	if fmt.Sprint(job2.Result.Allocation) != fmt.Sprint(res.Allocation) {
		t.Error("cached sketch produced a different allocation")
	}

	var st service.StatsResponse
	e.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.SketchCache.Misses != 1 || st.SketchCache.Hits < 1 || st.SketchCache.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 miss, >=1 hit, 1 entry", st.SketchCache)
	}
	if st.Jobs[service.JobDone] != 2 {
		t.Errorf("jobs by state = %v", st.Jobs)
	}
	if st.Graphs != 1 || st.Workers != 2 {
		t.Errorf("stats = %+v", st)
	}

	// A different budget vector is a different sketch: miss.
	req3 := req
	req3.Budgets = []int{3, 7}
	req3.Runs = 0
	var job3 allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", req3), &job3)
	if job3.State != service.JobDone {
		t.Fatalf("third job failed: %s", job3.Error)
	}
	if job3.Result.SketchCached {
		t.Error("different budgets unexpectedly hit the cache")
	}
	if job3.Result.Welfare != nil {
		t.Error("runs=0 still produced a welfare estimate")
	}

	// The estimate endpoint accepts the allocation the service produced.
	estID := e.submit(t, "/v1/estimate", service.EstimateRequest{
		GraphID:    id,
		Allocation: res.Allocation,
		Runs:       300,
		Workers:    2,
	})
	var est estJobView
	e.waitJob(t, estID, &est)
	if est.State != service.JobDone {
		t.Fatalf("estimate failed: %s", est.Error)
	}
	if est.Result.Welfare.Mean <= 0 || est.Result.Welfare.Runs != 300 {
		t.Errorf("estimate welfare = %+v", est.Result.Welfare)
	}
	// Both estimates target the same allocation; they must agree within
	// generous Monte-Carlo slack.
	if a, b := est.Result.Welfare.Mean, res.Welfare.Mean; a < b/2 || a > b*2 {
		t.Errorf("estimates disagree wildly: %g vs %g", a, b)
	}
}

func TestConcurrentAllocationsShareOneSketch(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 4})
	id := e.registerGraph(t)

	req := service.AllocateRequest{GraphID: id, Budgets: []int{4, 8}, Algo: "bundleGRD"}
	const concurrent = 4
	ids := make([]string, concurrent)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out struct {
				JobID string `json:"job_id"`
			}
			status, raw := e.do("POST", "/v1/allocate", req)
			if status != http.StatusAccepted {
				t.Errorf("allocate %d: status %d: %s", i, status, raw)
				return
			}
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Error(err)
				return
			}
			ids[i] = out.JobID
		}(i)
	}
	wg.Wait()

	var first *service.AllocateResult
	for _, jobID := range ids {
		if jobID == "" {
			t.Fatal("submission failed")
		}
		var job allocJobView
		e.waitJob(t, jobID, &job)
		if job.State != service.JobDone {
			t.Fatalf("job %s failed: %s", jobID, job.Error)
		}
		if first == nil {
			first = job.Result
		} else if fmt.Sprint(job.Result.Allocation) != fmt.Sprint(first.Allocation) {
			t.Error("concurrent allocations disagree despite sharing a sketch")
		}
	}

	// One after the fleet: a guaranteed warm hit.
	var after allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", req), &after)
	if !after.Result.SketchCached {
		t.Error("post-fleet allocation missed the cache")
	}

	var st service.StatsResponse
	e.doJSON("GET", "/v1/stats", nil, &st, http.StatusOK)
	if st.SketchCache.Misses != 1 {
		t.Errorf("sketches generated %d times, want once", st.SketchCache.Misses)
	}
	if st.SketchCache.Hits < concurrent {
		t.Errorf("cache hits = %d, want >= %d", st.SketchCache.Hits, concurrent)
	}
}

func TestItemDisjointUsesIMMSketchCache(t *testing.T) {
	e := newEnv(t, service.Options{})
	id := e.registerGraph(t)
	req := service.AllocateRequest{GraphID: id, Budgets: []int{3, 3}, Algo: "item-disj"}

	var j1, j2 allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", req), &j1)
	e.waitJob(t, e.submit(t, "/v1/allocate", req), &j2)
	if j1.State != service.JobDone || j2.State != service.JobDone {
		t.Fatalf("jobs failed: %q %q", j1.Error, j2.Error)
	}
	if j1.Result.SketchCached || !j2.Result.SketchCached {
		t.Errorf("cached = %v, %v; want false, true", j1.Result.SketchCached, j2.Result.SketchCached)
	}
	total := 0
	for _, seeds := range j2.Result.Allocation.Seeds {
		total += len(seeds)
	}
	if total != 6 {
		t.Errorf("item-disj assigned %d pairs, want 6", total)
	}
}

func TestRequestValidation(t *testing.T) {
	e := newEnv(t, service.Options{})
	id := e.registerGraph(t)

	badAllocates := []service.AllocateRequest{
		{GraphID: "g999", Budgets: []int{5, 5}},                         // unknown graph
		{GraphID: id},                                                   // no budgets
		{GraphID: id, Budgets: []int{5, 5}, Algo: "magic"},              // unknown algo
		{GraphID: id, Budgets: []int{5, 5}, Config: "nope"},             // unknown config
		{GraphID: id, Budgets: []int{5, 5, 5}},                          // config1 has 2 items
		{GraphID: id, Budgets: []int{-1, 5}},                            // negative budget
		{GraphID: id, Budgets: []int{5, 5}, Cascade: "wave"},            // unknown cascade
		{GraphID: id, Budgets: []int{5, 5}, Runs: 100_000_000},          // runs over cap
		{GraphID: id, Budgets: []int{5, 5}, Runs: 10, Workers: 100_000}, // workers over cap
		{GraphID: id, Budgets: make([]int, 40), Config: "additive"},     // items over cap
		{GraphID: id, Budgets: []int{5, 5}, Eps: 1e-9},                  // eps below floor
		{GraphID: id, Budgets: []int{5, 5}, Eps: -1},                    // negative eps
		{GraphID: id, Budgets: []int{5, 5}, Ell: 1e6},                   // ell over cap
		{GraphID: id, Budgets: []int{5, 5}, Ell: -1},                    // negative ell
	}
	for _, req := range badAllocates {
		if status, raw := e.do("POST", "/v1/allocate", req); status != http.StatusBadRequest {
			t.Errorf("allocate %+v: status %d (%s), want 400", req, status, raw)
		}
	}

	badEstimates := []service.EstimateRequest{
		{GraphID: "g999", Allocation: service.AllocationDTO{Seeds: [][]int64{{0}, {1}}}},
		{GraphID: id}, // no allocation
		{GraphID: id, Allocation: service.AllocationDTO{Seeds: [][]int64{{0}, {1}, {2}}}},               // 3 items vs config1
		{GraphID: id, Allocation: service.AllocationDTO{Seeds: [][]int64{{0}, {999999}}}},               // out of range
		{GraphID: id, Allocation: service.AllocationDTO{Seeds: [][]int64{{0}, {1 << 32}}}},              // would truncate to node 0
		{GraphID: id, Allocation: service.AllocationDTO{Seeds: [][]int64{{0}, {1}}}, Runs: 2e8},         // runs over cap
		{GraphID: id, Allocation: service.AllocationDTO{Seeds: [][]int64{make([]int64, 150_000), {1}}}}, // pairs over cap
	}
	for _, req := range badEstimates {
		if status, raw := e.do("POST", "/v1/estimate", req); status != http.StatusBadRequest {
			t.Errorf("estimate %+v: status %d (%s), want 400", req, status, raw)
		}
	}

	if status, _ := e.do("GET", "/v1/jobs/j999", nil); status != http.StatusNotFound {
		t.Error("unknown job: want 404")
	}
	if status, _ := e.do("POST", "/v1/allocate", []byte(`{"graph_id":`)); status != http.StatusBadRequest {
		t.Error("malformed JSON: want 400")
	}
	if status, _ := e.do("POST", "/v1/allocate", map[string]any{"graph_id": id, "budgets": []int{5, 5}, "bogus": 1}); status != http.StatusBadRequest {
		t.Error("unknown field: want 400")
	}
}

func TestLTCascadeAllocation(t *testing.T) {
	e := newEnv(t, service.Options{})
	id := e.registerGraph(t)
	req := service.AllocateRequest{GraphID: id, Budgets: []int{4, 4}, Cascade: "lt", Runs: 200}
	var job allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", req), &job)
	if job.State != service.JobDone {
		t.Fatalf("LT job failed: %s", job.Error)
	}
	if job.Result.Welfare == nil || job.Result.Welfare.Mean <= 0 {
		t.Errorf("LT welfare = %+v", job.Result.Welfare)
	}

	// IC and LT sketches must not collide in the cache.
	icReq := req
	icReq.Cascade = "ic"
	var icJob allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", icReq), &icJob)
	if icJob.Result.SketchCached {
		t.Error("IC allocation reused the LT sketch")
	}
}

func TestJobListing(t *testing.T) {
	e := newEnv(t, service.Options{})
	id := e.registerGraph(t)
	var job allocJobView
	e.waitJob(t, e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}}), &job)

	var list struct {
		Jobs []allocJobView `json:"jobs"`
	}
	e.doJSON("GET", "/v1/jobs", nil, &list, http.StatusOK)
	if len(list.Jobs) != 1 || list.Jobs[0].Kind != "allocate" {
		t.Fatalf("job list = %+v", list.Jobs)
	}
	if !strings.HasPrefix(list.Jobs[0].ID, "j") {
		t.Errorf("job id = %q", list.Jobs[0].ID)
	}
}
