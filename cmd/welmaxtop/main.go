// Command welmaxtop is a terminal console for a welmaxd node or
// cluster router: one screen that answers "what is this process doing
// right now" from the observability endpoints every welmaxd already
// serves — GET /v1/metrics?format=json for gauges, latency histograms,
// and slow-trace exemplars, GET /v1/events for the control-plane
// flight recorder's typed event tail, and GET /v1/traces/{id} for span
// waterfalls.
//
// Each refresh it shows request throughput and latency per route
// (rates are computed from successive histogram snapshots, so the
// first frame shows totals only), the operational gauges worth
// watching (cache, queue, admission, journal and trace-store health,
// per-trace resource totals), the slowest recent trace per route (from
// the histograms' bucket exemplars), and the most recent journal
// events. The event tail subscribes to the server's SSE stream so
// events appear the moment they are journaled; when the stream cannot
// be established it falls back to cursor polling and keeps retrying
// the stream each refresh.
//
// Typing a slow-trace row's number (then Enter) fetches that trace and
// renders its span waterfall — on a router, the cross-tier assembly
// with both the router's and the owning shard's spans. Typing a raw
// trace id works too; 0 clears the waterfall.
//
//	welmaxtop -addr http://localhost:8080
//	welmaxtop -addr http://localhost:8080 -interval 1s -events 25
//	welmaxtop -addr http://localhost:8080 -once        # one plain frame (no ANSI), for scripts
//	welmaxtop -addr http://localhost:8080 -graph g-abc # event tail filtered to one graph
//	welmaxtop -addr http://localhost:8080 -trace ab12  # print one trace's waterfall and exit
//
// Pointing it at a router shows the merged cluster view: the router's
// /v1/metrics relays every shard's gauges (node-labeled) and merges
// the histograms (exemplars keep the slowest trace per bucket), and
// its /v1/events merges every shard's journal time-ordered.
//
// Exit status: 0 on a rendered frame, 1 when -once (or -trace) could
// not reach the node — scripts probing a deployment get a real error,
// not an empty frame.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "welmaxd or router base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence")
		events   = flag.Int("events", 15, "journal events shown in the tail")
		typeF    = flag.String("type", "", "event tail filter: comma-separated journal event types")
		graphF   = flag.String("graph", "", "event tail filter: graph id")
		nodeF    = flag.String("node", "", "event tail filter: node name")
		traceF   = flag.String("trace-filter", "", "event tail filter: trace id")
		once     = flag.Bool("once", false, "render one plain frame (no screen clearing) and exit; exits 1 when the node is unreachable")
		traceID  = flag.String("trace", "", "print one trace's span waterfall (GET /v1/traces/{id}) and exit")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	// Accept a bare host:port the way curl does.
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	top := &console{
		base:   base,
		client: &http.Client{Timeout: *timeout},
		// The SSE tail lives as long as the server keeps it open; a
		// client-side timeout would sever it mid-stream.
		streamClient: &http.Client{},
		tail:         *events,
		typeF:        *typeF,
		graphF:       *graphF,
		nodeF:        *nodeF,
		traceF:       *traceF,
	}
	if *traceID != "" {
		tree, err := top.fetchTrace(*traceID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "welmaxtop:", err)
			os.Exit(1)
		}
		var b strings.Builder
		renderWaterfall(&b, tree)
		fmt.Print(b.String())
		return
	}
	if *once {
		top.refresh(false)
		if !top.metricsOK {
			for _, e := range top.lastErrs {
				fmt.Fprintln(os.Stderr, "welmaxtop:", e)
			}
			os.Exit(1)
		}
		top.render(os.Stdout, false)
		return
	}
	go top.readKeys(os.Stdin)
	for {
		top.refresh(true)
		top.render(os.Stdout, true)
		time.Sleep(*interval)
	}
}

// console holds the rolling state a frame is rendered from: the last
// two metrics snapshots (for rates), the event ring, the events cursor
// (a string verbatim from the server — a bare sequence number on a
// backend, a composite node:seq list on a router), the slow-trace
// exemplar table, and the currently selected waterfall.
type console struct {
	base         string
	client       *http.Client
	streamClient *http.Client
	tail         int
	typeF        string
	graphF       string
	nodeF        string
	traceF       string

	prev      telemetry.Export
	prevAt    time.Time
	cur       telemetry.Export
	curAt     time.Time
	cursor    string
	lastErrs  []string
	metricsOK bool

	// mu guards the fields shared with the SSE-tail and key-reader
	// goroutines.
	mu        sync.Mutex
	events    []journal.Event
	streaming bool
	streamErr string
	slow      []slowTrace
	picked    string // trace id selected for the waterfall ("" = none)
	tree      *traceTree
	treeErr   string
}

// slowTrace is one row of the exemplar table: the slowest recent trace
// observed in a route's (or job kind's) latency histogram.
type slowTrace struct {
	label   string
	traceID string
	seconds float64
}

// eventsPage decodes either tier's GET /v1/events body: next_cursor is
// a JSON number on a backend and a string on the router, so it lands
// in a RawMessage and is re-serialized verbatim as the next cursor
// query parameter.
type eventsPage struct {
	Events     []journal.Event   `json:"events"`
	NextCursor json.RawMessage   `json:"next_cursor"`
	Partial    bool              `json:"partial,omitempty"`
	Errors     map[string]string `json:"errors,omitempty"`
}

// traceSpan and traceTree decode GET /v1/traces/{id} (either tier's
// form — the router's merged assembly has multi-node spans).
type traceSpan struct {
	telemetry.Span
	Node string `json:"node,omitempty"`
}

type traceTree struct {
	TraceID      string            `json:"trace_id"`
	Route        string            `json:"route,omitempty"`
	Graph        string            `json:"graph,omitempty"`
	DurationMS   float64           `json:"duration_ms"`
	Error        string            `json:"error,omitempty"`
	Kept         string            `json:"kept,omitempty"`
	Spans        []traceSpan       `json:"spans"`
	SpansDropped int64             `json:"spans_dropped,omitempty"`
	Resources    map[string]int64  `json:"resources,omitempty"`
	Partial      bool              `json:"partial,omitempty"`
	Errors       map[string]string `json:"errors,omitempty"`
}

// eventVals assembles the event tail's query parameters.
func (c *console) eventVals() url.Values {
	vals := url.Values{}
	if c.typeF != "" {
		vals.Set("type", c.typeF)
	}
	if c.graphF != "" {
		vals.Set("graph", c.graphF)
	}
	if c.nodeF != "" {
		vals.Set("node", c.nodeF)
	}
	if c.traceF != "" {
		vals.Set("trace", c.traceF)
	}
	return vals
}

// refresh fetches one metrics snapshot and tops up the event tail.
// With stream true it prefers the SSE tail (events arrive on their own
// goroutine) and only polls events while no stream is established,
// retrying the stream connect each round.
func (c *console) refresh(stream bool) {
	c.lastErrs = c.lastErrs[:0]

	var export telemetry.Export
	if err := c.getJSON("/v1/metrics?format=json", &export); err != nil {
		c.lastErrs = append(c.lastErrs, "metrics: "+err.Error())
		c.metricsOK = false
	} else {
		c.prev, c.prevAt = c.cur, c.curAt
		c.cur, c.curAt = export, time.Now()
		c.metricsOK = true
		c.updateSlow()
	}

	c.mu.Lock()
	streaming := c.streaming
	if c.streamErr != "" {
		c.lastErrs = append(c.lastErrs, c.streamErr)
	}
	c.mu.Unlock()
	if !streaming {
		c.pollEvents()
		if stream {
			c.tryStream()
		}
	}
	c.refreshTree()
	sort.Strings(c.lastErrs)
}

// pollEvents is the cursor-paginated fallback tail (and the -once
// path): one page per refresh, appended to the ring.
func (c *console) pollEvents() {
	vals := c.eventVals()
	vals.Set("limit", strconv.Itoa(journal.MaxLimit))
	if c.cursor != "" {
		vals.Set("cursor", c.cursor)
	}
	var page eventsPage
	if err := c.getJSON("/v1/events?"+vals.Encode(), &page); err != nil {
		c.lastErrs = append(c.lastErrs, "events: "+err.Error())
		return
	}
	if next := strings.Trim(string(page.NextCursor), `"`); next != "" && next != "null" {
		c.cursor = next
	}
	c.mu.Lock()
	for _, e := range page.Events {
		c.appendEventLocked(e)
	}
	c.mu.Unlock()
	for src, msg := range page.Errors {
		c.lastErrs = append(c.lastErrs, "events["+src+"]: "+msg)
	}
}

// tryStream attempts to establish the SSE event tail. On success a
// reader goroutine feeds the ring until the stream breaks, which flips
// the console back to polling (and retrying) mode. The connect failure
// itself is not an error line — polling is the designed fallback.
func (c *console) tryStream() {
	vals := c.eventVals()
	vals.Set("stream", "1")
	if c.cursor != "" {
		vals.Set("cursor", c.cursor)
	}
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/events?"+vals.Encode(), nil)
	if err != nil {
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.streamClient.Do(req)
	if err != nil {
		return
	}
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		resp.Body.Close()
		return
	}
	c.mu.Lock()
	c.streaming = true
	c.streamErr = ""
	c.mu.Unlock()
	go func() {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var e journal.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				continue
			}
			c.mu.Lock()
			c.appendEventLocked(e)
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.streaming = false
		c.streamErr = "events: stream dropped; polling until it reconnects"
		c.mu.Unlock()
	}()
}

// appendEventLocked appends one event to the tail ring, skipping exact
// duplicates (a stream reconnect replays what the ring already shows).
// Caller holds c.mu.
func (c *console) appendEventLocked(e journal.Event) {
	for _, have := range c.events {
		if have.Seq == e.Seq && have.Type == e.Type && have.Node == e.Node && have.TS.Equal(e.TS) {
			return
		}
	}
	c.events = append(c.events, e)
	if len(c.events) > c.tail {
		c.events = c.events[len(c.events)-c.tail:]
	}
}

// updateSlow rebuilds the slow-trace table from the current snapshot's
// histogram exemplars: the slowest exemplar per route (HTTP histogram)
// and per job kind, slowest first.
func (c *console) updateSlow() {
	best := map[string]slowTrace{}
	for _, h := range c.cur.Histograms {
		var label string
		switch h.Name {
		case "welmax_http_request_duration_seconds":
			label = labelValue(h.Labels, "route")
		case "welmax_job_duration_seconds":
			label = "job:" + labelValue(h.Labels, "kind")
		default:
			continue
		}
		for _, ex := range h.Exemplars {
			if ex.TraceID == "" {
				continue
			}
			if cur, ok := best[label]; !ok || ex.Seconds > cur.seconds {
				best[label] = slowTrace{label: label, traceID: ex.TraceID, seconds: ex.Seconds}
			}
		}
	}
	rows := make([]slowTrace, 0, len(best))
	for _, r := range best {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].seconds != rows[j].seconds {
			return rows[i].seconds > rows[j].seconds
		}
		return rows[i].label < rows[j].label
	})
	if len(rows) > 8 {
		rows = rows[:8]
	}
	c.mu.Lock()
	c.slow = rows
	c.mu.Unlock()
}

// readKeys turns stdin lines into waterfall selections: a slow-trace
// row number, a raw trace id, or 0/q to clear.
func (c *console) readKeys(in io.Reader) {
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		c.mu.Lock()
		switch {
		case line == "0" || line == "q" || line == "c":
			c.picked, c.tree, c.treeErr = "", nil, ""
		default:
			if n, err := strconv.Atoi(line); err == nil {
				if n >= 1 && n <= len(c.slow) {
					c.picked = c.slow[n-1].traceID
				}
			} else {
				c.picked = line
			}
		}
		c.mu.Unlock()
	}
}

// refreshTree fetches the selected trace's tree when the selection
// changed (or last fetch failed — the trace may still be in flight).
func (c *console) refreshTree() {
	c.mu.Lock()
	picked := c.picked
	have := c.tree != nil && c.tree.TraceID == picked
	c.mu.Unlock()
	if picked == "" || have {
		return
	}
	tree, err := c.fetchTrace(picked)
	c.mu.Lock()
	if err != nil {
		c.tree, c.treeErr = nil, err.Error()
	} else {
		c.tree, c.treeErr = tree, ""
	}
	c.mu.Unlock()
}

func (c *console) fetchTrace(id string) (*traceTree, error) {
	var tree traceTree
	if err := c.getJSON("/v1/traces/"+url.PathEscape(id), &tree); err != nil {
		return nil, fmt.Errorf("trace %s: %w", id, err)
	}
	return &tree, nil
}

func (c *console) getJSON(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// render draws one frame. With ansi it repaints in place (clear +
// home); without it the frame is plain text suitable for piping.
func (c *console) render(w io.Writer, ansi bool) {
	var b strings.Builder
	if ansi {
		b.WriteString("\x1b[2J\x1b[H")
	}
	mode := "poll"
	c.mu.Lock()
	if c.streaming {
		mode = "live"
	}
	c.mu.Unlock()
	fmt.Fprintf(&b, "welmaxtop  %s  %s  events:%s\n", c.base, time.Now().Format("15:04:05"), mode)
	for _, e := range c.lastErrs {
		fmt.Fprintf(&b, "  ! %s\n", e)
	}
	b.WriteByte('\n')

	c.renderRoutes(&b)
	c.renderGauges(&b)
	c.renderSlow(&b)
	c.renderEvents(&b)
	c.renderTree(&b)
	fmt.Fprint(w, b.String())
}

// renderRoutes shows per-route request throughput and latency from
// welmax_http_request_duration_seconds, with rates diffed against the
// previous snapshot.
func (c *console) renderRoutes(b *strings.Builder) {
	type row struct {
		route string
		count int64
		rate  float64
		avgMS float64
		p95MS float64
	}
	prevCount := map[string]int64{}
	for _, h := range c.prev.Histograms {
		if h.Name == "welmax_http_request_duration_seconds" {
			prevCount[labelValue(h.Labels, "route")] += h.Count
		}
	}
	dt := c.curAt.Sub(c.prevAt).Seconds()
	var rows []row
	for _, h := range c.cur.Histograms {
		if h.Name != "welmax_http_request_duration_seconds" || h.Count == 0 {
			continue
		}
		route := labelValue(h.Labels, "route")
		r := row{route: route, count: h.Count, avgMS: h.SumSeconds / float64(h.Count) * 1e3, p95MS: quantileMS(h, 0.95)}
		if dt > 0 {
			if d := h.Count - prevCount[route]; d > 0 {
				r.rate = float64(d) / dt
			}
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Fprintf(b, "%-36s %10s %8s %9s %9s\n", "ROUTE", "REQS", "REQ/S", "AVG", "P95")
	for _, r := range rows {
		fmt.Fprintf(b, "%-36s %10d %8.1f %8.1fms %8.1fms\n", r.route, r.count, r.rate, r.avgMS, r.p95MS)
	}
	b.WriteByte('\n')
}

// watchedGauges are the operational series worth a fixed slot on the
// board, in display order.
var watchedGauges = []string{
	"welmax_graphs",
	"welmax_jobs_queue_depth",
	"welmax_workers_busy",
	"welmax_sketch_cache_entries",
	"welmax_sketch_cache_hits",
	"welmax_sketch_cache_misses",
	"welmax_sketch_cache_evictions",
	"welmax_batch_builds",
	"welmax_batch_coalesced_requests",
	"welmax_admission_rejects",
	"welmax_cluster_rebalances",
	"welmax_cluster_sketch_ships",
	"welmax_journal_events_total",
	"welmax_journal_dropped_total",
	"welmax_journal_ring_depth",
	"welmax_trace_kept_total",
	"welmax_trace_sampled_out_total",
	"welmax_trace_ring_depth",
}

func (c *console) renderGauges(b *strings.Builder) {
	byName := map[string]float64{}
	var resources []telemetry.Gauge
	for _, g := range c.cur.Gauges {
		switch g.Name {
		case "welmax_resource_total":
			resources = append(resources, g)
		default:
			// Cluster expositions carry the same series once per node;
			// summing gives the fleet view and is a no-op on one backend.
			byName[g.Name] += g.Value
		}
	}
	col := 0
	for _, name := range watchedGauges {
		v, ok := byName[name]
		if !ok {
			continue
		}
		fmt.Fprintf(b, "%-32s %12s   ", strings.TrimPrefix(name, "welmax_"), formatValue(v))
		if col++; col%2 == 0 {
			b.WriteByte('\n')
		}
	}
	if col%2 != 0 {
		b.WriteByte('\n')
	}
	if len(resources) > 0 {
		kinds := map[string]float64{}
		for _, g := range resources {
			kinds[labelValue(g.Labels, "kind")] += g.Value
		}
		names := make([]string, 0, len(kinds))
		for k := range kinds {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("resources:")
		for _, k := range names {
			fmt.Fprintf(b, "  %s=%s", k, formatValue(kinds[k]))
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
}

// renderSlow shows the slowest recent trace per route from the
// histogram exemplars; typing a row's number renders its waterfall.
func (c *console) renderSlow(b *strings.Builder) {
	c.mu.Lock()
	rows := append([]slowTrace(nil), c.slow...)
	c.mu.Unlock()
	if len(rows) == 0 {
		return
	}
	b.WriteString("SLOW TRACES (type number + Enter for waterfall, 0 clears)\n")
	for i, r := range rows {
		fmt.Fprintf(b, "  [%d] %-34s %9.1fms  trace=%s\n", i+1, r.label, r.seconds*1e3, r.traceID)
	}
	b.WriteByte('\n')
}

func (c *console) renderEvents(b *strings.Builder) {
	fmt.Fprintf(b, "EVENTS (last %d)\n", c.tail)
	c.mu.Lock()
	events := append([]journal.Event(nil), c.events...)
	c.mu.Unlock()
	if len(events) == 0 {
		b.WriteString("  (none yet)\n")
		return
	}
	for _, e := range events {
		fmt.Fprintf(b, "%s  %-18s %s\n", e.TS.Format("15:04:05.000"), e.Type, eventDetail(e))
	}
}

// renderTree appends the selected trace's waterfall, if any.
func (c *console) renderTree(b *strings.Builder) {
	c.mu.Lock()
	picked, tree, treeErr := c.picked, c.tree, c.treeErr
	c.mu.Unlock()
	if picked == "" {
		return
	}
	b.WriteByte('\n')
	if tree == nil {
		msg := treeErr
		if msg == "" {
			msg = "fetching..."
		}
		fmt.Fprintf(b, "TRACE %s: %s\n", picked, msg)
		return
	}
	renderWaterfall(b, tree)
}

// renderWaterfall draws one trace's span tree as an indented waterfall:
// children under parents, each bar positioned and scaled on the trace's
// own time axis.
func renderWaterfall(b *strings.Builder, t *traceTree) {
	fmt.Fprintf(b, "TRACE %s", t.TraceID)
	if t.Route != "" {
		fmt.Fprintf(b, "  route=%s", t.Route)
	}
	if t.Graph != "" {
		fmt.Fprintf(b, "  graph=%s", t.Graph)
	}
	fmt.Fprintf(b, "  %.1fms", t.DurationMS)
	if t.Error != "" {
		fmt.Fprintf(b, "  error=%s", t.Error)
	}
	if t.Partial {
		b.WriteString("  (partial)")
	}
	b.WriteByte('\n')
	if t.SpansDropped > 0 {
		fmt.Fprintf(b, "  (%d spans dropped at the per-trace cap)\n", t.SpansDropped)
	}
	if len(t.Spans) == 0 {
		b.WriteString("  (no spans recorded)\n")
		return
	}

	// Time axis across every span present.
	minNS, maxNS := t.Spans[0].StartUnixNS, int64(0)
	for _, sp := range t.Spans {
		if sp.StartUnixNS < minNS {
			minNS = sp.StartUnixNS
		}
		if end := sp.StartUnixNS + int64(sp.DurationMS*1e6); end > maxNS {
			maxNS = end
		}
	}
	span := maxNS - minNS
	if span <= 0 {
		span = 1
	}
	const width = 32

	// Children under parents, roots first, each level in start order. A
	// span whose parent is not in the tree (the backend fragment viewed
	// alone roots at the router's span id) renders as a root.
	present := map[string]bool{}
	for _, sp := range t.Spans {
		present[sp.ID] = true
	}
	children := map[string][]traceSpan{}
	var roots []traceSpan
	for _, sp := range t.Spans {
		if sp.Parent != "" && present[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var draw func(sp traceSpan, depth int)
	draw = func(sp traceSpan, depth int) {
		offset := int(float64(sp.StartUnixNS-minNS) / float64(span) * width)
		bar := int(sp.DurationMS * 1e6 / float64(span) * width)
		if bar < 1 {
			bar = 1
		}
		if offset > width-1 {
			offset = width - 1
		}
		if offset+bar > width {
			bar = width - offset
		}
		lane := strings.Repeat(" ", offset) + strings.Repeat("#", bar) +
			strings.Repeat(" ", width-offset-bar)
		label := sp.Stage
		if sp.Node != "" {
			label = sp.Node + ":" + label
		}
		fmt.Fprintf(b, "  %-40s |%s| %9.2fms\n", strings.Repeat("  ", depth)+label, lane, sp.DurationMS)
		for _, ch := range children[sp.ID] {
			draw(ch, depth+1)
		}
	}
	for _, sp := range roots {
		draw(sp, 0)
	}
	if len(t.Resources) > 0 {
		kinds := make([]string, 0, len(t.Resources))
		for k := range t.Resources {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("  resources:")
		for _, k := range kinds {
			fmt.Fprintf(b, "  %s=%d", k, t.Resources[k])
		}
		b.WriteByte('\n')
	}
}

// eventDetail flattens an event's populated fields into one line.
func eventDetail(e journal.Event) string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("node", e.Node)
	add("graph", e.Graph)
	if e.From != "" || e.To != "" {
		parts = append(parts, e.From+"→"+e.To)
	}
	add("job", e.Job)
	add("sweep", e.Sweep)
	add("cell", e.Cell)
	if e.Count != 0 {
		parts = append(parts, "n="+strconv.FormatInt(e.Count, 10))
	}
	if e.Bytes != 0 {
		parts = append(parts, "bytes="+strconv.FormatInt(e.Bytes, 10))
	}
	if e.WaitMS != 0 {
		parts = append(parts, "wait="+strconv.FormatInt(e.WaitMS, 10)+"ms")
	}
	add("reason", e.Reason)
	add("err", e.Error)
	add("trace", e.TraceID)
	return strings.Join(parts, " ")
}

func labelValue(labels []telemetry.Label, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// quantileMS estimates a latency quantile in milliseconds from the
// snapshot's fixed power-of-two buckets (upper-bound attribution, the
// usual histogram-quantile pessimism).
func quantileMS(h telemetry.HistSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	bounds := telemetry.BucketBounds()
	target := int64(float64(h.Count) * q)
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum > target {
			if i < len(bounds) {
				return bounds[i] * 1e3
			}
			// +Inf bucket: the best available bound is the last finite one.
			return bounds[len(bounds)-1] * 1e3
		}
	}
	return bounds[len(bounds)-1] * 1e3
}

func formatValue(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 1, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 1, 64) + "M"
	case v >= 1e4:
		return strconv.FormatFloat(v/1e3, 'f', 1, 64) + "k"
	case v == float64(int64(v)):
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}
