// Command welmax solves a WelMax instance: it loads or generates a social
// network, picks a utility configuration, runs one of the allocation
// algorithms, and reports the allocation and its estimated expected
// social welfare.
//
// Examples:
//
//	welmax -network flixster -config config1 -budgets 50,50
//	welmax -graph edges.txt -directed -config real -budgets 30,30,20,10,10 -algo bundle-disj
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/expr"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/service"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (\"u v [p]\" lines); overrides -network")
		directed   = flag.Bool("directed", true, "treat the edge-list file as directed")
		network    = flag.String("network", "flixster", "built-in network stand-in (flixster|douban-book|douban-movie|twitter|orkut)")
		scale      = flag.Float64("scale", 1.0, "network scale factor")
		configName = flag.String("config", "config1", "utility configuration (config1|config3|additive|cone|levelwise|real|real-smoothed)")
		items      = flag.Int("items", 5, "item count for additive/cone/levelwise configurations")
		budgetsStr = flag.String("budgets", "50,50", "comma-separated per-item seed budgets")
		algo       = flag.String("algo", "bundleGRD", "allocation algorithm (bundleGRD|item-disj|bundle-disj)")
		eps        = flag.Float64("eps", 0.5, "approximation parameter ε")
		ell        = flag.Float64("ell", 1.0, "confidence exponent ℓ")
		runs       = flag.Int("runs", 10000, "Monte-Carlo runs for the welfare estimate")
		seed       = flag.Uint64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print the full allocation")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON (the welmaxd AllocateResult payload)")
	)
	flag.Parse()

	budgets, err := parseBudgets(*budgetsStr)
	if err != nil {
		fatal(err)
	}

	g, err := loadOrGenerate(*graphPath, *directed, *network, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("network: %v\n", g)
	}

	m, err := buildModel(*configName, *items, len(budgets), *seed)
	if err != nil {
		fatal(err)
	}
	if len(budgets) != m.K() {
		fatal(fmt.Errorf("%d budgets for %d items", len(budgets), m.K()))
	}

	prob, err := core.NewProblem(g, m, budgets)
	if err != nil {
		fatal(err)
	}
	rng := stats.NewRNG(*seed)
	opts := core.Options{Eps: *eps, Ell: *ell}

	started := time.Now()
	var res core.Result
	switch *algo {
	case "bundleGRD":
		res = core.BundleGRD(prob, opts, rng)
	case "item-disj":
		res = core.ItemDisjoint(prob, opts, rng)
	case "bundle-disj":
		res = core.BundleDisjoint(prob, opts, rng)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	// Text mode reports the allocation as soon as it exists; the
	// Monte-Carlo estimate below can take a while on large graphs.
	if !*jsonOut {
		fmt.Printf("algorithm: %s (RR sets: %d, IMM invocations: %d)\n",
			*algo, res.NumRRSets, res.IMMInvocations)
		if *verbose {
			for i, seeds := range res.Alloc.Seeds {
				fmt.Printf("  item %d (budget %d): %v\n", i, budgets[i], seeds)
			}
		}
	}

	est := uic.NewSimulator(g, m).EstimateWelfare(res.Alloc, stats.NewRNG(*seed+1), *runs)

	if *jsonOut {
		// The same DTO welmaxd returns from an allocation job, so CLI and
		// daemon outputs are interchangeable.
		out := service.NewAllocateResult(*algo, res)
		out.Welfare = &service.WelfareDTO{Mean: est.Mean, StdErr: est.StdErr, Runs: est.Runs}
		out.ElapsedMS = time.Since(started).Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("expected social welfare: %.2f ± %.2f (%d runs)\n", est.Mean, 1.96*est.StdErr, est.Runs)
}

func parseBudgets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 0 {
			return nil, fmt.Errorf("bad budget %q", p)
		}
		out = append(out, b)
	}
	return out, nil
}

func loadOrGenerate(path string, directed bool, network string, scale float64, seed uint64) (*graph.Graph, error) {
	if path != "" {
		g, err := graph.LoadEdgeList(path, !directed)
		if err != nil {
			return nil, err
		}
		return g.WeightedCascade(), nil
	}
	spec, err := expr.NetworkByName(network)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale, seed), nil
}

func buildModel(name string, items, budgetCount int, seed uint64) (*utility.Model, error) {
	return service.BuildModel(name, items, budgetCount, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "welmax:", err)
	os.Exit(1)
}
