package utility

import (
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
)

// TwoItem builds a two-item model with explicit prices, singleton values,
// bundle value and Gaussian noise sigmas — the shape of Table 3.
func TwoItem(p1, p2, v1, v2, v12, sigma1, sigma2 float64) *Model {
	val, err := NewTableValuation(2, []float64{0, v1, v2, v12})
	if err != nil {
		panic(err)
	}
	return MustModel(val,
		[]float64{p1, p2},
		[]stats.Dist{stats.Noise(sigma1), stats.Noise(sigma2)})
}

// Config1 is Table 3's configuration 1 (and 2, which differs only in
// budgets): prices 3 and 4, values 3, 4 and 8, unit Gaussian noise.
// Both items have non-negative deterministic utility.
func Config1() *Model { return TwoItem(3, 4, 3, 4, 8, 1, 1) }

// Config3 is Table 3's configuration 3 (and 4): values 3, 3 and 8 with
// the same prices, so item i2 has negative deterministic utility (-1)
// while i1 is neutral (0) and the bundle is worth +1.
func Config3() *Model { return TwoItem(3, 4, 3, 3, 8, 1, 1) }

// Config5 is Table 4's additive configuration: k items, each with price 1,
// value 2 (utility exactly 1), additive across items, unit noise. By
// design it gives minimal advantage to bundling.
func Config5(k int) *Model {
	per := make([]float64, k)
	prices := make([]float64, k)
	noise := make([]stats.Dist, k)
	for i := range per {
		per[i] = 2
		prices[i] = 1
		noise[i] = stats.Noise(1)
	}
	return MustModel(AdditiveValuation{PerItem: per}, prices, noise)
}

// ConfigCone builds Table 4's cone configurations 6-7: a single core item
// is necessary for positive utility. The core's deterministic utility is
// 5 and every further item adds 2; itemsets without the core have
// negative utility (they still pay their price). Configuration 6 uses
// the maximum-budget item as the core, configuration 7 the minimum-budget
// item; callers pick the core index accordingly.
func ConfigCone(k, core int) *Model {
	prices := make([]float64, k)
	noise := make([]stats.Dist, k)
	for i := range prices {
		prices[i] = 1
		noise[i] = stats.Noise(1)
	}
	val := ConeValuation{K: k, Core: core, CoreValue: 1 + 5, AddOnValue: 1 + 2}
	// CoreValue = P(core) + 5 makes U({core}) = 5; AddOnValue = P(i) + 2
	// makes each addition worth +2 in utility.
	return MustModel(val, prices, noise)
}

// Config8 builds Table 4's level-wise random supermodular configuration
// following Eq. (13): level-1 values are random around price (so a random
// subset of single items has non-negative utility); for t >= 2 the
// marginal of item i w.r.t. A_t\{i} is the maximum realized marginal of i
// over the (t-2)-subsets plus a fresh boost ε ~ U[1,5], and
// V(A_t) = max_i { V(A_t\{i}) + V(i | A_t\{i}) }. The construction is
// supermodular by induction (Lemma 10) and well-defined (Lemma 11).
func Config8(k int, rng *stats.RNG) *Model {
	size := 1 << uint(k)
	vals := make([]float64, size)
	prices := make([]float64, k)
	noise := make([]stats.Dist, k)
	for i := 0; i < k; i++ {
		prices[i] = 1 + 4*rng.Float64() // U[1,5]
		noise[i] = stats.Noise(1)
		if rng.Bool(0.5) {
			vals[itemset.Single(i)] = prices[i] + 2*rng.Float64() // non-negative utility
		} else {
			vals[itemset.Single(i)] = prices[i] - 2*rng.Float64()
		}
		if vals[itemset.Single(i)] < 0 {
			vals[itemset.Single(i)] = 0
		}
	}
	// enumerate sets level by level
	for t := 2; t <= k; t++ {
		for s := itemset.Set(1); int(s) < size; s++ {
			if s.Size() != t {
				continue
			}
			best := 0.0
			for _, i := range s.Items() {
				rest := s.Remove(i) // |rest| = t-1
				// max realized marginal of i over (t-2)-subsets of rest
				maxMarg := 0.0
				first := true
				for _, j := range rest.Items() {
					b := rest.Remove(j) // |b| = t-2
					marg := vals[b.Add(i)] - vals[b]
					if first || marg > maxMarg {
						maxMarg = marg
						first = false
					}
				}
				eps := 1 + 4*rng.Float64() // U[1,5]
				cand := vals[rest] + maxMarg + eps
				if cand > best {
					best = cand
				}
			}
			vals[s] = best
		}
	}
	val, err := NewTableValuation(k, vals)
	if err != nil {
		panic(err)
	}
	return MustModel(val, prices, noise)
}

// RealItems names the five items of the real-parameter experiment
// (§4.3.4): a PlayStation 4 console, its controller, and three games.
var RealItems = []string{"ps", "controller", "game1", "game2", "game3"}

// RealParams returns the Table 5 model learned from eBay bidding data:
// prices from Craigslist/Facebook (C$260 console, C$20 controller, C$5
// per game), values from the learned bid distributions, per-item noise
// variances chosen so the additive noise matches the learned per-itemset
// variances as closely as possible.
//
// Note (documented in DESIGN.md): the published values are NOT exactly
// completable to a supermodular table — the marginal chain for adding
// games to {ps, controller} (220 -> 292.5 -> 302) decreases, as real
// data does. The UIC simulator and bundleGRD run fine regardless; use
// RealParamsSmoothed where the supermodularity theory is exercised.
func RealParams() *Model {
	const (
		ps = 0
		c  = 1
		g1 = 2
		g2 = 3
		g3 = 4
	)
	prices := []float64{260, 20, 5, 5, 5}
	games := itemset.New(g1, g2, g3)
	value := func(s itemset.Set) float64 {
		if !s.Has(ps) {
			return 0 // accessories are useless without the console
		}
		ng := s.Intersect(games).Size()
		if s.Has(c) {
			switch ng {
			case 0:
				return 220 // Table 5 row {ps, c}
			case 1:
				return 270 // unobserved; negative utility per the paper
			case 2:
				return 292.5 // Table 5 row {ps, g1, g2, c}
			default:
				return 302 // Table 5 row {ps, g1, g2, g3, c}
			}
		}
		switch ng {
		case 0:
			return 213 // Table 5 row {ps}
		case 1:
			return 226 // unobserved completion
		case 2:
			return 245 // unobserved completion
		default:
			return 258 // Table 5 row {ps, g1, g2, g3}
		}
	}
	val, err := TableFromFunc(5, value)
	if err != nil {
		panic(err)
	}
	// Per-item noise variances fitted to the learned per-itemset
	// variances (4, 6, 4, 5, 7) under additivity: var(ps)=4, var(c)=2,
	// var(game)=1/3.
	noise := []stats.Dist{
		stats.Noise(2),               // sqrt(4)
		stats.Noise(1.4142135623731), // sqrt(2)
		stats.Noise(0.5773502691896), // sqrt(1/3)
		stats.Noise(0.5773502691896),
		stats.Noise(0.5773502691896),
	}
	return MustModel(val, prices, noise)
}

// RealParamsSmoothed is the nearest supermodular, monotone variant of
// RealParams: it keeps the paper's qualitative utility shape (only
// {ps, controller, >= 2 games} has positive deterministic utility, at a
// similar scale) while satisfying exact supermodularity so the
// approximation-theory tests can exercise a realistic 5-item instance.
func RealParamsSmoothed() *Model {
	const (
		ps = 0
		c  = 1
		g1 = 2
		g2 = 3
		g3 = 4
	)
	prices := []float64{260, 20, 5, 5, 5}
	games := itemset.New(g1, g2, g3)
	// Increasing game marginals without the controller: 5, 10, 15.
	noC := []float64{213, 218, 228, 243}
	// Increasing game marginals with the controller: 25, 35, 40.
	withC := []float64{232, 257, 292, 332}
	value := func(s itemset.Set) float64 {
		if !s.Has(ps) {
			return 0
		}
		ng := s.Intersect(games).Size()
		if s.Has(c) {
			return withC[ng]
		}
		return noC[ng]
	}
	val, err := TableFromFunc(5, value)
	if err != nil {
		panic(err)
	}
	noise := []stats.Dist{
		stats.Noise(2),
		stats.Noise(1.4142135623731),
		stats.Noise(0.5773502691896),
		stats.Noise(0.5773502691896),
		stats.Noise(0.5773502691896),
	}
	return MustModel(val, prices, noise)
}
