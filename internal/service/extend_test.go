package service_test

import (
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/service"
)

// TestBatchedAllocateExtendsResidentSketch is the delta-build
// acceptance scenario: a second batched allocate whose budgets exceed
// the resident merged sketch must be served by *extending* that sketch
// — sketch_extends goes up, and the RR sets appended are strictly fewer
// than the extended sketch's total (i.e. fewer rr_sets_grown than the
// cold build that total represents).
func TestBatchedAllocateExtendsResidentSketch(t *testing.T) {
	e := newEnv(t, service.Options{BatchWindow: 30 * time.Millisecond})
	id := e.registerGraph(t)

	// Cold batch build for {8,9}; its merged sketch is recorded and
	// stays resident.
	if _, err := e.svc.Allocate(&service.AllocateRequest{GraphID: id, Budgets: []int{8, 9}}); err != nil {
		t.Fatal(err)
	}
	st := e.svc.Stats()
	if st.Batch.SketchExtends != 0 {
		t.Fatalf("cold build counted as extension: %d", st.Batch.SketchExtends)
	}

	// Budgets beyond the resident vector: near-dominating, so the
	// scheduler extends instead of cold-building.
	res, err := e.svc.Allocate(&service.AllocateRequest{GraphID: id, Budgets: []int{12, 13}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Allocation.Seeds[1]); got != 13 {
		t.Fatalf("item 1 got %d seeds, want 13", got)
	}

	st = e.svc.Stats()
	if st.Batch.SketchExtends < 1 {
		t.Fatalf("sketch_extends = %d, want >= 1", st.Batch.SketchExtends)
	}
	if st.Batch.RRSetsAppended <= 0 {
		t.Fatalf("rr_sets_appended = %d, want > 0", st.Batch.RRSetsAppended)
	}
	if res.NumRRSets <= 0 || st.Batch.RRSetsAppended >= int64(res.NumRRSets) {
		t.Fatalf("extension appended %d of %d RR sets — not cheaper than a cold build",
			st.Batch.RRSetsAppended, res.NumRRSets)
	}

	// A later request whose budgets are contained in the extended
	// vector is served resident — no further build or extension.
	res3, err := e.svc.Allocate(&service.AllocateRequest{GraphID: id, Budgets: []int{9, 12}})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.SketchCached {
		t.Fatal("request dominated by the extended sketch missed it")
	}
	if after := e.svc.Stats(); after.Batch.SketchExtends != st.Batch.SketchExtends {
		t.Fatalf("dominated request triggered another extension: %d -> %d",
			st.Batch.SketchExtends, after.Batch.SketchExtends)
	}
}

// TestConcurrentAllocatesDuringExtend pins concurrent readers of the
// resident sketch against an in-flight extension — the -race regression
// test for ExtendSketch's clone-don't-mutate contract.
func TestConcurrentAllocatesDuringExtend(t *testing.T) {
	e := newEnv(t, service.Options{BatchWindow: 20 * time.Millisecond})
	id := e.registerGraph(t)

	// Seed the resident sketch the readers and the extension both use.
	if _, err := e.svc.Allocate(&service.AllocateRequest{GraphID: id, Budgets: []int{7, 8}}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Readers: dominated budgets, served read-only from the resident
	// sketch while the extension clones and grows it.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 3; j++ {
				if _, err := e.svc.Allocate(&service.AllocateRequest{
					GraphID: id,
					Budgets: []int{i + 2, 5},
				}); err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	// Writers: budgets past the resident vector force extensions.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, err := e.svc.Allocate(&service.AllocateRequest{
				GraphID: id,
				Budgets: []int{10 + 3*i, 11 + 3*i},
			}); err != nil {
				t.Errorf("extender %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if st := e.svc.Stats(); st.Batch.SketchExtends < 1 {
		t.Fatalf("sketch_extends = %d, want >= 1 (extension path never exercised)", st.Batch.SketchExtends)
	}
}
