// Package rrset implements reverse-reachable (RR) set sampling and the
// greedy max-cover NodeSelection procedure shared by all RIS-style
// influence-maximization algorithms (TIM, IMM, PRIMA).
//
// An RR set is drawn by picking a root node uniformly at random and
// walking the graph backwards, keeping each in-edge independently with its
// influence probability. The fundamental identity is
// sigma(S) = n * E[ S ∩ RR != ∅ ].
package rrset

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

// Sampler draws RR sets from one graph, reusing internal buffers. Not safe
// for concurrent use.
type Sampler struct {
	g       *graph.Graph
	visited []int32
	epoch   int32
	queue   []graph.NodeID
	// Cascade selects the diffusion model sampled against: IC performs
	// the per-edge reverse BFS, LT the single-trigger reverse walk.
	Cascade graph.Cascade
	// NodeCoin, if non-nil, is an additional per-node pass probability
	// applied when the walk tries to continue through a node (used by the
	// Com-IC RR-SIM/RR-CIM baselines, where adoption requires a node-level
	// GAP coin in addition to the live edge).
	NodeCoin func(v graph.NodeID) float64
	// EdgesVisited accumulates the total number of in-edges examined, the
	// width statistic w(R) used in running-time accounting (EPT).
	EdgesVisited int64
}

// NewSampler returns a sampler for g.
func NewSampler(g *graph.Graph) *Sampler {
	return &Sampler{
		g:       g,
		visited: make([]int32, g.N()),
		queue:   make([]graph.NodeID, 0, 256),
	}
}

// Sample draws one RR set rooted at a uniformly random node and appends
// the member nodes to dst, returning the extended slice. The root is
// always a member.
func (s *Sampler) Sample(rng *stats.RNG, dst []graph.NodeID) []graph.NodeID {
	root := graph.NodeID(rng.Intn(s.g.N()))
	return s.SampleFrom(root, rng, dst)
}

// SampleFrom draws one RR set rooted at the given node.
func (s *Sampler) SampleFrom(root graph.NodeID, rng *stats.RNG, dst []graph.NodeID) []graph.NodeID {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visited {
			s.visited[i] = -1
		}
		s.epoch = 1
	}
	q := s.queue[:0]
	s.visited[root] = s.epoch
	if s.NodeCoin != nil && !rng.Bool(s.NodeCoin(root)) {
		// The root itself would never adopt, so no seed placement can
		// cover this sample: the RR set is empty.
		return dst
	}
	dst = append(dst, root)
	if s.Cascade == graph.CascadeLT {
		return s.sampleLT(root, rng, dst)
	}
	q = append(q, root)
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		srcs, ps := s.g.InEdges(v)
		s.EdgesVisited += int64(len(srcs))
		for i, u := range srcs {
			if s.visited[u] == s.epoch {
				continue
			}
			if !rng.Bool(float64(ps[i])) {
				continue
			}
			if s.NodeCoin != nil && !rng.Bool(s.NodeCoin(u)) {
				// The node is reached but would not itself adopt/forward;
				// it still blocks this branch of the reverse walk.
				s.visited[u] = s.epoch
				continue
			}
			s.visited[u] = s.epoch
			dst = append(dst, u)
			q = append(q, u)
		}
	}
	s.queue = q[:0]
	return dst
}

// sampleLT continues an RR walk under the linear threshold model: each
// node has at most one live in-edge (its trigger), so the reverse walk is
// a path that ends when no trigger fires or a cycle closes.
func (s *Sampler) sampleLT(root graph.NodeID, rng *stats.RNG, dst []graph.NodeID) []graph.NodeID {
	cur := root
	for {
		srcs, ps := s.g.InEdges(cur)
		s.EdgesVisited += int64(len(srcs))
		if len(srcs) == 0 {
			return dst
		}
		r := rng.Float64()
		cum := 0.0
		chosen := graph.NodeID(-1)
		for i, p := range ps {
			cum += float64(p)
			if r < cum {
				chosen = srcs[i]
				break
			}
		}
		if chosen < 0 || s.visited[chosen] == s.epoch {
			return dst
		}
		if s.NodeCoin != nil && !rng.Bool(s.NodeCoin(chosen)) {
			s.visited[chosen] = s.epoch
			return dst
		}
		s.visited[chosen] = s.epoch
		dst = append(dst, chosen)
		cur = chosen
	}
}
