package utility

import "uicwelfare/internal/itemset"

// Adopt implements the node-adoption rule of the UIC model (Fig. 1, step
// 3): given the utility table of the current noise world, a desire set R,
// and the currently adopted set A ⊆ R, it returns
//
//	T* = argmax { U(T) | A ⊆ T ⊆ R, U(T) >= 0 }
//
// breaking ties in favor of larger cardinality. A itself is always a
// candidate (inductively U(A) >= 0, and U(∅) = 0 covers the base case),
// so the result is well-defined and satisfies U(T*) >= U(A) >= 0.
//
// By Lemma 1 (unions of local maxima are local maxima), under a
// supermodular utility the largest-cardinality maximizer is unique, so
// this enumeration implements exactly the paper's tie-break.
func Adopt(util []float64, desire, current itemset.Set) itemset.Set {
	best := current
	bestU := util[current]
	free := desire.Minus(current)
	if free == 0 {
		return best
	}
	// Enumerate all T = current ∪ sub for sub ⊆ desire\current.
	sub := free
	for {
		cand := current | sub
		u := util[cand]
		if u > bestU || (u == bestU && cand.Size() > best.Size()) {
			best, bestU = cand, u
		}
		if sub == 0 {
			break
		}
		sub = (sub - 1) & free
	}
	return best
}

// BestSet returns I*: the itemset with the largest utility in the table,
// ties broken toward larger cardinality. Under a supermodular utility the
// result is the unique maximal maximizer (Lemma 1).
func BestSet(util []float64) itemset.Set {
	best := itemset.Set(0)
	bestU := util[0]
	for s := 1; s < len(util); s++ {
		set := itemset.Set(s)
		if util[s] > bestU || (util[s] == bestU && set.Size() > best.Size()) {
			best, bestU = set, util[s]
		}
	}
	return best
}

// IsLocalMaximum reports whether A is a local maximum of the utility
// table: U(A) = max_{A' ⊆ A} U(A') (the paper's definition before
// Lemma 1).
func IsLocalMaximum(util []float64, a itemset.Set) bool {
	ua := util[a]
	ok := true
	a.Subsets(func(sub itemset.Set) bool {
		if util[sub] > ua {
			ok = false
			return false
		}
		return true
	})
	return ok
}
