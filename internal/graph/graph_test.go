package graph

import (
	"strings"
	"testing"

	"uicwelfare/internal/stats"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.25)
	b.AddEdge(1, 2, 1.0)
	g := b.Build()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Errorf("out degrees wrong")
	}
	if g.InDegree(2) != 2 || g.InDegree(0) != 0 {
		t.Errorf("in degrees wrong")
	}
	if p, ok := g.Prob(0, 1); !ok || p != 0.5 {
		t.Errorf("Prob(0,1) = %v,%v", p, ok)
	}
	if _, ok := g.Prob(2, 0); ok {
		t.Errorf("nonexistent edge found")
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0, 0.5)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("self loop not dropped: m=%d", g.M())
	}
}

func TestBuilderDedupKeepsMaxProb(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0.3)
	b.AddEdge(0, 1, 0.7)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("m=%d", g.M())
	}
	if p, _ := g.Prob(0, 1); p != float64(float32(0.7)) {
		t.Errorf("dedup kept p=%v, want 0.7", p)
	}
}

func TestBuilderPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewBuilder(2).AddEdge(0, 2, 0.5) },
		func() { NewBuilder(2).AddEdge(-1, 0, 0.5) },
		func() { NewBuilder(2).AddEdge(0, 1, 1.5) },
		func() { NewBuilder(2).AddEdge(0, 1, -0.1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := stats.NewRNG(1)
	g := ErdosRenyi(50, 300, rng)
	// every out-edge must appear exactly once as an in-edge
	type edge struct{ u, v NodeID }
	out := map[edge]float32{}
	for u := NodeID(0); int(u) < g.N(); u++ {
		ts, ps := g.OutEdges(u)
		for i, v := range ts {
			out[edge{u, v}] = ps[i]
		}
	}
	in := map[edge]float32{}
	for v := NodeID(0); int(v) < g.N(); v++ {
		ss, ps := g.InEdges(v)
		for i, u := range ss {
			in[edge{u, v}] = ps[i]
		}
	}
	if len(out) != len(in) || len(out) != g.M() {
		t.Fatalf("edge sets differ: out=%d in=%d m=%d", len(out), len(in), g.M())
	}
	for e, p := range out {
		if in[e] != p {
			t.Fatalf("edge %v probability mismatch", e)
		}
	}
}

func TestInEdgePositions(t *testing.T) {
	g := FromEdges(4, [][3]float64{{0, 2, 0.1}, {1, 2, 0.2}, {3, 2, 0.3}, {0, 1, 0.4}})
	srcs, ps := g.InEdges(2)
	pos := g.InEdgePositions(2)
	if len(srcs) != 3 {
		t.Fatalf("indeg(2)=%d", len(srcs))
	}
	for i := range srcs {
		// the out-edge at global position pos[i] must be (srcs[i] -> 2)
		u := srcs[i]
		base := g.OutEdgeBase(u)
		ts, ops := g.OutEdges(u)
		off := pos[i] - base
		if off < 0 || int(off) >= len(ts) || ts[off] != 2 || ops[off] != ps[i] {
			t.Errorf("in-edge %d: position %d does not map back to (%d,2)", i, pos[i], u)
		}
	}
}

func TestWeightedCascade(t *testing.T) {
	g := FromEdges(3, [][3]float64{{0, 2, 0}, {1, 2, 0}, {0, 1, 0}})
	wc := g.WeightedCascade()
	if p, _ := wc.Prob(0, 2); p != 0.5 {
		t.Errorf("p(0,2) = %v, want 0.5 (indeg 2)", p)
	}
	if p, _ := wc.Prob(0, 1); p != 1.0 {
		t.Errorf("p(0,1) = %v, want 1 (indeg 1)", p)
	}
	// original untouched
	if p, _ := g.Prob(0, 2); p != 0 {
		t.Errorf("WeightedCascade mutated original")
	}
	// in-probs must agree with out-probs
	_, ips := wc.InEdges(2)
	for _, p := range ips {
		if p != 0.5 {
			t.Errorf("in-prob %v, want 0.5", p)
		}
	}
}

func TestUniformProb(t *testing.T) {
	g := FromEdges(3, [][3]float64{{0, 1, 0.9}, {1, 2, 0.8}})
	u := g.UniformProb(0.01)
	if p, _ := u.Prob(0, 1); p != float64(float32(0.01)) {
		t.Errorf("p = %v", p)
	}
	if p, _ := g.Prob(0, 1); p != float64(float32(0.9)) {
		t.Errorf("original mutated")
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# comment
% another comment
10 20 0.5
20 30
10 30 0.25

30 10 1.0
`
	g, err := ReadEdgeList(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	// 10 -> id 0, 20 -> id 1, 30 -> id 2 (first appearance order)
	if p, ok := g.Prob(0, 1); !ok || p != 0.5 {
		t.Errorf("edge (10,20) wrong: %v %v", p, ok)
	}
	if p, ok := g.Prob(1, 2); !ok || p != 0 {
		t.Errorf("default prob wrong: %v %v", p, ok)
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 0.5\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2", g.M())
	}
	if _, ok := g.Prob(1, 0); !ok {
		t.Error("reverse edge missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	bad := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"0 1 2.5\n",
		"0 1 x\n",
	}
	for _, in := range bad {
		if _, err := ReadEdgeList(strings.NewReader(in), false); err == nil {
			t.Errorf("input %q did not error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := stats.NewRNG(2)
	g := ErdosRenyi(30, 120, rng).WeightedCascade()
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v -> %v", g, g2)
	}
}

func TestErdosRenyiSize(t *testing.T) {
	rng := stats.NewRNG(3)
	g := ErdosRenyi(100, 500, rng)
	if g.N() != 100 {
		t.Errorf("n=%d", g.N())
	}
	if g.M() < 450 || g.M() > 500 {
		t.Errorf("m=%d, want ~500", g.M())
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	rng := stats.NewRNG(4)
	g := BarabasiAlbert(500, 3, rng)
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	st := ComputeStats(g)
	if !st.Symmetric {
		t.Error("BA graph should be symmetric (undirected)")
	}
	// average degree ~ 2k for BA
	if st.AvgDegree < 4 || st.AvgDegree > 8 {
		t.Errorf("avg degree %v, want ~6", st.AvgDegree)
	}
	// heavy tail: max degree far above average
	if float64(st.MaxOutDeg) < 3*st.AvgDegree {
		t.Errorf("max degree %d not heavy-tailed (avg %v)", st.MaxOutDeg, st.AvgDegree)
	}
}

func TestPreferentialDirectedProperties(t *testing.T) {
	rng := stats.NewRNG(5)
	g := PreferentialDirected(1000, 5, rng)
	if g.N() != 1000 {
		t.Fatalf("n=%d", g.N())
	}
	st := ComputeStats(g)
	if st.Symmetric {
		t.Error("directed generator should not be symmetric")
	}
	if st.AvgDegree < 3 || st.AvgDegree > 10 {
		t.Errorf("avg degree %v", st.AvgDegree)
	}
	if float64(st.MaxInDeg) < 5*st.AvgDegree {
		t.Errorf("in-degree not heavy tailed: max %d avg %v", st.MaxInDeg, st.AvgDegree)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := stats.NewRNG(6)
	g := WattsStrogatz(200, 4, 0.1, rng)
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	st := ComputeStats(g)
	if !st.Symmetric {
		t.Error("WS graph should be symmetric")
	}
	if st.AvgDegree < 3 || st.AvgDegree > 5 {
		t.Errorf("avg degree %v, want ~4", st.AvgDegree)
	}
}

func TestLineStarComplete(t *testing.T) {
	l := Line(4, 0.5)
	if l.M() != 3 || l.OutDegree(3) != 0 {
		t.Errorf("line wrong: %v", l)
	}
	s := Star(5, 0.3)
	if s.M() != 4 || s.OutDegree(0) != 4 {
		t.Errorf("star wrong: %v", s)
	}
	c := Complete(4, 1)
	if c.M() != 12 {
		t.Errorf("complete wrong: %v", c)
	}
}

func TestSCCOnKnownGraph(t *testing.T) {
	// two 2-cycles connected by a one-way edge, plus an isolated node
	g := FromEdges(5, [][3]float64{
		{0, 1, 1}, {1, 0, 1},
		{1, 2, 1},
		{2, 3, 1}, {3, 2, 1},
	})
	comp, count := SCC(g)
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	if comp[0] != comp[1] {
		t.Error("0 and 1 should share a component")
	}
	if comp[2] != comp[3] {
		t.Error("2 and 3 should share a component")
	}
	if comp[0] == comp[2] || comp[0] == comp[4] || comp[2] == comp[4] {
		t.Error("distinct SCCs merged")
	}
}

func TestLargestSCC(t *testing.T) {
	// triangle cycle {0,1,2} plus tail 3->4
	g := FromEdges(5, [][3]float64{
		{0, 1, 0.5}, {1, 2, 0.5}, {2, 0, 0.5},
		{3, 4, 0.5},
	})
	sub, mapping := LargestSCC(g)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("largest SCC n=%d m=%d", sub.N(), sub.M())
	}
	for _, old := range mapping {
		if old > 2 {
			t.Errorf("node %d should not be in largest SCC", old)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(4, [][3]float64{{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}, {3, 0, 0.5}})
	sub, mapping := InducedSubgraph(g, func(v NodeID) bool { return v != 2 })
	if sub.N() != 3 {
		t.Fatalf("n=%d", sub.N())
	}
	// surviving edges: 0->1 and 3->0
	if sub.M() != 2 {
		t.Errorf("m=%d, want 2", sub.M())
	}
	if len(mapping) != 3 {
		t.Errorf("mapping size %d", len(mapping))
	}
}

func TestBFSPrefix(t *testing.T) {
	g := Line(10, 1)
	sub, mapping := BFSPrefix(g, 4)
	if sub.N() != 4 {
		t.Fatalf("n=%d", sub.N())
	}
	// the prefix of a line from node 0 is 0..3 with 3 edges
	if sub.M() != 3 {
		t.Errorf("m=%d", sub.M())
	}
	for i, old := range mapping {
		if int(old) != i {
			t.Errorf("mapping[%d]=%d", i, old)
		}
	}
}

func TestBFSPrefixWholeGraph(t *testing.T) {
	g := Line(5, 1)
	sub, _ := BFSPrefix(g, 100)
	if sub.N() != 5 || sub.M() != 4 {
		t.Errorf("whole-graph prefix wrong: %v", sub)
	}
}

func TestBFSPrefixDisconnected(t *testing.T) {
	// two disjoint edges; asking for 3 nodes must pull from both components
	g := FromEdges(4, [][3]float64{{0, 1, 1}, {2, 3, 1}})
	sub, _ := BFSPrefix(g, 3)
	if sub.N() != 3 {
		t.Errorf("n=%d, want 3", sub.N())
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(3, [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}})
	st := ComputeStats(g)
	if st.Nodes != 3 || st.Edges != 3 {
		t.Errorf("stats %+v", st)
	}
	if st.Symmetric {
		t.Error("graph is not symmetric (edge 1->2 has no reverse)")
	}
	if st.MaxOutDeg != 2 || st.MaxInDeg != 1 {
		t.Errorf("max degrees %d/%d", st.MaxOutDeg, st.MaxInDeg)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(4, 1)
	h := DegreeHistogram(g)
	// hub has degree 3; three leaves have degree 0
	if h[0] != 3 || h[3] != 1 {
		t.Errorf("histogram %v", h)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.AvgDegree() != 0 {
		t.Error("empty graph misbehaves")
	}
	comp, count := SCC(g)
	if len(comp) != 0 || count != 0 {
		t.Error("SCC on empty graph")
	}
}
