// Quickstart: allocate seeds for two complementary items on a synthetic
// social network and estimate the expected social welfare through the
// context-aware welfare.Run entrypoint.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	welfare "uicwelfare"
)

func main() {
	ctx := context.Background()

	// A Flixster-like social network (Table 2 stand-in) with the paper's
	// weighted-cascade influence probabilities p(u,v) = 1/indeg(v).
	g, err := welfare.GenerateNetworkE("flixster", 0.5, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("network: %v\n", g)

	// Two complementary items (Table 3, configuration 1): each item is
	// worth its price on its own, but the bundle carries a surplus.
	m := welfare.Config1()

	// Seed budgets: item 0 may be seeded at 40 users, item 1 at 20.
	p, err := welfare.NewProblem(g, m, []int{40, 20})
	if err != nil {
		panic(err)
	}

	// bundleGRD: the (1-1/e-ε)-approximate greedy allocation. It never
	// looks at the utilities — complementarity alone justifies bundling.
	// Run dispatches by registry name, honors ctx cancellation, and
	// appends a Monte-Carlo welfare estimate when WithRuns is given.
	res, err := welfare.Run(ctx, p,
		welfare.WithAlgorithm(welfare.AlgoBundleGRD),
		welfare.WithSeed(42),
		welfare.WithRuns(20000),
		welfare.WithProgress(func(ev welfare.Progress) {
			if ev.Done == ev.Total { // one line per completed phase
				fmt.Printf("  [%s] round %d: %d/%d\n", ev.Stage, ev.Round, ev.Done, ev.Total)
			}
		}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("bundleGRD selected %d seed pairs using %d RR sets\n",
		res.Alloc.Pairs(), res.NumRRSets)

	// The smaller-budget item rides on a prefix of the same seed ranking.
	fmt.Printf("item 0 seeds (first 5 of %d): %v\n", len(res.Alloc.Seeds[0]), res.Alloc.Seeds[0][:5])
	fmt.Printf("item 1 seeds (first 5 of %d): %v\n", len(res.Alloc.Seeds[1]), res.Alloc.Seeds[1][:5])
	fmt.Printf("expected social welfare: %.1f ± %.1f\n", res.Welfare.Mean, 1.96*res.Welfare.StdErr)

	// Compare against the item-disjoint baseline — same entrypoint,
	// different registry name.
	base, err := welfare.Run(ctx, p,
		welfare.WithAlgorithm(welfare.AlgoItemDisjoint),
		welfare.WithSeed(42),
		welfare.WithRuns(20000))
	if err != nil {
		panic(err)
	}
	fmt.Printf("item-disj baseline:      %.1f ± %.1f\n", base.Welfare.Mean, 1.96*base.Welfare.StdErr)
}
