package store

import (
	"fmt"
	"io"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/rrset"
)

// Sketch family tags in the .wms payload.
const (
	familyPrima = 1
	familyIMM   = 2
)

// EncodeSketch writes a built *prima.Sketch or *imm.Sketch as a .wms
// frame: the family tag, the family's scalar fields, and the RR-set
// collection as offsets plus delta-coded flattened members. The graph is
// deliberately not embedded — a sketch is only meaningful next to its
// graph, and the store keys sketch files by the graph's content id, so
// DecodeSketch takes the resident graph instead.
func EncodeSketch(w io.Writer, sketch any) error {
	var p payloadWriter
	if err := encodeSketchPayload(&p, sketch); err != nil {
		return err
	}
	return writeFrame(w, SketchMagic, p.buf.Bytes())
}

// encodeSketchPayload packs the frame body shared by the .wms codec and
// the sketch-stream container (which prepends a cache key to it).
func encodeSketchPayload(p *payloadWriter, sketch any) error {
	switch sk := sketch.(type) {
	case *prima.Sketch:
		col, maxBudget, phase1, allNodesN := sk.State()
		p.uvarint(familyPrima)
		p.uvarint(uint64(maxBudget))
		p.uvarint(uint64(phase1))
		p.uvarint(uint64(allNodesN))
		encodeCollection(p, col)
	case *imm.Sketch:
		col, k, phase1, lb, allNodesN := sk.State()
		p.uvarint(familyIMM)
		p.uvarint(uint64(k))
		p.uvarint(uint64(phase1))
		p.float64(lb)
		p.uvarint(uint64(allNodesN))
		encodeCollection(p, col)
	default:
		return fmt.Errorf("store: cannot encode sketch type %T", sketch)
	}
	return nil
}

// DecodeSketch reads one .wms frame against the graph it was built for,
// returning a *prima.Sketch or *imm.Sketch indistinguishable from the
// freshly built original (rrset.Restore rebuilds the inverted index and
// re-validates every member against g). The caller is responsible for
// pairing the right graph — the store does so by keying sketch files
// under the graph's content id.
func DecodeSketch(r io.Reader, g *graph.Graph) (any, error) {
	payload, err := readFrame(r, SketchMagic)
	if err != nil {
		return nil, err
	}
	p := payloadReader{rest: payload}
	sketch, err := decodeSketchPayload(&p, g)
	if err != nil {
		return nil, err
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return sketch, nil
}

// decodeSketchPayload unpacks what encodeSketchPayload wrote; the caller
// is responsible for the trailing-bytes check (stream entries embed the
// payload after other fields).
func decodeSketchPayload(p *payloadReader, g *graph.Graph) (any, error) {
	family, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	switch family {
	case familyPrima:
		maxBudget, err1 := p.uvarint()
		phase1, err2 := p.uvarint()
		allNodesN, err3 := p.uvarint()
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		col, err := decodeCollection(p, g)
		if err != nil {
			return nil, err
		}
		return prima.RestoreSketch(col, int(maxBudget), int(phase1), int(allNodesN)), nil
	case familyIMM:
		k, err1 := p.uvarint()
		phase1, err2 := p.uvarint()
		lb, err3 := p.float64()
		allNodesN, err4 := p.uvarint()
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, err
		}
		col, err := decodeCollection(p, g)
		if err != nil {
			return nil, err
		}
		return imm.RestoreSketch(col, int(k), int(phase1), lb, int(allNodesN)), nil
	}
	return nil, fmt.Errorf("%w: unknown sketch family %d", ErrCorrupt, family)
}

// encodeCollection packs a (possibly nil, for degenerate sketches)
// collection: a presence flag, the set count, per-set sizes, and the
// flattened members as plain varints. Members keep their sampled order —
// no sorting — so the restored collection is bit-for-bit the original
// and NodeSelection's deterministic ordering is preserved exactly.
func encodeCollection(p *payloadWriter, col *rrset.Collection) {
	if col == nil {
		p.uvarint(0)
		return
	}
	p.uvarint(1)
	offsets, members := col.Offsets(), col.Members()
	p.uvarint(uint64(col.Len()))
	for i := 0; i < col.Len(); i++ {
		p.uvarint(uint64(offsets[i+1] - offsets[i]))
	}
	for _, v := range members {
		p.uvarint(uint64(v))
	}
}

// decodeCollection unpacks what encodeCollection wrote, rebuilding the
// inverted index through rrset.Restore.
func decodeCollection(p *payloadReader, g *graph.Graph) (*rrset.Collection, error) {
	present, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	numSets, err := p.count()
	if err != nil {
		return nil, err
	}
	offsets := make([]int64, numSets+1)
	for i := 0; i < numSets; i++ {
		size, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		// Bound each size and the running total against the remaining
		// bytes (every member occupies at least one byte) BEFORE the
		// addition: a forged size near 2^64 must yield ErrCorrupt, not an
		// int64 wraparound that slips past the total check and panics
		// make().
		if size > uint64(len(p.rest)) || offsets[i]+int64(size) > int64(len(p.rest)) {
			return nil, fmt.Errorf("%w: set sizes exceed remaining %d bytes", ErrCorrupt, len(p.rest))
		}
		offsets[i+1] = offsets[i] + int64(size)
	}
	total := offsets[numSets]
	members := make([]graph.NodeID, total)
	for i := range members {
		v, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(g.N()) {
			return nil, fmt.Errorf("%w: member node %d out of range [0, %d)", ErrCorrupt, v, g.N())
		}
		members[i] = graph.NodeID(v)
	}
	col, err := rrset.Restore(g, members, offsets)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return col, nil
}

// SketchCost approximates the resident memory of a built sketch in
// bytes: member ids appear once in the flattened storage and once in the
// inverted index (4 bytes each), set boundaries cost 8, plus slice
// headers amortized into a fixed floor. The service's cost-aware cache
// eviction and the disk-tier budget both price entries with it.
func SketchCost(sketch any) int64 {
	var col *rrset.Collection
	switch sk := sketch.(type) {
	case *prima.Sketch:
		col, _, _, _ = sk.State()
	case *imm.Sketch:
		col, _, _, _, _ = sk.State()
	}
	const floor = 256
	if col == nil {
		return floor
	}
	return floor + 8*col.TotalSize() + 8*int64(col.Len())
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
