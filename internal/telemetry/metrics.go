package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed resolution of every latency histogram:
// bucket i (i < NumBuckets-1) counts observations with duration
// ≤ 2^i microseconds, covering 1µs up to ~17.9 minutes in powers of
// two; the last bucket is +Inf. Fixing the bounds repo-wide is what
// makes cross-shard merging a plain element-wise sum.
const NumBuckets = 32

// bucketIndex maps a duration to its histogram bucket: the smallest i
// with d ≤ 2^i microseconds, clamped to the +Inf bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	// Smallest i with us <= 2^i, i.e. ceil(log2(us)).
	i := bits.Len64(uint64(us - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBounds returns the finite upper bounds in seconds (the last,
// +Inf, bucket is implicit).
func BucketBounds() []float64 {
	out := make([]float64, NumBuckets-1)
	for i := range out {
		out[i] = float64(uint64(1)<<uint(i)) / 1e6
	}
	return out
}

// Histogram is one lock-free log2-bucketed latency histogram. Observe
// is three atomic adds — cheap enough for the allocate hot path.
type Histogram struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	buckets  [NumBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// Label is one name/value pair attached to a histogram or gauge.
// Labels are ordered (series identity is the ordered list), so the
// emitting site controls the Prometheus rendering order.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Exemplar links one histogram bucket back to a concrete trace: the
// trace id of the bucket's slowest recent observation. It is the hook
// that turns an aggregate latency distribution into something an
// operator can drill into — fetch the trace id from the slowest
// occupied bucket and GET /v1/traces/{id} shows where the time went.
type Exemplar struct {
	Bucket  int     `json:"bucket"`
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`
}

// exemplarTTL bounds how long a slow observation pins its bucket's
// exemplar: past it any new observation replaces the stale one, so the
// exported trace ids stay "slowest recent", not "slowest ever" (whose
// trace may long since have left the trace store).
const exemplarTTL = 5 * time.Minute

// exemplarCell is one bucket's retained exemplar.
type exemplarCell struct {
	traceID string
	seconds float64
	at      time.Time
}

// HistSnapshot is one histogram series' point-in-time state: the JSON
// form backends serve at /v1/metrics?format=json and the router merges
// across shards. Buckets are non-cumulative counts per BucketBounds
// position (last = +Inf). Exemplars, when present, is sparse: one
// entry per bucket that has a retained exemplar. It rides only the
// JSON form — Prometheus text exposition is unchanged.
type HistSnapshot struct {
	Name       string     `json:"name"`
	Labels     []Label    `json:"labels,omitempty"`
	Count      int64      `json:"count"`
	SumSeconds float64    `json:"sum_seconds"`
	Buckets    []int64    `json:"buckets"`
	Exemplars  []Exemplar `json:"exemplars,omitempty"`
}

// Gauge is one point-in-time numeric metric (counters are exported
// this way too — their cumulativeness lives in the source, not here).
type Gauge struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Export is the complete JSON body of GET /v1/metrics?format=json.
type Export struct {
	Histograms []HistSnapshot `json:"histograms"`
	Gauges     []Gauge        `json:"gauges,omitempty"`
}

// Metrics is a registry of labeled histograms. Series creation takes
// the write lock once; subsequent observations are a read-locked map
// hit plus atomic adds.
type Metrics struct {
	mu     sync.RWMutex
	series map[string]*histSeries
}

type histSeries struct {
	name   string
	labels []Label
	hist   Histogram

	exMu sync.Mutex
	ex   [NumBuckets]exemplarCell
}

// observeExemplar retains traceID as the bucket's exemplar if it is
// the slowest observation the bucket has seen recently (or the first,
// or the incumbent has aged out).
func (s *histSeries) observeExemplar(bucket int, traceID string, d time.Duration) {
	secs := float64(d) / float64(time.Second)
	now := time.Now()
	s.exMu.Lock()
	c := &s.ex[bucket]
	if c.traceID == "" || secs >= c.seconds || now.Sub(c.at) > exemplarTTL {
		*c = exemplarCell{traceID: traceID, seconds: secs, at: now}
	}
	s.exMu.Unlock()
}

// exemplars snapshots the series' unexpired exemplars, sparse by
// bucket (nil when none).
func (s *histSeries) exemplars() []Exemplar {
	now := time.Now()
	var out []Exemplar
	s.exMu.Lock()
	for i := range s.ex {
		c := s.ex[i]
		if c.traceID == "" || now.Sub(c.at) > exemplarTTL {
			continue
		}
		out = append(out, Exemplar{Bucket: i, TraceID: c.traceID, Seconds: c.seconds})
	}
	s.exMu.Unlock()
	return out
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{series: map[string]*histSeries{}}
}

// seriesKey builds the registry key for (name, labels). Label order is
// part of the identity — emitting sites use fixed orders.
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// Observe records one duration into the named series, creating it on
// first use.
func (m *Metrics) Observe(name string, labels []Label, d time.Duration) {
	m.ObserveEx(name, labels, d, "")
}

// ObserveEx is Observe with an exemplar: a non-empty traceID is
// retained as the bucket's exemplar when it is the slowest recent
// observation to land there (see Exemplar).
func (m *Metrics) ObserveEx(name string, labels []Label, d time.Duration, traceID string) {
	key := seriesKey(name, labels)
	m.mu.RLock()
	s := m.series[key]
	m.mu.RUnlock()
	if s == nil {
		m.mu.Lock()
		if s = m.series[key]; s == nil {
			s = &histSeries{name: name, labels: append([]Label(nil), labels...)}
			m.series[key] = s
		}
		m.mu.Unlock()
	}
	s.hist.Observe(d)
	if traceID != "" {
		if d < 0 {
			d = 0
		}
		s.observeExemplar(bucketIndex(d), traceID, d)
	}
}

// Snapshot captures every series. Bucket reads race benignly with
// concurrent observes (each counter is individually atomic), which is
// exactly the precision a metrics scrape needs.
func (m *Metrics) Snapshot() []HistSnapshot {
	m.mu.RLock()
	series := make([]*histSeries, 0, len(m.series))
	for _, s := range m.series {
		series = append(series, s)
	}
	m.mu.RUnlock()
	out := make([]HistSnapshot, 0, len(series))
	for _, s := range series {
		snap := HistSnapshot{
			Name:       s.name,
			Labels:     s.labels,
			Count:      s.hist.count.Load(),
			SumSeconds: float64(s.hist.sumNanos.Load()) / 1e9,
			Buckets:    make([]int64, NumBuckets),
		}
		for i := range snap.Buckets {
			snap.Buckets[i] = s.hist.buckets[i].Load()
		}
		snap.Exemplars = s.exemplars()
		out = append(out, snap)
	}
	sortSnapshots(out)
	return out
}

// MergeSnapshots merges histogram snapshots from several sources
// (shards) by (name, labels), summing counts, sums, and buckets — valid
// because every Histogram shares the fixed BucketBounds.
func MergeSnapshots(groups ...[]HistSnapshot) []HistSnapshot {
	merged := map[string]*HistSnapshot{}
	var order []string
	for _, snaps := range groups {
		for _, s := range snaps {
			key := seriesKey(s.Name, s.Labels)
			dst := merged[key]
			if dst == nil {
				cp := s
				cp.Labels = append([]Label(nil), s.Labels...)
				cp.Buckets = make([]int64, NumBuckets)
				copy(cp.Buckets, s.Buckets)
				cp.Exemplars = append([]Exemplar(nil), s.Exemplars...)
				merged[key] = &cp
				order = append(order, key)
				continue
			}
			dst.Count += s.Count
			dst.SumSeconds += s.SumSeconds
			for i := 0; i < len(s.Buckets) && i < len(dst.Buckets); i++ {
				dst.Buckets[i] += s.Buckets[i]
			}
			dst.Exemplars = mergeExemplars(dst.Exemplars, s.Exemplars)
		}
	}
	out := make([]HistSnapshot, 0, len(order))
	for _, key := range order {
		out = append(out, *merged[key])
	}
	sortSnapshots(out)
	return out
}

// mergeExemplars unions two sparse exemplar lists by bucket, keeping
// the slower observation when both sources have one — on the router's
// merged export every bucket still names the cluster-wide slowest
// recent trace.
func mergeExemplars(a, b []Exemplar) []Exemplar {
	if len(b) == 0 {
		return a
	}
	byBucket := map[int]Exemplar{}
	for _, e := range a {
		byBucket[e.Bucket] = e
	}
	for _, e := range b {
		if cur, ok := byBucket[e.Bucket]; !ok || e.Seconds > cur.Seconds {
			byBucket[e.Bucket] = e
		}
	}
	out := make([]Exemplar, 0, len(byBucket))
	for _, e := range byBucket {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

func sortSnapshots(snaps []HistSnapshot) {
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].Name != snaps[j].Name {
			return snaps[i].Name < snaps[j].Name
		}
		return seriesKey("", snaps[i].Labels) < seriesKey("", snaps[j].Labels)
	})
}

// escapeLabel escapes a label value for Prometheus text exposition.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders {a="b",c="d"} with an optional extra le pair
// appended; empty labels and no le renders "".
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WritePrometheus renders histograms and gauges in Prometheus text
// exposition format (cumulative le buckets, _sum and _count series,
// one # TYPE line per metric name). Series are sorted by name so each
// metric's series stay contiguous under their TYPE line, as the
// exposition format requires.
func WritePrometheus(w io.Writer, hists []HistSnapshot, gauges []Gauge) {
	hists = append([]HistSnapshot(nil), hists...)
	sortSnapshots(hists)
	gauges = append([]Gauge(nil), gauges...)
	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].Name != gauges[j].Name {
			return gauges[i].Name < gauges[j].Name
		}
		return seriesKey("", gauges[i].Labels) < seriesKey("", gauges[j].Labels)
	})
	bounds := BucketBounds()
	lastName := ""
	for _, h := range hists {
		if h.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name)
			lastName = h.Name
		}
		cum := int64(0)
		for i := 0; i < NumBuckets; i++ {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, le), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, renderLabels(h.Labels, ""), formatFloat(h.SumSeconds))
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, renderLabels(h.Labels, ""), h.Count)
	}
	lastName = ""
	for _, g := range gauges {
		if g.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name)
			lastName = g.Name
		}
		fmt.Fprintf(w, "%s%s %s\n", g.Name, renderLabels(g.Labels, ""), formatFloat(g.Value))
	}
}
