// Package batch implements welmaxd's budget-coalescing scheduler: the
// layer that turns N concurrent sketch-bound requests differing only in
// budgets into one sketch build sized for a budget vector dominating
// them all.
//
// The economics come straight from the paper's RR-sketch machinery
// (PRIMA/IMM): building the sketch is the dominant cost of every
// allocation, and a sketch sized for budget vector b_max answers any
// request whose budgets it dominates — PRIMA's prefix-preserving
// ordering serves every budget in the vector it was sized for, and an
// IMM ordering selected for k serves any prefix k' ≤ k, because greedy
// max-coverage on a fixed collection is prefix-consistent. Concurrent
// allocate requests that differ only in budgets are therefore duplicate
// work, and the scheduler deduplicates them *before* they reach the
// sketch cache, whose keys include the exact budget vector.
//
// Mechanics: requests are grouped by everything that genuinely changes
// the sketch distribution — (graph, sketch family, cascade, ε, ℓ) — and
// the first request for a group opens a gather window. Requests arriving
// within the window join the group, merging their budget vectors through
// the planner's family-specific merge (union of budget values for PRIMA,
// max total for IMM). When the window closes the group runs ONE build,
// sized for the merged vector, and every waiter is answered from the
// shared sketch; each then slices its own budgets out of it downstream
// (PlanFromSketch only reads). A request arriving after the window
// closed still joins the in-flight build when the frozen merged vector
// already dominates its budgets; otherwise it opens the next group.
//
// Cancellation is reference-counted: a waiter abandoning its request
// (client disconnect, job cancel) never cancels the shared build —
// the build's context is canceled only when the last waiter has left.
package batch

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/telemetry"
)

// MergeFunc merges two canonical sketch-budget vectors of one sketch
// family into the canonical vector whose sketch serves any request
// served by either input. It must be commutative, associative, and
// idempotent (merge(a, a) == a) — the scheduler folds every group
// member's budgets through it and uses merge(frozen, b) == frozen as the
// "b is already covered" test for late joiners.
type MergeFunc func(a, b []int) []int

// BuildFunc runs the group's single sketch build, sized for the merged
// canonical budget vector. hit reports whether some cache tier supplied
// the sketch without a fresh build. The scheduler invokes the FIRST
// group member's BuildFunc on behalf of everyone, so the closure must
// depend only on what the group key pins (graph, family, cascade, ε, ℓ)
// plus the budgets argument — never on the submitting request's own
// budget vector.
type BuildFunc func(ctx context.Context, budgets []int) (sketch any, hit bool, err error)

// Scheduler coalesces concurrent sketch builds per group key. The zero
// value is not usable; construct with New.
type Scheduler struct {
	window time.Duration

	mu     sync.Mutex
	groups map[string]*group

	batches   atomic.Int64 // gather windows that ran a build
	coalesced atomic.Int64 // requests that joined an existing group

	// onFire, when set, observes every gather window that reaches its
	// build: the group key, the frozen merged budget vector, how many
	// waiters share the build, and the trace id of the request that
	// opened the window ("" when it carried none). It runs on the window
	// timer's goroutine before the build starts, so it must be cheap and
	// must not call back into the scheduler.
	onFire func(key string, budgets []int, waiters int, traceID string)
}

// group is one gather window's worth of requests. budgets accumulates
// the merged vector while gathering and is frozen when the window
// closes; waiters is the live-request refcount driving build
// cancellation.
type group struct {
	budgets  []int
	building bool
	waiters  int
	traceID  string // trace id of the request that opened the window

	buildCtx context.Context
	cancel   context.CancelFunc

	done   chan struct{} // closed once sketch/hit/err are final
	sketch any
	hit    bool
	err    error
}

// New returns a scheduler gathering each group for the given window. A
// window of zero (or negative) still coalesces whatever arrives while a
// build is pending, but closes the gather phase immediately — callers
// wanting batching off should simply not route through the scheduler.
func New(window time.Duration) *Scheduler {
	return &Scheduler{window: window, groups: map[string]*group{}}
}

// SetFireHook installs the scheduler's batch-fire observer (see the
// onFire field). Install it before the scheduler receives traffic;
// replacing it while windows are gathering races with fire.
func (s *Scheduler) SetFireHook(fn func(key string, budgets []int, waiters int, traceID string)) {
	s.onFire = fn
}

// Stats is the scheduler's counter snapshot: Batches counts coalesced
// sketch builds (each gather window that reached its build), Coalesced
// counts the requests beyond each group's first that were answered from
// a shared build.
type Stats struct {
	Batches   int64
	Coalesced int64
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() Stats {
	return Stats{Batches: s.batches.Load(), Coalesced: s.coalesced.Load()}
}

// Dominates reports whether a sketch built for the canonical budget
// vector have also serves want under merge's semantics: exactly when
// merging want in changes nothing. It is the single definition of the
// dominance test — the scheduler's late-join and Covered checks and the
// service's merged-sketch fast path and admission wave-through all rely
// on these exact semantics staying identical.
func Dominates(merge MergeFunc, have, want []int) bool {
	merged := merge(have, want)
	if len(merged) != len(have) {
		return false
	}
	for i := range merged {
		if merged[i] != have[i] {
			return false
		}
	}
	return true
}

// Submit enters one request into the scheduler: key groups requests that
// may share a sketch, budgets is this request's canonical sketch-budget
// vector, merge folds vectors within the group, and build runs the
// group's single sketch construction. It returns the shared sketch,
// whether a cache tier (hit) or a shared in-flight group (shared)
// avoided a fresh build for this caller, and the build's error. A caller
// whose ctx is canceled while waiting detaches with ctx.Err(); the
// build itself is canceled only when every waiter has detached.
func (s *Scheduler) Submit(ctx context.Context, key string, budgets []int, merge MergeFunc, build BuildFunc) (sketch any, hit, shared bool, err error) {
	s.mu.Lock()
	g := s.groups[key]
	joined := false
	if g != nil {
		switch {
		case !g.building:
			endMerge := telemetry.StartSpan(ctx, "budget_merge")
			g.budgets = merge(g.budgets, budgets)
			endMerge()
			g.waiters++
			joined = true
		case Dominates(merge, g.budgets, budgets):
			// The window already closed, but the frozen merged vector
			// dominates this request: the in-flight sketch serves it.
			g.waiters++
			joined = true
		default:
			// Too late and not covered: this request leads the next group.
			g = nil
		}
	}
	if g == nil {
		buildCtx, cancel := context.WithCancel(context.Background())
		g = &group{
			budgets:  append([]int(nil), budgets...),
			waiters:  1,
			traceID:  telemetry.FromContext(ctx).ID(),
			buildCtx: buildCtx,
			cancel:   cancel,
			done:     make(chan struct{}),
		}
		s.groups[key] = g
		ng := g
		time.AfterFunc(s.window, func() { s.fire(key, ng, build) })
	}
	s.mu.Unlock()
	if joined {
		s.coalesced.Add(1)
	}

	select {
	case <-g.done:
		return g.sketch, g.hit, joined, g.err
	case <-ctx.Done():
		s.detach(key, g)
		return nil, false, joined, ctx.Err()
	}
}

// Covered reports whether the group currently under key already has a
// merged budget vector dominating budgets — a request joining it adds
// no new sketch work. Admission control uses it to wave such requests
// through regardless of their a-priori price.
func (s *Scheduler) Covered(key string, budgets []int, merge MergeFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[key]
	return g != nil && Dominates(merge, g.budgets, budgets)
}

// fire closes the group's gather window and runs its build. It runs on
// the window timer's goroutine; waiters observe completion through
// g.done.
func (s *Scheduler) fire(key string, g *group, build BuildFunc) {
	s.mu.Lock()
	g.building = true
	merged := append([]int(nil), g.budgets...)
	waiters := g.waiters
	traceID := g.traceID
	dead := waiters == 0
	s.mu.Unlock()

	if dead {
		// Every requester left during the gather window; there is nobody
		// to answer, so skip the build entirely.
		g.err = context.Canceled
	} else {
		s.batches.Add(1)
		if s.onFire != nil {
			s.onFire(key, merged, waiters, traceID)
		}
		g.sketch, g.hit, g.err = build(g.buildCtx, merged)
	}

	s.mu.Lock()
	if s.groups[key] == g {
		delete(s.groups, key)
	}
	s.mu.Unlock()
	close(g.done)
	g.cancel()
}

// detach drops one waiter's reference. The last one out removes the
// group from its key's slot — atomically with the decrement, so no
// later submit can observe (and join) a group whose build context is
// about to be canceled — and then cancels that context (a no-op once
// the build has finished).
func (s *Scheduler) detach(key string, g *group) {
	s.mu.Lock()
	g.waiters--
	last := g.waiters == 0
	if last && s.groups[key] == g {
		delete(s.groups, key)
	}
	s.mu.Unlock()
	if last {
		g.cancel()
	}
}
