package service

import (
	"strings"
	"testing"
	"time"

	"uicwelfare/internal/graph"
)

func TestAllocateInlineEstimatePairCap(t *testing.T) {
	svc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	entry, _, err := svc.registry.Add("big", graph.FromEdges(7000, nil))
	if err != nil {
		t.Fatal(err)
	}
	req := &AllocateRequest{
		GraphID: entry.ID,
		Config:  "additive",
		Budgets: make([]int, 16),
	}
	for i := range req.Budgets {
		req.Budgets[i] = 7000 // 16 × 7000 = 112k pairs, over MaxSeedPairs
	}
	// Without an inline estimate the allocation itself is fine.
	if _, err := svc.validateAllocate(req); err != nil {
		t.Fatalf("runs=0: %v", err)
	}
	req.Runs = 1
	if _, err := svc.validateAllocate(req); err == nil || !strings.Contains(err.Error(), "seed pairs") {
		t.Fatalf("runs=1 over pair cap: err = %v", err)
	}
}

func TestInvalidateGraphDropsInFlightBuilds(t *testing.T) {
	c := NewSketchCache(8, 0, 0, nil)
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.GetOrBuild("g1|prima|x", func() (any, error) {
			<-gate
			return "sketch", nil
		})
	}()
	// Wait for the build to be registered, then invalidate mid-build.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("build never registered")
		}
		time.Sleep(time.Millisecond)
	}
	c.InvalidateGraph("g1")
	close(gate)
	<-done
	if n := c.Stats().Entries; n != 0 {
		t.Fatalf("in-flight sketch survived invalidation: %d entries", n)
	}
}
