// PS4 bundle campaign: the paper's real-parameter scenario (§4.3.4).
// A marketplace wants to seed a PlayStation 4, its controller, and three
// games — items whose utilities were learned from real bidding data
// (Table 5). No single item is worth buying alone (every singleton has
// negative utility); only the console + controller + two or more games
// carry a surplus. The example shows why bundling at the seeds is
// essential and how the three allocation algorithms compare.
//
// Run with: go run ./examples/ps4bundle
package main

import (
	"fmt"

	welfare "uicwelfare"
)

func main() {
	rng := welfare.NewRNG(7)

	// A Twitter-like follower network stand-in.
	g := welfare.GenerateNetwork("twitter", 0.5, 7)
	fmt.Printf("network: %v\n\n", g)

	// Table 5's learned utilities: prices C$260/20/5/5/5, values from
	// eBay bidding histories, Gaussian noise.
	m := welfare.RealParams()
	items := []string{"PlayStation", "controller", "game 1", "game 2", "game 3"}
	fmt.Println("deterministic utilities of key bundles:")
	show := func(name string, s welfare.ItemSet) {
		fmt.Printf("  %-28s %+.1f\n", name, m.DetUtility(s))
	}
	show("{PlayStation}", welfare.NewItemSet(0))
	show("{PlayStation, controller}", welfare.NewItemSet(0, 1))
	show("{PS, ctrl, 2 games}", welfare.NewItemSet(0, 1, 2, 3))
	show("{PS, ctrl, 3 games}", welfare.NewItemSet(0, 1, 2, 3, 4))
	fmt.Println()

	// The paper's Fig 8(b) budget split: 30/30/20/10/10 percent.
	total := 250
	budgets := []int{total * 30 / 100, total * 30 / 100, total * 20 / 100, total * 10 / 100, total * 10 / 100}
	fmt.Printf("budgets (total %d):", total)
	for i, b := range budgets {
		fmt.Printf(" %s=%d", items[i], b)
	}
	fmt.Println()

	p, err := welfare.NewProblem(g, m, budgets)
	if err != nil {
		panic(err)
	}

	type algo struct {
		name string
		run  func(*welfare.Problem, welfare.Options, *welfare.RNG) welfare.Result
	}
	for _, a := range []algo{
		{welfare.AlgoBundleGRD, welfare.BundleGRD},
		{welfare.AlgoBundleDisjoint, welfare.BundleDisjoint},
		{welfare.AlgoItemDisjoint, welfare.ItemDisjoint},
	} {
		res := a.run(p, welfare.Options{}, rng)
		est := welfare.EstimateWelfare(p, res.Alloc, welfare.NewRNG(99), 10000)
		fmt.Printf("%-12s welfare %8.1f ± %6.1f   (IMM calls: %d)\n",
			a.name, est.Mean, 1.96*est.StdErr, res.IMMInvocations)
	}
	fmt.Println("\nitem-disj earns nothing: every item alone has negative utility,")
	fmt.Println("so separated seeds never adopt and the cascade never starts.")
}
