// Command welmaxtop is a polling terminal console for a welmaxd node
// or cluster router: one screen that answers "what is this process
// doing right now" from the two observability endpoints every welmaxd
// already serves — GET /v1/metrics?format=json for gauges and latency
// histograms, and GET /v1/events for the control-plane flight
// recorder's typed event tail.
//
// Each refresh it shows request throughput and latency per route
// (rates are computed from successive histogram snapshots, so the
// first frame shows totals only), the operational gauges worth
// watching (cache, queue, admission, journal health, per-trace
// resource totals), and the most recent journal events — ownership
// flips, sketch ships, admission rejects, batch fires — so a failover
// or rebalance is visible the moment it happens.
//
//	welmaxtop -addr http://localhost:8080
//	welmaxtop -addr http://localhost:8080 -interval 1s -events 25
//	welmaxtop -addr http://localhost:8080 -once        # one plain frame (no ANSI), for scripts
//	welmaxtop -addr http://localhost:8080 -graph g-abc # event tail filtered to one graph
//
// Pointing it at a router shows the merged cluster view: the router's
// /v1/metrics relays every shard's gauges (node-labeled) and its
// /v1/events merges every shard's journal time-ordered.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"uicwelfare/internal/journal"
	"uicwelfare/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "welmaxd or router base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence")
		events   = flag.Int("events", 15, "journal events shown in the tail")
		typeF    = flag.String("type", "", "event tail filter: comma-separated journal event types")
		graphF   = flag.String("graph", "", "event tail filter: graph id")
		nodeF    = flag.String("node", "", "event tail filter: node name")
		once     = flag.Bool("once", false, "render one plain frame (no screen clearing) and exit")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()

	top := &console{
		base:   strings.TrimRight(*addr, "/"),
		client: &http.Client{Timeout: *timeout},
		tail:   *events,
		typeF:  *typeF,
		graphF: *graphF,
		nodeF:  *nodeF,
	}
	if *once {
		top.refresh()
		top.render(os.Stdout, false)
		return
	}
	for {
		top.refresh()
		top.render(os.Stdout, true)
		time.Sleep(*interval)
	}
}

// console holds the rolling state a frame is rendered from: the last
// two metrics snapshots (for rates), the event ring, and the events
// cursor (a string verbatim from the server — a bare sequence number
// on a backend, a composite node:seq list on a router).
type console struct {
	base   string
	client *http.Client
	tail   int
	typeF  string
	graphF string
	nodeF  string

	prev     telemetry.Export
	prevAt   time.Time
	cur      telemetry.Export
	curAt    time.Time
	events   []journal.Event
	cursor   string
	lastErrs []string
}

// eventsPage decodes either tier's GET /v1/events body: next_cursor is
// a JSON number on a backend and a string on the router, so it lands
// in a RawMessage and is re-serialized verbatim as the next cursor
// query parameter.
type eventsPage struct {
	Events     []journal.Event   `json:"events"`
	NextCursor json.RawMessage   `json:"next_cursor"`
	Partial    bool              `json:"partial,omitempty"`
	Errors     map[string]string `json:"errors,omitempty"`
}

func (c *console) refresh() {
	c.lastErrs = c.lastErrs[:0]

	var export telemetry.Export
	if err := c.getJSON("/v1/metrics?format=json", &export); err != nil {
		c.lastErrs = append(c.lastErrs, "metrics: "+err.Error())
	} else {
		c.prev, c.prevAt = c.cur, c.curAt
		c.cur, c.curAt = export, time.Now()
	}

	vals := url.Values{}
	vals.Set("limit", strconv.Itoa(journal.MaxLimit))
	if c.cursor != "" {
		vals.Set("cursor", c.cursor)
	}
	if c.typeF != "" {
		vals.Set("type", c.typeF)
	}
	if c.graphF != "" {
		vals.Set("graph", c.graphF)
	}
	if c.nodeF != "" {
		vals.Set("node", c.nodeF)
	}
	var page eventsPage
	if err := c.getJSON("/v1/events?"+vals.Encode(), &page); err != nil {
		c.lastErrs = append(c.lastErrs, "events: "+err.Error())
		return
	}
	if next := strings.Trim(string(page.NextCursor), `"`); next != "" && next != "null" {
		c.cursor = next
	}
	c.events = append(c.events, page.Events...)
	if len(c.events) > c.tail {
		c.events = c.events[len(c.events)-c.tail:]
	}
	for src, msg := range page.Errors {
		c.lastErrs = append(c.lastErrs, "events["+src+"]: "+msg)
	}
	sort.Strings(c.lastErrs)
}

func (c *console) getJSON(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// render draws one frame. With ansi it repaints in place (clear +
// home); without it the frame is plain text suitable for piping.
func (c *console) render(w io.Writer, ansi bool) {
	var b strings.Builder
	if ansi {
		b.WriteString("\x1b[2J\x1b[H")
	}
	fmt.Fprintf(&b, "welmaxtop  %s  %s\n", c.base, time.Now().Format("15:04:05"))
	for _, e := range c.lastErrs {
		fmt.Fprintf(&b, "  ! %s\n", e)
	}
	b.WriteByte('\n')

	c.renderRoutes(&b)
	c.renderGauges(&b)
	c.renderEvents(&b)
	fmt.Fprint(w, b.String())
}

// renderRoutes shows per-route request throughput and latency from
// welmax_http_request_duration_seconds, with rates diffed against the
// previous snapshot.
func (c *console) renderRoutes(b *strings.Builder) {
	type row struct {
		route string
		count int64
		rate  float64
		avgMS float64
		p95MS float64
	}
	prevCount := map[string]int64{}
	for _, h := range c.prev.Histograms {
		if h.Name == "welmax_http_request_duration_seconds" {
			prevCount[labelValue(h.Labels, "route")] += h.Count
		}
	}
	dt := c.curAt.Sub(c.prevAt).Seconds()
	var rows []row
	for _, h := range c.cur.Histograms {
		if h.Name != "welmax_http_request_duration_seconds" || h.Count == 0 {
			continue
		}
		route := labelValue(h.Labels, "route")
		r := row{route: route, count: h.Count, avgMS: h.SumSeconds / float64(h.Count) * 1e3, p95MS: quantileMS(h, 0.95)}
		if dt > 0 {
			if d := h.Count - prevCount[route]; d > 0 {
				r.rate = float64(d) / dt
			}
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Fprintf(b, "%-36s %10s %8s %9s %9s\n", "ROUTE", "REQS", "REQ/S", "AVG", "P95")
	for _, r := range rows {
		fmt.Fprintf(b, "%-36s %10d %8.1f %8.1fms %8.1fms\n", r.route, r.count, r.rate, r.avgMS, r.p95MS)
	}
	b.WriteByte('\n')
}

// watchedGauges are the operational series worth a fixed slot on the
// board, in display order.
var watchedGauges = []string{
	"welmax_graphs",
	"welmax_jobs_queue_depth",
	"welmax_workers_busy",
	"welmax_sketch_cache_entries",
	"welmax_sketch_cache_hits",
	"welmax_sketch_cache_misses",
	"welmax_sketch_cache_evictions",
	"welmax_batch_builds",
	"welmax_batch_coalesced_requests",
	"welmax_admission_rejects",
	"welmax_cluster_rebalances",
	"welmax_cluster_sketch_ships",
	"welmax_journal_events_total",
	"welmax_journal_dropped_total",
	"welmax_journal_ring_depth",
}

func (c *console) renderGauges(b *strings.Builder) {
	byName := map[string]float64{}
	var resources []telemetry.Gauge
	for _, g := range c.cur.Gauges {
		switch g.Name {
		case "welmax_resource_total":
			resources = append(resources, g)
		default:
			// Cluster expositions carry the same series once per node;
			// summing gives the fleet view and is a no-op on one backend.
			byName[g.Name] += g.Value
		}
	}
	col := 0
	for _, name := range watchedGauges {
		v, ok := byName[name]
		if !ok {
			continue
		}
		fmt.Fprintf(b, "%-32s %12s   ", strings.TrimPrefix(name, "welmax_"), formatValue(v))
		if col++; col%2 == 0 {
			b.WriteByte('\n')
		}
	}
	if col%2 != 0 {
		b.WriteByte('\n')
	}
	if len(resources) > 0 {
		kinds := map[string]float64{}
		for _, g := range resources {
			kinds[labelValue(g.Labels, "kind")] += g.Value
		}
		names := make([]string, 0, len(kinds))
		for k := range kinds {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("resources:")
		for _, k := range names {
			fmt.Fprintf(b, "  %s=%s", k, formatValue(kinds[k]))
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
}

func (c *console) renderEvents(b *strings.Builder) {
	fmt.Fprintf(b, "EVENTS (last %d)\n", c.tail)
	if len(c.events) == 0 {
		b.WriteString("  (none yet)\n")
		return
	}
	for _, e := range c.events {
		fmt.Fprintf(b, "%s  %-18s %s\n", e.TS.Format("15:04:05.000"), e.Type, eventDetail(e))
	}
}

// eventDetail flattens an event's populated fields into one line.
func eventDetail(e journal.Event) string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("node", e.Node)
	add("graph", e.Graph)
	if e.From != "" || e.To != "" {
		parts = append(parts, e.From+"→"+e.To)
	}
	add("job", e.Job)
	add("sweep", e.Sweep)
	add("cell", e.Cell)
	if e.Count != 0 {
		parts = append(parts, "n="+strconv.FormatInt(e.Count, 10))
	}
	if e.Bytes != 0 {
		parts = append(parts, "bytes="+strconv.FormatInt(e.Bytes, 10))
	}
	if e.WaitMS != 0 {
		parts = append(parts, "wait="+strconv.FormatInt(e.WaitMS, 10)+"ms")
	}
	add("reason", e.Reason)
	add("err", e.Error)
	add("trace", e.TraceID)
	return strings.Join(parts, " ")
}

func labelValue(labels []telemetry.Label, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// quantileMS estimates a latency quantile in milliseconds from the
// snapshot's fixed power-of-two buckets (upper-bound attribution, the
// usual histogram-quantile pessimism).
func quantileMS(h telemetry.HistSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	bounds := telemetry.BucketBounds()
	target := int64(float64(h.Count) * q)
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum > target {
			if i < len(bounds) {
				return bounds[i] * 1e3
			}
			// +Inf bucket: the best available bound is the last finite one.
			return bounds[len(bounds)-1] * 1e3
		}
	}
	return bounds[len(bounds)-1] * 1e3
}

func formatValue(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 1, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 1, 64) + "M"
	case v >= 1e4:
		return strconv.FormatFloat(v/1e3, 'f', 1, 64) + "k"
	case v == float64(int64(v)):
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}
