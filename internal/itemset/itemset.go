// Package itemset provides compact bitmask representations of sets of items.
//
// The UIC model reasons about subsets of a small item universe I (the
// paper's experiments use at most ten items), so a set is stored as the bits
// of a uint32. All set algebra is O(1) and subset enumeration visits each
// submask once using the standard (sub-1)&mask walk.
package itemset

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// MaxItems is the largest universe size a Set can represent.
const MaxItems = 32

// Set is a set of item indices in [0, MaxItems) stored as a bitmask.
// The zero value is the empty set.
type Set uint32

// Empty is the empty itemset.
const Empty Set = 0

// New returns the set containing the given item indices.
func New(items ...int) Set {
	var s Set
	for _, i := range items {
		s = s.Add(i)
	}
	return s
}

// All returns the full universe {0, 1, ..., k-1}.
func All(k int) Set {
	if k <= 0 {
		return 0
	}
	if k >= MaxItems {
		return Set(^uint32(0))
	}
	return Set(uint32(1)<<uint(k) - 1)
}

// Single returns the singleton set {i}.
func Single(i int) Set { return Set(1) << uint(i) }

// Has reports whether item i is in the set.
func (s Set) Has(i int) bool { return s&Single(i) != 0 }

// Add returns s ∪ {i}.
func (s Set) Add(i int) Set { return s | Single(i) }

// Remove returns s \ {i}.
func (s Set) Remove(i int) Set { return s &^ Single(i) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Size returns |s|.
func (s Set) Size() int { return bits.OnesCount32(uint32(s)) }

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool { return s == 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool { return s != t && s.SubsetOf(t) }

// Overlaps reports whether s ∩ t ≠ ∅.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// Items returns the item indices in s in increasing order.
func (s Set) Items() []int {
	out := make([]int, 0, s.Size())
	for m := uint32(s); m != 0; {
		i := bits.TrailingZeros32(m)
		out = append(out, i)
		m &= m - 1
	}
	return out
}

// Min returns the smallest item index in s, or -1 if s is empty.
func (s Set) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(s))
}

// Max returns the largest item index in s, or -1 if s is empty.
func (s Set) Max() int {
	if s == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(uint32(s))
}

// String renders the set like "{0,2,3}". The empty set renders as "{}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for n, i := range s.Items() {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(i))
	}
	b.WriteByte('}')
	return b.String()
}

// Subsets calls fn for every subset of s, including the empty set and s
// itself. Enumeration order is the standard descending submask walk. If fn
// returns false the enumeration stops early.
func (s Set) Subsets(fn func(Set) bool) {
	sub := s
	for {
		if !fn(sub) {
			return
		}
		if sub == 0 {
			return
		}
		sub = (sub - 1) & s
	}
}

// SupersetsWithin calls fn for every set T with base ⊆ T ⊆ within. It
// enumerates the submasks of within\base and unions each with base. If fn
// returns false the enumeration stops early.
func SupersetsWithin(base, within Set, fn func(Set) bool) {
	free := within.Minus(base)
	free.Subsets(func(sub Set) bool {
		return fn(base | sub)
	})
}

// Sorted returns the given sets ordered by the numeric value of their masks.
// When items are indexed in non-increasing budget order this is exactly the
// paper's precedence order ≺ (see blocks package).
func Sorted(sets []Set) []Set {
	out := make([]Set, len(sets))
	copy(out, sets)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
