package graph

import (
	"math"
	"sort"

	"uicwelfare/internal/stats"
)

// PowerLawSequence draws n integer degrees from a discrete power law
// P[d] ∝ d^(-alpha) on [minDeg, maxDeg], via inverse-CDF sampling of the
// continuous Pareto and rounding. Real social networks have alpha in
// roughly [2, 3]; Table 2's heavy-tailed stand-ins use it through
// ConfigurationModel.
func PowerLawSequence(n int, alpha float64, minDeg, maxDeg int, rng *stats.RNG) []int {
	if minDeg < 1 {
		minDeg = 1
	}
	if maxDeg < minDeg {
		maxDeg = minDeg
	}
	if alpha <= 1 {
		alpha = 2.1
	}
	out := make([]int, n)
	lo := math.Pow(float64(minDeg), 1-alpha)
	hi := math.Pow(float64(maxDeg)+1, 1-alpha)
	for i := range out {
		u := rng.Float64()
		x := math.Pow(lo+(hi-lo)*u, 1/(1-alpha))
		d := int(x)
		if d < minDeg {
			d = minDeg
		}
		if d > maxDeg {
			d = maxDeg
		}
		out[i] = d
	}
	return out
}

// ConfigurationModel builds an undirected graph realizing (approximately)
// the given degree sequence by the stub-matching construction: each node
// contributes degree-many stubs, stubs are shuffled and paired. Self
// loops and parallel pairs are dropped (the standard simplification), so
// realized degrees can fall slightly below the request for heavy-tailed
// sequences. Edges are stored in both directions.
func ConfigurationModel(degrees []int, rng *stats.RNG) *Graph {
	n := len(degrees)
	var stubs []NodeID
	total := 0
	for _, d := range degrees {
		total += d
	}
	stubs = make([]NodeID, 0, total+1)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	if len(stubs)%2 == 1 {
		// odd stub count: drop one stub from a max-degree node
		maxAt := 0
		for v, d := range degrees {
			if d > degrees[maxAt] {
				maxAt = v
			}
		}
		for i, s := range stubs {
			if s == NodeID(maxAt) {
				stubs = append(stubs[:i], stubs[i+1:]...)
				break
			}
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		b.AddUndirected(u, v, 0)
	}
	return b.Build()
}

// PowerLawGraph is the convenience composition: an undirected graph with
// power-law degrees averaging close to target avg degree. It computes the
// minimum degree achieving the requested average under the exponent.
func PowerLawGraph(n int, alpha, avgDeg float64, rng *stats.RNG) *Graph {
	maxDeg := int(math.Sqrt(float64(n))) * 2
	// binary-search the minimum degree whose sequence mean ≈ avgDeg
	lo, hi := 1, maxDeg
	best := 1
	for lo <= hi {
		mid := (lo + hi) / 2
		m := meanPowerLaw(alpha, mid, maxDeg)
		if m < avgDeg {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	seq := PowerLawSequence(n, alpha, best, maxDeg, rng)
	return ConfigurationModel(seq, rng)
}

// meanPowerLaw returns the mean of the discrete power law on
// [minDeg, maxDeg] with exponent alpha.
func meanPowerLaw(alpha float64, minDeg, maxDeg int) float64 {
	num, den := 0.0, 0.0
	for d := minDeg; d <= maxDeg; d++ {
		w := math.Pow(float64(d), -alpha)
		num += float64(d) * w
		den += w
	}
	if den == 0 {
		return float64(minDeg)
	}
	return num / den
}

// DegreeExponentEstimate fits the power-law exponent of a graph's degree
// distribution by the discrete Hill/MLE estimator over degrees >= dmin,
// useful for validating that generated stand-ins are heavy-tailed like
// their targets.
func DegreeExponentEstimate(g *Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var degs []float64
	for v := NodeID(0); int(v) < g.N(); v++ {
		if d := g.OutDegree(v); d >= dmin {
			degs = append(degs, float64(d))
		}
	}
	if len(degs) < 2 {
		return 0
	}
	sort.Float64s(degs)
	sum := 0.0
	for _, d := range degs {
		sum += math.Log(d / (float64(dmin) - 0.5))
	}
	return 1 + float64(len(degs))/sum
}
