package graph

import "fmt"

// CSR returns the graph's out-adjacency arrays in compressed-sparse-row
// form: outIndex[v]..outIndex[v+1] delimits v's out-edges in outTo and
// outProb, with each row sorted by target and free of duplicates and
// self-loops (Builder's canonical form). The slices alias internal
// storage and must not be modified. Together with FromCSR this is the
// serialization seam: a graph round-trips through exactly these three
// arrays.
func (g *Graph) CSR() (outIndex []int64, outTo []NodeID, outProb []float32) {
	return g.outIndex, g.outTo, g.outProb
}

// FromCSR constructs a Graph directly from canonical out-CSR arrays,
// skipping the Builder's sort-and-dedup pass. The arrays must be in the
// form CSR returns — monotone outIndex starting at 0, every row strictly
// sorted by target with no self-loops, probabilities in [0, 1] — and are
// validated; a malformed input (e.g. a corrupt or hand-built file)
// returns an error rather than a broken graph. The in-adjacency and the
// in-edge position map are rebuilt by counting sort, reproducing exactly
// what Builder.Build computes, so FromCSR(CSR(g)) is structurally equal
// to g. The slices are retained; callers must not modify them afterwards.
func FromCSR(n int, outIndex []int64, outTo []NodeID, outProb []float32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	if len(outIndex) != n+1 {
		return nil, fmt.Errorf("graph: outIndex has %d entries, want n+1 = %d", len(outIndex), n+1)
	}
	if outIndex[0] != 0 {
		return nil, fmt.Errorf("graph: outIndex[0] = %d, want 0", outIndex[0])
	}
	m := len(outTo)
	if len(outProb) != m {
		return nil, fmt.Errorf("graph: %d targets but %d probabilities", m, len(outProb))
	}
	if outIndex[n] != int64(m) {
		return nil, fmt.Errorf("graph: outIndex ends at %d, want edge count %d", outIndex[n], m)
	}
	for v := 0; v < n; v++ {
		lo, hi := outIndex[v], outIndex[v+1]
		if hi < lo {
			return nil, fmt.Errorf("graph: outIndex not monotone at node %d", v)
		}
		for j := lo; j < hi; j++ {
			t := outTo[j]
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("graph: edge target %d out of range [0, %d)", t, n)
			}
			if int(t) == v {
				return nil, fmt.Errorf("graph: self-loop at node %d", v)
			}
			if j > lo && outTo[j-1] >= t {
				return nil, fmt.Errorf("graph: out-edges of node %d not strictly sorted", v)
			}
			if p := outProb[j]; p < 0 || p > 1 {
				return nil, fmt.Errorf("graph: probability %v out of [0,1]", p)
			}
		}
	}

	g := &Graph{
		n:         n,
		m:         m,
		outIndex:  outIndex,
		outTo:     outTo,
		outProb:   outProb,
		inIndex:   make([]int64, n+1),
		inFrom:    make([]NodeID, m),
		inProb:    make([]float32, m),
		inEdgePos: make([]int64, m),
	}
	for _, v := range outTo {
		g.inIndex[v+1]++
	}
	for i := 0; i < n; i++ {
		g.inIndex[i+1] += g.inIndex[i]
	}
	cursor := make([]int64, n)
	copy(cursor, g.inIndex[:n])
	for u := 0; u < n; u++ {
		for pos := outIndex[u]; pos < outIndex[u+1]; pos++ {
			v := outTo[pos]
			j := cursor[v]
			cursor[v]++
			g.inFrom[j] = NodeID(u)
			g.inProb[j] = outProb[pos]
			g.inEdgePos[j] = pos
		}
	}
	return g, nil
}
