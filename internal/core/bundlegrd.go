package core

import (
	"context"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
)

// Options configures the allocation algorithms; zero values default to
// the paper's ε = 0.5, ℓ = 1.
type Options struct {
	Eps float64
	Ell float64
	// Cascade selects the diffusion model all seed selection samples
	// against (IC default, or LT). The paper's results carry over to any
	// triggering model (§5).
	Cascade graph.Cascade
	// Progress, when non-nil, receives sketch-construction events from
	// the planner as RR sampling proceeds.
	Progress progress.Func
	// SketchWorkers is the RR-set growth parallelism handed to the
	// sketch builders (prima/imm Options.Workers): sampling shards
	// across this many goroutines with deterministic per-worker RNG
	// streams. 0 or 1 keeps the legacy serial path.
	SketchWorkers int
}

// Result is an allocation plus the effort statistics the experiments
// report (Figs. 5-6, Table 6).
type Result struct {
	Alloc *uic.Allocation
	// SeedOrder is the prefix-preserving ordering bundleGRD assigned
	// from; empty for baselines that do not produce one.
	SeedOrder []graph.NodeID
	// NumRRSets is the size of the final RR-set collection(s) — the
	// memory metric of Fig. 6 / Table 6.
	NumRRSets int
	// TotalRRSets includes discarded phase-1 samples.
	TotalRRSets int
	// IMMInvocations counts how many times an IMM-family seed selection
	// ran (bundleGRD: 1 PRIMA call; item-disj: 1; bundle-disj: several).
	IMMInvocations int
}

// BundleGRD is Algorithm 1: select the top-b nodes with the
// prefix-preserving PRIMA ordering (b the maximum budget), then assign
// item i to the top-b_i prefix. By Theorem 2 the resulting allocation is
// a (1-1/e-ε)-approximation to the optimal expected social welfare with
// probability at least 1-1/n^ℓ — crucially, without ever reading the
// valuation, prices, or noise (the algorithm is parameter-free given
// mutual complementarity).
//
// Deprecated: use Plan(ctx, AlgoBundleGRD, ...) or the registered
// planner, which add cancellation and progress reporting. This wrapper
// delegates with a background context.
func BundleGRD(p *Problem, opts Options, rng *stats.RNG) Result {
	res, _ := bundleGRDPlanner{}.Plan(context.Background(), p, opts, rng) // background ctx: never canceled
	return res
}

// seedReporter adapts a progress.Func into the seed-prefix callback the
// sketch SelectReport methods take: each prefix is copied into a fresh
// int64 slice (the callback's argument aliases selection storage) and
// emitted as a StageSelect event against the selection budget. A nil
// report yields a nil callback, keeping the non-progress path free of
// per-seed overhead.
func seedReporter(report progress.Func, total int) func(prefix []graph.NodeID) {
	if report == nil {
		return nil
	}
	return func(prefix []graph.NodeID) {
		ids := make([]int64, len(prefix))
		for i, v := range prefix {
			ids[i] = int64(v)
		}
		report(progress.Event{Stage: progress.StageSelect, Done: len(prefix), Total: total, SeedPrefix: ids})
	}
}

// BundleGRDFromSketch runs bundleGRD's selection and assignment on a
// prebuilt PRIMA sketch (built for this problem's graph and budgets).
// The sketch is only read, so one cached sketch can serve many
// concurrent allocations — the fast path of the welmaxd sketch cache.
func BundleGRDFromSketch(p *Problem, sk *prima.Sketch) Result {
	return BundleGRDFromSketchProgress(p, sk, nil)
}

// BundleGRDFromSketchProgress is BundleGRDFromSketch with incremental
// seed-prefix reporting: report (when non-nil) receives StageSelect
// events carrying the ordering committed so far as the greedy selection
// runs.
func BundleGRDFromSketchProgress(p *Problem, sk *prima.Sketch, report progress.Func) Result {
	pres := sk.SelectReport(seedReporter(report, sk.MaxBudget))
	alloc := uic.NewAllocation(p.K())
	for i, b := range p.Budgets {
		if b > len(pres.Seeds) {
			b = len(pres.Seeds)
		}
		for _, v := range pres.Seeds[:b] {
			alloc.Assign(v, i)
		}
	}
	return Result{
		Alloc:          alloc,
		SeedOrder:      pres.Seeds,
		NumRRSets:      pres.NumRRSets,
		TotalRRSets:    pres.TotalRRSets,
		IMMInvocations: 1,
	}
}
