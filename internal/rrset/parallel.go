package rrset

import (
	"context"
	"sync"
	"sync/atomic"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/telemetry"
)

// GrowParallelCtx grows the collection to at least target RR sets using
// the given number of worker goroutines. workers <= 1 delegates to the
// serial GrowCtx path unchanged (same RNG draws, same result — the
// legacy behavior).
//
// For workers > 1 the growth is deterministic for a fixed (rng state,
// workers) pair, independent of goroutine scheduling:
//
//   - one base seed is drawn from rng (a single Uint64), and worker w's
//     private RNG is seeded from the (w+1)-th splitmix64 expansion of
//     that base — per-worker streams that never contend and never
//     interleave;
//   - the target is split into fixed chunks of growChunk sets, chunk j
//     statically assigned to worker j mod workers; each worker samples
//     its chunks in increasing j with its one sequential stream, so
//     chunk contents depend only on (base, w, chunk sequence);
//   - workers sample into private buffers; after all workers finish,
//     the chunks are merged into the collection in chunk-index order,
//     so Members()/Offsets() are byte-identical across runs.
//
// EdgesVisited and progress are accumulated through atomics while
// workers run; report (when non-nil) observes a monotone done count.
// Cancellation is checked once per chunk per worker; on ctx error the
// collection is left exactly as it was — no partial merge.
func (c *Collection) GrowParallelCtx(ctx context.Context, target int64, rng *stats.RNG, workers int, report func(done, target int64)) error {
	if workers <= 1 {
		return c.GrowCtx(ctx, target, rng, report)
	}
	start := int64(c.Len())
	need := target - start
	if need <= 0 {
		return nil
	}
	defer telemetry.StartSpan(ctx, "rrset_grow_parallel")()
	defer func() {
		telemetry.AddResource(ctx, telemetry.ResRRSetsGrown, int64(c.Len())-start)
	}()

	numChunks := int((need + growChunk - 1) / growChunk)
	if workers > numChunks {
		workers = numChunks
	}

	// Per-worker RNG seeds: one Uint64 from the caller's stream (so the
	// caller's stream advances by exactly one draw per parallel grow),
	// then worker w's stream is NewRNG(base + w)'s first output fed back
	// through NewRNG — the splitmix64 expansion inside NewRNG decorrelates
	// the consecutive raw seeds.
	base := rng.Uint64()
	seeds := make([]uint64, workers)
	for w := range seeds {
		seeds[w] = stats.NewRNG(base + uint64(w)).Uint64()
	}

	// chunkSpan records where chunk j's sets landed inside its worker's
	// private buffers; indices (not slices) stay valid across buffer
	// reallocation.
	type chunkSpan struct {
		memStart, memEnd   int
		sizeStart, sizeEnd int
	}
	type workerOut struct {
		buf   []graph.NodeID
		sizes []int32
	}
	chunks := make([]chunkSpan, numChunks)
	outs := make([]workerOut, workers)

	c.ensureParSamplers(workers)

	var done atomic.Int64
	var reportMu sync.Mutex
	lastReported := start
	progress := func(sets int64) {
		if report == nil {
			return
		}
		d := start + done.Add(sets)
		reportMu.Lock()
		if d > lastReported {
			lastReported = d
			report(d, target)
		}
		reportMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := stats.NewRNG(seeds[w])
			smp := c.parSamplers[w]
			var buf []graph.NodeID
			var sizes []int32
			edgesBase := smp.EdgesVisited
			for j := w; j < numChunks; j += workers {
				if ctx.Err() != nil {
					break
				}
				lo := int64(j) * growChunk
				hi := lo + growChunk
				if hi > need {
					hi = need
				}
				sp := &chunks[j]
				sp.memStart, sp.sizeStart = len(buf), len(sizes)
				for s := lo; s < hi; s++ {
					before := len(buf)
					buf = smp.Sample(wrng, buf)
					sizes = append(sizes, int32(len(buf)-before))
				}
				sp.memEnd, sp.sizeEnd = len(buf), len(sizes)
				atomic.AddInt64(&c.parEdges, smp.EdgesVisited-edgesBase)
				edgesBase = smp.EdgesVisited
				progress(hi - lo)
			}
			outs[w] = workerOut{buf: buf, sizes: sizes}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Merge in chunk-index order: the single mutating pass, after every
	// worker has stopped touching its buffers.
	for j := 0; j < numChunks; j++ {
		o := &outs[j%workers]
		sp := chunks[j]
		pos := sp.memStart
		for _, sz := range o.sizes[sp.sizeStart:sp.sizeEnd] {
			id := int32(c.Len())
			set := o.buf[pos : pos+int(sz)]
			c.members = append(c.members, set...)
			for _, v := range set {
				c.coverOf[v] = append(c.coverOf[v], id)
			}
			c.offsets = append(c.offsets, int64(len(c.members)))
			pos += int(sz)
		}
	}
	if report != nil {
		reportMu.Lock()
		if int64(c.Len()) > lastReported {
			lastReported = int64(c.Len())
			report(int64(c.Len()), target)
		}
		reportMu.Unlock()
	}
	return nil
}

// ensureParSamplers sizes the pooled per-worker samplers (reused across
// adaptive rounds) and syncs their cascade/node-coin configuration with
// the collection's primary sampler.
func (c *Collection) ensureParSamplers(workers int) {
	for len(c.parSamplers) < workers {
		c.parSamplers = append(c.parSamplers, NewSampler(c.g))
	}
	for _, smp := range c.parSamplers[:workers] {
		smp.Cascade = c.sampler.Cascade
		smp.NodeCoin = c.sampler.NodeCoin
	}
}

// Clone returns a deep copy of the collection sharing nothing mutable
// with the original: members, offsets, and the inverted index are
// copied, and the clone gets a fresh sampler carrying the original's
// cascade, node coin, and cumulative width statistic. The original may
// keep serving concurrent readers (the sketch-cache contract) while the
// clone is grown further — the ExtendSketch seam.
func (c *Collection) Clone() *Collection {
	coverOf := make([][]int32, len(c.coverOf))
	for i, ids := range c.coverOf {
		if len(ids) > 0 {
			coverOf[i] = append([]int32(nil), ids...)
		}
	}
	nc := &Collection{
		g:       c.g,
		members: append([]graph.NodeID(nil), c.members...),
		offsets: append([]int64(nil), c.offsets...),
		coverOf: coverOf,
		sampler: NewSampler(c.g),
	}
	nc.sampler.Cascade = c.sampler.Cascade
	nc.sampler.NodeCoin = c.sampler.NodeCoin
	nc.sampler.EdgesVisited = c.EdgesVisited()
	return nc
}
