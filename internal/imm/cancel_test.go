package imm

import (
	"context"
	"errors"
	"testing"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
)

func TestBuildSketchCtxPreCanceled(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, stats.NewRNG(1)).WeightedCascade()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sk, err := BuildSketchCtx(ctx, g, 10, Options{}, stats.NewRNG(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sk != nil {
		t.Fatalf("canceled build returned a sketch: %+v", sk)
	}
	if _, err := RunCtx(ctx, g, 10, Options{}, stats.NewRNG(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want context.Canceled", err)
	}
}

// TestBuildSketchCtxCancelDuringGrowth cancels from inside the progress
// callback — i.e. mid-sampling — and checks the builder aborts with the
// context error instead of finishing the phase.
func TestBuildSketchCtxCancelDuringGrowth(t *testing.T) {
	g := graph.BarabasiAlbert(500, 4, stats.NewRNG(1)).WeightedCascade()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	opts := Options{Progress: func(progress.Event) {
		events++
		if events == 1 {
			cancel()
		}
	}}
	_, err := BuildSketchCtx(ctx, g, 10, opts, stats.NewRNG(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if events == 0 {
		t.Fatal("no progress events before cancellation")
	}
}

func TestBuildSketchProgressMonotone(t *testing.T) {
	g := graph.BarabasiAlbert(400, 4, stats.NewRNG(1)).WeightedCascade()
	lastDone, lastRound := 0, 0
	opts := Options{Progress: func(ev progress.Event) {
		if ev.Stage != progress.StageSketch {
			t.Errorf("unexpected stage %q", ev.Stage)
		}
		if ev.Round < lastRound {
			t.Errorf("round went backwards: %d after %d", ev.Round, lastRound)
		}
		if ev.Round == lastRound && ev.Done < lastDone {
			t.Errorf("done went backwards within round %d: %d after %d", ev.Round, ev.Done, lastDone)
		}
		lastDone, lastRound = ev.Done, ev.Round
	}}
	sk, err := BuildSketchCtx(context.Background(), g, 8, opts, stats.NewRNG(2))
	if err != nil || sk == nil || sk.NumRRSets() == 0 {
		t.Fatalf("build failed: sk=%v err=%v", sk, err)
	}
	if lastRound == 0 {
		t.Fatal("no progress reported")
	}
}
