package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"uicwelfare/internal/service"
)

// Membership tracks the health of a fixed backend set. The router probes
// every backend's GET /v1/healthz each round; a backend is up when the
// probe succeeds AND reports the node name the topology expects —
// answering at b1's address with b0's identity is a miswiring that would
// route jobs to the wrong shard, so it counts as down with an
// explanatory error.
type Membership struct {
	client       *http.Client
	probeTimeout time.Duration

	mu      sync.RWMutex
	members []*member
	// onTransition, when set, observes each health transition (including
	// the first probe round's unknown→probed) as ProbeAll applies it. It
	// runs under the membership lock, so it must be cheap and must not
	// call back into Membership — the router points it at its flight
	// recorder's O(1) ring append.
	onTransition func(name string, healthy bool, errMsg string)
}

type member struct {
	backend Backend
	healthy bool
	probed  bool // at least one probe completed
	lastErr string
}

// BackendStatus is the wire view of one backend's health (part of the
// router's /v1/stats).
type BackendStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// NewMembership tracks the given backends, all initially unprobed (and
// so down until the first probe round).
func NewMembership(backends []Backend, client *http.Client, probeTimeout time.Duration) *Membership {
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	m := &Membership{client: client, probeTimeout: probeTimeout}
	for _, b := range backends {
		m.members = append(m.members, &member{backend: b})
	}
	return m
}

// ProbeAll probes every backend concurrently and applies the results,
// reporting whether any backend changed state (including the first
// round's unknown→probed transitions) — the router rebalances on change.
func (m *Membership) ProbeAll(ctx context.Context) (changed bool) {
	m.mu.RLock()
	backends := make([]Backend, len(m.members))
	for i, mem := range m.members {
		backends[i] = mem.backend
	}
	m.mu.RUnlock()

	type result struct {
		healthy bool
		errMsg  string
	}
	results := make([]result, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := m.probe(ctx, b)
			if err != nil {
				results[i] = result{false, err.Error()}
				return
			}
			results[i] = result{healthy: true}
		}()
	}
	wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	for i, mem := range m.members {
		if !mem.probed || mem.healthy != results[i].healthy {
			changed = true
			if m.onTransition != nil {
				m.onTransition(mem.backend.Name, results[i].healthy, results[i].errMsg)
			}
		}
		mem.probed = true
		mem.healthy = results[i].healthy
		mem.lastErr = results[i].errMsg
	}
	return changed
}

// SetTransitionHook installs the per-member health-transition observer
// (see the field doc). Call before the first probe round.
func (m *Membership) SetTransitionHook(fn func(name string, healthy bool, errMsg string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onTransition = fn
}

// probe checks one backend's /v1/healthz.
func (m *Membership) probe(ctx context.Context, b Backend) error {
	ctx, cancel := context.WithTimeout(ctx, m.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var hz service.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return fmt.Errorf("healthz body: %w", err)
	}
	if hz.Status != "ok" {
		return fmt.Errorf("healthz status %q", hz.Status)
	}
	if hz.Node != b.Name {
		return fmt.Errorf("backend at %s identifies as node %q, topology says %q (start it with -node %s)",
			b.URL, hz.Node, b.Name, b.Name)
	}
	return nil
}

// Alive returns the names of the healthy backends, in topology order.
func (m *Membership) Alive() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, mem := range m.members {
		if mem.healthy {
			out = append(out, mem.backend.Name)
		}
	}
	return out
}

// IsAlive reports whether the named backend is currently healthy.
func (m *Membership) IsAlive(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mem := range m.members {
		if mem.backend.Name == name {
			return mem.healthy
		}
	}
	return false
}

// URLOf returns the base URL of the named backend.
func (m *Membership) URLOf(name string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mem := range m.members {
		if mem.backend.Name == name {
			return mem.backend.URL, true
		}
	}
	return "", false
}

// Snapshot returns every backend's status for the router's stats view.
func (m *Membership) Snapshot() []BackendStatus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]BackendStatus, len(m.members))
	for i, mem := range m.members {
		out[i] = BackendStatus{
			Name:    mem.backend.Name,
			URL:     mem.backend.URL,
			Healthy: mem.healthy,
			Error:   mem.lastErr,
		}
	}
	return out
}
