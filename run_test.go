package welfare

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func runTestProblem(t *testing.T) *Problem {
	t.Helper()
	g, err := GenerateNetworkE("flixster", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, Config1(), []int{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunDefaultsAndOptions(t *testing.T) {
	p := runTestProblem(t)
	res, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != DefaultAlgorithm {
		t.Errorf("default algorithm = %q, want %q", res.Algorithm, DefaultAlgorithm)
	}
	if res.Welfare != nil {
		t.Error("welfare estimated without WithRuns")
	}
	if res.Alloc == nil || len(res.Alloc.Seeds[0]) != 5 || len(res.Alloc.Seeds[1]) != 3 {
		t.Fatalf("allocation = %+v", res.Alloc)
	}

	// The deprecated free function and Run agree for the same seed.
	legacy := BundleGRD(p, Options{}, NewRNG(1))
	if fmt.Sprint(legacy.Alloc.Seeds) != fmt.Sprint(res.Alloc.Seeds) {
		t.Error("Run and deprecated BundleGRD disagree for the same seed")
	}

	full, err := Run(context.Background(), p,
		WithAlgorithm(AlgoItemDisjoint),
		WithEps(0.4),
		WithEll(1),
		WithSeed(9),
		WithRuns(500),
		WithEstimateWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if full.Algorithm != AlgoItemDisjoint {
		t.Errorf("algorithm = %q", full.Algorithm)
	}
	if full.Welfare == nil || full.Welfare.Runs != 500 || full.Welfare.Mean <= 0 {
		t.Errorf("welfare = %+v", full.Welfare)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	p := runTestProblem(t)
	_, err := Run(context.Background(), p, WithAlgorithm("gradient-descent"))
	if err == nil || !strings.Contains(err.Error(), "gradient-descent") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunProgressAndCancellation(t *testing.T) {
	p := runTestProblem(t)

	var mu sync.Mutex
	stages := map[string]int{}
	res, err := Run(context.Background(), p,
		WithRuns(2000),
		WithProgress(func(ev Progress) {
			mu.Lock()
			stages[string(ev.Stage)]++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare == nil {
		t.Fatal("no welfare estimate")
	}
	if stages["sketch"] == 0 || stages["estimate"] == 0 {
		t.Errorf("progress stages seen: %v, want both sketch and estimate", stages)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Run: err = %v, want context.Canceled", err)
	}
}

func TestEstimateWelfareCtx(t *testing.T) {
	p := runTestProblem(t)
	res, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateWelfareCtx(context.Background(), p, res.Alloc, CascadeLT, NewRNG(2), 300, 2, nil)
	if err != nil || est.Runs != 300 || est.Mean <= 0 {
		t.Fatalf("LT estimate = %+v, err = %v", est, err)
	}
	// runs <= 0 with multiple workers must clamp to one run, not panic.
	est, err = EstimateWelfareCtx(context.Background(), p, res.Alloc, CascadeIC, NewRNG(2), 0, 4, nil)
	if err != nil || est.Runs != 1 {
		t.Fatalf("clamped estimate = %+v, err = %v", est, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateWelfareCtx(ctx, p, res.Alloc, CascadeIC, NewRNG(2), 10000, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled estimate: err = %v", err)
	}
}

func TestAlgorithmListing(t *testing.T) {
	names := AlgorithmNames()
	if len(names) < 3 {
		t.Fatalf("registry lists %v", names)
	}
	metas := Algorithms()
	if len(metas) != len(names) {
		t.Fatalf("%d metas for %d names", len(metas), len(names))
	}
	for _, m := range metas {
		if m.Name == AlgoBundleGRD && !m.SketchCacheable() {
			t.Error("bundleGRD not sketch-cacheable")
		}
	}
}

func TestGenerateNetworkE(t *testing.T) {
	g, err := GenerateNetworkE("flixster", 0.02, 1)
	if err != nil || g.N() == 0 {
		t.Fatalf("g = %v, err = %v", g, err)
	}
	if _, err := GenerateNetworkE("myspace", 1, 1); err == nil || !strings.Contains(err.Error(), "myspace") {
		t.Fatalf("unknown network: err = %v", err)
	}
	// The deprecated panicking wrapper still panics on bad input.
	defer func() {
		if recover() == nil {
			t.Error("GenerateNetwork did not panic on unknown name")
		}
	}()
	GenerateNetwork("myspace", 1, 1)
}
