// Benchmarks regenerating every table and figure of the paper's
// evaluation at reduced scale, plus ablation and substrate benchmarks.
// Run the full harness with:
//
//	go test -bench=. -benchmem
//
// Scale factors are kept small so the whole suite completes on a laptop;
// cmd/experiments runs the same drivers at full stand-in scale and
// EXPERIMENTS.md records those results.
package welfare

import (
	"sync"
	"testing"
	"time"

	"uicwelfare/internal/blocks"
	"uicwelfare/internal/core"
	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/expr"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/oracle"
	"uicwelfare/internal/prima"
	"uicwelfare/internal/rrset"
	"uicwelfare/internal/service"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// benchParams returns the reduced-scale experiment parameters used by
// the figure benchmarks.
func benchParams() expr.Params {
	return expr.Params{Scale: 0.05, Seed: 1, Runs: 300}
}

// --- Table 2 ---

func BenchmarkTable2NetworkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := expr.Table2(0.05, 1)
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// --- Figure 4: two-item welfare, configurations 1-4 ---

func benchmarkFig4(b *testing.B, cfg int) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Fig4(cfg, p)
		if err != nil {
			b.Fatal(err)
		}
		reportWelfareRatio(b, rows)
	}
}

// reportWelfareRatio attaches bundleGRD's welfare advantage over
// item-disj as a custom metric.
func reportWelfareRatio(b *testing.B, rows []expr.TwoItemRow) {
	var grd, disj float64
	for _, r := range rows {
		switch r.Algorithm {
		case "bundleGRD":
			grd += r.Welfare
		case "item-disj":
			disj += r.Welfare
		}
	}
	if disj > 0 {
		b.ReportMetric(grd/disj, "welfare-ratio")
	}
}

func BenchmarkFig4Config1(b *testing.B) { benchmarkFig4(b, 1) }
func BenchmarkFig4Config2(b *testing.B) { benchmarkFig4(b, 2) }
func BenchmarkFig4Config3(b *testing.B) { benchmarkFig4(b, 3) }
func BenchmarkFig4Config4(b *testing.B) { benchmarkFig4(b, 4) }

// --- Figures 5 and 6: running time and #RR sets per network ---

func benchmarkFig5And6(b *testing.B, network string) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Fig5And6(network, p)
		if err != nil {
			b.Fatal(err)
		}
		var grdRR, cimRR float64
		for _, r := range rows {
			switch r.Algorithm {
			case "bundleGRD":
				grdRR += float64(r.RRSets)
			case "RR-CIM":
				cimRR += float64(r.RRSets)
			}
		}
		b.ReportMetric(grdRR, "bundleGRD-RRsets")
		b.ReportMetric(cimRR, "RR-CIM-RRsets")
	}
}

func BenchmarkFig5And6Flixster(b *testing.B)    { benchmarkFig5And6(b, "flixster") }
func BenchmarkFig5And6DoubanBook(b *testing.B)  { benchmarkFig5And6(b, "douban-book") }
func BenchmarkFig5And6DoubanMovie(b *testing.B) { benchmarkFig5And6(b, "douban-movie") }
func BenchmarkFig5And6Twitter(b *testing.B)     { benchmarkFig5And6(b, "twitter") }

// --- Figure 7: multi-item welfare, configurations 5-8 ---

func benchmarkFig7(b *testing.B, cfg int) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig7(cfg, 5, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Config5(b *testing.B) { benchmarkFig7(b, 5) }
func BenchmarkFig7Config6(b *testing.B) { benchmarkFig7(b, 6) }
func BenchmarkFig7Config7(b *testing.B) { benchmarkFig7(b, 7) }
func BenchmarkFig7Config8(b *testing.B) { benchmarkFig7(b, 8) }

// --- Figure 8 ---

func BenchmarkFig8aItemsScaling(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Fig8a(5, p)
		if err != nil {
			b.Fatal(err)
		}
		// bundleGRD's time at 5 items over its time at 1 item: the paper's
		// headline is that this stays ~1 (independent of item count).
		var t1, t5 float64
		for _, r := range rows {
			if r.Algorithm == "bundleGRD" {
				if r.Items == 1 {
					t1 = r.Millis
				}
				if r.Items == 5 {
					t5 = r.Millis
				}
			}
		}
		if t1 > 0 {
			b.ReportMetric(t5/t1, "items5/items1-time")
		}
	}
}

func BenchmarkFig8bcRealParams(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig8bc(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8dBudgetSkew(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Fig8d(p)
		if err != nil {
			b.Fatal(err)
		}
		var uniform, large float64
		for _, r := range rows {
			switch r.Split {
			case "uniform":
				uniform = r.Welfare
			case "large-skew":
				large = r.Welfare
			}
		}
		if large > 0 {
			b.ReportMetric(uniform/large, "uniform/large-welfare")
		}
	}
}

// --- Figure 9 ---

func BenchmarkFig9BDHS(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Fig9("douban-book", []int{10, 50, 100}, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].ReachedStepPct, "pct-of-BDHS-at-full-budget")
	}
}

func BenchmarkFig9dScalability(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig9d(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 5 and 6 ---

func BenchmarkTable5Learning(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Table5(p)
		if err != nil {
			b.Fatal(err)
		}
		// report worst relative value error across the five itemsets
		worst := 0.0
		for _, r := range rows {
			e := (r.LearnedValue - r.TrueValue) / r.TrueValue
			if e < 0 {
				e = -e
			}
			if e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst*100, "worst-value-err-%")
	}
}

func BenchmarkTable6RRSetMemory(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := expr.Table6(p)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.BundleGRD)/float64(r.MaxIMM), "PRIMA/MAX_IMM")
	}
}

// --- Ablations called out in DESIGN.md ---

// BenchmarkAblationPRIMA measures bundleGRD's single PRIMA call against
// re-running IMM once per distinct budget (what a non-prefix-preserving
// implementation would have to do).
func BenchmarkAblationPRIMA(b *testing.B) {
	rng := stats.NewRNG(1)
	g := expr.Networks[0].Generate(0.1, 1)
	budgets := []int{40, 25, 10, 5, 2}
	b.Run("prima-once", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prima.Select(g, budgets, prima.Options{}, rng)
		}
	})
	b.Run("imm-per-budget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range budgets {
				imm.Run(g, k, imm.Options{}, rng)
			}
		}
	})
}

// BenchmarkAblationWelfareEstimator compares the sequential and sharded
// Monte-Carlo welfare estimators.
func BenchmarkAblationWelfareEstimator(b *testing.B) {
	rng := stats.NewRNG(2)
	g := expr.Networks[0].Generate(0.1, 2)
	m := utility.RealParams()
	p := core.MustProblem(g, m, []int{20, 20, 15, 10, 10})
	res := core.BundleGRD(p, core.Options{}, rng)
	b.Run("sequential", func(b *testing.B) {
		sim := uic.NewSimulator(g, m)
		for i := 0; i < b.N; i++ {
			sim.EstimateWelfare(res.Alloc, rng, 2000)
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uic.EstimateWelfareParallel(g, m, res.Alloc, rng, 2000, 4)
		}
	})
}

// BenchmarkAblationCascade compares the full bundleGRD+welfare pipeline
// under the IC and LT triggering models (§5's "results carry over"
// extension).
func BenchmarkAblationCascade(b *testing.B) {
	g := expr.Networks[1].Generate(0.1, 3)
	m := utility.Config1()
	p := core.MustProblem(g, m, []int{20, 10})
	for _, cascade := range []graph.Cascade{graph.CascadeIC, graph.CascadeLT} {
		b.Run(cascade.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := stats.NewRNG(uint64(i) + 1)
				res := core.BundleGRD(p, core.Options{Cascade: cascade}, rng)
				sim := uic.NewSimulator(g, m)
				sim.Cascade = cascade
				est := sim.EstimateWelfare(res.Alloc, rng, 500)
				b.ReportMetric(est.Mean, "welfare")
			}
		})
	}
}

// BenchmarkAblationOracle compares answering 8 budget queries from the
// prefix oracle against rerunning bundleGRD per query.
func BenchmarkAblationOracle(b *testing.B) {
	g := expr.Networks[0].Generate(0.1, 4)
	m := utility.Config1()
	queries := [][]int{{2, 1}, {4, 2}, {8, 3}, {16, 5}, {16, 16}, {12, 7}, {3, 3}, {16, 1}}
	b.Run("oracle", func(b *testing.B) {
		rng := stats.NewRNG(5)
		o, err := oracle.Build(g, 16, oracle.Options{}, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := o.Allocate(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("rerun-bundleGRD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				p := core.MustProblem(g, m, q)
				core.BundleGRD(p, core.Options{}, stats.NewRNG(uint64(i)+6))
			}
		}
	})
}

// --- Substrate micro-benchmarks ---

func BenchmarkRRSetSampling(b *testing.B) {
	g := expr.Networks[2].Generate(0.2, 3)
	s := rrset.NewSampler(g)
	rng := stats.NewRNG(3)
	var buf []NodeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.Sample(rng, buf[:0])
	}
}

func BenchmarkNodeSelection(b *testing.B) {
	g := expr.Networks[2].Generate(0.2, 4)
	col := rrset.NewCollection(g)
	rng := stats.NewRNG(4)
	col.Grow(20000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.NodeSelection(50)
	}
}

func BenchmarkICCascade(b *testing.B) {
	g := expr.Networks[2].Generate(0.2, 5)
	sim := diffusion.NewSim(g)
	rng := stats.NewRNG(5)
	seeds := []NodeID{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunOnce(seeds, rng)
	}
}

func BenchmarkUICDiffusion(b *testing.B) {
	g := expr.Networks[2].Generate(0.2, 6)
	m := utility.RealParams()
	sim := uic.NewSimulator(g, m)
	rng := stats.NewRNG(6)
	alloc := uic.NewAllocation(5)
	for i := 0; i < 5; i++ {
		for s := 0; s < 20; s++ {
			alloc.Assign(NodeID(s), i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunOnce(alloc, rng)
	}
}

func BenchmarkAdoptionArgmax(b *testing.B) {
	m := utility.RealParams()
	rng := stats.NewRNG(7)
	noise := m.SampleNoise(rng)
	util := m.UtilityTable(noise, nil)
	all := NewItemSet(0, 1, 2, 3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		utility.Adopt(util, all, 0)
	}
}

func BenchmarkBlockGeneration(b *testing.B) {
	m := utility.Config8(8, stats.NewRNG(8))
	rng := stats.NewRNG(9)
	noise := m.SampleNoise(rng)
	util := m.UtilityTable(noise, nil)
	budgets := []int{80, 70, 60, 50, 40, 30, 20, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blocks.Generate(blocks.Instance{Util: util, Budgets: budgets}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUtilityTable(b *testing.B) {
	m := utility.RealParams()
	rng := stats.NewRNG(10)
	noise := m.SampleNoise(rng)
	var dst []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = m.UtilityTable(noise, dst)
	}
}

// --- welmaxd service: sketch cache cold vs. warm ---

// BenchmarkServiceAllocate measures one allocation request through the
// welmaxd service layer with a cold sketch cache (every iteration
// regenerates RR sketches) versus a warm one (every iteration reuses the
// cached sketch), quantifying the daemon's amortization of sketch
// generation. Runs is 0 so the measurement isolates the allocation path.
func BenchmarkServiceAllocate(b *testing.B) {
	req := func(id string) *service.AllocateRequest {
		return &service.AllocateRequest{GraphID: id, Budgets: []int{20, 20}, Seed: 1}
	}
	// load takes the sub-benchmark's b so failures are attributed (and
	// FailNow'd) on the right goroutine.
	load := func(b *testing.B, svc *service.Service) string {
		_, g, err := service.LoadGraph(&service.GraphRequest{Network: "flixster", Scale: 0.25})
		if err != nil {
			b.Fatal(err)
		}
		entry, _, err := svc.Registry().Add("flixster", g)
		if err != nil {
			b.Fatal(err)
		}
		return entry.ID
	}
	newService := func(b *testing.B, opts service.Options) *service.Service {
		opts.Workers = 1
		svc, err := service.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		return svc
	}

	b.Run("cold", func(b *testing.B) {
		svc := newService(b, service.Options{})
		defer svc.Close()
		id := load(b, svc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc.ResetSketchCache()
			b.StartTimer()
			res, err := svc.Allocate(req(id))
			if err != nil {
				b.Fatal(err)
			}
			if res.SketchCached {
				b.Fatal("cold iteration hit the cache")
			}
		}
	})

	warm := func(b *testing.B, opts service.Options) {
		svc := newService(b, opts)
		defer svc.Close()
		id := load(b, svc)
		if _, err := svc.Allocate(req(id)); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := svc.Allocate(req(id))
			if err != nil {
				b.Fatal(err)
			}
			if !res.SketchCached {
				b.Fatal("warm iteration missed the cache")
			}
		}
	}

	b.Run("warm", func(b *testing.B) { warm(b, service.Options{}) })

	// warm-notelemetry is the telemetry overhead guard's baseline: the
	// identical warm path with tracing and histograms disabled.
	// scripts/bench_snapshot.sh compares the two and fails the smoke when
	// the instrumented path costs more than 5% over this one.
	b.Run("warm-notelemetry", func(b *testing.B) { warm(b, service.Options{TelemetryOff: true}) })
}

// BenchmarkBatchedAllocate measures the batch scheduler's coalescing
// win: 8 concurrent allocate requests that differ only in budgets
// against a cold cache, unbatched (every request builds its
// exact-budget sketch) versus batched (one gather window merges the
// budget vectors and runs a single dominating build). The
// sketchbuilds/op metric counts actual sketch constructions per
// iteration — 8 unbatched, 1 batched — and wall time follows it.
// Compare with BenchmarkServiceAllocate, which measures the same layer
// under identical repeated (not mixed-budget) load.
func BenchmarkBatchedAllocate(b *testing.B) {
	const concurrent = 8
	run := func(b *testing.B, opts service.Options) {
		svc, err := service.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		_, g, err := service.LoadGraph(&service.GraphRequest{Network: "flixster", Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		entry, _, err := svc.Registry().Add("flixster", g)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc.ResetSketchCache()
			b.StartTimer()
			var wg sync.WaitGroup
			for j := 0; j < concurrent; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					if _, err := svc.Allocate(&service.AllocateRequest{
						GraphID: entry.ID,
						Budgets: []int{j + 10, j + 11}, // all distinct
						Seed:    1,
					}); err != nil {
						b.Error(err)
					}
				}(j)
			}
			wg.Wait()
		}
		b.StopTimer()
		st := svc.Stats()
		b.ReportMetric(float64(st.SketchCache.Misses)/float64(b.N), "sketchbuilds/op")
		b.ReportMetric(float64(st.Batch.CoalescedRequests)/float64(b.N), "coalesced/op")
	}
	b.Run("unbatched", func(b *testing.B) { run(b, service.Options{Workers: 1}) })
	b.Run("batched", func(b *testing.B) {
		run(b, service.Options{Workers: 1, BatchWindow: 25 * time.Millisecond})
	})
}
