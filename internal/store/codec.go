// Package store is welmaxd's persistence subsystem: a versioned,
// checksummed binary codec for graphs (.wmg) and built RR sketches
// (.wms), content-addressed graph identifiers, and a disk tier that
// spills completed sketch builds under a data directory so a restarted
// daemon answers its first allocate from a warm path instead of
// regenerating sketches — the dominant cost of every allocation (the
// reason the in-memory cache exists at all). Stable content-addressed
// ids plus serializable sketches are also the foundation sharding needs:
// they are what one backend can hand another.
//
// The package also owns the service's cost accounting: SketchCost
// prices a built sketch's resident bytes (the cache's eviction
// currency), and CostModel calibrates the planners' a-priori cost
// estimates against observed builds — the pricing seam admission
// control charges requests against.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// File format: an 8-byte magic, a uint32 format version, a uint64
// payload length, the payload, and a CRC-32C of the payload — all
// little-endian. The payload itself is a varint-packed body defined by
// the graph and sketch codecs. Every field is verified on read: a
// truncated file, a flipped bit, or a future version yields a typed
// error (never a broken in-memory structure), which the cache layers
// treat as a miss and fall back to a rebuild.
const (
	// GraphMagic opens a .wmg graph file.
	GraphMagic = "WMGRAPH\x00"
	// SketchMagic opens a .wms sketch file.
	SketchMagic = "WMSKTCH\x00"
	// Version is the current format version of both codecs.
	Version = 1

	// maxPayload bounds a frame's declared payload so a corrupt length
	// field cannot trigger an absurd allocation before the checksum ever
	// runs (4 GiB is far beyond any sketch the daemon's caps allow).
	maxPayload = 4 << 30
)

// Typed codec errors, distinguishable with errors.Is so callers (and the
// corrupt-input tests) can tell rejection modes apart.
var (
	// ErrBadMagic reports a file that is not the expected format at all.
	ErrBadMagic = errors.New("store: bad magic")
	// ErrBadVersion reports a well-formed frame of an unsupported version.
	ErrBadVersion = errors.New("store: unsupported format version")
	// ErrChecksum reports a payload whose CRC does not match.
	ErrChecksum = errors.New("store: checksum mismatch")
	// ErrTruncated reports a frame that ends early.
	ErrTruncated = errors.New("store: truncated file")
	// ErrCorrupt reports a payload that passed the checksum but decodes
	// to an inconsistent structure (a writer bug or a deliberate forgery,
	// not random bit rot).
	ErrCorrupt = errors.New("store: corrupt payload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeFrame writes one framed payload.
func writeFrame(w io.Writer, magic string, payload []byte) error {
	var hdr [20]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(sum[:])
	return err
}

// readFrame reads and verifies one framed payload.
func readFrame(r io.Reader, magic string) ([]byte, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrBadMagic, hdr[:8], magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrBadVersion, v, Version)
	}
	size := binary.LittleEndian.Uint64(hdr[12:20])
	if size > maxPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes", ErrCorrupt, size)
	}
	// Grow the payload buffer as bytes actually arrive instead of
	// trusting the declared size with one up-front allocation: frames
	// also arrive over HTTP (graph and sketch imports), where a 20-byte
	// request forging a multi-GiB length field must not commit gigabytes
	// of zeroed memory before the short read is even detected. Growth is
	// geometric (amortized O(size) copying) but capped at the declared
	// size, so allocation stays within ~2x of the bytes actually
	// received and an honest payload's final slice is exact — no doubled
	// backing array outlives the read.
	const initialPayloadCap = 512 << 10
	payload := make([]byte, min(size, initialPayloadCap))
	read := 0
	for {
		n, err := io.ReadFull(r, payload[read:])
		read += n
		if err != nil {
			return nil, fmt.Errorf("%w: payload: read %d of %d bytes: %v", ErrTruncated, read, size, err)
		}
		if uint64(len(payload)) == size {
			break
		}
		grown := make([]byte, min(size, 2*uint64(len(payload))))
		copy(grown, payload)
		payload = grown
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrTruncated, err)
	}
	want := binary.LittleEndian.Uint32(sum[:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, got, want)
	}
	return payload, nil
}

// payloadWriter packs a frame body: varints for counts and ids, fixed
// 32/64-bit words for floats.
type payloadWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (p *payloadWriter) uvarint(x uint64) {
	n := binary.PutUvarint(p.tmp[:], x)
	p.buf.Write(p.tmp[:n])
}

func (p *payloadWriter) float32(x float32) {
	binary.LittleEndian.PutUint32(p.tmp[:4], math.Float32bits(x))
	p.buf.Write(p.tmp[:4])
}

func (p *payloadWriter) float64(x float64) {
	binary.LittleEndian.PutUint64(p.tmp[:8], math.Float64bits(x))
	p.buf.Write(p.tmp[:8])
}

func (p *payloadWriter) string(s string) {
	p.uvarint(uint64(len(s)))
	p.buf.WriteString(s)
}

// payloadReader unpacks a frame body, turning any overrun into
// ErrCorrupt (the checksum already passed, so a short body is a
// structural inconsistency, not bit rot).
type payloadReader struct {
	rest []byte
}

func (p *payloadReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(p.rest)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	p.rest = p.rest[n:]
	return x, nil
}

// count reads a varint meant to size an allocation, rejecting values
// that could not possibly fit the remaining body (each counted element
// occupies at least one byte).
func (p *payloadReader) count() (int, error) {
	x, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if x > uint64(len(p.rest)) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCorrupt, x, len(p.rest))
	}
	return int(x), nil
}

func (p *payloadReader) float32() (float32, error) {
	if len(p.rest) < 4 {
		return 0, fmt.Errorf("%w: short float32", ErrCorrupt)
	}
	x := math.Float32frombits(binary.LittleEndian.Uint32(p.rest))
	p.rest = p.rest[4:]
	return x, nil
}

func (p *payloadReader) float64() (float64, error) {
	if len(p.rest) < 8 {
		return 0, fmt.Errorf("%w: short float64", ErrCorrupt)
	}
	x := math.Float64frombits(binary.LittleEndian.Uint64(p.rest))
	p.rest = p.rest[8:]
	return x, nil
}

func (p *payloadReader) string() (string, error) {
	n, err := p.count()
	if err != nil {
		return "", err
	}
	s := string(p.rest[:n])
	p.rest = p.rest[n:]
	return s, nil
}

func (p *payloadReader) done() error {
	if len(p.rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p.rest))
	}
	return nil
}
