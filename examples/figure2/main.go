// Figure 2 walkthrough: the paper's didactic example of UIC diffusion.
// Three users, two items: i1 carries positive utility on its own, i2 is
// worthless alone but valuable next to i1, so v3 adopts i2 only after
// the cascade delivers i1 to it.
//
// Run with: go run ./examples/figure2
package main

import (
	"fmt"

	welfare "uicwelfare"
)

func main() {
	// The graph of Fig. 2: v1 -> v2, v1 -> v3, v2 -> v3 (ids 0, 1, 2),
	// each edge firing with probability 1/2.
	g := welfare.BuildGraph(3, [][3]float64{
		{0, 1, 0.5}, {0, 2, 0.5}, {1, 2, 0.5},
	})
	fmt.Println("graph: v1 -> v2, v1 -> v3, v2 -> v3 (p = 0.5 each)")

	// Utilities as in the figure (zero noise):
	//   U(i1) = +2, U(i2) = -1, U({i1,i2}) = +3.
	val, err := welfare.TableValuation(2, []float64{0, 3, 1, 6})
	if err != nil {
		panic(err)
	}
	m, err := welfare.NewModel(val,
		[]float64{1, 2},
		[]welfare.NoiseDist{welfare.GaussianNoise(0), welfare.GaussianNoise(0)})
	if err != nil {
		panic(err)
	}
	fmt.Printf("U(i1) = %+.0f, U(i2) = %+.0f, U({i1,i2}) = %+.0f\n\n",
		m.DetUtility(welfare.NewItemSet(0)),
		m.DetUtility(welfare.NewItemSet(1)),
		m.DetUtility(welfare.NewItemSet(0, 1)))

	fmt.Println("the walkthrough in the paper's possible world:")
	fmt.Println("  t=1: v1 is seeded with i1 (positive utility -> adopts)")
	fmt.Println("       v3 is seeded with i2 (negative alone -> desires but rejects)")
	fmt.Println("  t=2: edge (v1,v2) fires, edge (v1,v3) is blocked")
	fmt.Println("       v2 desires i1 and adopts it")
	fmt.Println("  t=3: edge (v2,v3) fires; v3 now desires {i1,i2}")
	fmt.Println("       U({i1,i2}) = +3 beats U(i1) = +2 -> v3 adopts the bundle")
	fmt.Println("  realized welfare: 2 + 2 + 3 = 7")
	fmt.Println()

	// Average over random edge worlds: each configuration of live edges
	// yields a different cascade, so the expectation sits below 7.
	p, err := welfare.NewProblem(g, m, []int{1, 1})
	if err != nil {
		panic(err)
	}
	alloc := &welfare.Allocation{Seeds: [][]welfare.NodeID{{0}, {2}}}
	est := welfare.EstimateWelfare(p, alloc, welfare.NewRNG(2), 400000)
	fmt.Printf("expected welfare over random edge worlds: %.3f\n", est.Mean)

	// Exact expectation by enumerating the 8 edge worlds:
	//   v1 always adopts i1 (+2)
	//   v2 adopts i1 iff (v1,v2) live (p=1/2, +2)
	//   v3 adopts {i1,i2} iff i1 reaches it (p((v1,v3) live) or
	//   ((v1,v2) and (v2,v3) live) = 1/2 + 1/8 = 5/8, +3)
	exact := 2 + 0.5*2 + (0.5+0.125)*3
	fmt.Printf("exact expectation:                        %.3f\n", exact)
}
