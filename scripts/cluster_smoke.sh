#!/usr/bin/env bash
# Cluster smoke test: boots a router in front of two welmaxd backends,
# registers a graph through the router, allocates through it, kills the
# owning backend, and verifies the router re-routes the graph to the
# survivor so the same allocate succeeds again. CI runs this against the
# real binary; the in-process equivalents live in
# internal/cluster/{router,e2e}_test.go.
set -euo pipefail

ROUTER="127.0.0.1:18090"
B0="127.0.0.1:18091"
B1="127.0.0.1:18092"
BASE="http://$ROUTER"
BIN="$(mktemp -d)/welmaxd"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

fail() { echo "cluster_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() { # $1 = base url
  for _ in $(seq 1 100); do
    if curl -fsS "$1/v1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon at $1 did not become healthy"
}

wait_job() { # $1 = job id; prints the terminal job JSON
  local view state
  for _ in $(seq 1 600); do
    view="$(curl -fsS "$BASE/v1/jobs/$1")"
    state="$(jq -r .state <<<"$view")"
    case "$state" in
      done) echo "$view"; return 0 ;;
      failed|canceled) fail "job $1 ended $state: $(jq -r .error <<<"$view")" ;;
    esac
    sleep 0.1
  done
  fail "job $1 did not finish"
}

go build -o "$BIN" ./cmd/welmaxd

# Every process shares the cluster token, so the smoke also exercises the
# authenticated import/sketch-ship path the router uses when rebalancing.
TOKEN="smoke-secret"

# -trace-sample 1 keeps every trace: the smoke asserts on a specific
# trace id below and must not lose it to tail sampling.
"$BIN" -addr "$B0" -node b0 -cluster-token "$TOKEN" -trace-sample 1 & PIDS+=($!); B0_PID=$!
"$BIN" -addr "$B1" -node b1 -cluster-token "$TOKEN" -trace-sample 1 & PIDS+=($!); B1_PID=$!
wait_healthy "http://$B0"
wait_healthy "http://$B1"

"$BIN" -addr "$ROUTER" -route "b0=http://$B0,b1=http://$B1" -probe-interval 300ms \
  -cluster-token "$TOKEN" -trace-sample 1 & PIDS+=($!)
wait_healthy "$BASE"

# Wait for the first probe round to mark both backends up.
for _ in $(seq 1 100); do
  ALIVE="$(curl -fsS "$BASE/healthz" | jq -r .alive)"
  [ "$ALIVE" = 2 ] && break
  sleep 0.1
done
[ "$ALIVE" = 2 ] || fail "router sees $ALIVE/2 backends alive"

# --- register + allocate through the router -----------------------------
GRAPH_ID="$(curl -fsS -X POST "$BASE/v1/graphs" \
  -d '{"network":"flixster","scale":0.02}' | jq -r .id)"
[ -n "$GRAPH_ID" ] && [ "$GRAPH_ID" != null ] || fail "graph registration through router"

# The graph must be resident on exactly one backend: its HRW owner.
OWNER=""
for node in b0 b1; do
  url="http://$B0"; [ "$node" = b1 ] && url="http://$B1"
  if curl -fsS "$url/v1/graphs/$GRAPH_ID" >/dev/null 2>&1; then
    [ -z "$OWNER" ] || fail "graph resident on both backends"
    OWNER="$node"
  fi
done
[ -n "$OWNER" ] || fail "graph resident on no backend"
echo "registered $GRAPH_ID on $OWNER"

# Tokenless callers must not reach the cluster-internal endpoints —
# neither directly nor through the router (which must not lend its own
# credential to client requests).
STATUS="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$B0/v1/graphs/import" --data-binary 'x')"
[ "$STATUS" = 403 ] || fail "tokenless graph import got status $STATUS, want 403"
STATUS="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/graphs/$GRAPH_ID/sketches" --data-binary 'x')"
[ "$STATUS" = 403 ] || fail "tokenless sketch import through router got status $STATUS, want 403"

JOB="$(curl -fsS -X POST "$BASE/v1/allocate" \
  -d "{\"graph_id\":\"$GRAPH_ID\",\"budgets\":[5,5]}" | jq -r .job_id)"
case "$JOB" in "$OWNER"-j*) ;; *) fail "job id $JOB does not carry owner prefix $OWNER" ;; esac
wait_job "$JOB" >/dev/null
echo "allocate through router done ($JOB)"

# --- kill the owner: the router must re-route ---------------------------
OWNER_PID=$B0_PID; OWNER_ADDR=$B0; SURVIVOR_URL="http://$B1"; SURVIVOR=b1
if [ "$OWNER" = b1 ]; then OWNER_PID=$B1_PID; OWNER_ADDR=$B1; SURVIVOR_URL="http://$B0"; SURVIVOR=b0; fi
kill "$OWNER_PID"; wait "$OWNER_PID" 2>/dev/null || true
echo "killed owner $OWNER"

# Wait for the probe to notice and the rebalance to re-ship the graph.
for _ in $(seq 1 100); do
  if curl -fsS "$SURVIVOR_URL/v1/graphs/$GRAPH_ID" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$SURVIVOR_URL/v1/graphs/$GRAPH_ID" >/dev/null || fail "graph was not re-routed to $SURVIVOR"

# Submission may race the tail of the rebalance (502 retryable); retry
# briefly, which is exactly what the error body tells clients to do.
JOB2=""
for _ in $(seq 1 50); do
  JOB2="$(curl -sS -X POST "$BASE/v1/allocate" \
    -d "{\"graph_id\":\"$GRAPH_ID\",\"budgets\":[5,5]}" | jq -r '.job_id // empty')"
  [ -n "$JOB2" ] && break
  sleep 0.1
done
case "$JOB2" in "$SURVIVOR"-j*) ;; *) fail "post-kill job ${JOB2:-<none>} not on survivor $SURVIVOR" ;; esac
wait_job "$JOB2" >/dev/null

# --- flight recorder: the failover must be reconstructable --------------
# The router's journal (merged into GET /v1/events) has to tell the story
# just observed from outside: the owner went down and the graph's
# ownership flipped to the survivor.
EVENTS="$(curl -fsS "$BASE/v1/events?graph=$GRAPH_ID&limit=1000")"
jq -e --arg from "$OWNER" --arg to "$SURVIVOR" \
  '.events | map(select(.type == "ownership_flip" and .from == $from and .to == $to)) | length >= 1' \
  <<<"$EVENTS" >/dev/null || fail "no ownership_flip $OWNER->$SURVIVOR in GET /v1/events?graph=$GRAPH_ID"
curl -fsS "$BASE/v1/events?type=member_down&node=$OWNER" \
  | jq -e '.events | length >= 1' >/dev/null \
  || fail "no member_down for $OWNER in GET /v1/events"
echo "journal records the failover (member_down $OWNER, ownership_flip $OWNER->$SURVIVOR)"

# The placement explainer must agree with reality: survivor owns it now.
PLACEMENT="$(curl -fsS "$BASE/v1/cluster/placement/$GRAPH_ID")"
[ "$(jq -r .owner <<<"$PLACEMENT")" = "$SURVIVOR" ] \
  || fail "placement reports owner $(jq -r .owner <<<"$PLACEMENT"), want $SURVIVOR"

# --- bring the owner back: sketches ship home, then a warm re-serve -----
"$BIN" -addr "$OWNER_ADDR" -node "$OWNER" -cluster-token "$TOKEN" -trace-sample 1 & PIDS+=($!)
wait_healthy "http://$OWNER_ADDR"

# The rebalance must flip ownership home and ship the survivor's warm
# sketch along; both must be visible in the journal before we re-serve.
SHIPPED=""
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/v1/events?graph=$GRAPH_ID&limit=1000" \
    | jq -e --arg from "$SURVIVOR" --arg to "$OWNER" \
      '(.events | map(select(.type == "ownership_flip" and .from == $from and .to == $to)) | length >= 1)
       and (.events | map(select(.type == "sketch_ship" and .to == $to and .count >= 1)) | length >= 1)' \
      >/dev/null 2>&1; then SHIPPED=yes; break; fi
  sleep 0.1
done
[ "$SHIPPED" = yes ] || fail "journal missing ownership_flip/sketch_ship $SURVIVOR->$OWNER after owner return"
echo "journal records the return ($SURVIVOR -> $OWNER with sketch ship)"

# The shipped sketch must make the returned owner's first allocate warm.
JOB3=""
for _ in $(seq 1 50); do
  JOB3="$(curl -sS -X POST "$BASE/v1/allocate" \
    -d "{\"graph_id\":\"$GRAPH_ID\",\"budgets\":[5,5]}" | jq -r '.job_id // empty')"
  [ -n "$JOB3" ] && break
  sleep 0.1
done
case "$JOB3" in "$OWNER"-j*) ;; *) fail "post-return job ${JOB3:-<none>} not on returned owner $OWNER" ;; esac
VIEW3="$(wait_job "$JOB3")"
[ "$(jq -r .result.sketch_cached <<<"$VIEW3")" = true ] \
  || fail "first allocate after ship-back was not served from the shipped sketch"
# Resource accounting must agree: a warm serve is a cache hit that grew
# zero RR sets.
jq -e '(.resources.cache_hits >= 1) and ((.resources.rr_sets_grown // 0) == 0)' \
  <<<"$VIEW3" >/dev/null \
  || fail "warm re-serve resources wrong: $(jq -c .resources <<<"$VIEW3")"
echo "warm re-serve on returned owner done ($JOB3)"

# --- trace waterfall: exemplar -> cross-tier span tree -------------------
# The merged export's slowest job-duration exemplar must name a
# retrievable trace, and the assembled tree must span both tiers: the
# router's edge spans grafted over the owning shard's execution spans.
EXEMPLAR="$(curl -fsS "$BASE/v1/metrics?format=json" \
  | jq -r '[.histograms[] | select(.name == "welmax_job_duration_seconds") | .exemplars[]?]
           | max_by(.seconds) | .trace_id // empty')"
[ -n "$EXEMPLAR" ] || fail "no job-duration exemplar on the router's merged metrics"
TREE="$(curl -fsS "$BASE/v1/traces/$EXEMPLAR")" \
  || fail "exemplar trace $EXEMPLAR did not resolve via GET /v1/traces/{id}"
jq -e '(.spans | map(select(.node == "router" and (.stage == "dispatch" or .stage == "proxy"))) | length >= 2)
   and (.spans | map(select(.node != "router")) | length >= 1)' <<<"$TREE" >/dev/null \
  || fail "trace $EXEMPLAR waterfall lacks router+shard spans: $(jq -c '[.spans[] | {node, stage}]' <<<"$TREE")"
echo "exemplar trace $EXEMPLAR assembles a cross-tier waterfall ($(jq '.spans | length' <<<"$TREE") spans)"

STATS="$(curl -fsS "$BASE/v1/stats")"
REBALANCES="$(jq -r .cluster.rebalances <<<"$STATS")"
[ "$REBALANCES" -ge 2 ] || fail "router reports $REBALANCES rebalances, want >= 2"

echo "cluster_smoke: OK (graph $GRAPH_ID, owner $OWNER -> $SURVIVOR -> $OWNER, rebalances $REBALANCES)"
