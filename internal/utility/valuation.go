// Package utility implements the economic side of the UIC model: item
// valuations V (supermodular for complementary products), additive prices
// P, additive zero-mean noise N, the utility U = V - P + N, and the
// utility-maximizing adoption rule with the paper's largest-cardinality
// tie-break (Fig. 1 / Lemma 1). It also ships the paper's experimental
// configurations (Tables 3-5) and the GAP-parameter conversion (Eq. 12).
package utility

import (
	"fmt"

	"uicwelfare/internal/itemset"
)

// Valuation is a set function V: 2^I -> R with V(∅) = 0. The UIC model
// requires V to be monotone; the complementary-products setting of §4
// additionally requires supermodularity, which IsSupermodular verifies.
type Valuation interface {
	// NumItems returns |I|, the size of the item universe.
	NumItems() int
	// Value returns V(s).
	Value(s itemset.Set) float64
}

// TableValuation stores V explicitly for all 2^k itemsets. It is the
// workhorse implementation: the paper's experiments use at most ten items.
type TableValuation struct {
	k    int
	vals []float64
}

// NewTableValuation wraps an explicit table indexed by itemset mask.
// It validates len(vals) == 2^k and V(∅) == 0.
func NewTableValuation(k int, vals []float64) (*TableValuation, error) {
	if k < 0 || k > itemset.MaxItems {
		return nil, fmt.Errorf("utility: bad universe size %d", k)
	}
	if len(vals) != 1<<uint(k) {
		return nil, fmt.Errorf("utility: table has %d entries, want %d", len(vals), 1<<uint(k))
	}
	if vals[0] != 0 {
		return nil, fmt.Errorf("utility: V(∅) = %v, want 0", vals[0])
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	return &TableValuation{k: k, vals: cp}, nil
}

// TableFromFunc materializes a valuation function into a table.
func TableFromFunc(k int, f func(itemset.Set) float64) (*TableValuation, error) {
	vals := make([]float64, 1<<uint(k))
	for s := range vals {
		vals[s] = f(itemset.Set(s))
	}
	return NewTableValuation(k, vals)
}

// NumItems returns the universe size.
func (t *TableValuation) NumItems() int { return t.k }

// Value returns V(s).
func (t *TableValuation) Value(s itemset.Set) float64 { return t.vals[s] }

// AdditiveValuation is the modular valuation V(S) = Σ_{i∈S} PerItem[i],
// modeling fully independent items (Configuration 5).
type AdditiveValuation struct {
	PerItem []float64
}

// NumItems returns the universe size.
func (a AdditiveValuation) NumItems() int { return len(a.PerItem) }

// Value returns the sum of member values.
func (a AdditiveValuation) Value(s itemset.Set) float64 {
	total := 0.0
	for _, i := range s.Items() {
		total += a.PerItem[i]
	}
	return total
}

// ConeValuation models a "core item" configuration (Configurations 6-7):
// itemsets containing the core item have value CoreValue plus AddOnValue
// for every further item; itemsets without the core are worthless.
type ConeValuation struct {
	K          int
	Core       int
	CoreValue  float64
	AddOnValue float64
}

// NumItems returns the universe size.
func (c ConeValuation) NumItems() int { return c.K }

// Value implements the cone shape.
func (c ConeValuation) Value(s itemset.Set) float64 {
	if !s.Has(c.Core) {
		return 0
	}
	return c.CoreValue + c.AddOnValue*float64(s.Size()-1)
}

// IsSupermodular verifies supermodularity of v exhaustively using the
// local pairwise characterization: for every set A and distinct items
// x, y ∉ A,
//
//	V(A ∪ {x,y}) - V(A ∪ {y}) >= V(A ∪ {x}) - V(A).
//
// O(2^k · k^2); intended for k <= ~15.
func IsSupermodular(v Valuation) bool {
	return violatesSupermodularity(v) == nil
}

// SupermodularityViolation describes a witness against supermodularity.
type SupermodularityViolation struct {
	A    itemset.Set
	X, Y int
}

// violatesSupermodularity returns a witness, or nil if none exists.
func violatesSupermodularity(v Valuation) *SupermodularityViolation {
	k := v.NumItems()
	for a := itemset.Set(0); a < 1<<uint(k); a++ {
		for x := 0; x < k; x++ {
			if a.Has(x) {
				continue
			}
			for y := x + 1; y < k; y++ {
				if a.Has(y) {
					continue
				}
				ax := a.Add(x)
				ay := a.Add(y)
				axy := ax.Add(y)
				if v.Value(axy)-v.Value(ay) < v.Value(ax)-v.Value(a)-1e-9 {
					return &SupermodularityViolation{A: a, X: x, Y: y}
				}
			}
		}
	}
	return nil
}

// FindSupermodularityViolation is the exported witness search, useful in
// tests and diagnostics.
func FindSupermodularityViolation(v Valuation) *SupermodularityViolation {
	return violatesSupermodularity(v)
}

// IsMonotone verifies V(S) <= V(S ∪ {x}) for all S, x exhaustively.
func IsMonotone(v Valuation) bool {
	k := v.NumItems()
	for s := itemset.Set(0); s < 1<<uint(k); s++ {
		for x := 0; x < k; x++ {
			if s.Has(x) {
				continue
			}
			if v.Value(s.Add(x)) < v.Value(s)-1e-9 {
				return false
			}
		}
	}
	return true
}

// IsSubmodular verifies submodularity (the reversed inequality), used by
// tests that exercise the competing-items discussion of §5.
func IsSubmodular(v Valuation) bool {
	k := v.NumItems()
	for a := itemset.Set(0); a < 1<<uint(k); a++ {
		for x := 0; x < k; x++ {
			if a.Has(x) {
				continue
			}
			for y := x + 1; y < k; y++ {
				if a.Has(y) {
					continue
				}
				ax, ay := a.Add(x), a.Add(y)
				if v.Value(ax.Add(y))-v.Value(ay) > v.Value(ax)-v.Value(a)+1e-9 {
					return false
				}
			}
		}
	}
	return true
}
