package cluster_test

import (
	"io"
	"net/http"
	"testing"
	"time"

	"uicwelfare/internal/cluster"
	"uicwelfare/internal/service"
)

// BenchmarkClusterAllocate measures the warm allocation path through the
// routing tier — submit via the router, stream the job to completion —
// against a 2-backend cluster. Compare with BenchmarkServiceAllocate
// (repo root) to see the proxy hop's cost on top of the single-node warm
// path.
func BenchmarkClusterAllocate(b *testing.B) {
	backends := []*backend{
		startBackendAt(b, "b0", "127.0.0.1:0", service.Options{Workers: 2}),
		startBackendAt(b, "b1", "127.0.0.1:0", service.Options{Workers: 2}),
	}
	rt, c := newCluster(b, backends, cluster.Options{
		ProbeInterval: time.Hour,
		ProxyTimeout:  30 * time.Second,
	})
	defer rt.Close()
	rt.Sync(syncCtx())

	info := c.registerLine(6)
	req := service.AllocateRequest{GraphID: info.ID, Budgets: []int{2, 2}, Seed: 1}

	// Warm the owner's sketch cache once so the loop measures the steady
	// state: route + enqueue + warm allocate + stream.
	if view := c.waitJob(c.submit("/v1/allocate", req)); view.State != service.JobDone {
		b.Fatalf("warm-up allocate failed: %s", view.Error)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobID := c.submit("/v1/allocate", req)
		// The SSE stream ends at the terminal event: a blocking wait with
		// no poll interval noise.
		resp, err := http.Get(c.base + "/v1/jobs/" + jobID + "/events")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
