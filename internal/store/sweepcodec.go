package store

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SweepExt is the sweep-result artifact format written under
// <dir>/sweeps: the third persisted artifact kind beside graphs (.wmg)
// and spilled sketches (.wms).
const SweepExt = ".wsr"

// SweepMagic opens a .wsr sweep-result file. The frame layout (magic,
// version, payload length, payload, CRC-32C) is shared with the graph
// and sketch codecs.
const SweepMagic = "WMSWEEP\x00"

// SweepCell is one finished grid cell of a sweep result: the cell's
// coordinates in the parameter grid, where it ran, and what it produced.
// It is both the codec's wire row and the JSON row GET
// /v1/sweeps/{id}/results serves.
type SweepCell struct {
	// Index is the cell's position in the deterministic grid expansion;
	// CellID is its stable name ("c<Index>").
	Index  int    `json:"index"`
	CellID string `json:"cell_id"`
	// Grid coordinates.
	GraphID string  `json:"graph_id"`
	Algo    string  `json:"algo"`
	Config  string  `json:"config"`
	Cascade string  `json:"cascade"`
	Eps     float64 `json:"eps,omitempty"`
	Budgets []int   `json:"budgets"`
	Seed    uint64  `json:"seed,omitempty"`
	// State is the cell's terminal state: "done", "failed", or
	// "canceled". A sweep completes even when some cells do not.
	State string `json:"state"`
	// Node is the backend that ran the cell (empty on a single-node
	// daemon); JobID is the per-cell job whose prefix carries the node in
	// a cluster ("b1-j42").
	Node  string `json:"node,omitempty"`
	JobID string `json:"job_id,omitempty"`
	// Welfare statistics (present when the cell ran a Monte-Carlo
	// estimate and finished).
	WelfareMean   float64 `json:"welfare_mean,omitempty"`
	WelfareStdErr float64 `json:"welfare_stderr,omitempty"`
	WelfareRuns   int     `json:"welfare_runs,omitempty"`
	// HasWelfare distinguishes "estimated 0.0" from "no estimate ran".
	HasWelfare bool `json:"has_welfare,omitempty"`
	// SketchCached reports whether the cell's sketch work was avoided by
	// a cache tier or a shared batch build.
	SketchCached bool `json:"sketch_cached,omitempty"`
	// ElapsedMS is the cell's run time; Error the failure message of a
	// failed/canceled cell.
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`
}

// SweepResult is a finished sweep's full record: the submitted spec
// (kept as raw JSON so the artifact replays the exact request), every
// cell row, and the identifiers needed to correlate it with the job
// system. It is persisted as a content-addressed .wsr artifact.
type SweepResult struct {
	// SweepID is the sweep job id the result belongs to; Name the
	// client's optional label; TraceID the sweep's request trace.
	SweepID string `json:"sweep_id"`
	Name    string `json:"name,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// SpecJSON is the submitted grid spec, verbatim.
	SpecJSON []byte `json:"spec,omitempty"`
	Cells    []SweepCell
}

// encodeSweepPayload packs the result's frame body. The payload is what
// SweepResultID hashes, so field order here is the artifact identity.
func encodeSweepPayload(res *SweepResult) []byte {
	var p payloadWriter
	p.string(res.SweepID)
	p.string(res.Name)
	p.string(res.TraceID)
	p.string(string(res.SpecJSON))
	p.uvarint(uint64(len(res.Cells)))
	for i := range res.Cells {
		c := &res.Cells[i]
		p.uvarint(uint64(c.Index))
		p.string(c.CellID)
		p.string(c.GraphID)
		p.string(c.Algo)
		p.string(c.Config)
		p.string(c.Cascade)
		p.float64(c.Eps)
		p.uvarint(uint64(len(c.Budgets)))
		for _, b := range c.Budgets {
			p.uvarint(uint64(b))
		}
		p.uvarint(c.Seed)
		p.string(c.State)
		p.string(c.Node)
		p.string(c.JobID)
		flags := uint64(0)
		if c.HasWelfare {
			flags |= 1
		}
		if c.SketchCached {
			flags |= 2
		}
		p.uvarint(flags)
		p.float64(c.WelfareMean)
		p.float64(c.WelfareStdErr)
		p.uvarint(uint64(c.WelfareRuns))
		p.uvarint(uint64(c.ElapsedMS))
		p.string(c.Error)
	}
	return p.buf.Bytes()
}

// EncodeSweepResult writes the artifact as one framed .wsr payload.
func EncodeSweepResult(w io.Writer, res *SweepResult) error {
	return writeFrame(w, SweepMagic, encodeSweepPayload(res))
}

// DecodeSweepResult reads and verifies one .wsr artifact.
func DecodeSweepResult(r io.Reader) (*SweepResult, error) {
	payload, err := readFrame(r, SweepMagic)
	if err != nil {
		return nil, err
	}
	p := payloadReader{rest: payload}
	res := &SweepResult{}
	if res.SweepID, err = p.string(); err != nil {
		return nil, err
	}
	if res.Name, err = p.string(); err != nil {
		return nil, err
	}
	if res.TraceID, err = p.string(); err != nil {
		return nil, err
	}
	spec, err := p.string()
	if err != nil {
		return nil, err
	}
	if spec != "" {
		res.SpecJSON = []byte(spec)
	}
	cells, err := p.count()
	if err != nil {
		return nil, err
	}
	res.Cells = make([]SweepCell, 0, cells)
	for i := 0; i < cells; i++ {
		var c SweepCell
		idx, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		c.Index = int(idx)
		if c.CellID, err = p.string(); err != nil {
			return nil, err
		}
		if c.GraphID, err = p.string(); err != nil {
			return nil, err
		}
		if c.Algo, err = p.string(); err != nil {
			return nil, err
		}
		if c.Config, err = p.string(); err != nil {
			return nil, err
		}
		if c.Cascade, err = p.string(); err != nil {
			return nil, err
		}
		if c.Eps, err = p.float64(); err != nil {
			return nil, err
		}
		nb, err := p.count()
		if err != nil {
			return nil, err
		}
		c.Budgets = make([]int, nb)
		for j := range c.Budgets {
			b, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			c.Budgets[j] = int(b)
		}
		if c.Seed, err = p.uvarint(); err != nil {
			return nil, err
		}
		if c.State, err = p.string(); err != nil {
			return nil, err
		}
		if c.Node, err = p.string(); err != nil {
			return nil, err
		}
		if c.JobID, err = p.string(); err != nil {
			return nil, err
		}
		flags, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		c.HasWelfare = flags&1 != 0
		c.SketchCached = flags&2 != 0
		if c.WelfareMean, err = p.float64(); err != nil {
			return nil, err
		}
		if c.WelfareStdErr, err = p.float64(); err != nil {
			return nil, err
		}
		runs, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		c.WelfareRuns = int(runs)
		el, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		c.ElapsedMS = int64(el)
		if c.Error, err = p.string(); err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, c)
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return res, nil
}

// SweepResultID content-addresses a sweep result: a SHA-256 over its
// encoded payload, truncated to 16 hex digits and prefixed "s" — the
// same convention as GraphID. The id doubles as the artifact's
// checksum: re-encoding a loaded artifact must reproduce the id, so a
// client can verify the result it fetched is the result that was
// computed.
func SweepResultID(res *SweepResult) string {
	sum := sha256.Sum256(encodeSweepPayload(res))
	return fmt.Sprintf("s%x", sum[:8])
}

func sweepsDir(dir string) string { return filepath.Join(dir, "sweeps") }

func (s *Store) sweepPath(artifactID string) string {
	return filepath.Join(sweepsDir(s.dir), artifactID+SweepExt)
}

// SaveSweep persists a finished sweep under its content id and returns
// that id. Re-saving an identical result is a cheap no-op, like
// SaveGraph.
func (s *Store) SaveSweep(res *SweepResult) (string, error) {
	id := SweepResultID(res)
	path := s.sweepPath(id)
	if _, err := os.Stat(path); err == nil {
		return id, nil
	}
	if err := writeAtomic(path, func(f *os.File) error {
		return EncodeSweepResult(f, res)
	}); err != nil {
		s.spillErrors.Add(1)
		return id, fmt.Errorf("store: sweep %s: %w", id, err)
	}
	s.spills.Add(1)
	return id, nil
}

// LoadSweep reads a persisted sweep artifact by its content id. An
// unreadable file counts as a load error and is removed, like a corrupt
// sketch spill — but unlike a sketch the caller gets the error: a sweep
// result cannot be rebuilt from anything.
func (s *Store) LoadSweep(artifactID string) (*SweepResult, error) {
	f, err := os.Open(s.sweepPath(artifactID))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := DecodeSweepResult(f)
	if err != nil {
		s.loadErrors.Add(1)
		os.Remove(s.sweepPath(artifactID))
		return nil, err
	}
	return res, nil
}

// SweepArtifactInfo is one entry of the store's sweep index: file-level
// metadata readable without decoding the artifact.
type SweepArtifactInfo struct {
	ArtifactID string    `json:"artifact_id"`
	SizeBytes  int64     `json:"size_bytes"`
	Saved      time.Time `json:"saved"`
}

// ListSweeps indexes the persisted sweep artifacts by content id,
// newest first.
func (s *Store) ListSweeps() []SweepArtifactInfo {
	entries, err := os.ReadDir(sweepsDir(s.dir))
	if err != nil {
		return nil
	}
	var out []SweepArtifactInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != SweepExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, SweepArtifactInfo{
			ArtifactID: name[:len(name)-len(SweepExt)],
			SizeBytes:  info.Size(),
			Saved:      info.ModTime(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Saved.After(out[j].Saved) })
	return out
}

// SaveSweepFile writes a standalone .wsr artifact outside any data
// directory (the cluster router's spill dir uses it) and returns the
// content id it was addressed under.
func SaveSweepFile(dir string, res *SweepResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	id := SweepResultID(res)
	err := writeAtomic(filepath.Join(dir, id+SweepExt), func(f *os.File) error {
		return EncodeSweepResult(f, res)
	})
	return id, err
}

// LoadSweepFile reads a standalone .wsr artifact by content id from dir.
func LoadSweepFile(dir, artifactID string) (*SweepResult, error) {
	f, err := os.Open(filepath.Join(dir, artifactID+SweepExt))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSweepResult(f)
}
