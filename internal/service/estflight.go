package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"

	"uicwelfare/internal/progress"
)

// estimateFlight coalesces identical concurrent estimate requests onto
// one Monte-Carlo run — the estimate-side analogue of the allocate
// batcher. Allocates coalesce by merging budget vectors inside a
// (graph, family, cascade, ε, ℓ) group; estimates have no budgets to
// merge, so the coalescible unit is the whole request: sweep cells and
// fan-in clients re-submitting the same (graph, allocation, config,
// cascade, seed, runs) storm the estimator with byte-identical work,
// and everyone after the first can share the leader's result. The
// estimate is deterministic given the request (seeded RNG), so sharing
// changes nothing observable but the work.
type estimateFlight struct {
	mu sync.Mutex
	m  map[string]*estimateCall
}

// estimateCall is one in-flight leader run; waiters block on done.
type estimateCall struct {
	done chan struct{}
	res  *EstimateResult
	err  error
}

// join returns the key's in-flight call, creating one (leader = true)
// when none exists.
func (f *estimateFlight) join(key string) (*estimateCall, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = map[string]*estimateCall{}
	}
	if c, ok := f.m[key]; ok {
		return c, false
	}
	c := &estimateCall{done: make(chan struct{})}
	f.m[key] = c
	return c, true
}

// complete publishes the leader's outcome and releases the key.
func (f *estimateFlight) complete(key string, c *estimateCall, res *EstimateResult, err error) {
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	c.res, c.err = res, err
	close(c.done)
}

// estimateKey derives the coalescing key from the request's canonical
// JSON (struct field order is deterministic). ok = false means the
// request cannot be keyed and must run uncoalesced.
func estimateKey(req *EstimateRequest) (string, bool) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// estimateCoalesced resolves an estimate through the flight group:
// the first request for a key runs it (estimateDirect), concurrent
// duplicates wait and share the result. A waiter whose leader died of
// the *leader's* cancellation — not its own — retries as the new
// leader, mirroring the sketch cache's singleflight semantics.
func (s *Service) estimateCoalesced(ctx context.Context, req *EstimateRequest, report progress.Func) (*EstimateResult, error) {
	key, ok := estimateKey(req)
	if !ok {
		return s.estimateDirect(ctx, req, report)
	}
	for {
		c, leader := s.estFlight.join(key)
		if leader {
			res, err := s.estimateDirect(ctx, req, report)
			s.estFlight.complete(key, c, res, err)
			return res, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			if c.err == nil {
				s.estimatesCoalesced.Add(1)
				return c.res, nil
			}
			if ctx.Err() == nil && (errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				continue // the leader was canceled, not us: run it ourselves
			}
			return nil, c.err
		}
	}
}
