package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uicwelfare/internal/core"
	"uicwelfare/internal/service"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
)

// blockAlgo is a registry planner that parks until its context is
// canceled — deterministic fuel for the cancellation tests, and a live
// demonstration that third-party planners plug into the daemon through
// core.Register alone.
const blockAlgo = "test-block"

func init() {
	core.Register(blockAlgo, core.Meta{
		Description: "test planner: blocks until canceled",
		Cascades:    []string{core.CascadeNameIC, core.CascadeNameLT},
	}, func() core.Planner { return blockingPlanner{} })
}

type blockingPlanner struct{}

func (blockingPlanner) Plan(ctx context.Context, p *core.Problem, opts core.Options, rng *stats.RNG) (core.Result, error) {
	select {
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	case <-time.After(60 * time.Second): // safety valve so a buggy test cannot wedge the pool
		return core.Result{}, fmt.Errorf("blockingPlanner was never canceled")
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	e := newEnv(t, service.Options{})
	var out struct {
		Algorithms []service.AlgorithmInfo `json:"algorithms"`
		Default    string                  `json:"default"`
	}
	e.doJSON("GET", "/v1/algorithms", nil, &out, http.StatusOK)
	if out.Default != core.DefaultAlgorithm {
		t.Errorf("default = %q, want %q", out.Default, core.DefaultAlgorithm)
	}
	// Every registered planner — including the test-only one — shows up.
	names := map[string]service.AlgorithmInfo{}
	for _, a := range out.Algorithms {
		names[a.Name] = a
	}
	for _, want := range core.Names() {
		if _, ok := names[want]; !ok {
			t.Errorf("registered planner %q missing from /v1/algorithms", want)
		}
	}
	if a := names[core.AlgoBundleGRD]; !a.SketchCacheable || a.SketchFamily != "prima" || !a.Default {
		t.Errorf("bundleGRD info = %+v", a)
	}
	if a := names[core.AlgoBundleDisjoint]; a.SketchCacheable || a.SketchFamily != "" {
		t.Errorf("bundle-disj info = %+v", a)
	}
	if a := names[blockAlgo]; len(a.Cascades) != 2 {
		t.Errorf("test planner info = %+v", a)
	}
}

// waitState polls until the job reaches the given state.
func (e *env) waitState(t *testing.T, id string, want service.JobState) service.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var view service.JobView
		e.doJSON("GET", "/v1/jobs/"+id, nil, &view, http.StatusOK)
		if view.State == want {
			return view
		}
		if view.State.Terminal() {
			t.Fatalf("job %s reached %q while waiting for %q (error %q)", id, view.State, want, view.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return service.JobView{}
}

func TestCancelRunningJob(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 1})
	id := e.registerGraph(t)

	jobID := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Budgets: []int{2, 2}, Algo: blockAlgo,
	})
	e.waitState(t, jobID, service.JobRunning)

	// DELETE on an active job requests cancellation (202) and the worker
	// lands the job in the canceled state, still queryable.
	status, raw := e.do("DELETE", "/v1/jobs/"+jobID, nil)
	if status != http.StatusAccepted {
		t.Fatalf("cancel: status %d: %s", status, raw)
	}
	var ack service.JobView
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.CancelRequested {
		t.Errorf("cancel ack = %+v, want cancel_requested", ack)
	}

	view := e.waitState(t, jobID, service.JobCanceled)
	if !strings.Contains(view.Error, "context canceled") {
		t.Errorf("canceled job error = %q", view.Error)
	}

	// A second DELETE removes the now-terminal job.
	status, raw = e.do("DELETE", "/v1/jobs/"+jobID, nil)
	if status != http.StatusOK || !strings.Contains(string(raw), "deleted") {
		t.Fatalf("delete finished job: status %d: %s", status, raw)
	}
	if status, _ := e.do("GET", "/v1/jobs/"+jobID, nil); status != http.StatusNotFound {
		t.Error("deleted job still queryable")
	}
	if status, _ := e.do("DELETE", "/v1/jobs/j999", nil); status != http.StatusNotFound {
		t.Error("unknown job delete: want 404")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 1})
	id := e.registerGraph(t)

	// Occupy the single worker, then queue a second job behind it.
	blocker := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Budgets: []int{2, 2}, Algo: blockAlgo,
	})
	e.waitState(t, blocker, service.JobRunning)
	queued := e.submit(t, "/v1/allocate", service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}})

	if status, _ := e.do("DELETE", "/v1/jobs/"+queued, nil); status != http.StatusAccepted {
		t.Fatalf("cancel queued: want 202, got %d", status)
	}
	// Unblock the worker; the canceled-in-queue job must finalize as
	// canceled without ever running.
	if status, _ := e.do("DELETE", "/v1/jobs/"+blocker, nil); status != http.StatusAccepted {
		t.Fatal("cancel blocker failed")
	}
	view := e.waitState(t, queued, service.JobCanceled)
	if !strings.Contains(view.Error, "before start") {
		t.Errorf("queued-cancel error = %q", view.Error)
	}
	e.waitState(t, blocker, service.JobCanceled)
}

// TestCancelMidSketchBuild cancels a genuinely expensive sketch build
// (ε at the request floor inflates θ ~100×) and checks the job stops
// before completion — the end-to-end version of the prima/imm
// cancellation unit tests.
func TestCancelMidSketchBuild(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 1})
	var info service.GraphInfo
	e.doJSON("POST", "/v1/graphs", service.GraphRequest{Network: "flixster", Scale: 0.25}, &info, http.StatusCreated)

	jobID := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: info.ID, Budgets: []int{20, 10}, Eps: 0.05,
	})
	e.waitState(t, jobID, service.JobRunning)
	start := time.Now()
	if status, _ := e.do("DELETE", "/v1/jobs/"+jobID, nil); status != http.StatusAccepted {
		t.Fatal("cancel failed")
	}
	view := e.waitState(t, jobID, service.JobCanceled)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
	if view.Result != nil {
		t.Error("canceled job has a result")
	}
}

// blockSketchAlgo is a SketchPlanner test double whose first BuildSketch
// call parks until its context is canceled (signalling `building` on
// entry); later calls return instantly. It makes the
// builder-cancellation/waiter-retry interaction deterministic.
const blockSketchAlgo = "test-block-sketch"

var (
	sketchBuilds   atomic.Int32
	sketchBuilding = make(chan struct{}, 16) // receives one token per BuildSketch entry
)

func init() {
	core.Register(blockSketchAlgo, core.Meta{
		Description:  "test planner: first sketch build blocks until canceled",
		SketchFamily: "test",
		Cascades:     []string{core.CascadeNameIC},
	}, func() core.Planner { return blockingSketchPlanner{} })
}

type blockingSketchPlanner struct{}

func (p blockingSketchPlanner) Plan(ctx context.Context, prob *core.Problem, opts core.Options, rng *stats.RNG) (core.Result, error) {
	sk, err := p.BuildSketch(ctx, prob, opts, rng)
	if err != nil {
		return core.Result{}, err
	}
	return p.PlanFromSketch(prob, sk)
}

func (blockingSketchPlanner) SketchBudgets(prob *core.Problem) []int { return prob.Budgets }

func (blockingSketchPlanner) BuildSketch(ctx context.Context, prob *core.Problem, opts core.Options, rng *stats.RNG) (any, error) {
	sketchBuilding <- struct{}{}
	if sketchBuilds.Add(1) == 1 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(60 * time.Second):
			return nil, fmt.Errorf("blocking sketch build was never canceled")
		}
	}
	return "sketch", nil
}

func (blockingSketchPlanner) PlanFromSketch(prob *core.Problem, sketch any) (core.Result, error) {
	return core.Result{Alloc: uic.NewAllocation(prob.K())}, nil
}

// TestCancelBuilderDoesNotFailWaiter pins the singleflight/cancel
// interaction: job A builds a sketch, identical job B waits on A's cache
// entry, and canceling A must not fail B — B retries as the new builder
// and completes.
func TestCancelBuilderDoesNotFailWaiter(t *testing.T) {
	sketchBuilds.Store(0) // reset the double's state so reruns (-count) stay deterministic
	for {
		select {
		case <-sketchBuilding:
			continue
		default:
		}
		break
	}

	e := newEnv(t, service.Options{Workers: 2})
	id := e.registerGraph(t)

	req := service.AllocateRequest{GraphID: id, Budgets: []int{2, 2}, Algo: blockSketchAlgo}
	builder := e.submit(t, "/v1/allocate", req)
	select {
	case <-sketchBuilding: // builder is inside BuildSketch, parked on ctx
	case <-time.After(30 * time.Second):
		t.Fatal("builder never started building")
	}
	waiter := e.submit(t, "/v1/allocate", req)
	e.waitState(t, waiter, service.JobRunning)

	if status, _ := e.do("DELETE", "/v1/jobs/"+builder, nil); status != http.StatusAccepted {
		t.Fatal("cancel builder failed")
	}
	e.waitState(t, builder, service.JobCanceled)

	// The waiter inherits the canceled build error, retries as the new
	// builder (second BuildSketch returns instantly), and completes.
	var job allocJobView
	e.waitJob(t, waiter, &job)
	if job.State != service.JobDone {
		t.Fatalf("waiter job ended %q (error %q), want done", job.State, job.Error)
	}
	if got := sketchBuilds.Load(); got != 2 {
		t.Errorf("BuildSketch ran %d times, want 2 (canceled builder + retrying waiter)", got)
	}
}

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	Name string
	Data service.JobEvent
}

// readSSE consumes the stream until a terminal event or EOF, returning
// the frames seen.
func readSSE(t *testing.T, e *env, jobID string) []sseEvent {
	t.Helper()
	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content-type %q", ct)
	}
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.Name != "" {
				events = append(events, cur)
				if cur.Data.Terminal() {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

func TestJobEventsSSE(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 2})
	id := e.registerGraph(t)

	jobID := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Budgets: []int{4, 4}, Runs: 2000,
	})
	events := readSSE(t, e, jobID)
	if len(events) < 2 {
		t.Fatalf("saw %d events, want >= 2 (progress + terminal): %+v", len(events), events)
	}
	progressCount := 0
	lastSeq := 0
	for i, ev := range events {
		if ev.Data.Seq <= lastSeq {
			t.Errorf("event %d: seq %d not increasing past %d", i, ev.Data.Seq, lastSeq)
		}
		lastSeq = ev.Data.Seq
		if ev.Name != ev.Data.Type {
			t.Errorf("SSE event name %q != payload type %q", ev.Name, ev.Data.Type)
		}
		if i < len(events)-1 {
			if ev.Data.Type != service.EventProgress {
				t.Errorf("non-terminal event %d has type %q", i, ev.Data.Type)
			}
			progressCount++
			if ev.Data.Stage == "" || ev.Data.Total <= 0 {
				t.Errorf("malformed progress event: %+v", ev.Data)
			}
		}
	}
	if progressCount < 1 {
		t.Fatalf("no progress events before the terminal one: %+v", events)
	}
	final := events[len(events)-1]
	if final.Data.Type != string(service.JobDone) {
		t.Fatalf("terminal event = %+v, want done", final.Data)
	}

	// Subscribing after completion replays history and terminates.
	replay := readSSE(t, e, jobID)
	if len(replay) < 2 || !replay[len(replay)-1].Data.Terminal() {
		t.Fatalf("replay = %+v", replay)
	}

	// Unknown jobs 404.
	resp, err := e.srv.Client().Get(e.srv.URL + "/v1/jobs/j999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d", resp.StatusCode)
	}
}

// TestJobEventsSSECanceled checks a watcher of a canceled job receives
// the canceled terminal event.
func TestJobEventsSSECanceled(t *testing.T) {
	e := newEnv(t, service.Options{Workers: 1})
	id := e.registerGraph(t)
	jobID := e.submit(t, "/v1/allocate", service.AllocateRequest{
		GraphID: id, Budgets: []int{2, 2}, Algo: blockAlgo,
	})
	e.waitState(t, jobID, service.JobRunning)

	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, e, jobID) }()
	time.Sleep(20 * time.Millisecond) // let the subscriber attach
	if status, _ := e.do("DELETE", "/v1/jobs/"+jobID, nil); status != http.StatusAccepted {
		t.Fatal("cancel failed")
	}
	select {
	case events := <-done:
		if len(events) == 0 || events[len(events)-1].Data.Type != string(service.JobCanceled) {
			t.Fatalf("events = %+v, want trailing canceled", events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate after cancellation")
	}
}
