package service

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"uicwelfare/internal/telemetry"
	"uicwelfare/internal/tracestore"
)

// TracesResponse is the body of GET /v1/traces: a page of trace
// summaries (spans stripped; the tree is one GET /v1/traces/{id} away).
// NextCursor resumes the query exactly where this page ended; it
// advances even when every examined trace was filtered out, so
// pagination always terminates.
type TracesResponse struct {
	Traces     []tracestore.Record `json:"traces"`
	NextCursor uint64              `json:"next_cursor"`
	Node       string              `json:"node,omitempty"`
	// Partial and Errors appear on the router's merged form when one or
	// more shards could not be queried.
	Partial bool              `json:"partial,omitempty"`
	Errors  map[string]string `json:"errors,omitempty"`
}

// TraceSpan is one span of an assembled trace tree, stamped with the
// node that recorded it — the single field that distinguishes the
// router's fragment from a backend's once the two are merged.
type TraceSpan struct {
	telemetry.Span
	Node string `json:"node,omitempty"`
}

// TraceTreeResponse is the body of GET /v1/traces/{id}: one trace's
// full span tree. On a backend it holds that process's fragment; on the
// router it is the cross-tier assembly — the router's dispatch/proxy
// spans plus the owning backend's spans, parented into one tree via
// X-Welmax-Span-Id propagation. Spans are sorted by start time, the
// natural waterfall order.
type TraceTreeResponse struct {
	TraceID      string           `json:"trace_id"`
	Route        string           `json:"route,omitempty"`
	Graph        string           `json:"graph,omitempty"`
	Start        time.Time        `json:"start"`
	DurationMS   float64          `json:"duration_ms"`
	Error        string           `json:"error,omitempty"`
	Kept         string           `json:"kept,omitempty"`
	Spans        []TraceSpan      `json:"spans"`
	SpansDropped int64            `json:"spans_dropped,omitempty"`
	Resources    map[string]int64 `json:"resources,omitempty"`
	// Partial and Errors appear on the router's merged form when a
	// backend fragment could not be fetched.
	Partial bool              `json:"partial,omitempty"`
	Errors  map[string]string `json:"errors,omitempty"`
}

// TraceTree converts one stored record into the tree response form.
func TraceTree(rec tracestore.Record) TraceTreeResponse {
	t := TraceTreeResponse{
		TraceID:      rec.TraceID,
		Route:        rec.Route,
		Graph:        rec.Graph,
		Start:        rec.Start,
		DurationMS:   rec.DurationMS,
		Error:        rec.Error,
		Kept:         rec.Kept,
		Spans:        []TraceSpan{},
		SpansDropped: rec.SpansDropped,
	}
	t.AddRecord(rec)
	return t
}

// AddRecord merges another fragment of the same trace into the tree:
// its spans (stamped with the fragment's node) and resource totals. The
// router uses it to graft the owning backend's fragment under its own;
// sorting restores waterfall order across fragments.
func (t *TraceTreeResponse) AddRecord(rec tracestore.Record) {
	for _, sp := range rec.Spans {
		t.Spans = append(t.Spans, TraceSpan{Span: sp, Node: rec.Node})
	}
	sort.SliceStable(t.Spans, func(i, j int) bool {
		return t.Spans[i].StartUnixNS < t.Spans[j].StartUnixNS
	})
	if len(rec.Resources) > 0 && t.Resources == nil {
		t.Resources = map[string]int64{}
	}
	for k, v := range rec.Resources {
		t.Resources[k] += v
	}
}

// ParseTraceQuery decodes the GET /v1/traces query parameters (cursor,
// limit, route, graph, min_ms, since) shared by the backend and router
// forms of the endpoint.
func ParseTraceQuery(values url.Values) (tracestore.Query, error) {
	var q tracestore.Query
	if raw := values.Get("cursor"); raw != "" {
		c, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return q, fmt.Errorf("bad cursor %q", raw)
		}
		q.After = c
	}
	if raw := values.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("bad limit %q", raw)
		}
		q.Limit = n
	}
	q.Route = values.Get("route")
	q.Graph = values.Get("graph")
	if raw := values.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			return q, fmt.Errorf("bad min_ms %q", raw)
		}
		q.MinMS = ms
	}
	if raw := values.Get("since"); raw != "" {
		ts, err := time.Parse(time.RFC3339Nano, raw)
		if err != nil {
			return q, fmt.Errorf("bad since %q (want RFC 3339)", raw)
		}
		q.Since = ts
	}
	return q, nil
}

// handleTraces implements GET /v1/traces: cursor pagination over the
// retained trace summaries with route/graph/min_ms/since filters. With
// telemetry off the store is nil and the page is cleanly empty.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	q, err := ParseTraceQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	records, next := s.traces.Traces(q)
	if records == nil {
		records = []tracestore.Record{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: records, NextCursor: next, Node: s.nodeID})
}

// handleTraceGet implements GET /v1/traces/{id}: the full span tree of
// one retained trace — ring first, spilled segments second. 404 covers
// both an unknown id and a sampled-out trace (indistinguishable by
// design), and telemetry-off, where nothing is retained at all.
func (s *Service) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q (expired, sampled out, or never seen)", id))
		return
	}
	writeJSON(w, http.StatusOK, TraceTree(rec))
}
