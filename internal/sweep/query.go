package sweep

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"uicwelfare/internal/store"
)

// ResultsResponse is the body of GET /v1/sweeps/{id}/results: the
// (possibly filtered) per-cell rows, per-state counts over the filtered
// set, and — when ?group_by= names grid dimensions — per-group welfare
// aggregates.
type ResultsResponse struct {
	SweepID string `json:"sweep_id"`
	Name    string `json:"name,omitempty"`
	// ArtifactID is the result artifact's content id; clients can verify
	// a fetched artifact by re-deriving it.
	ArtifactID string            `json:"artifact_id"`
	Counts     map[string]int    `json:"counts"`
	Cells      []store.SweepCell `json:"cells,omitempty"`
	Groups     []GroupAggregate  `json:"groups,omitempty"`
}

// GroupAggregate is one ?group_by= bucket: the dimension values that
// key it and welfare statistics over the bucket's finished cells.
type GroupAggregate struct {
	Key map[string]string `json:"key"`
	// Cells counts the bucket's rows after filtering; Estimated counts
	// those carrying a welfare estimate (the aggregates' denominator).
	Cells     int `json:"cells"`
	Estimated int `json:"estimated"`
	// Welfare mean/min/max over the bucket's estimated cells.
	WelfareMean float64 `json:"welfare_mean,omitempty"`
	WelfareMin  float64 `json:"welfare_min,omitempty"`
	WelfareMax  float64 `json:"welfare_max,omitempty"`
}

// cellDim reads one groupable/filterable dimension off a row.
func cellDim(c *store.SweepCell, dim string) (string, bool) {
	switch dim {
	case "graph", "graph_id":
		return c.GraphID, true
	case "algo":
		return c.Algo, true
	case "config":
		return c.Config, true
	case "cascade":
		return c.Cascade, true
	case "eps":
		return fmt.Sprintf("%g", c.Eps), true
	case "budgets":
		parts := make([]string, len(c.Budgets))
		for i, b := range c.Budgets {
			parts[i] = fmt.Sprintf("%d", b)
		}
		return strings.Join(parts, ","), true
	case "state":
		return c.State, true
	case "node":
		return c.Node, true
	default:
		return "", false
	}
}

// filterDims are the query parameters Query treats as row filters.
var filterDims = []string{"graph", "graph_id", "algo", "config", "cascade", "eps", "budgets", "state", "node"}

// Query applies ?<dim>=<value> filters and the ?group_by=<dim,...>
// aggregation to a result, producing the wire response.
// ?cells=false omits the per-row listing (aggregates only). Unknown
// group_by dimensions are an error; unknown query parameters are
// ignored (the endpoint shares its URL space with transport-level
// params).
func Query(res *store.SweepResult, artifactID string, q url.Values) (*ResultsResponse, error) {
	rows := make([]store.SweepCell, 0, len(res.Cells))
	for _, c := range res.Cells {
		keep := true
		for _, dim := range filterDims {
			want := q.Get(dim)
			if want == "" {
				continue
			}
			if got, _ := cellDim(&c, dim); got != want {
				keep = false
				break
			}
		}
		if keep {
			rows = append(rows, c)
		}
	}

	out := &ResultsResponse{
		SweepID:    res.SweepID,
		Name:       res.Name,
		ArtifactID: artifactID,
		Counts:     map[string]int{},
		Cells:      rows,
	}
	for i := range rows {
		out.Counts[rows[i].State]++
	}
	if q.Get("cells") == "false" {
		out.Cells = nil
	}

	groupBy := q.Get("group_by")
	if groupBy == "" {
		return out, nil
	}
	dims := strings.Split(groupBy, ",")
	for i, d := range dims {
		dims[i] = strings.TrimSpace(d)
		if _, ok := cellDim(&store.SweepCell{}, dims[i]); !ok {
			return nil, fmt.Errorf("unknown group_by dimension %q", dims[i])
		}
	}
	type agg struct {
		key  map[string]string
		a    GroupAggregate
		init bool
	}
	buckets := map[string]*agg{}
	var order []string
	for i := range rows {
		c := &rows[i]
		key := map[string]string{}
		var parts []string
		for _, d := range dims {
			v, _ := cellDim(c, d)
			key[d] = v
			parts = append(parts, d+"="+v)
		}
		bk := strings.Join(parts, "|")
		b, ok := buckets[bk]
		if !ok {
			b = &agg{key: key}
			buckets[bk] = b
			order = append(order, bk)
		}
		b.a.Cells++
		if c.State == "done" && c.HasWelfare {
			w := c.WelfareMean
			if !b.init {
				b.a.WelfareMin, b.a.WelfareMax = w, w
				b.init = true
			}
			b.a.Estimated++
			b.a.WelfareMean += w // running sum; divided by Estimated below
			if w < b.a.WelfareMin {
				b.a.WelfareMin = w
			}
			if w > b.a.WelfareMax {
				b.a.WelfareMax = w
			}
		}
	}
	sort.Strings(order)
	for _, bk := range order {
		b := buckets[bk]
		if b.a.Estimated > 0 {
			b.a.WelfareMean /= float64(b.a.Estimated)
		}
		b.a.Key = b.key
		out.Groups = append(out.Groups, b.a)
	}
	return out, nil
}
