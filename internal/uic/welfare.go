package uic

import (
	"context"
	"sync"
	"sync/atomic"

	"uicwelfare/internal/graph"
	"uicwelfare/internal/progress"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// WelfareEstimate is a Monte-Carlo estimate of the expected social
// welfare ρ(𝒮).
type WelfareEstimate struct {
	Mean   float64
	StdErr float64
	Runs   int
}

// EstimateWelfare averages `runs` independent diffusions. Each run
// samples a fresh noise world and edge world, per the definition
// ρ(𝒮) = E_{W^E}[E_{W^N}[ρ_W(𝒮)]].
func (s *Simulator) EstimateWelfare(alloc *Allocation, rng *stats.RNG, runs int) WelfareEstimate {
	est, _ := s.EstimateWelfareCtx(context.Background(), alloc, rng, runs, nil) // background ctx: never canceled
	return est
}

// estimateChunk is how many Monte-Carlo runs an estimator performs
// between cancellation checks and progress reports.
const estimateChunk = 512

// EstimateWelfareCtx is EstimateWelfare with cooperative cancellation
// and progress reporting: every estimateChunk runs it checks ctx
// (returning ctx.Err() promptly when canceled) and, when report is
// non-nil, reports StageEstimate progress.
func (s *Simulator) EstimateWelfareCtx(ctx context.Context, alloc *Allocation, rng *stats.RNG, runs int, report progress.Func) (WelfareEstimate, error) {
	if runs <= 0 {
		runs = 1
	}
	var sum stats.Summary
	for done := 0; done < runs; {
		if err := ctx.Err(); err != nil {
			return WelfareEstimate{}, err
		}
		stop := done + estimateChunk
		if stop > runs {
			stop = runs
		}
		for ; done < stop; done++ {
			sum.Add(s.RunOnce(alloc, rng))
		}
		if report != nil {
			report(progress.Event{Stage: progress.StageEstimate, Done: done, Total: runs})
		}
	}
	return WelfareEstimate{Mean: sum.Mean(), StdErr: sum.StdErr(), Runs: sum.N()}, nil
}

// WelfareGivenNoise estimates ρ_{W^N}(𝒮): the expected welfare under a
// fixed noise world, averaging over random edge worlds. The block
// accounting analysis (§4.2.2) reasons per noise world; the tests for
// Lemma 5 use this.
func (s *Simulator) WelfareGivenNoise(alloc *Allocation, noise []float64, rng *stats.RNG, runs int) float64 {
	if runs <= 0 {
		runs = 1
	}
	total := 0.0
	for i := 0; i < runs; i++ {
		total += s.RunOnceWithNoise(alloc, noise, rng)
	}
	return total / float64(runs)
}

// AdoptionCounts estimates, per item, the expected number of adopters —
// the multi-item analogue of influence spread, useful for diagnostics and
// for the Com-IC baselines whose objective is adoption count.
func (s *Simulator) AdoptionCounts(alloc *Allocation, rng *stats.RNG, runs int) []float64 {
	counts := make([]float64, s.M.K())
	if runs <= 0 {
		runs = 1
	}
	for r := 0; r < runs; r++ {
		s.RunOnce(alloc, rng)
		for _, v := range s.touched {
			for _, i := range s.adopted[v].Items() {
				counts[i]++
			}
		}
	}
	for i := range counts {
		counts[i] /= float64(runs)
	}
	return counts
}

// EstimateWelfareParallel shards the Monte-Carlo estimate across workers
// goroutines, each with its own Simulator and a Split RNG. With
// workers <= 1 it falls back to the sequential estimator.
func EstimateWelfareParallel(g *graph.Graph, m *utility.Model, alloc *Allocation, rng *stats.RNG, runs, workers int) WelfareEstimate {
	return EstimateWelfareParallelCascade(g, m, graph.CascadeIC, alloc, rng, runs, workers)
}

// EstimateWelfareParallelCascade is EstimateWelfareParallel under an
// explicit cascade model (welmaxd estimates LT instances through this).
func EstimateWelfareParallelCascade(g *graph.Graph, m *utility.Model, cascade graph.Cascade, alloc *Allocation, rng *stats.RNG, runs, workers int) WelfareEstimate {
	est, _ := EstimateWelfareParallelCascadeCtx(context.Background(), g, m, cascade, alloc, rng, runs, workers, nil)
	return est
}

// EstimateWelfareParallelCascadeCtx is EstimateWelfareParallelCascade
// with cooperative cancellation and progress reporting. Workers check
// ctx between chunks of runs and bail out promptly once it is canceled,
// in which case the estimate is discarded and ctx.Err() returned. The
// report callback, when non-nil, receives StageEstimate events with the
// cross-worker run count and MUST be safe for concurrent calls (each
// worker reports its own chunks).
func EstimateWelfareParallelCascadeCtx(ctx context.Context, g *graph.Graph, m *utility.Model, cascade graph.Cascade, alloc *Allocation, rng *stats.RNG, runs, workers int, report progress.Func) (WelfareEstimate, error) {
	if runs <= 0 {
		runs = 1
	}
	if workers <= 1 {
		sim := NewSimulator(g, m)
		sim.Cascade = cascade
		return sim.EstimateWelfareCtx(ctx, alloc, rng, runs, report)
	}
	if runs < workers {
		workers = runs
	}
	per := runs / workers
	extra := runs % workers
	summaries := make([]stats.Summary, workers)
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		shardRNG := rng.Split()
		wg.Add(1)
		go func(w, n int, r *stats.RNG) {
			defer wg.Done()
			sim := NewSimulator(g, m)
			sim.Cascade = cascade
			var sum stats.Summary
			for i := 0; i < n; {
				if ctx.Err() != nil {
					return
				}
				stop := i + estimateChunk
				if stop > n {
					stop = n
				}
				chunk := stop - i
				for ; i < stop; i++ {
					sum.Add(sim.RunOnce(alloc, r))
				}
				if report != nil {
					report(progress.Event{Stage: progress.StageEstimate, Done: int(done.Add(int64(chunk))), Total: runs})
				}
			}
			summaries[w] = sum
		}(w, n, shardRNG)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return WelfareEstimate{}, err
	}
	var total stats.Summary
	for _, s := range summaries {
		total.Merge(s)
	}
	return WelfareEstimate{Mean: total.Mean(), StdErr: total.StdErr(), Runs: total.N()}, nil
}
