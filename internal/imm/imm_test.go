package imm

import (
	"math"
	"testing"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
)

func TestLambdaPrimeMonotoneInK(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 50; k++ {
		l := LambdaPrime(1000, k, 0.5, 1)
		if l <= prev {
			t.Fatalf("LambdaPrime not increasing at k=%d: %v <= %v", k, l, prev)
		}
		prev = l
	}
}

func TestLambdaStarMonotoneInK(t *testing.T) {
	prev := 0.0
	for k := 1; k <= 50; k++ {
		l := LambdaStar(1000, k, 0.5, 1)
		if l <= prev {
			t.Fatalf("LambdaStar not increasing at k=%d: %v <= %v", k, l, prev)
		}
		prev = l
	}
}

func TestLambdaStarDecreasesWithEps(t *testing.T) {
	if LambdaStar(1000, 10, 0.5, 1) <= LambdaStar(1000, 10, 1.0, 1) {
		t.Error("larger eps must need fewer samples")
	}
}

func TestEpsPrime(t *testing.T) {
	if math.Abs(EpsPrime(0.5)-math.Sqrt2/2) > 1e-12 {
		t.Errorf("EpsPrime(0.5) = %v", EpsPrime(0.5))
	}
}

func TestEllPlusLog2(t *testing.T) {
	got := EllPlusLog2(1, 100)
	want := 1 + math.Ln2/math.Log(100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EllPlusLog2 = %v, want %v", got, want)
	}
}

func TestIMMPicksHubOnStar(t *testing.T) {
	g := graph.Star(50, 0.9)
	rng := stats.NewRNG(1)
	res := Run(g, 1, Options{Eps: 0.5, Ell: 1}, rng)
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("IMM picked %v, want hub", res.Seeds)
	}
	if res.NumRRSets == 0 {
		t.Error("no RR sets recorded")
	}
	// spread of hub = 1 + 49*0.9 = 45.1
	if math.Abs(res.SpreadEst-45.1) > 5 {
		t.Errorf("spread estimate %v, want ~45.1", res.SpreadEst)
	}
}

func TestIMMApproximationVsGreedyMC(t *testing.T) {
	rng := stats.NewRNG(2)
	g := graph.ErdosRenyi(80, 400, rng).WeightedCascade()
	res := Run(g, 4, Options{Eps: 0.3, Ell: 1}, rng)
	if len(res.Seeds) != 4 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	immSpread := diffusion.Spread(g, res.Seeds, rng, 40000)

	greedy := diffusion.GreedySpreadMC(g, 4, 1000, rng)
	greedySpread := diffusion.Spread(g, greedy, rng, 40000)

	// Greedy-MC is itself near-optimal, so IMM must reach at least
	// (1-1/e-eps) of it with slack for MC noise.
	floor := (1 - 1/math.E - 0.3) * greedySpread
	if immSpread < floor {
		t.Errorf("IMM spread %v below floor %v (greedy %v)", immSpread, floor, greedySpread)
	}
}

func TestIMMSeedsAreDistinct(t *testing.T) {
	rng := stats.NewRNG(3)
	g := graph.ErdosRenyi(60, 300, rng).WeightedCascade()
	res := Run(g, 10, Options{}, rng)
	seen := map[graph.NodeID]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d in %v", s, res.Seeds)
		}
		seen[s] = true
	}
}

func TestIMMBudgetAtLeastN(t *testing.T) {
	g := graph.Line(5, 0.5)
	rng := stats.NewRNG(4)
	res := Run(g, 10, Options{}, rng)
	if len(res.Seeds) != 5 || res.SpreadEst != 5 {
		t.Errorf("full-graph budget: %+v", res)
	}
}

func TestIMMZeroBudget(t *testing.T) {
	g := graph.Line(5, 0.5)
	rng := stats.NewRNG(5)
	res := Run(g, 0, Options{}, rng)
	if len(res.Seeds) != 0 {
		t.Errorf("zero budget returned seeds: %v", res.Seeds)
	}
}

func TestIMMDeterministicGivenSeed(t *testing.T) {
	g := graph.Star(30, 0.5)
	a := Run(g, 3, Options{}, stats.NewRNG(42))
	b := Run(g, 3, Options{}, stats.NewRNG(42))
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("nondeterministic seeds: %v vs %v", a.Seeds, b.Seeds)
		}
	}
	if a.NumRRSets != b.NumRRSets {
		t.Errorf("nondeterministic RR counts: %d vs %d", a.NumRRSets, b.NumRRSets)
	}
}

func TestIMMNodeCoinReducesSpreadEst(t *testing.T) {
	g := graph.Star(100, 0.9)
	rng := stats.NewRNG(6)
	full := Run(g, 1, Options{}, rng)
	damped := Run(g, 1, Options{NodeCoin: func(graph.NodeID) float64 { return 0.3 }}, stats.NewRNG(6))
	if damped.SpreadEst >= full.SpreadEst {
		t.Errorf("node coin did not damp spread: %v vs %v", damped.SpreadEst, full.SpreadEst)
	}
}

func TestTIMGeneratesMoreRRSetsThanIMM(t *testing.T) {
	rng := stats.NewRNG(7)
	g := graph.ErdosRenyi(200, 1200, rng).WeightedCascade()
	immRes := Run(g, 10, Options{}, stats.NewRNG(8))
	timRes := RunTIM(g, 10, Options{}, stats.NewRNG(9))
	if timRes.NumRRSets <= immRes.NumRRSets {
		t.Errorf("TIM (%d) should need more RR sets than IMM (%d)",
			timRes.NumRRSets, immRes.NumRRSets)
	}
}

func TestTIMPicksHubOnStar(t *testing.T) {
	g := graph.Star(50, 0.9)
	rng := stats.NewRNG(10)
	res := RunTIM(g, 1, Options{}, rng)
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Errorf("TIM picked %v", res.Seeds)
	}
}

func TestTIMQualityVsGreedy(t *testing.T) {
	rng := stats.NewRNG(11)
	g := graph.ErdosRenyi(80, 400, rng).WeightedCascade()
	res := RunTIM(g, 4, Options{Eps: 0.3}, rng)
	timSpread := diffusion.Spread(g, res.Seeds, rng, 40000)
	greedy := diffusion.GreedySpreadMC(g, 4, 800, rng)
	greedySpread := diffusion.Spread(g, greedy, rng, 40000)
	if timSpread < (1-1/math.E-0.3)*greedySpread {
		t.Errorf("TIM spread %v too low vs greedy %v", timSpread, greedySpread)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Eps != 0.5 || o.Ell != 1 {
		t.Errorf("defaults %+v", o)
	}
	o = Options{Eps: 0.2, Ell: 2}.withDefaults()
	if o.Eps != 0.2 || o.Ell != 2 {
		t.Errorf("explicit options clobbered: %+v", o)
	}
}
