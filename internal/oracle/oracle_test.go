package oracle

import (
	"math"
	"testing"

	"uicwelfare/internal/core"
	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

func testGraph(seed uint64) *graph.Graph {
	rng := stats.NewRNG(seed)
	return graph.ErdosRenyi(120, 700, rng).WeightedCascade()
}

func TestBuildAndQuery(t *testing.T) {
	g := testGraph(1)
	rng := stats.NewRNG(2)
	o, err := Build(g, 16, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxBudget() != 16 {
		t.Fatalf("max budget %d", o.MaxBudget())
	}
	s4, err := o.Seeds(4)
	if err != nil || len(s4) != 4 {
		t.Fatalf("Seeds(4) = %v, %v", s4, err)
	}
	s8, _ := o.Seeds(8)
	for i := range s4 {
		if s8[i] != s4[i] {
			t.Fatal("prefix property broken across queries")
		}
	}
	if _, err := o.Seeds(17); err == nil {
		t.Error("budget above max accepted")
	}
	if _, err := o.Seeds(-1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestSpreadMonotoneAndAccurate(t *testing.T) {
	g := testGraph(3)
	rng := stats.NewRNG(4)
	o, err := Build(g, 12, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for b := 0; b <= 12; b++ {
		s, err := o.Spread(b)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev-1e-9 {
			t.Fatalf("spread not monotone at %d: %v < %v", b, s, prev)
		}
		prev = s
	}
	// accuracy: compare the budget-8 estimate with forward MC
	seeds, _ := o.Seeds(8)
	mc := diffusion.Spread(g, seeds, rng, 40000)
	est, _ := o.Spread(8)
	if math.Abs(est-mc) > 0.1*mc+0.5 {
		t.Errorf("oracle spread %v vs MC %v", est, mc)
	}
}

func TestAllocateMatchesBundleGRDShape(t *testing.T) {
	g := testGraph(5)
	rng := stats.NewRNG(6)
	o, err := Build(g, 10, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := utility.Config1()
	alloc, err := o.Allocate([]int{10, 4})
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustProblem(g, m, []int{10, 4})
	if err := p.CheckAllocation(alloc); err != nil {
		t.Fatalf("oracle allocation invalid: %v", err)
	}
	// prefix nesting as in Algorithm 1
	for i, v := range alloc.Seeds[1] {
		if alloc.Seeds[0][i] != v {
			t.Fatal("oracle allocation lost prefix nesting")
		}
	}
	if _, err := o.Allocate([]int{11}); err == nil {
		t.Error("over-max budget accepted")
	}
}

func TestOracleQualityVsDirectBundleGRD(t *testing.T) {
	// welfare from the oracle's cached ordering must match a fresh
	// bundleGRD run statistically
	g := testGraph(7)
	m := utility.Config3()
	budgets := []int{8, 8}
	o, err := Build(g, 8, Options{}, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	oAlloc, _ := o.Allocate(budgets)
	p := core.MustProblem(g, m, budgets)
	direct := core.BundleGRD(p, core.Options{}, stats.NewRNG(9))

	simO := uic.NewSimulator(g, m).EstimateWelfare(oAlloc, stats.NewRNG(10), 20000).Mean
	simD := uic.NewSimulator(g, m).EstimateWelfare(direct.Alloc, stats.NewRNG(10), 20000).Mean
	if math.Abs(simO-simD) > 0.15*math.Max(simO, simD)+0.5 {
		t.Errorf("oracle welfare %v vs direct bundleGRD %v", simO, simD)
	}
}

func TestBuildValidation(t *testing.T) {
	g := testGraph(10)
	if _, err := Build(g, 0, Options{}, stats.NewRNG(11)); err == nil {
		t.Error("zero max budget accepted")
	}
	// budget above n clamps
	o, err := Build(graph.Line(5, 0.5), 100, Options{}, stats.NewRNG(12))
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxBudget() != 5 {
		t.Errorf("clamped max budget %d", o.MaxBudget())
	}
}

func TestOracleLTMode(t *testing.T) {
	g := testGraph(13)
	o, err := Build(g, 6, Options{Cascade: graph.CascadeLT}, stats.NewRNG(14))
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxBudget() != 6 {
		t.Errorf("LT oracle max budget %d", o.MaxBudget())
	}
	if s, _ := o.Spread(6); s <= 0 {
		t.Errorf("LT spread %v", s)
	}
}
