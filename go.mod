module uicwelfare

go 1.22
