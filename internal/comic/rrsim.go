package comic

import (
	"uicwelfare/internal/graph"
	"uicwelfare/internal/imm"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

// Options configures the Com-IC baselines.
type Options struct {
	Eps float64
	Ell float64
	// ForwardRuns is the Monte-Carlo budget of the forward phases
	// (candidate re-ranking in RR-SIM+, adoption-probability estimation
	// in RR-CIM). Defaults to 200.
	ForwardRuns int
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.ForwardRuns <= 0 {
		o.ForwardRuns = 200
	}
	return o
}

// Result is a two-item allocation plus effort statistics.
type Result struct {
	Alloc       *uic.Allocation
	NumRRSets   int
	TotalRRSets int
	ForwardRuns int
	// ExpectedA/B are the forward-validated expected adoption counts of
	// the two items under the final allocation.
	ExpectedA float64
	ExpectedB float64
}

// AllocateRRSIMPlus reproduces the RR-SIM+ baseline for two complementary
// items: item B's seeds are chosen with plain IMM, then item A's seeds
// are selected by TIM-scale reverse sampling in which the reverse walk
// passes through a node with its self-adoption probability q_{A|∅}
// (boosted to q_{A|B} on B's seed nodes), followed by a forward
// Monte-Carlo validation pass. budgets is [b_A, b_B].
func AllocateRRSIMPlus(g *graph.Graph, m *utility.Model, budgets []int, opts Options, rng *stats.RNG) (Result, error) {
	return allocateComIC(g, m, budgets, opts, rng, false)
}

// AllocateRRCIM reproduces the RR-CIM baseline: a forward phase first
// estimates every node's probability β_v of adopting the complement B
// from B's seed set, then reverse sampling uses the mixed node coin
// β_v·q_{A|B} + (1-β_v)·q_{A|∅}. It is the more accurate and more
// expensive of the pair.
func AllocateRRCIM(g *graph.Graph, m *utility.Model, budgets []int, opts Options, rng *stats.RNG) (Result, error) {
	return allocateComIC(g, m, budgets, opts, rng, true)
}

func allocateComIC(g *graph.Graph, m *utility.Model, budgets []int, opts Options, rng *stats.RNG, cim bool) (Result, error) {
	opts = opts.withDefaults()
	gap, err := utility.GAPFromModel(m)
	if err != nil {
		return Result{}, err
	}
	if len(budgets) != 2 {
		return Result{}, errBudgets(len(budgets))
	}
	bA, bB := budgets[0], budgets[1]

	// Step 1: B's seeds via plain IMM (as the paper does).
	immRes := imm.Run(g, bB, imm.Options{Eps: opts.Eps, Ell: opts.Ell}, rng)
	seedsB := immRes.Seeds
	totalRR := immRes.TotalRRSets
	numRR := immRes.NumRRSets

	inB := make([]bool, g.N())
	for _, v := range seedsB {
		inB[v] = true
	}

	// Step 2: node coin for the reverse walk.
	var coin func(graph.NodeID) float64
	forwardRuns := 0
	if cim {
		// RR-CIM: forward phase estimating β_v = P[v adopts B].
		sim := NewSim(g, gap)
		beta := sim.AdoptionProbabilities(nil, seedsB, rng, opts.ForwardRuns)
		forwardRuns += opts.ForwardRuns
		coin = func(v graph.NodeID) float64 {
			return beta[v]*gap.Q1Given2 + (1-beta[v])*gap.Q1GivenNone
		}
	} else {
		// RR-SIM+: self-influence coin, boosted on B's seed nodes.
		coin = func(v graph.NodeID) float64 {
			if inB[v] {
				return gap.Q1Given2
			}
			return gap.Q1GivenNone
		}
	}

	// Step 3: TIM-scale reverse sampling for item A.
	timRes := imm.RunTIM(g, bA, imm.Options{Eps: opts.Eps, Ell: opts.Ell, NodeCoin: coin}, rng)
	seedsA := timRes.Seeds
	totalRR += timRes.TotalRRSets
	numRR += timRes.NumRRSets

	// Step 4: forward Monte-Carlo validation pass over the chosen seeds.
	// Both baselines run forward simulations on top of the reverse
	// sampling (this is what makes them markedly slower than bundleGRD,
	// the effect Fig. 5 measures); the measured adoptions are reported
	// for diagnostics.
	sim := NewSim(g, gap)
	expA, expB := sim.ExpectedAdoptions(seedsA, seedsB, rng, opts.ForwardRuns)
	forwardRuns += opts.ForwardRuns

	alloc := uic.NewAllocation(2)
	for _, v := range seedsA {
		alloc.Assign(v, ItemA)
	}
	for _, v := range seedsB {
		alloc.Assign(v, ItemB)
	}
	return Result{
		Alloc:       alloc,
		NumRRSets:   numRR,
		TotalRRSets: totalRR,
		ForwardRuns: forwardRuns,
		ExpectedA:   expA,
		ExpectedB:   expB,
	}, nil
}

type errBudgets int

func (e errBudgets) Error() string {
	return "comic: need exactly 2 budgets for the Com-IC baselines"
}
