package expr

import (
	"math"
	"testing"
)

// tiny returns parameters small enough for unit tests.
func tiny() Params {
	return Params{Scale: 0.04, Seed: 7, Runs: 300}
}

func TestNetworkRegistry(t *testing.T) {
	if len(Networks) != 5 {
		t.Fatalf("expected 5 networks, have %d", len(Networks))
	}
	if _, err := NetworkByName("flixster"); err != nil {
		t.Error(err)
	}
	if _, err := NetworkByName("nope"); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := NetworkByName("flixster")
	a := spec.Generate(0.05, 3)
	b := spec.Generate(0.05, 3)
	if a.N() != b.N() || a.M() != b.M() {
		t.Errorf("generation not deterministic: %v vs %v", a, b)
	}
	c := spec.Generate(0.05, 4)
	if c.M() == a.M() && c.N() == a.N() {
		// sizes can match; check edge difference via stats
		t.Logf("different seeds gave same size (ok if edges differ)")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(0.02, 1)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Nodes < 100 || r.Edges <= 0 {
			t.Errorf("%s: degenerate stand-in %+v", r.Name, r)
		}
		if r.AvgDegree <= 1 {
			t.Errorf("%s: avg degree %v too low", r.Name, r.AvgDegree)
		}
	}
	// relative sizes preserved: douban-movie > douban-book > flixster
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["douban-movie"].Nodes <= byName["douban-book"].Nodes {
		t.Error("relative node ordering lost")
	}
}

func TestTwoItemConfigSweeps(t *testing.T) {
	m, budgets, labels, err := TwoItemConfig(1, 1)
	if err != nil || m == nil {
		t.Fatal(err)
	}
	if len(budgets) != 5 || len(labels) != 5 {
		t.Fatalf("uniform sweep: %d budgets", len(budgets))
	}
	if budgets[0][0] != 10 || budgets[4][0] != 50 {
		t.Errorf("uniform budgets %v", budgets)
	}
	_, budgets, _, err = TwoItemConfig(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if budgets[0][0] != 70 || budgets[0][1] != 30 || budgets[4][1] != 110 {
		t.Errorf("non-uniform budgets %v", budgets)
	}
	if _, _, _, err := TwoItemConfig(9, 1); err == nil {
		t.Error("bad config accepted")
	}
}

func TestFig4Config3Shape(t *testing.T) {
	rows, err := Fig4(3, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(TwoItemAlgos) {
		t.Fatalf("%d rows", len(rows))
	}
	// aggregate welfare per algorithm; bundleGRD must dominate item-disj
	sum := map[string]float64{}
	for _, r := range rows {
		sum[r.Algorithm] += r.Welfare
		if r.Welfare < -1e-9 {
			t.Errorf("negative welfare for %s: %v", r.Algorithm, r.Welfare)
		}
	}
	if sum["bundleGRD"] < sum["item-disj"] {
		t.Errorf("bundleGRD total %v below item-disj %v on config 3",
			sum["bundleGRD"], sum["item-disj"])
	}
}

func TestFig5And6Shape(t *testing.T) {
	rows, err := Fig5And6("flixster", tiny())
	if err != nil {
		t.Fatal(err)
	}
	rr := map[string]int{}
	for _, r := range rows {
		if r.Millis < 0 {
			t.Errorf("negative time")
		}
		rr[r.Algorithm] += r.RRSets
	}
	// the Fig. 6 effect: TIM-based Com-IC baselines generate more RR sets
	if rr["RR-CIM"] <= rr["bundleGRD"] {
		t.Errorf("RR-CIM %d should generate more RR sets than bundleGRD %d",
			rr["RR-CIM"], rr["bundleGRD"])
	}
	if rr["RR-SIM+"] <= rr["bundleGRD"] {
		t.Errorf("RR-SIM+ %d should generate more RR sets than bundleGRD %d",
			rr["RR-SIM+"], rr["bundleGRD"])
	}
}

func TestFig5And6UnknownNetwork(t *testing.T) {
	if _, err := Fig5And6("nope", tiny()); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestMultiItemConfigBudgets(t *testing.T) {
	_, b, err := MultiItemConfig(5, 5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range b {
		if x != 20 {
			t.Errorf("uniform split %v", b)
		}
	}
	_, b, err = MultiItemConfig(6, 5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 20 || b[4] != 2 {
		t.Errorf("skewed split %v", b)
	}
	if _, _, err := MultiItemConfig(4, 5, 100, 1); err == nil {
		t.Error("config 4 accepted as multi-item")
	}
	if _, _, err := MultiItemConfig(5, 0, 100, 1); err == nil {
		t.Error("zero items accepted")
	}
}

func TestFig7Config6Shape(t *testing.T) {
	p := tiny()
	rows, err := Fig7(6, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(MultiItemAlgos) {
		t.Fatalf("%d rows", len(rows))
	}
	// welfare non-decreasing in total budget for bundleGRD (allow MC
	// noise slack of 3 stderr)
	var prev float64 = -1
	var prevSE float64
	for _, r := range rows {
		if r.Algorithm != "bundleGRD" {
			continue
		}
		if prev >= 0 && r.Welfare < prev-3*(r.WelfareSE+prevSE)-1 {
			t.Errorf("bundleGRD welfare dropped: %v -> %v", prev, r.Welfare)
		}
		prev, prevSE = r.Welfare, r.WelfareSE
	}
}

func TestFig8aShape(t *testing.T) {
	rows, err := Fig8a(3, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(MultiItemAlgos) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Items < 1 || r.Items > 3 {
			t.Errorf("items %d out of range", r.Items)
		}
	}
}

func TestFig8bcShape(t *testing.T) {
	rows, err := Fig8bc(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Welfare < -1e-9 {
			t.Errorf("negative welfare %v", r.Welfare)
		}
	}
}

func TestFig8dShape(t *testing.T) {
	rows, err := Fig8d(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Split] = true
	}
	if !names["uniform"] || !names["large-skew"] || !names["moderate-skew"] {
		t.Errorf("missing splits: %v", names)
	}
}

func TestSkewSplitsSumRoughlyToTotal(t *testing.T) {
	for name, b := range SkewSplits(500) {
		sum := 0
		for _, x := range b {
			sum += x
		}
		if sum < 450 || sum > 550 {
			t.Errorf("%s sums to %d, want ~500", name, sum)
		}
	}
	if b := SkewSplits(500)["large-skew"]; b[0] != 410 {
		t.Errorf("large skew console budget %d, want 410 (82%%)", b[0])
	}
}

func TestFig9Shape(t *testing.T) {
	p := tiny()
	rows, err := Fig9("douban-book", []int{10, 50, 100}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].StepBenchmark <= 0 {
		t.Errorf("step benchmark %v", rows[0].StepBenchmark)
	}
	// welfare must grow with the budget fraction
	if rows[2].Welfare < rows[0].Welfare {
		t.Errorf("welfare not growing with budget: %v", rows)
	}
}

func TestFig9dShape(t *testing.T) {
	rows, err := Fig9d(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	// node counts must grow along the sweep for each variant
	var prevN int
	for _, r := range rows {
		if r.Variant != "wc" {
			continue
		}
		if r.Nodes < prevN {
			t.Errorf("nodes not growing: %+v", rows)
		}
		prevN = r.Nodes
	}
}

func TestTable5LearnedCloseToTruth(t *testing.T) {
	rows, err := Table5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.LearnedValue-r.TrueValue) > 0.02*r.TrueValue+1 {
			t.Errorf("%s: learned value %v vs truth %v", r.Itemset, r.LearnedValue, r.TrueValue)
		}
		if r.LearnedVar <= 0 || r.LearnedVar > 4*r.TrueNoiseVar {
			t.Errorf("%s: learned variance %v vs truth %v", r.Itemset, r.LearnedVar, r.TrueNoiseVar)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := Table6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BundleGRD <= 0 || r.MaxIMM <= 0 || r.IMMMax <= 0 {
			t.Errorf("degenerate counts %+v", r)
		}
		// PRIMA stays within a small factor of the IMM variants (the
		// paper reports exact equality on its datasets)
		if r.BundleGRD > 5*r.MaxIMM || r.MaxIMM > 5*r.BundleGRD {
			t.Errorf("PRIMA %d far from MAX_IMM %d", r.BundleGRD, r.MaxIMM)
		}
	}
}
