// Package uic implements the paper's Utility-driven Independent Cascade
// model (§3): multi-item diffusion where nodes maintain desire and
// adoption sets, adopt the utility-maximizing superset of their current
// adoption within their desire set, and propagate adopted items over
// IC-style live edges. It provides Monte-Carlo estimation of the expected
// social welfare ρ(S) and a deterministic possible-world runner used by
// the property tests for Lemmas 1-3 and Theorem 1.
package uic

import (
	"fmt"

	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/utility"
)

// Allocation is a seed allocation 𝒮 ⊆ V × I, stored per item: Seeds[i]
// lists the seed nodes of item i. The item budget constraint
// |Seeds[i]| <= b_i is the caller's responsibility (checked by
// core.Problem).
type Allocation struct {
	Seeds [][]graph.NodeID
}

// NewAllocation returns an empty allocation over k items.
func NewAllocation(k int) *Allocation {
	return &Allocation{Seeds: make([][]graph.NodeID, k)}
}

// Assign adds node v as a seed of item i.
func (a *Allocation) Assign(v graph.NodeID, i int) {
	a.Seeds[i] = append(a.Seeds[i], v)
}

// K returns the number of items.
func (a *Allocation) K() int { return len(a.Seeds) }

// Pairs returns the total number of (node, item) pairs.
func (a *Allocation) Pairs() int {
	n := 0
	for _, s := range a.Seeds {
		n += len(s)
	}
	return n
}

// SeedNodes returns the distinct seed nodes S^𝒮 across all items.
func (a *Allocation) SeedNodes() []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, seeds := range a.Seeds {
		for _, v := range seeds {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// ItemsOf returns I^𝒮_v for every node appearing in the allocation.
func (a *Allocation) ItemsOf() map[graph.NodeID]itemset.Set {
	m := map[graph.NodeID]itemset.Set{}
	for i, seeds := range a.Seeds {
		for _, v := range seeds {
			m[v] = m[v].Add(i)
		}
	}
	return m
}

// Clone deep-copies the allocation.
func (a *Allocation) Clone() *Allocation {
	c := NewAllocation(a.K())
	for i, seeds := range a.Seeds {
		c.Seeds[i] = append([]graph.NodeID(nil), seeds...)
	}
	return c
}

// Union returns the allocation containing every pair of a and b (which
// must have the same number of items). Duplicate pairs collapse.
func Union(a, b *Allocation) *Allocation {
	if a.K() != b.K() {
		panic(fmt.Sprintf("uic: union of allocations with %d and %d items", a.K(), b.K()))
	}
	c := NewAllocation(a.K())
	for i := 0; i < a.K(); i++ {
		seen := map[graph.NodeID]bool{}
		for _, src := range [][]graph.NodeID{a.Seeds[i], b.Seeds[i]} {
			for _, v := range src {
				if !seen[v] {
					seen[v] = true
					c.Seeds[i] = append(c.Seeds[i], v)
				}
			}
		}
	}
	return c
}

// edge states for the lazy per-run edge memo
const (
	edgeUntested uint8 = iota
	edgeLive
	edgeBlocked
)

// Simulator runs UIC diffusions over one graph and model, reusing
// buffers. Not safe for concurrent use; Split RNGs and create one
// Simulator per goroutine for parallel estimation.
type Simulator struct {
	G *graph.Graph
	M *utility.Model
	// Cascade selects the edge semantics: IC (default, per-edge coins) or
	// LT (per-node single trigger). §5 of the paper notes all results
	// carry over to triggering models.
	Cascade graph.Cascade
	// OnAdopt, when non-nil, is invoked whenever a node's adoption set
	// grows: round is the diffusion time step (1 = seeding). Useful for
	// tracing and visualization; adds no cost when nil.
	OnAdopt func(round int, v graph.NodeID, adopted itemset.Set)

	desire  []itemset.Set
	adopted []itemset.Set
	touched []graph.NodeID // nodes whose desire/adopted were written this run
	edge    []uint8
	edgeGen []int32 // generation stamp per edge; != gen means untested
	gen     int32

	// LT trigger state: the one live in-edge per node, sampled lazily.
	triggerGen []int32
	trigger    []int64

	util     []float64 // utility table of the current noise world
	frontier []graph.NodeID
	next     []graph.NodeID
	inNext   []bool
}

// NewSimulator builds a simulator for the graph and utility model.
func NewSimulator(g *graph.Graph, m *utility.Model) *Simulator {
	return &Simulator{
		G:          g,
		M:          m,
		desire:     make([]itemset.Set, g.N()),
		adopted:    make([]itemset.Set, g.N()),
		edge:       make([]uint8, g.M()),
		edgeGen:    make([]int32, g.M()),
		triggerGen: make([]int32, g.N()),
		trigger:    make([]int64, g.N()),
		inNext:     make([]bool, g.N()),
	}
}

// triggerOf lazily samples node v's LT trigger edge for the current run,
// returning its global out-edge position or -1.
func (s *Simulator) triggerOf(v graph.NodeID, rng *stats.RNG) int64 {
	if s.triggerGen[v] != s.gen {
		s.triggerGen[v] = s.gen
		s.trigger[v] = -1
		_, ps := s.G.InEdges(v)
		if len(ps) > 0 {
			r := rng.Float64()
			cum := 0.0
			positions := s.G.InEdgePositions(v)
			for i, p := range ps {
				cum += float64(p)
				if r < cum {
					s.trigger[v] = positions[i]
					break
				}
			}
		}
	}
	return s.trigger[v]
}

// RunOnce samples a noise world and a lazy edge world, runs the diffusion
// to quiescence, and returns the realized social welfare
// Σ_v U_W(A_W(v)). The adoption sets remain readable through Adopted
// until the next run.
func (s *Simulator) RunOnce(alloc *Allocation, rng *stats.RNG) float64 {
	noise := s.M.SampleNoise(rng)
	s.util = s.M.UtilityTable(noise, s.util)
	return s.runWithUtil(alloc, rng, nil)
}

// RunOnceWithNoise runs a diffusion with a fixed noise world but random
// edges — the W^N conditional welfare ρ_{W^N} is the average of these.
func (s *Simulator) RunOnceWithNoise(alloc *Allocation, noise []float64, rng *stats.RNG) float64 {
	s.util = s.M.UtilityTable(noise, s.util)
	return s.runWithUtil(alloc, rng, nil)
}

// RunInWorld runs the fully deterministic diffusion of a possible world
// W = (W^E, W^N) and returns the welfare. Used by property tests.
func (s *Simulator) RunInWorld(alloc *Allocation, world *diffusion.LiveEdgeWorld, noise []float64) float64 {
	s.util = s.M.UtilityTable(noise, s.util)
	return s.runWithUtil(alloc, nil, world)
}

// Adopted returns the adoption set of v at the end of the last run.
func (s *Simulator) Adopted(v graph.NodeID) itemset.Set { return s.adopted[v] }

// runWithUtil executes the diffusion of Fig. 1 under the prepared utility
// table. Exactly one of rng (lazy edge flips) or world (fixed edge world)
// is non-nil.
func (s *Simulator) runWithUtil(alloc *Allocation, rng *stats.RNG, world *diffusion.LiveEdgeWorld) float64 {
	// reset per-run node state (only nodes touched last run)
	for _, v := range s.touched {
		s.desire[v] = 0
		s.adopted[v] = 0
	}
	s.touched = s.touched[:0]
	s.gen++
	if s.gen == 0 {
		for i := range s.edgeGen {
			s.edgeGen[i] = -1
		}
		s.gen = 1
	}

	frontier := s.frontier[:0]

	// t = 1: seed nodes desire their allocated items and adopt the
	// utility-maximizing subset (seeds are rational users too).
	for i, seeds := range alloc.Seeds {
		for _, v := range seeds {
			if s.desire[v] == 0 && s.adopted[v] == 0 {
				s.touched = append(s.touched, v)
			}
			s.desire[v] = s.desire[v].Add(i)
		}
	}
	for _, v := range s.touched {
		a := utility.Adopt(s.util, s.desire[v], 0)
		if !a.IsEmpty() {
			s.adopted[v] = a
			frontier = append(frontier, v)
			if s.OnAdopt != nil {
				s.OnAdopt(1, v, a)
			}
		}
	}
	round := 1

	// t > 1: synchronous rounds matching Fig. 1 exactly. Phase 1 (edge
	// transition + desire generation): every node that adopted new items
	// at t-1 tests its untested out-edges and delivers its full adoption
	// set A(u, t-1) through live edges into the targets' desire sets.
	// Phase 2 (node adoption): each node whose desire set grew re-runs
	// the adoption rule once, constrained to supersets of A(v, t-1).
	// The two-phase structure matters for non-supermodular valuations
	// (e.g. the real Table 5 parameters), where folding deliveries in
	// one-by-one could steer the argmax through a different chain.
	next := s.next[:0]
	for len(frontier) > 0 {
		round++
		next = next[:0]
		// Phase 1: desire generation.
		for _, u := range frontier {
			au := s.adopted[u]
			base := s.G.OutEdgeBase(u)
			ts, ps := s.G.OutEdges(u)
			for j, v := range ts {
				pos := base + int64(j)
				var live bool
				switch {
				case world != nil:
					live = world.Live(pos)
				case s.Cascade == graph.CascadeLT:
					live = s.triggerOf(v, rng) == pos
				default:
					if s.edgeGen[pos] != s.gen {
						s.edgeGen[pos] = s.gen
						if rng.Bool(float64(ps[j])) {
							s.edge[pos] = edgeLive
						} else {
							s.edge[pos] = edgeBlocked
						}
					}
					live = s.edge[pos] == edgeLive
				}
				if !live {
					continue
				}
				if s.desire[v]|au == s.desire[v] {
					continue // nothing new to desire
				}
				if s.desire[v] == 0 && s.adopted[v] == 0 {
					s.touched = append(s.touched, v)
				}
				s.desire[v] = s.desire[v].Union(au)
				if !s.inNext[v] {
					s.inNext[v] = true
					next = append(next, v)
				}
			}
		}
		// Phase 2: node adoption for nodes with grown desire sets.
		adopters := next[:0]
		for _, v := range next {
			s.inNext[v] = false
			newAdopt := utility.Adopt(s.util, s.desire[v], s.adopted[v])
			if newAdopt != s.adopted[v] {
				s.adopted[v] = newAdopt
				adopters = append(adopters, v)
				if s.OnAdopt != nil {
					s.OnAdopt(round, v, newAdopt)
				}
			}
		}
		frontier, next = adopters, frontier[:0]
	}
	s.frontier = frontier[:0]
	s.next = next[:0]

	welfare := 0.0
	for _, v := range s.touched {
		welfare += s.util[s.adopted[v]]
	}
	return welfare
}
