// Package tracestore retains completed request traces — the span trees
// the telemetry package records — for after-the-fact inspection via
// GET /v1/traces. It is the data-plane sibling of internal/journal:
// the journal records control-plane *decisions*, the trace store keeps
// the per-request *timelines* those decisions acted on.
//
// Completed traces land in a bounded in-memory ring guarded by a
// single mutex (Add is called at request completion, so it does O(1)
// work and never blocks) and are asynchronously spilled as JSONL
// payloads inside CRC-framed segment files under <data-dir>/traces,
// with the journal's size-budgeted oldest-first rotation. Admission is
// tail-sampled: every trace that was slow, errored, or queued by
// admission control is kept, and fast successes are kept with a
// configurable probability — the interesting traces survive without
// the store having to retain every warm cache hit.
package tracestore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uicwelfare/internal/telemetry"
)

// Keep reasons stamped on retained records, so a reader can tell why a
// trace survived tail sampling.
const (
	KeptSlow    = "slow"
	KeptError   = "error"
	KeptQueued  = "queued"
	KeptSampled = "sampled"
)

// Record is one completed trace: identity, the request it served, the
// whole-request envelope (start, duration, outcome), and the retained
// span records with their per-span resource deltas. On the router tier
// Node distinguishes the router's fragment from the backend's; the two
// fragments of one trace id assemble into a single tree through the
// parent ids their spans carry.
type Record struct {
	// Seq is the store-local sequence number; it doubles as the
	// pagination cursor for GET /v1/traces.
	Seq     uint64 `json:"seq"`
	TraceID string `json:"trace_id"`
	Node    string `json:"node,omitempty"`
	// Route names the serving surface ("allocate", "warm", "proxy", ...).
	Route string `json:"route,omitempty"`
	Graph string `json:"graph,omitempty"`

	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Error      string    `json:"error,omitempty"`
	// Slow and Queued mark why the trace bypassed sampling; Kept names
	// the final keep reason (slow, error, queued, sampled).
	Slow   bool   `json:"slow,omitempty"`
	Queued bool   `json:"queued,omitempty"`
	Kept   string `json:"kept,omitempty"`

	Spans        []telemetry.Span `json:"spans,omitempty"`
	SpansDropped int64            `json:"spans_dropped,omitempty"`
	Resources    map[string]int64 `json:"resources,omitempty"`
}

// Summary returns the record without its span records — the list form
// GET /v1/traces pages through (the full tree is one GET
// /v1/traces/{id} away).
func (r Record) Summary() Record {
	r.Spans = nil
	return r
}

// Segment file framing, mirroring the journal codec: magic, version,
// payload length, JSONL payload, CRC-32C — every field verified on
// read, corrupt segments rejected with typed errors.
const (
	// SegmentMagic opens a .wmt trace segment.
	SegmentMagic = "WMTRCE\x00\x00"
	// SegmentVersion is the current segment format version.
	SegmentVersion = 1
	// SegmentExt is the trace segment file extension.
	SegmentExt = ".wmt"

	// maxSegmentPayload bounds a declared payload length so a corrupt
	// header cannot force an absurd allocation.
	maxSegmentPayload = 1 << 30
)

var (
	// ErrBadSegment reports an unreadable segment (wrong magic or
	// version, truncated, or failed checksum).
	ErrBadSegment = errors.New("tracestore: bad segment")

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Options configures a Store. The zero value is usable: an
// in-memory-only store (no Dir, no spill) that keeps every trace.
type Options struct {
	// Node stamps every record (e.g. "b0", "router").
	Node string
	// RingSize bounds the in-memory ring (default 512 traces).
	RingSize int
	// SampleRate is the probability of keeping a trace that is neither
	// slow nor errored nor queued, clamped to [0, 1]. Negative keeps
	// none of them; the default (0 on the zero value) is rescued to 1
	// by SampleAll for tests — welmaxd passes -trace-sample.
	SampleRate float64
	// SampleAll forces SampleRate 1 (keep everything); the zero-value
	// Options then keeps every trace rather than silently none.
	SampleAll bool
	// Dir enables async segment spill when non-empty (callers pass
	// <data-dir>/traces).
	Dir string
	// SegmentBytes seals a segment once its JSONL payload reaches this
	// size (default 256 KiB).
	SegmentBytes int64
	// MaxBytes bounds the segment directory; oldest segments are
	// deleted past it (default 32 MiB; the store must not grow without
	// bound).
	MaxBytes int64
	// FlushInterval seals a non-empty pending segment even below
	// SegmentBytes, so a quiet store still reaches disk (default 5s).
	FlushInterval time.Duration
}

// Stats is the store's self-accounting, exported as gauges.
type Stats struct {
	// Offered counts every trace presented to Add; Kept the ones
	// retained; SampledOut the fast successes sampling discarded.
	Offered    int64 `json:"offered"`
	Kept       int64 `json:"kept"`
	SampledOut int64 `json:"sampled_out"`
	// Dropped counts records whose disk spill was dropped because the
	// spill channel was full (the ring still saw them).
	Dropped int64 `json:"dropped"`
	RingLen int   `json:"ring_len"`
	RingCap int   `json:"ring_cap"`
	// Segments counts segment files sealed; SpillErrors counts failed
	// segment writes.
	Segments    int64 `json:"segments"`
	SpillErrors int64 `json:"spill_errors"`
}

// Store holds the bounded trace ring and the optional disk spill.
type Store struct {
	node   string
	sample float64

	mu   sync.Mutex
	buf  []Record // ring storage, len(buf) == capacity
	head int      // index of the oldest record
	n    int      // records currently in the ring
	next uint64   // next sequence number (first record gets 1)
	rng  *rand.Rand

	offered     atomic.Int64
	kept        atomic.Int64
	sampledOut  atomic.Int64
	dropped     atomic.Int64
	segments    atomic.Int64
	spillErrors atomic.Int64

	// Spill state (nil/zero when Dir is unset).
	spill      chan Record
	dir        string
	segBytes   int64
	maxBytes   int64
	flushEvery time.Duration
	stop       chan struct{}
	done       chan struct{}
}

// New creates a Store. When opts.Dir is set the directory is created
// and the background spill goroutine started; Close flushes and stops
// it.
func New(opts Options) (*Store, error) {
	size := opts.RingSize
	if size <= 0 {
		size = 512
	}
	sample := opts.SampleRate
	if opts.SampleAll {
		sample = 1
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	s := &Store{
		node:   opts.Node,
		sample: sample,
		buf:    make([]Record, size),
		next:   1,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
		s.dir = opts.Dir
		s.segBytes = opts.SegmentBytes
		if s.segBytes <= 0 {
			s.segBytes = 256 << 10
		}
		s.maxBytes = opts.MaxBytes
		if s.maxBytes <= 0 {
			s.maxBytes = 32 << 20
		}
		s.flushEvery = opts.FlushInterval
		if s.flushEvery <= 0 {
			s.flushEvery = 5 * time.Second
		}
		s.spill = make(chan Record, 256)
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.spillLoop()
	}
	return s, nil
}

// Add offers one completed trace to the store. Tail sampling decides
// retention: slow, errored, and admission-queued traces are always
// kept; the rest survive with the configured sample probability. Add
// reports whether the record was kept. Safe from any goroutine; a nil
// store keeps nothing.
func (s *Store) Add(rec Record) bool {
	if s == nil {
		return false
	}
	s.offered.Add(1)
	if rec.Node == "" {
		rec.Node = s.node
	}
	if rec.Start.IsZero() {
		rec.Start = time.Now().UTC()
	}
	switch {
	case rec.Error != "":
		rec.Kept = KeptError
	case rec.Slow:
		rec.Kept = KeptSlow
	case rec.Queued:
		rec.Kept = KeptQueued
	default:
		s.mu.Lock()
		keep := s.rng.Float64() < s.sample
		s.mu.Unlock()
		if !keep {
			s.sampledOut.Add(1)
			return false
		}
		rec.Kept = KeptSampled
	}
	s.mu.Lock()
	rec.Seq = s.next
	s.next++
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = rec
		s.n++
	} else {
		s.buf[s.head] = rec
		s.head = (s.head + 1) % len(s.buf)
	}
	s.mu.Unlock()
	s.kept.Add(1)

	if s.spill != nil {
		select {
		case s.spill <- rec:
		default:
			s.dropped.Add(1)
		}
	}
	return true
}

// Query selects traces from the ring. The zero value returns the most
// recent DefaultLimit traces.
type Query struct {
	// After is the pagination cursor: only records with Seq > After are
	// returned. 0 starts from the oldest retained record.
	After uint64
	// Route and Graph filter on the corresponding fields when non-empty.
	Route string
	Graph string
	// MinMS drops traces faster than this many milliseconds.
	MinMS float64
	// Since drops traces started before it when non-zero.
	Since time.Time
	// Limit caps the result (default DefaultLimit, max MaxLimit).
	Limit int
}

// Query result bounds.
const (
	DefaultLimit = 50
	MaxLimit     = 500
)

// Match reports whether the record passes the query's filters (the
// cursor and limit are handled by Traces; Match is exported so the
// router can filter a merged cross-shard page with the same rules).
func (q Query) Match(r Record) bool {
	if q.Route != "" && r.Route != q.Route {
		return false
	}
	if q.Graph != "" && r.Graph != q.Graph {
		return false
	}
	if q.MinMS > 0 && r.DurationMS < q.MinMS {
		return false
	}
	if !q.Since.IsZero() && r.Start.Before(q.Since) {
		return false
	}
	return true
}

// Traces returns matching trace summaries (spans stripped) in sequence
// order plus the cursor to pass as After on the next call — the last
// examined sequence number, regardless of filter matches, so
// pagination advances past filtered spans of the ring too. next equals
// q.After when nothing new was examined.
func (s *Store) Traces(q Query) (records []Record, next uint64) {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if limit > MaxLimit {
		limit = MaxLimit
	}
	if s == nil {
		return nil, q.After
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	next = q.After
	for i := 0; i < s.n; i++ {
		r := s.buf[(s.head+i)%len(s.buf)]
		if r.Seq <= q.After {
			continue
		}
		next = r.Seq
		if q.Match(r) {
			records = append(records, r.Summary())
			if len(records) >= limit {
				break
			}
		}
	}
	return records, next
}

// Get returns the full record (spans included) for a trace id. The
// ring is searched newest-first; on a miss the spilled segments are
// scanned newest-first, so a trace that aged out of the ring is still
// retrievable while its segment survives the byte budget.
func (s *Store) Get(id string) (Record, bool) {
	if s == nil || id == "" {
		return Record{}, false
	}
	s.mu.Lock()
	for i := s.n - 1; i >= 0; i-- {
		r := s.buf[(s.head+i)%len(s.buf)]
		if r.TraceID == id {
			s.mu.Unlock()
			return r, true
		}
	}
	s.mu.Unlock()
	if s.dir == "" {
		return Record{}, false
	}
	return s.getFromDisk(id)
}

// getFromDisk scans spilled segments newest-first for the trace id.
func (s *Store) getFromDisk(id string) (Record, bool) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return Record{}, false
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), SegmentExt) {
			names = append(names, e.Name())
		}
	}
	// Segment names embed the first record's sequence number in hex, so
	// lexical order is chronological; scan newest first.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		recs, err := ReadSegment(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].TraceID == id {
				return recs[i], true
			}
		}
	}
	return Record{}, false
}

// LastSeq returns the most recently assigned sequence number (0 when
// nothing has been kept).
func (s *Store) LastSeq() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next - 1
}

// Stats snapshots the store's counters. A nil store reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	n, size := s.n, len(s.buf)
	s.mu.Unlock()
	return Stats{
		Offered:     s.offered.Load(),
		Kept:        s.kept.Load(),
		SampledOut:  s.sampledOut.Load(),
		Dropped:     s.dropped.Load(),
		RingLen:     n,
		RingCap:     size,
		Segments:    s.segments.Load(),
		SpillErrors: s.spillErrors.Load(),
	}
}

// Close stops the spill goroutine after flushing any pending segment.
// The ring remains queryable. Close is a no-op for in-memory stores
// and idempotent otherwise.
func (s *Store) Close() {
	if s == nil || s.stop == nil {
		return
	}
	select {
	case <-s.stop:
		return // already closed
	default:
	}
	close(s.stop)
	<-s.done
}

// spillLoop drains the spill channel into a pending JSONL buffer and
// seals it into a segment file when it reaches the size threshold, on
// the flush ticker, and at shutdown.
func (s *Store) spillLoop() {
	defer close(s.done)
	var pending bytes.Buffer
	var firstSeq uint64
	ticker := time.NewTicker(s.flushEvery)
	defer ticker.Stop()

	add := func(r Record) {
		line, err := json.Marshal(r)
		if err != nil {
			return
		}
		if pending.Len() == 0 {
			firstSeq = r.Seq
		}
		pending.Write(line)
		pending.WriteByte('\n')
		if int64(pending.Len()) >= s.segBytes {
			s.seal(&pending, firstSeq)
		}
	}

	for {
		select {
		case r := <-s.spill:
			add(r)
		case <-ticker.C:
			if pending.Len() > 0 {
				s.seal(&pending, firstSeq)
			}
		case <-s.stop:
			for {
				select {
				case r := <-s.spill:
					add(r)
					continue
				default:
				}
				break
			}
			if pending.Len() > 0 {
				s.seal(&pending, firstSeq)
			}
			return
		}
	}
}

// seal writes the pending JSONL buffer as one CRC-framed segment file
// (temp + rename, like every store artifact) and enforces the byte
// budget. The buffer is reset either way: a failed write is counted
// and dropped, never retried into an ever-growing buffer.
func (s *Store) seal(pending *bytes.Buffer, firstSeq uint64) {
	payload := pending.Bytes()
	path := filepath.Join(s.dir, fmt.Sprintf("traces-%016x%s", firstSeq, SegmentExt))
	err := func() error {
		tmp, err := os.CreateTemp(s.dir, ".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name())
		if err := writeSegmentFrame(tmp, payload); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), path)
	}()
	pending.Reset()
	if err != nil {
		s.spillErrors.Add(1)
		return
	}
	s.segments.Add(1)
	s.enforceBudget()
}

// enforceBudget deletes the oldest segment files until the trace
// directory fits the byte budget.
func (s *Store) enforceBudget() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type file struct {
		path  string
		size  int64
		mtime int64
	}
	var files []file
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), SegmentExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, file{
			path:  filepath.Join(s.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if total <= s.maxBytes {
			return
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}

// writeSegmentFrame writes one framed segment payload.
func writeSegmentFrame(w io.Writer, payload []byte) error {
	var hdr [20]byte
	copy(hdr[:8], SegmentMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SegmentVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(sum[:])
	return err
}

// ReadSegment decodes one segment file, verifying magic, version,
// length, and checksum, and returns its records in kept order.
func ReadSegment(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [20]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSegment, err)
	}
	if string(hdr[:8]) != SegmentMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSegment, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != SegmentVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSegment, v)
	}
	size := binary.LittleEndian.Uint64(hdr[12:20])
	if size > maxSegmentPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes", ErrBadSegment, size)
	}
	payload, err := readSegmentPayload(f, size)
	if err != nil {
		return nil, err
	}
	var sum [4]byte
	if _, err := io.ReadFull(f, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrBadSegment, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.Checksum(payload, castagnoli) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSegment)
	}
	var out []Record
	sc := bufio.NewScanner(bytes.NewReader(payload))
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var r Record
		if json.Unmarshal(sc.Bytes(), &r) == nil {
			out = append(out, r)
		}
	}
	return out, nil
}

// readSegmentPayload reads a declared-size payload growing the buffer
// geometrically as bytes actually arrive, so a forged multi-GiB length
// field in a tiny file is rejected after a short read instead of
// committing the declared allocation up front.
func readSegmentPayload(r io.Reader, size uint64) ([]byte, error) {
	const initialCap = 64 << 10
	payload := make([]byte, min(size, initialCap))
	read := 0
	for {
		n, err := io.ReadFull(r, payload[read:])
		read += n
		if err != nil {
			return nil, fmt.Errorf("%w: payload: read %d of %d bytes: %v", ErrBadSegment, read, size, err)
		}
		if uint64(len(payload)) == size {
			return payload, nil
		}
		grown := make([]byte, min(size, 2*uint64(len(payload))))
		copy(grown, payload)
		payload = grown
	}
}
