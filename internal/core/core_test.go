package core

import (
	"math"
	"testing"

	"uicwelfare/internal/blocks"
	"uicwelfare/internal/diffusion"
	"uicwelfare/internal/graph"
	"uicwelfare/internal/itemset"
	"uicwelfare/internal/stats"
	"uicwelfare/internal/uic"
	"uicwelfare/internal/utility"
)

func testGraph(n, m int, seed uint64) *graph.Graph {
	rng := stats.NewRNG(seed)
	return graph.ErdosRenyi(n, m, rng).WeightedCascade()
}

func TestNewProblemValidation(t *testing.T) {
	g := testGraph(10, 30, 1)
	m := utility.Config1()
	if _, err := NewProblem(g, m, []int{1}); err == nil {
		t.Error("budget length mismatch accepted")
	}
	if _, err := NewProblem(g, m, []int{1, -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := NewProblem(nil, m, []int{1, 1}); err == nil {
		t.Error("nil graph accepted")
	}
	p, err := NewProblem(g, m, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxBudget() != 5 || p.TotalBudget() != 8 {
		t.Errorf("budgets: max %d total %d", p.MaxBudget(), p.TotalBudget())
	}
}

func TestBudgetOrder(t *testing.T) {
	g := testGraph(10, 30, 2)
	m := utility.Config5(4)
	p := MustProblem(g, m, []int{10, 40, 20, 40})
	order := p.BudgetOrder()
	want := []int{1, 3, 2, 0} // ties toward smaller index
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCheckAllocation(t *testing.T) {
	g := testGraph(10, 30, 3)
	m := utility.Config1()
	p := MustProblem(g, m, []int{2, 1})

	good := uic.NewAllocation(2)
	good.Assign(0, 0)
	good.Assign(1, 0)
	good.Assign(0, 1)
	if err := p.CheckAllocation(good); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}

	over := uic.NewAllocation(2)
	over.Assign(0, 1)
	over.Assign(1, 1)
	if err := p.CheckAllocation(over); err == nil {
		t.Error("over-budget allocation accepted")
	}

	dup := uic.NewAllocation(2)
	dup.Assign(0, 0)
	dup.Assign(0, 0)
	if err := p.CheckAllocation(dup); err == nil {
		t.Error("duplicate seed accepted")
	}

	bad := uic.NewAllocation(2)
	bad.Assign(99, 0)
	if err := p.CheckAllocation(bad); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestBundleGRDStructure(t *testing.T) {
	g := testGraph(80, 400, 4)
	m := utility.Config1()
	p := MustProblem(g, m, []int{7, 3})
	res := BundleGRD(p, Options{}, stats.NewRNG(5))
	if err := p.CheckAllocation(res.Alloc); err != nil {
		t.Fatalf("bundleGRD violated budgets: %v", err)
	}
	if len(res.Alloc.Seeds[0]) != 7 || len(res.Alloc.Seeds[1]) != 3 {
		t.Fatalf("seed counts %d/%d", len(res.Alloc.Seeds[0]), len(res.Alloc.Seeds[1]))
	}
	// prefix nesting: smaller-budget item's seeds are a prefix of the
	// larger-budget item's seeds
	for i, v := range res.Alloc.Seeds[1] {
		if res.Alloc.Seeds[0][i] != v {
			t.Fatalf("prefix nesting broken: %v vs %v", res.Alloc.Seeds[0], res.Alloc.Seeds[1])
		}
	}
	if res.IMMInvocations != 1 {
		t.Errorf("bundleGRD should make exactly one PRIMA call")
	}
}

func TestBundleGRDIsParameterFree(t *testing.T) {
	// identical budgets and graph, different utility models: the greedy
	// allocation must be identical (the algorithm never reads utilities)
	g := testGraph(60, 240, 6)
	p1 := MustProblem(g, utility.Config1(), []int{5, 2})
	p2 := MustProblem(g, utility.Config3(), []int{5, 2})
	r1 := BundleGRD(p1, Options{}, stats.NewRNG(7))
	r2 := BundleGRD(p2, Options{}, stats.NewRNG(7))
	for i := range r1.SeedOrder {
		if r1.SeedOrder[i] != r2.SeedOrder[i] {
			t.Fatal("allocation depends on utilities; it must not")
		}
	}
}

func TestItemDisjointStructure(t *testing.T) {
	g := testGraph(80, 400, 8)
	m := utility.Config1()
	p := MustProblem(g, m, []int{5, 3})
	res := ItemDisjoint(p, Options{}, stats.NewRNG(9))
	if err := p.CheckAllocation(res.Alloc); err != nil {
		t.Fatalf("item-disj violated budgets: %v", err)
	}
	if len(res.Alloc.Seeds[0]) != 5 || len(res.Alloc.Seeds[1]) != 3 {
		t.Fatalf("seed counts %d/%d", len(res.Alloc.Seeds[0]), len(res.Alloc.Seeds[1]))
	}
	// seeds must be disjoint across items
	seen := map[graph.NodeID]bool{}
	for _, seeds := range res.Alloc.Seeds {
		for _, v := range seeds {
			if seen[v] {
				t.Fatalf("node %d carries two items in item-disj", v)
			}
			seen[v] = true
		}
	}
}

func TestBundleDisjointConfig1SeparateBundles(t *testing.T) {
	// config1: both items have non-negative deterministic utility, so
	// each forms its own singleton bundle with disjoint fresh seeds —
	// the setting where the paper calls item-disj and bundle-disj
	// equivalent.
	g := testGraph(80, 400, 10)
	p := MustProblem(g, utility.Config1(), []int{4, 4})
	res := BundleDisjoint(p, Options{}, stats.NewRNG(11))
	if err := p.CheckAllocation(res.Alloc); err != nil {
		t.Fatalf("bundle-disj violated budgets: %v", err)
	}
	seen := map[graph.NodeID]bool{}
	for _, seeds := range res.Alloc.Seeds {
		for _, v := range seeds {
			if seen[v] {
				t.Fatalf("config1 bundles overlap at node %d", v)
			}
			seen[v] = true
		}
	}
	if res.IMMInvocations < 2 {
		t.Errorf("bundle-disj should invoke IMM per bundle, got %d calls", res.IMMInvocations)
	}
}

func TestBundleDisjointConfig3CoLocates(t *testing.T) {
	// config3: i2 has negative deterministic utility and cannot form a
	// bundle; its budget is recycled onto i1's seeds — the setting where
	// the paper calls bundleGRD and bundle-disj equivalent.
	g := testGraph(80, 400, 12)
	p := MustProblem(g, utility.Config3(), []int{4, 4})
	res := BundleDisjoint(p, Options{}, stats.NewRNG(13))
	if err := p.CheckAllocation(res.Alloc); err != nil {
		t.Fatalf("bundle-disj violated budgets: %v", err)
	}
	s0 := map[graph.NodeID]bool{}
	for _, v := range res.Alloc.Seeds[0] {
		s0[v] = true
	}
	for _, v := range res.Alloc.Seeds[1] {
		if !s0[v] {
			t.Fatalf("i2 seed %d not co-located with i1 (seeds %v vs %v)",
				v, res.Alloc.Seeds[0], res.Alloc.Seeds[1])
		}
	}
}

func TestBundleGRDBeatsItemDisjointOnConfig3(t *testing.T) {
	// with a negative-utility item, item-disj wastes i2's budget entirely
	g := testGraph(150, 900, 14)
	m := utility.Config3()
	p := MustProblem(g, m, []int{10, 10})
	rng := stats.NewRNG(15)

	grd := BundleGRD(p, Options{}, rng)
	disj := ItemDisjoint(p, Options{}, rng)

	sim := uic.NewSimulator(g, m)
	const runs = 30000
	wGrd := sim.EstimateWelfare(grd.Alloc, stats.NewRNG(16), runs)
	wDisj := sim.EstimateWelfare(disj.Alloc, stats.NewRNG(17), runs)
	if wGrd.Mean <= wDisj.Mean {
		t.Errorf("bundleGRD %.2f should beat item-disj %.2f on config3",
			wGrd.Mean, wDisj.Mean)
	}
}

func TestBundleGRDApproximatesBruteForceOPT(t *testing.T) {
	// tiny instance where OPT is enumerable: bundleGRD must reach well
	// within (1-1/e-eps) of the optimum (in practice it is near-optimal)
	g := graph.FromEdges(6, [][3]float64{
		{0, 1, 0.8}, {0, 2, 0.8}, {1, 3, 0.6}, {2, 4, 0.6}, {4, 5, 0.5},
	})
	m := utility.Config3()
	p := MustProblem(g, m, []int{1, 1})
	rng := stats.NewRNG(18)

	_, optWelfare := BruteForceOPT(p, 4000, rng)
	grd := BundleGRD(p, Options{Eps: 0.3}, rng)
	sim := uic.NewSimulator(g, m)
	grdWelfare := sim.EstimateWelfare(grd.Alloc, stats.NewRNG(19), 20000).Mean

	floor := (1 - 1/math.E - 0.3) * optWelfare
	if grdWelfare < floor {
		t.Errorf("bundleGRD welfare %v below floor %v (OPT %v)", grdWelfare, floor, optWelfare)
	}
}

func TestBruteForceOPTPanicsOnLargeInstance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g := testGraph(200, 600, 20)
	p := MustProblem(g, utility.Config1(), []int{10, 10})
	BruteForceOPT(p, 10, stats.NewRNG(21))
}

func TestLemma4SeedAdoptionIsFullBlockPrefix(t *testing.T) {
	// under the greedy allocation, a seed at rank r adopts exactly the
	// union of the full blocks before the first non-full one
	rng := stats.NewRNG(22)
	for trial := 0; trial < 40; trial++ {
		m := utility.Config8(4, rng)
		budgets := make([]int, 4)
		for i := range budgets {
			budgets[i] = 1 + rng.Intn(20)
		}
		noise := m.SampleNoise(rng)
		util := m.UtilityTable(noise, nil)
		blk, err := blocks.Generate(blocks.Instance{Util: util, Budgets: budgets})
		if err != nil {
			t.Fatal(err)
		}
		maxB := 0
		for _, b := range budgets {
			if b > maxB {
				maxB = b
			}
		}
		for r := 0; r < maxB; r++ {
			var allocated itemset.Set
			for i, b := range budgets {
				if b > r {
					allocated = allocated.Add(i)
				}
			}
			got := utility.Adopt(util, allocated, itemset.Empty)
			// expected: union of blocks while e_j > r
			want := itemset.Empty
			for j := 0; j < blk.T(); j++ {
				if blk.EffBudget[j] <= r {
					break
				}
				want = want.Union(blk.Seq[j])
			}
			if got != want {
				t.Fatalf("trial %d rank %d: adopted %v, want %v (blocks %v, eff %v, alloc %v)",
					trial, r, got, want, blk.Seq, blk.EffBudget, allocated)
			}
		}
	}
}

func TestLemma5WelfareDecomposition(t *testing.T) {
	// ρ_{W^N}(Grd) = Σ_i σ(S^GrdE_{B_i}) · Δ_i
	rng := stats.NewRNG(23)
	g := testGraph(60, 300, 24)
	m := utility.Config8(3, stats.NewRNG(25))
	budgets := []int{8, 5, 2}
	p := MustProblem(g, m, budgets)
	grd := BundleGRD(p, Options{}, rng)

	noise := m.SampleNoise(rng)
	util := m.UtilityTable(noise, nil)
	blk, err := blocks.Generate(blocks.Instance{Util: util, Budgets: budgets})
	if err != nil {
		t.Fatal(err)
	}

	// left side: Monte-Carlo welfare under the fixed noise world
	sim := uic.NewSimulator(g, m)
	const runs = 40000
	lhs := sim.WelfareGivenNoise(grd.Alloc, noise, stats.NewRNG(26), runs)

	// right side: spread of effective seed prefixes times deltas
	rhs := 0.0
	for i := 0; i < blk.T(); i++ {
		e := blk.EffBudget[i]
		if e > len(grd.SeedOrder) {
			e = len(grd.SeedOrder)
		}
		spread := diffusion.Spread(g, grd.SeedOrder[:e], stats.NewRNG(27), runs)
		rhs += spread * blk.Deltas[i]
	}
	if blk.T() == 0 {
		rhs = 0
	}
	tol := 0.05*math.Max(math.Abs(lhs), math.Abs(rhs)) + 0.3
	if math.Abs(lhs-rhs) > tol {
		t.Errorf("Lemma 5 decomposition: simulated %v vs block accounting %v", lhs, rhs)
	}
}

func TestZeroBudgetsProduceEmptyAllocation(t *testing.T) {
	g := testGraph(20, 60, 28)
	m := utility.Config1()
	p := MustProblem(g, m, []int{0, 0})
	for name, res := range map[string]Result{
		"bundleGRD":   BundleGRD(p, Options{}, stats.NewRNG(29)),
		"item-disj":   ItemDisjoint(p, Options{}, stats.NewRNG(30)),
		"bundle-disj": BundleDisjoint(p, Options{}, stats.NewRNG(31)),
	} {
		if res.Alloc.Pairs() != 0 {
			t.Errorf("%s allocated %d pairs with zero budgets", name, res.Alloc.Pairs())
		}
	}
}

func TestAllAlgorithmsRespectBudgetsOnRealParams(t *testing.T) {
	g := testGraph(100, 500, 32)
	m := utility.RealParams()
	p := MustProblem(g, m, []int{30, 30, 20, 10, 10})
	for name, res := range map[string]Result{
		"bundleGRD":   BundleGRD(p, Options{}, stats.NewRNG(33)),
		"item-disj":   ItemDisjoint(p, Options{}, stats.NewRNG(34)),
		"bundle-disj": BundleDisjoint(p, Options{}, stats.NewRNG(35)),
	} {
		if err := p.CheckAllocation(res.Alloc); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBundleDisjointRealParamsFindsBundle(t *testing.T) {
	// RealParams' minimal non-negative bundle is {ps, c, 2 games}
	g := testGraph(100, 500, 36)
	m := utility.RealParams()
	p := MustProblem(g, m, []int{30, 30, 20, 10, 10})
	b := minimalNonNegativeBundle(p, p.Budgets)
	if b.Size() != 4 || !b.Has(0) || !b.Has(1) {
		t.Errorf("minimal bundle %v, want ps+c+two games", b)
	}
}

func TestItemDisjointZeroWelfareOnAllNegative(t *testing.T) {
	// when every singleton has negative deterministic utility, item-disj
	// produces (near) zero welfare — the degenerate case §4.3.2 mentions
	g := testGraph(60, 300, 37)
	m := utility.RealParams() // every singleton negative
	p := MustProblem(g, m, []int{5, 5, 5, 5, 5})
	res := ItemDisjoint(p, Options{}, stats.NewRNG(38))
	sim := uic.NewSimulator(g, m)
	w := sim.EstimateWelfare(res.Alloc, stats.NewRNG(39), 5000)
	if w.Mean > 1e-9 {
		t.Errorf("item-disj welfare %v on all-negative singletons, want 0", w.Mean)
	}
}
