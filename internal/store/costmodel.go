package store

import "sync"

// CostModel calibrates a planner's a-priori sketch-cost prediction
// (core.Meta.CostEstimator) against what builds actually cost
// (SketchCost on the finished sketch). The estimators derive from the
// worst-case phase-2 sampling bound λ*/k, which overshoots real
// adaptive builds by a roughly constant, deployment-dependent factor —
// a graph's degree distribution and the lower bound the adaptive phase
// finds move the ratio, but they move it consistently. The model tracks
// that ratio as an exponentially weighted moving average: every
// completed build Observes (predicted, actual), and admission control
// Predicts by scaling the raw estimate with the learned ratio. A fresh
// daemon starts with ratio 1 (raw worst-case pricing — admission errs
// strict until the first build calibrates it), and the ratio is clamped
// to [1/64, 64] so one pathological sample cannot flip admission wide
// open or shut.
type CostModel struct {
	mu      sync.Mutex
	ratio   float64 // EWMA of actual/predicted
	samples int
}

// costModelAlpha is the EWMA weight of each new observation.
const costModelAlpha = 0.3

// costModelClamp bounds the learned ratio (and its reciprocal).
const costModelClamp = 64.0

// NewCostModel returns an uncalibrated model (ratio 1: predictions pass
// through unscaled).
func NewCostModel() *CostModel {
	return &CostModel{ratio: 1}
}

// Observe feeds one completed build's predicted and actual resident
// bytes into the calibration. Non-positive inputs are ignored — a
// degenerate sketch (floor-priced) carries no ratio information.
func (m *CostModel) Observe(predicted, actual int64) {
	if predicted <= 0 || actual <= 0 {
		return
	}
	r := float64(actual) / float64(predicted)
	if r > costModelClamp {
		r = costModelClamp
	}
	if r < 1/costModelClamp {
		r = 1 / costModelClamp
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.samples == 0 {
		m.ratio = r
	} else {
		m.ratio = (1-costModelAlpha)*m.ratio + costModelAlpha*r
	}
	m.samples++
}

// Predict scales a raw estimate by the learned ratio. With no
// observations yet the estimate passes through unchanged.
func (m *CostModel) Predict(predicted int64) int64 {
	if predicted <= 0 {
		return predicted
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := float64(predicted) * m.ratio
	if out < 1 {
		return 1
	}
	return int64(out)
}

// Snapshot returns the learned ratio and how many builds informed it
// (for /v1/stats).
func (m *CostModel) Snapshot() (ratio float64, samples int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ratio, m.samples
}

// GraphCostRatio is one per-graph calibration entry, as exported to
// /v1/metrics (welmax_graph_cost_ratio{graph_id}).
type GraphCostRatio struct {
	GraphID string
	Ratio   float64
	Samples int
}

// maxGraphModels caps the per-graph map so a churn of short-lived
// graphs cannot grow it without bound; beyond the cap new graphs fall
// back to the global model until older entries are Forgotten.
const maxGraphModels = 256

// CostModels keys CostModel calibration by graph id with a global
// fallback: every observation updates both the graph's own model and
// the global one, and Predict prefers the per-graph model once it has
// seen at least one build on that graph. Different graphs can sit at
// very different predicted-to-actual ratios (the λ*/k bound's slack
// depends on the degree distribution), so per-graph calibration makes
// admission pricing sharper on mixed workloads without losing the
// global prior for graphs seen for the first time.
type CostModels struct {
	global *CostModel

	mu      sync.Mutex
	byGraph map[string]*CostModel
}

// NewCostModels returns an uncalibrated collection.
func NewCostModels() *CostModels {
	return &CostModels{global: NewCostModel(), byGraph: map[string]*CostModel{}}
}

// Observe feeds one completed build on graphID into both the per-graph
// and the global calibration. An empty graphID updates only the global
// model.
func (c *CostModels) Observe(graphID string, predicted, actual int64) {
	c.global.Observe(predicted, actual)
	if graphID == "" {
		return
	}
	c.mu.Lock()
	m := c.byGraph[graphID]
	if m == nil && len(c.byGraph) < maxGraphModels {
		m = NewCostModel()
		c.byGraph[graphID] = m
	}
	c.mu.Unlock()
	if m != nil {
		m.Observe(predicted, actual)
	}
}

// Predict scales a raw estimate by the graph's learned ratio when that
// graph has observations, falling back to the global model otherwise.
func (c *CostModels) Predict(graphID string, predicted int64) int64 {
	if graphID != "" {
		c.mu.Lock()
		m := c.byGraph[graphID]
		c.mu.Unlock()
		if m != nil {
			if _, samples := m.Snapshot(); samples > 0 {
				return m.Predict(predicted)
			}
		}
	}
	return c.global.Predict(predicted)
}

// Snapshot returns the global ratio and sample count (the /v1/stats
// figures, unchanged from the single-model era).
func (c *CostModels) Snapshot() (ratio float64, samples int) {
	return c.global.Snapshot()
}

// PerGraph lists every per-graph calibration entry (unordered).
func (c *CostModels) PerGraph() []GraphCostRatio {
	c.mu.Lock()
	models := make(map[string]*CostModel, len(c.byGraph))
	for id, m := range c.byGraph {
		models[id] = m
	}
	c.mu.Unlock()
	out := make([]GraphCostRatio, 0, len(models))
	for id, m := range models {
		ratio, samples := m.Snapshot()
		out = append(out, GraphCostRatio{GraphID: id, Ratio: ratio, Samples: samples})
	}
	return out
}

// Forget drops graphID's calibration (graph deletion); the global
// model keeps what it learned.
func (c *CostModels) Forget(graphID string) {
	c.mu.Lock()
	delete(c.byGraph, graphID)
	c.mu.Unlock()
}
