#!/usr/bin/env bash
# Restart-warm smoke test: boots welmaxd with a data dir, loads a graph,
# allocates (cold), restarts the daemon over the same data dir, and
# asserts that the graph id survived and the repeated allocate is served
# from the persisted sketch (a cache hit + a disk-tier hit in /v1/stats).
# CI runs this against the real binary; the httptest-level equivalent
# lives in internal/service/persist_test.go.
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
BIN="$(mktemp -d)/welmaxd"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$DATA" "$(dirname "$BIN")"
}
trap cleanup EXIT

fail() { echo "restart_smoke: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon did not become healthy"
}

wait_job() { # $1 = job id; prints the terminal job JSON
  local view state
  for _ in $(seq 1 600); do
    view="$(curl -fsS "$BASE/v1/jobs/$1")"
    state="$(jq -r .state <<<"$view")"
    case "$state" in
      done) echo "$view"; return 0 ;;
      failed|canceled) fail "job $1 ended $state: $(jq -r .error <<<"$view")" ;;
    esac
    sleep 0.1
  done
  fail "job $1 did not finish"
}

go build -o "$BIN" ./cmd/welmaxd

# --- first lifetime: register + cold allocate ---------------------------
"$BIN" -addr "$ADDR" -data-dir "$DATA" & PID=$!
wait_healthy

GRAPH_ID="$(curl -fsS -X POST "$BASE/v1/graphs" \
  -d '{"network":"flixster","scale":0.02}' | jq -r .id)"
[ -n "$GRAPH_ID" ] && [ "$GRAPH_ID" != null ] || fail "graph registration"
echo "registered $GRAPH_ID"

JOB="$(curl -fsS -X POST "$BASE/v1/allocate" \
  -d "{\"graph_id\":\"$GRAPH_ID\",\"budgets\":[5,5]}" | jq -r .job_id)"
VIEW="$(wait_job "$JOB")"
[ "$(jq -r .result.sketch_cached <<<"$VIEW")" = false ] || fail "cold allocate claimed a cache hit"
echo "cold allocate done"

kill "$PID"; wait "$PID" 2>/dev/null || true; PID=""

# --- second lifetime: same data dir, same graph id, warm from disk ------
"$BIN" -addr "$ADDR" -data-dir "$DATA" & PID=$!
wait_healthy

curl -fsS "$BASE/v1/graphs/$GRAPH_ID" >/dev/null || fail "graph id did not survive the restart"

JOB2="$(curl -fsS -X POST "$BASE/v1/allocate" \
  -d "{\"graph_id\":\"$GRAPH_ID\",\"budgets\":[5,5]}" | jq -r .job_id)"
VIEW2="$(wait_job "$JOB2")"
[ "$(jq -r .result.sketch_cached <<<"$VIEW2")" = true ] || fail "post-restart allocate missed the cache"

STATS="$(curl -fsS "$BASE/v1/stats")"
HITS="$(jq -r .disk_tier.hits <<<"$STATS")"
[ "$HITS" -ge 1 ] || fail "disk tier reports $HITS hits, want >= 1"

echo "restart_smoke: OK (graph $GRAPH_ID, disk hits $HITS)"
